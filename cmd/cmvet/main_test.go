package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmvet compiles the tool once per test binary into a temp dir.
func buildCmvet(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "cmvet")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building cmvet: %v\n%s", err, out)
	}
	return exe
}

// TestExitNonzeroOnBadFixture is the canary: a tool that silently
// stopped finding anything would let CI go green on broken invariants.
func TestExitNonzeroOnBadFixture(t *testing.T) {
	exe := buildCmvet(t)
	cmd := exec.Command(exe, "-dir", "testdata/bad")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("cmvet exited 0 on the seeded bad fixture; output:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("cmvet did not run: %v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("cmvet exit code = %d, want 1 (findings); output:\n%s", ee.ExitCode(), out)
	}
	text := string(out)
	for _, want := range []string{"[hotpath]", "[ctbranch]", "[wiresize]"} {
		if !strings.Contains(text, want) {
			t.Errorf("expected a %s finding in output:\n%s", want, text)
		}
	}
}

// TestVersionProbe covers the go vet -vettool handshake: the tool must
// answer -V=full with a "<name> version <id>" line.
func TestVersionProbe(t *testing.T) {
	exe := buildCmvet(t)
	out, err := exec.Command(exe, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("cmvet -V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[0] != "cmvet" || fields[1] != "version" {
		t.Fatalf("bad -V=full output %q, want \"cmvet version <id>\"", string(out))
	}
}

// TestFlagsProbe covers the other handshake: -flags must emit a JSON
// flag list (empty — cmvet takes no analyzer flags from go vet).
func TestFlagsProbe(t *testing.T) {
	exe := buildCmvet(t)
	out, err := exec.Command(exe, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("cmvet -flags: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("cmvet -flags output %q, want []", string(out))
	}
}

// TestCleanOnModule pins the headline acceptance criterion: the repo's
// own tree carries zero unsuppressed findings.
func TestCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide analysis is not short")
	}
	exe := buildCmvet(t)
	cmd := exec.Command(exe, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cmvet ./... reported findings or failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}
