// Package bad is a deliberately broken fixture: cmvet must exit
// non-zero when pointed at it (the CI job's canary that the tool still
// detects anything at all).
package bad

import "encoding/binary"

//cm:hotpath
func leakyKernel(a []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		if a[i] == 0 {
			out[i] = 1
		}
	}
	return out
}

func decodeUnbounded(data []byte) []byte {
	n := binary.LittleEndian.Uint32(data)
	return make([]byte, n)
}
