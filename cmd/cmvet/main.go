// Command cmvet runs the CIPHERMATCH invariant checkers (hotpath
// purity, constant-time branches, wire-size bounds, pool release
// discipline, atomic field consistency) over the module.
//
// Three invocation modes:
//
//	cmvet [patterns...]      analyze module packages (default ./...);
//	                         exit 1 if any finding survives //cm:allow
//	cmvet -dir path          analyze one directory as an ad-hoc package
//	                         (used for fixtures); exit 1 on findings
//	go vet -vettool=$(which cmvet) ./...
//	                         the go vet unit protocol: cmvet is invoked
//	                         per package with a .cfg file, prints
//	                         findings to stderr and exits non-zero
//
// Findings print in go vet's file:line:col form with the analyzer name
// bracketed, so editors and CI annotate them natively.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"ciphermatch/internal/analysis"
	"ciphermatch/internal/analysis/registry"
)

func main() {
	// The go vet protocol probes the tool before any real work:
	// `-V=full` asks for a version line keyed by the tool's content
	// (for build caching), `-flags` asks which flags the tool accepts.
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		fmt.Printf("cmvet version 1 buildID=%s\n", selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	var (
		dirMode  = flag.String("dir", "", "analyze one directory as an ad-hoc package")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range registry.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var (
		pkgs []*analysis.Package
		dirs *analysis.Directives
		err  error
	)
	if *dirMode != "" {
		var pkg *analysis.Package
		pkg, dirs, err = analysis.LoadDir(*dirMode)
		if pkg != nil {
			pkgs = []*analysis.Package{pkg}
		}
	} else {
		wd, werr := os.Getwd()
		if werr != nil {
			fmt.Fprintln(os.Stderr, "cmvet:", werr)
			os.Exit(2)
		}
		pkgs, dirs, err = analysis.LoadModule(wd, flag.Args()...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmvet:", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, dirs, registry.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetUnit handles one `go vet` package unit. Contract with cmd/go: the
// VetxOutput file must always be written (it is the unit's cache
// entry), findings go to stderr, and the exit status is non-zero iff
// there are findings.
func vetUnit(cfgPath string) int {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmvet:", err)
		return 2
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("cmvet\n"), 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "cmvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency-only unit: nothing to report, just publish facts
		// (cmvet keeps none — directives are re-scanned from source).
		writeVetx()
		return 0
	}
	pkg, dirs, err := analysis.LoadVetUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "cmvet:", err)
		return 2
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, dirs, registry.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmvet:", err)
		return 2
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selfHash fingerprints the executable so the go command's vet cache
// invalidates when cmvet itself changes.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))[:32]
}
