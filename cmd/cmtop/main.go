// Command cmtop is a polling terminal dashboard for a live cmserver:
// it samples the serving stats, the database listing, and the trace
// flight recorder over the wire protocol (MsgStats, MsgListDBs,
// MsgTraceDump) and renders per-tenant query rates, request-lifecycle
// stage latencies, database residency, and the newest slow queries.
// It needs no key material — everything it shows is the server's own
// telemetry.
//
// Usage:
//
//	cmtop -addr localhost:7448
//	cmtop -addr localhost:7448 -interval 1s
//	cmtop -addr localhost:7448 -once        # one snapshot, no screen clearing (CI)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/proto"
	"ciphermatch/internal/trace"
)

func main() {
	addr := flag.String("addr", "localhost:7448", "cmserver address")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	slowN := flag.Int("slow", 5, "slow traces to show")
	flag.Parse()

	conn, err := proto.Dial(*addr, bfv.ParamsPaper())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmtop: dial:", err)
		os.Exit(1)
	}
	defer conn.Close()

	var prev map[string]int64
	var prevAt time.Time
	for {
		kvs, err := conn.ServerStats()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmtop: stats:", err)
			os.Exit(1)
		}
		now := time.Now()
		cur := kvMap(kvs)
		dbs, err := conn.ListDBs()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmtop: list:", err)
			os.Exit(1)
		}
		// A pre-tracing server answers the dump with MsgError; the
		// dashboard then runs without the slow-trace pane.
		slow, _ := conn.TraceDump(*slowN, true)

		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(*addr, cur, prev, now, prevAt, dbs, slow)
		if *once {
			return
		}
		prev, prevAt = cur, now
		time.Sleep(*interval)
	}
}

func kvMap(kvs []metrics.KV) map[string]int64 {
	m := make(map[string]int64, len(kvs))
	for _, kv := range kvs {
		m[kv.Name] = kv.Value
	}
	return m
}

// labelValues collects the label values present for family{key="..."},
// e.g. the tenant names behind tenant_queries_total.
func labelValues(m map[string]int64, family, key string) []string {
	prefix := family + "{" + key + "=\""
	var out []string
	for name := range m {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, "\"}") {
			out = append(out, name[len(prefix):len(name)-2])
		}
	}
	sort.Strings(out)
	return out
}

func labeled(m map[string]int64, family, key, value string) int64 {
	return m[family+"{"+key+"=\""+value+"\"}"]
}

func render(addr string, cur, prev map[string]int64, now, prevAt time.Time,
	dbs []proto.DBInfo, slow []trace.Trace) {
	rate := func(name string) string {
		if prev == nil {
			return "-"
		}
		dt := now.Sub(prevAt).Seconds()
		if dt <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(cur[name]-prev[name])/dt)
	}

	fmt.Printf("cmtop — %s — %s\n\n", addr, now.Format("15:04:05"))
	fmt.Printf("serving: %d queries (%s qps), %d errors, %d rejected, %d batches | %d goroutines, %.1f MiB heap, %d GCs\n",
		cur["queries_total"], rate("queries_total"), cur["errors_total"], cur["rejected_total"],
		cur["batches_total"], cur["go_goroutines"], float64(cur["go_heap_alloc_bytes"])/(1<<20),
		cur["go_gc_cycles_total"])
	fmt.Printf("traces:  %d recorded, %d slow\n\n", cur["request_latency_ns_count"], cur["traces_slow_total"])

	fmt.Printf("%-14s %10s %10s %10s %10s\n", "stage", "count", "p50 ms", "p95 ms", "p99 ms")
	for _, st := range trace.StageNames() {
		count := labeled(cur, "stage_latency_ns_count", "stage", st)
		if count == 0 {
			continue
		}
		fmt.Printf("%-14s %10d %10.3f %10.3f %10.3f\n", st, count,
			float64(labeled(cur, "stage_latency_ns_p50", "stage", st))/1e6,
			float64(labeled(cur, "stage_latency_ns_p95", "stage", st))/1e6,
			float64(labeled(cur, "stage_latency_ns_p99", "stage", st))/1e6)
	}

	tenants := labelValues(cur, "tenant_queries_total", "db")
	if len(tenants) > 0 {
		fmt.Printf("\n%-24s %10s %8s %8s %8s %10s\n", "tenant", "queries", "qps", "errors", "depth", "p95 ms")
		for _, tn := range tenants {
			fmt.Printf("%-24s %10d %8s %8d %8d %10.3f\n", tn,
				labeled(cur, "tenant_queries_total", "db", tn),
				rate(`tenant_queries_total{db="`+tn+`"}`),
				labeled(cur, "tenant_errors_total", "db", tn),
				labeled(cur, "tenant_queue_depth", "db", tn),
				float64(labeled(cur, "tenant_latency_ns_p95", "db", tn))/1e6)
		}
	}

	if len(dbs) > 0 {
		fmt.Printf("\n%-24s %-10s %-18s %8s %10s\n", "db", "state", "engine", "chunks", "searches")
		for _, db := range dbs {
			fmt.Printf("%-24s %-10s %-18s %8d %10d\n", db.Name, db.State, db.Engine, db.Chunks, db.Searches)
		}
	}

	if len(slow) > 0 {
		fmt.Printf("\nslow traces (newest first):\n")
		for i := range slow {
			tr := &slow[i]
			fmt.Printf("  id=%#016x tenant=%-16s total=%8.2fms arena=%8.2fms wait=%8.2fms batch=%d%s%s\n",
				tr.ID, tr.Tenant, float64(tr.TotalNS)/1e6,
				float64(tr.StageNS[trace.StageArena])/1e6,
				float64(tr.StageNS[trace.StageCoalesceWait])/1e6,
				tr.Batch,
				flagStr(tr.Flags&trace.FlagCoalesced, " coalesced"),
				flagStr(tr.Flags&trace.FlagError, " ERROR"))
		}
	}
}

func flagStr(set uint8, s string) string {
	if set != 0 {
		return s
	}
	return ""
}
