// Command cmserver runs a CIPHERMATCH search server: a multi-tenant
// store of named encrypted databases answering encrypted queries with
// match indices, never holding any key material (§2.2's two-round HE
// exchange; Algorithm 1 server side). Each database runs on an
// execution engine — serial CPU, persistent worker pool, or the
// simulated in-flash drive — selected per upload or defaulted here.
//
// Usage:
//
//	cmserver -addr :7448 -engine pool -workers 8
//	cmserver -engine ssd/shards=4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", ":7448", "listen address")
	engineSpec := flag.String("engine", "serial",
		"default engine for uploads that do not request one: kind[:workers][/shards=N], kind one of "+
			strings.Join(engine.Kinds(), "|"))
	workers := flag.Int("workers", 0, "default pool worker count (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "default chunk-range shard count (0/1 = unsharded)")
	flag.Parse()

	spec, err := engine.Parse(*engineSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(2)
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if *shards > 1 {
		spec.Shards = *shards
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
	fmt.Printf("cmserver: listening on %s (BFV n=%d, log2 q=32, log2 t=16, default engine %s)\n",
		l.Addr(), bfv.ParamsPaper().N, spec)
	srv := proto.NewServerWithSpec(bfv.ParamsPaper(), spec)
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
}
