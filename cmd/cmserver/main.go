// Command cmserver runs a CIPHERMATCH search server: a multi-tenant
// store of named encrypted databases answering encrypted queries with
// match indices, never holding any key material (§2.2's two-round HE
// exchange; Algorithm 1 server side). Each database runs on an
// execution engine — serial CPU, persistent worker pool, or the
// simulated in-flash drive — selected per upload or defaulted here.
//
// With -datadir the store is durable: uploads write through to
// checksummed segment files, a restart recovers every tenant from the
// directory, and searches stream the mmap'd segments directly (the
// paper's search-where-the-data-lives argument, in software). With
// -membudget, cold tenants are evicted down to the budget and reload
// transparently on their next search.
//
// With -batchwindow, concurrently arriving single queries against the
// same database are coalesced server-side into one batched arena pass
// (fires at -maxbatch queries or after an adaptive window capped at
// -batchwindow, whichever first); -maxqueue bounds per-database pending
// depth, rejecting excess load with a typed overload error. Serving
// metrics — QPS, batch occupancy, queue latency, coalesce rate, arena
// passes saved — are always available over the wire (cmclient stats)
// and, with -metrics-addr, over HTTP in Prometheus text format.
//
// The server is hardened for faulty environments: -read-timeout and
// -write-timeout bound slow-loris peers per connection, -scrub runs a
// background scrubber re-verifying resident segment CRCs and
// quarantining corrupted databases instead of serving wrong answers,
// and SIGTERM/SIGINT drain every in-flight request — including queries
// parked in coalescing windows — before closing the store. -fault arms
// the deterministic fault injector (internal/fault) under the store and
// the listener for chaos runs; never use it in production.
//
// Usage:
//
//	cmserver -addr :7448 -engine pool -workers 8
//	cmserver -engine ssd/shards=4
//	cmserver -datadir /var/lib/ciphermatch -membudget 4GiB
//	cmserver -batchwindow 200us -maxbatch 16 -maxqueue 256 -metrics-addr :9448
//	cmserver -datadir /var/lib/ciphermatch -scrub 1m -read-timeout 30s -write-timeout 30s
//	cmserver -fault 'seed=c1,drop=97,stalldur=20ms'   # chaos testing only
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/fault"
	"ciphermatch/internal/proto"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/segment"
)

func main() {
	addr := flag.String("addr", ":7448", "listen address")
	engineSpec := flag.String("engine", "serial",
		"default engine for uploads that do not request one: kind[:workers][/shards=N], kind one of "+
			strings.Join(engine.Kinds(), "|"))
	workers := flag.Int("workers", 0, "default pool worker count (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "default chunk-range shard count (0/1 = unsharded)")
	datadir := flag.String("datadir", "", "segment data directory; empty = memory-only (nothing survives restart)")
	membudget := flag.String("membudget", "", "resident ciphertext-arena budget, e.g. 512MiB or 4GiB (requires -datadir; empty = unlimited)")
	batchwindow := flag.Duration("batchwindow", 0, "max server-side coalescing delay, e.g. 200us (0 = coalescing off)")
	maxbatch := flag.Int("maxbatch", 0, "coalesced batch fires at this many pending queries (0 = default 16)")
	maxqueue := flag.Int("maxqueue", 0, "per-database pending-query cap before overload rejection (0 = 16x maxbatch)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus-format metrics, /traces and pprof over HTTP at this address (empty = off)")
	traceBuf := flag.Int("trace-buf", 0, "request-trace ring capacity, recent and slow each (0 = default 4096)")
	slowThreshold := flag.Duration("slow-threshold", 0, "requests at least this slow are captured in the slow-trace ring (0 = default 50ms)")
	scrub := flag.Duration("scrub", 0, "background segment-scrub interval re-verifying resident plane CRCs, e.g. 1m (requires -datadir; 0 = off)")
	readTimeout := flag.Duration("read-timeout", 0, "per-connection read deadline between requests (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-connection reply write deadline (0 = none)")
	faultSpec := flag.String("fault", "", "deterministic fault injection for chaos runs, e.g. 'seed=c1,drop=97,bitflip=1000' (see internal/fault)")
	flag.Parse()

	spec, err := engine.Parse(*engineSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(2)
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if *shards > 1 {
		spec.Shards = *shards
	}
	budget, err := parseBytes(*membudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver: -membudget:", err)
		os.Exit(2)
	}
	faultCfg, err := fault.ParseConfig(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver: -fault:", err)
		os.Exit(2)
	}
	var inj *fault.Injector
	storeOpts := proto.StoreOptions{DataDir: *datadir, MemBudget: budget, ScrubInterval: *scrub}
	if *faultSpec != "" {
		inj = fault.New(faultCfg)
		storeOpts.FS = inj.FS(segment.OSFS{})
		fmt.Fprintf(os.Stderr, "cmserver: FAULT INJECTION ARMED (%s) — chaos runs only\n", *faultSpec)
	}

	srv, err := proto.NewServerWithServing(bfv.ParamsPaper(), spec, storeOpts,
		proto.CoalesceConfig{Window: *batchwindow, MaxBatch: *maxbatch, MaxQueue: *maxqueue})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
	srv.SetTimeouts(*readTimeout, *writeTimeout)
	if *traceBuf > 0 || *slowThreshold > 0 {
		srv.SetTracing(*traceBuf, *slowThreshold)
	}
	if inj != nil {
		inj.Bind(srv.Metrics()) // fault_*_total next to the absorption counters
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmserver: -metrics-addr:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Handler())
		mux.Handle("/traces", srv.Traces().Handler())
		mux.Handle("/traces/slow", srv.Traces().SlowHandler())
		// The standard pprof endpoints, on the sidecar mux rather than
		// DefaultServeMux so nothing is served by accident.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(ml, mux) //nolint:errcheck // best-effort sidecar
		fmt.Printf("cmserver: metrics on http://%s/metrics, traces on /traces and /traces/slow, pprof on /debug/pprof\n", ml.Addr())
	}
	if dir := srv.Store().Dir(); dir != nil {
		n := len(srv.Store().List())
		fmt.Printf("cmserver: recovered %d database(s) from %s\n", n, dir.Root())
		for _, dmg := range dir.Damaged() {
			fmt.Fprintf(os.Stderr, "cmserver: quarantined segment %s: %v\n", dmg.File, dmg.Err)
		}
		for _, sk := range srv.Store().SkippedSegments() {
			fmt.Fprintf(os.Stderr, "cmserver: not serving segment %s (%q): %v\n", sk.File, sk.Name, sk.Err)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
	var serveL net.Listener = l
	if inj != nil {
		serveL = inj.Listener(l)
	}

	// Graceful shutdown: stop accepting, then drain — every request
	// already read off a connection (including queries parked in
	// coalescing windows) runs to completion and has its reply written
	// before the store closes. Segment files and the manifest are
	// fsynced at upload time, so shutdown has nothing left to make
	// durable.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	go func() {
		sig := <-sigCh
		fmt.Printf("cmserver: %s: draining in-flight requests and shutting down\n", sig)
		close(shuttingDown)
		l.Close()
	}()

	coalesceNote := "off"
	if *batchwindow > 0 {
		coalesceNote = fmt.Sprintf("window<=%s", *batchwindow)
	}
	fmt.Printf("cmserver: listening on %s (BFV n=%d, log2 q=32, log2 t=16, default engine %s, coalescing %s)\n",
		l.Addr(), bfv.ParamsPaper().N, spec, coalesceNote)
	fmt.Printf("cmserver: ring kernel path %s (avx2 available: %v)\n", ring.ActiveKernel(), ring.AVX2Supported())
	if note := ring.KernelInitNote(); note != "" {
		fmt.Printf("cmserver: kernel note: %s\n", note)
	}
	serveErr := srv.Serve(serveL)
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "cmserver: closing store:", err)
		os.Exit(1)
	}
	select {
	case <-shuttingDown: // listener closed by the signal handler: clean exit
	default:
		if serveErr != nil {
			fmt.Fprintln(os.Stderr, "cmserver:", serveErr)
			os.Exit(1)
		}
	}
}

// parseBytes reads a human byte size: plain bytes, or a KiB/MiB/GiB
// (and KB/MB/GB, decimal) suffix.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	suffixes := []struct {
		suffix string
		mult   int64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3},
	}
	mult := int64(1)
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.suffix) {
			mult = sf.mult
			s = strings.TrimSuffix(s, sf.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size overflows")
	}
	return n * mult, nil
}
