// Command cmserver runs a CIPHERMATCH search server: a multi-tenant
// store of named encrypted databases answering encrypted queries with
// match indices, never holding any key material (§2.2's two-round HE
// exchange; Algorithm 1 server side). Each database runs on an
// execution engine — serial CPU, persistent worker pool, or the
// simulated in-flash drive — selected per upload or defaulted here.
//
// With -datadir the store is durable: uploads write through to
// checksummed segment files, a restart recovers every tenant from the
// directory, and searches stream the mmap'd segments directly (the
// paper's search-where-the-data-lives argument, in software). With
// -membudget, cold tenants are evicted down to the budget and reload
// transparently on their next search.
//
// Usage:
//
//	cmserver -addr :7448 -engine pool -workers 8
//	cmserver -engine ssd/shards=4
//	cmserver -datadir /var/lib/ciphermatch -membudget 4GiB
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", ":7448", "listen address")
	engineSpec := flag.String("engine", "serial",
		"default engine for uploads that do not request one: kind[:workers][/shards=N], kind one of "+
			strings.Join(engine.Kinds(), "|"))
	workers := flag.Int("workers", 0, "default pool worker count (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "default chunk-range shard count (0/1 = unsharded)")
	datadir := flag.String("datadir", "", "segment data directory; empty = memory-only (nothing survives restart)")
	membudget := flag.String("membudget", "", "resident ciphertext-arena budget, e.g. 512MiB or 4GiB (requires -datadir; empty = unlimited)")
	flag.Parse()

	spec, err := engine.Parse(*engineSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(2)
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if *shards > 1 {
		spec.Shards = *shards
	}
	budget, err := parseBytes(*membudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver: -membudget:", err)
		os.Exit(2)
	}

	srv, err := proto.NewServerWithOptions(bfv.ParamsPaper(), spec,
		proto.StoreOptions{DataDir: *datadir, MemBudget: budget})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
	if dir := srv.Store().Dir(); dir != nil {
		n := len(srv.Store().List())
		fmt.Printf("cmserver: recovered %d database(s) from %s\n", n, dir.Root())
		for _, dmg := range dir.Damaged() {
			fmt.Fprintf(os.Stderr, "cmserver: quarantined segment %s: %v\n", dmg.File, dmg.Err)
		}
		for _, sk := range srv.Store().SkippedSegments() {
			fmt.Fprintf(os.Stderr, "cmserver: not serving segment %s (%q): %v\n", sk.File, sk.Name, sk.Err)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}

	// Graceful shutdown: stop accepting, drain in-flight searches,
	// unmap segments. Segment files and the manifest are fsynced at
	// upload time, so shutdown has nothing left to make durable.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	go func() {
		sig := <-sigCh
		fmt.Printf("cmserver: %s: flushing store and shutting down\n", sig)
		close(shuttingDown)
		l.Close()
	}()

	fmt.Printf("cmserver: listening on %s (BFV n=%d, log2 q=32, log2 t=16, default engine %s)\n",
		l.Addr(), bfv.ParamsPaper().N, spec)
	serveErr := srv.Serve(l)
	if err := srv.Store().Close(); err != nil {
		fmt.Fprintln(os.Stderr, "cmserver: closing store:", err)
		os.Exit(1)
	}
	select {
	case <-shuttingDown: // listener closed by the signal handler: clean exit
	default:
		if serveErr != nil {
			fmt.Fprintln(os.Stderr, "cmserver:", serveErr)
			os.Exit(1)
		}
	}
}

// parseBytes reads a human byte size: plain bytes, or a KiB/MiB/GiB
// (and KB/MB/GB, decimal) suffix.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	suffixes := []struct {
		suffix string
		mult   int64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3},
	}
	mult := int64(1)
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.suffix) {
			mult = sf.mult
			s = strings.TrimSuffix(s, sf.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size overflows")
	}
	return n * mult, nil
}
