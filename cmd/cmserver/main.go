// Command cmserver runs a CIPHERMATCH search server: it accepts an
// encrypted database upload and answers encrypted queries with match
// indices, never holding any key material (§2.2's two-round HE exchange;
// Algorithm 1 server side).
//
// Usage:
//
//	cmserver -addr :7448
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", ":7448", "listen address")
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
	fmt.Printf("cmserver: listening on %s (BFV n=%d, log2 q=32, log2 t=16)\n",
		l.Addr(), bfv.ParamsPaper().N)
	srv := proto.NewServer(bfv.ParamsPaper())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "cmserver:", err)
		os.Exit(1)
	}
}
