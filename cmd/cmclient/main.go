// Command cmclient is the data-owner side of the networked CIPHERMATCH
// deployment: it encrypts a local file, uploads the ciphertexts to a
// cmserver, and issues encrypted searches, receiving only match indices.
//
// Usage:
//
//	cmclient -addr localhost:7448 -db corpus.txt -query "needle"
package main

import (
	"flag"
	"fmt"
	"os"

	"ciphermatch"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", "localhost:7448", "cmserver address")
	dbPath := flag.String("db", "", "file to upload and search (required)")
	queryStr := flag.String("query", "", "query string (required)")
	align := flag.Int("align", 8, "occurrence alignment in bits")
	seed := flag.String("seed", "cmclient-default-seed", "client key/randomness seed label")
	flag.Parse()

	if *dbPath == "" || *queryStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*dbPath)
	if err != nil {
		fatal(err)
	}

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: *align,
		Mode:      ciphermatch.ModeSeededMatch,
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed(*seed))
	if err != nil {
		fatal(err)
	}
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		fatal(err)
	}

	conn, err := proto.Dial(*addr, cfg.Params)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	if err := conn.UploadDB(db); err != nil {
		fatal(fmt.Errorf("uploading database: %w", err))
	}
	fmt.Printf("uploaded %d encrypted chunks (%d bytes)\n", len(db.Chunks), db.SizeBytes(cfg.Params))

	query := []byte(*queryStr)
	q, err := client.PrepareQuery(query, len(query)*8, dbBits)
	if err != nil {
		fatal(err)
	}
	candidates, err := conn.Search(q)
	if err != nil {
		fatal(fmt.Errorf("remote search: %w", err))
	}
	verified := ciphermatch.VerifyCandidates(data, dbBits, query, len(query)*8, candidates)
	fmt.Printf("server returned %d candidates, %d verified\n", len(candidates), len(verified))
	for _, o := range verified {
		fmt.Printf("match at byte %d\n", o/8)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmclient:", err)
	os.Exit(1)
}
