// Command cmclient is the data-owner side of the networked CIPHERMATCH
// deployment: it encrypts a local file, uploads the ciphertexts to a
// named database on a cmserver, and issues encrypted searches,
// receiving only match indices. It can also list and drop the server's
// databases.
//
// Usage:
//
//	cmclient -addr localhost:7448 -name corpus -db corpus.txt -query "needle"
//	cmclient -name corpus -engine pool:8 -db corpus.txt -query "needle"
//	cmclient -name corpus -db corpus.txt -queryfile patterns.txt
//	cmclient -name corpus -db corpus.txt -query "needle" -noupload
//	cmclient -list
//	cmclient -drop corpus
//
// With -noupload the client searches a database the server already
// holds (a durable cmserver recovers uploads across restarts from its
// -datadir) without re-shipping the ciphertexts; it must use the same
// -seed and database file as the original upload so the seeded match
// tokens line up.
//
// With -queryfile (one pattern per line), all patterns travel in a
// single batched request: the server walks the encrypted database once
// for the whole set, and patterns repeated across lines are shipped and
// evaluated once.
package main

import (
	"flag"
	"fmt"
	"os"

	"ciphermatch"
	"ciphermatch/internal/core"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", "localhost:7448", "cmserver address")
	name := flag.String("name", "default", "server-side database name")
	dbPath := flag.String("db", "", "file to upload and search")
	queryStr := flag.String("query", "", "query string")
	queryFile := flag.String("queryfile", "", "file of query patterns, one per line, submitted as one batched request")
	align := flag.Int("align", 8, "occurrence alignment in bits")
	seed := flag.String("seed", "cmclient-default-seed", "client key/randomness seed label")
	engineSpec := flag.String("engine", "", "server-side engine for this database, kind[:workers][/shards=N] (empty = server default)")
	list := flag.Bool("list", false, "list the server's databases and exit")
	drop := flag.String("drop", "", "drop the named server-side database and exit")
	noupload := flag.Bool("noupload", false,
		"search the existing server-side database without re-uploading (durable servers recover uploads across restarts; requires the original -seed and -db file)")
	retries := flag.Int("retries", 0,
		"retry read-only requests up to N times with exponential backoff on overload or transient transport faults (uploads and drops are never retried)")
	retryTimeout := flag.Duration("retry-timeout", 0, "per-attempt I/O deadline when -retries is set (0 = none)")
	flag.Parse()

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: *align,
		Mode:      ciphermatch.ModeSeededMatch,
	}
	conn, err := proto.Dial(*addr, cfg.Params)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	if *retries > 0 {
		conn.SetRetry(proto.RetryPolicy{Max: *retries, Timeout: *retryTimeout, Seed: *seed})
	}

	switch {
	case *list:
		infos, err := conn.ListDBs()
		if err != nil {
			fatal(err)
		}
		if len(infos) == 0 {
			fmt.Println("no databases")
			return
		}
		for _, in := range infos {
			fmt.Printf("%-24s %8d chunks %12d bits %6d searches  %-8s engine %s\n",
				in.Name, in.Chunks, in.BitLen, in.Searches, in.State, in.Engine)
		}
		return
	case *drop != "":
		if err := conn.DropDB(*drop); err != nil {
			fatal(err)
		}
		fmt.Printf("dropped %s\n", *drop)
		return
	}

	if *dbPath == "" || (*queryStr == "") == (*queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := ciphermatch.ParseEngineSpec(*engineSpec)
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(*dbPath)
	if err != nil {
		fatal(err)
	}

	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed(*seed))
	if err != nil {
		fatal(err)
	}
	dbBits := len(data) * 8
	if *noupload {
		// The server already holds the ciphertexts (e.g. recovered from
		// its data directory after a restart). Query preparation only
		// needs the seed-derived keys and the database geometry.
		fmt.Printf("searching existing %q (no upload)\n", *name)
	} else {
		db, err := client.EncryptDatabase(data, dbBits)
		if err != nil {
			fatal(err)
		}
		if err := conn.UploadDB(*name, spec, db); err != nil {
			fatal(fmt.Errorf("uploading database: %w", err))
		}
		fmt.Printf("uploaded %q: %d encrypted chunks (%d bytes)\n", *name, len(db.Chunks), db.SizeBytes(cfg.Params))
	}

	if *queryFile != "" {
		batchSearch(conn, client, *name, *queryFile, data, dbBits)
		return
	}

	query := []byte(*queryStr)
	q, err := client.PrepareQuery(query, len(query)*8, dbBits)
	if err != nil {
		fatal(err)
	}
	candidates, err := conn.Search(*name, q)
	if err != nil {
		fatal(fmt.Errorf("remote search: %w", err))
	}
	verified := ciphermatch.VerifyCandidates(data, dbBits, query, len(query)*8, candidates)
	fmt.Printf("server returned %d candidates, %d verified\n", len(candidates), len(verified))
	for _, o := range verified {
		fmt.Printf("match at byte %d\n", o/8)
	}
}

// batchSearch reads one pattern per line from path and submits them all
// as a single MsgBatchQuery round trip.
func batchSearch(conn *proto.Conn, client *ciphermatch.Client, name, path string, data []byte, dbBits int) {
	patterns, err := ciphermatch.ReadPatternFile(path)
	if err != nil {
		fatal(err)
	}
	queries := make([]*core.Query, len(patterns))
	for i, pat := range patterns {
		if queries[i], err = client.PrepareQuery(pat, len(pat)*8, dbBits); err != nil {
			fatal(fmt.Errorf("preparing pattern %q: %w", pat, err))
		}
	}
	results, err := conn.SearchBatch(name, queries)
	if err != nil {
		fatal(fmt.Errorf("remote batch search: %w", err))
	}
	for i, pat := range patterns {
		verified := ciphermatch.VerifyCandidates(data, dbBits, pat, len(pat)*8, results[i])
		fmt.Printf("%q: %d candidates, %d verified\n", pat, len(results[i]), len(verified))
		for _, o := range verified {
			fmt.Printf("  match at byte %d\n", o/8)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmclient:", err)
	os.Exit(1)
}
