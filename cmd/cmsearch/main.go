// Command cmsearch performs a homomorphically encrypted exact string
// search over a local file: it packs and encrypts the file with the
// CIPHERMATCH scheme, runs the addition-only search with server-side index
// generation, verifies the candidates, and prints match offsets.
//
// Usage:
//
//	cmsearch -db corpus.txt -query "needle"
//	cmsearch -db genome.2bit -query-hex 1B1B -align 2
//	cmsearch -db corpus.txt -queryfile patterns.txt -engine pool
//
// With -queryfile (one pattern per line), the patterns run as one batch:
// the engine walks the encrypted database once for the whole set.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"ciphermatch"
)

func main() {
	dbPath := flag.String("db", "", "file to search (required)")
	queryStr := flag.String("query", "", "query string")
	queryHex := flag.String("query-hex", "", "query bytes in hex (alternative to -query)")
	queryFile := flag.String("queryfile", "", "file of query patterns, one per line, searched as one batch")
	align := flag.Int("align", 8, "occurrence alignment in bits (8 = byte boundaries)")
	seed := flag.String("seed", "cmsearch-default-seed", "client key/randomness seed label")
	verify := flag.Bool("verify", true, "verify candidates against the plaintext")
	engineSpec := flag.String("engine", "serial", "execution engine: kind[:workers][/shards=N], kind one of serial|pool|ssd")
	flag.Parse()

	// Exactly one query source: -query/-query-hex (single search) or
	// -queryfile (batch).
	single := *queryStr != "" || *queryHex != ""
	if *dbPath == "" || single == (*queryFile != "") {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*dbPath)
	if err != nil {
		fatal(err)
	}
	query := []byte(*queryStr)
	if *queryHex != "" {
		if query, err = hex.DecodeString(*queryHex); err != nil {
			fatal(fmt.Errorf("decoding -query-hex: %w", err))
		}
	}

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: *align,
		Mode:      ciphermatch.ModeSeededMatch,
	}
	if cfg.Engine, err = ciphermatch.ParseEngineSpec(*engineSpec); err != nil {
		fatal(err)
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed(*seed))
	if err != nil {
		fatal(err)
	}
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		fatal(err)
	}
	server, err := ciphermatch.NewServerWithEngine(cfg, db)
	if err != nil {
		fatal(err)
	}

	if *queryFile != "" {
		batchSearch(server, client, *queryFile, data, dbBits, *verify)
		return
	}

	q, err := client.PrepareQuery(query, len(query)*8, dbBits)
	if err != nil {
		fatal(err)
	}
	result, err := server.SearchAndIndex(q)
	if err != nil {
		fatal(err)
	}
	defer result.Release()

	fmt.Printf("database: %d bytes in %d encrypted chunks (%d bytes encrypted)\n",
		len(data), len(db.Chunks), db.SizeBytes(cfg.Params))
	fmt.Printf("query: %d bits, %d shift variants, %d homomorphic additions (engine %s)\n",
		len(query)*8, len(q.Residues), result.Stats.HomAdds, server.Engine().Describe())

	offsets := result.Candidates
	label := "candidate"
	if *verify {
		offsets = ciphermatch.VerifyCandidates(data, dbBits, query, len(query)*8, offsets)
		label = "verified match"
	}
	if len(offsets) == 0 {
		fmt.Println("no matches")
		return
	}
	for _, o := range offsets {
		fmt.Printf("%s at bit offset %d (byte %d)\n", label, o, o/8)
	}
}

// batchSearch runs every pattern of the -queryfile through the server
// engine's batched single-pass pipeline.
func batchSearch(server *ciphermatch.Server, client *ciphermatch.Client, path string, data []byte, dbBits int, verify bool) {
	patterns, err := ciphermatch.ReadPatternFile(path)
	if err != nil {
		fatal(err)
	}
	queries := make([]*ciphermatch.Query, len(patterns))
	for i, pat := range patterns {
		if queries[i], err = client.PrepareQuery(pat, len(pat)*8, dbBits); err != nil {
			fatal(fmt.Errorf("preparing pattern %q: %w", pat, err))
		}
	}
	results, err := server.SearchAndIndexBatch(ciphermatch.NewBatchQuery(queries...))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("batched %d patterns through engine %s\n", len(patterns), server.Engine().Describe())
	for i, pat := range patterns {
		offsets := results[i].Candidates
		label := "candidates"
		if verify {
			offsets = ciphermatch.VerifyCandidates(data, dbBits, pat, len(pat)*8, offsets)
			label = "verified matches"
		}
		fmt.Printf("%q: %d %s (%d homomorphic additions)\n", pat, len(offsets), label, results[i].Stats.HomAdds)
		for _, o := range offsets {
			fmt.Printf("  bit offset %d (byte %d)\n", o, o/8)
		}
	}
	for _, ir := range results {
		ir.Release()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmsearch:", err)
	os.Exit(1)
}
