// Command cmbench regenerates the paper's tables and figures from the
// models and simulators in this repository, printing each as a text table
// with the paper's reported values alongside.
//
// Usage:
//
//	cmbench                 # run every experiment
//	cmbench -exp fig7,fig10 # run selected experiments
//	cmbench -exp none       # run no experiments (with -json: bench only)
//	cmbench -list           # list experiment IDs
//	cmbench -csv results/   # also write one CSV per experiment
//	cmbench -json out.json  # also run the per-engine search benchmark,
//	                        # the cold-load benchmark and the serving
//	                        # storm (coalescing off vs on), and write
//	                        # machine-readable results
//	cmbench -kernels        # print the per-dispatch-path kernel table
//	                        # (coefficients/sec, arena GB/s)
//
// The ring kernel dispatch path (generic | unrolled | avx2) is chosen
// at startup by CPU detection and forceable with CM_KERNEL; every run
// prints the active path so recorded numbers are attributable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ciphermatch/internal/harness"
	"ciphermatch/internal/perfmodel"
	"ciphermatch/internal/ring"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs, 'all', or 'none'")
	list := flag.Bool("list", false, "list available experiments and exit")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	jsonOut := flag.String("json", "", "file to write machine-readable engine benchmark results (e.g. BENCH_results.json)")
	compare := flag.String("compare", "", "baseline BENCH_results.json to print a per-engine delta table against (requires -json)")
	kernels := flag.Bool("kernels", false, "run the ring kernel microbenchmark over every available dispatch path and print a coefficients/sec table")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	fmt.Printf("kernel path: %s (avx2 available: %v)\n", ring.ActiveKernel(), ring.AVX2Supported())
	if note := ring.KernelInitNote(); note != "" {
		fmt.Printf("kernel note: %s\n", note)
	}

	var selected []harness.Experiment
	switch *exp {
	case "all":
		selected = harness.All()
	case "none":
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cmbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	model := perfmodel.NewPaperModel()
	exitCode := 0
	for _, e := range selected {
		tbl, err := e.Run(model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: %s failed: %v\n", e.ID, err)
			exitCode = 1
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: rendering %s: %v\n", e.ID, err)
			exitCode = 1
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "cmbench: writing CSV for %s: %v\n", e.ID, err)
				exitCode = 1
			}
		}
	}
	if *kernels {
		results, err := harness.RunKernelBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: kernel benchmark: %v\n", err)
			exitCode = 1
		} else {
			fmt.Println("ring kernels (per dispatch path):")
			harness.WriteKernelBenchTable(os.Stdout, results)
		}
	}
	if *jsonOut != "" {
		if err := writeEngineBench(*jsonOut, *compare); err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: engine benchmark: %v\n", err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// writeEngineBench runs the per-engine search benchmark (the same
// workload as the BenchmarkEngine sub-benchmarks) plus the segment
// store's cold-load vs warm-search benchmark, and writes the
// machine-readable report, so successive PRs can diff ns/op, HomAdds/s,
// allocs/op and cold-load latency per engine kind.
func writeEngineBench(path, baseline string) error {
	report, err := harness.RunEngineBench(harness.DefaultEngineBenchSpecs())
	if err != nil {
		return err
	}
	if report.ColdLoads, err = harness.RunColdLoadBench(harness.DefaultEngineBenchSpecs()); err != nil {
		return err
	}
	if report.Storm, err = harness.RunStormBench(0, 0); err != nil {
		return err
	}
	if report.TraceOverhead, err = harness.RunTraceOverheadBench(); err != nil {
		return err
	}
	if report.Kernels, err = harness.RunKernelBench(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, e := range report.Engines {
		fmt.Printf("engine-bench %-16s %12.0f ns/op %14.0f HomAdds/s %6d allocs/op %6d chunk-streams/op\n",
			e.Engine, e.NsPerOp, e.HomAddsPerSec, e.AllocsPerOp, e.ChunkStreamsPerOp)
	}
	for _, e := range report.EnginesLarge {
		fmt.Printf("engine-large %-16s %12.0f ns/op %14.0f HomAdds/s %6d allocs/op %6d chunk-streams/op\n",
			e.Engine, e.NsPerOp, e.HomAddsPerSec, e.AllocsPerOp, e.ChunkStreamsPerOp)
	}
	for _, k := range report.Kernels {
		fmt.Printf("kernel-bench %-7s %-9s %-8s R=%d %12.0f ns/op %12.3e coeffs/s %7.2f arena-GB/s %3d allocs/op\n",
			k.Kernel, k.Path, k.QClass, k.R, k.NsPerOp, k.CoeffsPerSec, k.ArenaGBPerSec, k.AllocsPerOp)
	}
	for _, c := range report.ColdLoads {
		fmt.Printf("cold-load    %-16s %12.0f ns cold-load %10.0f ns warm-search  mmap=%v madvise=%v (%d-byte segment)\n",
			c.Engine, c.ColdLoadNsPerOp, c.WarmSearchNsPerOp, c.Mapped, c.Advised, c.SegmentBytes)
	}
	fmt.Printf("query-bytes  factored %d legacy %d\n", report.QueryBytes, report.LegacyQueryBytes)
	if s := report.Storm; s != nil {
		fmt.Printf("storm        %d conns %10.0f qps unbatched %10.0f qps coalesced (%+.1f%%) occupancy %.2f  %.1f streams/query (solo %d)\n",
			s.Conns, s.BaselineQPS, s.QPS, s.SpeedupPct, s.BatchOccupancyMean,
			s.ChunkStreamsPerQuery, s.UnbatchedChunkStreamsPerQuery)
		for _, st := range s.Stages {
			fmt.Printf("storm-stage  %-14s %8d samples %9.3f ms mean %9.3f ms p95\n",
				st.Stage, st.Count, st.MeanMs, st.P95Ms)
		}
	}
	if to := report.TraceOverhead; to != nil {
		fmt.Printf("trace-tax    %8.0f ns record vs %10.0f ns serial search = %.3f%% (%d allocs/op)\n",
			to.TraceNsPerOp, to.SearchNsPerOp, to.OverheadPct, to.TraceAllocs)
	}
	if baseline != "" {
		old, err := harness.ReadEngineBenchReport(baseline)
		if err != nil {
			// The report itself was produced and closed; a missing or
			// unreadable baseline degrades the run to "no delta table"
			// rather than discarding the benchmark.
			fmt.Fprintf(os.Stderr, "cmbench: skipping delta table: %v\n", err)
			return nil
		}
		report.WriteDelta(os.Stdout, old)
	}
	return nil
}

func writeCSV(dir string, tbl *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
