// Command cmstorm is a closed-loop load generator for cmserver: it
// uploads one encrypted database per tenant, hammers them from -conns
// concurrent connections for -duration (optionally throttled to -qps
// per connection), checks every reply against locally computed ground
// truth, and reports latency percentiles plus the server's own serving
// metrics delta — coalesce rate, mean batch occupancy, arena passes
// saved. It is the serving-perf scenario behind the repo's benchmark
// numbers and the CI load-smoke job.
//
// Every query is prepared with the tenant's keys and verified bit-for-
// bit, so a nonzero wrong_results means the server dropped or crossed
// results under load — the failure coalescing bugs would produce.
//
// Usage:
//
//	cmstorm -addr localhost:7448 -conns 16 -duration 5s
//	cmstorm -addr localhost:7448 -tenants 4 -qps 200 -json -
//	cmstorm -addr localhost:7448 -require-coalesce   # CI: exit 1 unless coalescing engaged cleanly
//	cmstorm -addr localhost:7448 -retries 6 -require-robust   # CI chaos gate against a -fault server
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/harness"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", "localhost:7448", "cmserver address")
	conns := flag.Int("conns", 8, "concurrent closed-loop client connections")
	qps := flag.Float64("qps", 0, "per-connection query rate (0 = unthrottled closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "storm duration")
	tenants := flag.Int("tenants", 1, "databases to upload and spread connections across")
	dbBytes := flag.Int("db-bytes", 4096, "plaintext bytes per tenant database")
	seed := flag.String("seed", "cmstorm", "deterministic fixture seed")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout)")
	requireCoalesce := flag.Bool("require-coalesce", false,
		"exit nonzero unless the run coalesced (coalesce rate > 0) with zero errors and zero wrong results")
	retries := flag.Int("retries", 0, "per-connection retry budget for read-only requests (0 = retries off)")
	retryBase := flag.Duration("retry-base", 5*time.Millisecond, "first backoff step when -retries is set")
	retryMax := flag.Duration("retry-max", 250*time.Millisecond, "backoff cap when -retries is set")
	retryTimeout := flag.Duration("retry-timeout", 0, "per-attempt I/O deadline when -retries is set (0 = none)")
	requireRobust := flag.Bool("require-robust", false,
		"exit nonzero unless the run finished with zero wrong results and zero untyped client errors — the chaos-smoke gate for fault-injected servers")
	flag.Parse()
	if *tenants < 1 || *conns < 1 {
		fmt.Fprintln(os.Stderr, "cmstorm: -tenants and -conns must be >= 1")
		os.Exit(2)
	}

	p := bfv.ParamsPaper()
	var targets []harness.StormTarget
	for i := 0; i < *tenants; i++ {
		name := fmt.Sprintf("storm-%s-%d", *seed, i)
		db, tgt, err := harness.NewStormTenant(p, name, *seed, *dbBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm: building tenant:", err)
			os.Exit(1)
		}
		// The protocol layer never auto-retries mutating requests, but a
		// same-name re-upload of identical ciphertexts is idempotent, so
		// against a fault-injected server the generator replays the whole
		// upload (fresh dial each attempt — a drop poisons the stream).
		if err := uploadWithRetry(*addr, p, name, db, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm: upload:", err)
			os.Exit(1)
		}
		targets = append(targets, *tgt)
		fmt.Fprintf(os.Stderr, "cmstorm: uploaded %s (%d bytes, %d queries)\n", name, *dbBytes, len(tgt.Queries))
	}

	rep, err := harness.RunStorm(harness.StormConfig{
		Addr:       *addr,
		Params:     p,
		Targets:    targets,
		Conns:      *conns,
		PerConnQPS: *qps,
		Duration:   *duration,
		Retry: proto.RetryPolicy{
			Max: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax,
			Timeout: *retryTimeout, Seed: *seed,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmstorm:", err)
		os.Exit(1)
	}

	fmt.Printf("cmstorm: %d conns x %.1fs against %d tenant(s): %d queries, %.0f qps\n",
		rep.Conns, rep.DurationSec, len(targets), rep.Queries, rep.QPS)
	fmt.Printf("  latency ms: mean %.2f p50 %.2f p95 %.2f p99 %.2f max %.2f\n",
		rep.LatMeanMs, rep.LatP50Ms, rep.LatP95Ms, rep.LatP99Ms, rep.LatMaxMs)
	fmt.Printf("  errors %d, rejected %d, server faults %d, wrong results %d\n",
		rep.Errors, rep.Rejected, rep.ServerFaults, rep.WrongResults)
	fmt.Printf("  recovery: %d retries, %d reconnects\n", rep.Retries, rep.Reconnects)
	fmt.Printf("  server: %d queries in %d batches, coalesce rate %.2f, occupancy %.2f\n",
		rep.ServerQueries, rep.Batches, rep.CoalesceRate, rep.BatchOccupancyMean)
	fmt.Printf("  arena: %.1f chunk streams/query vs %d unbatched, %d streams saved\n",
		rep.ChunkStreamsPerQuery, rep.UnbatchedChunkStreamsPerQuery, rep.ChunkStreamsSaved)
	if len(rep.Stages) > 0 {
		fmt.Printf("  stage latency (ms, %d trace samples, %d client-correlated):\n",
			rep.TraceSamples, rep.TraceCorrelated)
		fmt.Printf("    %-14s %8s %9s %9s %9s %9s\n", "stage", "count", "mean", "p50", "p95", "p99")
		for _, st := range rep.Stages {
			fmt.Printf("    %-14s %8d %9.3f %9.3f %9.3f %9.3f\n",
				st.Stage, st.Count, st.MeanMs, st.P50Ms, st.P95Ms, st.P99Ms)
		}
	}
	for _, ts := range rep.Tenants {
		fmt.Printf("  tenant %-24s %6d queries %4d errors  p50 %.2f p95 %.2f p99 %.2f ms (%d samples)\n",
			ts.DB, ts.Queries, ts.Errors, ts.P50Ms, ts.P95Ms, ts.P99Ms, ts.TraceSamples)
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cmstorm:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm:", err)
			os.Exit(1)
		}
	}

	if *requireCoalesce {
		switch {
		case rep.Errors > 0 || rep.WrongResults > 0:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: %d errors, %d wrong results\n", rep.Errors, rep.WrongResults)
			os.Exit(1)
		case rep.CoalesceRate <= 0 || rep.BatchOccupancyMean <= 1:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: coalescing did not engage (rate %.2f, occupancy %.2f)\n",
				rep.CoalesceRate, rep.BatchOccupancyMean)
			os.Exit(1)
		case rep.Queries == 0:
			fmt.Fprintln(os.Stderr, "cmstorm: FAIL: no queries completed")
			os.Exit(1)
		}
		fmt.Println("cmstorm: PASS: coalescing engaged, zero dropped results")
	}
	if *requireRobust {
		switch {
		case rep.WrongResults > 0:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: %d wrong results — faults corrupted answers\n", rep.WrongResults)
			os.Exit(1)
		case rep.Errors > 0:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: %d untyped client errors — faults escaped the typed-error/retry contract\n", rep.Errors)
			os.Exit(1)
		case rep.Queries == 0:
			fmt.Fprintln(os.Stderr, "cmstorm: FAIL: no queries completed")
			os.Exit(1)
		}
		fmt.Printf("cmstorm: PASS: robust (%d queries, %d retries, %d reconnects, %d typed faults, 0 wrong results)\n",
			rep.Queries, rep.Retries, rep.Reconnects, rep.ServerFaults)
	}
}

// uploadWithRetry ships db to the server, replaying the full upload on
// a fresh connection up to retries extra times with linear backoff.
func uploadWithRetry(addr string, p bfv.Params, name string, db *core.EncryptedDB, retries int) error {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
		}
		var conn *proto.Conn
		if conn, err = proto.Dial(addr, p); err != nil {
			continue
		}
		err = conn.UploadDB(name, core.EngineSpec{}, db)
		conn.Close()
		if err == nil {
			return nil
		}
	}
	return err
}
