// Command cmstorm is a closed-loop load generator for cmserver: it
// uploads one encrypted database per tenant, hammers them from -conns
// concurrent connections for -duration (optionally throttled to -qps
// per connection), checks every reply against locally computed ground
// truth, and reports latency percentiles plus the server's own serving
// metrics delta — coalesce rate, mean batch occupancy, arena passes
// saved. It is the serving-perf scenario behind the repo's benchmark
// numbers and the CI load-smoke job.
//
// Every query is prepared with the tenant's keys and verified bit-for-
// bit, so a nonzero wrong_results means the server dropped or crossed
// results under load — the failure coalescing bugs would produce.
//
// Usage:
//
//	cmstorm -addr localhost:7448 -conns 16 -duration 5s
//	cmstorm -addr localhost:7448 -tenants 4 -qps 200 -json -
//	cmstorm -addr localhost:7448 -require-coalesce   # CI: exit 1 unless coalescing engaged cleanly
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/harness"
	"ciphermatch/internal/proto"
)

func main() {
	addr := flag.String("addr", "localhost:7448", "cmserver address")
	conns := flag.Int("conns", 8, "concurrent closed-loop client connections")
	qps := flag.Float64("qps", 0, "per-connection query rate (0 = unthrottled closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "storm duration")
	tenants := flag.Int("tenants", 1, "databases to upload and spread connections across")
	dbBytes := flag.Int("db-bytes", 4096, "plaintext bytes per tenant database")
	seed := flag.String("seed", "cmstorm", "deterministic fixture seed")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout)")
	requireCoalesce := flag.Bool("require-coalesce", false,
		"exit nonzero unless the run coalesced (coalesce rate > 0) with zero errors and zero wrong results")
	flag.Parse()
	if *tenants < 1 || *conns < 1 {
		fmt.Fprintln(os.Stderr, "cmstorm: -tenants and -conns must be >= 1")
		os.Exit(2)
	}

	p := bfv.ParamsPaper()
	var targets []harness.StormTarget
	for i := 0; i < *tenants; i++ {
		name := fmt.Sprintf("storm-%s-%d", *seed, i)
		db, tgt, err := harness.NewStormTenant(p, name, *seed, *dbBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm: building tenant:", err)
			os.Exit(1)
		}
		conn, err := proto.Dial(*addr, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm: dial:", err)
			os.Exit(1)
		}
		if err := conn.UploadDB(name, core.EngineSpec{}, db); err != nil {
			conn.Close()
			fmt.Fprintln(os.Stderr, "cmstorm: upload:", err)
			os.Exit(1)
		}
		conn.Close()
		targets = append(targets, *tgt)
		fmt.Fprintf(os.Stderr, "cmstorm: uploaded %s (%d bytes, %d queries)\n", name, *dbBytes, len(tgt.Queries))
	}

	rep, err := harness.RunStorm(harness.StormConfig{
		Addr:       *addr,
		Params:     p,
		Targets:    targets,
		Conns:      *conns,
		PerConnQPS: *qps,
		Duration:   *duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmstorm:", err)
		os.Exit(1)
	}

	fmt.Printf("cmstorm: %d conns x %.1fs against %d tenant(s): %d queries, %.0f qps\n",
		rep.Conns, rep.DurationSec, len(targets), rep.Queries, rep.QPS)
	fmt.Printf("  latency ms: mean %.2f p50 %.2f p95 %.2f p99 %.2f max %.2f\n",
		rep.LatMeanMs, rep.LatP50Ms, rep.LatP95Ms, rep.LatP99Ms, rep.LatMaxMs)
	fmt.Printf("  errors %d, rejected %d, wrong results %d\n", rep.Errors, rep.Rejected, rep.WrongResults)
	fmt.Printf("  server: %d queries in %d batches, coalesce rate %.2f, occupancy %.2f\n",
		rep.ServerQueries, rep.Batches, rep.CoalesceRate, rep.BatchOccupancyMean)
	fmt.Printf("  arena: %.1f chunk streams/query vs %d unbatched, %d streams saved\n",
		rep.ChunkStreamsPerQuery, rep.UnbatchedChunkStreamsPerQuery, rep.ChunkStreamsSaved)

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cmstorm:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cmstorm:", err)
			os.Exit(1)
		}
	}

	if *requireCoalesce {
		switch {
		case rep.Errors > 0 || rep.WrongResults > 0:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: %d errors, %d wrong results\n", rep.Errors, rep.WrongResults)
			os.Exit(1)
		case rep.CoalesceRate <= 0 || rep.BatchOccupancyMean <= 1:
			fmt.Fprintf(os.Stderr, "cmstorm: FAIL: coalescing did not engage (rate %.2f, occupancy %.2f)\n",
				rep.CoalesceRate, rep.BatchOccupancyMean)
			os.Exit(1)
		case rep.Queries == 0:
			fmt.Fprintln(os.Stderr, "cmstorm: FAIL: no queries completed")
			os.Exit(1)
		}
		fmt.Println("cmstorm: PASS: coalescing engaged, zero dropped results")
	}
}
