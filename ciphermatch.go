// Package ciphermatch is an open-source reproduction of CIPHERMATCH
// (Kabra et al., ASPLOS 2025): homomorphic-encryption-based secure exact
// string matching accelerated by memory-efficient data packing and
// in-flash processing.
//
// The package exposes four layers:
//
//   - the BFV-based secure matcher (Client / Server): pack a database 16
//     bits per plaintext coefficient, encrypt it, and search it with
//     homomorphic additions only;
//   - two baselines the paper compares against (YasudaMatcher,
//     BooleanMatcher);
//   - the hardware simulators: the NAND-flash in-flash-processing SSD
//     (NewSSD) whose CM-search runs the bit-serial-addition µ-program of
//     Fig. 5, and the SIMDRAM-style PuM bank;
//   - the performance/energy model and experiment harness that regenerate
//     every table and figure of the paper's evaluation (see cmd/cmbench).
//
// Quickstart:
//
//	client, _ := ciphermatch.NewClient(ciphermatch.Config{
//		Params: ciphermatch.ParamsPaper(),
//		Mode:   ciphermatch.ModeSeededMatch,
//	}, ciphermatch.NewSeed("my-secret-seed"))
//	db, _ := client.EncryptDatabase(data, len(data)*8)
//	server := ciphermatch.NewServer(ciphermatch.ParamsPaper(), db)
//	query, _ := client.PrepareQuery(needle, len(needle)*8, len(data)*8)
//	result, _ := server.SearchAndIndex(query)
//	fmt.Println(result.Candidates) // bit offsets of matches
//
// The implementation is a research artifact: the cryptography is not
// constant-time and the paper's parameter set trades security margin for
// evaluation speed (see DESIGN.md §11). Do not protect real data with it.
package ciphermatch

import (
	"fmt"
	"os"
	"strings"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/flash"
	"ciphermatch/internal/perfmodel"
	"ciphermatch/internal/pum"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/ssd"
)

// Core matcher types (see internal/core for full documentation).
type (
	// Config configures the matcher: parameters, occurrence alignment,
	// index-generation mode.
	Config = core.Config
	// Client is the data owner: key holder, database encryptor, query
	// builder.
	Client = core.Client
	// Server stores the encrypted database and runs addition-only search.
	Server = core.Server
	// Query is the encrypted query artifact: shift-variant patterns
	// plus, in ModeSeededMatch, factored match tokens (a per-chunk
	// DBTok plane and per-phase RHS comparands — R× smaller on the
	// wire than the legacy per-(residue, chunk) token expansion, which
	// Client.PrepareLegacyQuery still produces for old servers).
	Query = core.Query
	// EncryptedDB is the packed, encrypted database.
	EncryptedDB = core.EncryptedDB
	// SearchResult holds per-(variant, chunk) result ciphertexts
	// (ModeClientDecrypt).
	SearchResult = core.SearchResult
	// IndexResult holds server-generated hit bitmaps and candidates
	// (ModeSeededMatch).
	IndexResult = core.IndexResult
	// IndexMode selects client-side or server-side index generation.
	IndexMode = core.IndexMode
	// HitBitmaps maps shift residues to window-hit bitmaps.
	HitBitmaps = core.HitBitmaps
	// Bitset is the packed window-hit bitmap: one bit per 16-bit
	// database window, written directly by the fused search kernels.
	Bitset = core.Bitset

	// Engine is the backend-agnostic execution interface: the serial CPU
	// path, the worker-pool path, chunk-range sharded compositions and
	// the in-flash simulator all satisfy it and return identical results.
	Engine = core.Engine
	// BatchQuery carries N independent queries against one database, so
	// an engine can amortise a single pass over the encrypted chunks
	// across all of them (see SearchBatch).
	BatchQuery = core.BatchQuery
	// BatchSearcher is the batched extension of Engine; every built-in
	// engine satisfies it.
	BatchSearcher = core.BatchSearcher
	// EngineSpec selects and parameterises an engine
	// ("kind[:workers][/shards=N]"; see ParseEngineSpec).
	EngineSpec = core.EngineSpec

	// YasudaMatcher is the arithmetic baseline [27].
	YasudaMatcher = core.YasudaMatcher
	// BooleanMatcher is the Boolean baseline [17]/[33].
	BooleanMatcher = core.BooleanMatcher

	// Params is a BFV parameter set.
	Params = bfv.Params

	// Seed is a deterministic randomness source; database encryption
	// randomness derives from it (enabling ModeSeededMatch).
	Seed = rng.Source
)

// Index-generation modes.
const (
	// ModeClientDecrypt returns result ciphertexts for the client to
	// decrypt — always cryptographically conventional.
	ModeClientDecrypt = core.ModeClientDecrypt
	// ModeSeededMatch ships "encrypted match polynomial" tokens so the
	// server's index-generation unit finds hits (the paper's flow).
	ModeSeededMatch = core.ModeSeededMatch
)

// ParamsPaper returns the paper's BFV configuration (n=1024, log q=32,
// log t=16).
func ParamsPaper() Params { return bfv.ParamsPaper() }

// ParamsN2048 returns the conservative-security preset.
func ParamsN2048() Params { return bfv.ParamsN2048() }

// NewSeed derives a deterministic seed from a label. Use
// ciphermatch.NewRandomSeed for production-style entropy.
func NewSeed(label string) *Seed { return rng.NewSourceFromString(label) }

// NewRandomSeed draws a seed from the OS entropy pool.
func NewRandomSeed() (*Seed, error) { return rng.NewRandomSource() }

// NewClient creates a matcher client with fresh keys derived from seed.
func NewClient(cfg Config, seed *Seed) (*Client, error) { return core.NewClient(cfg, seed) }

// Engine kinds for EngineSpec / Config.Engine.
const (
	// EngineSerial executes searches on the calling goroutine.
	EngineSerial = core.EngineSerial
	// EnginePool fans (variant, chunk) batches across a persistent
	// worker pool.
	EnginePool = core.EnginePool
	// EngineSSD executes CM-search inside the simulated in-flash drive.
	EngineSSD = core.EngineSSD
)

// NewServer creates a matcher server over an encrypted database.
func NewServer(p Params, db *EncryptedDB) *Server { return core.NewServer(p, db) }

// NewServerWithEngine creates a matcher server whose SearchAndIndex
// runs on the engine selected by cfg.Engine — the same search moved
// between substrates, as the paper moves it between CPU, PuM and flash.
func NewServerWithEngine(cfg Config, db *EncryptedDB) (*Server, error) {
	eng, err := NewEngine(cfg.Params, db, cfg.Engine)
	if err != nil {
		return nil, err
	}
	return core.NewServerWithEngine(cfg.Params, db, eng), nil
}

// NewEngine builds a standalone execution engine for an encrypted
// database (serial, pool, ssd, each optionally chunk-range sharded).
func NewEngine(p Params, db *EncryptedDB, spec EngineSpec) (Engine, error) {
	return engine.Build(p, db, spec)
}

// ParseEngineSpec reads "kind[:workers][/shards=N]", e.g. "serial",
// "pool:8" or "ssd/shards=4".
func ParseEngineSpec(s string) (EngineSpec, error) { return engine.Parse(s) }

// NewBatchQuery assembles queries into a batch, deduplicating pattern
// ciphertexts shared between members (e.g. the same hot query issued by
// several users of one data owner), so batch execution evaluates each
// distinct pattern once per chunk.
func NewBatchQuery(queries ...*Query) *BatchQuery { return core.NewBatchQuery(queries...) }

// SearchBatch executes every member of bq on e — through the engine's
// single-pass batch pipeline where it has one, sequentially otherwise —
// and returns one IndexResult per member, identical to per-member
// SearchAndIndex calls.
func SearchBatch(e Engine, bq *BatchQuery) ([]*IndexResult, error) { return core.SearchBatch(e, bq) }

// ReadPatternFile loads the batch-query file format the CLIs' -queryfile
// flag accepts: one pattern per line, blank lines skipped, CRLF
// tolerated. It errors on an empty pattern set.
func ReadPatternFile(path string) ([][]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var patterns [][]byte
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimRight(line, "\r"); line != "" {
			patterns = append(patterns, []byte(line))
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("ciphermatch: pattern file %s holds no patterns", path)
	}
	return patterns, nil
}

// NewBitset returns a zeroed window-hit bitset of n bits, drawing
// storage from the shared bitset pool.
func NewBitset(n int) *Bitset { return core.NewBitset(n) }

// Candidates converts hit bitmaps into candidate occurrence offsets.
func Candidates(hits HitBitmaps, dbBits, queryBits, alignBits int) []int {
	return core.Candidates(hits, dbBits, queryBits, alignBits)
}

// VerifyCandidates filters candidates against the plaintext database (data
// owner's exact verification pass).
func VerifyCandidates(db []byte, dbBits int, query []byte, queryBits int, candidates []int) []int {
	return core.VerifyCandidates(db, dbBits, query, queryBits, candidates)
}

// FindOccurrences is the plaintext-domain ground truth matcher.
func FindOccurrences(db []byte, dbBits int, query []byte, queryBits, alignBits int) []int {
	return core.FindOccurrences(db, dbBits, query, queryBits, alignBits)
}

// Simulator types.
type (
	// SSD is the CIPHERMATCH-enabled drive simulator: CM-write/CM-read/
	// CM-search with functional in-flash bit-serial addition.
	SSD = ssd.SSD
	// SSDConfig is the drive configuration (Table 3 defaults).
	SSDConfig = ssd.Config
	// FlashPlane is one NAND plane with the latch-circuit extensions.
	FlashPlane = flash.Plane
	// PuMBank is one SIMDRAM-style processing-using-memory bank.
	PuMBank = pum.Bank
)

// Transposition-unit kinds for the SSD controller.
const (
	// SoftwareTransposition runs on the controller cores (§4.3.2).
	SoftwareTransposition = ssd.SoftwareTransposition
	// HardwareTransposition is the dedicated unit of §7.1.
	HardwareTransposition = ssd.HardwareTransposition
)

// DefaultSSDConfig returns the Table 3 drive configuration.
func DefaultSSDConfig() SSDConfig { return ssd.DefaultConfig() }

// NewSSD creates the CM-IFP drive simulator.
func NewSSD(cfg SSDConfig, p Params, kind ssd.TranspositionKind) (*SSD, error) {
	return ssd.New(cfg, p, kind)
}

// NewFlashPlane creates a standalone NAND plane simulator with Table 3
// timing and energy.
func NewFlashPlane() *FlashPlane {
	return flash.NewPlane(flash.DefaultGeometry(), flash.DefaultTiming(), flash.DefaultEnergy())
}

// NewPuMBank creates a SIMDRAM-style bank on external DDR4 parameters.
func NewPuMBank() *PuMBank { return pum.NewBank(pum.ExternalDDR4()) }

// Model is the performance/energy model behind the figure reproductions.
type Model = perfmodel.Model

// NewModel returns the model with all paper constants.
func NewModel() *Model { return perfmodel.NewPaperModel() }

// Search is the one-call convenience API: it encrypts data under a fresh
// seeded client, searches for query, and returns the verified occurrence
// bit offsets (multiples of alignBits). It runs client and server roles
// in-process; use the Client/Server API for real deployments.
func Search(data, query []byte, alignBits int, seed *Seed) ([]int, error) {
	cfg := Config{Params: ParamsPaper(), AlignBits: alignBits, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, seed)
	if err != nil {
		return nil, err
	}
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		return nil, err
	}
	server := NewServer(cfg.Params, db)
	q, err := client.PrepareQuery(query, len(query)*8, dbBits)
	if err != nil {
		return nil, err
	}
	ir, err := server.SearchAndIndex(q)
	if err != nil {
		return nil, err
	}
	defer ir.Release()
	return VerifyCandidates(data, dbBits, query, len(query)*8, ir.Candidates), nil
}
