package ciphermatch

import (
	"bytes"
	"testing"
)

func TestSearchConvenience(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog; the fox returns")
	hits, err := Search(data, []byte("fox"), 8, NewSeed("test-seed"))
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i+3 <= len(data); i++ {
		if bytes.Equal(data[i:i+3], []byte("fox")) {
			want = append(want, i*8)
		}
	}
	if len(hits) != len(want) {
		t.Fatalf("Search = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("Search = %v, want %v", hits, want)
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	hits, err := Search([]byte("aaaaaaaaaaaaaaaa"), []byte("zz"), 8, NewSeed("none"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("unexpected hits %v", hits)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if ParamsPaper().N != 1024 || ParamsN2048().N != 2048 {
		t.Fatal("parameter presets wrong")
	}
	if _, err := NewRandomSeed(); err != nil {
		t.Fatal(err)
	}
	m := NewModel()
	if m.Real.Cores != 6 {
		t.Fatal("model constants wrong")
	}
	p := NewFlashPlane()
	if p.Geometry().PageBytes != 4096 {
		t.Fatal("flash plane defaults wrong")
	}
	b := NewPuMBank()
	if b.Config().RowBytes != 8192 {
		t.Fatal("pum bank defaults wrong")
	}
	if _, err := NewSSD(DefaultSSDConfig(), ParamsPaper(), SoftwareTransposition); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesThroughFacade moves one search across every substrate via
// Config.Engine and checks the results agree.
func TestEnginesThroughFacade(t *testing.T) {
	data := append(bytes.Repeat([]byte("y"), 600), []byte("needle-in-haystack")...)
	query := []byte("needle")
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, NewSeed("facade-engines"))
	if err != nil {
		t.Fatal(err)
	}
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(query, 48, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, specStr := range []string{"serial", "pool:4", "ssd"} {
		if cfg.Engine, err = ParseEngineSpec(specStr); err != nil {
			t.Fatal(err)
		}
		server, err := NewServerWithEngine(cfg, db)
		if err != nil {
			t.Fatalf("%s: %v", specStr, err)
		}
		ir, err := server.SearchAndIndex(q)
		if err != nil {
			t.Fatalf("%s: %v", specStr, err)
		}
		verified := VerifyCandidates(data, dbBits, query, 48, ir.Candidates)
		if len(verified) != 1 || verified[0] != 600*8 {
			t.Fatalf("%s: verified = %v, want [4800]", specStr, verified)
		}
		if got := server.Engine().Stats().HomAdds; got != ir.Stats.HomAdds || got == 0 {
			t.Fatalf("%s: engine stats %d != call stats %d", specStr, got, ir.Stats.HomAdds)
		}
	}
}

func TestClientServerRoundtripPaperParams(t *testing.T) {
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeClientDecrypt}
	client, err := NewClient(cfg, NewSeed("paper-params"))
	if err != nil {
		t.Fatal(err)
	}
	data := append(bytes.Repeat([]byte("x"), 3000), []byte("needle-in-haystack")...)
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Chunks) < 2 {
		t.Fatalf("expected multiple chunks at n=1024, got %d", len(db.Chunks))
	}
	server := NewServer(cfg.Params, db)
	q, err := client.PrepareQuery([]byte("needle"), 48, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	hits := client.ExtractHits(q, sr)
	cands := Candidates(hits, dbBits, 48, 8)
	verified := VerifyCandidates(data, dbBits, []byte("needle"), 48, cands)
	if len(verified) != 1 || verified[0] != 3000*8 {
		t.Fatalf("verified = %v, want [24000]", verified)
	}
}
