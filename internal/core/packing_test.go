package core

import (
	"testing"

	"ciphermatch/internal/bfv"
)

func TestPackSegmentsBasic(t *testing.T) {
	data := []byte{0xAB, 0xCD, 0xEF, 0x01}
	segs := PackSegments(data, 32)
	if len(segs) != 2 || segs[0] != 0xABCD || segs[1] != 0xEF01 {
		t.Fatalf("PackSegments = %#v", segs)
	}
}

func TestPackSegmentsTailMasking(t *testing.T) {
	// 20 bits: the final segment must zero-pad below bit 4, even when the
	// storage bytes contain garbage there.
	data := []byte{0xAB, 0xCD, 0xFF}
	segs := PackSegments(data, 20)
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments, got %d", len(segs))
	}
	if segs[0] != 0xABCD {
		t.Fatalf("segs[0] = %#x", segs[0])
	}
	if segs[1] != 0xF000 {
		t.Fatalf("segs[1] = %#x, want 0xF000", segs[1])
	}
}

func TestPackSegmentsEmpty(t *testing.T) {
	if segs := PackSegments(nil, 0); len(segs) != 0 {
		t.Fatalf("PackSegments(nil) = %v", segs)
	}
}

func TestChunkPlaintexts(t *testing.T) {
	p := bfv.ParamsToy() // n = 64
	segs := make([]uint16, 100)
	for i := range segs {
		segs[i] = uint16(i + 1)
	}
	pts, err := ChunkPlaintexts(segs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("expected 2 chunks, got %d", len(pts))
	}
	if pts[0].Coeffs[0] != 1 || pts[0].Coeffs[63] != 64 {
		t.Fatal("chunk 0 contents wrong")
	}
	if pts[1].Coeffs[0] != 65 || pts[1].Coeffs[35] != 100 {
		t.Fatal("chunk 1 contents wrong")
	}
	for i := 36; i < 64; i++ {
		if pts[1].Coeffs[i] != 0 {
			t.Fatal("chunk padding not zero")
		}
	}
	// Empty input still yields one (zero) chunk.
	pts, err = ChunkPlaintexts(nil, p)
	if err != nil || len(pts) != 1 {
		t.Fatalf("empty input: %v, %d chunks", err, len(pts))
	}
}

func TestFootprintRatios(t *testing.T) {
	p := bfv.ParamsPaper()
	// Exactly one full ciphertext worth of data: ratios hit the paper's
	// lower bounds of §4.2.1 (4× for CIPHERMATCH, 64× for Yasuda).
	dbBits := int64(p.N * 16)
	if got := FootprintCiphermatch(dbBits, p).Expansion(); got != 4.0 {
		t.Errorf("CIPHERMATCH expansion = %v, want 4", got)
	}
	if got := FootprintYasuda(dbBits, p).Expansion(); got != 64.0 {
		t.Errorf("Yasuda expansion = %v, want 64", got)
	}
	if got := FootprintBoolean(dbBits).Expansion(); got <= 200 {
		t.Errorf("Boolean expansion = %v, want > 200 (paper §3.1)", got)
	}
}

func TestFootprintPartialCiphertext(t *testing.T) {
	p := bfv.ParamsPaper()
	// One bit still costs a whole ciphertext.
	f := FootprintCiphermatch(1, p)
	if f.EncryptedBytes != int64(p.CiphertextBytes()) {
		t.Errorf("1-bit footprint = %d, want %d", f.EncryptedBytes, p.CiphertextBytes())
	}
}

func TestFullWindowsAndDetectable(t *testing.T) {
	cases := []struct {
		o, y   int
		w0, w1 int
	}{
		{0, 16, 0, 1},
		{0, 32, 0, 2},
		{16, 16, 1, 2},
		{1, 16, 1, 1},  // undetectable: no full window
		{1, 32, 1, 2},  // one full window
		{15, 31, 1, 2}, // worst-case offset, 31 bits: exactly one window
		{17, 30, 2, 2}, // 30 bits can be undetectable
	}
	for _, c := range cases {
		w0, w1 := FullWindows(c.o, c.y)
		if w0 != c.w0 || w1 != c.w1 {
			t.Errorf("FullWindows(%d,%d) = (%d,%d), want (%d,%d)", c.o, c.y, w0, w1, c.w0, c.w1)
		}
		if got := Detectable(c.o, c.y); got != (c.w1 > c.w0) {
			t.Errorf("Detectable(%d,%d) = %v", c.o, c.y, got)
		}
	}
	// y >= 31 is detectable at every offset.
	for o := 0; o < 64; o++ {
		if !Detectable(o, 31) {
			t.Errorf("31-bit query undetectable at offset %d", o)
		}
	}
}

func TestFindOccurrences(t *testing.T) {
	db := []byte{0xAA, 0xBB, 0xAA, 0xBB}
	q := []byte{0xAA, 0xBB}
	got := FindOccurrences(db, 32, q, 16, 8)
	want := []int{0, 16}
	if len(got) != len(want) {
		t.Fatalf("occurrences = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrences = %v, want %v", got, want)
		}
	}
	// Bit-aligned search finds the self-overlapping occurrence at 8 too?
	// db bits: AA BB AA BB; at offset 8 the 16 bits are 0xBBAA != q.
	got = FindOccurrences(db, 32, q, 16, 1)
	if len(got) != 2 {
		t.Fatalf("bit-aligned occurrences = %v", got)
	}
}
