package core

import (
	"runtime"
	"sync"

	"ciphermatch/internal/bfv"
)

// SearchAndIndexParallel is SearchAndIndex with the (variant, chunk) work
// fanned out across CPU cores. Homomorphic additions are embarrassingly
// parallel — the coefficient-wise independence the paper exploits with
// SIMD on CPUs and with array-level parallelism in flash — so the search
// scales with cores until memory bandwidth saturates.
func (s *Server) SearchAndIndexParallel(q *Query, workers int) (*IndexResult, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	if q.Tokens == nil {
		return nil, errNoTokens
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := s.params.N
	numChunks := len(s.db.Chunks)
	numWindows := numChunks * n
	for _, res := range q.Residues {
		if toks, ok := q.Tokens[res]; !ok || len(toks) != numChunks {
			return nil, errBadTokens(res)
		}
	}

	type job struct {
		variant int // index into q.Residues
		chunk   int
	}
	jobs := make(chan job, workers)
	bitmaps := make([][]bool, len(q.Residues))
	for vi := range bitmaps {
		bitmaps[vi] = make([]bool, numWindows)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stats    Stats
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own evaluator scratch ciphertext.
			ev := bfv.NewEvaluator(s.params)
			var localAdds int
			var localCompares int64
			for jb := range jobs {
				res := q.Residues[jb.variant]
				psi := PatternPhase(n, jb.chunk, res, q.YBits)
				pattern, ok := q.Patterns[psi]
				if !ok {
					setErr(errMissingPhase(psi))
					continue
				}
				sum := ev.Add(s.db.Chunks[jb.chunk], pattern)
				tok := q.Tokens[res][jb.chunk]
				bm := bitmaps[jb.variant]
				base := jb.chunk * n
				for i, v := range sum.C[0] {
					if v == tok[i] {
						bm[base+i] = true // disjoint range per job: no race
					}
				}
				localAdds++
				localCompares += int64(n)
			}
			mu.Lock()
			stats.HomAdds += localAdds
			stats.CoeffCompares += localCompares
			mu.Unlock()
		}()
	}
	for vi := range q.Residues {
		for j := 0; j < numChunks; j++ {
			jobs <- job{variant: vi, chunk: j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues)), Stats: stats}
	for vi, res := range q.Residues {
		ir.Hits[res] = bitmaps[vi]
	}
	ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
	return ir, nil
}
