package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// BatchQuery carries N independent queries destined for the same
// encrypted database, so an engine can amortise a single pass over
// db.Chunks across all of them. This is the throughput lever of a
// multi-user deployment: when many queries arrive against one hot
// database, walking the ciphertext chunks once per *batch* instead of
// once per *query* turns the dominant memory traffic into shared work —
// the same data-reuse argument the paper makes for array-level
// parallelism inside the flash die.
//
// Members are fully independent: they may differ in length, alignment
// and shift variants. Members that share a pattern ciphertext for a
// phase (e.g. the same hot query issued by several users of one data
// owner, whose pattern randomness is seed-derived and therefore
// identical) additionally share its homomorphic sum per chunk once the
// batch has been through DedupPatterns.
type BatchQuery struct {
	// Queries are the member queries; results come back in this order.
	Queries []*Query
}

// NewBatchQuery assembles a batch and canonicalises shared pattern
// ciphertexts and match-token polynomials across members
// (DedupPatterns, DedupTokens), so batch kernels evaluate each distinct
// (pattern, token) combination once per chunk.
func NewBatchQuery(queries ...*Query) *BatchQuery {
	bq := &BatchQuery{Queries: queries}
	bq.DedupPatterns()
	bq.DedupTokens()
	return bq
}

// DedupPatterns rewrites coefficient-identical pattern ciphertexts
// across members to one shared *bfv.Ciphertext, and returns the number
// of distinct pattern ciphertexts in the batch. Batch kernels key their
// per-chunk sum reuse on pointer identity, and the wire encoder pools
// patterns by content, so deduplication here makes both effective for
// batches assembled in-process from separately prepared queries.
func (bq *BatchQuery) DedupPatterns() int {
	seen := make(map[string]*bfv.Ciphertext)
	for _, q := range bq.Queries {
		for psi, ct := range q.Patterns {
			key := ciphertextKey(ct)
			if shared, ok := seen[key]; ok {
				q.Patterns[psi] = shared
			} else {
				seen[key] = ct
			}
		}
	}
	return len(seen)
}

// ciphertextKey is the content identity of a ciphertext: every
// component length-prefixed, coefficients little-endian. Two ciphertexts
// with equal keys decrypt identically and produce identical homomorphic
// sums, so they are interchangeable for dedup.
func ciphertextKey(ct *bfv.Ciphertext) string {
	size := 0
	for _, p := range ct.C {
		size += 8 + len(p)*8
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	for _, p := range ct.C {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(p)))
		buf = append(buf, tmp[:]...)
		for _, c := range p {
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

// DedupTokens rewrites content-identical match-token polynomials
// across members to one shared ring.Poly, and returns the number of
// distinct token polynomials. It covers both representations: legacy
// expanded Tokens, and the factored DBTok plane and RHS comparands —
// queries prepared from the same client seed against the same database
// share their entire DBTok plane, so after deduplication the batch
// kernel recognises "same chunk comparand, same RHS" pairs by pointer
// identity and streams each chunk once for the whole group. This is the
// comparison half of the dedup that DedupPatterns provides for the
// addition half.
// Tokens are keyed by a 64-bit content hash with a full coefficient
// compare only inside a hash bucket, so deduplication never copies the
// token stream (a wire batch can carry members × residues × chunks
// token polynomials; building string keys would double the decode
// allocations).
func (bq *BatchQuery) DedupTokens() int {
	buckets := make(map[uint64][]ring.Poly)
	distinct := 0
	dedup := func(p ring.Poly) ring.Poly {
		h := polyHash(p)
		for _, cand := range buckets[h] {
			if polysEqual(cand, p) {
				return cand
			}
		}
		buckets[h] = append(buckets[h], p)
		distinct++
		return p
	}
	for _, q := range bq.Queries {
		for _, toks := range q.Tokens {
			for i, tok := range toks {
				toks[i] = dedup(tok)
			}
		}
		for i, tok := range q.DBTok {
			q.DBTok[i] = dedup(tok)
		}
		for psi, rhs := range q.RHS {
			q.RHS[psi] = dedup(rhs)
		}
	}
	return distinct
}

// polyHash is FNV-1a over the coefficients.
func polyHash(p ring.Poly) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range p {
		h = (h ^ c) * 1099511628211
	}
	return h
}

func polysEqual(a, b ring.Poly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate checks every member against the database, so a batch fails
// before any work starts rather than mid-pass.
func (bq *BatchQuery) validate(db *EncryptedDB) error {
	for i, q := range bq.Queries {
		if err := validateSearchQuery(db, q, true); err != nil {
			return fmt.Errorf("core: batch member %d: %w", i, err)
		}
	}
	return nil
}

// BatchSearcher is the batched extension of Engine: engines that can
// amortise one database pass across many queries implement it natively
// (serial, pool, sharded); SearchBatch falls back to sequential
// SearchAndIndex calls for engines that cannot (a physical drive
// serialises on its controller anyway).
type BatchSearcher interface {
	Engine
	// SearchAndIndexBatch executes every member of bq and returns one
	// IndexResult per member, in member order. Results are identical to
	// N sequential SearchAndIndex calls.
	SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error)
}

// SearchBatch dispatches bq to e's native batch implementation when it
// has one, and otherwise runs the members sequentially. Either way the
// results equal per-member SearchAndIndex calls in member order.
//
//cm:pooled
func SearchBatch(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	if bs, ok := e.(BatchSearcher); ok {
		return bs.SearchAndIndexBatch(bq)
	}
	return SearchAndIndexBatchSequential(e, bq)
}

// SearchAndIndexBatchSequential is the generic loop fallback: one
// SearchAndIndex call per member. Engines without a batched pass (the
// in-flash simulator, whose controller serialises commands) use it to
// satisfy BatchSearcher.
//
//cm:pooled
func SearchAndIndexBatchSequential(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	out := make([]*IndexResult, len(bq.Queries))
	for i, q := range bq.Queries {
		ir, err := e.SearchAndIndex(q)
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", i, err)
		}
		out[i] = ir
	}
	return out, nil
}

// newBatchBitmaps allocates the per-(member, variant) hit bitsets of a
// batched search, each covering numWindows global windows.
func newBatchBitmaps(bq *BatchQuery, numWindows int) [][]*Bitset {
	bitmaps := make([][]*Bitset, len(bq.Queries))
	for mi, q := range bq.Queries {
		bitmaps[mi] = make([]*Bitset, len(q.Residues))
		for vi := range q.Residues {
			bitmaps[mi][vi] = NewBitset(numWindows)
		}
	}
	return bitmaps
}

// assembleBatchResults converts kernel output into per-member
// IndexResults (hit maps plus candidates unless the member is HitsOnly)
// and returns the batch-total stats for the engine's cumulative counter.
func assembleBatchResults(bq *BatchQuery, bitmaps [][]*Bitset, memberStats []Stats) ([]*IndexResult, Stats) {
	var total Stats
	out := make([]*IndexResult, len(bq.Queries))
	for mi, q := range bq.Queries {
		ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues)), Stats: memberStats[mi]}
		for vi, res := range q.Residues {
			ir.Hits[res] = bitmaps[mi][vi]
		}
		if !q.HitsOnly {
			ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
		}
		total.add(ir.Stats)
		out[mi] = ir
	}
	return out, total
}

// factorBatch normalises every batch member into the kernel-ready
// factored form (FactorQuery) once per batched search, so chunk-range
// jobs share the normalisation instead of redoing it. Native factored
// members reference their (already deduplicated) RHS polynomials by
// pointer; legacy members get *fresh* rows from the re-factoring, so
// those are content-deduplicated here — identical legacy members (the
// same hot query from several users) collapse back into one evaluation
// class per (chunk comparand, RHS), keeping the kernel's word-OR
// verdict propagation effective for old clients too.
func factorBatch(r *ring.Ring, bq *BatchQuery, numChunks int) ([]*FactoredQuery, error) {
	fqs := make([]*FactoredQuery, len(bq.Queries))
	var buckets map[uint64][]ring.Poly
	for mi, q := range bq.Queries {
		fq, err := FactorQuery(r, q, numChunks)
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", mi, err)
		}
		if !q.Factored() {
			if buckets == nil {
				buckets = make(map[uint64][]ring.Poly)
			}
			for _, row := range fq.rows {
				for i, p := range row {
					h := polyHash(p)
					shared := false
					for _, cand := range buckets[h] {
						if polysEqual(cand, p) {
							row[i] = cand
							shared = true
							break
						}
					}
					if !shared {
						buckets[h] = append(buckets[h], p)
					}
				}
			}
		}
		fqs[mi] = fq
	}
	return fqs, nil
}

// batchScratch is the reusable per-chunk state of the batched kernel:
// one entry per evaluation class — a distinct (chunk comparand, RHS)
// pair, identified by first-coefficient addresses — plus the distinct
// chunk-comparand groups and the gather buffers one fused
// SubCmpMultiBits call per group needs. Lookups are a linear pointer
// scan — the class set never exceeds the batch's (member × variant)
// count, which is small. Scratches recycle through a sync.Pool so
// concurrent batch jobs on a loaded server stop allocating slabs
// entirely.
type batchScratch struct {
	pairClass []int // class index per (member, variant) pair, in order

	classDb    []*uint64   // chunk-comparand identity per class
	classRhs   []ring.Poly // RHS comparand per class
	classWords [][]uint64  // first pair's bitset words per class
	classFirst []int       // pair index of the class's first pair
	classOwner []int       // member the class's evaluation is accounted to

	groupDb  []*uint64   // distinct chunk-comparand identities
	groupTok []ring.Poly // the comparand polynomial per group

	rhsList  []ring.Poly // gather buffer: one SubCmpMultiBits call per group
	wordList [][]uint64
}

var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// reset prepares the scratch for a new chunk.
func (s *batchScratch) reset() {
	s.pairClass = s.pairClass[:0]
	s.classDb = s.classDb[:0]
	s.classRhs = s.classRhs[:0]
	s.classWords = s.classWords[:0]
	s.classFirst = s.classFirst[:0]
	s.classOwner = s.classOwner[:0]
	s.groupDb = s.groupDb[:0]
	s.groupTok = s.groupTok[:0]
	s.rhsList = s.rhsList[:0]
	s.wordList = s.wordList[:0]
}

// scrub drops all polynomial/bitset references across the backing
// arrays before pooling, so a cached scratch never pins query data.
func (s *batchScratch) scrub() {
	clear(s.classDb[:cap(s.classDb)])
	clear(s.classRhs[:cap(s.classRhs)])
	clear(s.classWords[:cap(s.classWords)])
	clear(s.groupDb[:cap(s.groupDb)])
	clear(s.groupTok[:cap(s.groupTok)])
	clear(s.rhsList[:cap(s.rhsList)])
	clear(s.wordList[:cap(s.wordList)])
	s.reset()
}

// class returns the evaluation-class index of (dtok, rhs), adding a new
// class (and, when unseen, its comparand group) for new pairs.
func (s *batchScratch) class(dtok, rhs ring.Poly, words []uint64, pair, owner int) int {
	dbID, rhsID := &dtok[0], &rhs[0]
	for k := range s.classDb {
		if s.classDb[k] == dbID && &s.classRhs[k][0] == rhsID {
			return k
		}
	}
	s.classDb = append(s.classDb, dbID)
	s.classRhs = append(s.classRhs, rhs)
	s.classWords = append(s.classWords, words)
	s.classFirst = append(s.classFirst, pair)
	s.classOwner = append(s.classOwner, owner)
	found := false
	for _, g := range s.groupDb {
		if g == dbID {
			found = true
			break
		}
	}
	if !found {
		s.groupDb = append(s.groupDb, dbID)
		s.groupTok = append(s.groupTok, dtok)
	}
	return len(s.classDb) - 1
}

// searchChunkRangeBatch is the batched CPU kernel: one pass over chunks
// [lo, hi) evaluating every (member, variant) pair per chunk, so each
// ciphertext chunk is walked once per batch instead of once per query.
//
// Pairs are grouped into evaluation classes by (chunk comparand, RHS)
// pointer identity — after DedupPatterns/DedupTokens, members prepared
// by the same client against the same database share their whole DBTok
// plane, so all their residues collapse into one comparand group. Each
// group streams the chunk's first component through a single fused
// ring.SubCmpMultiBits call covering every distinct RHS in the group;
// duplicate pairs (the same hot query issued by several users) receive
// the identical verdict as a word-wise OR of that 64-windows-per-word
// range. Only first ciphertext components are touched; no difference
// polynomial is ever materialised.
//
// bitmaps[m][v] is member m's bitset for its variant v (global window
// indexing); memberStats[m] accumulates the work member m caused — a
// group's homomorphic subtraction and chunk stream are accounted to the
// member whose pair created the group, so per-member stats add up to
// the batch total.
func searchChunkRangeBatch(r *ring.Ring, db *EncryptedDB, bq *BatchQuery, fqs []*FactoredQuery, lo, hi int, bitmaps [][]*Bitset, memberStats []Stats) error {
	n := r.N()
	// Word-aligned chunk ranges let a class's verdict be copied as
	// whole words. All bfv parameter sets have n ≥ 64 (a multiple of
	// 64); for smaller rings duplicate pairs simply re-run the fused
	// kernel.
	aligned := n%64 == 0
	scratch := batchScratchPool.Get().(*batchScratch)
	defer func() {
		scratch.scrub()
		batchScratchPool.Put(scratch)
	}()
	for j := lo; j < hi; j++ {
		scratch.reset()
		chunkC0 := db.Chunks[j].C[0]
		base := j * n

		// Pass 1 — classify every (member, variant) pair.
		pair := 0
		for mi, q := range bq.Queries {
			if len(q.Residues) == 0 {
				continue
			}
			row := fqs[mi].Row(ChunkPhi(n, j, q.YBits))
			if row == nil {
				return fmt.Errorf("core: batch member %d: no RHS row for chunk %d", mi, j)
			}
			dtok := fqs[mi].DBTok[j]
			for vi := range q.Residues {
				k := scratch.class(dtok, row[vi], bitmaps[mi][vi].Words(), pair, mi)
				scratch.pairClass = append(scratch.pairClass, k)
				pair++
			}
		}

		// Pass 2 — one fused streaming evaluation per comparand group,
		// covering every distinct RHS of the group at once.
		for g, dbID := range scratch.groupDb {
			scratch.rhsList = scratch.rhsList[:0]
			scratch.wordList = scratch.wordList[:0]
			owner := -1
			for k := range scratch.classDb {
				if scratch.classDb[k] != dbID {
					continue
				}
				if owner < 0 {
					owner = scratch.classOwner[k]
				}
				scratch.rhsList = append(scratch.rhsList, scratch.classRhs[k])
				scratch.wordList = append(scratch.wordList, scratch.classWords[k])
			}
			r.SubCmpMultiBits(chunkC0, scratch.groupTok[g], scratch.rhsList, scratch.wordList, base)
			memberStats[owner].HomAdds++
			memberStats[owner].ChunkStreams++
		}

		// Pass 3 — propagate verdicts to duplicate pairs.
		pair = 0
		for mi, q := range bq.Queries {
			for vi := range q.Residues {
				k := scratch.pairClass[pair]
				memberStats[mi].CoeffCompares += int64(n)
				if scratch.classFirst[k] == pair {
					pair++
					continue
				}
				pair++
				words := bitmaps[mi][vi].Words()
				if aligned {
					// Identical (comparand, RHS) ⇒ identical verdict:
					// OR the evaluated word range across.
					w0, w1 := base>>6, (base+n)>>6
					src := scratch.classWords[k][w0:w1]
					dst := words[w0:w1]
					for i, w := range src {
						if w != 0 {
							dst[i] |= w
						}
					}
				} else {
					// Sub-word ring degree: chunk bit ranges share
					// words, so re-run the fused kernel (a real chunk
					// stream — count it) instead of a word-copy.
					r.SubCmpMultiBits(chunkC0, fqs[mi].DBTok[j], scratch.classRhs[k:k+1], [][]uint64{words}, base)
					memberStats[mi].HomAdds++
					memberStats[mi].ChunkStreams++
				}
			}
		}
	}
	return nil
}
