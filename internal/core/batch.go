package core

import (
	"encoding/binary"
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// BatchQuery carries N independent queries destined for the same
// encrypted database, so an engine can amortise a single pass over
// db.Chunks across all of them. This is the throughput lever of a
// multi-user deployment: when many queries arrive against one hot
// database, walking the ciphertext chunks once per *batch* instead of
// once per *query* turns the dominant memory traffic into shared work —
// the same data-reuse argument the paper makes for array-level
// parallelism inside the flash die.
//
// Members are fully independent: they may differ in length, alignment
// and shift variants. Members that share a pattern ciphertext for a
// phase (e.g. the same hot query issued by several users of one data
// owner, whose pattern randomness is seed-derived and therefore
// identical) additionally share its homomorphic sum per chunk once the
// batch has been through DedupPatterns.
type BatchQuery struct {
	// Queries are the member queries; results come back in this order.
	Queries []*Query
}

// NewBatchQuery assembles a batch and canonicalises shared pattern
// ciphertexts across members (DedupPatterns), so batch kernels evaluate
// each distinct pattern once per chunk.
func NewBatchQuery(queries ...*Query) *BatchQuery {
	bq := &BatchQuery{Queries: queries}
	bq.DedupPatterns()
	return bq
}

// DedupPatterns rewrites coefficient-identical pattern ciphertexts
// across members to one shared *bfv.Ciphertext, and returns the number
// of distinct pattern ciphertexts in the batch. Batch kernels key their
// per-chunk sum reuse on pointer identity, and the wire encoder pools
// patterns by content, so deduplication here makes both effective for
// batches assembled in-process from separately prepared queries.
func (bq *BatchQuery) DedupPatterns() int {
	seen := make(map[string]*bfv.Ciphertext)
	for _, q := range bq.Queries {
		for psi, ct := range q.Patterns {
			key := ciphertextKey(ct)
			if shared, ok := seen[key]; ok {
				q.Patterns[psi] = shared
			} else {
				seen[key] = ct
			}
		}
	}
	return len(seen)
}

// ciphertextKey is the content identity of a ciphertext: every
// component length-prefixed, coefficients little-endian. Two ciphertexts
// with equal keys decrypt identically and produce identical homomorphic
// sums, so they are interchangeable for dedup.
func ciphertextKey(ct *bfv.Ciphertext) string {
	size := 0
	for _, p := range ct.C {
		size += 8 + len(p)*8
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	for _, p := range ct.C {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(p)))
		buf = append(buf, tmp[:]...)
		for _, c := range p {
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

// validate checks every member against the database, so a batch fails
// before any work starts rather than mid-pass.
func (bq *BatchQuery) validate(db *EncryptedDB) error {
	for i, q := range bq.Queries {
		if err := validateSearchQuery(db, q, true); err != nil {
			return fmt.Errorf("core: batch member %d: %w", i, err)
		}
	}
	return nil
}

// BatchSearcher is the batched extension of Engine: engines that can
// amortise one database pass across many queries implement it natively
// (serial, pool, sharded); SearchBatch falls back to sequential
// SearchAndIndex calls for engines that cannot (a physical drive
// serialises on its controller anyway).
type BatchSearcher interface {
	Engine
	// SearchAndIndexBatch executes every member of bq and returns one
	// IndexResult per member, in member order. Results are identical to
	// N sequential SearchAndIndex calls.
	SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error)
}

// SearchBatch dispatches bq to e's native batch implementation when it
// has one, and otherwise runs the members sequentially. Either way the
// results equal per-member SearchAndIndex calls in member order.
func SearchBatch(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	if bs, ok := e.(BatchSearcher); ok {
		return bs.SearchAndIndexBatch(bq)
	}
	return SearchAndIndexBatchSequential(e, bq)
}

// SearchAndIndexBatchSequential is the generic loop fallback: one
// SearchAndIndex call per member. Engines without a batched pass (the
// in-flash simulator, whose controller serialises commands) use it to
// satisfy BatchSearcher.
func SearchAndIndexBatchSequential(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	out := make([]*IndexResult, len(bq.Queries))
	for i, q := range bq.Queries {
		ir, err := e.SearchAndIndex(q)
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", i, err)
		}
		out[i] = ir
	}
	return out, nil
}

// newBatchBitmaps allocates the per-(member, variant) hit bitmaps of a
// batched search, each covering numWindows global windows.
func newBatchBitmaps(bq *BatchQuery, numWindows int) [][][]bool {
	bitmaps := make([][][]bool, len(bq.Queries))
	for mi, q := range bq.Queries {
		bitmaps[mi] = make([][]bool, len(q.Residues))
		for vi := range q.Residues {
			bitmaps[mi][vi] = make([]bool, numWindows)
		}
	}
	return bitmaps
}

// assembleBatchResults converts kernel output into per-member
// IndexResults (hit maps plus candidates unless the member is HitsOnly)
// and returns the batch-total stats for the engine's cumulative counter.
func assembleBatchResults(bq *BatchQuery, bitmaps [][][]bool, memberStats []Stats) ([]*IndexResult, Stats) {
	var total Stats
	out := make([]*IndexResult, len(bq.Queries))
	for mi, q := range bq.Queries {
		ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues)), Stats: memberStats[mi]}
		for vi, res := range q.Residues {
			ir.Hits[res] = bitmaps[mi][vi]
		}
		if !q.HitsOnly {
			ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
		}
		total.add(ir.Stats)
		out[mi] = ir
	}
	return out, total
}

// searchChunkRangeBatch is the batched CPU kernel: one pass over chunks
// [lo, hi) evaluating every (member, variant) pair per chunk, so each
// ciphertext chunk is walked once per batch instead of once per query,
// and members that share a pattern ciphertext (pointer identity after
// DedupPatterns) share its homomorphic sum. bitmaps[m][v] is member m's
// bitmap for its variant v (global window indexing); memberStats[m]
// accumulates the work member m caused — a shared sum is accounted to
// the member that computed it first, so the per-member stats add up to
// the batch total.
func searchChunkRangeBatch(ev *bfv.Evaluator, scratch *bfv.Ciphertext, db *EncryptedDB, bq *BatchQuery, lo, hi int, bitmaps [][][]bool, memberStats []Stats) error {
	n := ev.Params().N
	// Per-chunk sum cache: keys[i] is the pattern whose chunk sum lives
	// in sums[i]. The slab is reused across chunks, so the kernel's only
	// steady-state allocations are first-round slab growth. Lookups are a
	// linear pointer scan — the cache never exceeds the batch's
	// (member × variant) count, which is small.
	var (
		keys []*bfv.Ciphertext
		sums []ring.Poly
	)
	for j := lo; j < hi; j++ {
		keys = keys[:0]
		for mi, q := range bq.Queries {
			for vi, res := range q.Residues {
				psi := PatternPhase(n, j, res, q.YBits)
				pattern, ok := q.Patterns[psi]
				if !ok {
					return errMissingPhase(psi)
				}
				var c0 ring.Poly
				for k, key := range keys {
					if key == pattern {
						c0 = sums[k]
						break
					}
				}
				if c0 == nil {
					if err := ev.AddInto(db.Chunks[j], pattern, scratch); err != nil {
						return err
					}
					memberStats[mi].HomAdds++
					if len(keys) == len(sums) {
						sums = append(sums, make(ring.Poly, n))
					}
					c0 = sums[len(keys)]
					copy(c0, scratch.C[0])
					keys = append(keys, pattern)
				}
				// Index generation against this member's token, exactly as
				// in the single-query kernel.
				tok := q.Tokens[res][j]
				bm := bitmaps[mi][vi]
				base := j * n
				for i, v := range c0 {
					if v == tok[i] {
						bm[base+i] = true
					}
				}
				memberStats[mi].CoeffCompares += int64(n)
			}
		}
	}
	return nil
}
