package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// BatchQuery carries N independent queries destined for the same
// encrypted database, so an engine can amortise a single pass over
// db.Chunks across all of them. This is the throughput lever of a
// multi-user deployment: when many queries arrive against one hot
// database, walking the ciphertext chunks once per *batch* instead of
// once per *query* turns the dominant memory traffic into shared work —
// the same data-reuse argument the paper makes for array-level
// parallelism inside the flash die.
//
// Members are fully independent: they may differ in length, alignment
// and shift variants. Members that share a pattern ciphertext for a
// phase (e.g. the same hot query issued by several users of one data
// owner, whose pattern randomness is seed-derived and therefore
// identical) additionally share its homomorphic sum per chunk once the
// batch has been through DedupPatterns.
type BatchQuery struct {
	// Queries are the member queries; results come back in this order.
	Queries []*Query
}

// NewBatchQuery assembles a batch and canonicalises shared pattern
// ciphertexts and match-token polynomials across members
// (DedupPatterns, DedupTokens), so batch kernels evaluate each distinct
// (pattern, token) combination once per chunk.
func NewBatchQuery(queries ...*Query) *BatchQuery {
	bq := &BatchQuery{Queries: queries}
	bq.DedupPatterns()
	bq.DedupTokens()
	return bq
}

// DedupPatterns rewrites coefficient-identical pattern ciphertexts
// across members to one shared *bfv.Ciphertext, and returns the number
// of distinct pattern ciphertexts in the batch. Batch kernels key their
// per-chunk sum reuse on pointer identity, and the wire encoder pools
// patterns by content, so deduplication here makes both effective for
// batches assembled in-process from separately prepared queries.
func (bq *BatchQuery) DedupPatterns() int {
	seen := make(map[string]*bfv.Ciphertext)
	for _, q := range bq.Queries {
		for psi, ct := range q.Patterns {
			key := ciphertextKey(ct)
			if shared, ok := seen[key]; ok {
				q.Patterns[psi] = shared
			} else {
				seen[key] = ct
			}
		}
	}
	return len(seen)
}

// ciphertextKey is the content identity of a ciphertext: every
// component length-prefixed, coefficients little-endian. Two ciphertexts
// with equal keys decrypt identically and produce identical homomorphic
// sums, so they are interchangeable for dedup.
func ciphertextKey(ct *bfv.Ciphertext) string {
	size := 0
	for _, p := range ct.C {
		size += 8 + len(p)*8
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	for _, p := range ct.C {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(p)))
		buf = append(buf, tmp[:]...)
		for _, c := range p {
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

// DedupTokens rewrites content-identical match-token polynomials
// across members (and residues) to one shared ring.Poly, and returns
// the number of distinct tokens. Queries prepared from the same seed
// for the same content carry identical tokens, so after deduplication
// the batch kernel can recognise "same pattern, same token" pairs by
// pointer identity and evaluate each such class once per chunk — the
// comparison half of the dedup that DedupPatterns provides for the
// addition half.
// Tokens are keyed by a 64-bit content hash with a full coefficient
// compare only inside a hash bucket, so deduplication never copies the
// token stream (a wire batch can carry members × residues × chunks
// token polynomials; building string keys would double the decode
// allocations).
func (bq *BatchQuery) DedupTokens() int {
	buckets := make(map[uint64][]ring.Poly)
	distinct := 0
	for _, q := range bq.Queries {
		for _, toks := range q.Tokens {
			for i, tok := range toks {
				h := polyHash(tok)
				shared := false
				for _, cand := range buckets[h] {
					if polysEqual(cand, tok) {
						toks[i] = cand
						shared = true
						break
					}
				}
				if !shared {
					buckets[h] = append(buckets[h], tok)
					distinct++
				}
			}
		}
	}
	return distinct
}

// polyHash is FNV-1a over the coefficients.
func polyHash(p ring.Poly) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range p {
		h = (h ^ c) * 1099511628211
	}
	return h
}

func polysEqual(a, b ring.Poly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate checks every member against the database, so a batch fails
// before any work starts rather than mid-pass.
func (bq *BatchQuery) validate(db *EncryptedDB) error {
	for i, q := range bq.Queries {
		if err := validateSearchQuery(db, q, true); err != nil {
			return fmt.Errorf("core: batch member %d: %w", i, err)
		}
	}
	return nil
}

// BatchSearcher is the batched extension of Engine: engines that can
// amortise one database pass across many queries implement it natively
// (serial, pool, sharded); SearchBatch falls back to sequential
// SearchAndIndex calls for engines that cannot (a physical drive
// serialises on its controller anyway).
type BatchSearcher interface {
	Engine
	// SearchAndIndexBatch executes every member of bq and returns one
	// IndexResult per member, in member order. Results are identical to
	// N sequential SearchAndIndex calls.
	SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error)
}

// SearchBatch dispatches bq to e's native batch implementation when it
// has one, and otherwise runs the members sequentially. Either way the
// results equal per-member SearchAndIndex calls in member order.
func SearchBatch(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	if bs, ok := e.(BatchSearcher); ok {
		return bs.SearchAndIndexBatch(bq)
	}
	return SearchAndIndexBatchSequential(e, bq)
}

// SearchAndIndexBatchSequential is the generic loop fallback: one
// SearchAndIndex call per member. Engines without a batched pass (the
// in-flash simulator, whose controller serialises commands) use it to
// satisfy BatchSearcher.
func SearchAndIndexBatchSequential(e Engine, bq *BatchQuery) ([]*IndexResult, error) {
	out := make([]*IndexResult, len(bq.Queries))
	for i, q := range bq.Queries {
		ir, err := e.SearchAndIndex(q)
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", i, err)
		}
		out[i] = ir
	}
	return out, nil
}

// newBatchBitmaps allocates the per-(member, variant) hit bitsets of a
// batched search, each covering numWindows global windows.
func newBatchBitmaps(bq *BatchQuery, numWindows int) [][]*Bitset {
	bitmaps := make([][]*Bitset, len(bq.Queries))
	for mi, q := range bq.Queries {
		bitmaps[mi] = make([]*Bitset, len(q.Residues))
		for vi := range q.Residues {
			bitmaps[mi][vi] = NewBitset(numWindows)
		}
	}
	return bitmaps
}

// assembleBatchResults converts kernel output into per-member
// IndexResults (hit maps plus candidates unless the member is HitsOnly)
// and returns the batch-total stats for the engine's cumulative counter.
func assembleBatchResults(bq *BatchQuery, bitmaps [][]*Bitset, memberStats []Stats) ([]*IndexResult, Stats) {
	var total Stats
	out := make([]*IndexResult, len(bq.Queries))
	for mi, q := range bq.Queries {
		ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues)), Stats: memberStats[mi]}
		for vi, res := range q.Residues {
			ir.Hits[res] = bitmaps[mi][vi]
		}
		if !q.HitsOnly {
			ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
		}
		total.add(ir.Stats)
		out[mi] = ir
	}
	return out, total
}

// batchScratch is the reusable per-chunk state of the batched kernel:
// one entry per evaluation class — a distinct (pattern, token) pair —
// holding the pattern, the token's identity (its first-coefficient
// address), and, once evaluated, the bitset words the class's hit bits
// were written into. pairKey records each (member, variant) pair's
// class from the counting pass. Lookups are a linear pointer scan —
// the class set never exceeds the batch's (member × variant) count,
// which is small. Scratches recycle through a sync.Pool so concurrent
// batch jobs on a loaded server stop allocating slabs entirely.
type batchScratch struct {
	patterns []*bfv.Ciphertext
	tokIDs   []*uint64
	words    [][]uint64
	pairKey  []int
}

var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// reset prepares the scratch for a new chunk.
func (s *batchScratch) reset() {
	s.patterns = s.patterns[:0]
	s.tokIDs = s.tokIDs[:0]
	s.words = s.words[:0]
	s.pairKey = s.pairKey[:0]
}

// scrub drops all ciphertext/bitset references across the backing
// arrays before pooling, so a cached scratch never pins query data.
func (s *batchScratch) scrub() {
	clear(s.patterns[:cap(s.patterns)])
	clear(s.tokIDs[:cap(s.tokIDs)])
	clear(s.words[:cap(s.words)])
	s.reset()
}

// class returns the evaluation-class index of (pattern, tok), adding a
// new class when unseen.
func (s *batchScratch) class(pattern *bfv.Ciphertext, tok ring.Poly) int {
	id := &tok[0]
	for k := range s.patterns {
		if s.patterns[k] == pattern && s.tokIDs[k] == id {
			return k
		}
	}
	s.patterns = append(s.patterns, pattern)
	s.tokIDs = append(s.tokIDs, id)
	s.words = append(s.words, nil)
	return len(s.patterns) - 1
}

// searchChunkRangeBatch is the batched CPU kernel: one pass over chunks
// [lo, hi) evaluating every (member, variant) pair per chunk, so each
// ciphertext chunk is walked once per batch instead of once per query.
//
// Pairs are grouped into evaluation classes by (pattern, token)
// pointer identity — after DedupPatterns/DedupTokens, the same hot
// query issued by several users of one data owner collapses to one
// class. Each class runs the fused ring.AddCmpBits exactly once per
// chunk, writing hit bits into the first pair's bitset; every other
// pair in the class receives the identical verdict as a word-wise OR
// of that 64-windows-per-word range — ~n/64 word operations instead of
// n fused add-compares. Only first ciphertext components are touched;
// no sum is ever materialised.
//
// bitmaps[m][v] is member m's bitset for its variant v (global window
// indexing); memberStats[m] accumulates the work member m caused — a
// class's homomorphic addition is accounted to the member that
// evaluated it first, so the per-member stats add up to the batch
// total.
func searchChunkRangeBatch(r *ring.Ring, db *EncryptedDB, bq *BatchQuery, lo, hi int, bitmaps [][]*Bitset, memberStats []Stats) error {
	n := r.N()
	// Word-aligned chunk ranges let a class's verdict be copied as
	// whole words. All bfv parameter sets have n ≥ 64 (a multiple of
	// 64); for smaller rings classes simply re-run the fused kernel.
	aligned := n%64 == 0
	scratch := batchScratchPool.Get().(*batchScratch)
	defer func() {
		scratch.scrub()
		batchScratchPool.Put(scratch)
	}()
	for j := lo; j < hi; j++ {
		scratch.reset()
		chunkC0 := db.Chunks[j].C[0]
		base := j * n
		for _, q := range bq.Queries {
			for _, res := range q.Residues {
				psi := PatternPhase(n, j, res, q.YBits)
				pattern, ok := q.Patterns[psi]
				if !ok {
					return errMissingPhase(psi)
				}
				scratch.pairKey = append(scratch.pairKey, scratch.class(pattern, q.Tokens[res][j]))
			}
		}
		pair := 0
		for mi, q := range bq.Queries {
			for vi, res := range q.Residues {
				k := scratch.pairKey[pair]
				pair++
				words := bitmaps[mi][vi].Words()
				switch {
				case scratch.words[k] == nil:
					// First pair of the class: fused add-compare, bits
					// written straight into this pair's bitset.
					r.AddCmpBits(chunkC0, scratch.patterns[k].C[0], q.Tokens[res][j], words, base)
					scratch.words[k] = words
					memberStats[mi].HomAdds++
				case aligned:
					// Identical (pattern, token) ⇒ identical verdict:
					// OR the evaluated word range across.
					w0, w1 := base>>6, (base+n)>>6
					src := scratch.words[k][w0:w1]
					dst := words[w0:w1]
					for i, w := range src {
						if w != 0 {
							dst[i] |= w
						}
					}
				default:
					// Sub-word ring degree: chunk bit ranges share words,
					// so re-run the fused kernel (a real addition — count
					// it) instead of a word-copy.
					r.AddCmpBits(chunkC0, scratch.patterns[k].C[0], q.Tokens[res][j], words, base)
					memberStats[mi].HomAdds++
				}
				memberStats[mi].CoeffCompares += int64(n)
			}
		}
	}
	return nil
}
