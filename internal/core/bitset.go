package core

import (
	"math/bits"
	"sync"
)

// Bitset is the packed window-hit bitmap of an index result: one bit
// per 16-bit database window, 64 windows per word. It replaces the
// 1-byte-per-window []bool representation, shrinking results 8× and
// letting candidate generation scan a word (64 windows) per comparison.
// The fused search kernels (ring.AddCmpBits and friends) write hit bits
// directly into Words(), so the bitmap is also the kernel's only output
// store.
//
// Concurrent writers are safe only on disjoint word ranges; the pool
// engine aligns its chunk-range jobs so every 64-bit word belongs to
// exactly one job (see PoolEngine.batchSize).
type Bitset struct {
	words []uint64
	n     int
}

// bitsetPool recycles the word storage of transient bitsets (per-shard
// sub-results, released index results), so a server under steady
// multi-user load stops allocating bitmap backing arrays entirely.
var bitsetPool = sync.Pool{New: func() any { return &Bitset{} }}

// NewBitset returns a zeroed bitset of n bits, reusing pooled storage
// when some earlier bitset of sufficient capacity has been Released.
//
//cm:pooled
func NewBitset(n int) *Bitset {
	b := bitsetPool.Get().(*Bitset)
	nw := (n + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	} else {
		b.words = b.words[:nw]
		clear(b.words)
	}
	b.n = n
	return b
}

// Release returns the bitset's storage to the pool. The caller must not
// use b afterwards. Releasing is optional — an unreleased bitset is
// ordinary garbage — but engines release their transient bitmaps to
// keep the steady-state search loop allocation-free.
func (b *Bitset) Release() {
	if b == nil {
		return
	}
	bitsetPool.Put(b)
}

// Len returns the number of bits (windows) the bitset covers.
func (b *Bitset) Len() int { return b.n }

// Words exposes the packed backing words for kernels that set bits
// directly (64 windows per word, bit i of word w is window 64w+i).
func (b *Bitset) Words() []uint64 { return b.words }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// OnesCount returns the number of set bits.
func (b *Bitset) OnesCount() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// None reports whether no bit is set.
func (b *Bitset) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o cover the same bits with the same
// values.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// AllSet reports whether every bit in [lo, hi) is set, scanning whole
// words with an early exit on the first miss. Out-of-range windows
// count as misses (the candidate loop's boundary guard).
func (b *Bitset) AllSet(lo, hi int) bool {
	if lo < 0 || hi > b.n {
		return false
	}
	if lo >= hi {
		return true
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if wLo == wHi {
		m := first & last
		return b.words[wLo]&m == m
	}
	if b.words[wLo]&first != first {
		return false
	}
	for w := wLo + 1; w < wHi; w++ {
		if b.words[w] != ^uint64(0) {
			return false
		}
	}
	return b.words[wHi]&last == last
}

// NextSet returns the index of the first set bit at or after i, or -1
// when none remains — the word-level scan behind sparse hit iteration.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i >> 6
	cur := b.words[w] >> (uint(i) & 63)
	if cur != 0 {
		n := i + bits.TrailingZeros64(cur)
		if n < b.n {
			return n
		}
		return -1
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			n := w<<6 + bits.TrailingZeros64(b.words[w])
			if n < b.n {
				return n
			}
			return -1
		}
	}
	return -1
}

// OrAt ORs src into b starting at bit offset off: b[off+i] |= src[i].
// The sharded engine merges per-shard bitmaps with it; chunk offsets
// are word-aligned for every supported ring degree, so the common path
// is a straight word-wise OR.
func (b *Bitset) OrAt(src *Bitset, off int) {
	if off < 0 || off+src.n > b.n {
		panic("core: Bitset.OrAt out of range")
	}
	if off&63 == 0 {
		w0 := off >> 6
		for i, w := range src.words {
			if w != 0 {
				b.words[w0+i] |= w
			}
		}
		return
	}
	for i := src.NextSet(0); i >= 0; i = src.NextSet(i + 1) {
		b.Set(off + i)
	}
}
