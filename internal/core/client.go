package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// IndexMode selects how match indices are generated (§4.2.2 and DESIGN.md).
type IndexMode int

const (
	// ModeClientDecrypt: the server returns result ciphertexts and the
	// client decrypts them and scans for the match value t-1. This is the
	// conventional (Yasuda-style) deployment and is always sound.
	ModeClientDecrypt IndexMode = iota
	// ModeSeededMatch: database encryption randomness is derived from the
	// client's seed, so the client can compute, for every (variant, chunk),
	// the exact first-component value a hit produces ("encrypted match
	// polynomial"), and the server's index-generation unit compares
	// coefficients. This is the paper's data flow; it reveals the hit
	// pattern to the server, which the paper's design accepts (the server
	// learns and returns the index).
	ModeSeededMatch
)

// Config configures the CIPHERMATCH matcher.
type Config struct {
	// Params is the BFV parameter set; its packing width (log2 T) must be
	// 16, the paper's segment size.
	Params bfv.Params
	// AlignBits restricts occurrence offsets to multiples of this value
	// (1 = arbitrary bit alignment, 2 = DNA bases, 8 = bytes). The number
	// of query shift variants is y / gcd(AlignBits, y). Default 8.
	AlignBits int
	// Mode selects the index-generation mode. Default ModeClientDecrypt.
	Mode IndexMode
	// Engine selects the execution engine for servers built over this
	// configuration (NewServerWithEngine and the ciphermatch facade).
	// The zero value is the serial CPU engine. Clients ignore it.
	Engine EngineSpec
}

func (c Config) withDefaults() Config {
	if c.AlignBits == 0 {
		c.AlignBits = 8
	}
	return c
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Params.PackedBitsPerCoeff() != SegmentBits {
		return fmt.Errorf("core: matcher requires a %d-bit packing width (log2 T), got %d",
			SegmentBits, c.Params.PackedBitsPerCoeff())
	}
	if c.AlignBits < 1 {
		return errors.New("core: AlignBits must be positive")
	}
	return nil
}

// Client is the data owner: it holds the keys and the seed from which all
// database encryption randomness is derived.
type Client struct {
	cfg       Config
	enc       *bfv.Encoder
	encryptor *bfv.Encryptor
	decryptor *bfv.Decryptor
	ev        *bfv.Evaluator
	ring      *ring.Ring
	src       *rng.Source
}

// NewClient creates a client with fresh keys drawn from src (which also
// seeds all later database and query randomness).
func NewClient(cfg Config, src *rng.Source) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sk, pk := bfv.KeyGen(cfg.Params, src.Fork("keygen"))
	return &Client{
		cfg:       cfg,
		enc:       bfv.NewEncoder(cfg.Params),
		encryptor: bfv.NewEncryptor(cfg.Params, pk),
		decryptor: bfv.NewDecryptor(cfg.Params, sk),
		ev:        bfv.NewEvaluator(cfg.Params),
		ring:      cfg.Params.Ring(),
		src:       src,
	}, nil
}

// Config returns the client's configuration.
func (c *Client) Config() Config { return c.cfg }

// EncryptedDB is the server-side artifact: the packed, encrypted database
// (Algorithm 1, lines 1-3).
type EncryptedDB struct {
	Chunks      []*bfv.Ciphertext
	BitLen      int
	NumSegments int

	// arena is the contiguous backing store the chunk polynomials view
	// into after Compact: all first components first, then all second
	// components, so the seeded-match kernels — which read only C[0] —
	// stream one sequential region instead of pointer-chasing per-chunk
	// allocations. nil for databases assembled chunk by chunk.
	arena []uint64
}

// Compact repacks the chunk polynomials into one contiguous arena.
// Layout: chunk j's first component occupies arena[j*n:(j+1)*n] and its
// second component arena[(numChunks+j)*n:...], i.e. a C0 plane followed
// by a C1 plane. A seeded-match search touches only the C0 plane —
// exactly half the ciphertext bytes — as one forward stream. Chunk
// slices become views into the arena (full-capacity slicing keeps
// appends impossible), so ShardDB sub-views stay contiguous too.
// Databases whose chunks are not uniform 2-component ciphertexts (e.g.
// hostile wire input) are left as-is.
func (db *EncryptedDB) Compact() {
	if len(db.Chunks) == 0 || db.arena != nil {
		return
	}
	n := 0
	for _, ct := range db.Chunks {
		if ct == nil || len(ct.C) != 2 {
			return
		}
		if n == 0 {
			n = len(ct.C[0])
		}
		if len(ct.C[0]) != n || len(ct.C[1]) != n {
			return
		}
	}
	numChunks := len(db.Chunks)
	arena := make([]uint64, 2*numChunks*n)
	for j, ct := range db.Chunks {
		c0 := arena[j*n : (j+1)*n : (j+1)*n]
		c1 := arena[(numChunks+j)*n : (numChunks+j+1)*n : (numChunks+j+1)*n]
		copy(c0, ct.C[0])
		copy(c1, ct.C[1])
		ct.C[0], ct.C[1] = c0, c1
	}
	db.arena = arena
}

// Compacted reports whether the chunk polynomials share one contiguous
// arena.
func (db *EncryptedDB) Compacted() bool { return db.arena != nil }

// NewCompactDB allocates an EncryptedDB of numChunks two-component
// chunks whose polynomials are zeroed views into a pre-built arena
// (same layout as Compact). Decoders fill the coefficients in place,
// so a database upload never holds loose per-chunk allocations and the
// arena at the same time.
func NewCompactDB(n, numChunks int) *EncryptedDB {
	db, err := AdoptArena(n, numChunks, make([]uint64, 2*numChunks*n))
	if err != nil {
		panic(err) // arena freshly sized above; cannot mismatch
	}
	return db
}

// AdoptArena builds an EncryptedDB whose chunks are views into a
// caller-provided arena laid out exactly as Compact produces (C0 plane
// then C1 plane). This is the adoption hook for the durable segment
// store: a segment file's mmap'd coefficient region plugs straight into
// the chunk-view layout the search kernels stream, with no copying. The
// ciphertext headers are carved out of three batched allocations, so
// adopting an arena costs O(1) heap allocations regardless of the chunk
// count — loading a 1-chunk and a 10k-chunk segment allocate the same.
//
// Arenas backed by read-only mappings are safe: the seeded-match
// kernels and every engine only ever read database chunks. Callers set
// BitLen and NumSegments afterwards.
func AdoptArena(n, numChunks int, arena []uint64) (*EncryptedDB, error) {
	if n < 1 || numChunks < 1 {
		return nil, fmt.Errorf("core: cannot adopt an arena of %d chunks of degree %d", numChunks, n)
	}
	if len(arena) != 2*numChunks*n {
		return nil, fmt.Errorf("core: arena holds %d coefficients, %d chunks of degree %d need %d",
			len(arena), numChunks, n, 2*numChunks*n)
	}
	db := &EncryptedDB{Chunks: make([]*bfv.Ciphertext, numChunks), arena: arena}
	cts := make([]bfv.Ciphertext, numChunks)
	polys := make([]ring.Poly, 2*numChunks)
	for j := range cts {
		// Full-capacity slicing keeps appends from crossing plane rows.
		polys[2*j] = arena[j*n : (j+1)*n : (j+1)*n]
		polys[2*j+1] = arena[(numChunks+j)*n : (numChunks+j+1)*n : (numChunks+j+1)*n]
		cts[j].C = polys[2*j : 2*j+2 : 2*j+2]
		db.Chunks[j] = &cts[j]
	}
	return db, nil
}

// Arena exposes the contiguous backing store of a compacted database
// (nil when the chunks are loose allocations). The segment writer
// streams it to disk as-is; treat it as read-only.
func (db *EncryptedDB) Arena() []uint64 { return db.arena }

// SizeBytes returns the encrypted footprint, the quantity of Fig. 2(a).
func (db *EncryptedDB) SizeBytes(p bfv.Params) int64 {
	var total int64
	for _, ct := range db.Chunks {
		total += int64(ct.SizeBytes(p))
	}
	return total
}

// dbChunkSource derives the deterministic randomness for database chunk j.
func (c *Client) dbChunkSource(j int) *rng.Source {
	return c.src.Fork("db").ForkIndexed("chunk", j)
}

// patternSource derives the deterministic randomness for the query pattern
// ciphertext with phase psi.
func (c *Client) patternSource(psi int) *rng.Source {
	return c.src.Fork("query").ForkIndexed("pattern", psi)
}

// EncryptDatabase packs data (bitLen bits, MSB-first) with the
// memory-efficient scheme of §4.2.1 and encrypts each chunk. Chunk
// randomness is derived from the client seed so that ModeSeededMatch can
// reconstruct match tokens later without retaining the plaintext.
func (c *Client) EncryptDatabase(data []byte, bitLen int) (*EncryptedDB, error) {
	segs := PackSegments(data, bitLen)
	pts, err := ChunkPlaintexts(segs, c.cfg.Params)
	if err != nil {
		return nil, err
	}
	db := &EncryptedDB{
		Chunks:      make([]*bfv.Ciphertext, len(pts)),
		BitLen:      bitLen,
		NumSegments: len(segs),
	}
	for j, pt := range pts {
		db.Chunks[j] = c.encryptor.Encrypt(pt, c.dbChunkSource(j))
	}
	db.Compact()
	return db, nil
}

// Query is the encrypted query artifact sent to the server (Algorithm 1,
// lines 4-9): the negated, replicated query at every required shift
// alignment, plus (in ModeSeededMatch) the match tokens in either the
// factored (DBTok/RHS) or the legacy expanded (Tokens) representation.
type Query struct {
	YBits     int
	AlignBits int
	DBBitLen  int
	NumChunks int
	// Residues lists the occurrence residues (o mod y) this query detects,
	// i.e. the shift variants of §4.2.2 line 8.
	Residues []int
	// Patterns maps phase psi -> encrypted negated replicated query
	// pattern. The pattern for (variant s, chunk j) has phase
	// psi = (16·n·j - s) mod y; variants share pattern ciphertexts with
	// equal phase. Required by the client-decrypt path (Server.Search)
	// and by legacy-token queries; factored queries carry them
	// in-process for diagnostics but never ship them (the fused
	// seeded-match kernels run entirely on DBTok/RHS).
	Patterns map[int]*bfv.Ciphertext
	// Tokens[s][j] is the expected hit value of the first result component
	// for variant residue s and chunk j — the legacy expanded
	// representation, R×NumChunks polynomials. Old clients still send
	// it; the engines factor it server-side (FactorQuery) so even
	// legacy queries get the residue-fused single-pass kernel.
	Tokens map[int][]ring.Poly
	// DBTok is the factored representation's per-chunk token plane:
	// DBTok[j] = EncryptC0(allOnes, dbChunkSource(j)) - M, residue-
	// independent, where M is a client-seed-derived mask poly. Together
	// with RHS it replaces the R×NumChunks legacy tokens with
	// NumChunks + numPhases polynomials — the R× query shrink.
	DBTok []ring.Poly
	// RHS maps phase psi -> the factored comparand
	// RHS[psi] = patC0(psi) - Patterns[psi].C[0] + M. A window of chunk
	// j hits variant s iff (c0[i] - DBTok[j][i]) mod q == RHS[psi][i]
	// with psi = PatternPhase(n, j, s, y). The mask M keeps the server
	// from reading Δ·pattern off the pair (without it, RHS would equal
	// -Δ·patternPT exactly); see DESIGN.md on the leakage profile.
	RHS map[int]ring.Poly
	// HitsOnly suppresses candidate generation in the engines, which
	// then return hit bitmaps only. Set by ShardedEngine on per-shard
	// sub-queries (candidates are generated once over the merged
	// bitmaps); never serialized on the wire.
	HitsOnly bool
}

// Factored reports whether the query carries the factored token
// representation (DBTok plane + per-phase RHS).
func (q *Query) Factored() bool { return q.DBTok != nil }

// HasTokens reports whether the query carries match tokens in either
// representation, i.e. whether server-side index generation can run.
func (q *Query) HasTokens() bool { return q.Tokens != nil || q.DBTok != nil }

// SizeBytes returns the total bytes the client ships to the server for
// this query. Factored queries ship only the DBTok plane and the
// per-phase RHS polynomials — the seeded-match kernels never touch
// pattern ciphertexts, so they stay home; legacy queries ship pattern
// ciphertexts plus the expanded match tokens.
func (q *Query) SizeBytes(p bfv.Params) int64 {
	polyBytes := int64(p.N * p.QBytes())
	if q.Factored() {
		return int64(len(q.DBTok)+len(q.RHS)) * polyBytes
	}
	var total int64
	for _, ct := range q.Patterns {
		total += int64(ct.SizeBytes(p))
	}
	for _, toks := range q.Tokens {
		total += int64(len(toks)) * polyBytes
	}
	return total
}

// ChunkPhi returns phi = (16·n·j) mod y, the chunk-only part of the
// pattern phase: PatternPhase(n, j, s, y) == (ChunkPhi(n, j, y) - s) mod y.
// The factored kernels key their per-chunk RHS rows on phi.
//
//cm:hotpath
func ChunkPhi(n, j, y int) int {
	return (SegmentBits * n * j) % y
}

// PatternPhase returns psi for variant residue s and chunk j.
func PatternPhase(n, j, s, y int) int {
	return ((ChunkPhi(n, j, y)-s)%y + y) % y
}

// buildPatternSegments constructs the n packed coefficients of the negated
// replicated query pattern at phase psi: coefficient i bit b (MSB-first) is
// NOT query[(psi + 16i + b) mod y].
func buildPatternSegments(query []byte, y, psi, n int) []uint16 {
	segs := make([]uint16, n)
	for i := 0; i < n; i++ {
		var v uint16
		for b := 0; b < SegmentBits; b++ {
			v <<= 1
			bit := mathutil.GetBit(query, (psi+SegmentBits*i+b)%y)
			v |= uint16(bit ^ 1) // negated query (~Q), §4.2.2
		}
		segs[i] = v
	}
	return segs
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PrepareQuery builds the encrypted query for a database of dbBitLen bits.
// queryBits must be at least 1 and at most 8*len(query).
func (c *Client) PrepareQuery(query []byte, queryBits, dbBitLen int) (*Query, error) {
	if queryBits < 1 || queryBits > len(query)*8 {
		return nil, fmt.Errorf("core: queryBits=%d out of range (query is %d bits)", queryBits, len(query)*8)
	}
	n := c.cfg.Params.N
	y := queryBits
	numSegs := (dbBitLen + SegmentBits - 1) / SegmentBits
	numChunks := (numSegs + n - 1) / n
	if numChunks == 0 {
		numChunks = 1
	}

	q := &Query{
		YBits:     y,
		AlignBits: c.cfg.AlignBits,
		DBBitLen:  dbBitLen,
		NumChunks: numChunks,
		Patterns:  make(map[int]*bfv.Ciphertext),
	}
	g := gcd(c.cfg.AlignBits, y)
	for s := 0; s < y; s += g {
		q.Residues = append(q.Residues, s)
	}

	// Encrypt every distinct pattern phase once.
	for _, s := range q.Residues {
		for j := 0; j < numChunks; j++ {
			psi := PatternPhase(n, j, s, y)
			if _, ok := q.Patterns[psi]; ok {
				continue
			}
			segs := buildPatternSegments(query, y, psi, n)
			pt, err := c.enc.EncodeUint16(segs)
			if err != nil {
				return nil, err
			}
			q.Patterns[psi] = c.encryptor.Encrypt(pt, c.patternSource(psi))
		}
	}

	if c.cfg.Mode == ModeSeededMatch {
		if err := c.buildFactoredTokens(q); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// PrepareLegacyQuery builds a query in the legacy expanded-token
// representation (Tokens[s][j], R×NumChunks polynomials) — what pre-
// factoring clients send on the wire. It detects exactly the same hits
// as PrepareQuery's factored form (the engines factor it server-side),
// and exists for wire compatibility tests and old-client simulation.
func (c *Client) PrepareLegacyQuery(query []byte, queryBits, dbBitLen int) (*Query, error) {
	q, err := c.PrepareQuery(query, queryBits, dbBitLen)
	if err != nil {
		return nil, err
	}
	if c.cfg.Mode == ModeSeededMatch {
		q.DBTok, q.RHS = nil, nil
		if err := c.buildTokens(q); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// encryptC0Calls counts EncryptC0 invocations of the token builders; the
// client-prep tests use it to pin the R× reduction of the hoisted /
// factored builders (one derivation per chunk, not per chunk per residue).
var encryptC0Calls atomic.Int64

// tokenPlaintexts encodes the two plaintexts every token builder needs:
// the all-ones hit value t-1 and zero (for the pattern-noise component).
func (c *Client) tokenPlaintexts() (onesPT, zeroPT *bfv.Plaintext, err error) {
	p := c.cfg.Params
	allOnes := make([]uint64, p.N)
	for i := range allOnes {
		allOnes[i] = p.T - 1
	}
	if onesPT, err = c.enc.Encode(allOnes); err != nil {
		return nil, nil, err
	}
	if zeroPT, err = c.enc.Encode(nil); err != nil {
		return nil, nil, err
	}
	return onesPT, zeroPT, nil
}

// tokenMask derives the client's token mask M: a uniform polynomial,
// deterministic per client seed (not per query), that blinds both halves
// of the factored representation. Sharing M across a client's queries is
// what lets batch deduplication share one DBTok plane between members;
// it leaks no more than the legacy representation already did, because
// legacy tokens expose exactly the same cross-phase and cross-query
// differences (see DESIGN.md §4.3).
func (c *Client) tokenMask() ring.Poly {
	m := c.ring.NewPoly()
	c.ring.UniformPoly(c.src.Fork("query").Fork("token-mask"), m)
	return m
}

// buildFactoredTokens computes the factored form of the "encrypted match
// polynomial" of §4.2.2. The legacy token for (variant s, chunk j) is
// dbC0[j] + patC0[psi(j,s)] with dbC0[j] = EncryptC0(t-1, dbSource(j))
// and patC0[psi] = EncryptC0(0, patternSource(psi)) — a sum whose parts
// depend only on the chunk and only on the phase. Shipping the parts
// instead of the R×NumChunks sums shrinks the query by ~R× and lets the
// server evaluate every residue in one pass over each chunk:
//
//	(c0 + pattern.C0) == dbC0 + patC0   per (§4.2.2)
//	⇔ (c0 - DBTok[j]) == RHS[psi]      with DBTok[j] = dbC0[j] - M,
//	                                   RHS[psi] = patC0[psi] - pattern.C0[psi] + M.
//
// M is the client's token mask; without it RHS would equal -Δ·patternPT
// and hand the server the query plaintext.
func (c *Client) buildFactoredTokens(q *Query) error {
	onesPT, zeroPT, err := c.tokenPlaintexts()
	if err != nil {
		return err
	}
	mask := c.tokenMask()
	q.DBTok = make([]ring.Poly, q.NumChunks)
	for j := 0; j < q.NumChunks; j++ {
		dbC0 := c.encryptor.EncryptC0(onesPT, c.dbChunkSource(j))
		encryptC0Calls.Add(1)
		c.ring.Sub(dbC0, mask, dbC0)
		q.DBTok[j] = dbC0
	}
	q.RHS = make(map[int]ring.Poly, len(q.Patterns))
	for psi, pattern := range q.Patterns {
		rhs := c.encryptor.EncryptC0(zeroPT, c.patternSource(psi))
		encryptC0Calls.Add(1)
		c.ring.Sub(rhs, pattern.C[0], rhs)
		c.ring.Add(rhs, mask, rhs)
		q.RHS[psi] = rhs
	}
	return nil
}

// buildTokens computes the legacy expanded tokens: for every (variant,
// chunk) the exact first-component value the homomorphic addition
// produces when a coefficient sums to the all-ones value t-1. The client
// re-derives the ciphertext randomness of both operands from its seed
// (via bfv's documented sampling order) without needing the database
// plaintext. Both per-chunk and per-phase components are derived once
// and summed per (variant, chunk) — EncryptC0 runs NumChunks+numPhases
// times, not once per residue per chunk.
func (c *Client) buildTokens(q *Query) error {
	n := c.cfg.Params.N
	onesPT, zeroPT, err := c.tokenPlaintexts()
	if err != nil {
		return err
	}

	// One derivation per chunk and per phase, summed below.
	dbC0 := make([]ring.Poly, q.NumChunks)
	for j := range dbC0 {
		dbC0[j] = c.encryptor.EncryptC0(onesPT, c.dbChunkSource(j))
		encryptC0Calls.Add(1)
	}
	patternC0 := make(map[int]ring.Poly, len(q.Patterns))
	for psi := range q.Patterns {
		patternC0[psi] = c.encryptor.EncryptC0(zeroPT, c.patternSource(psi))
		encryptC0Calls.Add(1)
	}

	q.Tokens = make(map[int][]ring.Poly, len(q.Residues))
	for _, s := range q.Residues {
		toks := make([]ring.Poly, q.NumChunks)
		for j := 0; j < q.NumChunks; j++ {
			// Expected hit value: noise(db_j) + Δ(t-1) + noise(pattern).
			psi := PatternPhase(n, j, s, q.YBits)
			tok := c.ring.NewPoly()
			c.ring.Add(dbC0[j], patternC0[psi], tok)
			toks[j] = tok
		}
		q.Tokens[s] = toks
	}
	return nil
}

// HitBitmaps maps a variant residue to its global window-hit bitmap,
// packed 64 windows per word (see Bitset).
type HitBitmaps map[int]*Bitset

// Release returns every bitmap's storage to the bitset pool. Callers
// done with a result (e.g. the wire server after encoding candidates)
// release it so steady-state searches reuse bitmap storage instead of
// allocating.
func (h HitBitmaps) Release() {
	for res, bm := range h {
		bm.Release()
		delete(h, res)
	}
}

// ExtractHits decrypts the per-(variant, chunk) result ciphertexts of a
// search and marks every window whose coefficient equals the match value
// t-1 (ModeClientDecrypt). Index generation runs through the same packed
// compare kernel the server engines use (ring.CmpEqScalarBits), so both
// index-generation modes produce bit-identical Bitsets.
func (c *Client) ExtractHits(q *Query, sr *SearchResult) HitBitmaps {
	p := c.cfg.Params
	matchVal := p.T - 1
	hits := make(HitBitmaps, len(q.Residues))
	numWindows := q.NumChunks * p.N
	for vi, s := range q.Residues {
		bm := NewBitset(numWindows)
		for j, ct := range sr.Results[vi] {
			pt := c.decryptor.Decrypt(ct)
			ring.CmpEqScalarBits(pt.Coeffs, matchVal, bm.Words(), j*p.N)
		}
		hits[s] = bm
	}
	return hits
}

// CandidateWireBytes is the width of one candidate offset on the wire:
// internal/proto ships candidates as 4-byte little-endian values, and
// any engine that accounts host-transfer volume (the SSD controller's
// HostBytesOut) must use the same constant so stats match the bytes
// actually moved. It lives in core rather than proto because the SSD
// simulator cannot import proto (proto links the engine registry, which
// links the SSD).
const CandidateWireBytes = 4

// Candidates converts hit bitmaps into candidate occurrence offsets: every
// aligned offset whose full windows are all hits. See DESIGN.md on boundary
// bits: candidates agree with the query on every full window; up to 15 bits
// on each side are unverified.
//
// The scan is word-level over the packed bitmaps (Bitset.AllSet checks 64
// windows per comparison with an early exit on the first miss), and any
// residue whose bitmap has no set bit at all is dropped up front — when
// every residue is empty (the common case for a rare pattern) the offset
// loop never runs at all.
func Candidates(hits HitBitmaps, dbBits, yBits, alignBits int) []int {
	// Residue-indexed bitmap table: one modulo + array load per offset
	// instead of per-offset map lookups; empty bitmaps stay nil.
	bmAt := make([]*Bitset, yBits)
	live := 0
	for res, bm := range hits {
		if res >= 0 && res < yBits && !bm.None() {
			bmAt[res] = bm
			live++
		}
	}
	if live == 0 {
		return nil
	}
	var out []int
	for o := 0; o+yBits <= dbBits; o += alignBits {
		bm := bmAt[o%yBits]
		if bm == nil {
			continue
		}
		w0, w1 := FullWindows(o, yBits)
		if w1 == w0 {
			continue // undetectable at this offset
		}
		if bm.AllSet(w0, w1) {
			out = append(out, o)
		}
	}
	return out
}

// VerifyCandidates filters candidates against the plaintext database; this
// is the optional exact verification pass available to the data owner.
func VerifyCandidates(db []byte, dbBits int, query []byte, queryBits int, candidates []int) []int {
	var out []int
	for _, o := range candidates {
		if o+queryBits <= dbBits && plainMatchAt(db, query, queryBits, o) {
			out = append(out, o)
		}
	}
	return out
}

// Decryptor exposes the client's decryptor for diagnostics (noise budgets
// in tests and examples).
func (c *Client) Decryptor() *bfv.Decryptor { return c.decryptor }
