package core

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// ShardedEngine splits one logical database into contiguous chunk ranges
// and searches each range with its own inner engine — the scale-out
// composition of the engine abstraction. Because a query's pattern phase
// for global chunk lo+j is the local phase shifted by a per-shard
// constant ((16·n·lo) mod y), every shard sees a self-consistent
// sub-query and any Engine implementation can serve a shard: CPU engines
// directly, or one simulated in-flash drive per shard (how the paper's
// drive-level parallelism would be deployed across multiple SSDs).
//
// Hit bitmaps merge back at global window offsets and candidate
// generation runs once over the merged bitmaps, so occurrences spanning
// a shard boundary are found exactly as in the unsharded engines.
type ShardedEngine struct {
	params bfv.Params
	db     *EncryptedDB
	shards []*engineShard
	statCounter
}

var _ Engine = (*ShardedEngine)(nil)

// engineShard is one chunk range [lo, hi) with its engine and the
// sub-database view the engine was built over.
type engineShard struct {
	lo, hi int
	sub    *EncryptedDB
	engine Engine
}

// ShardDB returns the sub-database view of chunks [lo, hi): the chunk
// slice plus the bit length and segment count the range covers. Engines
// built over this view accept the sub-queries ShardedEngine constructs.
func ShardDB(db *EncryptedDB, params bfv.Params, lo, hi int) *EncryptedDB {
	bitsPerChunk := params.N * SegmentBits
	bits := db.BitLen - lo*bitsPerChunk
	if maxBits := (hi - lo) * bitsPerChunk; bits > maxBits {
		bits = maxBits
	}
	segs := db.NumSegments - lo*params.N
	if maxSegs := (hi - lo) * params.N; segs > maxSegs {
		segs = maxSegs
	}
	return &EncryptedDB{Chunks: db.Chunks[lo:hi], BitLen: bits, NumSegments: segs}
}

// NewShardedEngine builds numShards engines over contiguous chunk ranges
// of db using the factory (called with the shard index and its
// sub-database view). numShards is clamped to the chunk count.
func NewShardedEngine(params bfv.Params, db *EncryptedDB, numShards int, factory func(shard int, sub *EncryptedDB) (Engine, error)) (*ShardedEngine, error) {
	numChunks := len(db.Chunks)
	if numChunks == 0 {
		return nil, fmt.Errorf("core: cannot shard an empty database")
	}
	if numShards < 1 {
		numShards = 1
	}
	if numShards > numChunks {
		numShards = numChunks
	}
	e := &ShardedEngine{params: params, db: db}
	for s := 0; s < numShards; s++ {
		lo := s * numChunks / numShards
		hi := (s + 1) * numChunks / numShards
		sub := ShardDB(db, params, lo, hi)
		inner, err := factory(s, sub)
		if err != nil {
			e.Close() //nolint:errcheck // best-effort cleanup of earlier shards
			return nil, fmt.Errorf("core: building shard %d: %w", s, err)
		}
		e.shards = append(e.shards, &engineShard{lo: lo, hi: hi, sub: sub, engine: inner})
	}
	return e, nil
}

// shardQuery rewrites a query for chunks [lo, hi): local chunk j stands
// for global chunk lo+j, so every local pattern/RHS phase maps to the
// global phase shifted by (16·n·lo) mod y, and the DBTok/token slices
// narrow to the range. Polynomials and ciphertexts are shared, not
// copied — which also keeps batch-level pointer dedup effective inside
// every shard.
func shardQuery(q *Query, n int, sh *engineShard) *Query {
	y := q.YBits
	shift := ChunkPhi(n, sh.lo, y)
	sub := &Query{
		YBits:     q.YBits,
		AlignBits: q.AlignBits,
		DBBitLen:  sh.sub.BitLen,
		NumChunks: sh.hi - sh.lo,
		Residues:  q.Residues,
		Patterns:  make(map[int]*bfv.Ciphertext),
		HitsOnly:  true, // candidates are generated once over merged bitmaps
	}
	for _, res := range q.Residues {
		for j := 0; j < sub.NumChunks; j++ {
			psiLocal := PatternPhase(n, j, res, y)
			if _, ok := sub.Patterns[psiLocal]; ok {
				continue
			}
			if ct, ok := q.Patterns[(psiLocal+shift)%y]; ok {
				sub.Patterns[psiLocal] = ct
			}
		}
	}
	if q.DBTok != nil {
		sub.DBTok = q.DBTok[sh.lo:sh.hi]
		sub.RHS = make(map[int]ring.Poly, len(q.RHS))
		for _, res := range q.Residues {
			for j := 0; j < sub.NumChunks; j++ {
				psiLocal := PatternPhase(n, j, res, y)
				if _, ok := sub.RHS[psiLocal]; ok {
					continue
				}
				if rhs, ok := q.RHS[(psiLocal+shift)%y]; ok {
					sub.RHS[psiLocal] = rhs
				}
			}
		}
	}
	if q.Tokens != nil {
		sub.Tokens = make(map[int][]ring.Poly, len(q.Tokens))
		for res, toks := range q.Tokens {
			sub.Tokens[res] = toks[sh.lo:sh.hi]
		}
	}
	return sub
}

// SearchAndIndex implements Engine: it fans the query out to every
// shard concurrently and merges the hit bitmaps at global offsets.
//
//cm:pooled
func (e *ShardedEngine) SearchAndIndex(q *Query) (*IndexResult, error) {
	if err := validateSearchQuery(e.db, q, true); err != nil {
		return nil, err
	}
	n := e.params.N
	type shardResult struct {
		ir  *IndexResult
		err error
	}
	results := make([]shardResult, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			results[i].ir, results[i].err = sh.engine.SearchAndIndex(shardQuery(q, n, sh))
		}(i, sh)
	}
	wg.Wait()

	ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues))}
	numWindows := len(e.db.Chunks) * n
	for _, res := range q.Residues {
		ir.Hits[res] = NewBitset(numWindows)
	}
	for i, sh := range e.shards {
		if results[i].err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, results[i].err)
		}
		sub := results[i].ir
		ir.Stats.add(sub.Stats)
		for res, bm := range sub.Hits {
			ir.Hits[res].OrAt(bm, sh.lo*n)
		}
		sub.Hits.Release() // per-shard bitmaps are transient: recycle them
	}
	if !q.HitsOnly {
		ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
	}
	e.record(ir.Stats)
	return ir, nil
}

// SearchAndIndexBatch implements BatchSearcher: every shard receives a
// sub-batch of per-member sub-queries and runs it through its own batch
// path (native or sequential), then hit bitmaps merge back per member at
// global offsets. Pattern ciphertext pointers are shared between member
// queries and their shard sub-queries, so the batch-level dedup carries
// into every shard's kernel.
func (e *ShardedEngine) SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error) {
	if err := bq.validate(e.db); err != nil {
		return nil, err
	}
	n := e.params.N
	type shardResult struct {
		irs []*IndexResult
		err error
	}
	results := make([]shardResult, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			subs := make([]*Query, len(bq.Queries))
			for mi, q := range bq.Queries {
				subs[mi] = shardQuery(q, n, sh)
			}
			// No re-dedup: shardQuery reuses the members' pattern
			// pointers, so shared patterns stay pointer-shared.
			results[i].irs, results[i].err = SearchBatch(sh.engine, &BatchQuery{Queries: subs})
		}(i, sh)
	}
	wg.Wait()

	numWindows := len(e.db.Chunks) * n
	out := make([]*IndexResult, len(bq.Queries))
	for mi, q := range bq.Queries {
		ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues))}
		for _, res := range q.Residues {
			ir.Hits[res] = NewBitset(numWindows)
		}
		out[mi] = ir
	}
	var total Stats
	for i, sh := range e.shards {
		if results[i].err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, results[i].err)
		}
		for mi := range bq.Queries {
			sub := results[i].irs[mi]
			out[mi].Stats.add(sub.Stats)
			for res, bm := range sub.Hits {
				out[mi].Hits[res].OrAt(bm, sh.lo*n)
			}
			sub.Hits.Release() // per-shard bitmaps are transient: recycle them
		}
	}
	for mi, q := range bq.Queries {
		if !q.HitsOnly {
			out[mi].Candidates = Candidates(out[mi].Hits, q.DBBitLen, q.YBits, q.AlignBits)
		}
		total.add(out[mi].Stats)
	}
	e.record(total)
	return out, nil
}

var _ BatchSearcher = (*ShardedEngine)(nil)

// Describe implements Engine, e.g. "sharded[0:3]=serial [3:6]=serial".
func (e *ShardedEngine) Describe() string {
	var b strings.Builder
	b.WriteString("sharded")
	for _, sh := range e.shards {
		fmt.Fprintf(&b, " [%d:%d]=%s", sh.lo, sh.hi, sh.engine.Describe())
	}
	return b.String()
}

// Close closes every inner engine that supports closing.
func (e *ShardedEngine) Close() error {
	var first error
	for _, sh := range e.shards {
		if sh == nil || sh.engine == nil {
			continue
		}
		if c, ok := sh.engine.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
