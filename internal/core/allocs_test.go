package core

import "testing"

// TestSearchChunkRangeZeroAllocs pins the steady-state allocation
// profile of the serial search loop: with the factored query built and
// the bitset words bound, streaming every chunk through the fused
// kernel allocates nothing. This is the runtime complement of the
// //cm:hotpath annotation on searchChunkRange — the static check
// forbids allocation sites, this catches allocations hiding in callees.
func TestSearchChunkRangeZeroAllocs(t *testing.T) {
	cfg, edb, q, serial := engineFixture(t)
	defer serial.Release()
	r := cfg.Params.Ring()
	fq, err := FactorQuery(r, q, len(edb.Chunks))
	if err != nil {
		t.Fatal(err)
	}
	words := make([][]uint64, len(q.Residues))
	bms := make([]*Bitset, len(q.Residues))
	numWindows := len(edb.Chunks) * cfg.Params.N
	for vi := range words {
		bms[vi] = NewBitset(numWindows)
		words[vi] = bms[vi].Words()
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := searchChunkRange(r, edb, q, fq, 0, len(edb.Chunks), words); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("searchChunkRange allocates %.1f times per search, want 0", avg)
	}
	for _, bm := range bms {
		bm.Release()
	}
}
