package core
