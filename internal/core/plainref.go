package core

import "ciphermatch/internal/mathutil"

// This file holds the plaintext-domain reference semantics the homomorphic
// matcher is tested against.
//
// CIPHERMATCH detects an occurrence through the 16-bit aligned windows that
// lie fully inside it (§4.2.2 and DESIGN.md "boundary bits"): an occurrence
// of a y-bit query at bit offset o is *detectable* iff at least one aligned
// window [16w, 16w+16) is contained in [o, o+y). Up to 15 bits on each side
// of the occurrence fall outside every full window, so homomorphic matching
// yields candidates that agree with the query on all full windows; the
// boundary bits are unverified.

// FindOccurrences returns every bit offset o (0 <= o <= dbBits-queryBits,
// o a multiple of alignBits) at which the query occurs exactly in the
// database. This is the naive ground truth.
func FindOccurrences(db []byte, dbBits int, query []byte, queryBits, alignBits int) []int {
	if alignBits <= 0 {
		alignBits = 1
	}
	var out []int
	for o := 0; o+queryBits <= dbBits; o += alignBits {
		if plainMatchAt(db, query, queryBits, o) {
			out = append(out, o)
		}
	}
	return out
}

func plainMatchAt(db, query []byte, queryBits, o int) bool {
	for j := 0; j < queryBits; j++ {
		if mathutil.GetBit(db, o+j) != mathutil.GetBit(query, j) {
			return false
		}
	}
	return true
}

// FullWindows returns the range [w0, w1) of aligned 16-bit window indices
// fully contained in the occurrence span [o, o+y).
func FullWindows(o, y int) (w0, w1 int) {
	w0 = (o + SegmentBits - 1) / SegmentBits
	w1 = (o + y) / SegmentBits
	if w1 < w0 {
		w1 = w0
	}
	return w0, w1
}

// Detectable reports whether an occurrence at offset o of a y-bit query has
// at least one full window, i.e. whether the add-only matcher can see it.
// Queries of 31 bits or more are detectable at every offset.
func Detectable(o, y int) bool {
	w0, w1 := FullWindows(o, y)
	return w1 > w0
}

// DetectableOccurrences filters FindOccurrences down to the offsets the
// window-based matcher can detect.
func DetectableOccurrences(db []byte, dbBits int, query []byte, queryBits, alignBits int) []int {
	occ := FindOccurrences(db, dbBits, query, queryBits, alignBits)
	var out []int
	for _, o := range occ {
		if Detectable(o, queryBits) {
			out = append(out, o)
		}
	}
	return out
}

// ExpectedCandidates computes, in the plaintext domain, exactly the
// candidate set the homomorphic matcher must produce: every aligned offset
// o whose full windows all match the query's periodic pattern. True
// occurrences are always included (if detectable); additional entries are
// the false-positive candidates whose boundary bits differ.
func ExpectedCandidates(db []byte, dbBits int, query []byte, queryBits, alignBits int) []int {
	if alignBits <= 0 {
		alignBits = 1
	}
	var out []int
	for o := 0; o+queryBits <= dbBits; o += alignBits {
		w0, w1 := FullWindows(o, queryBits)
		if w1 == w0 {
			continue // undetectable offset
		}
		ok := true
		for w := w0; w < w1 && ok; w++ {
			for b := 0; b < SegmentBits; b++ {
				pos := w*SegmentBits + b
				// Window is fully inside the occurrence, so the pattern
				// bit is the query bit at (pos - o) mod y; pos-o in [0, y).
				if mathutil.GetBit(db, pos) != mathutil.GetBit(query, pos-o) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, o)
		}
	}
	return out
}
