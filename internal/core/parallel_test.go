package core

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

func TestParallelSearchMatchesSerial(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, rng.NewSourceFromString("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 384) // 3 chunks at toy n=64
	rng.NewSourceFromString("parallel-data").Bytes(db)
	query := []byte{0xAB, 0xCD, 0xEF}
	plantQuery(db, query, 24, 48)
	plantQuery(db, query, 24, 2000)

	edb, err := client.EncryptDatabase(db, 3072)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(cfg.Params, edb)
	q, err := client.PrepareQuery(query, 24, 3072)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := server.SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} { // 0 = GOMAXPROCS
		par, err := server.SearchAndIndexParallel(q, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !intsEqual(par.Candidates, serial.Candidates) {
			t.Fatalf("workers=%d: %v != serial %v", workers, par.Candidates, serial.Candidates)
		}
		if par.Stats.HomAdds != serial.Stats.HomAdds {
			t.Fatalf("workers=%d: HomAdds %d != %d", workers, par.Stats.HomAdds, serial.Stats.HomAdds)
		}
		for res, bm := range serial.Hits {
			pbm := par.Hits[res]
			for w := range bm {
				if bm[w] != pbm[w] {
					t.Fatalf("workers=%d residue=%d window=%d differs", workers, res, w)
				}
			}
		}
	}
}

func TestParallelSearchValidation(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), Mode: ModeClientDecrypt}
	client, _ := NewClient(cfg, rng.NewSourceFromString("pv"))
	db := make([]byte, 128)
	edb, _ := client.EncryptDatabase(db, 1024)
	server := NewServer(cfg.Params, edb)
	q, _ := client.PrepareQuery([]byte{0x11, 0x22}, 16, 1024)
	if _, err := server.SearchAndIndexParallel(q, 2); err == nil {
		t.Fatal("parallel search accepted tokenless query")
	}
}
