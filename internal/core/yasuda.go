package core

import (
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

// YasudaMatcher implements the arithmetic baseline of Yasuda et al. [27]
// (§2.2, §3.1): database bits are packed one per plaintext coefficient
// ("single-bit data packing"), and secure matching computes the Hamming
// distance of the query against every bit window with exactly two
// homomorphic multiplications and three homomorphic additions per database
// ciphertext — the cost structure the paper's Fig. 2(c) attributes 98.2% of
// latency to.
//
// Encoding: a database chunk D(x) = Σ d_i x^i and the reversed query
// Qr(x) = -q_0 + Σ_{j>=1} q_j x^{n-j}. In Z_q[x]/(x^n+1), coefficient k of
// D·Qr equals -Σ_j d_{k+j} q_j for k <= n-y (the correlation), so
//
//	HD_k = Σ_j d_{k+j} + Σ_j q_j - 2 Σ_j d_{k+j} q_j
//	     = -(D·OnesR)_k + wq + 2 (D·Qr)_k
//
// with OnesR the all-ones reversed pattern and wq the query weight. An
// exact match at window k is HD_k = 0.
type YasudaMatcher struct {
	params    bfv.Params
	enc       *bfv.Encoder
	encryptor *bfv.Encryptor
	decryptor *bfv.Decryptor
	ev        *bfv.Evaluator
	rlk       *bfv.RelinKey
	maxQuery  int
}

// YasudaStats counts the homomorphic operations of a search.
type YasudaStats struct {
	HomMuls int
	HomAdds int
}

// NewYasudaMatcher creates the baseline matcher. maxQueryBits fixes the
// largest supported query (the approach's "flexible query size: no"
// limitation, Table 1): database chunks overlap by maxQueryBits-1 bits so
// every window is contained in some chunk.
func NewYasudaMatcher(params bfv.Params, maxQueryBits int, src *rng.Source) (*YasudaMatcher, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if maxQueryBits < 1 || maxQueryBits > params.N {
		return nil, fmt.Errorf("core: maxQueryBits=%d out of range [1, n=%d]", maxQueryBits, params.N)
	}
	if uint64(2*maxQueryBits) >= params.T {
		return nil, fmt.Errorf("core: Hamming distances up to %d do not fit plaintext modulus %d",
			2*maxQueryBits, params.T)
	}
	sk, pk := bfv.KeyGen(params, src.Fork("yasuda-keys"))
	rlk := bfv.NewRelinKey(params, sk, src.Fork("yasuda-rlk"))
	return &YasudaMatcher{
		params:    params,
		enc:       bfv.NewEncoder(params),
		encryptor: bfv.NewEncryptor(params, pk),
		decryptor: bfv.NewDecryptor(params, sk),
		ev:        bfv.NewEvaluator(params),
		rlk:       rlk,
		maxQuery:  maxQueryBits,
	}, nil
}

// YasudaDB is the single-bit-packed encrypted database: overlapping chunks
// of n bits with stride n-maxQueryBits+1.
type YasudaDB struct {
	Chunks []*bfv.Ciphertext
	Starts []int // bit offset of each chunk
	BitLen int
}

// SizeBytes returns the encrypted footprint (64× plaintext for the paper
// parameters — the baseline's limitation).
func (db *YasudaDB) SizeBytes(p bfv.Params) int64 {
	var total int64
	for _, ct := range db.Chunks {
		total += int64(ct.SizeBytes(p))
	}
	return total
}

// EncryptDatabase packs data one bit per coefficient and encrypts
// overlapping chunks.
func (m *YasudaMatcher) EncryptDatabase(data []byte, bitLen int, src *rng.Source) (*YasudaDB, error) {
	n := m.params.N
	stride := n - m.maxQuery + 1
	db := &YasudaDB{BitLen: bitLen}
	for start := 0; ; start += stride {
		coeffs := make([]uint64, n)
		for i := 0; i < n && start+i < bitLen; i++ {
			coeffs[i] = uint64(mathutil.GetBit(data, start+i))
		}
		pt, err := m.enc.Encode(coeffs)
		if err != nil {
			return nil, err
		}
		db.Chunks = append(db.Chunks, m.encryptor.Encrypt(pt, src.ForkIndexed("chunk", start)))
		db.Starts = append(db.Starts, start)
		if start+n >= bitLen {
			break
		}
	}
	return db, nil
}

// YasudaQuery is the encrypted reversed query and all-ones pattern.
type YasudaQuery struct {
	Qr     *bfv.Ciphertext
	OnesR  *bfv.Ciphertext
	Weight uint64
	YBits  int
}

// PrepareQuery encrypts the reversed query and reversed all-ones pattern.
func (m *YasudaMatcher) PrepareQuery(query []byte, queryBits int, src *rng.Source) (*YasudaQuery, error) {
	if queryBits < 1 || queryBits > m.maxQuery {
		return nil, fmt.Errorf("core: queryBits=%d outside supported range [1, %d]", queryBits, m.maxQuery)
	}
	n := m.params.N
	qr := make([]uint64, n)
	ones := make([]uint64, n)
	var weight uint64
	for j := 0; j < queryBits; j++ {
		bit := uint64(mathutil.GetBit(query, j))
		weight += bit
		if j == 0 {
			// x^n = -1: q_0 lands on the constant term negated.
			qr[0] = (m.params.T - bit) % m.params.T
			ones[0] = m.params.T - 1
		} else {
			qr[n-j] = bit
			ones[n-j] = 1
		}
	}
	ptQ, err := m.enc.Encode(qr)
	if err != nil {
		return nil, err
	}
	ptO, err := m.enc.Encode(ones)
	if err != nil {
		return nil, err
	}
	return &YasudaQuery{
		Qr:     m.encryptor.Encrypt(ptQ, src.Fork("qr")),
		OnesR:  m.encryptor.Encrypt(ptO, src.Fork("ones")),
		Weight: weight,
		YBits:  queryBits,
	}, nil
}

// HammingDistances computes, per chunk, a ciphertext whose coefficient k is
// the Hamming distance between the query and the database window starting
// at chunk offset k (valid for k <= n-y): 2 Hom-Muls + 3 Hom-Adds.
func (m *YasudaMatcher) HammingDistances(db *YasudaDB, q *YasudaQuery) ([]*bfv.Ciphertext, YasudaStats, error) {
	var stats YasudaStats
	out := make([]*bfv.Ciphertext, len(db.Chunks))
	wq := make([]uint64, m.params.N)
	for i := range wq {
		wq[i] = q.Weight % m.params.T
	}
	ptW, err := m.enc.Encode(wq)
	if err != nil {
		return nil, stats, err
	}
	for j, chunk := range db.Chunks {
		corr, err := m.ev.MulRelin(chunk, q.Qr, m.rlk) // (D·Qr)_k = -corr_k
		if err != nil {
			return nil, stats, err
		}
		sums, err := m.ev.MulRelin(chunk, q.OnesR, m.rlk) // (D·OnesR)_k = -Σ d
		if err != nil {
			return nil, stats, err
		}
		stats.HomMuls += 2
		// HD = 2·(D·Qr) - (D·OnesR) + wq.
		twice := m.ev.Add(corr, corr)
		diff := m.ev.Sub(twice, sums)
		hd := m.ev.AddPlain(diff, ptW)
		stats.HomAdds += 3
		out[j] = hd
	}
	return out, stats, nil
}

// Search returns the exact-match offsets of the query in the database
// (bit-aligned), by decrypting the Hamming-distance ciphertexts and
// collecting windows with HD = 0. Unlike CIPHERMATCH, results are exact at
// every bit offset — at 64× the memory footprint and with two homomorphic
// multiplications per chunk.
func (m *YasudaMatcher) Search(db *YasudaDB, q *YasudaQuery) ([]int, YasudaStats, error) {
	hds, stats, err := m.HammingDistances(db, q)
	if err != nil {
		return nil, stats, err
	}
	n := m.params.N
	seen := make(map[int]bool)
	var out []int
	for j, hd := range hds {
		pt := m.decryptor.Decrypt(hd)
		for k := 0; k+q.YBits <= n; k++ {
			o := db.Starts[j] + k
			if o+q.YBits > db.BitLen || seen[o] {
				continue
			}
			if pt.Coeffs[k] == 0 {
				out = append(out, o)
				seen[o] = true
			}
		}
	}
	sortInts(out)
	return out, stats, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
