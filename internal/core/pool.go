package core

import (
	"fmt"
	"runtime"
	"sync"

	"ciphermatch/internal/bfv"
)

// PoolEngine fans the (variant, chunk) work of a search out across a
// persistent pool of workers. Homomorphic additions are embarrassingly
// parallel — the coefficient-wise independence the paper exploits with
// SIMD on CPUs and with array-level parallelism in flash — so the search
// scales with cores until memory bandwidth saturates.
//
// Unlike a per-call goroutine fan-out, the workers live for the lifetime
// of the engine: each owns its evaluator and scratch ciphertext, and
// calls only pay for enqueueing batched chunk ranges. Concurrent
// SearchAndIndex calls share the pool fairly (their batches interleave
// on the same queue).
type PoolEngine struct {
	params  bfv.Params
	db      *EncryptedDB
	workers int

	jobs      chan poolBatch
	wg        sync.WaitGroup
	closeMu   sync.RWMutex // guards closed and the enqueue/close race
	closed    bool
	closeOnce sync.Once

	statCounter
}

var _ Engine = (*PoolEngine)(nil)

// poolCall is the shared state of one SearchAndIndex invocation. Jobs
// are chunk ranges covering every shift variant at once (the factored
// kernel fuses residues), so a search enqueues R× fewer jobs than the
// per-(variant, range) schedule did and workers synchronise R× less.
type poolCall struct {
	q       *Query
	fq      *FactoredQuery
	db      *EncryptedDB
	bitmaps []*Bitset  // per variant index, global window indexing
	words   [][]uint64 // bitmaps' backing words, built once per search
	pending sync.WaitGroup

	mu       sync.Mutex
	firstErr error
	stats    Stats
}

// poolBatchCall is the shared state of one SearchAndIndexBatch
// invocation. Jobs are chunk ranges covering every (member, variant)
// pair, so the per-chunk pattern-sum reuse of the batched kernel happens
// inside each job.
type poolBatchCall struct {
	bq      *BatchQuery
	fqs     []*FactoredQuery
	db      *EncryptedDB
	bitmaps [][]*Bitset // [member][variant], global window indexing
	pending sync.WaitGroup

	mu       sync.Mutex
	firstErr error
	stats    []Stats // per member
}

// poolBatch is one unit of queued work: chunks [lo, hi) of every
// variant of one search (call) or of every member of a batched search
// (bcall). Exactly one of call/bcall is set.
type poolBatch struct {
	call   *poolCall
	bcall  *poolBatchCall
	lo, hi int
}

// NewPoolEngine creates a pool engine with the given number of workers
// (0 = GOMAXPROCS) and starts them.
func NewPoolEngine(params bfv.Params, db *EncryptedDB, workers int) *PoolEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &PoolEngine{
		params:  params,
		db:      db,
		workers: workers,
		jobs:    make(chan poolBatch, 4*workers),
	}
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// worker drains the batch queue until Close. The fused kernel writes
// hit bits straight into the call's shared bitsets — chunk-range jobs
// are word-aligned (see batchSize), so workers never touch the same
// bitset word — and needs no scratch ciphertext at all: the hot loop
// never allocates and never contends.
func (e *PoolEngine) worker() {
	defer e.wg.Done()
	r := e.params.Ring()
	for b := range e.jobs {
		if bc := b.bcall; bc != nil {
			local := make([]Stats, len(bc.bq.Queries))
			err := searchChunkRangeBatch(r, bc.db, bc.bq, bc.fqs, b.lo, b.hi, bc.bitmaps, local)
			bc.mu.Lock()
			if err != nil && bc.firstErr == nil {
				bc.firstErr = err
			}
			for mi := range local {
				bc.stats[mi].add(local[mi])
			}
			bc.mu.Unlock()
			bc.pending.Done()
			continue
		}
		c := b.call
		st, err := searchChunkRange(r, c.db, c.q, c.fq, b.lo, b.hi, c.words)
		c.mu.Lock()
		if err != nil && c.firstErr == nil {
			c.firstErr = err
		}
		c.stats.add(st)
		c.mu.Unlock()
		c.pending.Done()
	}
}

// batchSize picks the chunk-range granularity: enough batches to keep
// every worker busy (~4 per worker) without degenerating to one chunk
// per batch on large databases. The residue-fused kernel evaluates
// every variant inside one chunk range, so ranges split on chunks only.
// Ranges are additionally aligned so every job's bit range starts on a
// 64-window word boundary — at ring degrees below 64 a chunk is less
// than one bitset word, and two workers must never OR into the same
// word.
func (e *PoolEngine) batchSize(numChunks int) int {
	per := numChunks / (4 * e.workers)
	if per < 1 {
		per = 1
	}
	if align := (63 + e.params.N) / e.params.N; align > 1 {
		per = (per + align - 1) / align * align
	}
	if per > numChunks {
		per = numChunks
	}
	return per
}

// SearchAndIndex implements Engine. Jobs split on chunk ranges only —
// the residue-fused kernel evaluates every variant per chunk stream —
// so the queue sees numChunks/batch jobs, not residues× that.
//
//cm:pooled
func (e *PoolEngine) SearchAndIndex(q *Query) (*IndexResult, error) {
	if err := validateSearchQuery(e.db, q, true); err != nil {
		return nil, err
	}
	fq, err := FactorQuery(e.params.Ring(), q, len(e.db.Chunks))
	if err != nil {
		return nil, err
	}
	numChunks := len(e.db.Chunks)
	numWindows := numChunks * e.params.N
	c := &poolCall{
		q:       q,
		fq:      fq,
		db:      e.db,
		bitmaps: make([]*Bitset, len(q.Residues)),
		words:   make([][]uint64, len(q.Residues)),
	}
	for vi := range c.bitmaps {
		c.bitmaps[vi] = NewBitset(numWindows)
		c.words[vi] = c.bitmaps[vi].Words()
	}
	batch := e.batchSize(numChunks)
	// Enqueue under the read half of closeMu: Close excludes itself with
	// the write half, so sends can never hit a closed channel. Workers
	// keep draining while this lock is held, so sends always progress.
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, fmt.Errorf("core: pool engine is closed")
	}
	for lo := 0; lo < numChunks; lo += batch {
		hi := lo + batch
		if hi > numChunks {
			hi = numChunks
		}
		c.pending.Add(1)
		e.jobs <- poolBatch{call: c, lo: lo, hi: hi}
	}
	e.closeMu.RUnlock()
	c.pending.Wait()
	if c.firstErr != nil {
		for _, bm := range c.bitmaps {
			bm.Release() // return the pooled bitsets on the error path
		}
		return nil, c.firstErr
	}

	ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues)), Stats: c.stats}
	for vi, res := range q.Residues {
		ir.Hits[res] = c.bitmaps[vi]
	}
	if !q.HitsOnly {
		ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
	}
	e.record(ir.Stats)
	return ir, nil
}

// SearchAndIndexBatch implements BatchSearcher: chunk-range jobs that
// each evaluate every member over their range, so workers amortise one
// chunk walk across the whole batch while the ranges still spread over
// the pool.
//
//cm:pooled
func (e *PoolEngine) SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error) {
	if err := bq.validate(e.db); err != nil {
		return nil, err
	}
	if len(bq.Queries) == 0 {
		return nil, nil
	}
	fqs, err := factorBatch(e.params.Ring(), bq, len(e.db.Chunks))
	if err != nil {
		return nil, err
	}
	numChunks := len(e.db.Chunks)
	c := &poolBatchCall{
		bq:      bq,
		fqs:     fqs,
		db:      e.db,
		bitmaps: newBatchBitmaps(bq, numChunks*e.params.N),
		stats:   make([]Stats, len(bq.Queries)),
	}
	// Jobs split by chunk ranges only: members and variants iterate
	// inside each job so the per-chunk evaluation cache sees the whole
	// batch.
	batch := e.batchSize(numChunks)
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, fmt.Errorf("core: pool engine is closed")
	}
	for lo := 0; lo < numChunks; lo += batch {
		hi := lo + batch
		if hi > numChunks {
			hi = numChunks
		}
		c.pending.Add(1)
		e.jobs <- poolBatch{bcall: c, lo: lo, hi: hi}
	}
	e.closeMu.RUnlock()
	c.pending.Wait()
	if c.firstErr != nil {
		return nil, c.firstErr
	}
	results, total := assembleBatchResults(bq, c.bitmaps, c.stats)
	e.record(total)
	return results, nil
}

var _ BatchSearcher = (*PoolEngine)(nil)

// Describe implements Engine.
func (e *PoolEngine) Describe() string {
	return fmt.Sprintf("pool(%d workers)", e.workers)
}

// Close shuts the workers down. Searches already in flight complete;
// later calls fail. Close is safe against concurrent SearchAndIndex.
func (e *PoolEngine) Close() error {
	e.closeOnce.Do(func() {
		e.closeMu.Lock()
		e.closed = true
		close(e.jobs)
		e.closeMu.Unlock()
	})
	e.wg.Wait()
	return nil
}
