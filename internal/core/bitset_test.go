package core

import (
	"testing"

	"ciphermatch/internal/rng"
)

func randomBitset(t *testing.T, src *rng.Source, n int) (*Bitset, []bool) {
	t.Helper()
	b := NewBitset(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if src.Uniform(3) == 0 {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

func TestBitsetSetGetCount(t *testing.T) {
	src := rng.NewSourceFromString("bitset")
	for _, n := range []int{1, 63, 64, 65, 128, 1000, 4096} {
		b, ref := randomBitset(t, src, n)
		ones := 0
		for i, want := range ref {
			if b.Get(i) != want {
				t.Fatalf("n=%d bit %d: got %v, want %v", n, i, b.Get(i), want)
			}
			if want {
				ones++
			}
		}
		if b.OnesCount() != ones {
			t.Fatalf("n=%d: OnesCount=%d, want %d", n, b.OnesCount(), ones)
		}
		if b.None() != (ones == 0) {
			t.Fatalf("n=%d: None=%v with %d ones", n, b.None(), ones)
		}
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
	}
}

func TestBitsetAllSet(t *testing.T) {
	src := rng.NewSourceFromString("bitset-allset")
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(src.Uniform(300))
		b, ref := randomBitset(t, src, n)
		lo := int(src.Uniform(uint64(n + 1)))
		hi := lo + int(src.Uniform(uint64(n-lo+1)))
		want := true
		for w := lo; w < hi; w++ {
			if !ref[w] {
				want = false
				break
			}
		}
		if got := b.AllSet(lo, hi); got != want {
			t.Fatalf("n=%d AllSet(%d,%d)=%v, want %v", n, lo, hi, got, want)
		}
	}
	b := NewBitset(64)
	if b.AllSet(0, 65) {
		t.Fatal("AllSet accepted out-of-range hi")
	}
	if b.AllSet(-1, 4) {
		t.Fatal("AllSet accepted negative lo")
	}
	if !b.AllSet(5, 5) {
		t.Fatal("AllSet on empty range should be vacuous")
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{0, 5, 63, 64, 127, 199} {
		b.Set(i)
	}
	want := []int{0, 5, 63, 64, 127, 199}
	got := []int{}
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if b.NextSet(200) != -1 {
		t.Fatal("NextSet past the end should return -1")
	}
}

func TestBitsetOrAt(t *testing.T) {
	src := rng.NewSourceFromString("bitset-orat")
	for _, off := range []int{0, 64, 128, 7, 93} { // aligned and unaligned
		dst := NewBitset(512)
		pre, preRef := randomBitset(t, src, 512)
		dst.OrAt(pre, 0)
		sub, subRef := randomBitset(t, src, 192)
		dst.OrAt(sub, off)
		for i := 0; i < 512; i++ {
			want := preRef[i]
			if i >= off && i < off+192 && subRef[i-off] {
				want = true
			}
			if dst.Get(i) != want {
				t.Fatalf("off=%d bit %d: got %v, want %v", off, i, dst.Get(i), want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OrAt out of range did not panic")
		}
	}()
	NewBitset(64).OrAt(NewBitset(64), 1)
}

// TestBitsetPoolReuse checks that a released bitset comes back zeroed
// regardless of its previous contents.
func TestBitsetPoolReuse(t *testing.T) {
	b := NewBitset(256)
	for i := 0; i < 256; i++ {
		b.Set(i)
	}
	b.Release()
	for trial := 0; trial < 10; trial++ {
		c := NewBitset(128)
		if !c.None() {
			t.Fatal("pooled bitset not zeroed")
		}
		c.Release()
	}
}

// TestCandidatesEmptyFastPath pins the early exit: all-empty bitmaps
// must produce no candidates without scanning, and a single planted
// window run must still be found.
func TestCandidatesEmptyFastPath(t *testing.T) {
	hits := HitBitmaps{0: NewBitset(64), 8: NewBitset(64)}
	if got := Candidates(hits, 1024, 32, 8); got != nil {
		t.Fatalf("empty bitmaps produced candidates %v", got)
	}
	// Windows 2,3 set for residue 0: offset 32 has full windows [2,4).
	hits[0].Set(2)
	hits[0].Set(3)
	got := Candidates(hits, 1024, 32, 8)
	found := false
	for _, o := range got {
		if o == 32 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted candidate 32 missing from %v", got)
	}
}
