package core

import (
	"sync"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

// engineFixture builds a client, an encrypted database with planted
// occurrences, and a seeded-match query over it.
func engineFixture(t *testing.T) (Config, *EncryptedDB, *Query, *IndexResult) {
	t.Helper()
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, rng.NewSourceFromString("engine"))
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 384) // 3 chunks at toy n=64
	rng.NewSourceFromString("engine-data").Bytes(db)
	query := []byte{0xAB, 0xCD, 0xEF}
	plantQuery(db, query, 24, 48)
	plantQuery(db, query, 24, 1016) // spans the chunk-0/chunk-1 boundary
	plantQuery(db, query, 24, 2000)

	edb, err := client.EncryptDatabase(db, 3072)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(query, 24, 3072)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewSerialEngine(cfg.Params, edb).SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Candidates) == 0 {
		t.Fatal("serial engine found nothing; fixture is vacuous")
	}
	return cfg, edb, q, serial
}

// assertSameResult checks that two index results agree bit for bit.
func assertSameResult(t *testing.T, label string, got, want *IndexResult) {
	t.Helper()
	if !intsEqual(got.Candidates, want.Candidates) {
		t.Fatalf("%s: candidates %v != %v", label, got.Candidates, want.Candidates)
	}
	if got.Stats.HomAdds != want.Stats.HomAdds {
		t.Fatalf("%s: HomAdds %d != %d", label, got.Stats.HomAdds, want.Stats.HomAdds)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("%s: %d hit bitmaps != %d", label, len(got.Hits), len(want.Hits))
	}
	for res, bm := range want.Hits {
		gbm := got.Hits[res]
		if gbm.Len() != bm.Len() {
			t.Fatalf("%s: residue %d bitmap length %d != %d", label, res, gbm.Len(), bm.Len())
		}
		if !gbm.Equal(bm) {
			for w := 0; w < bm.Len(); w++ {
				if bm.Get(w) != gbm.Get(w) {
					t.Fatalf("%s: residue %d window %d differs", label, res, w)
				}
			}
		}
	}
}

func TestPoolEngineMatchesSerial(t *testing.T) {
	cfg, edb, q, serial := engineFixture(t)
	for _, workers := range []int{1, 2, 4, 0} { // 0 = GOMAXPROCS
		pool := NewPoolEngine(cfg.Params, edb, workers)
		ir, err := pool.SearchAndIndex(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameResult(t, pool.Describe(), ir, serial)
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedEngineMatchesSerial(t *testing.T) {
	cfg, edb, q, serial := engineFixture(t)
	for _, spec := range []EngineSpec{
		{Kind: EngineSerial, Shards: 2},
		{Kind: EngineSerial, Shards: 3},
		{Kind: EngineSerial, Shards: 16}, // clamped to the chunk count
		{Kind: EnginePool, Workers: 2, Shards: 2},
	} {
		eng, err := NewEngine(cfg.Params, edb, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			t.Fatalf("%s: %v", eng.Describe(), err)
		}
		assertSameResult(t, eng.Describe(), ir, serial)
		if c, ok := eng.(*ShardedEngine); ok {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolEngineConcurrentSearches drives one persistent pool from many
// goroutines at once — the proto server's per-database concurrency —
// and is the -race target for the worker pool.
func TestPoolEngineConcurrentSearches(t *testing.T) {
	cfg, edb, q, serial := engineFixture(t)
	pool := NewPoolEngine(cfg.Params, edb, 4)
	defer pool.Close() //nolint:errcheck
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([]*IndexResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pool.SearchAndIndex(q)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		assertSameResult(t, "concurrent", results[i], serial)
	}
	if got := pool.Stats().HomAdds; got != callers*serial.Stats.HomAdds {
		t.Fatalf("cumulative HomAdds = %d, want %d", got, callers*serial.Stats.HomAdds)
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), Mode: ModeClientDecrypt}
	client, _ := NewClient(cfg, rng.NewSourceFromString("ev"))
	db := make([]byte, 128)
	edb, _ := client.EncryptDatabase(db, 1024)
	q, _ := client.PrepareQuery([]byte{0x11, 0x22}, 16, 1024) // no tokens
	for _, eng := range []Engine{
		NewSerialEngine(cfg.Params, edb),
		NewPoolEngine(cfg.Params, edb, 2),
	} {
		if _, err := eng.SearchAndIndex(q); err == nil {
			t.Errorf("%s: accepted tokenless query", eng.Describe())
		}
	}
}

func TestPoolEngineClosedRejectsSearches(t *testing.T) {
	cfg, edb, q, _ := engineFixture(t)
	pool := NewPoolEngine(cfg.Params, edb, 2)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := pool.SearchAndIndex(q); err == nil {
		t.Fatal("closed pool accepted a search")
	}
}

// TestEncryptedDBArena checks the contiguous-arena invariants: a
// client-encrypted database is compacted, chunk polynomials are views
// into one backing array (C0 plane first), and search results over a
// compacted database equal those over a chunk-by-chunk copy.
func TestEncryptedDBArena(t *testing.T) {
	cfg, edb, q, serial := engineFixture(t)
	if !edb.Compacted() {
		t.Fatal("EncryptDatabase did not compact the chunk polynomials")
	}
	n := cfg.Params.N
	for j, ct := range edb.Chunks {
		if len(ct.C[0]) != n || len(ct.C[1]) != n {
			t.Fatalf("chunk %d: component lengths %d/%d after compaction", j, len(ct.C[0]), len(ct.C[1]))
		}
		if cap(ct.C[0]) != n || cap(ct.C[1]) != n {
			t.Fatalf("chunk %d: arena views must be capacity-limited", j)
		}
	}
	// Functional equivalence: rebuild the database without an arena and
	// check the serial engine returns identical results.
	loose := &EncryptedDB{BitLen: edb.BitLen, NumSegments: edb.NumSegments}
	for _, ct := range edb.Chunks {
		loose.Chunks = append(loose.Chunks, ct.Clone())
	}
	if loose.Compacted() {
		t.Fatal("cloned chunks must not report compacted")
	}
	ir, err := NewSerialEngine(cfg.Params, loose).SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "loose-vs-arena", ir, serial)
	// Compact is idempotent and tolerates odd shapes.
	edb.Compact()
	odd := &EncryptedDB{Chunks: []*bfv.Ciphertext{{}}}
	odd.Compact()
	if odd.Compacted() {
		t.Fatal("malformed chunk must not compact")
	}
}

func TestNewEngineSpec(t *testing.T) {
	cfg, edb, _, _ := engineFixture(t)
	if _, err := NewEngine(cfg.Params, edb, EngineSpec{Kind: "warp-drive"}); err == nil {
		t.Error("unknown engine kind accepted")
	}
	if _, err := NewEngine(cfg.Params, edb, EngineSpec{Kind: EngineSSD}); err == nil {
		t.Error("core built an SSD engine without the simulator")
	}
	eng, err := NewEngine(cfg.Params, edb, EngineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Describe() != EngineSerial {
		t.Errorf("zero spec built %q, want serial", eng.Describe())
	}
	if got := (EngineSpec{Kind: EnginePool, Workers: 8, Shards: 2}).String(); got != "pool:8/shards=2" {
		t.Errorf("spec string = %q", got)
	}
}
