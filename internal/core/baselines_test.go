package core

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

func TestYasudaHammingDistanceExact(t *testing.T) {
	p := bfv.ParamsToyMul() // n=64, t=2^8
	src := rng.NewSourceFromString("yasuda-hd")
	m, err := NewYasudaMatcher(p, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 8) // 64 bits: exactly one chunk
	src.Bytes(db)
	query := []byte{0xB7, 0x21}
	edb, err := m.EncryptDatabase(db, 64, src.Fork("db"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.PrepareQuery(query, 16, src.Fork("q"))
	if err != nil {
		t.Fatal(err)
	}
	hds, stats, err := m.HammingDistances(edb, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HomMuls != 2*len(edb.Chunks) || stats.HomAdds != 3*len(edb.Chunks) {
		t.Fatalf("op counts: %+v, want 2 muls + 3 adds per chunk", stats)
	}
	pt := m.decryptorForTest().Decrypt(hds[0])
	for k := 0; k+16 <= 64; k++ {
		want := uint64(0)
		for j := 0; j < 16; j++ {
			dbBit := uint64(db[(k+j)/8] >> (7 - uint((k+j)%8)) & 1)
			qBit := uint64(query[j/8] >> (7 - uint(j%8)) & 1)
			want += dbBit ^ qBit
		}
		if pt.Coeffs[k] != want {
			t.Fatalf("HD at window %d: got %d, want %d", k, pt.Coeffs[k], want)
		}
	}
}

// decryptorForTest exposes the decryptor to whitebox tests.
func (m *YasudaMatcher) decryptorForTest() *bfv.Decryptor { return m.decryptor }

func TestYasudaSearchFindsPlantedOccurrences(t *testing.T) {
	p := bfv.ParamsToyMul()
	src := rng.NewSourceFromString("yasuda-search")
	m, err := NewYasudaMatcher(p, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 24) // 192 bits: multiple overlapping chunks (n=64)
	src.Bytes(db)
	query := []byte{0x5A, 0xC3}
	plantQuery(db, query, 16, 3) // arbitrary bit offset: Yasuda is exact
	plantQuery(db, query, 16, 100)

	edb, err := m.EncryptDatabase(db, 192, src.Fork("db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(edb.Chunks) < 3 {
		t.Fatalf("expected overlapping chunks, got %d", len(edb.Chunks))
	}
	q, err := m.PrepareQuery(query, 16, src.Fork("q"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Search(edb, q)
	if err != nil {
		t.Fatal(err)
	}
	want := FindOccurrences(db, 192, query, 16, 1)
	if !intsEqual(got, want) {
		t.Fatalf("Yasuda search %v != ground truth %v", got, want)
	}
}

func TestYasudaQuerySizeLimit(t *testing.T) {
	// Table 1: the arithmetic approach supports only bounded query sizes.
	p := bfv.ParamsToyMul()
	src := rng.NewSourceFromString("yasuda-limit")
	m, err := NewYasudaMatcher(p, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PrepareQuery(make([]byte, 4), 32, src); err == nil {
		t.Error("accepted query beyond maxQueryBits")
	}
	// Hamming distances must fit the plaintext modulus.
	if _, err := NewYasudaMatcher(p, 200, src); err == nil {
		t.Error("accepted maxQueryBits with HD overflow risk (2*200 > t=256)")
	}
}

func TestYasudaFootprintLargerThanCiphermatch(t *testing.T) {
	p := bfv.ParamsPaper()
	dbBits := int64(1 << 20)
	cm := FootprintCiphermatch(dbBits, p).EncryptedBytes
	ya := FootprintYasuda(dbBits, p).EncryptedBytes
	if ya != 16*cm {
		t.Fatalf("Yasuda footprint %d, CIPHERMATCH %d: want exactly 16x (paper §4.2.1)", ya, cm)
	}
}

func TestBooleanMatcherXNORAndTree(t *testing.T) {
	p := bfv.ParamsBoolean()
	src := rng.NewSourceFromString("bool-gates")
	m, err := NewBooleanMatcher(p, src)
	if err != nil {
		t.Fatal(err)
	}
	db := []byte{0xA5, 0x3C} // 16 bits
	query := []byte{0xA5}    // 8 bits
	dbCT, err := m.EncryptBits(db, 16, src.Fork("db"))
	if err != nil {
		t.Fatal(err)
	}
	qCT, err := m.EncryptBits(query, 8, src.Fork("q"))
	if err != nil {
		t.Fatal(err)
	}
	var stats BooleanStats
	hit, err := m.MatchAt(dbCT, qCT, 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.decryptor.Decrypt(hit).Coeffs[0]; got != 1 {
		t.Fatalf("match at 0: got %d, want 1", got)
	}
	miss, err := m.MatchAt(dbCT, qCT, 4, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.decryptor.Decrypt(miss).Coeffs[0]; got != 0 {
		t.Fatalf("match at 4: got %d, want 0", got)
	}
	// 8-bit window: 8 XNORs + 7 ANDs per position.
	if stats.XNORGates != 16 || stats.ANDGates != 14 {
		t.Fatalf("gate counts %+v, want 16 XNOR / 14 AND for two positions", stats)
	}
}

func TestBooleanSearchMatchesGroundTruth(t *testing.T) {
	p := bfv.ParamsBoolean()
	src := rng.NewSourceFromString("bool-search")
	m, err := NewBooleanMatcher(p, src)
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 5) // 40 bits
	src.Bytes(db)
	query := []byte{0xE7}
	plantQuery(db, query, 8, 16)
	dbCT, err := m.EncryptBits(db, 40, src.Fork("db"))
	if err != nil {
		t.Fatal(err)
	}
	qCT, err := m.EncryptBits(query, 8, src.Fork("q"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Search(dbCT, qCT, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := FindOccurrences(db, 40, query, 8, 8)
	if !intsEqual(got, want) {
		t.Fatalf("Boolean search %v != ground truth %v", got, want)
	}
}

func TestBooleanMatcherRequiresT2(t *testing.T) {
	if _, err := NewBooleanMatcher(bfv.ParamsToy(), rng.NewSourceFromString("x")); err == nil {
		t.Error("accepted t != 2")
	}
}

func TestBoolean16BitDepth(t *testing.T) {
	// Depth-4 AND tree (16-bit query) must stay within noise budget.
	p := bfv.ParamsBoolean()
	src := rng.NewSourceFromString("bool-depth")
	m, err := NewBooleanMatcher(p, src)
	if err != nil {
		t.Fatal(err)
	}
	db := []byte{0x13, 0x37, 0x00}
	query := []byte{0x13, 0x37}
	dbCT, _ := m.EncryptBits(db, 24, src.Fork("db"))
	qCT, _ := m.EncryptBits(query, 16, src.Fork("q"))
	var stats BooleanStats
	hit, err := m.MatchAt(dbCT, qCT, 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.decryptor.Decrypt(hit).Coeffs[0]; got != 1 {
		t.Fatalf("16-bit match: got %d, want 1 (noise budget exhausted?)", got)
	}
}
