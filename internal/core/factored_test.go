package core

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

// factoredFixture builds a client in seeded-match mode, an encrypted
// multi-chunk database with planted occurrences, and both query
// representations for the same pattern.
func factoredFixture(t *testing.T) (Config, *EncryptedDB, *Query, *Query) {
	t.Helper()
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, rng.NewSourceFromString("factored"))
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 384) // 3 chunks at toy n=64
	rng.NewSourceFromString("factored-data").Bytes(db)
	query := []byte{0xAB, 0xCD, 0xEF}
	plantQuery(db, query, 24, 48)
	plantQuery(db, query, 24, 1016) // spans the chunk-0/chunk-1 boundary
	plantQuery(db, query, 24, 2000)
	edb, err := client.EncryptDatabase(db, 3072)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := client.PrepareQuery(query, 24, 3072)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := client.PrepareLegacyQuery(query, 24, 3072)
	if err != nil {
		t.Fatal(err)
	}
	if !fq.Factored() || lq.Factored() || lq.Tokens == nil {
		t.Fatal("fixture representations mis-built")
	}
	return cfg, edb, fq, lq
}

// TestFactoredMatchesLegacyTokens: the factored and legacy
// representations of one query must produce bit-identical results on
// every CPU engine — the server-side re-factoring of legacy tokens is
// exact, not approximate.
func TestFactoredMatchesLegacyTokens(t *testing.T) {
	cfg, edb, fq, lq := factoredFixture(t)
	for _, spec := range []EngineSpec{
		{Kind: EngineSerial},
		{Kind: EnginePool, Workers: 3},
		{Kind: EngineSerial, Shards: 2},
		{Kind: EnginePool, Workers: 2, Shards: 3},
	} {
		eng, err := NewEngine(cfg.Params, edb, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.SearchAndIndex(fq)
		if err != nil {
			t.Fatalf("%s factored: %v", eng.Describe(), err)
		}
		want, err := eng.SearchAndIndex(lq)
		if err != nil {
			t.Fatalf("%s legacy: %v", eng.Describe(), err)
		}
		if len(got.Candidates) == 0 {
			t.Fatalf("%s: fixture found nothing", eng.Describe())
		}
		assertSameResult(t, eng.Describe()+" factored-vs-legacy", got, want)
		if c, ok := eng.(interface{ Close() error }); ok {
			_ = c.Close()
		}
	}
}

// TestSearchSingleArenaPass pins the acceptance invariant of the
// residue-fused kernel: one search streams each chunk exactly once —
// Stats.ChunkStreams == NumChunks — even though the query has multiple
// shift variants, and regardless of the token representation.
func TestSearchSingleArenaPass(t *testing.T) {
	cfg, edb, fq, lq := factoredFixture(t)
	if len(fq.Residues) < 2 {
		t.Fatalf("fixture has %d residues; need >1 for the invariant to bite", len(fq.Residues))
	}
	for _, q := range []*Query{fq, lq} {
		eng := NewSerialEngine(cfg.Params, edb)
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(len(edb.Chunks)); ir.Stats.ChunkStreams != want {
			t.Fatalf("factored=%v: ChunkStreams = %d, want %d (one arena pass)",
				q.Factored(), ir.Stats.ChunkStreams, want)
		}
		if ir.Stats.HomAdds != len(edb.Chunks) {
			t.Fatalf("factored=%v: HomAdds = %d, want %d (one ring op per chunk)",
				q.Factored(), ir.Stats.HomAdds, len(edb.Chunks))
		}
		// CoeffCompares still covers every residue: fusing the passes
		// does not skip comparisons.
		if want := int64(len(q.Residues)) * int64(len(edb.Chunks)) * int64(cfg.Params.N); ir.Stats.CoeffCompares != want {
			t.Fatalf("factored=%v: CoeffCompares = %d, want %d", q.Factored(), ir.Stats.CoeffCompares, want)
		}
	}
}

// TestBatchSharedPlaneSingleArenaPass: batch members prepared by the
// same client share one DBTok plane after dedup, so the whole batch
// costs one arena pass — ChunkStreams across members == NumChunks.
func TestBatchSharedPlaneSingleArenaPass(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, rng.NewSourceFromString("batch-pass"))
	if err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 256) // 2 chunks
	rng.NewSourceFromString("batch-pass-data").Bytes(db)
	edb, err := client.EncryptDatabase(db, 2048)
	if err != nil {
		t.Fatal(err)
	}
	prepare := func(pat []byte) *Query {
		q, err := client.PrepareQuery(pat, len(pat)*8, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	bq := NewBatchQuery(
		prepare([]byte{0xAB, 0xCD, 0xEF}),
		prepare([]byte{0x01, 0x02, 0x03, 0x04}),
		prepare([]byte{0xAB, 0xCD, 0xEF}), // duplicate content
	)
	// Dedup must collapse the three members' DBTok planes to one.
	for mi := 1; mi < 3; mi++ {
		if &bq.Queries[mi].DBTok[0][0] != &bq.Queries[0].DBTok[0][0] {
			t.Fatalf("member %d DBTok not deduplicated", mi)
		}
	}
	eng := NewSerialEngine(cfg.Params, edb)
	irs, err := eng.SearchAndIndexBatch(bq)
	if err != nil {
		t.Fatal(err)
	}
	var streams int64
	for _, ir := range irs {
		streams += ir.Stats.ChunkStreams
	}
	if want := int64(len(edb.Chunks)); streams != want {
		t.Fatalf("batch ChunkStreams = %d, want %d (one arena pass for the whole batch)", streams, want)
	}
}

// TestFactorBatchDedupsLegacyRows: identical legacy members must come
// out of batch factoring with pointer-shared RHS rows — the
// re-factoring allocates fresh polynomials per member, and without
// content dedup the kernel's duplicate-class word-OR propagation would
// silently degrade to full re-comparison for old clients.
func TestFactorBatchDedupsLegacyRows(t *testing.T) {
	cfg, edb, _, lq := factoredFixture(t)
	client, err := NewClient(cfg, rng.NewSourceFromString("factored"))
	if err != nil {
		t.Fatal(err)
	}
	lq2, err := client.PrepareLegacyQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 3072)
	if err != nil {
		t.Fatal(err)
	}
	bq := NewBatchQuery(lq, lq2)
	fqs, err := factorBatch(cfg.Params.Ring(), bq, len(edb.Chunks))
	if err != nil {
		t.Fatal(err)
	}
	if &fqs[0].DBTok[0][0] != &fqs[1].DBTok[0][0] {
		t.Fatal("legacy members' DBTok planes not shared after token dedup")
	}
	for phi, row := range fqs[0].rows {
		other := fqs[1].rows[phi]
		if len(other) != len(row) {
			t.Fatalf("phase %d: row lengths differ", phi)
		}
		for ri := range row {
			if &row[ri][0] != &other[ri][0] {
				t.Fatalf("phase %d residue %d: refactored RHS not deduplicated across identical members", phi, ri)
			}
		}
	}
}

// TestEncryptC0CallCounts proves the R× reduction in client-side token
// derivation: both the factored builder and the hoisted legacy builder
// run EncryptC0 once per chunk plus once per phase — NOT once per
// (residue, chunk) as the pre-hoist legacy builder did.
func TestEncryptC0CallCounts(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, rng.NewSourceFromString("c0-count"))
	if err != nil {
		t.Fatal(err)
	}
	dbBits := 3 * cfg.Params.N * SegmentBits // 3 chunks
	countCalls := func(f func()) int64 {
		start := encryptC0Calls.Load()
		f()
		return encryptC0Calls.Load() - start
	}

	var fq *Query
	got := countCalls(func() {
		if fq, err = client.PrepareQuery([]byte{0xDE, 0xAD, 0xBE}, 24, dbBits); err != nil {
			t.Fatal(err)
		}
	})
	chunks, phases, residues := fq.NumChunks, int64(len(fq.RHS)), int64(len(fq.Residues))
	want := int64(chunks) + phases
	if got != want {
		t.Fatalf("factored PrepareQuery ran EncryptC0 %d times, want chunks+phases = %d", got, want)
	}
	if unhoisted := residues*int64(chunks) + phases; got >= unhoisted {
		t.Fatalf("factored builder (%d calls) does not beat the per-residue derivation (%d)", got, unhoisted)
	}

	got = countCalls(func() {
		if _, err = client.PrepareLegacyQuery([]byte{0xDE, 0xAD, 0xBE}, 24, dbBits); err != nil {
			t.Fatal(err)
		}
	})
	// PrepareLegacyQuery builds the factored form first (PrepareQuery)
	// and then the expanded tokens: two hoisted derivations.
	if got != 2*want {
		t.Fatalf("legacy PrepareQuery ran EncryptC0 %d times, want 2×(chunks+phases) = %d", got, 2*want)
	}
}
