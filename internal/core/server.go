package core

import (
	"errors"
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// Shared error constructors (used by every engine).
var errNoTokens = errors.New("core: search requires match tokens (ModeSeededMatch)")

func errMissingPhase(psi int) error {
	return fmt.Errorf("core: query missing pattern phase %d", psi)
}

func errBadTokens(res int) error {
	return fmt.Errorf("core: query tokens missing or mis-sized for residue %d", res)
}

// Stats accumulates the operation counts of a search; the performance model
// (internal/perfmodel) consumes these to compose end-to-end latency.
type Stats struct {
	// HomAdds is the number of homomorphic ring operations executed (the
	// only homomorphic operation CIPHERMATCH uses, §4.2.2). With the
	// residue-fused kernel this is one per chunk streamed — the single
	// subtraction whose difference is compared against every residue's
	// RHS — instead of one per (chunk, residue).
	HomAdds int
	// CoeffCompares is the number of coefficient comparisons performed by
	// index generation (still one per coefficient per residue).
	CoeffCompares int64
	// ResultBytes is the volume of result ciphertexts produced.
	ResultBytes int64
	// ChunkStreams counts how many times a database chunk's first
	// component was streamed from the ciphertext arena. A single-pass
	// search streams each chunk once, so ChunkStreams == NumChunks per
	// search regardless of the residue count — the arena-traffic
	// invariant the factored representation buys (the legacy kernel
	// streamed R× that).
	ChunkStreams int64
}

// Server holds the encrypted database and executes secure string search
// (Algorithm 1, lines 10-12). It never sees the secret key. Index
// generation (SearchAndIndex) is delegated to an Engine; NewServer wires
// in the serial CPU engine, NewServerWithEngine accepts any substrate.
type Server struct {
	params bfv.Params
	ev     *bfv.Evaluator
	ring   *ring.Ring
	db     *EncryptedDB
	engine Engine
}

// NewServer creates a server over an encrypted database with the serial
// CPU engine.
func NewServer(params bfv.Params, db *EncryptedDB) *Server {
	return NewServerWithEngine(params, db, NewSerialEngine(params, db))
}

// NewServerWithEngine creates a server whose SearchAndIndex executes on
// the given engine (serial, pool, sharded, or the in-flash simulator).
// The engine must have been built over the same database.
func NewServerWithEngine(params bfv.Params, db *EncryptedDB, e Engine) *Server {
	return &Server{params: params, ev: bfv.NewEvaluator(params), ring: params.Ring(), db: db, engine: e}
}

// DB returns the stored encrypted database.
func (s *Server) DB() *EncryptedDB { return s.db }

// Engine returns the execution engine behind SearchAndIndex.
func (s *Server) Engine() Engine { return s.engine }

// SearchResult holds one result ciphertext per (variant, chunk), in the
// order of Query.Residues (ModeClientDecrypt).
type SearchResult struct {
	Results [][]*bfv.Ciphertext
	Stats   Stats
}

// Search performs the homomorphic additions of Algorithm 1 line 10 and
// returns the result ciphertexts for client-side index generation. This
// path ships ciphertexts back to the client, so it always runs on the
// CPU regardless of the configured engine.
func (s *Server) Search(q *Query) (*SearchResult, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	n := s.params.N
	sr := &SearchResult{Results: make([][]*bfv.Ciphertext, len(q.Residues))}
	for vi, res := range q.Residues {
		row := make([]*bfv.Ciphertext, len(s.db.Chunks))
		for j, chunk := range s.db.Chunks {
			psi := PatternPhase(n, j, res, q.YBits)
			pattern, ok := q.Patterns[psi]
			if !ok {
				return nil, errMissingPhase(psi)
			}
			sum := s.ev.Add(chunk, pattern)
			row[j] = sum
			sr.Stats.HomAdds++
			sr.Stats.ResultBytes += int64(sum.SizeBytes(s.params))
		}
		sr.Results[vi] = row
	}
	return sr, nil
}

// IndexResult is the output of server-side index generation
// (ModeSeededMatch): per-variant window-hit bitmaps (packed Bitsets) and
// the final candidate offsets.
type IndexResult struct {
	Hits       HitBitmaps
	Candidates []int
	Stats      Stats
}

// Release recycles the result's hit-bitmap storage through the bitset
// pool. Call it when the result will not be used again (the wire server
// does, after encoding candidates); afterwards ir.Hits is empty. Safe on
// nil.
func (ir *IndexResult) Release() {
	if ir == nil {
		return
	}
	ir.Hits.Release()
}

// SearchAndIndex performs the homomorphic additions and then generates the
// match index on the server by comparing each result's first component
// against the query's match tokens ("encrypted match polynomial", §4.2.2).
// Only the hit pattern leaves the server, not the result ciphertexts. The
// work executes on the server's engine.
//
//cm:pooled
func (s *Server) SearchAndIndex(q *Query) (*IndexResult, error) {
	return s.engine.SearchAndIndex(q)
}

// SearchAndIndexBatch runs every member of bq through the server's
// engine in one batched pass where the engine supports it (sequentially
// otherwise), returning one IndexResult per member in member order.
//
//cm:pooled
func (s *Server) SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error) {
	return SearchBatch(s.engine, bq)
}

func (s *Server) checkQuery(q *Query) error {
	return validateSearchQuery(s.db, q, false)
}
