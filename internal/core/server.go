package core

import (
	"errors"
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// Shared error constructors (used by the serial and parallel search
// paths).
var errNoTokens = errors.New("core: search requires match tokens (ModeSeededMatch)")

func errMissingPhase(psi int) error {
	return fmt.Errorf("core: query missing pattern phase %d", psi)
}

func errBadTokens(res int) error {
	return fmt.Errorf("core: query tokens missing or mis-sized for residue %d", res)
}

// Stats accumulates the operation counts of a search; the performance model
// (internal/perfmodel) consumes these to compose end-to-end latency.
type Stats struct {
	// HomAdds is the number of homomorphic additions executed (the only
	// homomorphic operation CIPHERMATCH uses, §4.2.2).
	HomAdds int
	// CoeffCompares is the number of coefficient comparisons performed by
	// index generation.
	CoeffCompares int64
	// ResultBytes is the volume of result ciphertexts produced.
	ResultBytes int64
}

// Server holds the encrypted database and executes secure string search
// (Algorithm 1, lines 10-12). It never sees the secret key.
type Server struct {
	params bfv.Params
	ev     *bfv.Evaluator
	ring   *ring.Ring
	db     *EncryptedDB
}

// NewServer creates a server over an encrypted database.
func NewServer(params bfv.Params, db *EncryptedDB) *Server {
	return &Server{params: params, ev: bfv.NewEvaluator(params), ring: params.Ring(), db: db}
}

// DB returns the stored encrypted database.
func (s *Server) DB() *EncryptedDB { return s.db }

// SearchResult holds one result ciphertext per (variant, chunk), in the
// order of Query.Residues (ModeClientDecrypt).
type SearchResult struct {
	Results [][]*bfv.Ciphertext
	Stats   Stats
}

// Search performs the homomorphic additions of Algorithm 1 line 10 and
// returns the result ciphertexts for client-side index generation.
func (s *Server) Search(q *Query) (*SearchResult, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	n := s.params.N
	sr := &SearchResult{Results: make([][]*bfv.Ciphertext, len(q.Residues))}
	for vi, res := range q.Residues {
		row := make([]*bfv.Ciphertext, len(s.db.Chunks))
		for j, chunk := range s.db.Chunks {
			psi := PatternPhase(n, j, res, q.YBits)
			pattern, ok := q.Patterns[psi]
			if !ok {
				return nil, fmt.Errorf("core: query missing pattern phase %d", psi)
			}
			sum := s.ev.Add(chunk, pattern)
			row[j] = sum
			sr.Stats.HomAdds++
			sr.Stats.ResultBytes += int64(sum.SizeBytes(s.params))
		}
		sr.Results[vi] = row
	}
	return sr, nil
}

// IndexResult is the output of server-side index generation
// (ModeSeededMatch): per-variant window-hit bitmaps and the final candidate
// offsets.
type IndexResult struct {
	Hits       HitBitmaps
	Candidates []int
	Stats      Stats
}

// SearchAndIndex performs the homomorphic additions and then generates the
// match index on the server by comparing each result's first component
// against the query's match tokens ("encrypted match polynomial", §4.2.2).
// Only the hit pattern leaves the server, not the result ciphertexts.
func (s *Server) SearchAndIndex(q *Query) (*IndexResult, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	if q.Tokens == nil {
		return nil, fmt.Errorf("core: SearchAndIndex requires match tokens (ModeSeededMatch)")
	}
	n := s.params.N
	ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues))}
	numWindows := len(s.db.Chunks) * n
	for _, res := range q.Residues {
		toks, ok := q.Tokens[res]
		if !ok || len(toks) != len(s.db.Chunks) {
			return nil, fmt.Errorf("core: query tokens missing or mis-sized for residue %d", res)
		}
		bm := make([]bool, numWindows)
		for j, chunk := range s.db.Chunks {
			psi := PatternPhase(n, j, res, q.YBits)
			pattern, ok := q.Patterns[psi]
			if !ok {
				return nil, fmt.Errorf("core: query missing pattern phase %d", psi)
			}
			sum := s.ev.Add(chunk, pattern)
			ir.Stats.HomAdds++
			// Index generation: compare the first component against the
			// expected hit value coefficient-by-coefficient.
			tok := toks[j]
			base := j * n
			for i, v := range sum.C[0] {
				if v == tok[i] {
					bm[base+i] = true
				}
			}
			ir.Stats.CoeffCompares += int64(n)
		}
		ir.Hits[res] = bm
	}
	ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
	return ir, nil
}

func (s *Server) checkQuery(q *Query) error {
	if q.YBits < 1 {
		return fmt.Errorf("core: query has invalid length %d", q.YBits)
	}
	if q.NumChunks != len(s.db.Chunks) {
		return fmt.Errorf("core: query prepared for %d chunks, database has %d",
			q.NumChunks, len(s.db.Chunks))
	}
	if q.DBBitLen != s.db.BitLen {
		return fmt.Errorf("core: query prepared for %d-bit database, have %d bits",
			q.DBBitLen, s.db.BitLen)
	}
	return nil
}
