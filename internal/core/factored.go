package core

import (
	"fmt"

	"ciphermatch/internal/ring"
)

// FactoredQuery is the kernel-ready factored form of a seeded-match
// query: the per-chunk DBTok plane plus, for every chunk phase phi that
// occurs in the database, one RHS polynomial per shift variant. The
// residue-fused kernels stream chunk j's first component and DBTok[j]
// once and compare the difference against Row(phi_j) — all residues in
// a single arena pass.
//
// Both query representations normalise to it: native factored queries
// by phase lookup (pointer arrangement only), legacy expanded-token
// queries by server-side re-factoring around a reference residue — so
// old clients get the single-pass kernel too.
type FactoredQuery struct {
	// DBTok[j] is the chunk-dependent comparand subtracted from chunk
	// j's first component. For native queries it is the client's masked
	// plane; for re-factored legacy queries it is the reference
	// residue's token row.
	DBTok []ring.Poly
	// rows[phi][ri] is the comparand for residue index ri on chunks
	// with ChunkPhi == phi. Keyed by map, not a y-sized array: y comes
	// off the wire, and the number of phases actually occurring is
	// bounded by the chunk count, not by y.
	rows map[int][]ring.Poly
}

// Row returns the per-residue-index RHS polynomials for chunks of phase
// phi (nil when no chunk in range has that phase).
//
//cm:hotpath
func (fq *FactoredQuery) Row(phi int) []ring.Poly {
	//cm:allow hotpath -- phase-keyed map lookup: once per chunk, amortised over the n-coefficient stream
	return fq.rows[phi]
}

func errMissingRHS(psi int) error {
	return fmt.Errorf("core: query missing RHS for phase %d", psi)
}

// FactorQuery normalises q — in either token representation — into the
// kernel-ready factored form for a database of numChunks chunks. The
// query must already have passed validateSearchQuery. Factoring a
// legacy query costs O(phases × residues) ring subtractions once per
// search; the fused kernel then reads the ciphertext arena once instead
// of once per residue.
func FactorQuery(r *ring.Ring, q *Query, numChunks int) (*FactoredQuery, error) {
	if len(q.Residues) == 0 {
		return &FactoredQuery{}, nil
	}
	y := q.YBits
	n := r.N()
	fq := &FactoredQuery{rows: make(map[int][]ring.Poly)}

	if q.Factored() {
		fq.DBTok = q.DBTok
		for j := 0; j < numChunks; j++ {
			phi := ChunkPhi(n, j, y)
			if fq.rows[phi] != nil {
				continue
			}
			row := make([]ring.Poly, len(q.Residues))
			for ri, s := range q.Residues {
				psi := ((phi-s)%y + y) % y
				rhs, ok := q.RHS[psi]
				if !ok {
					return nil, errMissingRHS(psi)
				}
				row[ri] = rhs
			}
			fq.rows[phi] = row
		}
		return fq, nil
	}

	// Legacy re-factoring around reference residue s0: with
	// tok[s][j] = dbC0[j] + patC0[psi(j,s)], the hit condition
	// c0 + b[psi(j,s)] == tok[s][j] rewrites against the s0 row as
	//
	//	c0 - tok[s0][j] == tok[s][j] - tok[s0][j] - b[psi(j,s)]
	//
	// whose right side depends only on (phi_j, s) — token differences
	// cancel the chunk part — so one polynomial per (phase, residue)
	// serves every chunk of that phase.
	s0 := q.Residues[0]
	base := q.Tokens[s0]
	fq.DBTok = base
	for j := 0; j < numChunks; j++ {
		phi := ChunkPhi(n, j, y)
		if fq.rows[phi] != nil {
			continue
		}
		row := make([]ring.Poly, len(q.Residues))
		for ri, s := range q.Residues {
			psi := ((phi-s)%y + y) % y
			pattern, ok := q.Patterns[psi]
			if !ok {
				return nil, errMissingPhase(psi)
			}
			rhs := r.NewPoly()
			r.Sub(q.Tokens[s][j], base[j], rhs)
			r.Sub(rhs, pattern.C[0], rhs)
			row[ri] = rhs
		}
		fq.rows[phi] = row
	}
	return fq, nil
}
