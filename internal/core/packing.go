// Package core implements the CIPHERMATCH algorithm (§4.2 of the paper):
// the memory-efficient data packing scheme, the addition-only secure exact
// string matching algorithm with query negation / replication / shift
// variants, and both index-generation modes. It also implements the two
// baselines the paper compares against: the arithmetic approach of Yasuda
// et al. [27] (Hamming distance via homomorphic multiplication) and the
// Boolean approach (per-bit encryption with XNOR/AND gates).
//
// Bit conventions: the database and query are flat bit strings, MSB-first
// within each byte (see internal/mathutil). A 16-bit segment covers bit
// positions [16i, 16i+16), its first bit being the segment's MSB, matching
// the paper's left-to-right notation T(0) = (b0, ..., b15).
package core

import (
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/mathutil"
)

// SegmentBits is the packing width t of the paper's configuration: 16
// database bits per plaintext coefficient (§4.2.1).
const SegmentBits = 16

// PackSegments partitions a bit stream of bitLen bits (stored MSB-first in
// data) into 16-bit segments, zero-padding the tail. This is Eq. (5): the
// packed message m(T) = (T(0), T(1), ...).
func PackSegments(data []byte, bitLen int) []uint16 {
	if bitLen < 0 || bitLen > len(data)*8 {
		panic("core: bitLen out of range")
	}
	numSegs := (bitLen + SegmentBits - 1) / SegmentBits
	segs := make([]uint16, numSegs)
	for i := range segs {
		segs[i] = mathutil.Segment16(data[:(bitLen+7)/8], i*SegmentBits)
	}
	// Mask padding bits beyond bitLen inside the final segment: they must
	// read as zero regardless of the storage byte contents.
	if rem := bitLen % SegmentBits; rem != 0 && numSegs > 0 {
		segs[numSegs-1] &= ^uint16(0) << (SegmentBits - rem)
	}
	return segs
}

// ChunkPlaintexts splits segments into plaintext polynomials of n
// coefficients each (Eq. 6), zero-padding the final chunk.
func ChunkPlaintexts(segs []uint16, params bfv.Params) ([]*bfv.Plaintext, error) {
	enc := bfv.NewEncoder(params)
	n := params.N
	numChunks := (len(segs) + n - 1) / n
	if numChunks == 0 {
		numChunks = 1
	}
	out := make([]*bfv.Plaintext, numChunks)
	for j := 0; j < numChunks; j++ {
		lo := j * n
		hi := min(lo+n, len(segs))
		var window []uint16
		if lo < len(segs) {
			window = segs[lo:hi]
		}
		pt, err := enc.EncodeUint16(window)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", j, err)
		}
		out[j] = pt
	}
	return out, nil
}

// Footprint describes the memory footprint of an encrypted database under
// one of the three approaches, in bytes.
type Footprint struct {
	PlainBytes     int64
	EncryptedBytes int64
}

// Expansion returns the encrypted/plaintext size ratio.
func (f Footprint) Expansion() float64 {
	if f.PlainBytes == 0 {
		return 0
	}
	return float64(f.EncryptedBytes) / float64(f.PlainBytes)
}

// FootprintCiphermatch returns the encrypted footprint of a dbBits-bit
// database under the CIPHERMATCH packing scheme: 16 bits per coefficient,
// n coefficients per ciphertext, 2 polynomials of 32-bit (q) coefficients
// per ciphertext — the paper's 4× lower bound (§4.2.1 Key Insight).
func FootprintCiphermatch(dbBits int64, params bfv.Params) Footprint {
	bitsPerCT := int64(params.N) * int64(params.PackedBitsPerCoeff())
	numCT := ceilDiv64(dbBits, bitsPerCT)
	return Footprint{
		PlainBytes:     ceilDiv64(dbBits, 8),
		EncryptedBytes: numCT * int64(params.CiphertextBytes()),
	}
}

// FootprintYasuda returns the encrypted footprint under the arithmetic
// baseline's single-bit packing [27]: 1 bit per coefficient, so 64× for the
// paper parameters.
func FootprintYasuda(dbBits int64, params bfv.Params) Footprint {
	bitsPerCT := int64(params.N) // one bit per coefficient
	numCT := ceilDiv64(dbBits, bitsPerCT)
	return Footprint{
		PlainBytes:     ceilDiv64(dbBits, 8),
		EncryptedBytes: numCT * int64(params.CiphertextBytes()),
	}
}

// BooleanCiphertextBytes is the per-bit ciphertext size used for the
// Boolean baseline's footprint model. The paper's Boolean baseline [17]
// uses TFHE, whose per-bit LWE ciphertext at 128-bit security is about
// (630+1) 32-bit values ≈ 2.5 KiB; the paper reports a >200× blow-up over
// plaintext (§3.1). We keep the TFHE constant for footprint modelling even
// though the functional Boolean baseline in this package is per-bit BFV
// (see DESIGN.md, substitutions table).
const BooleanCiphertextBytes = (630 + 1) * 4

// FootprintBoolean returns the encrypted footprint under per-bit Boolean
// encryption.
func FootprintBoolean(dbBits int64) Footprint {
	return Footprint{
		PlainBytes:     ceilDiv64(dbBits, 8),
		EncryptedBytes: dbBits * BooleanCiphertextBytes,
	}
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		panic("core: non-positive divisor")
	}
	return (a + b - 1) / b
}
