package core

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

// TestQuerySizeAccounting pins down the communication-volume arithmetic:
// client-decrypt queries ship one ciphertext per pattern phase;
// seeded-match queries ship the factored tokens only — one polynomial
// per chunk (DBTok) plus one per phase (RHS), pattern ciphertexts
// staying home; legacy seeded queries ship patterns plus one token
// polynomial per (variant, chunk).
func TestQuerySizeAccounting(t *testing.T) {
	p := bfv.ParamsToy()
	dbBits := 2048 // 2 toy chunks
	polyBytes := int64(p.N * p.QBytes())

	plain := Config{Params: p, AlignBits: 16, Mode: ModeClientDecrypt}
	c1, _ := NewClient(plain, rng.NewSourceFromString("size"))
	q1, err := c1.PrepareQuery([]byte{0xAA, 0xBB}, 16, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns := int64(len(q1.Patterns)) * int64(p.CiphertextBytes())
	if got := q1.SizeBytes(p); got != wantPatterns {
		t.Fatalf("ClientDecrypt query size = %d, want %d", got, wantPatterns)
	}

	seeded := Config{Params: p, AlignBits: 16, Mode: ModeSeededMatch}
	c2, _ := NewClient(seeded, rng.NewSourceFromString("size"))
	q2, err := c2.PrepareQuery([]byte{0xAA, 0xBB}, 16, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	wantFactored := int64(len(q2.DBTok)+len(q2.RHS)) * polyBytes
	if got := q2.SizeBytes(p); got != wantFactored {
		t.Fatalf("SeededMatch query size = %d, want %d", got, wantFactored)
	}

	legacy, err := c2.PrepareLegacyQuery([]byte{0xAA, 0xBB}, 16, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	tokenBytes := int64(len(legacy.Residues)) * 2 /*chunks*/ * polyBytes
	if got := legacy.SizeBytes(p); got != wantPatterns+tokenBytes {
		t.Fatalf("legacy SeededMatch query size = %d, want %d", got, wantPatterns+tokenBytes)
	}
	if got := q2.SizeBytes(p); got >= legacy.SizeBytes(p) {
		t.Fatalf("factored query (%d bytes) not smaller than legacy (%d bytes)", got, legacy.SizeBytes(p))
	}
}

// TestEncryptedDBSize pins the 4x-per-full-chunk footprint at the API
// level.
func TestEncryptedDBSize(t *testing.T) {
	p := bfv.ParamsToy()
	client, _ := NewClient(Config{Params: p}, rng.NewSourceFromString("dbsize"))
	data := make([]byte, p.N*16/8) // exactly one chunk of packed bits
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(db.Chunks))
	}
	if got, want := db.SizeBytes(p), int64(p.CiphertextBytes()); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	if ratio := float64(db.SizeBytes(p)) / float64(len(data)); ratio != 4.0 {
		t.Fatalf("expansion = %v, want 4 (§4.2.1)", ratio)
	}
}
