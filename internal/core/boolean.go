package core

import (
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

// BooleanMatcher implements the Boolean baseline (§2.2): every database and
// query bit is encrypted in its own ciphertext, and matching evaluates
// XNOR gates followed by an AND tree per candidate position. The paper's
// baseline [17] uses TFHE; here the gates run over per-bit BFV with t = 2
// (see DESIGN.md substitutions): XNOR(a,b) = 1 + a + b over GF(2) costs
// only additions, while every AND is a homomorphic multiplication — so the
// defining cost structure (per-bit ciphertexts, whole-database traversal,
// one expensive gate per bit of every window) is preserved.
//
// The modulus of bfv.ParamsBoolean supports AND trees of depth 4, i.e.
// queries up to 16 bits; that is ample for the functional demonstration,
// while the analytic model in internal/perfmodel covers the paper-scale
// workloads with TFHE gate constants.
type BooleanMatcher struct {
	params    bfv.Params
	enc       *bfv.Encoder
	encryptor *bfv.Encryptor
	decryptor *bfv.Decryptor
	ev        *bfv.Evaluator
	rlk       *bfv.RelinKey
	onePT     *bfv.Plaintext
}

// BooleanStats counts the gates evaluated by a search.
type BooleanStats struct {
	XNORGates int
	ANDGates  int
}

// NewBooleanMatcher creates the Boolean baseline matcher. params should be
// bfv.ParamsBoolean() (t must be 2).
func NewBooleanMatcher(params bfv.Params, src *rng.Source) (*BooleanMatcher, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.T != 2 {
		return nil, fmt.Errorf("core: BooleanMatcher requires t=2, got %d", params.T)
	}
	sk, pk := bfv.KeyGen(params, src.Fork("bool-keys"))
	rlk := bfv.NewRelinKey(params, sk, src.Fork("bool-rlk"))
	enc := bfv.NewEncoder(params)
	one, err := enc.Encode([]uint64{1})
	if err != nil {
		return nil, err
	}
	return &BooleanMatcher{
		params:    params,
		enc:       enc,
		encryptor: bfv.NewEncryptor(params, pk),
		decryptor: bfv.NewDecryptor(params, sk),
		ev:        bfv.NewEvaluator(params),
		rlk:       rlk,
		onePT:     one,
	}, nil
}

// EncryptBits encrypts each of the first bitLen bits of data into its own
// ciphertext — the per-bit packing whose footprint blow-up Fig. 2(a)
// quantifies.
func (m *BooleanMatcher) EncryptBits(data []byte, bitLen int, src *rng.Source) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, bitLen)
	for i := 0; i < bitLen; i++ {
		pt, err := m.enc.Encode([]uint64{uint64(mathutil.GetBit(data, i))})
		if err != nil {
			return nil, err
		}
		out[i] = m.encryptor.Encrypt(pt, src.ForkIndexed("bit", i))
	}
	return out, nil
}

// xnor computes XNOR(a, b) = 1 + a + b over t = 2 — additions only.
func (m *BooleanMatcher) xnor(a, b *bfv.Ciphertext, stats *BooleanStats) *bfv.Ciphertext {
	stats.XNORGates++
	return m.ev.AddPlain(m.ev.Add(a, b), m.onePT)
}

// and computes AND(a, b) by homomorphic multiplication with
// relinearisation — the expensive gate.
func (m *BooleanMatcher) and(a, b *bfv.Ciphertext, stats *BooleanStats) (*bfv.Ciphertext, error) {
	stats.ANDGates++
	return m.ev.MulRelin(a, b, m.rlk)
}

// MatchAt returns an encryption of 1 iff the query bits equal the database
// bits starting at offset o: an XNOR per bit, folded by a balanced AND
// tree.
func (m *BooleanMatcher) MatchAt(db, query []*bfv.Ciphertext, o int, stats *BooleanStats) (*bfv.Ciphertext, error) {
	if o+len(query) > len(db) {
		return nil, fmt.Errorf("core: window [%d, %d) outside database of %d bits", o, o+len(query), len(db))
	}
	layer := make([]*bfv.Ciphertext, len(query))
	for j := range query {
		layer[j] = m.xnor(db[o+j], query[j], stats)
	}
	for len(layer) > 1 {
		next := make([]*bfv.Ciphertext, 0, (len(layer)+1)/2)
		for i := 0; i+1 < len(layer); i += 2 {
			prod, err := m.and(layer[i], layer[i+1], stats)
			if err != nil {
				return nil, err
			}
			next = append(next, prod)
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	return layer[0], nil
}

// Search traverses the whole encrypted database (the Boolean approach's
// defining inefficiency), evaluating a match circuit at every aligned
// offset, then decrypts the per-offset match bits.
func (m *BooleanMatcher) Search(db, query []*bfv.Ciphertext, alignBits int) ([]int, BooleanStats, error) {
	if alignBits < 1 {
		alignBits = 1
	}
	var stats BooleanStats
	var out []int
	for o := 0; o+len(query) <= len(db); o += alignBits {
		ct, err := m.MatchAt(db, query, o, &stats)
		if err != nil {
			return nil, stats, err
		}
		pt := m.decryptor.Decrypt(ct)
		if pt.Coeffs[0] == 1 {
			out = append(out, o)
		}
	}
	return out, stats, nil
}
