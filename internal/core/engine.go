package core

import (
	"fmt"
	"sync/atomic"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
)

// Engine is the backend-agnostic execution interface for secure search
// with server-side index generation (ModeSeededMatch). CIPHERMATCH's
// central claim is that the same addition-only algorithm runs on three
// substrates — CPU, processing-using-memory, and in-flash processing —
// and Engine is the seam that makes the substrates interchangeable: the
// serial CPU path (SerialEngine), the worker-pool CPU path (PoolEngine),
// the chunk-range composition (ShardedEngine) and the in-flash simulator
// (internal/ssd.Engine) all satisfy it and return identical results on
// identical inputs (see internal/engine's conformance test).
//
// Implementations must be safe for concurrent SearchAndIndex calls; the
// proto server issues them under a read lock.
type Engine interface {
	// SearchAndIndex executes Algorithm 1 line 10 plus index generation
	// and returns the per-variant hit bitmaps and candidate offsets. The
	// query must carry match tokens (ModeSeededMatch). The result's
	// bitmaps are pool-backed: callers own them and must Release (or
	// hand off) the IndexResult on every path.
	//
	//cm:pooled
	SearchAndIndex(q *Query) (*IndexResult, error)
	// Stats returns the cumulative operation counts of every search this
	// engine has executed.
	Stats() Stats
	// Describe returns a short human-readable engine description, e.g.
	// "serial" or "pool(8 workers)".
	Describe() string
}

// Engine kind names used by EngineSpec and the CLI flags.
const (
	EngineSerial = "serial"
	EnginePool   = "pool"
	EngineSSD    = "ssd"
)

// EngineSpec selects and parameterises an execution engine. The zero
// value means "serial, unsharded".
type EngineSpec struct {
	// Kind is one of EngineSerial, EnginePool, EngineSSD ("" = serial).
	// The SSD kind is only constructible where the in-flash simulator is
	// linked in (internal/engine, the ciphermatch facade, the proto
	// server); core's NewEngine rejects it.
	Kind string
	// Workers is the pool size for EnginePool (0 = GOMAXPROCS).
	Workers int
	// Shards > 1 splits the database into that many chunk ranges, each
	// searched by its own engine of the selected Kind (chunk-range
	// sharding; see ShardedEngine).
	Shards int
}

// String renders the spec in the form accepted by internal/engine.Parse.
func (s EngineSpec) String() string {
	kind := s.Kind
	if kind == "" {
		kind = EngineSerial
	}
	out := kind
	if kind == EnginePool && s.Workers > 0 {
		out = fmt.Sprintf("%s:%d", kind, s.Workers)
	}
	if s.Shards > 1 {
		out = fmt.Sprintf("%s/shards=%d", out, s.Shards)
	}
	return out
}

// NewEngine builds a CPU engine (serial or pool, optionally sharded) for
// an encrypted database. The SSD kind lives behind internal/engine (or
// the ciphermatch facade) because internal/ssd depends on this package.
func NewEngine(params bfv.Params, db *EncryptedDB, spec EngineSpec) (Engine, error) {
	var base func(int, *EncryptedDB) (Engine, error)
	switch spec.Kind {
	case "", EngineSerial:
		base = func(_ int, sub *EncryptedDB) (Engine, error) {
			return NewSerialEngine(params, sub), nil
		}
	case EnginePool:
		base = func(_ int, sub *EncryptedDB) (Engine, error) {
			return NewPoolEngine(params, sub, spec.Workers), nil
		}
	case EngineSSD:
		return nil, fmt.Errorf("core: the %q engine requires the in-flash simulator; build it via internal/engine or the ciphermatch facade", spec.Kind)
	default:
		return nil, fmt.Errorf("core: unknown engine kind %q", spec.Kind)
	}
	if spec.Shards > 1 {
		return NewShardedEngine(params, db, spec.Shards, base)
	}
	return base(0, db)
}

// validateSearchQuery is the shared request validation of every engine:
// shape agreement between query and database, plus the match tokens —
// factored (DBTok/RHS) or legacy (Tokens) — that server-side index
// generation needs.
func validateSearchQuery(db *EncryptedDB, q *Query, needTokens bool) error {
	if q.YBits < 1 {
		return fmt.Errorf("core: query has invalid length %d", q.YBits)
	}
	if q.NumChunks != len(db.Chunks) {
		return fmt.Errorf("core: query prepared for %d chunks, database has %d",
			q.NumChunks, len(db.Chunks))
	}
	if q.DBBitLen != db.BitLen {
		return fmt.Errorf("core: query prepared for %d-bit database, have %d bits",
			q.DBBitLen, db.BitLen)
	}
	if !needTokens {
		return nil
	}
	if q.Factored() {
		if len(q.DBTok) != len(db.Chunks) {
			return fmt.Errorf("core: query DBTok plane has %d chunks, database has %d",
				len(q.DBTok), len(db.Chunks))
		}
		return nil
	}
	if q.Tokens == nil {
		return errNoTokens
	}
	for _, res := range q.Residues {
		if toks, ok := q.Tokens[res]; !ok || len(toks) != len(db.Chunks) {
			return errBadTokens(res)
		}
	}
	return nil
}

// searchChunkRange is the shared CPU kernel: it executes index
// generation for every shift variant at once over chunks [lo, hi) of
// db, setting hit bits in the per-residue-index bitsets (global window
// indexing). All CPU engines — serial, pool, sharded — are schedules
// over this kernel, mirroring how the paper maps one algorithm onto
// different substrates.
//
// Seeded-match index generation reads only the first ciphertext
// component, so the kernel never touches C[1] — half the ciphertext
// bytes — and ring.SubCmpMultiBits folds the homomorphic subtraction
// and all R token comparisons into one streaming pass with no
// intermediate store: chunk j's first component and DBTok[j] are each
// read once per search (not once per residue), the R cache-resident RHS
// polynomials are the only other operands, and the only writes are hit
// bits in the packed bitsets. With a compacted database the reads are
// one sequential walk of the C0 arena plane.
//
// words holds the raw backing words of the per-variant bitsets
// (bitsetWords), built once per search by the caller: the kernel itself
// is allocation-free, so a pool worker re-entering it per chunk-range
// job pays nothing.
//
//cm:hotpath
func searchChunkRange(r *ring.Ring, db *EncryptedDB, q *Query, fq *FactoredQuery, lo, hi int, words [][]uint64) (Stats, error) {
	var st Stats
	if len(words) == 0 {
		return st, nil
	}
	n := r.N()
	y := q.YBits
	for j := lo; j < hi; j++ {
		row := fq.Row(ChunkPhi(n, j, y))
		if row == nil {
			//cm:allow hotpath -- cold error exit: a malformed query aborts the search, never taken per-chunk in steady state
			return st, fmt.Errorf("core: factored query has no RHS row for chunk %d", j)
		}
		r.SubCmpMultiBits(db.Chunks[j].C[0], fq.DBTok[j], row, words, j*n)
		st.HomAdds++
		st.ChunkStreams++
		st.CoeffCompares += int64(len(row)) * int64(n)
	}
	return st, nil
}

// add folds another stats sample into s.
func (s *Stats) add(o Stats) {
	s.HomAdds += o.HomAdds
	s.CoeffCompares += o.CoeffCompares
	s.ResultBytes += o.ResultBytes
	s.ChunkStreams += o.ChunkStreams
}

// statCounter is the embeddable cumulative-stats half of Engine. The
// counters are atomics, not a mutex-guarded struct: concurrent searches
// (the pool engine under a loaded server) record without serialising on
// a lock.
type statCounter struct {
	homAdds       atomic.Int64
	coeffCompares atomic.Int64
	resultBytes   atomic.Int64
	chunkStreams  atomic.Int64
}

func (c *statCounter) record(st Stats) {
	c.homAdds.Add(int64(st.HomAdds))
	c.coeffCompares.Add(st.CoeffCompares)
	c.resultBytes.Add(st.ResultBytes)
	c.chunkStreams.Add(st.ChunkStreams)
}

func (c *statCounter) Stats() Stats {
	return Stats{
		HomAdds:       int(c.homAdds.Load()),
		CoeffCompares: c.coeffCompares.Load(),
		ResultBytes:   c.resultBytes.Load(),
		ChunkStreams:  c.chunkStreams.Load(),
	}
}

// SerialEngine executes searches on the calling goroutine — the paper's
// CPU baseline. It is stateless between calls (the ring is shared and
// read-only), so concurrent searches are safe.
type SerialEngine struct {
	params bfv.Params
	ring   *ring.Ring
	db     *EncryptedDB
	statCounter
}

var _ Engine = (*SerialEngine)(nil)

// NewSerialEngine creates a serial engine over an encrypted database.
func NewSerialEngine(params bfv.Params, db *EncryptedDB) *SerialEngine {
	return &SerialEngine{params: params, ring: params.Ring(), db: db}
}

// SearchAndIndex implements Engine: one residue-fused pass over every
// chunk, all shift variants evaluated per chunk stream.
//
//cm:pooled
func (e *SerialEngine) SearchAndIndex(q *Query) (*IndexResult, error) {
	if err := validateSearchQuery(e.db, q, true); err != nil {
		return nil, err
	}
	fq, err := FactorQuery(e.ring, q, len(e.db.Chunks))
	if err != nil {
		return nil, err
	}
	n := e.params.N
	numWindows := len(e.db.Chunks) * n
	ir := &IndexResult{Hits: make(HitBitmaps, len(q.Residues))}
	words := make([][]uint64, len(q.Residues))
	for vi, res := range q.Residues {
		bm := NewBitset(numWindows)
		ir.Hits[res] = bm
		words[vi] = bm.Words()
	}
	st, err := searchChunkRange(e.ring, e.db, q, fq, 0, len(e.db.Chunks), words)
	if err != nil {
		ir.Release() // return the pooled bitsets on the error path
		return nil, err
	}
	ir.Stats.add(st)
	if !q.HitsOnly {
		ir.Candidates = Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
	}
	e.record(ir.Stats)
	return ir, nil
}

// SearchAndIndexBatch implements BatchSearcher: one pass over the
// database evaluating every member per chunk (searchChunkRangeBatch),
// instead of one pass per member.
//
//cm:pooled
func (e *SerialEngine) SearchAndIndexBatch(bq *BatchQuery) ([]*IndexResult, error) {
	if err := bq.validate(e.db); err != nil {
		return nil, err
	}
	numChunks := len(e.db.Chunks)
	fqs, err := factorBatch(e.ring, bq, numChunks)
	if err != nil {
		return nil, err
	}
	bitmaps := newBatchBitmaps(bq, numChunks*e.params.N)
	memberStats := make([]Stats, len(bq.Queries))
	if err := searchChunkRangeBatch(e.ring, e.db, bq, fqs, 0, numChunks, bitmaps, memberStats); err != nil {
		return nil, err
	}
	results, total := assembleBatchResults(bq, bitmaps, memberStats)
	e.record(total)
	return results, nil
}

var _ BatchSearcher = (*SerialEngine)(nil)

// Describe implements Engine.
func (e *SerialEngine) Describe() string { return EngineSerial }
