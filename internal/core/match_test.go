package core

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

// plantQuery copies the query bits into db at bit offset o.
func plantQuery(db []byte, query []byte, queryBits, o int) {
	for j := 0; j < queryBits; j++ {
		mathutil.SetBit(db, o+j, mathutil.GetBit(query, j))
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runSearch performs an end-to-end search in the requested mode and returns
// the candidate offsets.
func runSearch(t *testing.T, mode IndexMode, seed string, db []byte, dbBits int, query []byte, queryBits, align int) []int {
	t.Helper()
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: align, Mode: mode}
	client, err := NewClient(cfg, rng.NewSourceFromString(seed))
	if err != nil {
		t.Fatal(err)
	}
	edb, err := client.EncryptDatabase(db, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(cfg.Params, edb)
	q, err := client.PrepareQuery(query, queryBits, dbBits)
	if err != nil {
		t.Fatal(err)
	}
	if mode == ModeSeededMatch {
		ir, err := server.SearchAndIndex(q)
		if err != nil {
			t.Fatal(err)
		}
		return ir.Candidates
	}
	sr, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	hits := client.ExtractHits(q, sr)
	return Candidates(hits, dbBits, queryBits, align)
}

func TestEndToEndSingleChunk(t *testing.T) {
	src := rng.NewSourceFromString("e2e-db")
	db := make([]byte, 64) // 512 bits, one toy chunk (1024 bits)
	src.Bytes(db)
	query := []byte{0xDE, 0xAD, 0xBE, 0xEF} // 32 bits
	plantQuery(db, query, 32, 0)
	plantQuery(db, query, 32, 128)
	plantQuery(db, query, 32, 264) // byte-aligned, not segment-aligned

	for _, mode := range []IndexMode{ModeClientDecrypt, ModeSeededMatch} {
		got := runSearch(t, mode, "e2e", db, 512, query, 32, 8)
		want := ExpectedCandidates(db, 512, query, 32, 8)
		if !intsEqual(got, want) {
			t.Fatalf("mode %v: candidates %v != expected %v", mode, got, want)
		}
		// All planted (detectable) occurrences must be present.
		for _, o := range []int{0, 128, 264} {
			found := false
			for _, c := range got {
				if c == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("mode %v: planted occurrence at %d missing from %v", mode, o, got)
			}
		}
	}
}

func TestEndToEndMultiChunkSpanningBoundary(t *testing.T) {
	// Toy chunk = 64 segments = 1024 bits. Use 2304 bits (3 chunks with
	// padding) and plant an occurrence straddling the chunk boundary.
	src := rng.NewSourceFromString("e2e-multi")
	db := make([]byte, 288) // 2304 bits
	src.Bytes(db)
	query := []byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC} // 48 bits
	plantQuery(db, query, 48, 1000)                     // spans windows 63..65 (chunks 0 and 1)
	plantQuery(db, query, 48, 2048)

	for _, mode := range []IndexMode{ModeClientDecrypt, ModeSeededMatch} {
		got := runSearch(t, mode, "e2e-multi", db, 2304, query, 48, 8)
		want := ExpectedCandidates(db, 2304, query, 48, 8)
		if !intsEqual(got, want) {
			t.Fatalf("mode %v: candidates %v != expected %v", mode, got, want)
		}
		for _, o := range []int{1000, 2048} {
			found := false
			for _, c := range got {
				if c == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("mode %v: boundary occurrence at %d missing from %v", mode, o, got)
			}
		}
	}
}

func TestSegmentAlignedCandidatesAreExact(t *testing.T) {
	// For 16-aligned offsets and 16|y, every full window covers the whole
	// occurrence, so candidates equal true occurrences exactly.
	src := rng.NewSourceFromString("exact")
	db := make([]byte, 128) // 1024 bits
	src.Bytes(db)
	query := []byte{0xCA, 0xFE, 0xBA, 0xBE}
	plantQuery(db, query, 32, 64)
	plantQuery(db, query, 32, 512)

	got := runSearch(t, ModeClientDecrypt, "exact", db, 1024, query, 32, 16)
	truth := FindOccurrences(db, 1024, query, 32, 16)
	if !intsEqual(got, truth) {
		t.Fatalf("segment-aligned candidates %v != true occurrences %v", got, truth)
	}
}

func TestBitAlignedSearch(t *testing.T) {
	// Bit-level alignment: y = 32 (>= 31, so every offset is detectable).
	src := rng.NewSourceFromString("bitalign")
	db := make([]byte, 40) // 320 bits
	src.Bytes(db)
	query := []byte{0xF0, 0x0D, 0xFA, 0xCE}
	plantQuery(db, query, 32, 13) // arbitrary bit offset

	got := runSearch(t, ModeClientDecrypt, "bitalign", db, 320, query, 32, 1)
	want := ExpectedCandidates(db, 320, query, 32, 1)
	if !intsEqual(got, want) {
		t.Fatalf("candidates %v != expected %v", got, want)
	}
	found := false
	for _, c := range got {
		if c == 13 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bit-offset occurrence at 13 missing from %v", got)
	}
}

func TestShortQueryUndetectableOffsets(t *testing.T) {
	// A 16-bit query at a non-segment-aligned offset has no full window
	// and must be (silently) undetectable — the documented limitation.
	db := make([]byte, 16)
	query := []byte{0x55, 0x66}
	plantQuery(db, query, 16, 4)

	got := runSearch(t, ModeClientDecrypt, "short", db, 128, query, 16, 1)
	for _, c := range got {
		if c == 4 {
			t.Fatal("offset 4 of a 16-bit query should be undetectable")
		}
	}
	if !Detectable(0, 16) || Detectable(4, 16) {
		t.Fatal("Detectable disagrees with the window model")
	}
}

func TestVerifyCandidatesFiltersFalsePositives(t *testing.T) {
	src := rng.NewSourceFromString("verify")
	db := make([]byte, 64)
	src.Bytes(db)
	query := []byte{0xAA, 0xBB, 0xCC}
	plantQuery(db, query, 24, 40)

	cands := runSearch(t, ModeClientDecrypt, "verify", db, 512, query, 24, 8)
	verified := VerifyCandidates(db, 512, query, 24, cands)
	truth := FindOccurrences(db, 512, query, 24, 8)
	// Every verified candidate is a true occurrence, and every detectable
	// true occurrence survives verification.
	for _, v := range verified {
		found := false
		for _, o := range truth {
			if o == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("verified candidate %d is not a true occurrence", v)
		}
	}
	for _, o := range truth {
		if !Detectable(o, 24) {
			continue
		}
		found := false
		for _, v := range verified {
			if v == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("detectable occurrence %d lost in verification", o)
		}
	}
}

func TestSeededMatchAgreesWithClientDecrypt(t *testing.T) {
	src := rng.NewSourceFromString("agree-db")
	db := make([]byte, 96)
	src.Bytes(db)
	query := []byte{0x0F, 0xF0, 0x55}
	plantQuery(db, query, 24, 16)
	plantQuery(db, query, 24, 400)

	a := runSearch(t, ModeClientDecrypt, "agree", db, 768, query, 24, 8)
	b := runSearch(t, ModeSeededMatch, "agree", db, 768, query, 24, 8)
	if !intsEqual(a, b) {
		t.Fatalf("ClientDecrypt %v != SeededMatch %v", a, b)
	}
}

func TestDatabaseEncryptionDeterministicFromSeed(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy()}
	db := make([]byte, 32)
	rng.NewSourceFromString("d").Bytes(db)
	c1, _ := NewClient(cfg, rng.NewSourceFromString("same-seed"))
	c2, _ := NewClient(cfg, rng.NewSourceFromString("same-seed"))
	e1, _ := c1.EncryptDatabase(db, 256)
	e2, _ := c2.EncryptDatabase(db, 256)
	r := cfg.Params.Ring()
	for j := range e1.Chunks {
		for k := range e1.Chunks[j].C {
			if !r.Equal(e1.Chunks[j].C[k], e2.Chunks[j].C[k]) {
				t.Fatal("seeded database encryption is not deterministic")
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy()}
	client, _ := NewClient(cfg, rng.NewSourceFromString("qv"))
	if _, err := client.PrepareQuery([]byte{0xFF}, 0, 128); err == nil {
		t.Error("accepted zero-length query")
	}
	if _, err := client.PrepareQuery([]byte{0xFF}, 9, 128); err == nil {
		t.Error("accepted queryBits beyond the query slice")
	}

	db := make([]byte, 16)
	edb, _ := client.EncryptDatabase(db, 128)
	server := NewServer(cfg.Params, edb)
	q, _ := client.PrepareQuery([]byte{0xFF, 0x00}, 16, 256) // wrong db size
	if _, err := server.Search(q); err == nil {
		t.Error("server accepted query for mismatched database size")
	}
	q2, _ := client.PrepareQuery([]byte{0xFF, 0x00}, 16, 128)
	if _, err := server.SearchAndIndex(q2); err == nil {
		t.Error("SearchAndIndex accepted query without tokens")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{Params: bfv.ParamsToyMul()} // 8-bit packing width
	if _, err := NewClient(bad, rng.NewSourceFromString("x")); err == nil {
		t.Error("accepted non-16-bit packing width")
	}
	bad2 := Config{Params: bfv.ParamsToy(), AlignBits: -1}
	if _, err := NewClient(bad2, rng.NewSourceFromString("x")); err == nil {
		t.Error("accepted negative AlignBits")
	}
}

func TestSearchStats(t *testing.T) {
	cfg := Config{Params: bfv.ParamsToy(), AlignBits: 16, Mode: ModeSeededMatch}
	client, _ := NewClient(cfg, rng.NewSourceFromString("stats"))
	db := make([]byte, 256) // 2048 bits = 2 toy chunks
	edb, _ := client.EncryptDatabase(db, 2048)
	server := NewServer(cfg.Params, edb)
	q, _ := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 2048)
	ir, err := server.SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	// 16-bit query, 16-bit alignment: one variant; 2 chunks -> 2 adds.
	if len(q.Residues) != 1 {
		t.Fatalf("residues = %v, want one", q.Residues)
	}
	if ir.Stats.HomAdds != 2 {
		t.Fatalf("HomAdds = %d, want 2", ir.Stats.HomAdds)
	}
	if ir.Stats.CoeffCompares != int64(2*cfg.Params.N) {
		t.Fatalf("CoeffCompares = %d", ir.Stats.CoeffCompares)
	}
}

func TestPropertyHEMatchesPlainReference(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in short mode")
	}
	seeds := []string{"p1", "p2", "p3", "p4"}
	for _, seed := range seeds {
		src := rng.NewSourceFromString("gen-" + seed)
		dbBytes := 32 + src.Intn(64)
		db := make([]byte, dbBytes)
		src.Bytes(db)
		qBytes := 2 + src.Intn(4)
		query := make([]byte, qBytes)
		src.Bytes(query)
		yBits := qBytes*8 - src.Intn(8)
		align := []int{1, 2, 8, 16}[src.Intn(4)]
		// Plant one occurrence at a random aligned, detectable offset.
		maxO := dbBytes*8 - yBits
		if maxO > 0 {
			o := (src.Intn(maxO) / align) * align
			plantQuery(db, query, yBits, o)
		}
		got := runSearch(t, ModeClientDecrypt, seed, db, dbBytes*8, query, yBits, align)
		want := ExpectedCandidates(db, dbBytes*8, query, yBits, align)
		if !intsEqual(got, want) {
			t.Fatalf("seed %s (db=%dB y=%d align=%d): HE candidates %v != plain %v",
				seed, dbBytes, yBits, align, got, want)
		}
	}
}
