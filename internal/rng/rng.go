// Package rng provides the deterministic randomness used throughout the
// CIPHERMATCH reproduction: uniform, ternary and centered-binomial samplers
// over a seeded ChaCha8 stream, plus domain-separated forking.
//
// Determinism matters twice here. First, every experiment in the harness is
// reproducible from a fixed seed. Second, the paper's server-side index
// generation (§4.2.2) compares result ciphertexts against an "encrypted
// match polynomial"; that comparison is only meaningful if the client can
// reconstruct the encryption randomness of each database chunk, which we
// realise by deriving all database encryption randomness from a client-held
// seed via Fork (a PRF-style domain separation built on SHA-256).
package rng

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mrand "math/rand/v2"
)

// Source is a deterministic random source. It is not safe for concurrent
// use; Fork children are independent and may be used from different
// goroutines.
type Source struct {
	seed [32]byte
	ch   *mrand.ChaCha8
}

// NewSource returns a Source seeded with the given 32-byte seed.
func NewSource(seed [32]byte) *Source {
	return &Source{seed: seed, ch: mrand.NewChaCha8(seed)}
}

// NewSourceFromString derives a Source from an arbitrary string label, for
// tests and examples.
func NewSourceFromString(label string) *Source {
	return NewSource(sha256.Sum256([]byte(label)))
}

// NewRandomSource returns a Source seeded from the operating system's
// entropy pool.
func NewRandomSource() (*Source, error) {
	var seed [32]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("rng: reading system entropy: %w", err)
	}
	return NewSource(seed), nil
}

// Seed returns the seed this source was created with. Forked children have
// derived seeds.
func (s *Source) Seed() [32]byte { return s.seed }

// Fork derives an independent child source bound to the given domain. The
// same (seed, domain) pair always yields the same child stream, and distinct
// domains yield computationally independent streams.
func (s *Source) Fork(domain string) *Source {
	h := sha256.New()
	h.Write(s.seed[:])
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(domain)))
	h.Write(lenBuf[:])
	h.Write([]byte(domain))
	var child [32]byte
	copy(child[:], h.Sum(nil))
	return NewSource(child)
}

// ForkIndexed is shorthand for Fork with a numeric domain component, used to
// derive per-chunk encryption randomness.
func (s *Source) ForkIndexed(domain string, index int) *Source {
	return s.Fork(fmt.Sprintf("%s/%d", domain, index))
}

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.ch.Uint64() }

// Uniform returns a uniform value in [0, mod) using rejection sampling, so
// the distribution is exactly uniform for any modulus.
func (s *Source) Uniform(mod uint64) uint64 {
	if mod == 0 {
		panic("rng: Uniform with zero modulus")
	}
	if mod&(mod-1) == 0 {
		return s.ch.Uint64() & (mod - 1)
	}
	// Largest multiple of mod below 2^64.
	limit := -mod % mod // == 2^64 mod mod
	for {
		v := s.ch.Uint64()
		if v >= limit {
			return v % mod
		}
	}
}

// Intn returns a uniform value in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(s.Uniform(uint64(n)))
}

// Ternary returns a uniform sample from {-1, 0, +1}, the secret/ephemeral
// key distribution of the BFV instantiation.
func (s *Source) Ternary() int64 {
	return int64(s.Uniform(3)) - 1
}

// CBD returns a sample from the centered binomial distribution with
// parameter eta: the difference of two eta-bit popcounts, supported on
// [-eta, +eta] with variance eta/2. This is the error distribution of the
// BFV instantiation.
func (s *Source) CBD(eta int) int64 {
	if eta <= 0 || eta > 32 {
		panic("rng: CBD eta out of range")
	}
	v := s.ch.Uint64()
	mask := uint64(1)<<uint(eta) - 1
	a := popcount(v & mask)
	b := popcount((v >> uint(eta)) & mask)
	return int64(a) - int64(b)
}

// Bytes fills p with uniform random bytes.
func (s *Source) Bytes(p []byte) {
	var w uint64
	for i := range p {
		if i%8 == 0 {
			w = s.ch.Uint64()
		}
		p[i] = byte(w)
		w >>= 8
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.ch.Uint64()>>11) / (1 << 53)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
