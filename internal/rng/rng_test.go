package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewSourceFromString("seed")
	b := NewSourceFromString("seed")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := NewSourceFromString("seed-a")
	b := NewSourceFromString("seed-b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/64 identical words", same)
	}
}

func TestForkIndependenceAndDeterminism(t *testing.T) {
	parent := NewSourceFromString("parent")
	c1 := parent.Fork("chunk")
	c2 := NewSourceFromString("parent").Fork("chunk")
	for i := 0; i < 32; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("fork with same domain must be deterministic")
		}
	}
	d1 := parent.Fork("a")
	d2 := parent.Fork("b")
	same := 0
	for i := 0; i < 64; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("forks with distinct domains must differ")
	}
	// Forking must not disturb the parent stream.
	p1 := NewSourceFromString("parent")
	p2 := NewSourceFromString("parent")
	_ = p2.Fork("x")
	for i := 0; i < 16; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("Fork must not consume parent state")
		}
	}
}

func TestForkIndexedDomainSeparation(t *testing.T) {
	p := NewSourceFromString("p")
	// "a/11" could collide with "a/1" + "1" under naive concatenation;
	// the length prefix prevents prefix-extension collisions across a
	// single Fork call, and indexed forks must be pairwise distinct.
	s1 := p.ForkIndexed("a", 11)
	s2 := p.ForkIndexed("a", 1)
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Fatal("indexed forks collided")
	}
}

func TestUniformBounds(t *testing.T) {
	s := NewSourceFromString("u")
	for _, mod := range []uint64{1, 2, 3, 5, 16, 255, 1 << 32, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := s.Uniform(mod); v >= mod {
				t.Fatalf("Uniform(%d) = %d out of range", mod, v)
			}
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	s := NewSourceFromString("chi")
	const mod = 8
	const n = 8000
	var counts [mod]int
	for i := 0; i < n; i++ {
		counts[s.Uniform(mod)]++
	}
	want := float64(n) / mod
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d counts, want ~%.0f", v, c, want)
		}
	}
}

func TestTernary(t *testing.T) {
	s := NewSourceFromString("t")
	var counts [3]int
	for i := 0; i < 3000; i++ {
		v := s.Ternary()
		if v < -1 || v > 1 {
			t.Fatalf("Ternary out of range: %d", v)
		}
		counts[v+1]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("ternary bucket %d: %d counts, want ~1000", i-1, c)
		}
	}
}

func TestCBD(t *testing.T) {
	s := NewSourceFromString("cbd")
	const eta = 3
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.CBD(eta)
		if v < -eta || v > eta {
			t.Fatalf("CBD(%d) out of range: %d", eta, v)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Errorf("CBD mean = %.3f, want ~0", mean)
	}
	if math.Abs(variance-float64(eta)/2) > 0.2 {
		t.Errorf("CBD variance = %.3f, want ~%.1f", variance, float64(eta)/2)
	}
}

func TestBytesDeterministic(t *testing.T) {
	a := NewSourceFromString("bytes")
	b := NewSourceFromString("bytes")
	p1 := make([]byte, 100)
	p2 := make([]byte, 100)
	a.Bytes(p1)
	b.Bytes(p2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
	allZero := true
	for _, v := range p1 {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSourceFromString("f")
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestNewRandomSource(t *testing.T) {
	s, err := NewRandomSource()
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Uint64()
}
