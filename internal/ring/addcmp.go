package ring

// This file implements the fused add-compare kernel of CIPHERMATCH's
// seeded-match index generation. Algorithm 1 line 10 plus the index
// generation of §4.2.2 reduce to: for every coefficient, does
// (a[i] + b[i]) mod q equal the expected hit value tok[i]? The naive
// pipeline materialises the sum polynomial and then re-reads it to
// compare — two passes and n stores for a result that is one bit per
// coefficient. HE addition is memory-bandwidth-bound (the PIM/CIM
// measurements CIPHERMATCH builds on), so the fused kernel computes the
// sum and the comparison in one streaming pass and writes only the hit
// bits, packed 64 windows per word. Words with no hits are never
// written, so a miss-dominated search (the common case) is a pure read
// stream over the ciphertext arena.

// bitsetWord returns the word index and in-word bit mask of bit i.
func bitsetWord(i int) (int, uint64) {
	return i >> 6, 1 << (uint(i) & 63)
}

// AddCmpBits sets bit base+i of bits for every coefficient i with
// (a[i] + b[i]) mod q == tok[i]. Bits are only ever set, never cleared,
// so repeated calls over disjoint base ranges accumulate into one
// packed bitset. No intermediate sum is stored.
func (r *Ring) AddCmpBits(a, b, tok Poly, bits []uint64, base int) {
	n := len(a)
	i := 0
	if r.qIsPow2 {
		mask := r.mask
		if base&63 == 0 {
			// Word-at-a-time: 64 fused add-compares accumulate into one
			// register, stored only when at least one window hit.
			for ; i+64 <= n; i += 64 {
				aa, bb, tt := a[i:i+64], b[i:i+64], tok[i:i+64]
				var w uint64
				for k := range aa {
					if (aa[k]+bb[k])&mask == tt[k] {
						w |= 1 << uint(k)
					}
				}
				if w != 0 {
					bits[(base+i)>>6] |= w
				}
			}
		}
		for ; i < n; i++ {
			if (a[i]+b[i])&mask == tok[i] {
				wi, m := bitsetWord(base + i)
				bits[wi] |= m
			}
		}
		return
	}
	q := r.q
	if base&63 == 0 {
		for ; i+64 <= n; i += 64 {
			aa, bb, tt := a[i:i+64], b[i:i+64], tok[i:i+64]
			var w uint64
			for k := range aa {
				s := aa[k] + bb[k] // q < 2^57, no overflow
				if s >= q {
					s -= q
				}
				if s == tt[k] {
					w |= 1 << uint(k)
				}
			}
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	}
	for ; i < n; i++ {
		s := a[i] + b[i]
		if s >= q {
			s -= q
		}
		if s == tok[i] {
			wi, m := bitsetWord(base + i)
			bits[wi] |= m
		}
	}
}

// CmpEqScalarBits sets bit base+i of bits for every i with a[i] == v —
// the client-decrypt index generation, where every window compares
// against the single match value t-1.
func CmpEqScalarBits(a Poly, v uint64, bits []uint64, base int) {
	n := len(a)
	i := 0
	if base&63 == 0 {
		for ; i+64 <= n; i += 64 {
			aa := a[i : i+64]
			var w uint64
			for k := range aa {
				if aa[k] == v {
					w |= 1 << uint(k)
				}
			}
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	}
	for ; i < n; i++ {
		if a[i] == v {
			wi, m := bitsetWord(base + i)
			bits[wi] |= m
		}
	}
}
