package ring

// This file implements the fused add-compare kernel of CIPHERMATCH's
// seeded-match index generation. Algorithm 1 line 10 plus the index
// generation of §4.2.2 reduce to: for every coefficient, does
// (a[i] + b[i]) mod q equal the expected hit value tok[i]? The naive
// pipeline materialises the sum polynomial and then re-reads it to
// compare — two passes and n stores for a result that is one bit per
// coefficient. HE addition is memory-bandwidth-bound (the PIM/CIM
// measurements CIPHERMATCH builds on), so the fused kernel computes the
// sum and the comparison in one streaming pass and writes only the hit
// bits, packed 64 windows per word. Words with no hits are never
// written, so a miss-dominated search (the common case) is a pure read
// stream over the ciphertext arena.
//
// Like subcmp.go, each kernel dispatches across the generic baseline,
// the unrolled multi-lane path and the AVX2 assembly path (kernel.go),
// all bit-identical; the coefficient loops are branchless by policy
// (cmvet's ctbranch analyzer), and an unaligned base gets a scalar
// prologue up to the word boundary instead of demoting the whole poly
// to the scalar path.

// bitsetWord returns the word index and in-word bit mask of bit i.
//
//cm:hotpath
func bitsetWord(i int) (int, uint64) {
	return i >> 6, 1 << (uint(i) & 63)
}

// eqMaskBit returns 1 when x == y and 0 otherwise, without branching:
// z|-z has its top bit set iff z != 0.
//
//cm:hotpath
func eqMaskBit(x, y uint64) uint64 {
	z := x ^ y
	return ((z | -z) >> 63) ^ 1
}

// AddCmpBits sets bit base+i of bits for every coefficient i with
// (a[i] + b[i]) mod q == tok[i]. Bits are only ever set, never cleared,
// so repeated calls over disjoint base ranges accumulate into one
// packed bitset. No intermediate sum is stored.
//
//cm:hotpath
func (r *Ring) AddCmpBits(a, b, tok Poly, bits []uint64, base int) {
	switch KernelPath(activeKernel.Load()) {
	case KernelAVX2:
		r.addCmpAVX2(a, b, tok, bits, base)
	case KernelUnrolled:
		r.addCmpUnrolled(a, b, tok, bits, base)
	default:
		r.addCmpGeneric(a, b, tok, bits, base)
	}
}

// addCmpGeneric is the portable word-at-a-time baseline (the committed
// pre-dispatch kernel, kept verbatim as the reference implementation).
//
//cm:hotpath
func (r *Ring) addCmpGeneric(a, b, tok Poly, bits []uint64, base int) {
	n := len(a)
	i := 0
	// Scalar prologue to the next word boundary, so any base gets the
	// word-at-a-time body (the pre-refactor kernel fell back to a full
	// scalar pass whenever base&63 != 0).
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.addCmpScalar(a, b, tok, bits, base, 0, pro)
		i = pro
	}
	if r.qIsPow2 {
		mask := r.mask
		// Word-at-a-time: 64 fused add-compares accumulate into one
		// register, stored only when at least one window hit.
		for ; i+64 <= n; i += 64 {
			aa, bb, tt := a[i:i+64], b[i:i+64], tok[i:i+64]
			var w uint64
			for k := range aa {
				w |= eqMaskBit((aa[k]+bb[k])&mask, tt[k]) << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	} else {
		q := r.q
		for ; i+64 <= n; i += 64 {
			aa, bb, tt := a[i:i+64], b[i:i+64], tok[i:i+64]
			var w uint64
			for k := range aa {
				s := aa[k] + bb[k] // q < 2^57, no overflow
				s -= q & (((s - q) >> 63) - 1)
				w |= eqMaskBit(s, tt[k]) << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	}
	// Scalar epilogue: the sub-word tail.
	r.addCmpScalar(a, b, tok, bits, base, i, n)
}

// addCmpUnrolled is the multi-lane portable path: 8 fused add-compares
// per iteration over three-index re-slices so every lane access is
// bounds-check-free, folding straight into the hit word without a
// difference buffer (the sum is consumed the instruction after it is
// produced).
//
//cm:hotpath
func (r *Ring) addCmpUnrolled(a, b, tok Poly, bits []uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.addCmpScalar(a, b, tok, bits, base, 0, pro)
		i = pro
	}
	if r.qIsPow2 {
		mask := r.mask
		for ; i+64 <= n; i += 64 {
			var w uint64
			for k := 0; k < 64; k += 8 {
				a8 := a[i+k : i+k+8 : i+k+8]
				b8 := b[i+k : i+k+8 : i+k+8]
				t8 := tok[i+k : i+k+8 : i+k+8]
				g := eqMaskBit((a8[0]+b8[0])&mask, t8[0]) |
					eqMaskBit((a8[1]+b8[1])&mask, t8[1])<<1 |
					eqMaskBit((a8[2]+b8[2])&mask, t8[2])<<2 |
					eqMaskBit((a8[3]+b8[3])&mask, t8[3])<<3 |
					eqMaskBit((a8[4]+b8[4])&mask, t8[4])<<4 |
					eqMaskBit((a8[5]+b8[5])&mask, t8[5])<<5 |
					eqMaskBit((a8[6]+b8[6])&mask, t8[6])<<6 |
					eqMaskBit((a8[7]+b8[7])&mask, t8[7])<<7
				w |= g << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	} else {
		q := r.q
		for ; i+64 <= n; i += 64 {
			var w uint64
			for k := 0; k < 64; k += 8 {
				a8 := a[i+k : i+k+8 : i+k+8]
				b8 := b[i+k : i+k+8 : i+k+8]
				t8 := tok[i+k : i+k+8 : i+k+8]
				s0 := a8[0] + b8[0]
				s1 := a8[1] + b8[1]
				s2 := a8[2] + b8[2]
				s3 := a8[3] + b8[3]
				s4 := a8[4] + b8[4]
				s5 := a8[5] + b8[5]
				s6 := a8[6] + b8[6]
				s7 := a8[7] + b8[7]
				s0 -= q & (((s0 - q) >> 63) - 1)
				s1 -= q & (((s1 - q) >> 63) - 1)
				s2 -= q & (((s2 - q) >> 63) - 1)
				s3 -= q & (((s3 - q) >> 63) - 1)
				s4 -= q & (((s4 - q) >> 63) - 1)
				s5 -= q & (((s5 - q) >> 63) - 1)
				s6 -= q & (((s6 - q) >> 63) - 1)
				s7 -= q & (((s7 - q) >> 63) - 1)
				g := eqMaskBit(s0, t8[0]) |
					eqMaskBit(s1, t8[1])<<1 |
					eqMaskBit(s2, t8[2])<<2 |
					eqMaskBit(s3, t8[3])<<3 |
					eqMaskBit(s4, t8[4])<<4 |
					eqMaskBit(s5, t8[5])<<5 |
					eqMaskBit(s6, t8[6])<<6 |
					eqMaskBit(s7, t8[7])<<7
				w |= g << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
			if w != 0 {
				bits[(base+i)>>6] |= w
			}
		}
	}
	r.addCmpScalar(a, b, tok, bits, base, i, n)
}

// addCmpScalar is the coefficient-at-a-time edge path of AddCmpBits
// over [lo, hi), shared by the unaligned prologue and the tail
// epilogue of every dispatch path. The hit mask is OR-stored
// unconditionally (OR of zero is a no-op) so the ragged edges stay
// branchless too.
//
//cm:hotpath
func (r *Ring) addCmpScalar(a, b, tok Poly, bits []uint64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s uint64
		if r.qIsPow2 {
			s = (a[i] + b[i]) & r.mask
		} else {
			s = a[i] + b[i]
			s -= r.q & (((s - r.q) >> 63) - 1)
		}
		wi, m := bitsetWord(base + i)
		bits[wi] |= m & -eqMaskBit(s, tok[i])
	}
}

// CmpEqScalarBits sets bit base+i of bits for every i with a[i] == v —
// the client-decrypt index generation, where every window compares
// against the single match value t-1.
//
//cm:hotpath
func CmpEqScalarBits(a Poly, v uint64, bits []uint64, base int) {
	switch KernelPath(activeKernel.Load()) {
	case KernelAVX2:
		cmpEqScalarAVX2(a, v, bits, base)
	case KernelUnrolled:
		cmpEqScalarUnrolled(a, v, bits, base)
	default:
		cmpEqScalarGeneric(a, v, bits, base)
	}
}

// cmpEqScalarGeneric is the portable word-at-a-time baseline.
//
//cm:hotpath
func cmpEqScalarGeneric(a Poly, v uint64, bits []uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		cmpEqScalarEdge(a, v, bits, base, 0, pro)
		i = pro
	}
	for ; i+64 <= n; i += 64 {
		aa := a[i : i+64]
		var w uint64
		for k := range aa {
			w |= eqMaskBit(aa[k], v) << uint(k)
		}
		//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
		if w != 0 {
			bits[(base+i)>>6] |= w
		}
	}
	cmpEqScalarEdge(a, v, bits, base, i, n)
}

// cmpEqScalarUnrolled is the multi-lane path: 8 compares per iteration
// over bounds-check-free re-slices.
//
//cm:hotpath
func cmpEqScalarUnrolled(a Poly, v uint64, bits []uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		cmpEqScalarEdge(a, v, bits, base, 0, pro)
		i = pro
	}
	for ; i+64 <= n; i += 64 {
		var w uint64
		for k := 0; k < 64; k += 8 {
			a8 := a[i+k : i+k+8 : i+k+8]
			g := eqMaskBit(a8[0], v) |
				eqMaskBit(a8[1], v)<<1 |
				eqMaskBit(a8[2], v)<<2 |
				eqMaskBit(a8[3], v)<<3 |
				eqMaskBit(a8[4], v)<<4 |
				eqMaskBit(a8[5], v)<<5 |
				eqMaskBit(a8[6], v)<<6 |
				eqMaskBit(a8[7], v)<<7
			w |= g << uint(k)
		}
		//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
		if w != 0 {
			bits[(base+i)>>6] |= w
		}
	}
	cmpEqScalarEdge(a, v, bits, base, i, n)
}

// cmpEqScalarEdge is CmpEqScalarBits' coefficient-at-a-time edge path
// over [lo, hi).
//
//cm:hotpath
func cmpEqScalarEdge(a Poly, v uint64, bits []uint64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		wi, m := bitsetWord(base + i)
		bits[wi] |= m & -eqMaskBit(a[i], v)
	}
}
