package ring

import (
	"fmt"
	"math/big"
	"math/bits"
)

// This file adds number-theoretic-transform multiplication for prime
// moduli with q ≡ 1 (mod 2n) — the algorithm SEAL (the paper's software
// baseline substrate) uses, included both for completeness and so the
// ablation benchmarks can quantify the schoolbook/Karatsuba/NTT trade-off.
// The negacyclic wrap is folded into the transform by twisting with a
// primitive 2n-th root of unity ψ (Longa–Naehrig tables in bit-reversed
// order).

// ntt holds the precomputed tables for one ring.
type ntt struct {
	psiRev    []uint64 // ψ^bitrev(i)
	psiInvRev []uint64 // ψ^{-bitrev(i)}
	nInv      uint64   // n^{-1} mod q
}

// NTTAvailable reports whether the ring supports NTT multiplication
// (prime q with q ≡ 1 mod 2n).
func (r *Ring) NTTAvailable() bool {
	r.initNTT()
	return r.ntt != nil
}

// initNTT lazily builds the tables; failure (composite q or missing root)
// leaves r.ntt nil and the generic paths in use.
func (r *Ring) initNTT() {
	if r.nttChecked {
		return
	}
	r.nttChecked = true
	if r.qIsPow2 || (r.q-1)%uint64(2*r.n) != 0 {
		return
	}
	if !new(big.Int).SetUint64(r.q).ProbablyPrime(20) {
		return
	}
	psi, ok := findPrimitive2NRoot(r.q, uint64(r.n))
	if !ok {
		return
	}
	n := r.n
	logN := int(r.logN)
	tbl := &ntt{
		psiRev:    make([]uint64, n),
		psiInvRev: make([]uint64, n),
		nInv:      invMod(uint64(n), r.q),
	}
	psiInv := invMod(psi, r.q)
	p, pi := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := reverseBits(uint32(i), logN)
		tbl.psiRev[j] = p
		tbl.psiInvRev[j] = pi
		p = mulMod(p, psi, r.q)
		pi = mulMod(pi, psiInv, r.q)
	}
	r.ntt = tbl
}

// MulNTT sets out = a * b using the negacyclic NTT. out must not alias
// a or b. Panics if the ring has no NTT support (check NTTAvailable).
func (r *Ring) MulNTT(a, b, out Poly) {
	r.initNTT()
	if r.ntt == nil {
		panic("ring: MulNTT on a ring without NTT support")
	}
	ta := r.Clone(a)
	tb := r.Clone(b)
	r.nttForward(ta)
	r.nttForward(tb)
	for i := range out {
		out[i] = mulMod(ta[i], tb[i], r.q)
	}
	r.nttInverse(out)
}

// nttForward transforms a in place (Cooley-Tukey, decimation in time,
// ψ-twisted for the negacyclic ring).
func (r *Ring) nttForward(a Poly) {
	q := r.q
	t := r.n
	for m := 1; m < r.n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			s := r.ntt.psiRev[m+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := mulMod(a[j+t], s, q)
				a[j] = addMod(u, v, q)
				a[j+t] = subMod(u, v, q)
			}
		}
	}
}

// nttInverse is the Gentleman-Sande inverse transform with the final
// scaling by n^{-1}.
func (r *Ring) nttInverse(a Poly) {
	q := r.q
	t := 1
	for m := r.n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			s := r.ntt.psiInvRev[h+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = addMod(u, v, q)
				a[j+t] = mulMod(subMod(u, v, q), s, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		a[i] = mulMod(a[i], r.ntt.nInv, q)
	}
}

// findPrimitive2NRoot searches for ψ with ψ^n ≡ -1 (mod q), i.e. a
// primitive 2n-th root of unity.
func findPrimitive2NRoot(q, n uint64) (uint64, bool) {
	exp := (q - 1) / (2 * n)
	for g := uint64(2); g < 1000; g++ {
		psi := powMod(g, exp, q)
		if powMod(psi, n, q) == q-1 {
			return psi, true
		}
	}
	return 0, false
}

// FindNTTPrime returns the largest prime below 2^bits with
// q ≡ 1 (mod 2n), suitable for NTT multiplication at ring degree n.
func FindNTTPrime(bitLen uint, n int) (uint64, error) {
	if bitLen < 10 || bitLen > 56 {
		return 0, fmt.Errorf("ring: NTT prime bit length %d out of range [10, 56]", bitLen)
	}
	step := uint64(2 * n)
	q := (uint64(1)<<bitLen - 1) / step * step
	for ; q > step; q -= step {
		cand := q + 1
		if new(big.Int).SetUint64(cand).ProbablyPrime(20) {
			if _, ok := findPrimitive2NRoot(cand, uint64(n)); ok {
				return cand, nil
			}
		}
	}
	return 0, fmt.Errorf("ring: no NTT prime below 2^%d for n=%d", bitLen, n)
}

// --- modular helpers for generic (non-power-of-two) moduli ---

func addMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

func subMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

func mulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return bits.Rem64(hi, lo, q)
}

func powMod(base, exp, q uint64) uint64 {
	result := uint64(1)
	base %= q
	for exp > 0 {
		if exp&1 == 1 {
			result = mulMod(result, base, q)
		}
		base = mulMod(base, base, q)
		exp >>= 1
	}
	return result
}

// invMod computes a^{-1} mod q for prime q via Fermat.
func invMod(a, q uint64) uint64 { return powMod(a, q-2, q) }

func reverseBits(v uint32, width int) uint32 {
	return bits.Reverse32(v) >> (32 - uint(width))
}
