//go:build amd64

#include "textflag.h"

// AVX2 block primitives for the ring compare kernels (see
// kernel_amd64.go for contracts). All functions are leaf NOSPLIT with
// unaligned 256-bit loads/stores (the coefficient planes are []uint64,
// 8-byte aligned only), and every VEX-encoded function executes
// VZEROUPPER before returning to avoid SSE transition stalls in the
// caller.

// GENCONSTS materialises the generic-q constants from the q argument
// (byte offset 24 in both generic signatures): Y4 = q,
// Y5 = 0x8000000000000000, Y6 = (q-1) ^ 0x8000000000000000. Every
// instruction is VEX-encoded on purpose — a legacy-SSE GPR→XMM MOVQ
// here would mix SSE with dirty YMM upper state once per 64-coeff
// block and eat the AVX transition penalty. The sign bit is built in
// registers (all-ones shifted left 63) and q-1 as q plus all-ones (-1).
// (Defined before the first TEXT block: vet's asmdecl pass attributes
// FP references on #define lines to the enclosing TEXT symbol.)
#define GENCONSTS \
	VPBROADCASTQ q+24(FP), Y4; \
	VPCMPEQQ     Y5, Y5, Y5;   \
	VPADDQ       Y5, Y4, Y6;   \
	VPSLLQ       $63, Y5, Y5;  \
	VPXOR        Y5, Y6, Y6

// func kernelCPUID(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·kernelCPUID(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func kernelXGETBV0() (eax, edx uint32)
TEXT ·kernelXGETBV0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// POW2GROUP computes one 4-lane group of dst[k] = (a[k] vop b[k]) & mask
// with the mask broadcast in Y3. off is the byte offset of the group.
#define POW2GROUP(vop, off) \
	VMOVDQU off(SI), Y0;     \
	vop     off(DX), Y0, Y0; \
	VPAND   Y3, Y0, Y0;      \
	VMOVDQU Y0, off(DI)

// func diffPow2Block64AVX2(dst, a, d *uint64, mask uint64)
TEXT ·diffPow2Block64AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         a+8(FP), SI
	MOVQ         d+16(FP), DX
	VPBROADCASTQ mask+24(FP), Y3
	MOVQ         $4, CX

pow2diffloop:
	POW2GROUP(VPSUBQ, 0)
	POW2GROUP(VPSUBQ, 32)
	POW2GROUP(VPSUBQ, 64)
	POW2GROUP(VPSUBQ, 96)
	ADDQ $128, SI
	ADDQ $128, DX
	ADDQ $128, DI
	DECQ CX
	JNZ  pow2diffloop
	VZEROUPPER
	RET

// func sumPow2Block64AVX2(dst, a, b *uint64, mask uint64)
TEXT ·sumPow2Block64AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         a+8(FP), SI
	MOVQ         b+16(FP), DX
	VPBROADCASTQ mask+24(FP), Y3
	MOVQ         $4, CX

pow2sumloop:
	POW2GROUP(VPADDQ, 0)
	POW2GROUP(VPADDQ, 32)
	POW2GROUP(VPADDQ, 64)
	POW2GROUP(VPADDQ, 96)
	ADDQ $128, SI
	ADDQ $128, DX
	ADDQ $128, DI
	DECQ CX
	JNZ  pow2sumloop
	VZEROUPPER
	RET

// GENREDUCE conditionally subtracts q from the 4 lanes of Y0 holding
// t < 2^58: flip the sign bit of t and compare signed against
// (q-1)^signbit (Y6) — true exactly when t >= q unsigned — then mask q
// (Y4) with the compare result and subtract. Y1 is scratch.
#define GENREDUCE \
	VPXOR    Y5, Y0, Y1; \
	VPCMPGTQ Y6, Y1, Y1; \
	VPAND    Y4, Y1, Y1; \
	VPSUBQ   Y1, Y0, Y0

// GENDIFFGROUP computes dst[k] = (a[k] + q - d[k]) mod q for one
// 4-lane group: q broadcast in Y4, sign-bit constant in Y5,
// (q-1)^signbit in Y6.
#define GENDIFFGROUP(off) \
	VMOVDQU off(SI), Y0;     \
	VPADDQ  Y4, Y0, Y0;      \
	VPSUBQ  off(DX), Y0, Y0; \
	GENREDUCE;               \
	VMOVDQU Y0, off(DI)

// GENSUMGROUP computes dst[k] = (a[k] + b[k]) mod q for one 4-lane
// group, same constants.
#define GENSUMGROUP(off) \
	VMOVDQU off(SI), Y0;     \
	VPADDQ  off(DX), Y0, Y0; \
	GENREDUCE;               \
	VMOVDQU Y0, off(DI)

// func diffGenericBlock64AVX2(dst, a, d *uint64, q uint64)
TEXT ·diffGenericBlock64AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ d+16(FP), DX
	GENCONSTS
	MOVQ $4, CX

gendiffloop:
	GENDIFFGROUP(0)
	GENDIFFGROUP(32)
	GENDIFFGROUP(64)
	GENDIFFGROUP(96)
	ADDQ $128, SI
	ADDQ $128, DX
	ADDQ $128, DI
	DECQ CX
	JNZ  gendiffloop
	VZEROUPPER
	RET

// func sumGenericBlock64AVX2(dst, a, b *uint64, q uint64)
TEXT ·sumGenericBlock64AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	GENCONSTS
	MOVQ $4, CX

gensumloop:
	GENSUMGROUP(0)
	GENSUMGROUP(32)
	GENSUMGROUP(64)
	GENSUMGROUP(96)
	ADDQ $128, SI
	ADDQ $128, DX
	ADDQ $128, DI
	DECQ CX
	JNZ  gensumloop
	VZEROUPPER
	RET

// CMPGROUP compares one 4-lane group of x (SI) against y (DX),
// extracts the 4 lane sign bits with VMOVMSKPD (VPCMPEQQ lanes are
// all-ones on equality, so the sign bit is the verdict), shifts them
// to bit position sh and ORs into the accumulator AX.
#define CMPGROUP(off, sh) \
	VMOVDQU   off(SI), Y0;     \
	VPCMPEQQ  off(DX), Y0, Y0; \
	VMOVMSKPD Y0, BX;          \
	SHLQ      $sh, BX;         \
	ORQ       BX, AX

// func cmpEqBlock64AVX2(x, y *uint64) uint64
TEXT ·cmpEqBlock64AVX2(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DX
	XORQ AX, AX
	CMPGROUP(0, 0)
	CMPGROUP(32, 4)
	CMPGROUP(64, 8)
	CMPGROUP(96, 12)
	CMPGROUP(128, 16)
	CMPGROUP(160, 20)
	CMPGROUP(192, 24)
	CMPGROUP(224, 28)
	CMPGROUP(256, 32)
	CMPGROUP(288, 36)
	CMPGROUP(320, 40)
	CMPGROUP(352, 44)
	CMPGROUP(384, 48)
	CMPGROUP(416, 52)
	CMPGROUP(448, 56)
	CMPGROUP(480, 60)
	MOVQ AX, ret+16(FP)
	VZEROUPPER
	RET

// CMPSGROUP compares one 4-lane group of x (SI) against the broadcast
// scalar in Y3, accumulating like CMPGROUP.
#define CMPSGROUP(off, sh) \
	VMOVDQU   off(SI), Y0; \
	VPCMPEQQ  Y3, Y0, Y0;  \
	VMOVMSKPD Y0, BX;      \
	SHLQ      $sh, BX;     \
	ORQ       BX, AX

// func cmpEqScalarBlock64AVX2(x *uint64, v uint64) uint64
TEXT ·cmpEqScalarBlock64AVX2(SB), NOSPLIT, $0-24
	MOVQ         x+0(FP), SI
	VPBROADCASTQ v+8(FP), Y3
	XORQ         AX, AX
	CMPSGROUP(0, 0)
	CMPSGROUP(32, 4)
	CMPSGROUP(64, 8)
	CMPSGROUP(96, 12)
	CMPSGROUP(128, 16)
	CMPSGROUP(160, 20)
	CMPSGROUP(192, 24)
	CMPSGROUP(224, 28)
	CMPSGROUP(256, 32)
	CMPSGROUP(288, 36)
	CMPSGROUP(320, 40)
	CMPSGROUP(352, 44)
	CMPSGROUP(384, 48)
	CMPSGROUP(416, 52)
	CMPSGROUP(448, 56)
	CMPSGROUP(480, 60)
	MOVQ AX, ret+16(FP)
	VZEROUPPER
	RET
