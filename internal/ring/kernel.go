package ring

// This file is the kernel dispatch layer of ROADMAP item 1: the hot
// compare kernels (SubCmpMultiBits, AddCmpBits, CmpEqScalarBits) exist
// in three implementations behind one API, selected once at process
// start and swappable at runtime for tests and benchmarks:
//
//	generic   the committed portable baseline: word-at-a-time with
//	          range loops — the reference every other path must match
//	          bit for bit (FuzzKernelPaths, TestKernelPathsBitIdentical)
//	unrolled  the multi-lane portable rewrite: 8 coefficients per
//	          iteration with explicit slice re-slicing so the compiler
//	          elides bounds checks, slice headers hoisted out of the
//	          coefficient loops
//	avx2      amd64 assembly block primitives (kernel_amd64.s), 4
//	          coefficient lanes per vector op; present only on amd64
//	          with OS-enabled AVX2
//
// Selection policy, in order: the CM_KERNEL environment variable
// (generic|unrolled|avx2) when set and satisfiable; otherwise avx2
// when the CPU and OS support it; otherwise unrolled. GODEBUG
// containing cpu.avx2=off disables AVX2 exactly like the stdlib knob,
// so CI can prove the fallback paths never rot. The active path is a
// process-wide atomic: engines read it per kernel call (one load per
// streamed polynomial, noise against the coefficient loop), and tests
// flip it to run the same workload through every implementation.

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// KernelPath identifies one implementation of the hot compare kernels.
type KernelPath uint32

const (
	// KernelGeneric is the portable word-at-a-time baseline kernel.
	KernelGeneric KernelPath = iota
	// KernelUnrolled is the multi-lane bounds-check-free portable kernel.
	KernelUnrolled
	// KernelAVX2 is the amd64 assembly kernel (4 lanes per vector op).
	KernelAVX2
)

// String returns the CM_KERNEL spelling of the path.
func (p KernelPath) String() string {
	switch p {
	case KernelGeneric:
		return "generic"
	case KernelUnrolled:
		return "unrolled"
	case KernelAVX2:
		return "avx2"
	}
	return fmt.Sprintf("kernel(%d)", uint32(p))
}

// ParseKernelPath maps a CM_KERNEL value to its path.
func ParseKernelPath(s string) (KernelPath, error) {
	switch s {
	case "generic":
		return KernelGeneric, nil
	case "unrolled":
		return KernelUnrolled, nil
	case "avx2":
		return KernelAVX2, nil
	}
	return 0, fmt.Errorf("ring: unknown kernel path %q (want generic, unrolled or avx2)", s)
}

var (
	// avx2Supported is fixed at init: CPU + OS support, minus the
	// GODEBUG=cpu.avx2=off escape hatch.
	avx2Supported bool
	// activeKernel holds the KernelPath every exported kernel
	// dispatches on.
	activeKernel atomic.Uint32
	// kernelNote records a CM_KERNEL value that could not be honored,
	// for CLIs to surface (a library init has no business printing).
	kernelNote string
)

func init() {
	avx2Supported = archAVX2Supported() && !godebugDisablesAVX2(os.Getenv("GODEBUG"))
	p := KernelUnrolled
	if avx2Supported {
		p = KernelAVX2
	}
	if env := os.Getenv("CM_KERNEL"); env != "" {
		switch forced, err := ParseKernelPath(env); {
		case err != nil:
			kernelNote = fmt.Sprintf("ignoring CM_KERNEL=%q: unknown path, using %s", env, p)
		case forced == KernelAVX2 && !avx2Supported:
			kernelNote = "CM_KERNEL=avx2 requested but AVX2 is unavailable; using " + p.String()
		default:
			p = forced
		}
	}
	activeKernel.Store(uint32(p))
}

// godebugDisablesAVX2 reports whether a GODEBUG value contains
// cpu.avx2=off — honored here exactly like the stdlib honors it for
// internal/cpu, so one knob degrades both.
func godebugDisablesAVX2(godebug string) bool {
	for _, kv := range strings.Split(godebug, ",") {
		if strings.TrimSpace(kv) == "cpu.avx2=off" {
			return true
		}
	}
	return false
}

// ActiveKernel returns the kernel path searches currently dispatch to.
func ActiveKernel() KernelPath { return KernelPath(activeKernel.Load()) }

// AVX2Supported reports whether the avx2 path can be selected on this
// process (CPU feature, OS state support, and no GODEBUG override).
func AVX2Supported() bool { return avx2Supported }

// KernelInitNote returns a human-readable note when an explicit
// CM_KERNEL request could not be honored at init, and "" otherwise.
// CLIs print it; the library itself stays silent.
func KernelInitNote() string { return kernelNote }

// SetKernel switches the process-wide kernel path. Selecting avx2 on a
// machine without it is refused, so a successful SetKernel means
// subsequent searches really run the named implementation.
func SetKernel(p KernelPath) error {
	switch p {
	case KernelGeneric, KernelUnrolled:
	case KernelAVX2:
		if !avx2Supported {
			return fmt.Errorf("ring: kernel path avx2 is not available on this machine")
		}
	default:
		return fmt.Errorf("ring: unknown kernel path %d", uint32(p))
	}
	activeKernel.Store(uint32(p))
	return nil
}

// SetKernelByName is SetKernel on the CM_KERNEL spelling.
func SetKernelByName(name string) error {
	p, err := ParseKernelPath(name)
	if err != nil {
		return err
	}
	return SetKernel(p)
}

// AvailableKernels lists the paths SetKernel would accept on this
// machine, in ascending specialisation order.
func AvailableKernels() []KernelPath {
	out := []KernelPath{KernelGeneric, KernelUnrolled}
	if avx2Supported {
		out = append(out, KernelAVX2)
	}
	return out
}
