//go:build !amd64

package ring

// No assembly kernels on this architecture: the avx2 path is never
// offered (SetKernel rejects it, AvailableKernels omits it), and the
// forwarders below exist only so the dispatch switches compile
// everywhere. Should the active path ever read KernelAVX2 here, the
// search still computes the right answer on the unrolled path.

func archAVX2Supported() bool { return false }

//cm:hotpath
func (r *Ring) subCmpAVX2(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	r.subCmpUnrolled(a, d, rhs, bits, base)
}

//cm:hotpath
func (r *Ring) addCmpAVX2(a, b, tok Poly, bits []uint64, base int) {
	r.addCmpUnrolled(a, b, tok, bits, base)
}

//cm:hotpath
func cmpEqScalarAVX2(a Poly, v uint64, bits []uint64, base int) {
	cmpEqScalarUnrolled(a, v, bits, base)
}
