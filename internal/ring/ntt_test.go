package ring

import (
	"testing"

	"ciphermatch/internal/rng"
)

func nttTestRing(t *testing.T, n int) *Ring {
	t.Helper()
	q, err := FindNTTPrime(45, n)
	if err != nil {
		t.Fatal(err)
	}
	r := MustNew(n, q)
	if !r.NTTAvailable() {
		t.Fatalf("NTT unavailable for q=%d, n=%d", q, n)
	}
	return r
}

func TestFindNTTPrime(t *testing.T) {
	for _, n := range []int{64, 1024, 2048} {
		q, err := FindNTTPrime(45, n)
		if err != nil {
			t.Fatal(err)
		}
		if (q-1)%uint64(2*n) != 0 {
			t.Fatalf("q=%d not ≡ 1 mod %d", q, 2*n)
		}
	}
	if _, err := FindNTTPrime(8, 64); err == nil {
		t.Error("accepted undersized bit length")
	}
}

func TestNTTUnavailableForPow2(t *testing.T) {
	r := MustNew(64, 1<<32)
	if r.NTTAvailable() {
		t.Fatal("NTT must be unavailable for power-of-two moduli")
	}
}

func TestNTTForwardInverseRoundtrip(t *testing.T) {
	r := nttTestRing(t, 64)
	src := rng.NewSourceFromString("ntt-rt")
	a := randomPoly(r, src)
	orig := r.Clone(a)
	r.nttForward(a)
	r.nttInverse(a)
	if !r.Equal(a, orig) {
		t.Fatal("NTT followed by INTT is not the identity")
	}
}

func TestMulNTTAgainstSchoolbook(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		r := nttTestRing(t, n)
		src := rng.NewSourceFromString("ntt-mul")
		for trial := 0; trial < 3; trial++ {
			a := randomPoly(r, src)
			b := randomPoly(r, src)
			want := r.NewPoly()
			r.MulSchoolbook(a, b, want)
			got := r.NewPoly()
			r.MulNTT(a, b, got)
			if !r.Equal(got, want) {
				t.Fatalf("n=%d trial %d: MulNTT != MulSchoolbook", n, trial)
			}
			// The default dispatch must pick NTT for this ring and agree.
			viaMul := r.NewPoly()
			r.Mul(a, b, viaMul)
			if !r.Equal(viaMul, want) {
				t.Fatalf("n=%d: Mul dispatch wrong for NTT ring", n)
			}
		}
	}
}

func TestNTTNegacyclicProperty(t *testing.T) {
	// X^(n-1) * X = X^n = -1: the transform must honour the negacyclic
	// wrap, not the cyclic one.
	r := nttTestRing(t, 64)
	a := r.NewPoly()
	a[r.N()-1] = 1
	x := r.NewPoly()
	x[1] = 1
	out := r.NewPoly()
	r.MulNTT(a, x, out)
	want := r.NewPoly()
	want[0] = r.Q() - 1
	if !r.Equal(out, want) {
		t.Fatalf("X^(n-1)·X = %v..., want -1 at constant term", out[:2])
	}
}

func TestModHelpers(t *testing.T) {
	const q = 65537
	if addMod(65530, 10, q) != 3 {
		t.Error("addMod")
	}
	if subMod(3, 10, q) != q-7 {
		t.Error("subMod")
	}
	if mulMod(65536, 65536, q) != 1 { // (-1)·(-1) = 1
		t.Error("mulMod")
	}
	if powMod(3, q-1, q) != 1 { // Fermat
		t.Error("powMod")
	}
	if mulMod(invMod(12345, q), 12345, q) != 1 {
		t.Error("invMod")
	}
}
