package ring

import "ciphermatch/internal/rng"

// UniformPoly fills out with coefficients uniform in [0, q).
func (r *Ring) UniformPoly(src *rng.Source, out Poly) {
	for i := range out {
		out[i] = src.Uniform(r.q)
	}
}

// TernaryPoly fills out with coefficients uniform in {-1, 0, +1} (reduced
// mod q). This is the secret-key and encryption-ephemeral distribution.
func (r *Ring) TernaryPoly(src *rng.Source, out Poly) {
	q := r.q
	for i := range out {
		switch src.Ternary() {
		case -1:
			out[i] = q - 1
		case 0:
			out[i] = 0
		default:
			out[i] = 1
		}
	}
}

// CBDPoly fills out with centered-binomial(eta) error coefficients (reduced
// mod q).
func (r *Ring) CBDPoly(src *rng.Source, eta int, out Poly) {
	q := int64(r.q)
	for i := range out {
		v := src.CBD(eta)
		if v < 0 {
			v += q
		}
		out[i] = uint64(v)
	}
}
