package ring

import (
	"encoding/binary"
	"testing"

	"ciphermatch/internal/rng"
)

// withKernel runs f under the named dispatch path and restores the
// previous one, so tests can't leak a forced path into the rest of the
// suite.
func withKernel(t testing.TB, p KernelPath, f func()) {
	t.Helper()
	prev := ActiveKernel()
	if err := SetKernel(p); err != nil {
		t.Fatalf("SetKernel(%s): %v", p, err)
	}
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatalf("restoring kernel path %s: %v", prev, err)
		}
	}()
	f()
}

func TestKernelPathNames(t *testing.T) {
	for _, p := range []KernelPath{KernelGeneric, KernelUnrolled, KernelAVX2} {
		got, err := ParseKernelPath(p.String())
		if err != nil {
			t.Fatalf("ParseKernelPath(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseKernelPath(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParseKernelPath("sse9"); err == nil {
		t.Fatal("ParseKernelPath accepted an unknown path")
	}
	if err := SetKernelByName("neon"); err == nil {
		t.Fatal("SetKernelByName accepted an unknown path")
	}
}

func TestSetKernelAvailability(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	if err := SetKernel(KernelUnrolled); err != nil {
		t.Fatalf("unrolled must always be available: %v", err)
	}
	if err := SetKernel(KernelGeneric); err != nil {
		t.Fatalf("generic must always be available: %v", err)
	}
	if AVX2Supported() {
		if err := SetKernel(KernelAVX2); err != nil {
			t.Fatalf("avx2 reported supported but SetKernel refused: %v", err)
		}
	} else if err := SetKernel(KernelAVX2); err == nil {
		t.Fatal("SetKernel(avx2) must refuse on a machine without AVX2")
	}
	if err := SetKernel(KernelPath(99)); err == nil {
		t.Fatal("SetKernel accepted an unknown path value")
	}
	avail := AvailableKernels()
	if len(avail) < 2 || avail[0] != KernelGeneric || avail[1] != KernelUnrolled {
		t.Fatalf("AvailableKernels() = %v, want generic and unrolled first", avail)
	}
	if AVX2Supported() != (len(avail) == 3 && avail[2] == KernelAVX2) {
		t.Fatalf("AvailableKernels() = %v inconsistent with AVX2Supported()=%v", avail, AVX2Supported())
	}
}

func TestGodebugDisablesAVX2(t *testing.T) {
	for _, tc := range []struct {
		godebug string
		want    bool
	}{
		{"", false},
		{"cpu.avx2=off", true},
		{"gctrace=1,cpu.avx2=off", true},
		{"gctrace=1, cpu.avx2=off ,x=1", true},
		{"cpu.avx2=on", false},
		{"cpu.avx512=off", false},
	} {
		if got := godebugDisablesAVX2(tc.godebug); got != tc.want {
			t.Errorf("godebugDisablesAVX2(%q) = %v, want %v", tc.godebug, got, tc.want)
		}
	}
}

// kernelCase is one randomised kernel workload shared by the
// cross-path property test and the differential fuzzer.
type kernelCase struct {
	r    *Ring
	a, d Poly   // subcmp operands (also addcmp a, b)
	tok  Poly   // addcmp comparand
	rhs  []Poly // subcmp comparands
	base int
}

// newKernelCase builds polynomials with hits planted at ~1/4 of the
// coefficients so the verdict words are neither all-zero nor all-one.
func newKernelCase(src *rng.Source, n int, q uint64, R, base int) kernelCase {
	r := MustNew(n, q)
	a, d := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src, a)
	r.UniformPoly(src, d)
	diff, sum := r.NewPoly(), r.NewPoly()
	r.Sub(a, d, diff)
	r.Add(a, d, sum)
	tok := r.NewPoly()
	r.UniformPoly(src, tok)
	for i := range tok {
		if src.Uniform(4) == 0 {
			tok[i] = sum[i]
		}
	}
	rhs := make([]Poly, R)
	for v := range rhs {
		rhs[v] = r.NewPoly()
		r.UniformPoly(src, rhs[v])
		for i := range rhs[v] {
			if src.Uniform(4) == 0 {
				rhs[v][i] = diff[i]
			}
		}
	}
	return kernelCase{r: r, a: a, d: d, tok: tok, rhs: rhs, base: base}
}

// runAllKernels executes the three exported kernels under every
// available dispatch path and fails the test unless each path's
// bitsets are bit-identical to the generic baseline's.
func runAllKernels(t testing.TB, tc kernelCase) {
	t.Helper()
	words := (tc.base + tc.r.N() + 63) / 64
	type result struct {
		sub   [][]uint64
		add   []uint64
		cmpeq []uint64
	}
	results := make(map[KernelPath]result)
	for _, p := range AvailableKernels() {
		withKernel(t, p, func() {
			res := result{
				sub:   make([][]uint64, len(tc.rhs)),
				add:   make([]uint64, words),
				cmpeq: make([]uint64, words),
			}
			for v := range res.sub {
				res.sub[v] = make([]uint64, words)
			}
			tc.r.SubCmpMultiBits(tc.a, tc.d, tc.rhs, res.sub, tc.base)
			tc.r.AddCmpBits(tc.a, tc.d, tc.tok, res.add, tc.base)
			CmpEqScalarBits(tc.a, tc.a[0], res.cmpeq, tc.base)
			results[p] = res
		})
	}
	ref := results[KernelGeneric]
	for _, p := range AvailableKernels() {
		if p == KernelGeneric {
			continue
		}
		got := results[p]
		for v := range ref.sub {
			for w := range ref.sub[v] {
				if got.sub[v][w] != ref.sub[v][w] {
					t.Fatalf("SubCmpMultiBits path %s: rhs %d word %d = %#x, generic %#x (n=%d q=%d base=%d)",
						p, v, w, got.sub[v][w], ref.sub[v][w], tc.r.N(), tc.r.Q(), tc.base)
				}
			}
		}
		for w := range ref.add {
			if got.add[w] != ref.add[w] {
				t.Fatalf("AddCmpBits path %s: word %d = %#x, generic %#x (n=%d q=%d base=%d)",
					p, w, got.add[w], ref.add[w], tc.r.N(), tc.r.Q(), tc.base)
			}
		}
		for w := range ref.cmpeq {
			if got.cmpeq[w] != ref.cmpeq[w] {
				t.Fatalf("CmpEqScalarBits path %s: word %d = %#x, generic %#x (n=%d q=%d base=%d)",
					p, w, got.cmpeq[w], ref.cmpeq[w], tc.r.N(), tc.r.Q(), tc.base)
			}
		}
	}
}

// TestKernelPathsBitIdentical is the deterministic cross-path property
// test: every available dispatch path must agree with the generic
// baseline bit for bit, across modulus families, degrees on both sides
// of the 64-coefficient word body, aligned and unaligned bases, and
// comparand counts bracketing the serving R.
func TestKernelPathsBitIdentical(t *testing.T) {
	src := rng.NewSourceFromString("kernel-paths")
	for _, fam := range addCmpFamilies {
		t.Run(fam.name, func(t *testing.T) {
			for _, base := range []int{0, 37, 64, 64*5 + 63} {
				for _, R := range []int{1, 4} {
					for trial := 0; trial < 6; trial++ {
						runAllKernels(t, newKernelCase(src, fam.n, fam.q, R, base))
					}
				}
			}
		})
	}
}

// fuzzQs are the modulus grid of FuzzKernelPaths: the paper's 2^32,
// another power of two, and generic moduli spanning small primes to
// just under the 2^57 cap.
var fuzzQs = []uint64{
	1 << 32,
	1 << 20,
	12289,
	(1 << 40) + 15,
	(1 << 56) + 7,
}

// fuzzNs are the degree grid: both sides of the 64-coefficient word
// body, plus the paper's n=1024.
var fuzzNs = []int{16, 64, 128, 1024}

// FuzzKernelPaths is the differential fuzzer of the dispatch layer:
// random modulus family, degree, base alignment, comparand count and
// coefficient streams, asserting the generic, unrolled and (where
// present) avx2 paths produce bit-identical hit bitsets for all three
// kernels. A divergence here is a miscompare in a rewritten kernel —
// exactly the bug class that must be impossible before a new path can
// ship.
func FuzzKernelPaths(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint16(0), uint8(1))
	f.Add(uint64(2), uint8(2), uint8(1), uint16(37), uint8(4))
	f.Add(uint64(3), uint8(3), uint8(2), uint16(63), uint8(3))
	f.Add(uint64(4), uint8(4), uint8(3), uint16(129), uint8(5))
	f.Add(uint64(5), uint8(1), uint8(1), uint16(64), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, qSel, nSel uint8, baseRaw uint16, rRaw uint8) {
		q := fuzzQs[int(qSel)%len(fuzzQs)]
		n := fuzzNs[int(nSel)%len(fuzzNs)]
		base := int(baseRaw) % (3 * 64)
		R := 1 + int(rRaw)%5
		var seedBytes [32]byte
		binary.LittleEndian.PutUint64(seedBytes[:8], seed)
		src := rng.NewSource(seedBytes)
		runAllKernels(t, newKernelCase(src, n, q, R, base))
	})
}
