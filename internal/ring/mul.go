package ring

import (
	"math/bits"

	"ciphermatch/internal/mathutil"
)

// Mul sets out = a * b in R_q (negacyclic convolution). out must not alias
// a or b. Power-of-two moduli use Karatsuba above the threshold; NTT-ready
// prime moduli use the number-theoretic transform; everything else falls
// back to schoolbook.
func (r *Ring) Mul(a, b, out Poly) {
	if r.qIsPow2 && r.n >= r.karatsubaThreshold*2 {
		r.MulKaratsuba(a, b, out)
		return
	}
	if r.NTTAvailable() {
		r.MulNTT(a, b, out)
		return
	}
	r.MulSchoolbook(a, b, out)
}

// MulSchoolbook sets out = a * b via the O(n^2) negacyclic schoolbook
// algorithm. out must not alias a or b. It works for every supported
// modulus and is the reference implementation the fast paths are tested
// against.
func (r *Ring) MulSchoolbook(a, b, out Poly) {
	n := r.n
	if r.qIsPow2 {
		// All arithmetic mod 2^64 is compatible with the final mask.
		for k := range out {
			out[k] = 0
		}
		for i := 0; i < n; i++ {
			ai := a[i]
			if ai == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				k := i + j
				p := ai * b[j] // wrapping, exact mod 2^64
				if k < n {
					out[k] += p
				} else {
					out[k-n] -= p
				}
			}
		}
		for k := range out {
			out[k] &= r.mask
		}
		return
	}
	// Generic modulus: accumulate positive and negative contributions in
	// 128 bits, then reduce. (q < 2^57 and n <= 2^14 guarantee no overflow.)
	posHi := make([]uint64, n)
	posLo := make([]uint64, n)
	negHi := make([]uint64, n)
	negLo := make([]uint64, n)
	for i := 0; i < n; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(ai, b[j])
			k := i + j
			if k < n {
				var c uint64
				posLo[k], c = bits.Add64(posLo[k], lo, 0)
				posHi[k] += hi + c
			} else {
				k -= n
				var c uint64
				negLo[k], c = bits.Add64(negLo[k], lo, 0)
				negHi[k] += hi + c
			}
		}
	}
	q := r.q
	for k := 0; k < n; k++ {
		p := bits.Rem64(posHi[k]%q, posLo[k], q)
		m := bits.Rem64(negHi[k]%q, negLo[k], q)
		d := p + q - m
		if d >= q {
			d -= q
		}
		out[k] = d
	}
}

// MulKaratsuba sets out = a * b using Karatsuba multiplication over the
// wrapping uint64 ring, then folds the linear product negacyclically and
// masks. Only valid for power-of-two moduli; out must not alias a or b.
func (r *Ring) MulKaratsuba(a, b, out Poly) {
	if !r.qIsPow2 {
		panic("ring: MulKaratsuba requires a power-of-two modulus")
	}
	n := r.n
	prod := make([]uint64, 2*n) // linear product, index 2n-1 unused (zero)
	scratch := make([]uint64, 4*n)
	karatsuba(a, b, prod, scratch, r.karatsubaThreshold)
	for k := n; k < 2*n-1; k++ {
		prod[k-n] -= prod[k]
	}
	for k := 0; k < n; k++ {
		out[k] = prod[k] & r.mask
	}
}

// karatsuba computes the full linear product of equal-length slices a and b
// into prod (length 2*len(a), the last element left zero), wrapping mod
// 2^64. scratch must have length >= 4*len(a).
func karatsuba(a, b []uint64, prod, scratch []uint64, threshold int) {
	n := len(a)
	if n <= threshold {
		for i := range prod[:2*n] {
			prod[i] = 0
		}
		for i := 0; i < n; i++ {
			ai := a[i]
			if ai == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				prod[i+j] += ai * b[j]
			}
		}
		return
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]

	// prod[0:2h] = a0*b0; prod[2h:4h] = a1*b1 (disjoint, last slots zero).
	karatsuba(a0, b0, prod[:2*h], scratch, threshold)
	karatsuba(a1, b1, prod[2*h:4*h], scratch, threshold)

	// mid = (a0+a1)*(b0+b1) - a0*b0 - a1*b1
	sa := scratch[:h]
	sb := scratch[h : 2*h]
	mid := scratch[2*h : 4*h]
	rest := scratch[4*h:]
	for i := 0; i < h; i++ {
		sa[i] = a0[i] + a1[i]
		sb[i] = b0[i] + b1[i]
	}
	karatsuba(sa, sb, mid, rest, threshold)
	for i := 0; i < 2*h; i++ {
		mid[i] -= prod[i] + prod[2*h+i]
	}
	for i := 0; i < 2*h; i++ {
		prod[h+i] += mid[i]
	}
}

// NegacyclicConvolveExact computes the exact negacyclic convolution of the
// centered-lift integer vectors a and b over Z (no modular reduction) into
// out. This is the tensoring primitive of BFV multiplication: the rescaling
// by t/q must see exact integers. len(a) == len(b) == n; |a[i]|, |b[i]|
// must be at most 2^57 so that the 128-bit accumulation cannot overflow.
func (r *Ring) NegacyclicConvolveExact(a, b []int64, out []mathutil.Int128) {
	n := r.n
	for k := range out[:n] {
		out[k] = mathutil.Int128{}
	}
	for i := 0; i < n; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := mathutil.MulInt64(ai, b[j])
			k := i + j
			if k < n {
				out[k] = out[k].Add(p)
			} else {
				out[k-n] = out[k-n].Sub(p)
			}
		}
	}
}

// ScaleRoundMod computes out[i] = round(t * x[i] / q) mod `mod` for the
// exact integer vector x. It implements the BFV rescaling step; `mod` is q
// for ciphertext tensoring and t for decryption.
func (r *Ring) ScaleRoundMod(x []mathutil.Int128, t uint64, mod uint64, out Poly) {
	for i := range out {
		var v mathutil.Int128
		if r.qIsPow2 {
			v = x[i].MulSmall(t).RoundShr(r.logQ)
		} else {
			v = x[i].MulSmall(t).DivRoundUint64(r.q)
		}
		out[i] = reduceInt128(v, mod)
	}
}

// reduceInt128 maps a signed 128-bit value into [0, mod).
func reduceInt128(v mathutil.Int128, mod uint64) uint64 {
	neg := v.IsNeg()
	a := v.Abs()
	rem := bits.Rem64(a.Hi%mod, a.Lo, mod)
	if neg && rem != 0 {
		rem = mod - rem
	}
	return rem
}
