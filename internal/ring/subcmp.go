package ring

// This file implements the residue-fused compare kernel of the factored
// match-token representation. With tokens factored as
// Tokens[s][j] = DBTok[j] + RHS[psi(j,s)] the per-(chunk, residue) hit
// condition (a + b) mod q == tok rewrites as
//
//	(a[i] - DBTok[j][i]) mod q == RHS[psi][i]
//
// whose left side is residue-independent: one streaming pass over the
// chunk's first component and its DBTok poly serves every shift variant
// at once, with the R per-phase RHS polys staying cache-resident. The
// legacy pipeline re-read the ciphertext arena once per residue; this
// kernel is why a search now reads it once (see core's engine kernels).
//
// The coefficient loops are branchless by policy (enforced by cmvet's
// ctbranch analyzer): the modular reduction and the equality test are
// computed with masks, never with data-dependent branches, so the
// kernel's timing and store pattern depend only on public shape — with
// one deliberate exception, the aggregated hit-word store elision,
// which reveals only word-granular "some window hit" and is what keeps
// a miss-dominated search a pure read stream.

// SubCmpMultiBits sets bit base+i of bits[v] for every comparand v and
// coefficient i with (a[i] - d[i]) mod q == rhs[v][i]. Bits are only
// ever set, never cleared, so repeated calls over disjoint base ranges
// accumulate into packed bitsets (one per comparand). a and d are each
// read exactly once regardless of len(rhs); no difference polynomial is
// stored. Words with no hits are never written, so a miss-dominated
// search stays a pure read stream.
//
// rhs and bits must have equal length; every rhs[v] must have len(a)
// coefficients and every bits[v] must cover bits [base, base+len(a)).
//
//cm:hotpath
func (r *Ring) SubCmpMultiBits(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	n := len(a)
	i := 0
	// Scalar prologue: walk coefficient-wise up to the next 64-bit bitset
	// boundary so the word-at-a-time body below runs for any base, not
	// just word-aligned ones.
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.subCmpScalar(a, d, rhs, bits, base, 0, pro)
		i = pro
	}
	// Word-at-a-time body: 64 differences land in a stack buffer, then
	// each comparand folds its 64 compares into one register, stored
	// only when at least one window hit.
	var diff [64]uint64
	for ; i+64 <= n; i += 64 {
		aa, dd := a[i:i+64], d[i:i+64]
		if r.qIsPow2 {
			mask := r.mask
			for k := range aa {
				diff[k] = (aa[k] - dd[k]) & mask
			}
		} else {
			q := r.q
			for k := range aa {
				t := aa[k] + q - dd[k] // d < q, no underflow
				// Branchless conditional reduction: subtract q iff
				// t >= q (then t-q has a clear sign bit and the mask
				// is all-ones).
				t -= q & (((t - q) >> 63) - 1)
				diff[k] = t
			}
		}
		wi := (base + i) >> 6
		for v, rp := range rhs {
			tt := rp[i : i+64]
			var w uint64
			for k := range tt {
				// Branchless equality: z|-z has its top bit set iff
				// z != 0, so eq is 1 exactly when diff[k] == tt[k].
				z := diff[k] ^ tt[k]
				eq := ((z | -z) >> 63) ^ 1
				w |= eq << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision: reveals only word-granular occupancy, and is the kernel's read-stream guarantee
			if w != 0 {
				bits[v][wi] |= w
			}
		}
	}
	// Scalar epilogue: the sub-word tail.
	r.subCmpScalar(a, d, rhs, bits, base, i, n)
}

// subCmpScalar is the coefficient-at-a-time fallback of SubCmpMultiBits
// over coefficients [lo, hi), shared by the unaligned prologue and the
// tail epilogue. It keeps the same branchless discipline: the hit mask
// is computed arithmetically and OR-stored unconditionally (an OR of
// zero is a no-op), so even the ragged edges have data-independent
// timing.
//
//cm:hotpath
func (r *Ring) subCmpScalar(a, d Poly, rhs []Poly, bits [][]uint64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		var t uint64
		if r.qIsPow2 {
			t = (a[i] - d[i]) & r.mask
		} else {
			t = a[i] + r.q - d[i]
			t -= r.q & (((t - r.q) >> 63) - 1)
		}
		wi, m := bitsetWord(base + i)
		for v, rp := range rhs {
			z := t ^ rp[i]
			eq := ((z | -z) >> 63) ^ 1
			bits[v][wi] |= m & -eq
		}
	}
}
