package ring

// This file implements the residue-fused compare kernel of the factored
// match-token representation. With tokens factored as
// Tokens[s][j] = DBTok[j] + RHS[psi(j,s)] the per-(chunk, residue) hit
// condition (a + b) mod q == tok rewrites as
//
//	(a[i] - DBTok[j][i]) mod q == RHS[psi][i]
//
// whose left side is residue-independent: one streaming pass over the
// chunk's first component and its DBTok poly serves every shift variant
// at once, with the R per-phase RHS polys staying cache-resident. The
// legacy pipeline re-read the ciphertext arena once per residue; this
// kernel is why a search now reads it once (see core's engine kernels).
//
// The kernel exists in three dispatch paths (see kernel.go): the
// generic word-at-a-time baseline, the unrolled multi-lane path below,
// and the AVX2 assembly path (kernel_amd64.go). All paths share the
// scalar prologue/epilogue and are proven bit-identical by
// FuzzKernelPaths and the cross-path property tests.
//
// The coefficient loops are branchless by policy (enforced by cmvet's
// ctbranch analyzer): the modular reduction and the equality test are
// computed with masks, never with data-dependent branches, so the
// kernel's timing and store pattern depend only on public shape — with
// one deliberate exception, the aggregated hit-word store elision,
// which reveals only word-granular "some window hit" and is what keeps
// a miss-dominated search a pure read stream.

// SubCmpMultiBits sets bit base+i of bits[v] for every comparand v and
// coefficient i with (a[i] - d[i]) mod q == rhs[v][i]. Bits are only
// ever set, never cleared, so repeated calls over disjoint base ranges
// accumulate into packed bitsets (one per comparand). a and d are each
// read exactly once regardless of len(rhs); no difference polynomial is
// stored. Words with no hits are never written, so a miss-dominated
// search stays a pure read stream.
//
// rhs and bits must have equal length; every rhs[v] must have len(a)
// coefficients and every bits[v] must cover bits [base, base+len(a)).
//
//cm:hotpath
func (r *Ring) SubCmpMultiBits(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	switch KernelPath(activeKernel.Load()) {
	case KernelAVX2:
		r.subCmpAVX2(a, d, rhs, bits, base)
	case KernelUnrolled:
		r.subCmpUnrolled(a, d, rhs, bits, base)
	default:
		r.subCmpGeneric(a, d, rhs, bits, base)
	}
}

// subCmpGeneric is the portable word-at-a-time baseline (the committed
// pre-dispatch kernel, kept verbatim as the reference implementation):
// 64 differences land in a stack buffer, then each comparand folds its
// 64 compares into one register, stored only when at least one window
// hit.
//
//cm:hotpath
func (r *Ring) subCmpGeneric(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	n := len(a)
	i := 0
	// Scalar prologue: walk coefficient-wise up to the next 64-bit bitset
	// boundary so the word-at-a-time body below runs for any base, not
	// just word-aligned ones.
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.subCmpScalar(a, d, rhs, bits, base, 0, pro)
		i = pro
	}
	var diff [64]uint64
	for ; i+64 <= n; i += 64 {
		aa, dd := a[i:i+64], d[i:i+64]
		if r.qIsPow2 {
			mask := r.mask
			for k := range aa {
				diff[k] = (aa[k] - dd[k]) & mask
			}
		} else {
			q := r.q
			for k := range aa {
				t := aa[k] + q - dd[k] // d < q, no underflow
				// Branchless conditional reduction: subtract q iff
				// t >= q (then t-q has a clear sign bit and the mask
				// is all-ones).
				t -= q & (((t - q) >> 63) - 1)
				diff[k] = t
			}
		}
		wi := (base + i) >> 6
		for v, rp := range rhs {
			tt := rp[i : i+64]
			var w uint64
			for k := range tt {
				// Branchless equality: z|-z has its top bit set iff
				// z != 0, so eq is 1 exactly when diff[k] == tt[k].
				z := diff[k] ^ tt[k]
				eq := ((z | -z) >> 63) ^ 1
				w |= eq << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision: reveals only word-granular occupancy, and is the kernel's read-stream guarantee
			if w != 0 {
				bits[v][wi] |= w
			}
		}
	}
	// Scalar epilogue: the sub-word tail.
	r.subCmpScalar(a, d, rhs, bits, base, i, n)
}

// subCmpUnrolled is the multi-lane portable path: 8 coefficients per
// iteration with explicit three-index re-slicing (aa := a[i:i+8:i+8])
// so the compiler proves every lane access in bounds once per group
// and elides the per-access checks, and with the rhs[v]/bits[v] slice
// headers hoisted out of the coefficient loop. The difference buffer
// is still built once per 64-coefficient word and each comparand still
// folds its 64 compares into one register touched at most once per 64
// lanes — the unrolling changes the instruction schedule, not the
// store discipline.
//
//cm:hotpath
func (r *Ring) subCmpUnrolled(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.subCmpScalar(a, d, rhs, bits, base, 0, pro)
		i = pro
	}
	var diff [64]uint64
	for ; i+64 <= n; i += 64 {
		if r.qIsPow2 {
			mask := r.mask
			for k := 0; k < 64; k += 8 {
				a8 := a[i+k : i+k+8 : i+k+8]
				d8 := d[i+k : i+k+8 : i+k+8]
				f8 := diff[k : k+8 : k+8]
				f8[0] = (a8[0] - d8[0]) & mask
				f8[1] = (a8[1] - d8[1]) & mask
				f8[2] = (a8[2] - d8[2]) & mask
				f8[3] = (a8[3] - d8[3]) & mask
				f8[4] = (a8[4] - d8[4]) & mask
				f8[5] = (a8[5] - d8[5]) & mask
				f8[6] = (a8[6] - d8[6]) & mask
				f8[7] = (a8[7] - d8[7]) & mask
			}
		} else {
			q := r.q
			for k := 0; k < 64; k += 8 {
				a8 := a[i+k : i+k+8 : i+k+8]
				d8 := d[i+k : i+k+8 : i+k+8]
				f8 := diff[k : k+8 : k+8]
				t0 := a8[0] + q - d8[0]
				t1 := a8[1] + q - d8[1]
				t2 := a8[2] + q - d8[2]
				t3 := a8[3] + q - d8[3]
				t4 := a8[4] + q - d8[4]
				t5 := a8[5] + q - d8[5]
				t6 := a8[6] + q - d8[6]
				t7 := a8[7] + q - d8[7]
				f8[0] = t0 - q&(((t0-q)>>63)-1)
				f8[1] = t1 - q&(((t1-q)>>63)-1)
				f8[2] = t2 - q&(((t2-q)>>63)-1)
				f8[3] = t3 - q&(((t3-q)>>63)-1)
				f8[4] = t4 - q&(((t4-q)>>63)-1)
				f8[5] = t5 - q&(((t5-q)>>63)-1)
				f8[6] = t6 - q&(((t6-q)>>63)-1)
				f8[7] = t7 - q&(((t7-q)>>63)-1)
			}
		}
		wi := (base + i) >> 6
		for v := range rhs {
			// Hoist the comparand's poly and bitset headers: one slice
			// load each per word, not per coefficient.
			tt := rhs[v][i : i+64 : i+64]
			bv := bits[v]
			var w uint64
			for k := 0; k < 64; k += 8 {
				t8 := tt[k : k+8 : k+8]
				f8 := diff[k : k+8 : k+8]
				g := eqMaskBit(f8[0], t8[0]) |
					eqMaskBit(f8[1], t8[1])<<1 |
					eqMaskBit(f8[2], t8[2])<<2 |
					eqMaskBit(f8[3], t8[3])<<3 |
					eqMaskBit(f8[4], t8[4])<<4 |
					eqMaskBit(f8[5], t8[5])<<5 |
					eqMaskBit(f8[6], t8[6])<<6 |
					eqMaskBit(f8[7], t8[7])<<7
				w |= g << uint(k)
			}
			//cm:allow ctbranch -- aggregated hit-word store elision: reveals only word-granular occupancy, and is the kernel's read-stream guarantee
			if w != 0 {
				bv[wi] |= w
			}
		}
	}
	r.subCmpScalar(a, d, rhs, bits, base, i, n)
}

// subCmpScalar is the coefficient-at-a-time fallback of SubCmpMultiBits
// over coefficients [lo, hi), shared by the unaligned prologue and the
// tail epilogue of every dispatch path. It keeps the same branchless
// discipline: the hit mask is computed arithmetically and OR-stored
// unconditionally (an OR of zero is a no-op), so even the ragged edges
// have data-independent timing.
//
//cm:hotpath
func (r *Ring) subCmpScalar(a, d Poly, rhs []Poly, bits [][]uint64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		var t uint64
		if r.qIsPow2 {
			t = (a[i] - d[i]) & r.mask
		} else {
			t = a[i] + r.q - d[i]
			t -= r.q & (((t - r.q) >> 63) - 1)
		}
		wi, m := bitsetWord(base + i)
		for v, rp := range rhs {
			z := t ^ rp[i]
			eq := ((z | -z) >> 63) ^ 1
			bits[v][wi] |= m & -eq
		}
	}
}
