package ring

// This file implements the residue-fused compare kernel of the factored
// match-token representation. With tokens factored as
// Tokens[s][j] = DBTok[j] + RHS[psi(j,s)] the per-(chunk, residue) hit
// condition (a + b) mod q == tok rewrites as
//
//	(a[i] - DBTok[j][i]) mod q == RHS[psi][i]
//
// whose left side is residue-independent: one streaming pass over the
// chunk's first component and its DBTok poly serves every shift variant
// at once, with the R per-phase RHS polys staying cache-resident. The
// legacy pipeline re-read the ciphertext arena once per residue; this
// kernel is why a search now reads it once (see core's engine kernels).

// SubCmpMultiBits sets bit base+i of bits[v] for every comparand v and
// coefficient i with (a[i] - d[i]) mod q == rhs[v][i]. Bits are only
// ever set, never cleared, so repeated calls over disjoint base ranges
// accumulate into packed bitsets (one per comparand). a and d are each
// read exactly once regardless of len(rhs); no difference polynomial is
// stored. Words with no hits are never written, so a miss-dominated
// search stays a pure read stream.
//
// rhs and bits must have equal length; every rhs[v] must have len(a)
// coefficients and every bits[v] must cover bits [base, base+len(a)).
func (r *Ring) SubCmpMultiBits(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	n := len(a)
	i := 0
	// Scalar prologue: walk coefficient-wise up to the next 64-bit bitset
	// boundary so the word-at-a-time body below runs for any base, not
	// just word-aligned ones.
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.subCmpScalar(a, d, rhs, bits, base, 0, pro)
		i = pro
	}
	// Word-at-a-time body: 64 differences land in a stack buffer, then
	// each comparand folds its 64 compares into one register, stored
	// only when at least one window hit.
	var diff [64]uint64
	for ; i+64 <= n; i += 64 {
		aa, dd := a[i:i+64], d[i:i+64]
		if r.qIsPow2 {
			mask := r.mask
			for k := range aa {
				diff[k] = (aa[k] - dd[k]) & mask
			}
		} else {
			q := r.q
			for k := range aa {
				t := aa[k] + q - dd[k] // d < q, no underflow
				if t >= q {
					t -= q
				}
				diff[k] = t
			}
		}
		wi := (base + i) >> 6
		for v, rp := range rhs {
			tt := rp[i : i+64]
			var w uint64
			for k := range tt {
				if diff[k] == tt[k] {
					w |= 1 << uint(k)
				}
			}
			if w != 0 {
				bits[v][wi] |= w
			}
		}
	}
	// Scalar epilogue: the sub-word tail.
	r.subCmpScalar(a, d, rhs, bits, base, i, n)
}

// subCmpScalar is the coefficient-at-a-time fallback of SubCmpMultiBits
// over coefficients [lo, hi), shared by the unaligned prologue and the
// tail epilogue.
func (r *Ring) subCmpScalar(a, d Poly, rhs []Poly, bits [][]uint64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		var t uint64
		if r.qIsPow2 {
			t = (a[i] - d[i]) & r.mask
		} else {
			t = a[i] + r.q - d[i]
			if t >= r.q {
				t -= r.q
			}
		}
		for v, rp := range rhs {
			if t == rp[i] {
				wi, m := bitsetWord(base + i)
				bits[v][wi] |= m
			}
		}
	}
}
