package ring

import (
	"testing"

	"ciphermatch/internal/rng"
)

// TestSubCmpMultiBitsMatchesSubCompare is the property test of the
// residue-fused kernel: for every comparand, SubCmpMultiBits must agree
// bit for bit with the unfused subtract-then-compare pipeline on random
// polynomials, at aligned and unaligned base offsets, for both modulus
// families, with 1..5 comparands per call.
func TestSubCmpMultiBitsMatchesSubCompare(t *testing.T) {
	for _, fam := range addCmpFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := MustNew(fam.n, fam.q)
			src := rng.NewSourceFromString("subcmp-" + fam.name)
			for trial := 0; trial < 24; trial++ {
				a, d := r.NewPoly(), r.NewPoly()
				r.UniformPoly(src, a)
				r.UniformPoly(src, d)
				diff := r.NewPoly()
				r.Sub(a, d, diff)
				numRHS := 1 + int(src.Uniform(5))
				rhs := make([]Poly, numRHS)
				for v := range rhs {
					rhs[v] = r.NewPoly()
					r.UniformPoly(src, rhs[v])
					// Force hits at random positions: a random comparand
					// rarely equals the difference, so plant exact matches.
					for i := range rhs[v] {
						if src.Uniform(4) == 0 {
							rhs[v][i] = diff[i]
						}
					}
				}
				for _, base := range []int{0, 64, fam.n, 37} {
					bits := make([][]uint64, numRHS)
					for v := range bits {
						bits[v] = make([]uint64, (base+fam.n+63)/64)
					}
					r.SubCmpMultiBits(a, d, rhs, bits, base)
					for v := 0; v < numRHS; v++ {
						for i := 0; i < fam.n; i++ {
							want := diff[i] == rhs[v][i]
							got := bits[v][(base+i)>>6]&(1<<(uint(base+i)&63)) != 0
							if got != want {
								t.Fatalf("trial %d rhs %d base %d coeff %d: fused=%v, sub+compare=%v",
									trial, v, base, i, got, want)
							}
						}
						// No bit outside [base, base+n) may be touched.
						for w := range bits[v] {
							for bit := 0; bit < 64; bit++ {
								idx := w*64 + bit
								if idx >= base && idx < base+fam.n {
									continue
								}
								if bits[v][w]&(1<<uint(bit)) != 0 {
									t.Fatalf("trial %d rhs %d base %d: stray bit %d set", trial, v, base, idx)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestSubCmpMultiBitsAccumulates: bits already set must survive calls
// over other base ranges (the kernels accumulate chunk by chunk), and
// calls with zero comparands must be no-ops.
func TestSubCmpMultiBitsAccumulates(t *testing.T) {
	r := MustNew(64, 1<<32)
	src := rng.NewSourceFromString("subcmp-acc")
	a, d := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src, a)
	r.UniformPoly(src, d)
	rhs := r.NewPoly()
	r.Sub(a, d, rhs) // every coefficient hits
	bits := [][]uint64{make([]uint64, 2)}
	r.SubCmpMultiBits(a, d, []Poly{rhs}, bits, 0)
	r.SubCmpMultiBits(a, d, []Poly{rhs}, bits, 64)
	for w := 0; w < 2; w++ {
		if bits[0][w] != ^uint64(0) {
			t.Fatalf("word %d = %#x after accumulating two full-hit ranges", w, bits[0][w])
		}
	}
	r.SubCmpMultiBits(a, d, nil, nil, 0) // zero comparands: must not panic
}
