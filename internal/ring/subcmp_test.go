package ring

import (
	"testing"

	"ciphermatch/internal/rng"
)

// TestSubCmpMultiBitsMatchesSubCompare is the property test of the
// residue-fused kernel: for every comparand, SubCmpMultiBits must agree
// bit for bit with the unfused subtract-then-compare pipeline on random
// polynomials, at aligned and unaligned base offsets, for both modulus
// families, with 1..5 comparands per call.
func TestSubCmpMultiBitsMatchesSubCompare(t *testing.T) {
	for _, fam := range addCmpFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := MustNew(fam.n, fam.q)
			src := rng.NewSourceFromString("subcmp-" + fam.name)
			for trial := 0; trial < 24; trial++ {
				a, d := r.NewPoly(), r.NewPoly()
				r.UniformPoly(src, a)
				r.UniformPoly(src, d)
				diff := r.NewPoly()
				r.Sub(a, d, diff)
				numRHS := 1 + int(src.Uniform(5))
				rhs := make([]Poly, numRHS)
				for v := range rhs {
					rhs[v] = r.NewPoly()
					r.UniformPoly(src, rhs[v])
					// Force hits at random positions: a random comparand
					// rarely equals the difference, so plant exact matches.
					for i := range rhs[v] {
						if src.Uniform(4) == 0 {
							rhs[v][i] = diff[i]
						}
					}
				}
				for _, base := range []int{0, 64, fam.n, 37} {
					bits := make([][]uint64, numRHS)
					for v := range bits {
						bits[v] = make([]uint64, (base+fam.n+63)/64)
					}
					r.SubCmpMultiBits(a, d, rhs, bits, base)
					for v := 0; v < numRHS; v++ {
						for i := 0; i < fam.n; i++ {
							want := diff[i] == rhs[v][i]
							got := bits[v][(base+i)>>6]&(1<<(uint(base+i)&63)) != 0
							if got != want {
								t.Fatalf("trial %d rhs %d base %d coeff %d: fused=%v, sub+compare=%v",
									trial, v, base, i, got, want)
							}
						}
						// No bit outside [base, base+n) may be touched.
						for w := range bits[v] {
							for bit := 0; bit < 64; bit++ {
								idx := w*64 + bit
								if idx >= base && idx < base+fam.n {
									continue
								}
								if bits[v][w]&(1<<uint(bit)) != 0 {
									t.Fatalf("trial %d rhs %d base %d: stray bit %d set", trial, v, base, idx)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestSubCmpMultiBitsAccumulates: bits already set must survive calls
// over other base ranges (the kernels accumulate chunk by chunk), and
// calls with zero comparands must be no-ops.
func TestSubCmpMultiBitsAccumulates(t *testing.T) {
	r := MustNew(64, 1<<32)
	src := rng.NewSourceFromString("subcmp-acc")
	a, d := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src, a)
	r.UniformPoly(src, d)
	rhs := r.NewPoly()
	r.Sub(a, d, rhs) // every coefficient hits
	bits := [][]uint64{make([]uint64, 2)}
	r.SubCmpMultiBits(a, d, []Poly{rhs}, bits, 0)
	r.SubCmpMultiBits(a, d, []Poly{rhs}, bits, 64)
	for w := 0; w < 2; w++ {
		if bits[0][w] != ^uint64(0) {
			t.Fatalf("word %d = %#x after accumulating two full-hit ranges", w, bits[0][w])
		}
	}
	r.SubCmpMultiBits(a, d, nil, nil, 0) // zero comparands: must not panic
}

// TestSubCmpMultiBitsUnalignedBases sweeps every base alignment within a
// word (plus a few word offsets) and checks the prologue + word body +
// epilogue decomposition against a reference scalar evaluation. This
// pins the unaligned fast path: before the prologue existed, any
// unaligned base fell back to the fully scalar loop (correct but slow),
// so only correctness was covered — now the word body must also engage
// mid-polynomial without setting or dropping a single bit.
func TestSubCmpMultiBitsUnalignedBases(t *testing.T) {
	for _, fam := range addCmpFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := MustNew(fam.n, fam.q)
			src := rng.NewSourceFromString("subcmp-unaligned-" + fam.name)
			a, d := r.NewPoly(), r.NewPoly()
			r.UniformPoly(src, a)
			r.UniformPoly(src, d)
			diff := r.NewPoly()
			r.Sub(a, d, diff)
			rhs := []Poly{r.NewPoly(), r.NewPoly()}
			for v := range rhs {
				r.UniformPoly(src, rhs[v])
				for i := range rhs[v] {
					if src.Uniform(3) == 0 {
						rhs[v][i] = diff[i]
					}
				}
			}
			bases := make([]int, 0, 70)
			for b := 0; b < 66; b++ {
				bases = append(bases, b)
			}
			bases = append(bases, 127, 128, 1000, 64*37+13)
			for _, base := range bases {
				words := (base + fam.n + 63) / 64
				bits := make([][]uint64, len(rhs))
				for v := range bits {
					bits[v] = make([]uint64, words)
				}
				r.SubCmpMultiBits(a, d, rhs, bits, base)
				for v := range rhs {
					for i := 0; i < fam.n; i++ {
						want := diff[i] == rhs[v][i]
						got := bits[v][(base+i)>>6]&(1<<(uint(base+i)&63)) != 0
						if got != want {
							t.Fatalf("base %d rhs %d coeff %d: got %v want %v", base, v, i, got, want)
						}
					}
					// Words below the base range must stay untouched.
					for w := 0; w < base>>6; w++ {
						if bits[v][w] != 0 {
							t.Fatalf("base %d rhs %d: word %d below base written", base, v, w)
						}
					}
				}
			}
		})
	}
}

// BenchmarkSubCmpMultiBits measures the residue-fused kernel at the
// comparand counts that matter for serving (R shift variants per query),
// reporting coefficients/sec — the figure of merit for ROADMAP item 1's
// vectorized-kernel work, where ns/op alone hides the multi-lane
// amortisation. The aligned case is the arena hot path; the unaligned
// case exercises the scalar-prologue + word-body split.
func BenchmarkSubCmpMultiBits(b *testing.B) {
	const n = 4096
	r := MustNew(n, 1<<32)
	src := rng.NewSourceFromString("subcmp-bench")
	a, d := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src, a)
	r.UniformPoly(src, d)
	const maxR = 16
	rhs := make([]Poly, maxR)
	for v := range rhs {
		rhs[v] = r.NewPoly()
		r.UniformPoly(src, rhs[v])
	}
	for _, R := range []int{1, 4, 16} {
		for _, base := range []int{0, 37} {
			name := "R=" + itoa(R)
			if base != 0 {
				name += "/unaligned"
			}
			b.Run(name, func(b *testing.B) {
				bits := make([][]uint64, R)
				for v := range bits {
					bits[v] = make([]uint64, (base+n+63)/64)
				}
				b.SetBytes(2 * n * 8) // a and d, each streamed once per call
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.SubCmpMultiBits(a, d, rhs[:R], bits, base)
				}
				coeffs := float64(n) * float64(R) * float64(b.N)
				b.ReportMetric(coeffs/b.Elapsed().Seconds(), "coeffs/s")
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
