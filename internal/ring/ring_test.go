package ring

import (
	"testing"
	"testing/quick"

	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

// Test rings: the paper's modulus family (power of two) and a generic prime
// to keep the implementation honest about modulus assumptions.
var testRings = []struct {
	name string
	n    int
	q    uint64
}{
	{"paper-small", 16, 1 << 32},
	{"paper-n64", 64, 1 << 32},
	{"pow2-q20", 32, 1 << 20},
	{"prime", 16, 65537},
	{"prime-large", 64, (1 << 45) + 59}, // not prime, but odd and generic
}

func randomPoly(r *Ring, src *rng.Source) Poly {
	p := r.NewPoly()
	r.UniformPoly(src, p)
	return p
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n  int
		q  uint64
		ok bool
	}{
		{16, 1 << 32, true},
		{1024, 1 << 32, true},
		{15, 1 << 32, false},       // not a power of two
		{2, 1 << 32, false},        // too small
		{1 << 15, 1 << 32, false},  // too large
		{16, 1, false},             // modulus too small
		{16, (1 << 57) + 5, false}, // generic modulus too large
		{16, 1 << 63, true},        // largest power-of-two modulus
		{16, 65537, true},
	}
	for _, c := range cases {
		_, err := New(c.n, c.q)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d): err=%v, want ok=%v", c.n, c.q, err, c.ok)
		}
	}
}

func TestAddSubNegIdentities(t *testing.T) {
	for _, tc := range testRings {
		t.Run(tc.name, func(t *testing.T) {
			r := MustNew(tc.n, tc.q)
			src := rng.NewSourceFromString("ring-" + tc.name)
			a := randomPoly(r, src)
			b := randomPoly(r, src)
			sum := r.NewPoly()
			r.Add(a, b, sum)
			back := r.NewPoly()
			r.Sub(sum, b, back)
			if !r.Equal(back, a) {
				t.Fatal("(a+b)-b != a")
			}
			negA := r.NewPoly()
			r.Neg(a, negA)
			zero := r.NewPoly()
			r.Add(a, negA, zero)
			if !r.IsZero(zero) {
				t.Fatal("a + (-a) != 0")
			}
			// Commutativity.
			sum2 := r.NewPoly()
			r.Add(b, a, sum2)
			if !r.Equal(sum, sum2) {
				t.Fatal("addition not commutative")
			}
		})
	}
}

func TestAddAliasing(t *testing.T) {
	r := MustNew(16, 1<<32)
	src := rng.NewSourceFromString("alias")
	a := randomPoly(r, src)
	b := randomPoly(r, src)
	want := r.NewPoly()
	r.Add(a, b, want)
	got := r.Clone(a)
	r.Add(got, b, got) // out aliases a
	if !r.Equal(got, want) {
		t.Fatal("Add with aliased output differs")
	}
}

func TestMulAgainstSchoolbook(t *testing.T) {
	for _, tc := range testRings {
		t.Run(tc.name, func(t *testing.T) {
			r := MustNew(tc.n, tc.q)
			src := rng.NewSourceFromString("mul-" + tc.name)
			for trial := 0; trial < 5; trial++ {
				a := randomPoly(r, src)
				b := randomPoly(r, src)
				ref := r.NewPoly()
				r.MulSchoolbook(a, b, ref)
				got := r.NewPoly()
				r.Mul(a, b, got)
				if !r.Equal(got, ref) {
					t.Fatalf("Mul != MulSchoolbook (trial %d)", trial)
				}
				if r.QIsPow2() {
					kar := r.NewPoly()
					r.MulKaratsuba(a, b, kar)
					if !r.Equal(kar, ref) {
						t.Fatalf("MulKaratsuba != MulSchoolbook (trial %d)", trial)
					}
				}
			}
		})
	}
}

func TestMulByXIsNegacyclicShift(t *testing.T) {
	// Multiplying by X rotates coefficients up and negates the wrapped one:
	// (sum a_i X^i) * X = -a_{n-1} + a_0 X + ... + a_{n-2} X^{n-1}.
	for _, tc := range testRings {
		r := MustNew(tc.n, tc.q)
		src := rng.NewSourceFromString("negacyclic-" + tc.name)
		a := randomPoly(r, src)
		x := r.NewPoly()
		x[1] = 1
		got := r.NewPoly()
		r.Mul(a, x, got)
		want := r.NewPoly()
		want[0] = r.reduce(0 - a[r.N()-1])
		if !r.QIsPow2() && a[r.N()-1] != 0 {
			want[0] = r.Q() - a[r.N()-1]
		}
		for i := 1; i < r.N(); i++ {
			want[i] = a[i-1]
		}
		if !r.Equal(got, want) {
			t.Fatalf("%s: X-shift mismatch", tc.name)
		}
	}
}

func TestMulRingAxioms(t *testing.T) {
	for _, tc := range testRings {
		t.Run(tc.name, func(t *testing.T) {
			r := MustNew(tc.n, tc.q)
			src := rng.NewSourceFromString("axioms-" + tc.name)
			a := randomPoly(r, src)
			b := randomPoly(r, src)
			c := randomPoly(r, src)

			ab := r.NewPoly()
			ba := r.NewPoly()
			r.Mul(a, b, ab)
			r.Mul(b, a, ba)
			if !r.Equal(ab, ba) {
				t.Fatal("multiplication not commutative")
			}

			// Distributivity: a*(b+c) == a*b + a*c.
			bc := r.NewPoly()
			r.Add(b, c, bc)
			lhs := r.NewPoly()
			r.Mul(a, bc, lhs)
			ac := r.NewPoly()
			r.Mul(a, c, ac)
			rhs := r.NewPoly()
			r.Add(ab, ac, rhs)
			if !r.Equal(lhs, rhs) {
				t.Fatal("multiplication not distributive over addition")
			}

			// Associativity: (a*b)*c == a*(b*c).
			abc1 := r.NewPoly()
			r.Mul(ab, c, abc1)
			bcProd := r.NewPoly()
			r.Mul(b, c, bcProd)
			abc2 := r.NewPoly()
			r.Mul(a, bcProd, abc2)
			if !r.Equal(abc1, abc2) {
				t.Fatal("multiplication not associative")
			}

			// Multiplicative identity.
			one := r.NewPoly()
			one[0] = 1
			id := r.NewPoly()
			r.Mul(a, one, id)
			if !r.Equal(id, a) {
				t.Fatal("1 is not a multiplicative identity")
			}
		})
	}
}

func TestMulScalar(t *testing.T) {
	for _, tc := range testRings {
		r := MustNew(tc.n, tc.q)
		src := rng.NewSourceFromString("scalar-" + tc.name)
		a := randomPoly(r, src)
		s := src.Uniform(r.Q())
		// Scalar multiplication must agree with ring multiplication by
		// the constant polynomial s.
		sPoly := r.NewPoly()
		sPoly[0] = s
		want := r.NewPoly()
		r.MulSchoolbook(a, sPoly, want)
		got := r.NewPoly()
		r.MulScalar(a, s, got)
		if !r.Equal(got, want) {
			t.Fatalf("%s: MulScalar mismatch", tc.name)
		}
	}
}

func TestCenterLiftRoundtrip(t *testing.T) {
	for _, tc := range testRings {
		r := MustNew(tc.n, tc.q)
		src := rng.NewSourceFromString("lift-" + tc.name)
		a := randomPoly(r, src)
		lift := make([]int64, r.N())
		r.CenterLift(a, lift)
		half := int64(r.Q() / 2)
		for i, v := range lift {
			if v > half || v <= -half-1 {
				t.Fatalf("%s: lift[%d]=%d outside (-q/2, q/2]", tc.name, i, v)
			}
		}
		back := r.NewPoly()
		r.FromCentered(lift, back)
		if !r.Equal(back, a) {
			t.Fatalf("%s: CenterLift/FromCentered roundtrip failed", tc.name)
		}
	}
}

func TestInfNormCentered(t *testing.T) {
	r := MustNew(16, 1<<32)
	a := r.NewPoly()
	a[3] = 5
	a[7] = r.Q() - 2 // centered value -2
	if got := r.InfNormCentered(a); got != 5 {
		t.Fatalf("InfNormCentered = %d, want 5", got)
	}
	a[9] = r.Q() - 100 // centered value -100
	if got := r.InfNormCentered(a); got != 100 {
		t.Fatalf("InfNormCentered = %d, want 100", got)
	}
}

func TestExactConvolutionMatchesModular(t *testing.T) {
	// Reducing the exact integer convolution mod q must equal the modular
	// product. This ties the BFV tensoring path to the ring product.
	for _, tc := range testRings {
		t.Run(tc.name, func(t *testing.T) {
			r := MustNew(tc.n, tc.q)
			src := rng.NewSourceFromString("exact-" + tc.name)
			a := randomPoly(r, src)
			b := randomPoly(r, src)
			la := make([]int64, r.N())
			lb := make([]int64, r.N())
			r.CenterLift(a, la)
			r.CenterLift(b, lb)
			conv := make([]mathutil.Int128, r.N())
			r.NegacyclicConvolveExact(la, lb, conv)
			got := r.NewPoly()
			for i := range got {
				got[i] = reduceInt128(conv[i], r.Q())
			}
			want := r.NewPoly()
			r.MulSchoolbook(a, b, want)
			if !r.Equal(got, want) {
				t.Fatal("exact convolution mod q != modular product")
			}
		})
	}
}

func TestSamplers(t *testing.T) {
	r := MustNew(64, 1<<32)
	src := rng.NewSourceFromString("samplers")
	tern := r.NewPoly()
	r.TernaryPoly(src, tern)
	for i, c := range tern {
		if c != 0 && c != 1 && c != r.Q()-1 {
			t.Fatalf("ternary coefficient %d = %d", i, c)
		}
	}
	errs := r.NewPoly()
	r.CBDPoly(src, 3, errs)
	for i, c := range errs {
		abs := c
		if c > r.Q()/2 {
			abs = r.Q() - c
		}
		if abs > 3 {
			t.Fatalf("CBD coefficient %d = %d exceeds eta", i, c)
		}
	}
	u := r.NewPoly()
	r.UniformPoly(src, u)
	for i, c := range u {
		if c >= r.Q() {
			t.Fatalf("uniform coefficient %d = %d out of range", i, c)
		}
	}
}

func TestScaleRoundModProperty(t *testing.T) {
	// For q = 2^32, t = 2^16: round(t*x/q) of x = q/t * m (exactly scaled
	// message) must recover m mod t.
	r := MustNew(16, 1<<32)
	const tMod = 1 << 16
	delta := r.Q() / tMod
	f := func(raw []uint16) bool {
		m := make([]uint64, r.N())
		for i := range m {
			if i < len(raw) {
				m[i] = uint64(raw[i])
			}
		}
		x := make([]mathutil.Int128, r.N())
		for i := range x {
			x[i] = mathutil.Int128FromUint64(delta * m[i])
		}
		out := r.NewPoly()
		r.ScaleRoundMod(x, tMod, tMod, out)
		for i := range out {
			if out[i] != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
