// Package ring implements arithmetic in the polynomial quotient ring
// R_q = Z_q[X]/(X^n + 1) used by the BFV homomorphic encryption scheme
// (§2.1 of the CIPHERMATCH paper). n is a power of two; q is the ciphertext
// coefficient modulus.
//
// Two modulus families are supported:
//
//   - power-of-two q (the paper's configuration: q = 2^32): reductions are
//     bit masks and the rescaling divisions are exact shifts;
//   - arbitrary q < 2^57: reductions use 128-bit remainders. This family
//     exists for the larger-parameter presets and for property tests that
//     check the implementation is not accidentally specialised to 2^32.
//
// Multiplication is negacyclic convolution (X^n = -1). Three algorithms are
// provided: schoolbook (any modulus), Karatsuba (power-of-two moduli, used
// by default there), and an exact integer convolution over centered lifts
// (needed by the BFV tensoring step, which must not reduce mod q before
// rescaling).
package ring

import (
	"errors"
	"fmt"
	"math/bits"
)

// Poly is a polynomial of degree < n with coefficients in [0, q). The slice
// length always equals the ring degree n.
type Poly []uint64

// Ring holds the parameters of R_q and provides arithmetic on Poly values.
// All binary operations allow aliasing between inputs and output unless
// noted otherwise.
type Ring struct {
	n       int
	q       uint64
	logN    uint
	qIsPow2 bool
	logQ    uint   // valid when qIsPow2
	mask    uint64 // q-1 when qIsPow2

	// karatsubaThreshold is the sub-problem size below which Karatsuba
	// recursion falls back to schoolbook multiplication.
	karatsubaThreshold int

	// NTT tables, built lazily for prime moduli with q ≡ 1 (mod 2n).
	ntt        *ntt
	nttChecked bool
}

// MaxGenericQ bounds non-power-of-two moduli so that schoolbook accumulation
// of n <= 2^14 products of (q-1)^2 fits in 128 bits.
const MaxGenericQ = uint64(1) << 57

// New creates a Ring with degree n (a power of two, 4 <= n <= 2^14) and
// modulus q (2 <= q; either a power of two up to 2^63, or any value below
// MaxGenericQ).
func New(n int, q uint64) (*Ring, error) {
	if n < 4 || n > 1<<14 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree n=%d must be a power of two in [4, 2^14]", n)
	}
	if q < 2 {
		return nil, errors.New("ring: modulus must be at least 2")
	}
	r := &Ring{
		n:                  n,
		q:                  q,
		logN:               uint(bits.TrailingZeros(uint(n))),
		karatsubaThreshold: 32,
	}
	if q&(q-1) == 0 {
		r.qIsPow2 = true
		r.logQ = uint(bits.TrailingZeros64(q))
		r.mask = q - 1
		if r.logQ > 63 {
			return nil, errors.New("ring: power-of-two modulus must be at most 2^63")
		}
	} else if q >= MaxGenericQ {
		return nil, fmt.Errorf("ring: non-power-of-two modulus must be below 2^57, got %d", q)
	}
	return r, nil
}

// MustNew is New but panics on error; for tests and package-level presets.
func MustNew(n int, q uint64) *Ring {
	r, err := New(n, q)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the ring degree.
//
//cm:hotpath
func (r *Ring) N() int { return r.n }

// Q returns the coefficient modulus.
func (r *Ring) Q() uint64 { return r.q }

// QIsPow2 reports whether the modulus is a power of two.
func (r *Ring) QIsPow2() bool { return r.qIsPow2 }

// LogQ returns ceil(log2 q).
func (r *Ring) LogQ() uint {
	if r.qIsPow2 {
		return r.logQ
	}
	return uint(bits.Len64(r.q - 1))
}

// NewPoly allocates a zero polynomial.
func (r *Ring) NewPoly() Poly { return make(Poly, r.n) }

// Copy copies src into dst.
func (r *Ring) Copy(dst, src Poly) { copy(dst, src) }

// Clone returns a fresh copy of a.
func (r *Ring) Clone(a Poly) Poly {
	out := r.NewPoly()
	copy(out, a)
	return out
}

// Equal reports whether a and b are identical polynomials.
func (r *Ring) Equal(a, b Poly) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether a is the zero polynomial.
func (r *Ring) IsZero(a Poly) bool {
	for _, c := range a {
		if c != 0 {
			return false
		}
	}
	return true
}

// reduce maps an arbitrary 64-bit value into [0, q).
func (r *Ring) reduce(x uint64) uint64 {
	if r.qIsPow2 {
		return x & r.mask
	}
	return x % r.q
}

// Reduce reduces every coefficient of a into [0, q) in place. Polynomials
// produced by this package are always reduced; Reduce is for values built
// coefficient-by-coefficient by callers.
func (r *Ring) Reduce(a Poly) {
	for i := range a {
		a[i] = r.reduce(a[i])
	}
}

// Add sets out = a + b.
func (r *Ring) Add(a, b, out Poly) {
	if r.qIsPow2 {
		for i := range out {
			out[i] = (a[i] + b[i]) & r.mask
		}
		return
	}
	q := r.q
	for i := range out {
		s := a[i] + b[i] // < 2^58, no overflow
		if s >= q {
			s -= q
		}
		out[i] = s
	}
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out Poly) {
	if r.qIsPow2 {
		for i := range out {
			out[i] = (a[i] - b[i]) & r.mask
		}
		return
	}
	q := r.q
	for i := range out {
		d := a[i] + q - b[i]
		if d >= q {
			d -= q
		}
		out[i] = d
	}
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out Poly) {
	if r.qIsPow2 {
		for i := range out {
			out[i] = (-a[i]) & r.mask
		}
		return
	}
	q := r.q
	for i := range out {
		if a[i] == 0 {
			out[i] = 0
		} else {
			out[i] = q - a[i]
		}
	}
}

// MulScalar sets out = s * a for a scalar s (reduced internally).
func (r *Ring) MulScalar(a Poly, s uint64, out Poly) {
	s = r.reduce(s)
	if r.qIsPow2 {
		for i := range out {
			out[i] = (a[i] * s) & r.mask
		}
		return
	}
	for i := range out {
		hi, lo := bits.Mul64(a[i], s)
		out[i] = bits.Rem64(hi, lo, r.q)
	}
}

// CenterLift writes the centered representative of each coefficient of a
// into out: values in (-q/2, q/2], as required before exact tensoring.
func (r *Ring) CenterLift(a Poly, out []int64) {
	half := r.q / 2
	q := r.q
	for i := range a {
		if a[i] > half {
			out[i] = int64(a[i]) - int64(q)
		} else {
			out[i] = int64(a[i])
		}
	}
}

// FromCentered reduces centered values into [0, q).
func (r *Ring) FromCentered(in []int64, out Poly) {
	q := int64(r.q)
	for i := range in {
		v := in[i] % q
		if v < 0 {
			v += q
		}
		out[i] = uint64(v)
	}
}

// InfNormCentered returns the maximum absolute value of the centered
// representatives of a's coefficients.
func (r *Ring) InfNormCentered(a Poly) uint64 {
	half := r.q / 2
	var m uint64
	for _, c := range a {
		abs := c
		if c > half {
			abs = r.q - c
		}
		if abs > m {
			m = abs
		}
	}
	return m
}
