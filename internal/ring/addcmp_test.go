package ring

import (
	"fmt"
	"testing"

	"ciphermatch/internal/rng"
)

// addCmpFamilies covers both modulus families (the paper's q = 2^32 and
// a generic odd q) at degrees on both sides of the 64-coefficient
// word-at-a-time fast path.
var addCmpFamilies = []struct {
	name string
	n    int
	q    uint64
}{
	{"pow2-q32-n64", 64, 1 << 32},
	{"pow2-q32-n1024", 1024, 1 << 32},
	{"pow2-q32-n16", 16, 1 << 32},
	{"generic-q40-n64", 64, (1 << 40) + 15},
	{"generic-q40-n16", 16, (1 << 40) + 15},
	{"generic-prime-n128", 128, (1 << 45) - 55}, // 2^45-55 is prime
}

// TestAddCmpBitsMatchesAddCompare is the property test of the fused
// kernel: AddCmpBits must agree bit for bit with the unfused
// Add-then-compare pipeline on random polynomials, at aligned and
// unaligned base offsets, for both modulus families.
func TestAddCmpBitsMatchesAddCompare(t *testing.T) {
	for _, fam := range addCmpFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := MustNew(fam.n, fam.q)
			src := rng.NewSourceFromString("addcmp-" + fam.name)
			for trial := 0; trial < 32; trial++ {
				a, b, tok := r.NewPoly(), r.NewPoly(), r.NewPoly()
				r.UniformPoly(src, a)
				r.UniformPoly(src, b)
				r.UniformPoly(src, tok)
				// Force hits at random positions: a random token rarely
				// equals the sum, so plant exact matches.
				sum := r.NewPoly()
				r.Add(a, b, sum)
				for i := range tok {
					if src.Uniform(4) == 0 {
						tok[i] = sum[i]
					}
				}
				for _, base := range []int{0, 64, fam.n, 37} {
					words := make([]uint64, (base+fam.n+63)/64)
					r.AddCmpBits(a, b, tok, words, base)
					for i := 0; i < fam.n; i++ {
						want := sum[i] == tok[i]
						got := words[(base+i)>>6]&(1<<(uint(base+i)&63)) != 0
						if got != want {
							t.Fatalf("trial %d base %d coeff %d: fused=%v, add+compare=%v",
								trial, base, i, got, want)
						}
					}
					// No bit outside [base, base+n) may be touched.
					ones := 0
					for _, w := range words {
						for ; w != 0; w &= w - 1 {
							ones++
						}
					}
					want := 0
					for i := range sum {
						if sum[i] == tok[i] {
							want++
						}
					}
					if ones != want {
						t.Fatalf("trial %d base %d: %d bits set, want %d", trial, base, ones, want)
					}
				}
			}
		})
	}
}

// TestCmpEqScalarBits checks the standalone compare kernel against its
// scalar loop.
func TestCmpEqScalarBits(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			src := rng.NewSourceFromString(fmt.Sprintf("cmpeq-%d", n))
			a := make(Poly, n)
			for i := range a {
				a[i] = src.Uniform(8)
			}
			for _, base := range []int{0, 64, 13} {
				scalar := make([]uint64, (base+n+63)/64)
				CmpEqScalarBits(a, 3, scalar, base)
				for i := 0; i < n; i++ {
					want := a[i] == 3
					got := scalar[(base+i)>>6]&(1<<(uint(base+i)&63)) != 0
					if got != want {
						t.Fatalf("scalar base %d coeff %d: got %v, want %v", base, i, got, want)
					}
				}
			}
		})
	}
}
