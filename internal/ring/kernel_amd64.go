//go:build amd64

package ring

// AVX2 kernel path: the block primitives live in kernel_amd64.s and
// operate on 64-coefficient runs (one bitset word of lanes, 16 vector
// ops of 4 uint64 lanes each). The drivers below keep every piece of
// policy in Go — prologue/epilogue alignment handling, the per-word
// store elision, the rhs fan-out — and hand the asm nothing but dense
// arithmetic over memory the driver has already proven in bounds
// (i+64 <= len, and the documented rhs/bits length contract). The
// stubs are //go:noescape so the difference buffer stays on the
// driver's stack, keeping the 0 allocs/op pin honest.

// archAVX2Supported reports CPU + OS support for the AVX2 kernels:
// OSXSAVE and AVX in CPUID.1:ECX, XMM+YMM state enabled in XCR0, and
// AVX2 in CPUID.7.0:EBX — the same ladder the Go runtime walks for
// internal/cpu.
func archAVX2Supported() bool {
	maxID, _, _, _ := kernelCPUID(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := kernelCPUID(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := kernelXGETBV0()
	if xcr0&6 != 6 { // XMM and YMM state must both be OS-managed
		return false
	}
	_, ebx7, _, _ := kernelCPUID(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// kernelCPUID executes CPUID with the given leaf and subleaf.
func kernelCPUID(op, sub uint32) (eax, ebx, ecx, edx uint32)

// kernelXGETBV0 reads XCR0 (requires OSXSAVE, checked first).
func kernelXGETBV0() (eax, edx uint32)

// diffPow2Block64AVX2 stores (a[k]-d[k]) & mask into dst[k] for k in
// [0, 64). All three pointers address 64 readable (dst: writable)
// coefficients.
//
//cm:hotpath
//go:noescape
func diffPow2Block64AVX2(dst, a, d *uint64, mask uint64)

// diffGenericBlock64AVX2 stores (a[k]+q-d[k]) mod q into dst[k] for k
// in [0, 64), for q < 2^57 with a, d already reduced. The conditional
// subtraction is a sign-flipped signed compare (no unsigned 64-bit
// compare in AVX2), valid because both t < 2^58 and q-1 < 2^63.
//
//cm:hotpath
//go:noescape
func diffGenericBlock64AVX2(dst, a, d *uint64, q uint64)

// sumPow2Block64AVX2 stores (a[k]+b[k]) & mask into dst[k] for k in
// [0, 64).
//
//cm:hotpath
//go:noescape
func sumPow2Block64AVX2(dst, a, b *uint64, mask uint64)

// sumGenericBlock64AVX2 stores (a[k]+b[k]) mod q into dst[k] for k in
// [0, 64), same contract as diffGenericBlock64AVX2.
//
//cm:hotpath
//go:noescape
func sumGenericBlock64AVX2(dst, a, b *uint64, q uint64)

// cmpEqBlock64AVX2 returns the packed equality word of two
// 64-coefficient runs: bit k set iff x[k] == y[k].
//
//cm:hotpath
//go:noescape
func cmpEqBlock64AVX2(x, y *uint64) uint64

// cmpEqScalarBlock64AVX2 returns the packed equality word of a
// 64-coefficient run against a broadcast scalar: bit k set iff
// x[k] == v.
//
//cm:hotpath
//go:noescape
func cmpEqScalarBlock64AVX2(x *uint64, v uint64) uint64

// subCmpAVX2 is SubCmpMultiBits on the assembly primitives: the
// difference block lands in a stack buffer via one vector pass, then
// each comparand's 64 compares collapse into one word via VPCMPEQQ +
// sign-mask extraction.
//
//cm:hotpath
func (r *Ring) subCmpAVX2(a, d Poly, rhs []Poly, bits [][]uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.subCmpScalar(a, d, rhs, bits, base, 0, pro)
		i = pro
	}
	var diff [64]uint64
	for ; i+64 <= n; i += 64 {
		if r.qIsPow2 {
			diffPow2Block64AVX2(&diff[0], &a[i], &d[i], r.mask)
		} else {
			diffGenericBlock64AVX2(&diff[0], &a[i], &d[i], r.q)
		}
		wi := (base + i) >> 6
		for v := range rhs {
			w := cmpEqBlock64AVX2(&diff[0], &rhs[v][i])
			//cm:allow ctbranch -- aggregated hit-word store elision: reveals only word-granular occupancy, and is the kernel's read-stream guarantee
			if w != 0 {
				bits[v][wi] |= w
			}
		}
	}
	r.subCmpScalar(a, d, rhs, bits, base, i, n)
}

// addCmpAVX2 is AddCmpBits on the assembly primitives.
//
//cm:hotpath
func (r *Ring) addCmpAVX2(a, b, tok Poly, bits []uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		r.addCmpScalar(a, b, tok, bits, base, 0, pro)
		i = pro
	}
	var sum [64]uint64
	for ; i+64 <= n; i += 64 {
		if r.qIsPow2 {
			sumPow2Block64AVX2(&sum[0], &a[i], &b[i], r.mask)
		} else {
			sumGenericBlock64AVX2(&sum[0], &a[i], &b[i], r.q)
		}
		w := cmpEqBlock64AVX2(&sum[0], &tok[i])
		//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
		if w != 0 {
			bits[(base+i)>>6] |= w
		}
	}
	r.addCmpScalar(a, b, tok, bits, base, i, n)
}

// cmpEqScalarAVX2 is CmpEqScalarBits on the assembly primitives.
//
//cm:hotpath
func cmpEqScalarAVX2(a Poly, v uint64, bits []uint64, base int) {
	n := len(a)
	i := 0
	if rem := base & 63; rem != 0 {
		pro := 64 - rem
		if pro > n {
			pro = n
		}
		cmpEqScalarEdge(a, v, bits, base, 0, pro)
		i = pro
	}
	for ; i+64 <= n; i += 64 {
		w := cmpEqScalarBlock64AVX2(&a[i], v)
		//cm:allow ctbranch -- aggregated hit-word store elision keeps misses a pure read stream
		if w != 0 {
			bits[(base+i)>>6] |= w
		}
	}
	cmpEqScalarEdge(a, v, bits, base, i, n)
}
