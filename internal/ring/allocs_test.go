package ring

import (
	"testing"

	"ciphermatch/internal/rng"
)

// The search kernels are cmvet //cm:hotpath functions: the hotpath
// analyzer proves there are no allocation *sites* in their bodies, and
// these tests close the loop at runtime — zero allocations per call,
// for both modulus families, so a regression that sneaks an allocation
// past the static check (e.g. an interface conversion in a callee)
// still fails CI.

func allocFixture(t *testing.T, n int, q uint64, numRHS int) (*Ring, Poly, Poly, []Poly, [][]uint64) {
	t.Helper()
	r := MustNew(n, q)
	src := rng.NewSourceFromString("ring-allocs")
	a, d := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src, a)
	r.UniformPoly(src, d)
	rhs := make([]Poly, numRHS)
	bits := make([][]uint64, numRHS)
	for v := range rhs {
		rhs[v] = r.NewPoly()
		r.UniformPoly(src, rhs[v])
		// Sized for the unaligned-base calls below: base+n bits.
		bits[v] = make([]uint64, (64+n+63)/64)
	}
	return r, a, d, rhs, bits
}

// The pins run under every available dispatch path (generic, unrolled,
// and avx2 where the host supports it): the unrolled path must not let
// a re-slice escape, and the assembly drivers' 64-word stack buffers
// must stay stack-allocated (//go:noescape on the stubs).

func TestSubCmpMultiBitsZeroAllocs(t *testing.T) {
	for _, p := range AvailableKernels() {
		t.Run(p.String(), func(t *testing.T) {
			for _, fam := range addCmpFamilies {
				t.Run(fam.name, func(t *testing.T) {
					r, a, d, rhs, bits := allocFixture(t, fam.n, fam.q, 3)
					withKernel(t, p, func() {
						if avg := testing.AllocsPerRun(100, func() {
							r.SubCmpMultiBits(a, d, rhs, bits, 0)
						}); avg != 0 {
							t.Fatalf("SubCmpMultiBits allocates %.1f times per call, want 0", avg)
						}
						// Unaligned base takes the scalar prologue/epilogue path too.
						if avg := testing.AllocsPerRun(100, func() {
							r.SubCmpMultiBits(a, d, rhs, bits, 37)
						}); avg != 0 {
							t.Fatalf("SubCmpMultiBits (unaligned) allocates %.1f times per call, want 0", avg)
						}
					})
				})
			}
		})
	}
}

func TestAddCmpBitsZeroAllocs(t *testing.T) {
	for _, p := range AvailableKernels() {
		t.Run(p.String(), func(t *testing.T) {
			for _, fam := range addCmpFamilies {
				t.Run(fam.name, func(t *testing.T) {
					r, a, d, rhs, bits := allocFixture(t, fam.n, fam.q, 1)
					withKernel(t, p, func() {
						if avg := testing.AllocsPerRun(100, func() {
							r.AddCmpBits(a, d, rhs[0], bits[0], 0)
						}); avg != 0 {
							t.Fatalf("AddCmpBits allocates %.1f times per call, want 0", avg)
						}
						if avg := testing.AllocsPerRun(100, func() {
							r.AddCmpBits(a, d, rhs[0], bits[0], 37)
						}); avg != 0 {
							t.Fatalf("AddCmpBits (unaligned) allocates %.1f times per call, want 0", avg)
						}
						if avg := testing.AllocsPerRun(100, func() {
							CmpEqScalarBits(a, rhs[0][0], bits[0], 5)
						}); avg != 0 {
							t.Fatalf("CmpEqScalarBits allocates %.1f times per call, want 0", avg)
						}
					})
				})
			}
		})
	}
}
