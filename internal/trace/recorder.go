package trace

import (
	"sync/atomic"
	"time"

	"ciphermatch/internal/metrics"
)

// DefaultSlowThreshold is the slow-query capture threshold used when a
// Recorder is built with no explicit threshold: generous enough that a
// healthy in-memory search never trips it, tight enough that a reload
// stall or a saturated coalescing window does.
const DefaultSlowThreshold = 50 * time.Millisecond

// Recorder owns the server's trace retention and aggregation: every
// finished trace goes into the recent ring, traces at or over the slow
// threshold additionally go into the slow ring (which therefore keeps
// slow-query history long after fast traffic has lapped the recent
// ring), and per-stage latencies fold into the metrics registry's
// stage histograms. Finish is the only write entry point and costs
// zero heap allocations.
type Recorder struct {
	recent *Ring
	slow   *Ring
	slowNS atomic.Int64
	seq    atomic.Uint64

	// Metric handles are resolved once in BindMetrics and recorded
	// through lock-free; a nil-bound recorder just skips aggregation.
	stageHists [NumStages]*metrics.Histogram
	totalHist  *metrics.Histogram
	slowTotal  *metrics.Counter
	tenantDur  *metrics.HistogramVec
}

// NewRecorder creates a recorder with the given ring capacity (rounded
// up to a power of two; the slow ring gets the same capacity) and
// slow-query threshold (<= 0 selects DefaultSlowThreshold).
func NewRecorder(capacity int, slowThreshold time.Duration) *Recorder {
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	r := &Recorder{recent: NewRing(capacity), slow: NewRing(capacity)}
	r.slowNS.Store(int64(slowThreshold))
	return r
}

// BindMetrics wires the recorder's aggregation into a registry:
//
//	stage_latency_ns{stage=...}   per-stage latency histograms
//	request_latency_ns            end-to-end latency histogram
//	traces_slow_total             slow-threshold captures
//	tenant_latency_ns{db=...}     per-tenant end-to-end latency (the
//	                              "duration" leg of the RED metrics)
//
// Handles are cached here so Finish never touches a registry map.
func (r *Recorder) BindMetrics(reg *metrics.Registry) {
	sv := reg.HistogramVec("stage_latency_ns", "stage")
	for i := 0; i < NumStages; i++ {
		r.stageHists[i] = sv.With(Stage(i).String())
	}
	r.totalHist = reg.Histogram("request_latency_ns")
	r.slowTotal = reg.Counter("traces_slow_total")
	r.tenantDur = reg.HistogramVec("tenant_latency_ns", "db")
}

// TenantHistogram returns the cached per-tenant latency histogram for
// a database name, or nil when metrics are unbound. Callers (the
// connection handler) cache the result per tenant so Finish itself
// never performs the labeled lookup.
func (r *Recorder) TenantHistogram(db string) *metrics.Histogram {
	if r.tenantDur == nil {
		return nil
	}
	return r.tenantDur.With(db)
}

// SlowThreshold returns the current slow-capture threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNS.Load())
}

// SetSlowThreshold adjusts the slow-capture threshold at runtime.
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if d <= 0 {
		d = DefaultSlowThreshold
	}
	r.slowNS.Store(int64(d))
}

// NextID returns a fresh server-assigned trace ID for requests that
// arrived without the client trace extension.
func (r *Recorder) NextID() uint64 { return r.seq.Add(1) }

// Finish seals a trace and retains it: a completion sequence number is
// assigned, the trace is copied into the recent ring (and the slow ring
// when TotalNS meets the threshold), and stage/total latencies are
// folded into the bound histograms. The trace value stays caller-owned
// and reusable; tenantHist may be nil. Zero heap allocations.
func (r *Recorder) Finish(t *Trace, tenantHist *metrics.Histogram) {
	t.Seq = r.seq.Add(1)
	r.recent.Put(t)
	slow := t.TotalNS >= r.slowNS.Load()
	if slow {
		r.slow.Put(t)
	}
	if r.totalHist == nil {
		return
	}
	if slow {
		r.slowTotal.Inc()
	}
	for i := 0; i < NumStages; i++ {
		if ns := t.StageNS[i]; ns > 0 {
			r.stageHists[i].Observe(ns)
		}
	}
	r.totalHist.Observe(t.TotalNS)
	if tenantHist != nil {
		tenantHist.Observe(t.TotalNS)
	}
}

// Recent returns up to max recent traces, newest first (max <= 0 means
// the whole ring).
func (r *Recorder) Recent(max int) []Trace { return r.recent.Snapshot(max) }

// Slow returns up to max slow-threshold captures, newest first.
func (r *Recorder) Slow(max int) []Trace { return r.slow.Snapshot(max) }

// Counts reports how many traces have been recorded in total and how
// many tripped the slow threshold.
func (r *Recorder) Counts() (total, slow uint64) {
	return r.recent.Len(), r.slow.Len()
}
