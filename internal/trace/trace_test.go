package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ciphermatch/internal/metrics"
)

func TestStageCatalog(t *testing.T) {
	names := StageNames()
	if len(names) != NumStages {
		t.Fatalf("StageNames returned %d names, want %d", len(names), NumStages)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("stage %d has empty name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
		if Stage(i).String() != n {
			t.Fatalf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), n)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatalf("out-of-range stage should stringify as unknown")
	}
}

func TestTraceResetAndStamp(t *testing.T) {
	var tr Trace
	tr.ID = 7
	tr.Tenant = "db"
	tr.Stamp(StageArena, 100)
	tr.Stamp(StageArena, 50)
	tr.Stamp(StageDecode, 10)
	if tr.StageNS[StageArena] != 150 {
		t.Fatalf("Stamp should accumulate: got %d", tr.StageNS[StageArena])
	}
	if got := tr.StagesTotal(); got != 160 {
		t.Fatalf("StagesTotal = %d, want 160", got)
	}
	tr.Flags = FlagError | FlagCoalesced
	tr.Reset()
	if tr != (Trace{}) {
		t.Fatalf("Reset left residue: %+v", tr)
	}
}

func TestRingPutSnapshot(t *testing.T) {
	r := NewRing(3) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 1; i <= 12; i++ {
		tr := Trace{ID: uint64(i)}
		r.Put(&tr)
	}
	if r.Len() != 12 {
		t.Fatalf("Len = %d, want 12", r.Len())
	}
	got := r.Snapshot(0)
	if len(got) != 8 {
		t.Fatalf("Snapshot len = %d, want 8 (ring capacity)", len(got))
	}
	// Newest first: 12, 11, ..., 5.
	for i, tr := range got {
		if want := uint64(12 - i); tr.ID != want {
			t.Fatalf("Snapshot[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
	if got := r.Snapshot(3); len(got) != 3 || got[0].ID != 12 {
		t.Fatalf("Snapshot(3) = %v", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := Trace{Tenant: "db"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.ID = uint64(w*1_000_000 + i)
				tr.TotalNS = int64(tr.ID)
				r.Put(&tr)
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, tr := range r.Snapshot(0) {
			// Torn slots must be discarded, so every surviving trace is
			// internally consistent.
			if tr.TotalNS != int64(tr.ID) {
				t.Errorf("torn trace escaped snapshot: id=%d total=%d", tr.ID, tr.TotalNS)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecorderSlowCapture(t *testing.T) {
	rec := NewRecorder(16, 1*time.Millisecond)
	reg := metrics.NewRegistry()
	rec.BindMetrics(reg)
	th := rec.TenantHistogram("db0")

	fast := Trace{ID: 1, Tenant: "db0", TotalNS: int64(100 * time.Microsecond)}
	fast.Stamp(StageArena, 90_000)
	rec.Finish(&fast, th)
	slow := Trace{ID: 2, Tenant: "db0", TotalNS: int64(5 * time.Millisecond)}
	slow.Stamp(StageCoalesceWait, 4_000_000)
	rec.Finish(&slow, th)

	total, slowN := rec.Counts()
	if total != 2 || slowN != 1 {
		t.Fatalf("Counts = (%d, %d), want (2, 1)", total, slowN)
	}
	if got := rec.Slow(0); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("Slow ring = %v", got)
	}
	if fast.Seq == 0 || slow.Seq == 0 || fast.Seq == slow.Seq {
		t.Fatalf("Finish must assign distinct nonzero seqs: %d, %d", fast.Seq, slow.Seq)
	}

	kvs := reg.Snapshot()
	if v, ok := metrics.Lookup(kvs, "request_latency_ns_count"); !ok || v != 2 {
		t.Fatalf("request_latency_ns_count = %d, %v", v, ok)
	}
	if v, ok := metrics.Lookup(kvs, "traces_slow_total"); !ok || v != 1 {
		t.Fatalf("traces_slow_total = %d, %v", v, ok)
	}
	if v, ok := metrics.Lookup(kvs, `stage_latency_ns_count{stage="arena"}`); !ok || v != 1 {
		t.Fatalf("arena stage count = %d, %v", v, ok)
	}
	if v, ok := metrics.Lookup(kvs, `tenant_latency_ns_count{db="db0"}`); !ok || v != 2 {
		t.Fatalf("tenant latency count = %d, %v", v, ok)
	}
}

// TestTraceRecordAllocs pins the hot-path contract: finishing a trace
// (ring puts plus histogram aggregation) performs zero heap
// allocations per request.
func TestTraceRecordAllocs(t *testing.T) {
	rec := NewRecorder(1024, time.Millisecond)
	reg := metrics.NewRegistry()
	rec.BindMetrics(reg)
	th := rec.TenantHistogram("db0")
	var tr Trace
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Reset()
		tr.ID = 42
		tr.Tenant = "db0"
		tr.Stamp(StageRead, 1_000)
		tr.Stamp(StageDecode, 2_000)
		tr.Stamp(StageArena, 3_000_000) // trips the slow ring too
		tr.TotalNS = tr.StagesTotal()
		rec.Finish(&tr, th)
	})
	if allocs != 0 {
		t.Fatalf("trace record allocates: %v allocs/op, want 0", allocs)
	}
}

func TestTracesJSONShape(t *testing.T) {
	rec := NewRecorder(16, time.Millisecond)
	tr := Trace{ID: 9, Tenant: "tenant-a", Start: 1700000000000000000,
		ChunkStreams: 3, HomAdds: 128, Batch: 4, Flags: FlagCoalesced | FlagClientID}
	tr.Stamp(StageCoalesceWait, 250_000)
	tr.Stamp(StageArena, 1_750_000)
	tr.TotalNS = 2_100_000
	rec.Finish(&tr, nil)

	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var dump struct {
		Total  uint64 `json:"total"`
		Slow   uint64 `json:"slow"`
		SlowNS int64  `json:"slow_threshold_ns"`
		Traces []struct {
			ID           uint64           `json:"id"`
			Seq          uint64           `json:"seq"`
			Tenant       string           `json:"tenant"`
			StartUnixNS  int64            `json:"start_unix_ns"`
			TotalNS      int64            `json:"total_ns"`
			Stages       map[string]int64 `json:"stages"`
			ChunkStreams int64            `json:"chunk_streams"`
			HomAdds      int64            `json:"hom_adds"`
			Batch        int32            `json:"batch"`
			Coalesced    bool             `json:"coalesced"`
			ClientID     bool             `json:"client_id"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /traces JSON: %v", err)
	}
	if dump.Total != 1 || dump.Slow != 1 || dump.SlowNS != int64(time.Millisecond) {
		t.Fatalf("envelope = %+v", dump)
	}
	got := dump.Traces[0]
	if got.ID != 9 || got.Tenant != "tenant-a" || got.TotalNS != 2_100_000 ||
		got.ChunkStreams != 3 || got.HomAdds != 128 || got.Batch != 4 ||
		!got.Coalesced || !got.ClientID {
		t.Fatalf("trace JSON = %+v", got)
	}
	if got.Stages["coalesce_wait"] != 250_000 || got.Stages["arena"] != 1_750_000 {
		t.Fatalf("stages = %v", got.Stages)
	}
	if _, ok := got.Stages["read"]; ok {
		t.Fatalf("zero stages must be omitted, got %v", got.Stages)
	}

	// Bad ?n= is a 400, and the slow endpoint serves the slow ring.
	if resp, err := srv.Client().Get(srv.URL + "?n=bogus"); err != nil || resp.StatusCode != 400 {
		t.Fatalf("bad n: resp=%v err=%v", resp, err)
	} else {
		resp.Body.Close()
	}
	slowSrv := httptest.NewServer(rec.SlowHandler())
	defer slowSrv.Close()
	resp2, err := slowSrv.Client().Get(slowSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var slowDump struct {
		Traces []struct {
			ID uint64 `json:"id"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&slowDump); err != nil {
		t.Fatal(err)
	}
	if len(slowDump.Traces) != 1 || slowDump.Traces[0].ID != 9 {
		t.Fatalf("/traces/slow = %+v", slowDump)
	}
}

func BenchmarkTraceFinish(b *testing.B) {
	rec := NewRecorder(4096, DefaultSlowThreshold)
	reg := metrics.NewRegistry()
	rec.BindMetrics(reg)
	th := rec.TenantHistogram("db0")
	var tr Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		tr.ID = uint64(i)
		tr.Tenant = "db0"
		tr.Stamp(StageRead, 800)
		tr.Stamp(StageDecode, 1_200)
		tr.Stamp(StageArena, 10_000)
		tr.Stamp(StageEncode, 900)
		tr.Stamp(StageWrite, 700)
		tr.TotalNS = tr.StagesTotal()
		rec.Finish(&tr, th)
	}
}
