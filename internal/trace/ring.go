package trace

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-size ring buffer of completed traces built for the
// record path of a flight recorder: writers claim distinct slots with
// one atomic add, so the per-slot mutex they then take is effectively
// uncontended — it only ever conflicts with a Snapshot reader touching
// that exact slot, or a writer a full ring-lap ahead. Readers use
// TryLock and skip busy slots rather than stall a writer. Nothing on
// the write path allocates, and under overload the ring simply
// overwrites its oldest entries — exactly the retention policy a
// flight recorder wants.
type Ring struct {
	mask  uint64
	next  atomic.Uint64 // next slot sequence to claim
	slots []slot
}

// slot is one ring entry. gen is the claiming sequence of the write it
// holds, guarded by mu; Snapshot uses it to drop slots lapped by newer
// writes between its sequence read and the slot visit.
type slot struct {
	mu  sync.Mutex
	gen uint64
	tr  Trace
	// pad keeps neighbouring slots from false-sharing their locks under
	// concurrent writers. A Trace is already several cache lines, so one
	// word is enough to keep mu off a shared line boundary.
	_ [8]byte
}

// NewRing creates a ring with capacity rounded up to a power of two
// (minimum 8).
func NewRing(capacity int) *Ring {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many traces have been recorded in total (not capped
// at the ring size — the overwrite count is Len-Cap when positive).
func (r *Ring) Len() uint64 { return r.next.Load() }

// Put records one trace by value. Safe for any number of concurrent
// writers; never allocates, and only blocks in the rare cases of a
// reader copying this very slot or a writer lapping the whole ring
// mid-copy.
func (r *Ring) Put(t *Trace) {
	n := r.next.Add(1) - 1
	s := &r.slots[n&r.mask]
	s.mu.Lock()
	if s.gen <= n { // a lapped slower writer must not clobber newer data
		s.gen = n
		s.tr = *t
	}
	s.mu.Unlock()
}

// Snapshot copies out up to max traces, newest first, skipping slots
// held by concurrent writers. max <= 0 means the whole ring.
func (r *Ring) Snapshot(max int) []Trace {
	n := r.next.Load()
	avail := n
	if avail > uint64(len(r.slots)) {
		avail = uint64(len(r.slots))
	}
	if max > 0 && uint64(max) < avail {
		avail = uint64(max)
	}
	out := make([]Trace, 0, avail)
	for i := uint64(0); i < avail && n >= i+1; i++ {
		seq := n - 1 - i
		s := &r.slots[seq&r.mask]
		if !s.mu.TryLock() {
			continue // writer mid-copy; skip rather than stall it
		}
		gen, tr := s.gen, s.tr
		s.mu.Unlock()
		if gen != seq {
			continue // not yet written, or lapped by a newer write
		}
		out = append(out, tr)
	}
	return out
}
