// Package trace is the per-request lifecycle tracer of the CIPHERMATCH
// server: every query is stamped with a trace ID (client-generated when
// the client speaks the trace wire extension, server-assigned
// otherwise) and accumulates a monotonic per-stage latency breakdown as
// it moves through the serving pipeline — socket read, wire decode,
// admission, coalesce-window wait, batch formation, the arena pass
// (with chunk streams and HomAdds attributed back to the request),
// result encode, socket write. Completed traces land in fixed-size
// lock-free ring buffers (all traffic, plus a slow-query ring gated on
// a total-latency threshold) exported three ways: the MsgTraceDump wire
// message, the /traces and /traces/slow JSON endpoints, and per-stage
// latency histograms in the serving-metrics registry.
//
// The paper's whole argument is about where time and bytes go (data
// movement vs compute, one flash sweep vs R); this package is the layer
// that keeps producing that attribution on live traffic, so "the server
// got slower" decomposes into "coalesce wait grew" vs "the arena pass
// grew" without a profiler attach.
//
// Hot-path contract: recording costs zero heap allocations per request.
// A Trace is a fixed-size value owned by its connection handler and
// reused across requests; Finish copies it into the rings by value.
// This is pinned by TestTraceRecordAllocs (testing.AllocsPerRun == 0)
// and the stamp helpers are annotated for cmvet's hotpath analyzer.
package trace

// Stage indexes one serving-pipeline stage of a request's lifecycle.
// The catalog is ordered the way a request experiences it; stages a
// request skips (a non-coalesced query never waits in a window) simply
// stay at zero.
type Stage uint8

const (
	// StageRead is the socket read of the request frame: first byte of
	// the frame arriving to the full payload in memory.
	StageRead Stage = iota
	// StageDecode is wire decoding: name split plus query decode. For
	// coalesced queries the decode is deferred into batch formation and
	// shared across byte-identical members; each member's trace carries
	// the shared decode time here.
	StageDecode
	// StageAdmission is admission control: queue lookup, depth check and
	// enqueue into the coalescing window (or rejection).
	StageAdmission
	// StageCoalesceWait is the time parked in the coalescing window,
	// from enqueue to the executor claiming the batch.
	StageCoalesceWait
	// StageBatchForm is batch formation in the executor: payload dedup,
	// group decode, and BatchQuery assembly.
	StageBatchForm
	// StageArena is the arena pass: the engine streaming the ciphertext
	// arena and generating the match index.
	StageArena
	// StageEncode is result encoding (candidates to wire bytes).
	StageEncode
	// StageWrite is the socket write of the reply frame.
	StageWrite

	// NumStages is the size of the per-trace stage array.
	NumStages = int(StageWrite) + 1
)

// stageNames are the exported stage keys — metric label values, JSON
// field keys and cmtop column headers all use exactly these.
var stageNames = [NumStages]string{
	"read", "decode", "admission", "coalesce_wait", "batch_form",
	"arena", "encode", "write",
}

// String returns the stage's catalog name.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the ordered stage-name catalog.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// Outcome flag bits of Trace.Flags.
const (
	// FlagError marks a request answered with an error (any type).
	FlagError uint8 = 1 << iota
	// FlagRejected marks an admission-control rejection (MsgOverloaded);
	// FlagError is set too.
	FlagRejected
	// FlagCoalesced marks a query that shared its batch window with at
	// least one other query.
	FlagCoalesced
	// FlagClientID marks a trace whose ID came from the client's wire
	// extension rather than the server's own sequence.
	FlagClientID
)

// Trace is one request's lifecycle record: identity, per-stage
// latencies, and the work the arena pass performed on the request's
// behalf. It is a fixed-size value (the only pointer is the tenant
// string's header, which aliases the store's name — no per-request
// allocation) reused by its owning connection handler across requests.
type Trace struct {
	// ID is the trace ID: client-generated when the query carried the
	// trace wire extension (FlagClientID), otherwise the server's own
	// sequence number.
	ID uint64
	// Seq is the server-assigned completion sequence number, totally
	// ordered across connections.
	Seq uint64
	// Tenant is the database name the query addressed.
	Tenant string
	// Start is the request's wall-clock start, UnixNano (first byte of
	// the frame). Stage latencies are monotonic-clock durations; Start
	// only anchors the trace in calendar time for humans.
	Start int64
	// StageNS holds nanoseconds spent per stage, indexed by Stage.
	StageNS [NumStages]int64
	// TotalNS is the end-to-end request latency (read start to write
	// end), stamped by Finish.
	TotalNS int64
	// ChunkStreams and HomAdds are the arena work attributed to this
	// request by the engine (a coalesced member gets its own share from
	// the batch kernel's per-member stats).
	ChunkStreams int64
	HomAdds      int64
	// Batch is the occupancy of the window the query rode in (1 = solo
	// or direct path).
	Batch int32
	// Flags holds the Flag* outcome bits.
	Flags uint8
}

// Reset clears the trace for reuse. It deliberately avoids a composite
// literal so the reset stays allocation-free under the hotpath rules.
//
//cm:hotpath
func (t *Trace) Reset() {
	t.ID = 0
	t.Seq = 0
	t.Tenant = ""
	t.Start = 0
	for i := range t.StageNS {
		t.StageNS[i] = 0
	}
	t.TotalNS = 0
	t.ChunkStreams = 0
	t.HomAdds = 0
	t.Batch = 0
	t.Flags = 0
}

// Stamp adds ns nanoseconds to the stage's latency. Stages may be
// stamped more than once (a retried reload, a fallback re-decode); the
// contributions accumulate.
//
//cm:hotpath
func (t *Trace) Stamp(s Stage, ns int64) {
	t.StageNS[s] += ns
}

// StagesTotal sums the stamped stage latencies — the accounted-for part
// of TotalNS (the remainder is scheduler/queue time between stages).
//
//cm:hotpath
func (t *Trace) StagesTotal() int64 {
	var sum int64
	for i := range t.StageNS {
		sum += t.StageNS[i]
	}
	return sum
}
