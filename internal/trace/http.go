package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// traceJSON is the stable JSON shape of one trace on the /traces
// endpoints — field names are part of the observability surface (cmtop
// and the CI smoke job both consume them), so additions are fine but
// renames are a breaking change.
type traceJSON struct {
	ID           uint64           `json:"id"`
	Seq          uint64           `json:"seq"`
	Tenant       string           `json:"tenant"`
	StartUnixNS  int64            `json:"start_unix_ns"`
	TotalNS      int64            `json:"total_ns"`
	Stages       map[string]int64 `json:"stages"`
	ChunkStreams int64            `json:"chunk_streams"`
	HomAdds      int64            `json:"hom_adds"`
	Batch        int32            `json:"batch"`
	Coalesced    bool             `json:"coalesced"`
	Error        bool             `json:"error"`
	Rejected     bool             `json:"rejected"`
	ClientID     bool             `json:"client_id"`
}

// dumpJSON is the /traces response envelope.
type dumpJSON struct {
	Total  uint64      `json:"total"`
	Slow   uint64      `json:"slow"`
	SlowNS int64       `json:"slow_threshold_ns"`
	Traces []traceJSON `json:"traces"`
}

// toJSON converts a trace record to its JSON view. Skipped stages
// (zero nanoseconds) are omitted from the stage map so the common
// direct-path trace stays compact.
func toJSON(t *Trace) traceJSON {
	stages := make(map[string]int64, NumStages)
	for i := 0; i < NumStages; i++ {
		if ns := t.StageNS[i]; ns > 0 {
			stages[Stage(i).String()] = ns
		}
	}
	return traceJSON{
		ID:           t.ID,
		Seq:          t.Seq,
		Tenant:       t.Tenant,
		StartUnixNS:  t.Start,
		TotalNS:      t.TotalNS,
		Stages:       stages,
		ChunkStreams: t.ChunkStreams,
		HomAdds:      t.HomAdds,
		Batch:        t.Batch,
		Coalesced:    t.Flags&FlagCoalesced != 0,
		Error:        t.Flags&FlagError != 0,
		Rejected:     t.Flags&FlagRejected != 0,
		ClientID:     t.Flags&FlagClientID != 0,
	}
}

// defaultDumpLimit bounds a dump when the caller gives no ?n= — the
// rings may hold thousands of traces and the endpoint is for humans
// and pollers, not bulk export.
const defaultDumpLimit = 100

// serve renders one ring selection as the JSON envelope.
func (r *Recorder) serve(w http.ResponseWriter, req *http.Request, slow bool) {
	limit := defaultDumpLimit
	if s := req.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		limit = n
	}
	var traces []Trace
	if slow {
		traces = r.Slow(limit)
	} else {
		traces = r.Recent(limit)
	}
	total, slowCount := r.Counts()
	out := dumpJSON{
		Total:  total,
		Slow:   slowCount,
		SlowNS: int64(r.SlowThreshold()),
		Traces: make([]traceJSON, len(traces)),
	}
	for i := range traces {
		out.Traces[i] = toJSON(&traces[i])
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// Handler serves the recent-traces ring as JSON (newest first); ?n=
// caps the count (default 100).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.serve(w, req, false)
	})
}

// SlowHandler serves the slow-traces ring as JSON (newest first).
func (r *Recorder) SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.serve(w, req, true)
	})
}
