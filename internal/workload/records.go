package workload

import (
	"fmt"
	"strings"

	"ciphermatch/internal/rng"
)

// Record is one key-value pair of the encrypted-database-search case study.
type Record struct {
	Key   string
	Value string
}

// RecordLayout describes the fixed-width flattening of records into the
// database bit stream: every record occupies KeyBytes+ValueBytes, so keys
// start at known byte-aligned offsets and key queries need only
// byte-aligned (AlignBits=8) search.
type RecordLayout struct {
	KeyBytes   int
	ValueBytes int
}

// RecordBytes returns the stride of one record.
func (l RecordLayout) RecordBytes() int { return l.KeyBytes + l.ValueBytes }

// RandomRecords generates n records with printable random keys and values.
func RandomRecords(n int, layout RecordLayout, src *rng.Source) []Record {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	randString := func(length int) string {
		var b strings.Builder
		for i := 0; i < length; i++ {
			b.WriteByte(alphabet[src.Intn(len(alphabet))])
		}
		return b.String()
	}
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Key:   randString(layout.KeyBytes),
			Value: randString(layout.ValueBytes),
		}
	}
	return out
}

// Flatten serialises records into the fixed-width database byte stream.
// Keys and values shorter than their field are zero-padded; longer ones
// are an error.
func Flatten(records []Record, layout RecordLayout) ([]byte, error) {
	out := make([]byte, len(records)*layout.RecordBytes())
	for i, r := range records {
		if len(r.Key) > layout.KeyBytes {
			return nil, fmt.Errorf("workload: record %d key %q exceeds %d bytes", i, r.Key, layout.KeyBytes)
		}
		if len(r.Value) > layout.ValueBytes {
			return nil, fmt.Errorf("workload: record %d value exceeds %d bytes", i, layout.ValueBytes)
		}
		base := i * layout.RecordBytes()
		copy(out[base:], r.Key)
		copy(out[base+layout.KeyBytes:], r.Value)
	}
	return out, nil
}

// KeyQuery returns the query bytes and bit length for an exact key search.
// The key is padded to the fixed key width, so a hit can only occur at a
// record boundary.
func KeyQuery(key string, layout RecordLayout) ([]byte, int, error) {
	if len(key) > layout.KeyBytes {
		return nil, 0, fmt.Errorf("workload: key %q exceeds %d bytes", key, layout.KeyBytes)
	}
	q := make([]byte, layout.KeyBytes)
	copy(q, key)
	return q, layout.KeyBytes * 8, nil
}

// RecordIndex converts a bit-offset candidate into the record number it
// falls in, and whether it is exactly at a key boundary.
func RecordIndex(bitOffset int, layout RecordLayout) (index int, atKeyStart bool) {
	strideBits := layout.RecordBytes() * 8
	return bitOffset / strideBits, bitOffset%strideBits == 0
}
