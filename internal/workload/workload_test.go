package workload

import (
	"bytes"
	"testing"

	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

func TestEncodeDecodeBases(t *testing.T) {
	bases := []byte("ACGTACGTTGCA")
	packed, bits, err := EncodeBases(bases)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 24 {
		t.Fatalf("bits = %d, want 24", bits)
	}
	if got := DecodeBases(packed, len(bases)); !bytes.Equal(got, bases) {
		t.Fatalf("roundtrip %q != %q", got, bases)
	}
	// Spot-check the 2-bit MSB-first layout: "ACGT" = 00 01 10 11 = 0x1B.
	first4, _, _ := EncodeBases([]byte("ACGT"))
	if first4[0] != 0x1B {
		t.Fatalf("ACGT packs to %#x, want 0x1B", first4[0])
	}
}

func TestEncodeBasesLowercaseAndInvalid(t *testing.T) {
	if _, _, err := EncodeBases([]byte("acgt")); err != nil {
		t.Errorf("lowercase bases rejected: %v", err)
	}
	if _, _, err := EncodeBases([]byte("ACGN")); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestRandomGenomeAndReads(t *testing.T) {
	src := rng.NewSourceFromString("genome")
	g := RandomGenome(1000, src)
	if len(g) != 1000 {
		t.Fatal("genome length")
	}
	for _, b := range g {
		if !bytes.ContainsRune([]byte(Bases), rune(b)) {
			t.Fatalf("invalid base %q", b)
		}
	}
	read, err := ExtractRead(g, 100, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read, g[100:132]) {
		t.Fatal("read extraction wrong")
	}
	if _, err := ExtractRead(g, 990, 32); err == nil {
		t.Error("out-of-range read accepted")
	}
	other := RandomGenome(32, src)
	if err := PlantRead(g, other, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g[500:532], other) {
		t.Fatal("plant failed")
	}
	if err := PlantRead(g, other, 995); err == nil {
		t.Error("out-of-range plant accepted")
	}
}

func TestEncodedReadAppearsInEncodedGenome(t *testing.T) {
	// The bit stream of a read planted at base position p must equal the
	// genome bit stream at bit offset 2p — the property the DNA search
	// example relies on.
	src := rng.NewSourceFromString("align")
	g := RandomGenome(200, src)
	read, _ := ExtractRead(g, 53, 16)
	gBits, gLen, _ := EncodeBases(g)
	rBits, rLen, _ := EncodeBases(read)
	_ = gLen
	for j := 0; j < rLen; j++ {
		if mathutil.GetBit(gBits, 2*53+j) != mathutil.GetBit(rBits, j) {
			t.Fatalf("bit %d of read disagrees with genome", j)
		}
	}
}

func TestRecordsFlattenAndQuery(t *testing.T) {
	layout := RecordLayout{KeyBytes: 8, ValueBytes: 24}
	src := rng.NewSourceFromString("records")
	recs := RandomRecords(10, layout, src)
	if len(recs) != 10 {
		t.Fatal("record count")
	}
	flat, err := Flatten(recs, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 10*32 {
		t.Fatalf("flat length = %d", len(flat))
	}
	// Record 3's key sits at byte 96.
	if string(flat[96:96+len(recs[3].Key)]) != recs[3].Key {
		t.Fatal("key placement wrong")
	}
	q, bits, err := KeyQuery(recs[3].Key, layout)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 64 || len(q) != 8 {
		t.Fatalf("query shape: %d bits, %d bytes", bits, len(q))
	}
	idx, boundary := RecordIndex(96*8, layout)
	if idx != 3 || !boundary {
		t.Fatalf("RecordIndex = (%d, %v)", idx, boundary)
	}
	idx, boundary = RecordIndex(96*8+8, layout)
	if idx != 3 || boundary {
		t.Fatalf("mid-record RecordIndex = (%d, %v)", idx, boundary)
	}
}

func TestFlattenValidation(t *testing.T) {
	layout := RecordLayout{KeyBytes: 4, ValueBytes: 4}
	if _, err := Flatten([]Record{{Key: "toolongkey"}}, layout); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := Flatten([]Record{{Key: "k", Value: "waytoolongvalue"}}, layout); err == nil {
		t.Error("oversized value accepted")
	}
	if _, _, err := KeyQuery("toolongkey", layout); err == nil {
		t.Error("oversized query key accepted")
	}
}
