// Package workload generates the two evaluation workloads of §5.3:
// (1) exact DNA string matching — a synthetic genome with planted reads,
// 2-bit base encoding, query sizes of 8-128 base pairs (16-256 bits); and
// (2) encrypted database search — fixed-width key-value records searched
// by key.
package workload

import (
	"fmt"

	"ciphermatch/internal/rng"
)

// Bases are the DNA alphabet in encoding order: A=00, C=01, G=10, T=11.
const Bases = "ACGT"

// RandomGenome returns numBases random bases as ASCII letters.
func RandomGenome(numBases int, src *rng.Source) []byte {
	g := make([]byte, numBases)
	for i := range g {
		g[i] = Bases[src.Intn(4)]
	}
	return g
}

// EncodeBases packs ASCII bases into the 2-bit-per-base bit stream
// (MSB-first) the matcher consumes, returning the packed bytes and the bit
// length.
func EncodeBases(bases []byte) ([]byte, int, error) {
	bits := 2 * len(bases)
	out := make([]byte, (bits+7)/8)
	for i, b := range bases {
		var code byte
		switch b {
		case 'A', 'a':
			code = 0
		case 'C', 'c':
			code = 1
		case 'G', 'g':
			code = 2
		case 'T', 't':
			code = 3
		default:
			return nil, 0, fmt.Errorf("workload: invalid base %q at position %d", b, i)
		}
		// Base i occupies bits [2i, 2i+2), MSB-first: 4 bases per byte.
		shift := uint(6 - 2*(i%4))
		out[i/4] |= code << shift
	}
	return out, bits, nil
}

// DecodeBases unpacks a 2-bit stream back to ASCII bases.
func DecodeBases(packed []byte, numBases int) []byte {
	out := make([]byte, numBases)
	for i := range out {
		shift := uint(6 - 2*(i%4))
		code := (packed[i/4] >> shift) & 3
		out[i] = Bases[code]
	}
	return out
}

// ExtractRead copies length bases starting at base position pos — a
// sequencing read drawn from the genome, the query of the DNA case study.
func ExtractRead(genome []byte, pos, length int) ([]byte, error) {
	if pos < 0 || pos+length > len(genome) {
		return nil, fmt.Errorf("workload: read [%d, %d) outside genome of %d bases", pos, pos+length, len(genome))
	}
	read := make([]byte, length)
	copy(read, genome[pos:pos+length])
	return read, nil
}

// PlantRead overwrites the genome with the read at base position pos, so
// tests and examples control where matches occur.
func PlantRead(genome, read []byte, pos int) error {
	if pos < 0 || pos+len(read) > len(genome) {
		return fmt.Errorf("workload: plant [%d, %d) outside genome of %d bases", pos, pos+len(read), len(genome))
	}
	copy(genome[pos:], read)
	return nil
}
