package bfv

import (
	"fmt"

	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/ring"
)

// Evaluator performs homomorphic operations. It is stateless apart from
// parameters and may be shared across goroutines.
type Evaluator struct {
	params Params
	ring   *ring.Ring
}

// NewEvaluator returns an Evaluator for the given parameters.
func NewEvaluator(p Params) *Evaluator {
	return &Evaluator{params: p, ring: p.Ring()}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() Params { return ev.params }

// Add returns a + b (Hom-Add, Eq. 4 of the paper): component-wise
// polynomial addition. Ciphertexts of different degrees are aligned by
// treating missing components as zero.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	r := ev.ring
	n := max(len(a.C), len(b.C))
	out := &Ciphertext{C: make([]ring.Poly, n)}
	for i := 0; i < n; i++ {
		out.C[i] = r.NewPoly()
		switch {
		case i < len(a.C) && i < len(b.C):
			r.Add(a.C[i], b.C[i], out.C[i])
		case i < len(a.C):
			r.Copy(out.C[i], a.C[i])
		default:
			r.Copy(out.C[i], b.C[i])
		}
	}
	return out
}

// AddInto computes out = a + b for 2-component ciphertexts without
// allocating; out may alias a or b. This is the hot path of CIPHERMATCH
// search and the operation timed by the calibration benchmarks.
func (ev *Evaluator) AddInto(a, b, out *Ciphertext) error {
	if len(a.C) != len(b.C) || len(out.C) != len(a.C) {
		return fmt.Errorf("bfv: AddInto requires equal degrees (got %d, %d, %d)",
			len(a.C), len(b.C), len(out.C))
	}
	for i := range a.C {
		ev.ring.Add(a.C[i], b.C[i], out.C[i])
	}
	return nil
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	r := ev.ring
	n := max(len(a.C), len(b.C))
	out := &Ciphertext{C: make([]ring.Poly, n)}
	for i := 0; i < n; i++ {
		out.C[i] = r.NewPoly()
		switch {
		case i < len(a.C) && i < len(b.C):
			r.Sub(a.C[i], b.C[i], out.C[i])
		case i < len(a.C):
			r.Copy(out.C[i], a.C[i])
		default:
			r.Neg(b.C[i], out.C[i])
		}
	}
	return out
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	r := ev.ring
	out := &Ciphertext{C: make([]ring.Poly, len(a.C))}
	for i := range a.C {
		out.C[i] = r.NewPoly()
		r.Neg(a.C[i], out.C[i])
	}
	return out
}

// AddPlain returns ct + pt: Δ·pt is added to the first component.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.ring
	out := ct.Clone()
	scaled := r.NewPoly()
	r.MulScalar(pt.Coeffs, ev.params.Delta(), scaled)
	r.Add(out.C[0], scaled, out.C[0])
	return out
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.ring
	out := ct.Clone()
	scaled := r.NewPoly()
	r.MulScalar(pt.Coeffs, ev.params.Delta(), scaled)
	r.Sub(out.C[0], scaled, out.C[0])
	return out
}

// MulPlain returns ct · pt (plaintext multiplication, no rescaling needed:
// the plaintext polynomial multiplies both components directly).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.ring
	out := &Ciphertext{C: make([]ring.Poly, len(ct.C))}
	for i := range ct.C {
		out.C[i] = r.NewPoly()
		r.Mul(ct.C[i], pt.Coeffs, out.C[i])
	}
	return out
}

// Mul returns the homomorphic product of two degree-1 ciphertexts as a
// degree-2 ciphertext: the tensor (a0·b0, a0·b1 + a1·b0, a1·b1) is computed
// exactly over the integers on centered lifts, then each component is
// rescaled by t/q with rounding. This is the expensive operation the
// CIPHERMATCH algorithm eliminates (Key Takeaway 1).
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if len(a.C) != 2 || len(b.C) != 2 {
		return nil, fmt.Errorf("bfv: Mul requires degree-1 inputs (got %d, %d)",
			len(a.C)-1, len(b.C)-1)
	}
	r := ev.ring
	n := r.N()
	la0, la1 := make([]int64, n), make([]int64, n)
	lb0, lb1 := make([]int64, n), make([]int64, n)
	r.CenterLift(a.C[0], la0)
	r.CenterLift(a.C[1], la1)
	r.CenterLift(b.C[0], lb0)
	r.CenterLift(b.C[1], lb1)

	d0 := make([]mathutil.Int128, n)
	d2 := make([]mathutil.Int128, n)
	cross1 := make([]mathutil.Int128, n)
	cross2 := make([]mathutil.Int128, n)
	r.NegacyclicConvolveExact(la0, lb0, d0)
	r.NegacyclicConvolveExact(la0, lb1, cross1)
	r.NegacyclicConvolveExact(la1, lb0, cross2)
	r.NegacyclicConvolveExact(la1, lb1, d2)
	d1 := make([]mathutil.Int128, n)
	for i := range d1 {
		d1[i] = cross1[i].Add(cross2[i])
	}

	out := &Ciphertext{C: make([]ring.Poly, 3)}
	for i, d := range [][]mathutil.Int128{d0, d1, d2} {
		out.C[i] = r.NewPoly()
		r.ScaleRoundMod(d, ev.params.T, ev.params.Q, out.C[i])
	}
	return out, nil
}

// Relinearize reduces a degree-2 ciphertext back to degree 1 using the
// relinearisation key: the quadratic component is decomposed in base
// 2^w and folded into the linear components through the key rows.
func (ev *Evaluator) Relinearize(ct *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if len(ct.C) != 3 {
		return nil, fmt.Errorf("bfv: Relinearize requires a degree-2 ciphertext (got degree %d)", len(ct.C)-1)
	}
	r := ev.ring
	w := rlk.BaseBits
	mask := uint64(1)<<w - 1

	c0 := r.Clone(ct.C[0])
	c1 := r.Clone(ct.C[1])
	digit := r.NewPoly()
	tmp := r.NewPoly()
	for i, row := range rlk.Rows {
		shift := uint(i) * w
		for k, c := range ct.C[2] {
			digit[k] = (c >> shift) & mask
		}
		r.Mul(row[0], digit, tmp)
		r.Add(c0, tmp, c0)
		r.Mul(row[1], digit, tmp)
		r.Add(c1, tmp, c1)
	}
	return &Ciphertext{C: []ring.Poly{c0, c1}}, nil
}

// MulRelin is Mul followed by Relinearize, the form used by the arithmetic
// baseline.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	prod, err := ev.Mul(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(prod, rlk)
}
