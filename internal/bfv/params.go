// Package bfv implements the Brakerski-Fan-Vercauteren somewhat-homomorphic
// encryption scheme over R_q = Z_q[X]/(X^n+1), as used by CIPHERMATCH
// (§2.1): key generation, encryption, decryption, homomorphic addition (the
// only operation CIPHERMATCH needs), and homomorphic multiplication with
// relinearisation (needed by the arithmetic baseline of Yasuda et al. [27]
// and the Boolean baseline).
//
// The default parameter set is the paper's: n = 1024, log2 q = 32,
// log2 t = 16. Note (§9 of DESIGN.md) that this is the paper's
// performance-evaluation configuration; by the homomorphic encryption
// security standard, n = 1024 at 128-bit classical security supports
// roughly 27-bit q, so production deployments should use ParamsN2048.
//
// Determinism contract: Encrypt consumes randomness from its rng.Source in
// a fixed documented order (u, e0, e1). The CIPHERMATCH seeded-match-token
// mode (internal/core) relies on this to re-derive the public randomness
// part of a ciphertext from a forked seed.
package bfv

import (
	"fmt"

	"ciphermatch/internal/ring"
)

// Params describes a BFV parameter set.
type Params struct {
	// N is the ring degree (polynomial modulus degree), a power of two.
	N int
	// Q is the ciphertext coefficient modulus.
	Q uint64
	// T is the plaintext coefficient modulus (T >= 2, T <= Q).
	T uint64
	// Eta is the centered-binomial parameter of the error distribution.
	Eta int
	// RelinBaseBits is the digit width w of the base-2^w decomposition
	// used by relinearisation keys.
	RelinBaseBits uint
}

// ParamsPaper is the configuration used throughout the paper's evaluation
// (§4.2): n = 1024, 32-bit ciphertext coefficients, 16-bit plaintext
// coefficients.
func ParamsPaper() Params {
	return Params{N: 1024, Q: 1 << 32, T: 1 << 16, Eta: 3, RelinBaseBits: 8}
}

// ParamsToy is a small configuration for fast unit tests. It is NOT secure;
// it exists so that the whole pipeline can be exercised quickly.
func ParamsToy() Params {
	return Params{N: 64, Q: 1 << 32, T: 1 << 16, Eta: 3, RelinBaseBits: 8}
}

// ParamsN2048 is a larger configuration with conservative security margins
// (n = 2048, 54-bit q), for users who want the paper's algorithm at a
// standard-compliant parameter point.
func ParamsN2048() Params {
	return Params{N: 2048, Q: 1 << 54, T: 1 << 16, Eta: 3, RelinBaseBits: 9}
}

// ParamsOddQ is a test-only configuration with a non-power-of-two modulus,
// used to keep the implementation honest about modulus assumptions.
func ParamsOddQ() Params {
	return Params{N: 64, Q: (1 << 40) + 15, T: 1 << 16, Eta: 3, RelinBaseBits: 8}
}

// ParamsArithBaseline is the configuration used for the multiplication-based
// arithmetic baseline (Yasuda et al. [27]): homomorphic multiplication
// inflates noise by roughly n·t·|v|, so it needs a wider ciphertext modulus
// than the addition-only CIPHERMATCH point. The paper's q=2^32/t=2^16
// configuration has budget only for additions — which is precisely Key
// Takeaway 1. Hamming distances fit in t = 2^10.
func ParamsArithBaseline() Params {
	return Params{N: 1024, Q: 1 << 44, T: 1 << 10, Eta: 3, RelinBaseBits: 8}
}

// ParamsToyMul is a small configuration with multiplication budget, for
// fast unit tests of Mul/Relinearize.
func ParamsToyMul() Params {
	return Params{N: 64, Q: 1 << 40, T: 1 << 8, Eta: 3, RelinBaseBits: 8}
}

// ParamsNTTArith returns an NTT-enabled configuration for the arithmetic
// baseline: a 45-bit prime modulus with q ≡ 1 (mod 2n), so ring
// multiplications run through the number-theoretic transform — the same
// algorithmic regime as SEAL, the paper's software substrate. t = 2^10
// leaves multiplication noise budget for Hamming-distance search.
func ParamsNTTArith() Params {
	q, err := ring.FindNTTPrime(45, 1024)
	if err != nil {
		panic(err) // static parameters; cannot fail at these sizes
	}
	return Params{N: 1024, Q: q, T: 1 << 10, Eta: 3, RelinBaseBits: 8}
}

// ParamsNTTToy is the small NTT-enabled test configuration.
func ParamsNTTToy() Params {
	q, err := ring.FindNTTPrime(45, 64)
	if err != nil {
		panic(err)
	}
	return Params{N: 64, Q: q, T: 1 << 10, Eta: 3, RelinBaseBits: 8}
}

// ParamsBoolean is the configuration for the functional Boolean baseline:
// one bit per ciphertext (t = 2), with enough modulus headroom for an
// XNOR/AND match tree of depth ~4 (16-bit queries). The analytic Boolean
// cost model in internal/perfmodel uses TFHE constants instead; this
// parameter set only serves the functional demonstration (see DESIGN.md).
func ParamsBoolean() Params {
	return Params{N: 128, Q: 1 << 60, T: 2, Eta: 3, RelinBaseBits: 15}
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.T < 2 {
		return fmt.Errorf("bfv: plaintext modulus T=%d must be at least 2", p.T)
	}
	if p.T > p.Q/2 {
		return fmt.Errorf("bfv: plaintext modulus T=%d too large for Q=%d", p.T, p.Q)
	}
	if p.Eta < 1 || p.Eta > 16 {
		return fmt.Errorf("bfv: eta=%d out of range [1,16]", p.Eta)
	}
	if p.RelinBaseBits < 1 || p.RelinBaseBits > 32 {
		return fmt.Errorf("bfv: relin base bits=%d out of range [1,32]", p.RelinBaseBits)
	}
	_, err := ring.New(p.N, p.Q)
	return err
}

// Delta returns the plaintext scaling factor floor(Q/T).
func (p Params) Delta() uint64 { return p.Q / p.T }

// QBytes returns the number of bytes used to store one ciphertext
// coefficient (the paper's footprint accounting uses exactly ceil(log2 q / 8)).
func (p Params) QBytes() int {
	r := ring.MustNew(p.N, p.Q)
	return int((r.LogQ() + 7) / 8)
}

// TBytes returns the number of bytes per plaintext coefficient.
func (p Params) TBytes() int {
	bits := 0
	for v := p.T - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return (bits + 7) / 8
}

// PackedBitsPerCoeff returns how many database bits the CIPHERMATCH packing
// scheme stores in one plaintext coefficient (log2 T for power-of-two T).
func (p Params) PackedBitsPerCoeff() int {
	bits := 0
	for v := p.T; v > 1; v >>= 1 {
		bits++
	}
	return bits
}

// Ring constructs the ring for these parameters.
func (p Params) Ring() *ring.Ring { return ring.MustNew(p.N, p.Q) }

// CiphertextBytes returns the serialised size of a fresh (2-component)
// ciphertext, the unit of the paper's memory-footprint analysis.
func (p Params) CiphertextBytes() int { return 2 * p.N * p.QBytes() }

// PlaintextBytes returns the size of the data packed into one plaintext
// polynomial under CIPHERMATCH packing (n coefficients × log2(t) bits).
func (p Params) PlaintextBytes() int { return p.N * p.PackedBitsPerCoeff() / 8 }

// ExpansionFactor returns the ciphertext/plaintext size ratio under
// CIPHERMATCH packing; 4× for the paper parameters (§4.2.1 Key Insight).
func (p Params) ExpansionFactor() float64 {
	return float64(p.CiphertextBytes()) / float64(p.PlaintextBytes())
}
