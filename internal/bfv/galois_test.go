package bfv

import (
	"testing"

	"ciphermatch/internal/rng"
)

func TestAutomorphismMatchesPlainReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Params
	}{{"toymul", ParamsToyMul()}, {"ntt-toy", ParamsNTTToy()}} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p
			src := rng.NewSourceFromString("galois-" + tc.name)
			sk, pk := KeyGen(p, src.Fork("keys"))
			enc := NewEncoder(p)
			encryptor := NewEncryptor(p, pk)
			dec := NewDecryptor(p, sk)
			ev := NewEvaluator(p)

			msg := make([]uint64, p.N)
			for i := range msg {
				msg[i] = src.Uniform(p.T)
			}
			pt, err := enc.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			ct := encryptor.Encrypt(pt, src.Fork("e"))

			for _, k := range []int{3, 5, 2*p.N - 1} {
				gk, err := NewGaloisKey(p, sk, k, src.ForkIndexed("gk", k))
				if err != nil {
					t.Fatal(err)
				}
				rotated, err := ev.Automorphism(ct, gk)
				if err != nil {
					t.Fatal(err)
				}
				got := dec.Decrypt(rotated)
				want := ev.AutomorphismPlain(pt, k)
				for i := range want.Coeffs {
					if got.Coeffs[i] != want.Coeffs[i] {
						t.Fatalf("k=%d coeff %d: got %d want %d", k, i, got.Coeffs[i], want.Coeffs[i])
					}
				}
			}
		})
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// φ_3 ∘ φ_3 = φ_9 (mod 2n) on plaintexts.
	p := ParamsToyMul()
	ev := NewEvaluator(p)
	src := rng.NewSourceFromString("compose")
	msg := make([]uint64, p.N)
	for i := range msg {
		msg[i] = src.Uniform(p.T)
	}
	pt := &Plaintext{Coeffs: append([]uint64(nil), msg...)}
	twice := ev.AutomorphismPlain(ev.AutomorphismPlain(pt, 3), 3)
	nine := ev.AutomorphismPlain(pt, 9%(2*p.N))
	for i := range twice.Coeffs {
		if twice.Coeffs[i] != nine.Coeffs[i] {
			t.Fatalf("composition mismatch at %d", i)
		}
	}
}

func TestGaloisKeyValidation(t *testing.T) {
	p := ParamsToyMul()
	src := rng.NewSourceFromString("gk-val")
	sk, pk := KeyGen(p, src.Fork("keys"))
	if _, err := NewGaloisKey(p, sk, 4, src); err == nil {
		t.Error("even Galois element accepted")
	}
	gk, err := NewGaloisKey(p, sk, 3, src.Fork("gk"))
	if err != nil {
		t.Fatal(err)
	}
	// Automorphism must reject non-degree-1 ciphertexts.
	ev := NewEvaluator(p)
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk)
	pt, _ := enc.Encode(make([]uint64, p.N))
	ca := encryptor.Encrypt(pt, src.Fork("a"))
	cb := encryptor.Encrypt(pt, src.Fork("b"))
	prod, err := ev.Mul(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Automorphism(prod, gk); err == nil {
		t.Error("degree-2 ciphertext accepted by Automorphism")
	}
}
