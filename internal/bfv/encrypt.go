package bfv

import (
	"fmt"

	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// Plaintext is a polynomial with coefficients in [0, T).
type Plaintext struct {
	Coeffs ring.Poly
}

// Ciphertext is a BFV ciphertext of degree len(C)-1. Fresh ciphertexts have
// two components; an unrelinearised product has three.
type Ciphertext struct {
	C []ring.Poly
}

// Degree returns the ciphertext degree (1 for fresh ciphertexts).
func (ct *Ciphertext) Degree() int { return len(ct.C) - 1 }

// SizeBytes returns the serialised size used by the paper's footprint
// accounting: components × n × ceil(log2 q / 8).
func (ct *Ciphertext) SizeBytes(p Params) int {
	return len(ct.C) * p.N * p.QBytes()
}

// Clone deep-copies the ciphertext.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{C: make([]ring.Poly, len(ct.C))}
	for i := range ct.C {
		out.C[i] = make(ring.Poly, len(ct.C[i]))
		copy(out.C[i], ct.C[i])
	}
	return out
}

// Encoder packs integer vectors into plaintext polynomials
// (coefficient encoding, as in §4.2.1).
type Encoder struct {
	params Params
}

// NewEncoder returns an Encoder for the given parameters.
func NewEncoder(p Params) *Encoder { return &Encoder{params: p} }

// Encode places values[i] into coefficient i. Values must be < T; fewer
// than N values are zero-padded.
func (e *Encoder) Encode(values []uint64) (*Plaintext, error) {
	if len(values) > e.params.N {
		return nil, fmt.Errorf("bfv: %d values exceed ring degree %d", len(values), e.params.N)
	}
	pt := &Plaintext{Coeffs: make(ring.Poly, e.params.N)}
	for i, v := range values {
		if v >= e.params.T {
			return nil, fmt.Errorf("bfv: value %d at index %d exceeds plaintext modulus %d", v, i, e.params.T)
		}
		pt.Coeffs[i] = v
	}
	return pt, nil
}

// EncodeUint16 packs 16-bit segments, the CIPHERMATCH packing unit for the
// paper parameters (t = 2^16).
func (e *Encoder) EncodeUint16(values []uint16) (*Plaintext, error) {
	u := make([]uint64, len(values))
	for i, v := range values {
		u[i] = uint64(v)
	}
	return e.Encode(u)
}

// Decode extracts the coefficient vector of a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []uint64 {
	out := make([]uint64, e.params.N)
	copy(out, pt.Coeffs)
	return out
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params Params
	ring   *ring.Ring
	pk     *PublicKey
}

// NewEncryptor returns an Encryptor for pk.
func NewEncryptor(p Params, pk *PublicKey) *Encryptor {
	return &Encryptor{params: p, ring: p.Ring(), pk: pk}
}

// Encrypt encrypts pt, drawing randomness from src in the fixed order
// (u ternary, e0 CBD, e1 CBD). The order is part of the package contract:
// the seeded match-token mode re-derives ciphertext randomness by replaying
// a forked source through this function.
func (enc *Encryptor) Encrypt(pt *Plaintext, src *rng.Source) *Ciphertext {
	r := enc.ring
	u := r.NewPoly()
	r.TernaryPoly(src, u)
	e0 := r.NewPoly()
	r.CBDPoly(src, enc.params.Eta, e0)
	e1 := r.NewPoly()
	r.CBDPoly(src, enc.params.Eta, e1)

	c0 := r.NewPoly()
	r.Mul(enc.pk.P0, u, c0)
	r.Add(c0, e0, c0)
	delta := enc.params.Delta()
	scaled := r.NewPoly()
	r.MulScalar(pt.Coeffs, delta, scaled)
	r.Add(c0, scaled, c0)

	c1 := r.NewPoly()
	r.Mul(enc.pk.P1, u, c1)
	r.Add(c1, e1, c1)
	return &Ciphertext{C: []ring.Poly{c0, c1}}
}

// EncryptC0 computes only the first ciphertext component for pt with the
// randomness stream src, consuming src exactly as Encrypt does. The seeded
// match-token construction (internal/core) uses this to build the expected
// hit value of a homomorphic addition without the second component.
func (enc *Encryptor) EncryptC0(pt *Plaintext, src *rng.Source) ring.Poly {
	r := enc.ring
	u := r.NewPoly()
	r.TernaryPoly(src, u)
	e0 := r.NewPoly()
	r.CBDPoly(src, enc.params.Eta, e0)
	e1 := r.NewPoly()
	r.CBDPoly(src, enc.params.Eta, e1) // consumed to keep stream alignment
	_ = e1

	c0 := r.NewPoly()
	r.Mul(enc.pk.P0, u, c0)
	r.Add(c0, e0, c0)
	delta := enc.params.Delta()
	scaled := r.NewPoly()
	r.MulScalar(pt.Coeffs, delta, scaled)
	r.Add(c0, scaled, c0)
	return c0
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params Params
	ring   *ring.Ring
	sk     *SecretKey
}

// NewDecryptor returns a Decryptor for sk.
func NewDecryptor(p Params, sk *SecretKey) *Decryptor {
	return &Decryptor{params: p, ring: p.Ring(), sk: sk}
}

// phase computes c0 + c1·s + c2·s² + ... mod q.
func (dec *Decryptor) phase(ct *Ciphertext) ring.Poly {
	r := dec.ring
	acc := r.Clone(ct.C[0])
	sPow := r.Clone(dec.sk.S)
	tmp := r.NewPoly()
	for i := 1; i < len(ct.C); i++ {
		r.Mul(ct.C[i], sPow, tmp)
		r.Add(acc, tmp, acc)
		if i+1 < len(ct.C) {
			next := r.NewPoly()
			r.Mul(sPow, dec.sk.S, next)
			sPow = next
		}
	}
	return acc
}

// Decrypt recovers the plaintext: m = round(t·phase/q) mod t.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := dec.ring
	ph := dec.phase(ct)
	lift := make([]int64, r.N())
	r.CenterLift(ph, lift)
	x := make([]mathutil.Int128, r.N())
	for i := range lift {
		x[i] = mathutil.Int128FromInt64(lift[i])
	}
	out := make(ring.Poly, r.N())
	r.ScaleRoundMod(x, dec.params.T, dec.params.T, out)
	return &Plaintext{Coeffs: out}
}

// NoiseInfNorm returns the infinity norm of the ciphertext noise: the
// centered magnitude of phase - Δ·m, where m is the decrypted plaintext.
func (dec *Decryptor) NoiseInfNorm(ct *Ciphertext) uint64 {
	r := dec.ring
	ph := dec.phase(ct)
	m := dec.Decrypt(ct)
	scaled := r.NewPoly()
	r.MulScalar(m.Coeffs, dec.params.Delta(), scaled)
	diff := r.NewPoly()
	r.Sub(ph, scaled, diff)
	return r.InfNormCentered(diff)
}

// NoiseBudgetBits returns the remaining noise budget in bits: decryption
// stays correct while the budget is positive. Defined as
// log2(Δ/2) - log2(noise+1).
func (dec *Decryptor) NoiseBudgetBits(ct *Ciphertext) float64 {
	noise := dec.NoiseInfNorm(ct)
	budget := log2u(dec.params.Delta()/2) - log2u(noise+1)
	return budget
}

func log2u(v uint64) float64 {
	if v == 0 {
		return 0
	}
	// log2 via bit length plus fractional correction.
	n := 0
	x := v
	for x > 1 {
		x >>= 1
		n++
	}
	frac := float64(v)/float64(uint64(1)<<uint(n)) - 1 // in [0,1)
	return float64(n) + frac                           // linear approximation, fine for diagnostics
}
