package bfv

import (
	"fmt"

	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// This file implements Galois automorphisms φ_k: a(X) → a(X^k) for odd k,
// with key switching back to the original secret. These are the
// "homomorphic rotation" operations that the scalable arithmetic baselines
// (Kim et al. [34], Bonte et al. [29]) spend their time in (§3.1) — and
// that CIPHERMATCH eliminates entirely. They are provided so the cost of
// that design point can be measured on this substrate.

// GaloisKey enables key switching after the automorphism X -> X^k.
type GaloisKey struct {
	K        int
	Rows     [][2]ring.Poly
	BaseBits uint
}

// NewGaloisKey generates the switching key for φ_k under sk. k must be odd
// (even k are not ring automorphisms of Z[X]/(X^n+1)).
func NewGaloisKey(p Params, sk *SecretKey, k int, src *rng.Source) (*GaloisKey, error) {
	if k%2 == 0 || k <= 0 {
		return nil, fmt.Errorf("bfv: Galois element k=%d must be odd and positive", k)
	}
	r := p.Ring()
	sPhi := r.NewPoly()
	applyAutomorphism(r, sk.S, k, sPhi)

	w := p.RelinBaseBits
	numRows := int((r.LogQ() + w - 1) / w)
	rows := make([][2]ring.Poly, numRows)
	pow := r.Clone(sPhi) // 2^{w·i}·φ(s)
	for i := 0; i < numRows; i++ {
		a := r.NewPoly()
		r.UniformPoly(src, a)
		e := r.NewPoly()
		r.CBDPoly(src, p.Eta, e)
		b := r.NewPoly()
		r.Mul(a, sk.S, b)
		r.Add(b, e, b)
		r.Neg(b, b)
		r.Add(b, pow, b)
		rows[i] = [2]ring.Poly{b, a}
		r.MulScalar(pow, 1<<w, pow)
	}
	return &GaloisKey{K: k, Rows: rows, BaseBits: w}, nil
}

// applyAutomorphism computes out = a(X^k) in Z_q[X]/(X^n+1): coefficient i
// moves to position i·k mod 2n, negating when it wraps past n.
func applyAutomorphism(r *ring.Ring, a ring.Poly, k int, out ring.Poly) {
	n := r.N()
	q := r.Q()
	for i := range out {
		out[i] = 0
	}
	for i, c := range a {
		pos := (i * k) % (2 * n)
		if pos < n {
			out[pos] = c
		} else if c != 0 {
			out[pos-n] = q - c
		}
	}
}

// Automorphism applies φ_k to a degree-1 ciphertext and switches the key
// back to s using gk, so the result decrypts under the original secret.
func (ev *Evaluator) Automorphism(ct *Ciphertext, gk *GaloisKey) (*Ciphertext, error) {
	if len(ct.C) != 2 {
		return nil, fmt.Errorf("bfv: Automorphism requires a degree-1 ciphertext (got degree %d)", len(ct.C)-1)
	}
	r := ev.ring
	phi0 := r.NewPoly()
	phi1 := r.NewPoly()
	applyAutomorphism(r, ct.C[0], gk.K, phi0)
	applyAutomorphism(r, ct.C[1], gk.K, phi1)

	// Key switch: φ(c1) decrypts against φ(s); fold it through the key
	// rows so the output decrypts against s.
	w := gk.BaseBits
	mask := uint64(1)<<w - 1
	c0 := phi0
	c1 := r.NewPoly()
	digit := r.NewPoly()
	tmp := r.NewPoly()
	for i, row := range gk.Rows {
		shift := uint(i) * w
		for j, c := range phi1 {
			digit[j] = (c >> shift) & mask
		}
		r.Mul(row[0], digit, tmp)
		r.Add(c0, tmp, c0)
		r.Mul(row[1], digit, tmp)
		r.Add(c1, tmp, c1)
	}
	return &Ciphertext{C: []ring.Poly{c0, c1}}, nil
}

// AutomorphismPlain applies φ_k to a plaintext (the reference the
// homomorphic version is tested against).
func (ev *Evaluator) AutomorphismPlain(pt *Plaintext, k int) *Plaintext {
	n := ev.params.N
	t := ev.params.T
	out := make(ring.Poly, n)
	for i, c := range pt.Coeffs {
		pos := (i * k) % (2 * n)
		if pos < n {
			out[pos] = c
		} else if c != 0 {
			out[pos-n] = t - c
		}
	}
	return &Plaintext{Coeffs: out}
}
