package bfv

import (
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// SecretKey holds the ternary secret polynomial s.
type SecretKey struct {
	S ring.Poly
}

// PublicKey holds the encryption key pair (P0, P1) = (-(a·s + e), a).
type PublicKey struct {
	P0, P1 ring.Poly
}

// RelinKey holds the relinearisation key: one row per base-2^w digit of the
// quadratic ciphertext component, Row[i] = (-(a_i·s + e_i) + 2^{w·i}·s², a_i).
type RelinKey struct {
	Rows     [][2]ring.Poly
	BaseBits uint
}

// KeyGen generates a secret/public key pair from the given randomness
// source. Sampling order: s (ternary), a (uniform), e (CBD).
func KeyGen(p Params, src *rng.Source) (*SecretKey, *PublicKey) {
	r := p.Ring()
	sk := &SecretKey{S: r.NewPoly()}
	r.TernaryPoly(src, sk.S)

	a := r.NewPoly()
	r.UniformPoly(src, a)
	e := r.NewPoly()
	r.CBDPoly(src, p.Eta, e)

	p0 := r.NewPoly()
	r.Mul(a, sk.S, p0)
	r.Add(p0, e, p0)
	r.Neg(p0, p0)
	return sk, &PublicKey{P0: p0, P1: a}
}

// NewRelinKey generates a relinearisation key for sk. Sampling order per
// row: a_i (uniform), e_i (CBD).
func NewRelinKey(p Params, sk *SecretKey, src *rng.Source) *RelinKey {
	r := p.Ring()
	s2 := r.NewPoly()
	r.Mul(sk.S, sk.S, s2)

	w := p.RelinBaseBits
	numRows := int((r.LogQ() + w - 1) / w)
	rows := make([][2]ring.Poly, numRows)
	pow := r.NewPoly() // 2^{w·i}·s², updated each row
	r.Copy(pow, s2)
	for i := 0; i < numRows; i++ {
		a := r.NewPoly()
		r.UniformPoly(src, a)
		e := r.NewPoly()
		r.CBDPoly(src, p.Eta, e)
		b := r.NewPoly()
		r.Mul(a, sk.S, b)
		r.Add(b, e, b)
		r.Neg(b, b)
		r.Add(b, pow, b)
		rows[i] = [2]ring.Poly{b, a}
		// pow <- pow * 2^w for the next digit.
		r.MulScalar(pow, 1<<w, pow)
	}
	return &RelinKey{Rows: rows, BaseBits: w}
}
