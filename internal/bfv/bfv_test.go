package bfv

import (
	"testing"
	"testing/quick"

	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

var testParams = []struct {
	name string
	p    Params
}{
	{"toy", ParamsToy()},
	{"oddq", ParamsOddQ()},
	{"paper", ParamsPaper()},
	{"toymul", ParamsToyMul()},
	{"ntt-toy", ParamsNTTToy()},
}

func randomMessage(p Params, src *rng.Source) []uint64 {
	m := make([]uint64, p.N)
	for i := range m {
		m[i] = src.Uniform(p.T)
	}
	return m
}

func setup(t *testing.T, p Params, seed string) (*Encoder, *Encryptor, *Decryptor, *Evaluator, *rng.Source) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	src := rng.NewSourceFromString(seed)
	sk, pk := KeyGen(p, src.Fork("keys"))
	return NewEncoder(p), NewEncryptor(p, pk), NewDecryptor(p, sk), NewEvaluator(p), src
}

func TestParamsValidate(t *testing.T) {
	for _, tc := range testParams {
		if err := tc.p.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	bad := Params{N: 1000, Q: 1 << 32, T: 1 << 16, Eta: 3, RelinBaseBits: 8}
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	bad = ParamsToy()
	bad.T = bad.Q // T too large
	if err := bad.Validate(); err == nil {
		t.Error("oversized T accepted")
	}
}

func TestPaperFootprintNumbers(t *testing.T) {
	// §4.2.1 Key Insight: with the paper parameters a ciphertext is 4×
	// the packed plaintext (2× from the tuple, 2× from 16->32 bit coeffs).
	p := ParamsPaper()
	if got := p.Delta(); got != 1<<16 {
		t.Errorf("Delta = %d, want 2^16", got)
	}
	if got := p.QBytes(); got != 4 {
		t.Errorf("QBytes = %d, want 4", got)
	}
	if got := p.PackedBitsPerCoeff(); got != 16 {
		t.Errorf("PackedBitsPerCoeff = %d, want 16", got)
	}
	if got := p.CiphertextBytes(); got != 8192 {
		t.Errorf("CiphertextBytes = %d, want 8192", got)
	}
	if got := p.PlaintextBytes(); got != 2048 {
		t.Errorf("PlaintextBytes = %d, want 2048", got)
	}
	if got := p.ExpansionFactor(); got != 4.0 {
		t.Errorf("ExpansionFactor = %v, want 4", got)
	}
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	for _, tc := range testParams {
		t.Run(tc.name, func(t *testing.T) {
			enc, encryptor, dec, _, src := setup(t, tc.p, "roundtrip-"+tc.name)
			for trial := 0; trial < 3; trial++ {
				m := randomMessage(tc.p, src)
				pt, err := enc.Encode(m)
				if err != nil {
					t.Fatal(err)
				}
				ct := encryptor.Encrypt(pt, src.ForkIndexed("enc", trial))
				got := enc.Decode(dec.Decrypt(ct))
				for i := range m {
					if got[i] != m[i] {
						t.Fatalf("trial %d coeff %d: got %d want %d", trial, i, got[i], m[i])
					}
				}
			}
		})
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, _, _, src := setup(t, p, "randomized")
	pt, _ := enc.Encode(randomMessage(p, src))
	ct1 := encryptor.Encrypt(pt, src.Fork("a"))
	ct2 := encryptor.Encrypt(pt, src.Fork("b"))
	r := p.Ring()
	if r.Equal(ct1.C[0], ct2.C[0]) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestEncryptionIsDeterministicPerSeed(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, _, _, src := setup(t, p, "det")
	pt, _ := enc.Encode(randomMessage(p, src))
	ct1 := encryptor.Encrypt(pt, rng.NewSourceFromString("fixed"))
	ct2 := encryptor.Encrypt(pt, rng.NewSourceFromString("fixed"))
	r := p.Ring()
	if !r.Equal(ct1.C[0], ct2.C[0]) || !r.Equal(ct1.C[1], ct2.C[1]) {
		t.Fatal("same randomness source must give identical ciphertexts")
	}
}

func TestEncryptC0MatchesEncrypt(t *testing.T) {
	// The seeded match-token mode depends on EncryptC0 replaying the
	// randomness stream of Encrypt exactly.
	for _, tc := range testParams {
		p := tc.p
		enc, encryptor, _, _, src := setup(t, p, "c0-"+tc.name)
		pt, _ := enc.Encode(randomMessage(p, src))
		full := encryptor.Encrypt(pt, rng.NewSourceFromString("shared-seed"))
		c0 := encryptor.EncryptC0(pt, rng.NewSourceFromString("shared-seed"))
		if !p.Ring().Equal(full.C[0], c0) {
			t.Fatalf("%s: EncryptC0 != Encrypt.C[0]", tc.name)
		}
	}
}

func TestHomAdd(t *testing.T) {
	for _, tc := range testParams {
		t.Run(tc.name, func(t *testing.T) {
			enc, encryptor, dec, ev, src := setup(t, tc.p, "add-"+tc.name)
			ma := randomMessage(tc.p, src)
			mb := randomMessage(tc.p, src)
			pa, _ := enc.Encode(ma)
			pb, _ := enc.Encode(mb)
			ca := encryptor.Encrypt(pa, src.Fork("a"))
			cb := encryptor.Encrypt(pb, src.Fork("b"))
			sum := ev.Add(ca, cb)
			got := enc.Decode(dec.Decrypt(sum))
			for i := range ma {
				want := (ma[i] + mb[i]) % tc.p.T
				if got[i] != want {
					t.Fatalf("coeff %d: got %d want %d", i, got[i], want)
				}
			}
		})
	}
}

func TestAddInto(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, dec, ev, src := setup(t, p, "addinto")
	ma, mb := randomMessage(p, src), randomMessage(p, src)
	pa, _ := enc.Encode(ma)
	pb, _ := enc.Encode(mb)
	ca := encryptor.Encrypt(pa, src.Fork("a"))
	cb := encryptor.Encrypt(pb, src.Fork("b"))
	out := ca.Clone()
	if err := ev.AddInto(ca, cb, out); err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dec.Decrypt(out))
	for i := range ma {
		if got[i] != (ma[i]+mb[i])%p.T {
			t.Fatalf("coeff %d mismatch", i)
		}
	}
	// Aliased output.
	if err := ev.AddInto(ca, cb, ca); err != nil {
		t.Fatal(err)
	}
	got = enc.Decode(dec.Decrypt(ca))
	for i := range ma {
		if got[i] != (ma[i]+mb[i])%p.T {
			t.Fatalf("aliased coeff %d mismatch", i)
		}
	}
	// Degree mismatch must error.
	three := &Ciphertext{C: []ring.Poly{ca.C[0], ca.C[1], ca.C[0]}}
	if err := ev.AddInto(three, cb, out); err == nil {
		t.Fatal("AddInto accepted mismatched degrees")
	}
}

func TestHomSubNeg(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, dec, ev, src := setup(t, p, "subneg")
	ma, mb := randomMessage(p, src), randomMessage(p, src)
	pa, _ := enc.Encode(ma)
	pb, _ := enc.Encode(mb)
	ca := encryptor.Encrypt(pa, src.Fork("a"))
	cb := encryptor.Encrypt(pb, src.Fork("b"))
	diff := enc.Decode(dec.Decrypt(ev.Sub(ca, cb)))
	neg := enc.Decode(dec.Decrypt(ev.Neg(ca)))
	for i := range ma {
		wantDiff := (ma[i] + p.T - mb[i]) % p.T
		wantNeg := (p.T - ma[i]) % p.T
		if diff[i] != wantDiff {
			t.Fatalf("sub coeff %d: got %d want %d", i, diff[i], wantDiff)
		}
		if neg[i] != wantNeg {
			t.Fatalf("neg coeff %d: got %d want %d", i, neg[i], wantNeg)
		}
	}
}

func TestPlainOps(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, dec, ev, src := setup(t, p, "plain")
	ma, mb := randomMessage(p, src), randomMessage(p, src)
	pa, _ := enc.Encode(ma)
	pb, _ := enc.Encode(mb)
	ca := encryptor.Encrypt(pa, src.Fork("a"))

	addP := enc.Decode(dec.Decrypt(ev.AddPlain(ca, pb)))
	subP := enc.Decode(dec.Decrypt(ev.SubPlain(ca, pb)))
	for i := range ma {
		if addP[i] != (ma[i]+mb[i])%p.T {
			t.Fatalf("AddPlain coeff %d mismatch", i)
		}
		if subP[i] != (ma[i]+p.T-mb[i])%p.T {
			t.Fatalf("SubPlain coeff %d mismatch", i)
		}
	}

	// MulPlain must equal the plaintext-ring negacyclic product. MulPlain
	// noise grows by a factor of n·|pt|, so use a binary multiplier (the
	// form the Boolean/arithmetic baselines use) to stay within budget.
	bits := make([]uint64, p.N)
	for i := range bits {
		bits[i] = src.Uniform(2)
	}
	pBits, _ := enc.Encode(bits)
	mulP := enc.Decode(dec.Decrypt(ev.MulPlain(ca, pBits)))
	rt := ring.MustNew(p.N, p.T)
	want := rt.NewPoly()
	rt.MulSchoolbook(ring.Poly(ma), ring.Poly(bits), want)
	for i := range want {
		if mulP[i] != want[i] {
			t.Fatalf("MulPlain coeff %d: got %d want %d", i, mulP[i], want[i])
		}
	}
}

func TestHomMul(t *testing.T) {
	for _, name := range []string{"toymul", "ntt-toy"} {
		var p Params
		for _, tc := range testParams {
			if tc.name == name {
				p = tc.p
			}
		}
		t.Run(name, func(t *testing.T) {
			enc, encryptor, dec, ev, src := setup(t, p, "mul-"+name)
			// Small messages keep the product noise comfortably in budget.
			ma := make([]uint64, p.N)
			mb := make([]uint64, p.N)
			for i := range ma {
				ma[i] = src.Uniform(2)
				mb[i] = src.Uniform(2)
			}
			pa, _ := enc.Encode(ma)
			pb, _ := enc.Encode(mb)
			ca := encryptor.Encrypt(pa, src.Fork("a"))
			cb := encryptor.Encrypt(pb, src.Fork("b"))
			prod, err := ev.Mul(ca, cb)
			if err != nil {
				t.Fatal(err)
			}
			if prod.Degree() != 2 {
				t.Fatalf("product degree = %d, want 2", prod.Degree())
			}
			got := enc.Decode(dec.Decrypt(prod))
			rt := ring.MustNew(p.N, p.T)
			want := rt.NewPoly()
			rt.MulSchoolbook(ring.Poly(ma), ring.Poly(mb), want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("coeff %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestRelinearize(t *testing.T) {
	p := ParamsToyMul()
	enc, encryptor, dec, ev, src := setup(t, p, "relin")
	sk, pk := KeyGen(p, rng.NewSourceFromString("relin-keys"))
	encryptor = NewEncryptor(p, pk)
	dec = NewDecryptor(p, sk)
	rlk := NewRelinKey(p, sk, rng.NewSourceFromString("rlk"))

	ma := make([]uint64, p.N)
	mb := make([]uint64, p.N)
	for i := range ma {
		ma[i] = src.Uniform(2)
		mb[i] = src.Uniform(2)
	}
	pa, _ := enc.Encode(ma)
	pb, _ := enc.Encode(mb)
	ca := encryptor.Encrypt(pa, src.Fork("a"))
	cb := encryptor.Encrypt(pb, src.Fork("b"))
	prod, err := ev.MulRelin(ca, cb, rlk)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 1 {
		t.Fatalf("relinearised degree = %d, want 1", prod.Degree())
	}
	got := enc.Decode(dec.Decrypt(prod))
	rt := ring.MustNew(p.N, p.T)
	want := rt.NewPoly()
	rt.MulSchoolbook(ring.Poly(ma), ring.Poly(mb), want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], want[i])
		}
	}
	// A relinearised product must still support homomorphic addition.
	sum := ev.Add(prod, prod)
	got = enc.Decode(dec.Decrypt(sum))
	for i := range want {
		if got[i] != (2*want[i])%p.T {
			t.Fatalf("post-relin add coeff %d mismatch", i)
		}
	}
}

func TestNoiseBudget(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, dec, ev, src := setup(t, p, "noise")
	pt, _ := enc.Encode(randomMessage(p, src))
	ct := encryptor.Encrypt(pt, src.Fork("e"))
	fresh := dec.NoiseBudgetBits(ct)
	if fresh <= 0 {
		t.Fatalf("fresh ciphertext has non-positive noise budget: %v", fresh)
	}
	sum := ev.Add(ct, ct)
	after := dec.NoiseBudgetBits(sum)
	if after > fresh {
		t.Fatalf("noise budget increased after addition: %v -> %v", fresh, after)
	}
	if dec.NoiseInfNorm(ct) == 0 {
		t.Fatal("fresh ciphertext has zero noise; encryption is leaking plaintexts")
	}
}

func TestHomAddQuick(t *testing.T) {
	p := ParamsToy()
	enc, encryptor, dec, ev, _ := setup(t, p, "quick")
	f := func(rawA, rawB []uint16, seed int64) bool {
		ma := make([]uint64, p.N)
		mb := make([]uint64, p.N)
		for i := 0; i < p.N && i < len(rawA); i++ {
			ma[i] = uint64(rawA[i])
		}
		for i := 0; i < p.N && i < len(rawB); i++ {
			mb[i] = uint64(rawB[i])
		}
		pa, _ := enc.Encode(ma)
		pb, _ := enc.Encode(mb)
		src := rng.NewSourceFromString(string(rune(seed)))
		ca := encryptor.Encrypt(pa, src.Fork("a"))
		cb := encryptor.Encrypt(pb, src.Fork("b"))
		got := enc.Decode(dec.Decrypt(ev.Add(ca, cb)))
		for i := range ma {
			if got[i] != (ma[i]+mb[i])%p.T {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeValidation(t *testing.T) {
	p := ParamsToy()
	enc := NewEncoder(p)
	if _, err := enc.Encode(make([]uint64, p.N+1)); err == nil {
		t.Error("Encode accepted too many values")
	}
	if _, err := enc.Encode([]uint64{p.T}); err == nil {
		t.Error("Encode accepted out-of-range value")
	}
	if _, err := enc.EncodeUint16([]uint16{0xFFFF}); err != nil {
		t.Errorf("EncodeUint16 rejected valid value: %v", err)
	}
}

func TestMulRequiresDegreeOne(t *testing.T) {
	p := ParamsToyMul()
	enc, encryptor, _, ev, src := setup(t, p, "deg")
	pt, _ := enc.Encode(make([]uint64, p.N))
	ca := encryptor.Encrypt(pt, src.Fork("a"))
	cb := encryptor.Encrypt(pt, src.Fork("b"))
	prod, _ := ev.Mul(ca, cb)
	if _, err := ev.Mul(prod, cb); err == nil {
		t.Error("Mul accepted a degree-2 input")
	}
	if _, err := ev.Relinearize(ca, nil); err == nil {
		t.Error("Relinearize accepted a degree-1 input")
	}
}
