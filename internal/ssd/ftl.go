package ssd

import "fmt"

// This file implements the conventional storage region of §4.3.2: the half
// of the drive that keeps serving ordinary block I/O next to the
// CIPHERMATCH region. Each region has its own mapping table; the
// conventional one is a page-level L2P map with out-of-place writes and
// greedy garbage collection, and a model of the internal-DRAM L2P cache
// (the paper notes ~0.1% of capacity cached at sub-byte granularity; we
// track hits/misses of a bounded cache).

// ppn identifies a physical page.
type ppn struct {
	plane, block, wl int
}

// FTLStats counts conventional-region activity.
type FTLStats struct {
	HostWrites  int
	HostReads   int
	PageMoves   int // valid pages relocated by garbage collection
	GCs         int
	L2PCacheHit int
	L2PCacheMis int
}

// ftl is the conventional-region flash translation layer.
type ftl struct {
	ssd   *SSD
	l2p   map[int]ppn
	owner map[ppn]int // reverse map: physical page -> lpn (-1 = invalid)

	// Allocation cursor over the conventional block range.
	cur      ppn
	freeWL   int
	cacheCap int
	cache    map[int]struct{} // cached L2P entries (FIFO-evicted)
	cacheQ   []int
	stats    FTLStats
}

// convBlocks returns the block range [cmBlocks, BlocksPerPlane) of the
// conventional region.
func (s *SSD) convBlockStart() int { return s.cmBlocks }

func newFTL(s *SSD) *ftl {
	f := &ftl{
		ssd:   s,
		l2p:   make(map[int]ppn),
		owner: make(map[ppn]int),
		// The paper: L2P cache is ~0.1% of capacity; scale to the test
		// geometry by caching one entry per 1000 pages, minimum 64.
		cacheCap: max(64, s.conventionalPages()/1000),
		cache:    make(map[int]struct{}),
	}
	f.cur = ppn{plane: 0, block: s.convBlockStart(), wl: 0}
	return f
}

// conventionalPages returns the page count of the conventional region.
func (s *SSD) conventionalPages() int {
	g := s.cfg.Geometry
	return (g.BlocksPerPlane - s.cmBlocks) * g.WLsPerBlock() * g.TotalPlanes()
}

// FTLStats returns the conventional-region statistics.
func (s *SSD) FTLStats() FTLStats {
	if s.ftl == nil {
		return FTLStats{}
	}
	return s.ftl.stats
}

// Write stores one logical page (conventional I/O path). Overwrites are
// out-of-place: the previous physical page is invalidated for GC.
func (s *SSD) Write(lpn int, data []byte) error {
	if s.ftl == nil {
		s.ftl = newFTL(s)
	}
	return s.ftl.write(lpn, data)
}

// Read returns the logical page's contents; unwritten pages read as zeros.
func (s *SSD) Read(lpn int) ([]byte, error) {
	if s.ftl == nil {
		s.ftl = newFTL(s)
	}
	return s.ftl.read(lpn)
}

func (f *ftl) write(lpn int, data []byte) error {
	g := f.ssd.cfg.Geometry
	if len(data) != g.PageBytes {
		return fmt.Errorf("ssd: conventional write must be one %d-byte page, got %d", g.PageBytes, len(data))
	}
	loc, err := f.alloc()
	if err != nil {
		return err
	}
	words := make([]uint64, g.PageWords())
	for i := range words {
		for b := 0; b < 8; b++ {
			words[i] |= uint64(data[i*8+b]) << uint(8*b)
		}
	}
	if err := f.ssd.planes[loc.plane].ProgramPage(loc.block, loc.wl, words); err != nil {
		return err
	}
	if old, ok := f.l2p[lpn]; ok {
		f.owner[old] = -1 // invalidate for GC
	}
	f.l2p[lpn] = loc
	f.owner[loc] = lpn
	f.touchCache(lpn)
	f.stats.HostWrites++
	return nil
}

func (f *ftl) read(lpn int) ([]byte, error) {
	g := f.ssd.cfg.Geometry
	f.lookupCache(lpn)
	loc, ok := f.l2p[lpn]
	out := make([]byte, g.PageBytes)
	if !ok {
		f.stats.HostReads++
		return out, nil
	}
	p := f.ssd.planes[loc.plane]
	if err := p.ReadPage(loc.block, loc.wl); err != nil {
		return nil, err
	}
	for i, w := range p.S {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> uint(8*b))
		}
	}
	f.stats.HostReads++
	return out, nil
}

// alloc returns the next free physical page, running garbage collection
// when the cursor exhausts the region.
func (f *ftl) alloc() (ppn, error) {
	g := f.ssd.cfg.Geometry
	for attempts := 0; attempts < 2; attempts++ {
		for f.cur.block < g.BlocksPerPlane {
			loc := f.cur
			f.advance()
			// A page is allocatable only if never programmed since the
			// last erase; invalidated pages stay unusable until GC.
			if _, used := f.owner[loc]; !used {
				return loc, nil
			}
		}
		if err := f.gc(); err != nil {
			return ppn{}, err
		}
	}
	return ppn{}, fmt.Errorf("ssd: conventional region full")
}

func (f *ftl) advance() {
	g := f.ssd.cfg.Geometry
	f.cur.wl++
	if f.cur.wl >= g.WLsPerBlock() {
		f.cur.wl = 0
		f.cur.plane++
		if f.cur.plane >= len(f.ssd.planes) {
			f.cur.plane = 0
			f.cur.block++
		}
	}
}

// gc reclaims every conventional block containing invalidated pages:
// valid pages are read out, the block is erased, and the valid pages are
// programmed back at its start (counted as PageMoves). Victim selection is
// exhaustive rather than greedy — adequate for the model.
func (f *ftl) gc() error {
	g := f.ssd.cfg.Geometry
	f.stats.GCs++
	freed := false
	for planeIdx := range f.ssd.planes {
		plane := f.ssd.planes[planeIdx]
		for block := f.ssd.convBlockStart(); block < g.BlocksPerPlane; block++ {
			type saved struct {
				lpn  int
				data []uint64
			}
			var live []saved
			invalid := 0
			for wl := 0; wl < g.WLsPerBlock(); wl++ {
				lpn, used := f.owner[ppn{planeIdx, block, wl}]
				if !used {
					continue
				}
				if lpn == -1 {
					invalid++
					continue
				}
				if err := plane.ReadPage(block, wl); err != nil {
					return err
				}
				data := make([]uint64, len(plane.S))
				copy(data, plane.S)
				live = append(live, saved{lpn: lpn, data: data})
			}
			if invalid == 0 {
				continue // nothing to reclaim here
			}
			if err := plane.EraseBlock(block); err != nil {
				return err
			}
			for wl := 0; wl < g.WLsPerBlock(); wl++ {
				delete(f.owner, ppn{planeIdx, block, wl})
			}
			for wl, s := range live {
				if err := plane.ProgramPage(block, wl, s.data); err != nil {
					return err
				}
				loc := ppn{planeIdx, block, wl}
				f.l2p[s.lpn] = loc
				f.owner[loc] = s.lpn
				f.stats.PageMoves++
			}
			freed = true
		}
	}
	if freed {
		f.cur = ppn{plane: 0, block: f.ssd.convBlockStart(), wl: 0}
		return nil
	}
	return fmt.Errorf("ssd: garbage collection found no reclaimable block")
}

// touchCache / lookupCache model the internal-DRAM L2P cache.
func (f *ftl) touchCache(lpn int) {
	if _, ok := f.cache[lpn]; ok {
		return
	}
	f.cache[lpn] = struct{}{}
	f.cacheQ = append(f.cacheQ, lpn)
	for len(f.cacheQ) > f.cacheCap {
		evict := f.cacheQ[0]
		f.cacheQ = f.cacheQ[1:]
		delete(f.cache, evict)
	}
}

func (f *ftl) lookupCache(lpn int) {
	if _, ok := f.cache[lpn]; ok {
		f.stats.L2PCacheHit++
		return
	}
	f.stats.L2PCacheMis++
	f.touchCache(lpn)
}
