package ssd

import (
	"fmt"

	"ciphermatch/internal/core"
	"ciphermatch/internal/flash"
	"ciphermatch/internal/mathutil"
)

// CMSearch executes a secure string search entirely inside the SSD
// (CM-search, §4.3.2): for every shift variant and every vertical group,
// the controller composes the matching query-pattern operand page,
// transposes it, triggers the bop_add µ-program (bit-serial homomorphic
// addition across all bitlines of the group's plane), reads the sums back,
// and runs index generation against the query's match tokens. Only the hit
// index leaves the drive.
//
// The query must carry match tokens (core.ModeSeededMatch).
func (s *SSD) CMSearch(q *core.Query) (*core.IndexResult, error) {
	if s.numChunks == 0 {
		return nil, fmt.Errorf("ssd: no database in the CIPHERMATCH region")
	}
	if q.Tokens == nil {
		return nil, fmt.Errorf("ssd: CM-search requires match tokens (core.ModeSeededMatch)")
	}
	if q.NumChunks != s.numChunks || q.DBBitLen != s.dbBitLen {
		return nil, fmt.Errorf("ssd: query prepared for %d chunks/%d bits, stored %d chunks/%d bits",
			q.NumChunks, q.DBBitLen, s.numChunks, s.dbBitLen)
	}
	n := s.params.N
	ir := &core.IndexResult{Hits: make(core.HitBitmaps, len(q.Residues))}
	numWindows := s.numChunks * n
	// Snapshot the controller counters so ir.Stats reports this call's
	// work (the cumulative counters stay in ControllerStats), keeping
	// per-call stats comparable across engines.
	startAdds := s.ctrl.HomAdds
	startPages := s.ctrl.IndexGenPages

	// Pre-convert pattern components once per phase.
	patterns := make(map[int][2][]uint32, len(q.Patterns))
	for psi, ct := range q.Patterns {
		patterns[psi] = [2][]uint32{polyToU32(ct.C[0]), polyToU32(ct.C[1])}
		s.ctrl.HostBytesIn += int64(ct.SizeBytes(s.params))
	}

	for _, res := range q.Residues {
		toks, ok := q.Tokens[res]
		if !ok || len(toks) != s.numChunks {
			return nil, fmt.Errorf("ssd: tokens missing or mis-sized for residue %d", res)
		}
		bm := core.NewBitset(numWindows)
		for g := 0; g < s.numGroups(); g++ {
			plane, block, wlBase, err := s.groupAddr(g)
			if err != nil {
				return nil, err
			}
			// Operand page: the pattern component matching each stored
			// slot (chunk j component c gets pattern phase psi(j, res)).
			operand := s.composeGroup(g, func(slot int) []uint32 {
				j, c := slot/2, slot%2
				if j >= s.numChunks {
					return nil
				}
				psi := core.PatternPhase(n, j, res, q.YBits)
				pc, ok := patterns[psi]
				if !ok {
					return nil
				}
				return pc[c]
			})

			// Controller: transpose operand to bit-planes (the software
			// unit pipelines this under the flash reads; accounted here,
			// discounted in the performance model).
			bPlanes := make([][]uint64, flash.OperandBits)
			for i := range bPlanes {
				bPlanes[i] = make([]uint64, s.cfg.Geometry.PageWords())
			}
			mathutil.TransposeToBitPlanes(operand, bPlanes)
			s.transpose()

			// Flash: bop_add — bit-serial homomorphic addition across all
			// bitlines of the group.
			sumPlanes, err := s.planes[plane].BitSerialAddPlanes(block, wlBase, bPlanes)
			if err != nil {
				return nil, err
			}
			sums := make([]uint32, s.cfg.Geometry.PageBits())
			mathutil.TransposeFromBitPlanes(sumPlanes, sums)
			s.transpose()
			// Count the ciphertext additions actually performed: occupied
			// slots in this group, two slots (c0, c1) per chunk.
			occupied := min((g+1)*s.lanesPerGroup, 2*s.numChunks) - g*s.lanesPerGroup
			if occupied > 0 {
				s.ctrl.HomAdds += occupied / 2
			}

			// Controller: index generation — compare each c0 lane against
			// its chunk's match token.
			for lane := 0; lane < s.lanesPerGroup; lane++ {
				slot := g*s.lanesPerGroup + lane
				j, c := slot/2, slot%2
				if c != 0 || j >= s.numChunks {
					continue
				}
				tok := toks[j]
				base := j * n
				laneSums := sums[lane*n : (lane+1)*n]
				for i, v := range laneSums {
					if uint64(v) == tok[i] {
						bm.Set(base + i)
					}
				}
			}
			s.ctrl.IndexGenPages++
			s.ctrl.IndexGenTime += s.cfg.IndexGenLatency
			s.ctrl.IndexGenEnergy += s.cfg.Energy.IndexGenPerPage
		}
		ir.Hits[res] = bm
	}
	if !q.HitsOnly {
		ir.Candidates = core.Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
		s.ctrl.HostBytesOut += int64(len(ir.Candidates) * core.CandidateWireBytes)
	}
	ir.Stats.HomAdds = s.ctrl.HomAdds - startAdds
	ir.Stats.CoeffCompares = int64(s.ctrl.IndexGenPages-startPages) * int64(s.cfg.Geometry.PageBits()/2)
	return ir, nil
}
