package ssd

import (
	"fmt"

	"ciphermatch/internal/core"
	"ciphermatch/internal/flash"
	"ciphermatch/internal/mathutil"
)

// CMSearch executes a secure string search entirely inside the SSD
// (CM-search, §4.3.2), residue-fused over the factored match-token
// representation: the hit condition (c0 - DBTok[j]) mod q == RHS[psi]
// becomes c0 + (q - DBTok[j]) == RHS[psi] mod 2^32, so the controller
// negates the per-chunk DBTok plane once, composes it as the operand
// page, and a single bop_add µ-program sweep (bit-serial homomorphic
// addition across all bitlines of each group's plane) serves every
// shift variant at once — the flash array is read once per search, not
// once per residue. Index generation then compares each c0 lane's sums
// against the R cache-resident RHS rows. Only the hit index leaves the
// drive.
//
// Legacy expanded-token queries are re-factored by the controller
// (core.FactorQuery), so old clients get the single-pass schedule too.
// The query must carry match tokens (core.ModeSeededMatch).
func (s *SSD) CMSearch(q *core.Query) (*core.IndexResult, error) {
	if s.numChunks == 0 {
		return nil, fmt.Errorf("ssd: no database in the CIPHERMATCH region")
	}
	if !q.HasTokens() {
		return nil, fmt.Errorf("ssd: CM-search requires match tokens (core.ModeSeededMatch)")
	}
	if q.NumChunks != s.numChunks || q.DBBitLen != s.dbBitLen {
		return nil, fmt.Errorf("ssd: query prepared for %d chunks/%d bits, stored %d chunks/%d bits",
			q.NumChunks, q.DBBitLen, s.numChunks, s.dbBitLen)
	}
	if q.Factored() {
		if len(q.DBTok) != s.numChunks {
			return nil, fmt.Errorf("ssd: query DBTok plane has %d chunks, stored %d", len(q.DBTok), s.numChunks)
		}
	} else {
		for _, res := range q.Residues {
			if toks, ok := q.Tokens[res]; !ok || len(toks) != s.numChunks {
				return nil, fmt.Errorf("ssd: tokens missing or mis-sized for residue %d", res)
			}
		}
	}
	n := s.params.N
	fq, err := core.FactorQuery(s.params.Ring(), q, s.numChunks)
	if err != nil {
		return nil, err
	}
	// What the client shipped for this query (factored: DBTok + RHS
	// polynomials; legacy: pattern ciphertexts + expanded tokens).
	s.ctrl.HostBytesIn += q.SizeBytes(s.params)

	ir := &core.IndexResult{Hits: make(core.HitBitmaps, len(q.Residues))}
	if len(q.Residues) == 0 {
		// Nothing to detect: FactorQuery returns an empty form (no
		// DBTok to negate), so answer before touching it.
		return ir, nil
	}
	numWindows := s.numChunks * n
	bms := make([]*core.Bitset, len(q.Residues))
	for vi, res := range q.Residues {
		bms[vi] = core.NewBitset(numWindows)
		ir.Hits[res] = bms[vi]
	}
	// Snapshot the controller counters so ir.Stats reports this call's
	// work (the cumulative counters stay in ControllerStats), keeping
	// per-call stats comparable across engines.
	startAdds := s.ctrl.HomAdds

	// Controller: negate the DBTok plane once (mod 2^32, two's
	// complement on the 32-bit lanes) so the in-flash addition computes
	// the difference the factored comparison needs.
	negTok := make([][]uint32, s.numChunks)
	for j := range negTok {
		p := fq.DBTok[j]
		out := make([]uint32, len(p))
		for i, c := range p {
			out[i] = -uint32(c)
		}
		negTok[j] = out
	}

	for g := 0; g < s.numGroups(); g++ {
		plane, block, wlBase, err := s.groupAddr(g)
		if err != nil {
			return nil, err
		}
		// Operand page: chunk j's c0 slot gets the negated DBTok
		// plane; c1 slots stay zero (seeded-match index generation
		// never reads second components).
		operand := s.composeGroup(g, func(slot int) []uint32 {
			j, c := slot/2, slot%2
			if c != 0 || j >= s.numChunks {
				return nil
			}
			return negTok[j]
		})

		// Controller: transpose operand to bit-planes (the software
		// unit pipelines this under the flash reads; accounted here,
		// discounted in the performance model).
		bPlanes := make([][]uint64, flash.OperandBits)
		for i := range bPlanes {
			bPlanes[i] = make([]uint64, s.cfg.Geometry.PageWords())
		}
		mathutil.TransposeToBitPlanes(operand, bPlanes)
		s.transpose()

		// Flash: bop_add — bit-serial addition across all bitlines
		// of the group, one sweep for every residue.
		sumPlanes, err := s.planes[plane].BitSerialAddPlanes(block, wlBase, bPlanes)
		if err != nil {
			return nil, err
		}
		sums := make([]uint32, s.cfg.Geometry.PageBits())
		mathutil.TransposeFromBitPlanes(sumPlanes, sums)
		s.transpose()
		// Count the per-chunk ciphertext operations actually
		// performed: occupied slots in this group, two slots
		// (c0, c1) per chunk, one fused evaluation per chunk.
		occupied := min((g+1)*s.lanesPerGroup, 2*s.numChunks) - g*s.lanesPerGroup
		if occupied > 0 {
			s.ctrl.HomAdds += occupied / 2
		}

		// Controller: index generation — compare each c0 lane's
		// differences against its chunk's R RHS comparands.
		for lane := 0; lane < s.lanesPerGroup; lane++ {
			slot := g*s.lanesPerGroup + lane
			j, c := slot/2, slot%2
			if c != 0 || j >= s.numChunks {
				continue
			}
			row := fq.Row(core.ChunkPhi(n, j, q.YBits))
			if row == nil {
				return nil, fmt.Errorf("ssd: factored query has no RHS row for chunk %d", j)
			}
			base := j * n
			laneSums := sums[lane*n : (lane+1)*n]
			for vi, rhs := range row {
				bm := bms[vi]
				for i, v := range laneSums {
					if uint64(v) == rhs[i] {
						bm.Set(base + i)
					}
				}
				ir.Stats.CoeffCompares += int64(n)
			}
			ir.Stats.ChunkStreams++
		}
		s.ctrl.IndexGenPages++
		s.ctrl.IndexGenTime += s.cfg.IndexGenLatency
		s.ctrl.IndexGenEnergy += s.cfg.Energy.IndexGenPerPage
	}
	if !q.HitsOnly {
		ir.Candidates = core.Candidates(ir.Hits, q.DBBitLen, q.YBits, q.AlignBits)
		s.ctrl.HostBytesOut += int64(len(ir.Candidates) * core.CandidateWireBytes)
	}
	ir.Stats.HomAdds = s.ctrl.HomAdds - startAdds
	return ir, nil
}
