package ssd

import (
	"bytes"
	"testing"

	"ciphermatch/internal/bfv"
	corepkg "ciphermatch/internal/core"
	"ciphermatch/internal/rng"
)

func pageOf(t *testing.T, s *SSD, fill byte) []byte {
	t.Helper()
	p := make([]byte, s.cfg.Geometry.PageBytes)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestConventionalWriteReadRoundtrip(t *testing.T) {
	s := newTestSSD(t)
	data := make([]byte, s.cfg.Geometry.PageBytes)
	rng.NewSourceFromString("ftl-data").Bytes(data)
	if err := s.Write(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("conventional roundtrip corrupted")
	}
	// Unwritten LPNs read as zeros.
	zero, err := s.Read(99)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten LPN read non-zero")
		}
	}
	if s.FTLStats().HostWrites != 1 || s.FTLStats().HostReads != 2 {
		t.Fatalf("stats: %+v", s.FTLStats())
	}
}

func TestConventionalOverwriteIsOutOfPlace(t *testing.T) {
	s := newTestSSD(t)
	if err := s.Write(1, pageOf(t, s, 0xAA)); err != nil {
		t.Fatal(err)
	}
	first := s.ftl.l2p[1]
	if err := s.Write(1, pageOf(t, s, 0xBB)); err != nil {
		t.Fatal(err)
	}
	second := s.ftl.l2p[1]
	if first == second {
		t.Fatal("overwrite must go out of place")
	}
	got, err := s.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xBB {
		t.Fatal("overwrite lost")
	}
	if lpn, used := s.ftl.owner[first]; !used || lpn != -1 {
		t.Fatal("old physical page must be invalidated")
	}
}

func TestConventionalRegionDisjointFromCMRegion(t *testing.T) {
	// Conventional writes must never land in the CIPHERMATCH block range,
	// and a CM search must still work after conventional traffic.
	s := newTestSSD(t)
	for lpn := 0; lpn < 20; lpn++ {
		if err := s.Write(lpn, pageOf(t, s, byte(lpn))); err != nil {
			t.Fatal(err)
		}
	}
	for _, loc := range s.ftl.l2p {
		if loc.block < s.convBlockStart() {
			t.Fatalf("conventional page allocated in CM region block %d", loc.block)
		}
	}

	cfg := corepkg.Config{Params: bfv.ParamsToy(), Mode: corepkg.ModeSeededMatch}
	client, err := corepkg.NewClient(cfg, rng.NewSourceFromString("ftl-cm"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	edb, err := client.EncryptDatabase(data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0x10, 0x20}, 16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CMSearch(q); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	// Shrink the conventional region to force GC quickly.
	cfg := TestConfig()
	cfg.Geometry.BlocksPerPlane = 2 // 1 CM block + 1 conventional block per plane
	cfg.Geometry.Channels = 1
	cfg.Geometry.DiesPerChan = 1
	cfg.Geometry.PlanesPerDie = 1
	s, err := New(cfg, bfv.ParamsToy(), SoftwareTransposition)
	if err != nil {
		t.Fatal(err)
	}
	wls := cfg.Geometry.WLsPerBlock()
	// Fill the single conventional block by overwriting one LPN: every
	// write invalidates the previous page, so the block fills with
	// garbage and GC must reclaim it to keep going.
	for i := 0; i < 3*wls; i++ {
		if err := s.Write(0, pageOf(t, s, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if s.FTLStats().GCs == 0 {
		t.Fatal("expected garbage collection to run")
	}
	got, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != byte(3*wls-1) {
		t.Fatalf("latest version lost after GC: %#x", got[0])
	}
}

func TestL2PCacheStats(t *testing.T) {
	s := newTestSSD(t)
	if err := s.Write(5, pageOf(t, s, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(5); err != nil { // cached by the write
		t.Fatal(err)
	}
	if _, err := s.Read(5); err != nil {
		t.Fatal(err)
	}
	st := s.FTLStats()
	if st.L2PCacheHit < 2 {
		t.Fatalf("expected cache hits, got %+v", st)
	}
}
