package ssd

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"time"
)

// This file implements §7.2: the match index must travel from the SSD to
// the client over channels the threat model treats as vulnerable, so
// commodity SSDs' hardware AES engine encrypts it before transmission. The
// paper's offline step wraps the AES key with public-key encryption; here
// the wrapped key is modelled as pre-shared (the wrapping happens once and
// amortises, exactly as the paper argues).

// AESLatencyPer16B is the synthesised AES unit's latency per 16-byte block
// (§7.2: 12.6 ns at 22 nm; rounded to nanosecond granularity here, the
// model's finest unit).
const AESLatencyPer16B = 13 * time.Nanosecond

// IndexCryptor seals match indices with AES-256-GCM using the drive's
// index key.
type IndexCryptor struct {
	aead cipher.AEAD
}

// NewIndexCryptor builds a cryptor from a 32-byte key.
func NewIndexCryptor(key [32]byte) (*IndexCryptor, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &IndexCryptor{aead: aead}, nil
}

// marshalIndex serialises candidate offsets.
func marshalIndex(candidates []int) []byte {
	out := make([]byte, 4+8*len(candidates))
	binary.LittleEndian.PutUint32(out, uint32(len(candidates)))
	for i, c := range candidates {
		binary.LittleEndian.PutUint64(out[4+8*i:], uint64(c))
	}
	return out
}

func unmarshalIndex(data []byte) ([]int, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("ssd: index blob too short")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) != 4+8*n {
		return nil, fmt.Errorf("ssd: index blob length %d inconsistent with count %d", len(data), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	return out, nil
}

// Seal encrypts the candidate list with a deterministic per-message nonce
// counter supplied by the caller (the drive increments it per search) and
// returns the blob plus the modelled hardware-AES latency.
func (c *IndexCryptor) Seal(counter uint64, candidates []int) (blob []byte, hwLatency time.Duration) {
	nonce := make([]byte, c.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, counter)
	plain := marshalIndex(candidates)
	blob = c.aead.Seal(nonce, nonce, plain, nil)
	blocks := (len(plain) + 15) / 16
	if blocks == 0 {
		blocks = 1
	}
	return blob, time.Duration(blocks) * AESLatencyPer16B
}

// Open decrypts a sealed index blob on the client side.
func (c *IndexCryptor) Open(blob []byte) ([]int, error) {
	ns := c.aead.NonceSize()
	if len(blob) < ns {
		return nil, fmt.Errorf("ssd: sealed index too short")
	}
	plain, err := c.aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("ssd: opening sealed index: %w", err)
	}
	return unmarshalIndex(plain)
}
