package ssd

import (
	"fmt"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/flash"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/ring"
)

// SSD is the CIPHERMATCH-enabled drive: an array of simulated planes plus
// the controller state (FTL regions, transposition unit, index-generation
// unit).
type SSD struct {
	cfg       Config
	params    bfv.Params
	transKind TranspositionKind

	planes []*flash.Plane

	// CIPHERMATCH region layout.
	cmBlocks      int // blocks per plane reserved for the CM region
	lanesPerGroup int // ciphertext components per vertical group
	numChunks     int // chunks stored by CMWriteDatabase
	dbBitLen      int

	// Conventional-region flash translation layer (lazily created on the
	// first conventional Read/Write).
	ftl *ftl

	ctrl ControllerStats
}

// ControllerStats accumulates controller-side work (the flash planes track
// their own time/energy).
type ControllerStats struct {
	TransposePages int
	TransposeTime  time.Duration
	IndexGenPages  int
	IndexGenTime   time.Duration
	IndexGenEnergy float64
	HostBytesIn    int64
	HostBytesOut   int64
	HomAdds        int
}

// New creates an SSD for the given BFV parameters. The parameters must use
// q = 2^32 (the 32-bit vertical coefficient layout of §4.3.1) and n must
// not exceed the page width in bits.
func New(cfg Config, params bfv.Params, kind TranspositionKind) (*SSD, error) {
	if params.Q != 1<<32 {
		return nil, fmt.Errorf("ssd: CM-IFP requires q = 2^32 (32 wordlines per coefficient), got q = %d", params.Q)
	}
	if params.N > cfg.Geometry.PageBits() {
		return nil, fmt.Errorf("ssd: ring degree %d exceeds page width %d bitlines", params.N, cfg.Geometry.PageBits())
	}
	if cfg.Geometry.WLsPerBlock() < flash.OperandBits {
		return nil, fmt.Errorf("ssd: blocks need at least %d wordlines", flash.OperandBits)
	}
	s := &SSD{
		cfg:           cfg,
		params:        params,
		transKind:     kind,
		cmBlocks:      cfg.Geometry.BlocksPerPlane / 2, // half the drive, §4.3.2 region split
		lanesPerGroup: cfg.Geometry.PageBits() / params.N,
	}
	total := cfg.Geometry.TotalPlanes()
	s.planes = make([]*flash.Plane, total)
	for i := range s.planes {
		s.planes[i] = flash.NewPlane(cfg.Geometry, cfg.Timing, cfg.Energy)
		for b := 0; b < s.cmBlocks; b++ {
			if err := s.planes[i].SetBlockMode(b, flash.ModeSLCESP); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Config returns the SSD configuration.
func (s *SSD) Config() Config { return s.cfg }

// ControllerStats returns the controller-side statistics.
func (s *SSD) ControllerStats() ControllerStats { return s.ctrl }

// FlashStats returns the summed statistics of all planes.
func (s *SSD) FlashStats() flash.Stats {
	var total flash.Stats
	for _, p := range s.planes {
		total.Add(p.Stats())
	}
	return total
}

// MaxPlaneTime returns the largest per-plane busy time — the makespan of
// the flash work under full array-level parallelism.
func (s *SSD) MaxPlaneTime() time.Duration {
	var m time.Duration
	for _, p := range s.planes {
		if t := p.Stats().Time; t > m {
			m = t
		}
	}
	return m
}

// groupsPerBlock returns how many 32-wordline vertical groups fit per block.
func (s *SSD) groupsPerBlock() int {
	return s.cfg.Geometry.WLsPerBlock() / flash.OperandBits
}

// groupAddr locates vertical group g: groups round-robin across planes
// first (array-level parallelism), then fill blocks within a plane.
func (s *SSD) groupAddr(g int) (plane, block, wlBase int, err error) {
	numPlanes := len(s.planes)
	plane = g % numPlanes
	gp := g / numPlanes
	block = gp / s.groupsPerBlock()
	if block >= s.cmBlocks {
		return 0, 0, 0, fmt.Errorf("ssd: CIPHERMATCH region full (group %d)", g)
	}
	wlBase = (gp % s.groupsPerBlock()) * flash.OperandBits
	return plane, block, wlBase, nil
}

// slotAddr locates ciphertext component slot t: lane l of group g.
// Chunk j's components occupy slots 2j (c0) and 2j+1 (c1).
func (s *SSD) slotAddr(t int) (g, lane int) {
	return t / s.lanesPerGroup, t % s.lanesPerGroup
}

// numGroups returns the number of vertical groups used by the stored
// database.
func (s *SSD) numGroups() int {
	slots := 2 * s.numChunks
	return (slots + s.lanesPerGroup - 1) / s.lanesPerGroup
}

// polyToU32 converts a mod-2^32 ring polynomial to its coefficient array.
func polyToU32(p ring.Poly) []uint32 {
	out := make([]uint32, len(p))
	for i, c := range p {
		out[i] = uint32(c)
	}
	return out
}

// u32ToPoly converts back.
func u32ToPoly(c []uint32) ring.Poly {
	out := make(ring.Poly, len(c))
	for i, v := range c {
		out[i] = uint64(v)
	}
	return out
}

// transpose charges one page transposition to the controller.
func (s *SSD) transpose() {
	s.ctrl.TransposePages++
	s.ctrl.TransposeTime += s.cfg.TransposeLatency(s.transKind)
}

// composeGroup builds the page-width coefficient array of group g from a
// per-slot fetch function (nil slices leave lanes zero).
func (s *SSD) composeGroup(g int, fetch func(slot int) []uint32) []uint32 {
	page := make([]uint32, s.cfg.Geometry.PageBits())
	for lane := 0; lane < s.lanesPerGroup; lane++ {
		slot := g*s.lanesPerGroup + lane
		coeffs := fetch(slot)
		if coeffs == nil {
			continue
		}
		copy(page[lane*s.params.N:(lane+1)*s.params.N], coeffs)
	}
	return page
}

// CMWriteDatabase stores an encrypted database into the CIPHERMATCH region
// in vertical layout (CM-write, §4.3.2): per group, the controller
// composes the page-width coefficient stream, transposes it into 32
// bit-planes, and programs 32 wordlines.
func (s *SSD) CMWriteDatabase(db *core.EncryptedDB) error {
	s.numChunks = len(db.Chunks)
	s.dbBitLen = db.BitLen
	fetch := func(slot int) []uint32 {
		j, c := slot/2, slot%2
		if j >= len(db.Chunks) {
			return nil
		}
		s.ctrl.HostBytesIn += int64(s.params.N * s.params.QBytes())
		return polyToU32(db.Chunks[j].C[c])
	}
	for g := 0; g < s.numGroups(); g++ {
		plane, block, wlBase, err := s.groupAddr(g)
		if err != nil {
			return err
		}
		page := s.composeGroup(g, fetch)
		planes := make([][]uint64, flash.OperandBits)
		for i := range planes {
			planes[i] = make([]uint64, s.cfg.Geometry.PageWords())
		}
		mathutil.TransposeToBitPlanes(page, planes)
		s.transpose()
		for i := 0; i < flash.OperandBits; i++ {
			if err := s.planes[plane].ProgramPage(block, wlBase+i, planes[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CMReadChunk reconstructs chunk j's ciphertext from the vertical layout
// (CM-read / page-fault path, §4.3.2): 32 flash reads per component plus a
// reverse transposition in the controller. This is the long-latency read
// the paper handles with OS huge-page support.
func (s *SSD) CMReadChunk(j int) (*bfv.Ciphertext, error) {
	if j < 0 || j >= s.numChunks {
		return nil, fmt.Errorf("ssd: chunk %d out of range [0, %d)", j, s.numChunks)
	}
	ct := &bfv.Ciphertext{C: make([]ring.Poly, 2)}
	for c := 0; c < 2; c++ {
		g, lane := s.slotAddr(2*j + c)
		plane, block, wlBase, err := s.groupAddr(g)
		if err != nil {
			return nil, err
		}
		full, err := s.planes[plane].ReadVertical(block, wlBase, s.cfg.Geometry.PageBits())
		if err != nil {
			return nil, err
		}
		s.transpose()
		ct.C[c] = u32ToPoly(full[lane*s.params.N : (lane+1)*s.params.N])
		s.ctrl.HostBytesOut += int64(s.params.N * s.params.QBytes())
	}
	return ct, nil
}

// StoredChunks returns the number of chunks in the CIPHERMATCH region.
func (s *SSD) StoredChunks() int { return s.numChunks }
