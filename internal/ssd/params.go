// Package ssd models the CIPHERMATCH-enabled SSD of §4.3.2: the controller
// with its flash translation layer split into a conventional region and a
// CIPHERMATCH region (vertical layout, SLC+ESP mode), the software- and
// hardware-based data transposition units, the index generation unit, and
// the host commands CM-write, CM-read and CM-search that dispatch the
// bop_add µ-program across planes.
//
// The model is functional — CM-search executes real homomorphic additions
// through the flash latch simulator and produces byte-identical results to
// the software evaluator (tested against internal/core) — and it accounts
// latency/energy per Table 3 for the performance model.
package ssd

import (
	"time"

	"ciphermatch/internal/flash"
)

// Config holds the SSD-level parameters of Table 3 and §4.3.2/§7.1.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	Energy   flash.Energy

	// InternalDRAMBytes is the SSD-internal LPDDR4 capacity (2 GB for the
	// 2 TB drive of Table 3).
	InternalDRAMBytes int64
	// ChannelBandwidth is the per-channel NAND IO rate (1.2 GB/s).
	ChannelBandwidth float64
	// ExternalBandwidth is the host-interface bandwidth (PCIe Gen4 x4,
	// 7 GB/s).
	ExternalBandwidth float64
	// ControllerCores is the number of embedded cores (5x Cortex-R5).
	ControllerCores int

	// SoftTransposeLatency is the software transposition-unit latency per
	// 4 KiB page on the controller cores (13.6 µs, §4.3.2); it is hidden
	// under the 22.5 µs flash read when pipelined.
	SoftTransposeLatency time.Duration
	// HardTransposeLatency is the dedicated hardware unit's latency per
	// 4 KiB page (158 ns, §7.1).
	HardTransposeLatency time.Duration
	// IndexGenLatency is the index-generation latency per page on the
	// controller (3.42 µs, §4.3.2), overlapped with sequential reads.
	IndexGenLatency time.Duration
}

// DefaultConfig returns the Table 3 SSD configuration.
func DefaultConfig() Config {
	return Config{
		Geometry:             flash.DefaultGeometry(),
		Timing:               flash.DefaultTiming(),
		Energy:               flash.DefaultEnergy(),
		InternalDRAMBytes:    2 << 30,
		ChannelBandwidth:     1.2e9,
		ExternalBandwidth:    7e9,
		ControllerCores:      5,
		SoftTransposeLatency: 13600 * time.Nanosecond,
		HardTransposeLatency: 158 * time.Nanosecond,
		IndexGenLatency:      3420 * time.Nanosecond,
	}
}

// TestConfig returns a small configuration for unit tests: 512-byte pages
// (4096 bitlines) and few blocks, with the real latency constants.
func TestConfig() Config {
	c := DefaultConfig()
	c.Geometry.PageBytes = 512
	c.Geometry.BlocksPerPlane = 16
	c.Geometry.Channels = 2
	c.Geometry.DiesPerChan = 2
	c.Geometry.PlanesPerDie = 2
	return c
}

// TranspositionKind selects the data transposition unit implementation.
type TranspositionKind int

const (
	// SoftwareTransposition runs on the controller cores (13.6 µs / 4 KiB,
	// hideable under flash reads). This is the paper's default (§4.3.2).
	SoftwareTransposition TranspositionKind = iota
	// HardwareTransposition is the dedicated unit of §7.1 (158 ns / 4 KiB,
	// 0.24 mm²), motivated by low-latency Z-NAND.
	HardwareTransposition
)

// TransposeLatency returns the per-page latency of the selected unit,
// scaled from the 4 KiB reference to the configured page size.
func (c Config) TransposeLatency(kind TranspositionKind) time.Duration {
	base := c.SoftTransposeLatency
	if kind == HardwareTransposition {
		base = c.HardTransposeLatency
	}
	return time.Duration(float64(base) * float64(c.Geometry.PageBytes) / 4096)
}
