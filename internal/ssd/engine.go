package ssd

import (
	"fmt"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
)

// Engine adapts the in-flash simulator to core.Engine, so the SSD's
// CM-search is drivable through the exact same API as the CPU engines —
// the substrate interchangeability the paper argues for. A drive is one
// physical device whose controller state (latches, stats) is mutated by
// every command, so searches serialise on an internal mutex; scale-out
// comes from putting one drive per shard under a core.ShardedEngine.
type Engine struct {
	drive *SSD

	mu  sync.Mutex
	cum core.Stats
}

var _ core.Engine = (*Engine)(nil)

// NewEngine wraps an SSD that already holds a database (CMWriteDatabase).
func NewEngine(drive *SSD) (*Engine, error) {
	if drive.StoredChunks() == 0 {
		return nil, fmt.Errorf("ssd: engine requires a database in the CIPHERMATCH region (CMWriteDatabase)")
	}
	return &Engine{drive: drive}, nil
}

// NewEngineForDB creates a drive with the given configuration, writes
// the database into its CIPHERMATCH region, and wraps it as an engine.
func NewEngineForDB(cfg Config, params bfv.Params, kind TranspositionKind, db *core.EncryptedDB) (*Engine, error) {
	drive, err := New(cfg, params, kind)
	if err != nil {
		return nil, err
	}
	if err := drive.CMWriteDatabase(db); err != nil {
		return nil, err
	}
	return NewEngine(drive)
}

// Drive returns the underlying SSD (for latency/energy accounting).
func (e *Engine) Drive() *SSD {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drive
}

// SearchAndIndex implements core.Engine by dispatching CM-search.
//
//cm:pooled
func (e *Engine) SearchAndIndex(q *core.Query) (*core.IndexResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ir, err := e.drive.CMSearch(q)
	if err != nil {
		return nil, err
	}
	e.cum.HomAdds += ir.Stats.HomAdds
	e.cum.CoeffCompares += ir.Stats.CoeffCompares
	e.cum.ResultBytes += ir.Stats.ResultBytes
	e.cum.ChunkStreams += ir.Stats.ChunkStreams
	return ir, nil
}

// SearchAndIndexBatch implements core.BatchSearcher via the generic
// sequential fallback: one drive executes one command stream, so batch
// members serialise on the controller exactly as separate searches
// would. Batch-level parallelism across drives comes from sharding
// (one drive per shard under core.ShardedEngine).
//
//cm:pooled
func (e *Engine) SearchAndIndexBatch(bq *core.BatchQuery) ([]*core.IndexResult, error) {
	return core.SearchAndIndexBatchSequential(e, bq)
}

var _ core.BatchSearcher = (*Engine)(nil)

// Stats implements core.Engine.
func (e *Engine) Stats() core.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cum
}

// Describe implements core.Engine.
func (e *Engine) Describe() string {
	kind := "software-transpose"
	if e.drive.transKind == HardwareTransposition {
		kind = "hardware-transpose"
	}
	return fmt.Sprintf("ssd(%d planes, %s)", len(e.drive.planes), kind)
}
