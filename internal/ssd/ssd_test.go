package ssd

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

func newTestSSD(t *testing.T) *SSD {
	t.Helper()
	s, err := New(TestConfig(), bfv.ParamsToy(), SoftwareTransposition)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func plant(db []byte, query []byte, queryBits, o int) {
	for j := 0; j < queryBits; j++ {
		mathutil.SetBit(db, o+j, mathutil.GetBit(query, j))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(TestConfig(), bfv.ParamsToyMul(), SoftwareTransposition); err == nil {
		t.Error("accepted q != 2^32")
	}
	cfg := TestConfig()
	cfg.Geometry.PageBytes = 4 // 32 bitlines < n=64
	if _, err := New(cfg, bfv.ParamsToy(), SoftwareTransposition); err == nil {
		t.Error("accepted ring degree wider than the page")
	}
}

func TestCMWriteReadRoundtrip(t *testing.T) {
	s := newTestSSD(t)
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("ssd-rt"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 320) // 2560 bits = 3 toy chunks
	rng.NewSourceFromString("data").Bytes(data)
	edb, err := client.EncryptDatabase(data, 2560)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	if s.StoredChunks() != len(edb.Chunks) {
		t.Fatalf("stored %d chunks, want %d", s.StoredChunks(), len(edb.Chunks))
	}
	r := cfg.Params.Ring()
	for j := range edb.Chunks {
		ct, err := s.CMReadChunk(j)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			if !r.Equal(ct.C[c], edb.Chunks[j].C[c]) {
				t.Fatalf("chunk %d component %d corrupted by vertical roundtrip", j, c)
			}
		}
	}
	if _, err := s.CMReadChunk(len(edb.Chunks)); err == nil {
		t.Error("CMReadChunk accepted out-of-range chunk")
	}
}

// TestCMSearchMatchesSoftware is the headline integration test: the
// in-flash search (bit-serial addition through the latch simulator plus
// controller index generation) must return exactly the candidates of the
// software evaluator path.
func TestCMSearchMatchesSoftware(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("ifp-vs-sw"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 320) // 2560 bits, 3 chunks
	rng.NewSourceFromString("ifp-data").Bytes(data)
	query := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	plant(data, query, 32, 96)
	plant(data, query, 32, 1016) // spans the chunk-0/chunk-1 boundary
	plant(data, query, 32, 2400)

	edb, err := client.EncryptDatabase(data, 2560)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(query, 32, 2560)
	if err != nil {
		t.Fatal(err)
	}

	// Software path.
	server := core.NewServer(cfg.Params, edb)
	swResult, err := server.SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}

	// In-flash path.
	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	ifpResult, err := s.CMSearch(q)
	if err != nil {
		t.Fatal(err)
	}

	if len(swResult.Candidates) == 0 {
		t.Fatal("software search found nothing; test is vacuous")
	}
	if len(ifpResult.Candidates) != len(swResult.Candidates) {
		t.Fatalf("IFP candidates %v != software %v", ifpResult.Candidates, swResult.Candidates)
	}
	for i := range swResult.Candidates {
		if ifpResult.Candidates[i] != swResult.Candidates[i] {
			t.Fatalf("IFP candidates %v != software %v", ifpResult.Candidates, swResult.Candidates)
		}
	}
	// Planted occurrences present.
	for _, o := range []int{96, 1016, 2400} {
		found := false
		for _, c := range ifpResult.Candidates {
			if c == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted occurrence %d missing from IFP candidates %v", o, ifpResult.Candidates)
		}
	}
	// The hit bitmaps must agree variant by variant.
	for res, swBM := range swResult.Hits {
		ifpBM := ifpResult.Hits[res]
		if ifpBM.Len() != swBM.Len() {
			t.Fatalf("bitmap length mismatch for residue %d", res)
		}
		for w := 0; w < swBM.Len(); w++ {
			if swBM.Get(w) != ifpBM.Get(w) {
				t.Fatalf("residue %d window %d: software %v, IFP %v", res, w, swBM.Get(w), ifpBM.Get(w))
			}
		}
	}
}

func TestCMSearchRequiresTokens(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeClientDecrypt}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("no-tokens"))
	data := make([]byte, 128)
	edb, _ := client.EncryptDatabase(data, 1024)
	q, _ := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 1024)

	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CMSearch(q); err == nil {
		t.Error("CMSearch accepted a query without tokens")
	}
}

// TestCMSearchEmptyResidues: a token-bearing query with no shift
// variants (a hostile wire peer can send one) must return an empty
// result, not panic — FactorQuery returns an empty form for it and the
// controller must not touch the absent DBTok plane.
func TestCMSearchEmptyResidues(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeSeededMatch}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("empty-res"))
	data := make([]byte, 128)
	edb, _ := client.EncryptDatabase(data, 1024)
	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	q, _ := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 1024)
	q.Residues = nil
	ir, err := s.CMSearch(q)
	if err != nil {
		t.Fatalf("empty-residue search errored: %v", err)
	}
	if len(ir.Hits) != 0 || len(ir.Candidates) != 0 {
		t.Fatalf("empty-residue search returned non-empty result: %+v", ir)
	}
}

func TestCMSearchValidatesDBShape(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeSeededMatch}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("shape"))
	data := make([]byte, 128)
	edb, _ := client.EncryptDatabase(data, 1024)
	s := newTestSSD(t)
	if _, err := s.CMSearch(&core.Query{YBits: 16}); err == nil {
		t.Error("CMSearch accepted search before CMWriteDatabase")
	}
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	qWrong, _ := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 2048)
	if _, err := s.CMSearch(qWrong); err == nil {
		t.Error("CMSearch accepted query for a different database size")
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: 16, Mode: core.ModeSeededMatch}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("acct"))
	data := make([]byte, 256) // 2048 bits = 2 chunks
	edb, _ := client.EncryptDatabase(data, 2048)
	q, _ := client.PrepareQuery([]byte{0x12, 0x34}, 16, 2048)

	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	writeTransposes := s.ControllerStats().TransposePages
	if writeTransposes == 0 {
		t.Fatal("CM-write must use the transposition unit")
	}
	if _, err := s.CMSearch(q); err != nil {
		t.Fatal(err)
	}
	cs := s.ControllerStats()
	fs := s.FlashStats()
	// One variant (16-bit query, 16-bit alignment), 2 chunks = 4 slots;
	// TestConfig lanes: 4096 bits / 64 = 64 lanes per group -> 1 group.
	if cs.HomAdds != 2 {
		t.Errorf("HomAdds = %d, want 2", cs.HomAdds)
	}
	if fs.Reads != 32 {
		t.Errorf("flash reads = %d, want 32 (one bit-serial pass)", fs.Reads)
	}
	if cs.IndexGenPages != 1 || cs.IndexGenTime != s.cfg.IndexGenLatency {
		t.Errorf("index generation accounting: %+v", cs)
	}
	if fs.Time == 0 || fs.Energy == 0 {
		t.Error("flash time/energy not accounted")
	}
	if s.MaxPlaneTime() == 0 || s.MaxPlaneTime() > fs.Time {
		t.Error("MaxPlaneTime inconsistent")
	}
}

// TestSearchPreservesStoredDatabase: CM-search computes entirely in the
// latches, so the stored ciphertexts must be bit-identical afterwards.
func TestSearchPreservesStoredDatabase(t *testing.T) {
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeSeededMatch}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("preserve"))
	data := make([]byte, 256)
	rng.NewSourceFromString("preserve-data").Bytes(data)
	edb, _ := client.EncryptDatabase(data, 2048)
	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	q, _ := client.PrepareQuery([]byte{0x42, 0x24}, 16, 2048)
	if _, err := s.CMSearch(q); err != nil {
		t.Fatal(err)
	}
	r := cfg.Params.Ring()
	for j := range edb.Chunks {
		ct, err := s.CMReadChunk(j)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			if !r.Equal(ct.C[c], edb.Chunks[j].C[c]) {
				t.Fatalf("chunk %d component %d mutated by CM-search", j, c)
			}
		}
	}
}

func TestSearchDoesNotWearFlash(t *testing.T) {
	// §4.3.1 Reliability: CM-search must not program or erase any block.
	cfg := core.Config{Params: bfv.ParamsToy(), Mode: core.ModeSeededMatch}
	client, _ := core.NewClient(cfg, rng.NewSourceFromString("wear"))
	data := make([]byte, 128)
	edb, _ := client.EncryptDatabase(data, 1024)
	q, _ := client.PrepareQuery([]byte{0xFF, 0x00}, 16, 1024)

	s := newTestSSD(t)
	if err := s.CMWriteDatabase(edb); err != nil {
		t.Fatal(err)
	}
	progsBefore := s.FlashStats().Programs
	if _, err := s.CMSearch(q); err != nil {
		t.Fatal(err)
	}
	if s.FlashStats().Programs != progsBefore {
		t.Error("CM-search programmed flash pages")
	}
	if s.FlashStats().Erases != 0 {
		t.Error("CM-search erased blocks")
	}
}

func TestOverheadReport(t *testing.T) {
	s, err := New(DefaultConfig(), bfv.ParamsPaper(), SoftwareTransposition)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Overheads()
	if r.ResultStagingBytes != PaperResultStagingBytes {
		t.Errorf("ResultStagingBytes = %d, want %d (0.5 MiB, §6.3)",
			r.ResultStagingBytes, PaperResultStagingBytes)
	}
	if r.MicroprogramBytes > 1024 {
		t.Errorf("µ-program footprint %d exceeds 1 KB", r.MicroprogramBytes)
	}
	if r.PeripheralAreaOverheadPct != 0.6 || r.TransposeUnitAreaMM2 != 0.24 || r.AESUnitAreaMM2 != 0.13 {
		t.Errorf("area overheads drifted from the paper: %+v", r)
	}
	if r.SLCCapacityLossBytes <= 0 {
		t.Error("SLC capacity loss must be positive")
	}
}

func TestTransposeLatencyScaling(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TransposeLatency(SoftwareTransposition) != cfg.SoftTransposeLatency {
		t.Error("4 KiB software transposition latency must equal the paper constant")
	}
	if cfg.TransposeLatency(HardwareTransposition) != cfg.HardTransposeLatency {
		t.Error("4 KiB hardware transposition latency must equal the paper constant")
	}
	small := TestConfig() // 512-byte pages: 1/8 of the reference
	if got, want := small.TransposeLatency(SoftwareTransposition), cfg.SoftTransposeLatency/8; got != want {
		t.Errorf("scaled software transposition = %v, want %v", got, want)
	}
	// The software unit must hide under the SLC flash read (§4.3.2); the
	// hardware unit must hide under a Z-NAND 3 µs read (§7.1).
	if cfg.TransposeLatency(SoftwareTransposition) > cfg.Timing.ReadSLC {
		t.Error("software transposition no longer hides under the flash read")
	}
}
