package ssd

import (
	"testing"

	"ciphermatch/internal/rng"
)

func TestIndexSealOpenRoundtrip(t *testing.T) {
	var key [32]byte
	rng.NewSourceFromString("index-key").Bytes(key[:])
	c, err := NewIndexCryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []int{0, 128, 4096, 1 << 30}
	blob, lat := c.Seal(1, candidates)
	if lat <= 0 {
		t.Fatal("hardware latency must be positive")
	}
	got, err := c.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(candidates) {
		t.Fatalf("roundtrip %v != %v", got, candidates)
	}
	for i := range got {
		if got[i] != candidates[i] {
			t.Fatalf("roundtrip %v != %v", got, candidates)
		}
	}
	// Empty index.
	blob, _ = c.Seal(2, nil)
	if got, err := c.Open(blob); err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v, %v", got, err)
	}
}

func TestIndexSealIsAuthenticated(t *testing.T) {
	var key [32]byte
	rng.NewSourceFromString("auth-key").Bytes(key[:])
	c, _ := NewIndexCryptor(key)
	blob, _ := c.Seal(7, []int{42})
	blob[len(blob)-1] ^= 1
	if _, err := c.Open(blob); err == nil {
		t.Fatal("tampered blob accepted")
	}
	// A different key must not open it either.
	var other [32]byte
	rng.NewSourceFromString("other-key").Bytes(other[:])
	c2, _ := NewIndexCryptor(other)
	blob2, _ := c.Seal(8, []int{42})
	if _, err := c2.Open(blob2); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestIndexSealLatencyScalesWithBlocks(t *testing.T) {
	var key [32]byte
	c, _ := NewIndexCryptor(key)
	_, small := c.Seal(1, []int{1})
	_, large := c.Seal(2, make([]int, 100))
	if large <= small {
		t.Fatalf("latency must scale with index size: %v vs %v", small, large)
	}
	// 100 entries = 804 bytes = 51 blocks of 16 B at 12.6 ns.
	if want := 51 * AESLatencyPer16B; large != want {
		t.Fatalf("latency = %v, want %v", large, want)
	}
}
