package ssd

// OverheadReport quantifies the storage and area overheads of enabling
// CIPHERMATCH on a commodity SSD (§6.3 and §7.1-7.2).
type OverheadReport struct {
	// ResultStagingBytes is the SSD-internal DRAM needed to stage one
	// homomorphic-addition result page per plane:
	// page × channels × dies × planes (0.5 MB for the Table 3 drive).
	ResultStagingBytes int64
	// MicroprogramBytes is the bop_add µ-program footprint in internal
	// DRAM (< 1 KB).
	MicroprogramBytes int64
	// SLCCapacityLossBytes is the raw capacity lost by running the
	// CIPHERMATCH region in SLC instead of TLC mode (2 of every 3 bits of
	// the region).
	SLCCapacityLossBytes int64
	// PeripheralAreaOverheadPct is the NAND die-area overhead of the
	// ParaBit-style latch modifications (0.6%).
	PeripheralAreaOverheadPct float64
	// TransposeUnitAreaMM2 is the optional hardware transposition unit
	// (0.24 mm² at 22 nm, §7.1).
	TransposeUnitAreaMM2 float64
	// AESUnitAreaMM2 is the AES index-encryption unit (0.13 mm², §7.2).
	AESUnitAreaMM2 float64
	// AESLatencyPer16B is the AES encryption latency per 16-byte block in
	// nanoseconds (12.6 ns, §7.2).
	AESLatencyPer16BNanos float64
}

// Overheads computes the report for an SSD instance.
func (s *SSD) Overheads() OverheadReport {
	g := s.cfg.Geometry
	regionPages := int64(s.cmBlocks) * int64(g.WLsPerBlock()) * int64(g.PageBytes) *
		int64(g.TotalPlanes())
	return OverheadReport{
		ResultStagingBytes:        int64(g.PageBytes) * int64(g.TotalPlanes()),
		MicroprogramBytes:         1 << 10,
		SLCCapacityLossBytes:      regionPages * 2, // TLC stores 3 bits/cell; SLC keeps 1
		PeripheralAreaOverheadPct: 0.6,
		TransposeUnitAreaMM2:      0.24,
		AESUnitAreaMM2:            0.13,
		AESLatencyPer16BNanos:     12.6,
	}
}

// PaperResultStagingBytes is the value §6.3 reports for the Table 3 drive:
// 4 KiB × 8 channels × 8 dies × 2 planes = 0.5 MiB.
const PaperResultStagingBytes = 4096 * 8 * 8 * 2
