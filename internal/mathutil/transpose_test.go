package mathutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose32Identity(t *testing.T) {
	// A matrix with a single set bit (r, c) must transpose to (c, r).
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			var a [32]uint32
			a[r] = 1 << uint(c)
			transpose32(&a)
			for i := 0; i < 32; i++ {
				want := uint32(0)
				if i == c {
					want = 1 << uint(r)
				}
				if a[i] != want {
					t.Fatalf("transpose32 bit (%d,%d): row %d = %#x, want %#x", r, c, i, a[i], want)
				}
			}
		}
	}
}

func TestTranspose32Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, orig [32]uint32
		for i := range a {
			a[i] = rng.Uint32()
		}
		orig = a
		transpose32(&a)
		transpose32(&a)
		if a != orig {
			t.Fatal("transpose32 applied twice is not the identity")
		}
	}
}

func TestBitPlanesRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 31, 32, 33, 64, 100, 1024, 1025} {
		coeffs := make([]uint32, n)
		for i := range coeffs {
			coeffs[i] = rng.Uint32()
		}
		planes := make([][]uint64, 32)
		for i := range planes {
			planes[i] = make([]uint64, WordsPerPlane(n))
		}
		TransposeToBitPlanes(coeffs, planes)
		got := make([]uint32, n)
		TransposeFromBitPlanes(planes, got)
		for i := range coeffs {
			if got[i] != coeffs[i] {
				t.Fatalf("n=%d: coeff %d roundtrip %#x != %#x", n, i, got[i], coeffs[i])
			}
		}
	}
}

func TestBitPlanesLayout(t *testing.T) {
	// Coefficient j with only bit i set must appear in plane i at bit j.
	n := 70
	coeffs := make([]uint32, n)
	coeffs[65] = 1 << 9
	planes := make([][]uint64, 32)
	for i := range planes {
		planes[i] = make([]uint64, WordsPerPlane(n))
	}
	TransposeToBitPlanes(coeffs, planes)
	for i := range planes {
		for w := range planes[i] {
			want := uint64(0)
			if i == 9 && w == 1 {
				want = 1 << 1 // coefficient 65 = word 1, bit 1
			}
			if planes[i][w] != want {
				t.Fatalf("plane %d word %d = %#x, want %#x", i, w, planes[i][w], want)
			}
		}
	}
}

func TestBitPlanesProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		planes := make([][]uint64, 32)
		for i := range planes {
			planes[i] = make([]uint64, WordsPerPlane(len(raw)))
		}
		TransposeToBitPlanes(raw, planes)
		got := make([]uint32, len(raw))
		TransposeFromBitPlanes(planes, got)
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordsPerPlane(t *testing.T) {
	cases := map[int]int{1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 1024: 16}
	for n, want := range cases {
		if got := WordsPerPlane(n); got != want {
			t.Errorf("WordsPerPlane(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBitStream(t *testing.T) {
	s := []byte{0b10110000, 0b00000001}
	if GetBit(s, 0) != 1 || GetBit(s, 1) != 0 || GetBit(s, 2) != 1 || GetBit(s, 15) != 1 {
		t.Fatal("GetBit MSB-first convention broken")
	}
	SetBit(s, 1, 1)
	if s[0] != 0b11110000 {
		t.Fatalf("SetBit produced %#b", s[0])
	}
	SetBit(s, 0, 0)
	if s[0] != 0b01110000 {
		t.Fatalf("SetBit clear produced %#b", s[0])
	}
	if BitLen(s) != 16 {
		t.Fatal("BitLen")
	}
}

func TestSegment16(t *testing.T) {
	s := []byte{0xAB, 0xCD, 0xEF}
	if got := Segment16(s, 0); got != 0xABCD {
		t.Fatalf("Segment16(0) = %#x", got)
	}
	if got := Segment16(s, 4); got != 0xBCDE {
		t.Fatalf("Segment16(4) = %#x", got)
	}
	if got := Segment16(s, 8); got != 0xCDEF {
		t.Fatalf("Segment16(8) = %#x", got)
	}
	// Past-the-end bits read as zero.
	if got := Segment16(s, 16); got != 0xEF00 {
		t.Fatalf("Segment16(16) = %#x", got)
	}
}
