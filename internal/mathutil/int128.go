// Package mathutil provides exact wide-integer arithmetic and bit-matrix
// helpers shared by the BFV implementation (internal/bfv), the polynomial
// ring (internal/ring) and the in-flash vertical data layout
// (internal/flash).
//
// The BFV tensoring step must convolve centered (signed) coefficient lifts
// exactly over the integers before rescaling by t/q; with n = 1024 and
// q = 2^32 the intermediate sums exceed 64 bits, so Int128 implements the
// minimal signed 128-bit arithmetic needed for that path using only
// math/bits.
package mathutil

import (
	"fmt"
	"math/bits"
)

// Int128 is a signed 128-bit integer in two's-complement representation.
// Hi holds the most significant 64 bits (including the sign bit), Lo the
// least significant 64 bits. The zero value is the number 0.
type Int128 struct {
	Hi uint64
	Lo uint64
}

// Int128FromInt64 sign-extends v to 128 bits.
func Int128FromInt64(v int64) Int128 {
	return Int128{Hi: uint64(v >> 63), Lo: uint64(v)}
}

// Int128FromUint64 zero-extends v to 128 bits.
func Int128FromUint64(v uint64) Int128 {
	return Int128{Lo: v}
}

// Add returns x + y (mod 2^128).
func (x Int128) Add(y Int128) Int128 {
	lo, carry := bits.Add64(x.Lo, y.Lo, 0)
	hi, _ := bits.Add64(x.Hi, y.Hi, carry)
	return Int128{Hi: hi, Lo: lo}
}

// Sub returns x - y (mod 2^128).
func (x Int128) Sub(y Int128) Int128 {
	lo, borrow := bits.Sub64(x.Lo, y.Lo, 0)
	hi, _ := bits.Sub64(x.Hi, y.Hi, borrow)
	return Int128{Hi: hi, Lo: lo}
}

// Neg returns -x (mod 2^128).
func (x Int128) Neg() Int128 {
	return Int128{}.Sub(x)
}

// IsNeg reports whether x < 0.
func (x Int128) IsNeg() bool { return x.Hi>>63 == 1 }

// IsZero reports whether x == 0.
func (x Int128) IsZero() bool { return x.Hi == 0 && x.Lo == 0 }

// Sign returns -1, 0 or +1 according to the sign of x.
func (x Int128) Sign() int {
	switch {
	case x.IsNeg():
		return -1
	case x.IsZero():
		return 0
	default:
		return 1
	}
}

// Cmp returns -1, 0 or +1 according to whether x < y, x == y or x > y,
// interpreting both as signed 128-bit values.
func (x Int128) Cmp(y Int128) int {
	// Flip the sign bits so an unsigned comparison orders signed values.
	xh := x.Hi ^ (1 << 63)
	yh := y.Hi ^ (1 << 63)
	switch {
	case xh < yh:
		return -1
	case xh > yh:
		return 1
	case x.Lo < y.Lo:
		return -1
	case x.Lo > y.Lo:
		return 1
	default:
		return 0
	}
}

// MulInt64 returns the exact 128-bit product a*b of two signed 64-bit
// integers.
func MulInt64(a, b int64) Int128 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// Signed correction: interpreting the operands as signed subtracts
	// b (resp. a) from the high word for each negative operand.
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return Int128{Hi: hi, Lo: lo}
}

// MulSmall returns x*m for a small non-negative multiplier m. It is intended
// for the t-multiplication of the BFV rescaling step (m = t <= 2^32); the
// caller must guarantee the result fits in 128 bits.
func (x Int128) MulSmall(m uint64) Int128 {
	hi, lo := bits.Mul64(x.Lo, m)
	hi += x.Hi * m // wrapping by design for negative x in two's complement
	return Int128{Hi: hi, Lo: lo}
}

// Shl returns x << k for 0 <= k < 128.
func (x Int128) Shl(k uint) Int128 {
	switch {
	case k == 0:
		return x
	case k < 64:
		return Int128{Hi: x.Hi<<k | x.Lo>>(64-k), Lo: x.Lo << k}
	case k < 128:
		return Int128{Hi: x.Lo << (k - 64)}
	default:
		return Int128{}
	}
}

// ShrArith returns x >> k with sign extension, for 0 <= k < 128.
func (x Int128) ShrArith(k uint) Int128 {
	sign := uint64(int64(x.Hi) >> 63) // all ones if negative
	switch {
	case k == 0:
		return x
	case k < 64:
		return Int128{Hi: uint64(int64(x.Hi) >> k), Lo: x.Lo>>k | x.Hi<<(64-k)}
	case k < 128:
		return Int128{Hi: sign, Lo: uint64(int64(x.Hi) >> (k - 64))}
	default:
		return Int128{Hi: sign, Lo: sign}
	}
}

// RoundShr returns round(x / 2^k) with round-half-up semantics
// (i.e. floor((x + 2^(k-1)) / 2^k)), which is the rounding used by the BFV
// rescaling step for power-of-two moduli.
func (x Int128) RoundShr(k uint) Int128 {
	if k == 0 {
		return x
	}
	half := Int128{}.Add(Int128{Lo: 1}).Shl(k - 1)
	return x.Add(half).ShrArith(k)
}

// Abs returns |x| as an unsigned (Hi, Lo) pair. |MinInt128| wraps, as with
// built-in integer types.
func (x Int128) Abs() Int128 {
	if x.IsNeg() {
		return x.Neg()
	}
	return x
}

// DivRoundUint64 returns round(x / d) for a positive divisor d < 2^63, with
// round-half-away-from-zero semantics. It is used by the BFV rescaling step
// for non-power-of-two moduli.
func (x Int128) DivRoundUint64(d uint64) Int128 {
	if d == 0 {
		panic("mathutil: division by zero")
	}
	neg := x.IsNeg()
	a := x.Abs()
	q, r := a.divModUint64(d)
	if 2*r >= d {
		q = q.Add(Int128{Lo: 1})
	}
	if neg {
		return q.Neg()
	}
	return q
}

// divModUint64 divides the non-negative value a by d, returning quotient and
// remainder.
func (a Int128) divModUint64(d uint64) (q Int128, r uint64) {
	qHi := a.Hi / d
	rem := a.Hi % d
	qLo, rem := bits.Div64(rem, a.Lo, d)
	return Int128{Hi: qHi, Lo: qLo}, rem
}

// Int64 returns the low 64 bits of x interpreted as a signed integer. The
// caller must know the value fits; FitsInt64 checks.
func (x Int128) Int64() int64 { return int64(x.Lo) }

// FitsInt64 reports whether x is representable as an int64.
func (x Int128) FitsInt64() bool {
	return x.Hi == uint64(int64(x.Lo)>>63)
}

// String formats x in decimal.
func (x Int128) String() string {
	if x.IsZero() {
		return "0"
	}
	neg := x.IsNeg()
	a := x.Abs()
	var buf [40]byte
	i := len(buf)
	for !a.IsZero() {
		var r uint64
		a, r = a.divModUint64(10)
		i--
		buf[i] = byte('0' + r)
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// GoString implements fmt.GoStringer for debugging.
func (x Int128) GoString() string {
	return fmt.Sprintf("mathutil.Int128{Hi: %#x, Lo: %#x}", x.Hi, x.Lo)
}
