package mathutil

// Bit-stream helpers used by the data-packing schemes (internal/core).
// CIPHERMATCH treats the database and query as flat binary strings (§4.2.1);
// throughout this repository bit k of a stream stored in a byte slice is bit
// (7 - k%8) of byte k/8, i.e. MSB-first within each byte, matching the
// paper's textual convention of writing strings left to right.

// GetBit returns bit k (MSB-first) of the byte-slice stream.
func GetBit(stream []byte, k int) uint32 {
	return uint32(stream[k/8]>>(7-uint(k%8))) & 1
}

// SetBit sets bit k (MSB-first) of the stream to v (0 or 1).
func SetBit(stream []byte, k int, v uint32) {
	mask := byte(1) << (7 - uint(k%8))
	if v&1 == 1 {
		stream[k/8] |= mask
	} else {
		stream[k/8] &^= mask
	}
}

// Segment16 extracts the 16-bit segment starting at bit offset off
// (MSB-first: the bit at off becomes the segment's most significant bit).
// Bits beyond the end of the stream read as zero.
func Segment16(stream []byte, off int) uint16 {
	var v uint16
	total := len(stream) * 8
	for i := 0; i < 16; i++ {
		v <<= 1
		if off+i < total {
			v |= uint16(GetBit(stream, off+i))
		}
	}
	return v
}

// BitLen returns the stream length in bits.
func BitLen(stream []byte) int { return len(stream) * 8 }
