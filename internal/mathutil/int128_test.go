package mathutil

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func bigFromInt128(x Int128) *big.Int {
	b := new(big.Int).SetUint64(x.Hi)
	b.Lsh(b, 64)
	b.Or(b, new(big.Int).SetUint64(x.Lo))
	// Interpret as two's complement 128-bit.
	if x.IsNeg() {
		mod := new(big.Int).Lsh(big.NewInt(1), 128)
		b.Sub(b, mod)
	}
	return b
}

func int128FromBig(b *big.Int) Int128 {
	mod := new(big.Int).Lsh(big.NewInt(1), 128)
	v := new(big.Int).Mod(b, mod) // non-negative representative
	lo := new(big.Int).And(v, new(big.Int).SetUint64(math.MaxUint64))
	hi := new(big.Int).Rsh(v, 64)
	return Int128{Hi: hi.Uint64(), Lo: lo.Uint64()}
}

func TestInt128FromInt64(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		x := Int128FromInt64(v)
		if got := bigFromInt128(x); got.Cmp(big.NewInt(v)) != 0 {
			t.Errorf("Int128FromInt64(%d) = %s", v, got)
		}
		if !x.FitsInt64() || x.Int64() != v {
			t.Errorf("roundtrip failed for %d", v)
		}
	}
}

func TestMulInt64Property(t *testing.T) {
	f := func(a, b int64) bool {
		got := bigFromInt128(MulInt64(a, b))
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubProperty(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x := MulInt64(a, b)
		y := MulInt64(c, d)
		sum := bigFromInt128(x.Add(y))
		diff := bigFromInt128(x.Sub(y))
		bx, by := bigFromInt128(x), bigFromInt128(y)
		return sum.Cmp(new(big.Int).Add(bx, by)) == 0 &&
			diff.Cmp(new(big.Int).Sub(bx, by)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegAndSign(t *testing.T) {
	x := Int128FromInt64(-5)
	if x.Sign() != -1 || x.Neg().Sign() != 1 || (Int128{}).Sign() != 0 {
		t.Fatal("Sign misbehaves")
	}
	if !x.Neg().Neg().Sub(x).IsZero() {
		t.Fatal("double negation is not identity")
	}
}

func TestCmpProperty(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x := MulInt64(a, b)
		y := MulInt64(c, d)
		return x.Cmp(y) == bigFromInt128(x).Cmp(bigFromInt128(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShlShrRoundtrip(t *testing.T) {
	for _, v := range []int64{3, -3, 123456789, -987654321} {
		for k := uint(0); k < 60; k++ {
			x := Int128FromInt64(v).Shl(k)
			back := x.ShrArith(k)
			if !back.FitsInt64() || back.Int64() != v {
				t.Fatalf("Shl/ShrArith roundtrip failed: v=%d k=%d got=%s", v, k, back)
			}
		}
	}
}

func TestShrArithSignExtension(t *testing.T) {
	x := Int128FromInt64(-1)
	for _, k := range []uint{1, 63, 64, 100, 127} {
		if got := x.ShrArith(k); !got.FitsInt64() || got.Int64() != -1 {
			t.Errorf("(-1) >> %d = %s, want -1", k, got)
		}
	}
	y := Int128FromInt64(1).Shl(100)
	if got := y.ShrArith(100); got.Int64() != 1 || !got.FitsInt64() {
		t.Errorf("(1<<100)>>100 = %s, want 1", got)
	}
}

func TestRoundShr(t *testing.T) {
	cases := []struct {
		x    int64
		k    uint
		want int64
	}{
		{0, 4, 0},
		{7, 1, 4},   // 3.5 rounds half-up to 4
		{-7, 1, -3}, // -3.5 rounds half-up to -3
		{8, 2, 2},
		{9, 2, 2},  // 2.25 -> 2
		{10, 2, 3}, // 2.5 -> 3 (half-up)
		{11, 2, 3},
		{-10, 2, -2}, // -2.5 -> -2 (half-up)
		{65535, 16, 1},
		{32767, 16, 0}, // 0.499... -> 0
		{32768, 16, 1}, // 0.5 -> 1
	}
	for _, c := range cases {
		got := Int128FromInt64(c.x).RoundShr(c.k)
		if !got.FitsInt64() || got.Int64() != c.want {
			t.Errorf("RoundShr(%d, %d) = %s, want %d", c.x, c.k, got, c.want)
		}
	}
}

func TestDivRoundUint64(t *testing.T) {
	cases := []struct {
		x    int64
		d    uint64
		want int64
	}{
		{10, 3, 3},
		{11, 3, 4},
		{-10, 3, -3},
		{-11, 3, -4},
		{15, 3, 5},
		{-15, 3, -5},
		{3, 6, 1}, // 0.5 rounds away from zero
		{-3, 6, -1},
		{2, 6, 0},
	}
	for _, c := range cases {
		got := Int128FromInt64(c.x).DivRoundUint64(c.d)
		if !got.FitsInt64() || got.Int64() != c.want {
			t.Errorf("DivRoundUint64(%d, %d) = %s, want %d", c.x, c.d, got, c.want)
		}
	}
}

func TestDivRoundUint64Property(t *testing.T) {
	f := func(a, b int64, d uint64) bool {
		d = d%(1<<40) + 1
		x := MulInt64(a, b)
		got := bigFromInt128(x.DivRoundUint64(d))
		bx := bigFromInt128(x)
		bd := new(big.Int).SetUint64(d)
		// round-half-away-from-zero: sign * floor((2|x| + d) / (2d))
		abs := new(big.Int).Abs(bx)
		num := new(big.Int).Mul(abs, big.NewInt(2))
		num.Add(num, bd)
		den := new(big.Int).Mul(bd, big.NewInt(2))
		q := new(big.Int).Div(num, den)
		if bx.Sign() < 0 {
			q.Neg(q)
		}
		return got.Cmp(q) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulSmall(t *testing.T) {
	f := func(a, b int64, m uint32) bool {
		x := MulInt64(a, b)
		// Keep |x * m| within 127 bits: |a*b| < 2^126/m is guaranteed for
		// 64-bit inputs and 32-bit m only when a,b are bounded; bound them.
		a64 := a % (1 << 40)
		b64 := b % (1 << 40)
		x = MulInt64(a64, b64)
		got := bigFromInt128(x.MulSmall(uint64(m)))
		want := new(big.Int).Mul(bigFromInt128(x), new(big.Int).SetUint64(uint64(m)))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	cases := map[int64]string{
		0:     "0",
		1:     "1",
		-1:    "-1",
		12345: "12345",
		-987:  "-987",
	}
	for v, want := range cases {
		if got := Int128FromInt64(v).String(); got != want {
			t.Errorf("String(%d) = %q, want %q", v, got, want)
		}
	}
	big128 := Int128FromInt64(1).Shl(100)
	if got, want := big128.String(), new(big.Int).Lsh(big.NewInt(1), 100).String(); got != want {
		t.Errorf("String(2^100) = %q, want %q", got, want)
	}
}

func TestInt128FromBigRoundtrip(t *testing.T) {
	f := func(a, b int64) bool {
		x := MulInt64(a, b)
		return int128FromBig(bigFromInt128(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
