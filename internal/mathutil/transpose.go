package mathutil

import "math/bits"

// This file implements the horizontal<->vertical data-layout conversion of
// CIPHERMATCH (§4.3.2): the SSD controller's data transposition unit turns a
// stream of 32-bit ciphertext coefficients (horizontal layout, one
// coefficient contiguous in a page) into 32 bit-planes (vertical layout, bit
// i of every coefficient gathered into one wordline page), so that each
// NAND bitline holds one full coefficient and the in-flash bit-serial adder
// can propagate carries per bitline.
//
// The transposition is an exact 32xN boolean matrix transpose, implemented
// with the classic recursive block-swap (Hacker's Delight §7-3) on 32x32
// tiles.

// WordsPerPlane returns the number of uint64 words needed to hold one bit
// from each of n coefficients.
func WordsPerPlane(n int) int { return (n + 63) / 64 }

// TransposeToBitPlanes scatters the bits of coeffs into 32 bit-planes.
// planes must have exactly 32 rows of at least WordsPerPlane(len(coeffs))
// words each; row i receives bit i (LSB = bit 0) of every coefficient, with
// coefficient j stored at bit position j of the row (word j/64, bit j%64).
//
// Plane bits at positions >= len(coeffs) (up to the word boundary) are
// cleared.
func TransposeToBitPlanes(coeffs []uint32, planes [][]uint64) {
	if len(planes) != 32 {
		panic("mathutil: TransposeToBitPlanes requires 32 planes")
	}
	words := WordsPerPlane(len(coeffs))
	for i := range planes {
		if len(planes[i]) < words {
			panic("mathutil: plane too short")
		}
		clear(planes[i][:words])
	}
	var tile [32]uint32
	for base := 0; base < len(coeffs); base += 32 {
		m := min(32, len(coeffs)-base)
		for k := 0; k < m; k++ {
			tile[k] = coeffs[base+k]
		}
		for k := m; k < 32; k++ {
			tile[k] = 0
		}
		transpose32(&tile)
		// tile[i] bit k now holds bit i of coefficient base+k.
		word, shift := base/64, uint(base%64)
		for i := 0; i < 32; i++ {
			planes[i][word] |= uint64(tile[i]) << shift
		}
	}
}

// TransposeFromBitPlanes is the inverse of TransposeToBitPlanes: it gathers
// bit i of coefficient j from planes[i] bit j and reassembles coeffs.
func TransposeFromBitPlanes(planes [][]uint64, coeffs []uint32) {
	if len(planes) != 32 {
		panic("mathutil: TransposeFromBitPlanes requires 32 planes")
	}
	words := WordsPerPlane(len(coeffs))
	for i := range planes {
		if len(planes[i]) < words {
			panic("mathutil: plane too short")
		}
	}
	var tile [32]uint32
	for base := 0; base < len(coeffs); base += 32 {
		word, shift := base/64, uint(base%64)
		for i := 0; i < 32; i++ {
			tile[i] = uint32(planes[i][word] >> shift)
		}
		transpose32(&tile)
		m := min(32, len(coeffs)-base)
		for k := 0; k < m; k++ {
			coeffs[base+k] = tile[k]
		}
	}
}

// transpose32 transposes a 32x32 bit matrix in place using the convention
// that row r's bit c (LSB = bit 0) is matrix element (r, c): afterwards,
// bit k of a[i] equals bit i of the original a[k].
func transpose32(a *[32]uint32) {
	// Block-swap transpose (Hacker's Delight §7-3). The classic routine
	// transposes under the MSB-first convention, which corresponds to the
	// LSB-first transpose composed with a reversal of both row order and
	// bit order; reverseOrientation applies that fix-up.
	var m uint32 = 0x0000FFFF
	for j := uint(16); j != 0; {
		for k := uint(0); k < 32; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k+j] >> j)) & m
			a[k] ^= t
			a[k+j] ^= t << j
		}
		j >>= 1
		m ^= m << j // note: uses the halved j, as in the C original
	}
	reverseOrientation(a)
}

// reverseOrientation reverses both the row order and the bit order within
// each row of a 32x32 bit matrix.
func reverseOrientation(a *[32]uint32) {
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		a[i], a[j] = bits.Reverse32(a[j]), bits.Reverse32(a[i])
	}
}
