package perfmodel

import (
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/rng"
)

// MeasuredOps holds per-operation latencies measured on this machine with
// this repository's BFV implementation. Note the documented substitution
// (DESIGN.md): our multiplication is schoolbook/Karatsuba rather than NTT,
// so the Mul/Add ratio is higher than SEAL's; the calibrated model
// constants (Calibration) are used for figure regeneration and these
// measurements are reported alongside.
type MeasuredOps struct {
	TAdd time.Duration // Hom-Add (AddInto), per ciphertext pair
	TMul time.Duration // Hom-Mul + relinearisation
	TDec time.Duration // decryption
}

// MeasureOps times the three operations over iters iterations each.
func MeasureOps(p bfv.Params, iters int) (MeasuredOps, error) {
	if iters < 1 {
		iters = 1
	}
	src := rng.NewSourceFromString("perfmodel-measure")
	sk, pk := bfv.KeyGen(p, src.Fork("keys"))
	rlk := bfv.NewRelinKey(p, sk, src.Fork("rlk"))
	enc := bfv.NewEncoder(p)
	encryptor := bfv.NewEncryptor(p, pk)
	decryptor := bfv.NewDecryptor(p, sk)
	ev := bfv.NewEvaluator(p)

	msg := make([]uint64, p.N)
	for i := range msg {
		msg[i] = src.Uniform(2)
	}
	pt, err := enc.Encode(msg)
	if err != nil {
		return MeasuredOps{}, err
	}
	a := encryptor.Encrypt(pt, src.Fork("a"))
	b := encryptor.Encrypt(pt, src.Fork("b"))
	out := a.Clone()

	var m MeasuredOps

	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := ev.AddInto(a, b, out); err != nil {
			return m, err
		}
	}
	m.TAdd = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ev.MulRelin(a, b, rlk); err != nil {
			return m, err
		}
	}
	m.TMul = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		decryptor.Decrypt(a)
	}
	m.TDec = time.Since(start) / time.Duration(iters)
	return m, nil
}
