package perfmodel

// Estimate is the modelled cost of one complete workload execution on one
// system. All times are float64 seconds (Boolean estimates overflow
// time.Duration).
type Estimate struct {
	System string
	// Seconds is the end-to-end latency: DataMove + Compute + Post
	// (sequential composition; overlap assumptions are noted per system).
	Seconds float64
	// EnergyJ is the end-to-end energy in joules.
	EnergyJ float64

	DataMoveSeconds float64
	ComputeSeconds  float64
	PostSeconds     float64
}

// dmBytesSW returns the bytes streamed from storage for a software system
// whose encrypted database occupies encBytes: loaded once if it fits host
// DRAM (then amortised across queries), otherwise re-streamed per query.
func (m *Model) dmBytesSW(encBytes int64, numQueries int) float64 {
	hostCap := int64(m.Real.DRAMGB) << 30
	if encBytes <= hostCap {
		return float64(encBytes)
	}
	return float64(encBytes) * float64(numQueries)
}

// flashStreamEnergy returns the NAND-side energy of streaming the given
// volume out of the flash arrays: a page read plus a channel DMA per page
// (Table 3 energies).
func (m *Model) flashStreamEnergy(bytes float64) float64 {
	pages := bytes / float64(m.SSD.Geometry.PageBytes)
	return pages * (m.SSD.Energy.ReadSLCPerChannel + m.SSD.Energy.DMAPerChannel)
}

// hostEnergy composes the energy of a host-side execution: CPU package
// power over compute time, DRAM power over all active time, SSD streaming
// energy (NAND reads + interface power over the transfer).
func (m *Model) hostEnergy(dmBytes, dmSec, computeSec, postSec float64) float64 {
	busy := computeSec + postSec
	return m.Cal.CPUPower*busy +
		m.Cal.DRAMPower*(busy+dmSec) +
		m.Cal.SSDPower*dmSec +
		m.flashStreamEnergy(dmBytes)
}

// EstimateCMSW models the pure-software CIPHERMATCH implementation:
// V(y) shifts × chunks homomorphic additions per query, plus the per-chunk
// result post-processing (match-polynomial comparison), plus streaming the
// 4×-expanded database from the SSD.
func (m *Model) EstimateCMSW(w Workload) Estimate {
	w = w.withDefaults()
	enc := m.CMEncryptedBytes(w)
	dmBytes := m.dmBytesSW(enc, w.NumQueries)
	dm := dmBytes / m.Cal.SSDStreamBW
	adds := float64(m.CMHomAdds(w))
	compute := adds * m.Cal.TAddSW.Seconds()
	post := float64(m.CMChunks(w)) * float64(w.NumQueries) * m.Cal.TPostChunk.Seconds()
	return Estimate{
		System:          "CM-SW",
		Seconds:         dm + compute + post,
		EnergyJ:         m.hostEnergy(dmBytes, dm, compute, post),
		DataMoveSeconds: dm,
		ComputeSeconds:  compute,
		PostSeconds:     post,
	}
}

// EstimateArith models the arithmetic baseline [27]: 2 Hom-Muls + 3
// Hom-Adds per single-bit-packed chunk per query, with its 64× footprint
// streamed from the SSD.
func (m *Model) EstimateArith(w Workload) Estimate {
	w = w.withDefaults()
	enc := m.ArithEncryptedBytes(w)
	dmBytes := m.dmBytesSW(enc, w.NumQueries)
	dm := dmBytes / m.Cal.SSDStreamBW
	muls, adds := m.ArithOps(w)
	compute := float64(muls)*m.Cal.TMulSW.Seconds() + float64(adds)*m.Cal.TAddSW.Seconds()
	post := float64(m.ArithChunks(w)) * float64(w.NumQueries) * m.Cal.TPostChunk.Seconds()
	return Estimate{
		System:          "Arithmetic [27]",
		Seconds:         dm + compute + post,
		EnergyJ:         m.hostEnergy(dmBytes, dm, compute, post),
		DataMoveSeconds: dm,
		ComputeSeconds:  compute,
		PostSeconds:     post,
	}
}

// ArithMulFraction returns Fig. 2(c)'s quantity: the fraction of the
// arithmetic baseline's homomorphic-operation latency spent in
// multiplication.
func (m *Model) ArithMulFraction(w Workload) float64 {
	muls, adds := m.ArithOps(w)
	mulT := float64(muls) * m.Cal.TMulSW.Seconds()
	addT := float64(adds) * m.Cal.TAddSW.Seconds()
	return mulT / (mulT + addT)
}

// EstimateBoolean models the Boolean baseline [17]: per aligned window
// position, y XNOR + (y-1) AND TFHE gates over the whole per-bit-encrypted
// database.
func (m *Model) EstimateBoolean(w Workload) Estimate {
	w = w.withDefaults()
	enc := m.BooleanEncryptedBytes(w)
	dmBytes := m.dmBytesSW(enc, w.NumQueries)
	dm := dmBytes / m.Cal.SSDStreamBW
	gates := float64(m.BooleanGates(w)) * float64(w.NumQueries)
	compute := gates * m.Cal.TGateBool.Seconds()
	return Estimate{
		System:          "Boolean [17]",
		Seconds:         dm + compute,
		EnergyJ:         m.hostEnergy(dmBytes, dm, compute, 0),
		DataMoveSeconds: dm,
		ComputeSeconds:  compute,
	}
}
