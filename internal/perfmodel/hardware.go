package perfmodel

import (
	"ciphermatch/internal/flash"
	"ciphermatch/internal/pum"
)

// This file models the three hardware systems of §5.2. Shared quantities:
//
//   - laneAdds: the total number of 32-bit coefficient additions a search
//     needs = queries × shifts × chunks × 2n (both ciphertext components);
//   - the per-pass throughput of each substrate: how many lanes one
//     bit-serial 32-bit addition covers at once.

// laneAdds returns the total 32-bit lane additions of the workload.
func (m *Model) laneAdds(w Workload) float64 {
	w = w.withDefaults()
	coeffsPerChunk := float64(2 * m.Params.N)
	return float64(w.NumQueries) * float64(m.ModelShifts(w)) * float64(m.CMChunks(w)) * coeffsPerChunk
}

// EstimateCMIFP models in-flash CIPHERMATCH: every plane adds one page
// width (32768 bitlines) of coefficients per 32 × Tbit_add; all planes of
// all dies and channels run in parallel (§4.3.1 "Implementing Homomorphic
// Addition"); data never leaves the flash chips, so there is no external
// data movement. Index generation (3.42 µs/page) and software
// transposition (13.6 µs/page) are overlapped with the 22.5 µs-per-bit
// flash reads, as in §4.3.2.
//
// Energy follows Table 3's per-channel accounting: every concurrent
// channel-step of bit-serial addition costs Ebit_add (Eq. 11).
func (m *Model) EstimateCMIFP(w Workload) Estimate {
	w = w.withDefaults()
	g := m.SSD.Geometry
	lanesPerPass := float64(g.TotalPlanes()) * float64(g.PageBits())
	passes := m.laneAdds(w) / lanesPerPass
	compute := passes * float64(flash.OperandBits) * m.TBitAdd().Seconds()

	// Channel-steps: each sequential pass keeps all channels busy.
	perChannelBit := m.SSD.Energy.BitAdd(g.PageBytes)
	energy := passes * float64(flash.OperandBits) * float64(g.Channels) * perChannelBit

	return Estimate{
		System:         "CM-IFP",
		Seconds:        compute,
		EnergyJ:        energy,
		ComputeSeconds: compute,
	}
}

// pumParallelRows returns how many row-wide bulk operations the device can
// keep in flight: channels × the per-channel command-bus limit.
func (m *Model) pumParallelRows(cfg pum.Config) float64 {
	return float64(cfg.Channels * m.Cal.PuMBankOpsPerChannel)
}

// pumComputeSeconds returns the bit-serial addition time on the given
// DRAM: laneAdds spread over RowBits-wide rows, with the device's
// parallel-row limit, at Add32Latency per row.
func (m *Model) pumComputeSeconds(w Workload, cfg pum.Config) float64 {
	rowAdds := m.laneAdds(w) / float64(cfg.RowBits())
	return rowAdds / m.pumParallelRows(cfg) * cfg.Add32Latency().Seconds()
}

// pumBbopEnergy returns the bulk-operation energy of the additions.
func (m *Model) pumBbopEnergy(w Workload, cfg pum.Config) float64 {
	rowAdds := m.laneAdds(w) / float64(cfg.RowBits())
	return rowAdds * cfg.Add32Energy()
}

// EstimateCMPuM models processing-using-memory in external DDR4: the
// database streams from the SSD (once if it fits the 32 GB DRAM, per query
// otherwise; shifts reuse the resident batch), then row-wide bit-serial
// additions run in DRAM.
func (m *Model) EstimateCMPuM(w Workload) Estimate {
	w = w.withDefaults()
	enc := m.CMEncryptedBytes(w)
	dmBytes := m.dmBytesSW(enc, w.NumQueries)
	dm := dmBytes / m.Cal.SSDStreamBW
	compute := m.pumComputeSeconds(w, m.DDR4)
	energy := m.pumBbopEnergy(w, m.DDR4) +
		m.Cal.DRAMPower*compute +
		(m.Cal.SSDPower+m.Cal.DRAMPower)*dm +
		m.flashStreamEnergy(dmBytes)
	return Estimate{
		System:          "CM-PuM",
		Seconds:         dm + compute,
		EnergyJ:         energy,
		DataMoveSeconds: dm,
		ComputeSeconds:  compute,
	}
}

// EstimateCMPuMSSD models processing-using-memory in the SSD-internal
// LPDDR4: the 2 GB internal DRAM cannot hold the database, so every query
// re-streams it over the internal NAND channels (9.6 GB/s aggregate) —
// never over external I/O — and the additions run in the internal DRAM's
// single channel at LPDDR4 timings.
func (m *Model) EstimateCMPuMSSD(w Workload) Estimate {
	w = w.withDefaults()
	enc := m.CMEncryptedBytes(w)
	dmBytes := float64(enc)
	if enc > m.LPDDR4.CapacityBytes {
		dmBytes *= float64(w.NumQueries)
	}
	dm := dmBytes / m.internalSSDBandwidth()
	compute := m.pumComputeSeconds(w, m.LPDDR4)
	energy := m.pumBbopEnergy(w, m.LPDDR4) +
		m.Cal.DRAMPower*compute +
		m.flashStreamEnergy(dmBytes)
	return Estimate{
		System:          "CM-PuM-SSD",
		Seconds:         dm + compute,
		EnergyJ:         energy,
		DataMoveSeconds: dm,
		ComputeSeconds:  compute,
	}
}
