// Package perfmodel composes end-to-end latency and energy estimates for
// the six systems the paper evaluates — the Boolean baseline [17], the
// arithmetic baseline [27], CM-SW, CM-PuM, CM-PuM-SSD and CM-IFP — from
// first-principles operation counts, the Table 2/Table 3 device constants,
// and a small set of documented calibration anchors.
//
// # Modelling discipline
//
// Every quantity is either (a) a paper constant (Table 2/3), (b) a count
// derived from the algorithms implemented in internal/core (and tested
// there), or (c) a calibration anchor back-computed from a specific number
// the paper reports, named and documented as such. EXPERIMENTS.md records,
// for every figure, the paper's values next to this model's output and
// attributes any residual gap to the specific assumption involved.
//
// # Shift-variant accounting
//
// The model uses V(y) = y/align shift variants for a y-bit query, i.e. one
// replicated-and-shifted query polynomial per detectable occurrence
// residue. This matches §4.2.2's example (an 8-bit query needs 8 shifted
// polynomials) and the implementation in internal/core. (The paper's prose
// elsewhere suggests a fixed 16 shifts; that undercounts for y > 16 — see
// EXPERIMENTS.md, "shift-count discrepancy".)
package perfmodel

import (
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/pum"
	"ciphermatch/internal/ssd"
)

// RealSystem mirrors Table 2: the real CPU system of the paper's software
// evaluation.
type RealSystem struct {
	CPU           string
	Cores         int
	ClockGHz      float64
	L1KB, L2KB    int
	L3MB          int
	DRAMGB        int
	DRAMChannels  int
	DRAMBandwidth float64 // bytes/s
	SSDModel      string
	PCIeBandwidth float64 // bytes/s
	OS            string
}

// PaperRealSystem returns the Table 2 configuration.
func PaperRealSystem() RealSystem {
	return RealSystem{
		CPU:           "Intel Xeon Gold 5118 (Skylake)",
		Cores:         6,
		ClockGHz:      3.2,
		L1KB:          32,
		L2KB:          256,
		L3MB:          8,
		DRAMGB:        32,
		DRAMChannels:  4,
		DRAMBandwidth: 19.2e9,
		SSDModel:      "Samsung 980 Pro PCIe 4.0 NVMe 2TB",
		PCIeBandwidth: 7e9,
		OS:            "Ubuntu 22.04.1 LTS",
	}
}

// Calibration holds the per-operation software costs and power constants
// of the model, with the paper anchor each one is derived from.
type Calibration struct {
	// TAddSW is the CPU cost of one Hom-Add on an n=1024 ciphertext pair.
	// Anchor: Fig. 10's per-shift CM-SW slope (≈517 s per shift over a
	// 128 GB encrypted database = 1.678e7 chunks) gives ≈31 µs per
	// chunk-addition.
	TAddSW time.Duration
	// TMulSW is the CPU cost of one Hom-Mul (+relinearisation).
	// Anchor: Fig. 2(c): homomorphic multiplication is 98.2% of the
	// arithmetic baseline's latency, i.e. 2·TMul = 0.982/0.018 · 3·TAdd,
	// giving TMul ≈ 82·TAdd.
	TMulSW time.Duration
	// TPostChunk is the per-chunk result post-processing of CM-SW (match
	// polynomial comparison / result scan). Anchor: Fig. 10's CM-SW
	// query-size-independent offset (≈18300 s at 128 GB) gives ≈1.09 ms
	// per chunk.
	TPostChunk time.Duration
	// TGateBool is the effective per-gate cost of the SIMD-batched
	// TFHE Boolean baseline. Anchor: §3.1's "32-bit query in a 32-byte
	// database takes 6.6 s": 225 positions × 63 gates ⇒ ≈466 µs/gate.
	TGateBool time.Duration

	// CPUPower is the package power while computing (RAPL-style, Table 2
	// class CPU under AVX load).
	CPUPower float64
	// DRAMPower is the DRAM power while streaming.
	DRAMPower float64
	// SSDPower is the SSD active-read power (Samsung 980 Pro class).
	SSDPower float64

	// CPUIngestBW is the effective rate at which the CPU consumes
	// streamed ciphertext data through the cache hierarchy.
	CPUIngestBW float64
	// SSDStreamBW is the sustained rate of streaming a huge database out
	// of the SSD to the host. Anchor: the query-size-independent offset of
	// CM-PuM in Fig. 10 (≈111 s for a 128 GB database) corresponds to
	// ≈1.2 GB/s — the Table 3 per-channel NAND IO rate: a single huge
	// sequential stream without die-level interleaving is channel-bound,
	// well below the 7 GB/s PCIe peak.
	SSDStreamBW float64
	// PuMBankOpsPerChannel is the number of banks per channel that can
	// have bulk bitwise operations in flight concurrently: SIMDRAM op
	// issue is serialised on each channel's command bus, so the effective
	// parallelism is channels × this (anchor: Fig. 10's CM-PuM per-shift
	// slope).
	PuMBankOpsPerChannel int

	// PaperShiftSemantics caps the shift-variant count at 16, mirroring
	// the paper's query preparation (§4.2.2 line 8 performs one shift per
	// bit of a segment). That scheme misses occurrences at offsets o with
	// o mod y >= 16 for queries longer than a segment (see EXPERIMENTS.md,
	// "shift-count discrepancy"); the default (false) uses the corrected
	// V(y) = y/align of internal/core. The harness reports both.
	PaperShiftSemantics bool
}

// PaperCalibration returns the default calibration with all anchors set
// from the paper as documented on each field.
func PaperCalibration() Calibration {
	return Calibration{
		TAddSW:               31 * time.Microsecond,
		TMulSW:               31 * 82 * time.Microsecond, // ≈2.54 ms
		TPostChunk:           1090 * time.Microsecond,
		TGateBool:            466 * time.Microsecond,
		CPUPower:             105,
		DRAMPower:            6,
		SSDPower:             8,
		CPUIngestBW:          19.2e9,
		SSDStreamBW:          1.2e9,
		PuMBankOpsPerChannel: 1,
	}
}

// Model bundles everything needed to evaluate the six systems.
type Model struct {
	Params bfv.Params
	Real   RealSystem
	Cal    Calibration
	SSD    ssd.Config
	DDR4   pum.Config // external DRAM (CM-PuM)
	LPDDR4 pum.Config // SSD-internal DRAM (CM-PuM-SSD)
}

// NewPaperModel returns the model with all Table 2/3 defaults.
func NewPaperModel() *Model {
	return &Model{
		Params: bfv.ParamsPaper(),
		Real:   PaperRealSystem(),
		Cal:    PaperCalibration(),
		SSD:    ssd.DefaultConfig(),
		DDR4:   pum.ExternalDDR4(),
		LPDDR4: pum.InternalLPDDR4(),
	}
}

// TBitAdd returns the per-bit in-flash addition latency (Eq. 9) derived
// from the flash timing constants.
func (m *Model) TBitAdd() time.Duration { return m.SSD.Timing.BitAdd() }

// internalSSDBandwidth returns the aggregate NAND channel bandwidth
// (8 × 1.2 GB/s).
func (m *Model) internalSSDBandwidth() float64 {
	return float64(m.SSD.Geometry.Channels) * m.SSD.ChannelBandwidth
}
