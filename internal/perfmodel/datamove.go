package perfmodel

// This file implements the data-movement model behind Fig. 3: the latency
// of moving an encrypted database from the flash arrays to the unit that
// computes on it.
//
// Path segments and bandwidths (Tables 2/3):
//
//	flash arrays --(8×1.2 GB/s channels)--> SSD controller
//	SSD controller --(7 GB/s PCIe Gen4 ×4)--> host DRAM
//	host DRAM --(19.2 GB/s DDR4-2400)--> CPU
//
// Computing in the SSD controller stops after the first segment; computing
// "in memory" (PuM) stops after the second but, when the database exceeds
// DRAM capacity, must additionally restage the compute region
// (spill term); computing on the CPU traverses all three.

// TransferTarget identifies where the computation happens (Fig. 3's three
// scenarios).
type TransferTarget int

const (
	// TargetCPU: conventional processing; data crosses all segments.
	TargetCPU TransferTarget = iota
	// TargetDRAM: processing-using-memory in host DRAM.
	TargetDRAM
	// TargetController: in-storage processing at the SSD controller.
	TargetController
)

func (t TransferTarget) String() string {
	switch t {
	case TargetCPU:
		return "CPU"
	case TargetDRAM:
		return "Main memory"
	case TargetController:
		return "Storage"
	}
	return "unknown"
}

// TransferSeconds returns the modelled transfer latency for moving
// encBytes of encrypted database to the target compute unit.
func (m *Model) TransferSeconds(encBytes int64, target TransferTarget) float64 {
	e := float64(encBytes)
	internal := e / m.internalSSDBandwidth()
	switch target {
	case TargetController:
		return internal
	case TargetDRAM:
		// The PCIe segment dominates the internal one (they pipeline);
		// oversized databases pay a restaging penalty proportional to the
		// fraction that does not fit.
		t := e / m.Real.PCIeBandwidth
		dramCap := float64(int64(m.Real.DRAMGB) << 30)
		if e > dramCap {
			spill := (e - dramCap) / e
			t += spill * e / m.Real.DRAMBandwidth
		}
		return t
	default: // TargetCPU
		return e/m.Real.PCIeBandwidth + e/m.Real.DRAMBandwidth + e/m.Cal.CPUIngestBW
	}
}

// TransferNormalized returns the Fig. 3 quantity: the transfer latency of
// each target normalised to the CPU target (CPU = 100).
func (m *Model) TransferNormalized(encBytes int64) map[TransferTarget]float64 {
	cpu := m.TransferSeconds(encBytes, TargetCPU)
	out := make(map[TransferTarget]float64, 3)
	for _, t := range []TransferTarget{TargetCPU, TargetDRAM, TargetController} {
		out[t] = 100 * m.TransferSeconds(encBytes, t) / cpu
	}
	return out
}
