package perfmodel

// Workload describes one evaluation point of §5.3: a database of PlainBits
// plaintext bits searched with NumQueries queries of QueryBits bits each,
// at AlignBits occurrence granularity.
type Workload struct {
	PlainBits  int64
	QueryBits  int
	NumQueries int
	AlignBits  int
}

func (w Workload) withDefaults() Workload {
	if w.NumQueries == 0 {
		w.NumQueries = 1
	}
	if w.AlignBits == 0 {
		w.AlignBits = 1
	}
	return w
}

// DNAWorkload returns the §5.3 DNA case study: a 32 GB database (128 GB
// encrypted under CIPHERMATCH packing), a single query of y bits.
func DNAWorkload(queryBits int) Workload {
	return Workload{PlainBits: 32 << 33, QueryBits: queryBits, NumQueries: 1, AlignBits: 1}
}

// DBSearchWorkload returns the §5.3 encrypted-database-search case study:
// plainBytes of records, 1000 queries of 16 bits.
func DBSearchWorkload(plainBytes int64) Workload {
	return Workload{PlainBits: plainBytes * 8, QueryBits: 16, NumQueries: 1000, AlignBits: 1}
}

// Shifts returns the number of shift-variant query polynomials V(y) (see
// the package comment).
func (w Workload) Shifts() int {
	w = w.withDefaults()
	g := gcd(w.AlignBits, w.QueryBits)
	return w.QueryBits / g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// CMChunks returns the number of CIPHERMATCH database ciphertexts:
// 16n plaintext bits per chunk (§4.2.1).
func (m *Model) CMChunks(w Workload) int64 {
	bitsPerChunk := int64(m.Params.N) * int64(m.Params.PackedBitsPerCoeff())
	return ceilDiv(w.PlainBits, bitsPerChunk)
}

// CMEncryptedBytes returns the CIPHERMATCH encrypted footprint (4×).
func (m *Model) CMEncryptedBytes(w Workload) int64 {
	return m.CMChunks(w) * int64(m.Params.CiphertextBytes())
}

// ArithChunks returns the number of single-bit-packed ciphertexts of the
// arithmetic baseline: each covers n bits with n-y+1 valid window starts,
// so consecutive chunks overlap by y-1 bits.
func (m *Model) ArithChunks(w Workload) int64 {
	w = w.withDefaults()
	stride := int64(m.Params.N - w.QueryBits + 1)
	if stride < 1 {
		stride = 1
	}
	return ceilDiv(w.PlainBits, stride)
}

// ArithEncryptedBytes returns the arithmetic baseline's footprint (64×
// before overlap; overlap adds a further y/n factor).
func (m *Model) ArithEncryptedBytes(w Workload) int64 {
	return m.ArithChunks(w) * int64(m.Params.CiphertextBytes())
}

// BooleanEncryptedBytes returns the Boolean baseline's per-bit footprint.
func (m *Model) BooleanEncryptedBytes(w Workload) int64 {
	return w.PlainBits * booleanCTBytes
}

// booleanCTBytes mirrors core.BooleanCiphertextBytes (TFHE per-bit LWE
// ciphertext, ≈2.5 KiB).
const booleanCTBytes = (630 + 1) * 4

// BooleanGates returns the gate count of the Boolean baseline: at every
// aligned window position, y XNOR gates and y-1 AND gates (§2.2).
func (m *Model) BooleanGates(w Workload) int64 {
	w = w.withDefaults()
	positions := (w.PlainBits - int64(w.QueryBits)) / int64(w.AlignBits)
	if positions < 0 {
		positions = 0
	}
	return positions * int64(2*w.QueryBits-1)
}

// ModelShifts returns the shift-variant count the model uses: the
// corrected V(y) by default, capped at 16 under PaperShiftSemantics.
func (m *Model) ModelShifts(w Workload) int {
	s := w.Shifts()
	if m.Cal.PaperShiftSemantics && s > 16 {
		return 16
	}
	return s
}

// CMHomAdds returns the homomorphic additions of one full CIPHERMATCH
// search: V(y) shifts × chunks, per query.
func (m *Model) CMHomAdds(w Workload) int64 {
	w = w.withDefaults()
	return int64(m.ModelShifts(w)) * m.CMChunks(w) * int64(w.NumQueries)
}

// ArithOps returns the (muls, adds) of the arithmetic baseline: 2 Hom-Muls
// and 3 Hom-Adds per chunk per query (§3.1).
func (m *Model) ArithOps(w Workload) (muls, adds int64) {
	w = w.withDefaults()
	chunks := m.ArithChunks(w) * int64(w.NumQueries)
	return 2 * chunks, 3 * chunks
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("perfmodel: non-positive divisor")
	}
	return (a + b - 1) / b
}
