package perfmodel

import (
	"testing"
	"time"
)

func TestPaperConstantsSane(t *testing.T) {
	m := NewPaperModel()
	if m.Real.Cores != 6 || m.Real.DRAMGB != 32 {
		t.Error("Table 2 constants drifted")
	}
	// Eq. 9 derived value vs. the paper's rounded 29.38 µs.
	if got := m.TBitAdd(); got != 29340*time.Nanosecond {
		t.Errorf("TBitAdd = %v", got)
	}
	// Fig. 2(c) anchor: the TMul/TAdd ratio must reproduce ≈98.2% mult
	// share for the arithmetic op mix (2 muls : 3 adds).
	frac := m.ArithMulFraction(Workload{PlainBits: 1 << 20, QueryBits: 16})
	if frac < 0.975 || frac > 0.99 {
		t.Errorf("mult fraction = %.3f, want ≈0.982 (Fig. 2c)", frac)
	}
}

func TestShiftCounts(t *testing.T) {
	cases := []struct {
		y, align, want int
	}{
		{8, 1, 8}, // §4.2.2's example: 8-bit query, 8 shifted polynomials
		{16, 1, 16},
		{16, 16, 1},
		{32, 8, 4},
		{256, 2, 128}, // DNA base alignment
	}
	for _, c := range cases {
		w := Workload{PlainBits: 1 << 20, QueryBits: c.y, AlignBits: c.align}
		if got := w.Shifts(); got != c.want {
			t.Errorf("Shifts(y=%d, align=%d) = %d, want %d", c.y, c.align, got, c.want)
		}
	}
}

func TestFootprintRatios(t *testing.T) {
	m := NewPaperModel()
	w := Workload{PlainBits: 1 << 30, QueryBits: 16}
	plainBytes := w.PlainBits / 8
	if got := float64(m.CMEncryptedBytes(w)) / float64(plainBytes); got < 3.9 || got > 4.1 {
		t.Errorf("CM expansion = %.2f, want ≈4 (§4.2.1)", got)
	}
	arith := float64(m.ArithEncryptedBytes(w)) / float64(plainBytes)
	if arith < 63 || arith > 66 { // 64× plus chunk-overlap slack
		t.Errorf("arith expansion = %.2f, want ≈64", arith)
	}
	if got := float64(m.BooleanEncryptedBytes(w)) / float64(plainBytes); got < 200 {
		t.Errorf("Boolean expansion = %.0f, want >200 (§3.1)", got)
	}
}

// TestFig7Shape: CM-SW must beat the arithmetic baseline by tens of ×, and
// the Boolean baseline by ~10^5×, across query sizes (128 GB encrypted DB,
// single query).
func TestFig7Shape(t *testing.T) {
	m := NewPaperModel()
	for _, y := range []int{16, 32, 64, 128, 256} {
		w := DNAWorkload(y)
		cm := m.EstimateCMSW(w)
		ar := m.EstimateArith(w)
		bo := m.EstimateBoolean(w)
		overArith := ar.Seconds / cm.Seconds
		overBool := bo.Seconds / cm.Seconds
		if overArith < 5 || overArith > 500 {
			t.Errorf("y=%d: CM-SW over arithmetic = %.1f×, expected tens (paper: 20.7-62.2×)", y, overArith)
		}
		if overBool < 1e4 || overBool > 1e8 {
			t.Errorf("y=%d: CM-SW over Boolean = %.2g×, expected ~10^5×", y, overBool)
		}
	}
}

// TestFig9Shape: with 1000 queries, CM-SW performance must degrade once
// the encrypted database exceeds host DRAM (paper: 1.16× drop past 32 GB).
func TestFig9Shape(t *testing.T) {
	m := NewPaperModel()
	perByteSmall := m.EstimateCMSW(DBSearchWorkload(8<<30)).Seconds / float64(8<<30)
	perByteLarge := m.EstimateCMSW(DBSearchWorkload(32<<30)).Seconds / float64(32<<30)
	if perByteLarge <= perByteSmall {
		t.Errorf("CM-SW per-byte cost must rise when the DB exceeds DRAM: %.3g vs %.3g",
			perByteLarge, perByteSmall)
	}
	// And CM-SW must still beat the baselines at every size.
	for _, gb := range []int64{2, 8, 32} {
		w := DBSearchWorkload(gb << 30)
		if m.EstimateCMSW(w).Seconds >= m.EstimateArith(w).Seconds {
			t.Errorf("%dGB: CM-SW lost to the arithmetic baseline", gb)
		}
	}
}

// TestFig10Shape: hardware orderings at 128 GB, single query.
// Paper observations: (1) all hardware variants beat CM-SW; (2) CM-IFP
// beats CM-PuM-SSD at every query size; (3) CM-IFP beats CM-PuM at small
// query sizes, CM-PuM overtakes at 256 bits.
func TestFig10Shape(t *testing.T) {
	m := NewPaperModel()
	for _, y := range []int{16, 32, 64, 128, 256} {
		w := DNAWorkload(y)
		sw := m.EstimateCMSW(w).Seconds
		ifp := m.EstimateCMIFP(w).Seconds
		pum := m.EstimateCMPuM(w).Seconds
		pumSSD := m.EstimateCMPuMSSD(w).Seconds
		if ifp >= sw || pum >= sw || pumSSD >= sw {
			t.Errorf("y=%d: a hardware variant lost to CM-SW (sw=%.1f ifp=%.1f pum=%.1f pumssd=%.1f)",
				y, sw, ifp, pum, pumSSD)
		}
		if ifp >= pumSSD {
			t.Errorf("y=%d: CM-IFP (%.1fs) must beat CM-PuM-SSD (%.1fs)", y, ifp, pumSSD)
		}
	}
	// Crossover: IFP wins at y=16, PuM wins at y=256 (paper: 2.64× and
	// 1/1.21×).
	w16, w256 := DNAWorkload(16), DNAWorkload(256)
	if m.EstimateCMIFP(w16).Seconds >= m.EstimateCMPuM(w16).Seconds {
		t.Errorf("y=16: CM-IFP must beat CM-PuM (ifp=%.1f pum=%.1f)",
			m.EstimateCMIFP(w16).Seconds, m.EstimateCMPuM(w16).Seconds)
	}
	if m.EstimateCMPuM(w256).Seconds >= m.EstimateCMIFP(w256).Seconds {
		t.Errorf("y=256: CM-PuM must overtake CM-IFP (ifp=%.1f pum=%.1f)",
			m.EstimateCMIFP(w256).Seconds, m.EstimateCMPuM(w256).Seconds)
	}
}

// TestFig12Shape: with 1000 queries, CM-PuM wins while the database fits
// external DRAM and collapses beyond it, where CM-IFP dominates (paper:
// 1.41× for ≤32 GB, 8.29× the other way beyond).
func TestFig12Shape(t *testing.T) {
	m := NewPaperModel()
	small := DBSearchWorkload(4 << 30)  // 16 GB encrypted: fits DRAM
	large := DBSearchWorkload(32 << 30) // 128 GB encrypted: exceeds DRAM
	if m.EstimateCMPuM(small).Seconds >= m.EstimateCMIFP(small).Seconds {
		t.Errorf("small DB: CM-PuM must beat CM-IFP (pum=%.1f ifp=%.1f)",
			m.EstimateCMPuM(small).Seconds, m.EstimateCMIFP(small).Seconds)
	}
	if m.EstimateCMIFP(large).Seconds >= m.EstimateCMPuM(large).Seconds {
		t.Errorf("large DB: CM-IFP must beat CM-PuM (pum=%.1f ifp=%.1f)",
			m.EstimateCMPuM(large).Seconds, m.EstimateCMIFP(large).Seconds)
	}
	// CM-PuM vs CM-PuM-SSD: the paper reports CM-PuM 6.6× ahead while the
	// DB fits DRAM, flipping to CM-PuM-SSD 1.75× ahead beyond capacity.
	// Our mechanistic model reproduces the narrowing (the internal-channel
	// bandwidth advantage kicks in beyond 32 GB) but not the full flip —
	// CM-PuM-SSD lands within ~15% rather than ahead; see EXPERIMENTS.md
	// ("Fig. 12 divergence"). Assert the narrowing and the bound.
	ratioSmall := m.EstimateCMPuMSSD(small).Seconds / m.EstimateCMPuM(small).Seconds
	ratioLarge := m.EstimateCMPuMSSD(large).Seconds / m.EstimateCMPuM(large).Seconds
	if ratioLarge >= ratioSmall {
		t.Errorf("CM-PuM-SSD/CM-PuM ratio must narrow beyond DRAM capacity: %.2f -> %.2f",
			ratioSmall, ratioLarge)
	}
	if ratioLarge > 1.3 {
		t.Errorf("large DB: CM-PuM-SSD should be competitive with CM-PuM, ratio %.2f", ratioLarge)
	}
	if ratioSmall < 2 {
		t.Errorf("small DB: CM-PuM should lead CM-PuM-SSD clearly (paper 6.6×), ratio %.2f", ratioSmall)
	}
}

// TestFig11Shape: energy orderings — CM-IFP saves the most energy; the
// paper's headline is 256.4× over CM-SW (vs 136.9× in performance), i.e.
// the energy win exceeds the performance win.
func TestFig11Shape(t *testing.T) {
	m := NewPaperModel()
	w := DNAWorkload(16)
	sw := m.EstimateCMSW(w)
	ifp := m.EstimateCMIFP(w)
	pum := m.EstimateCMPuM(w)
	pumSSD := m.EstimateCMPuMSSD(w)
	if ifp.EnergyJ >= sw.EnergyJ || pum.EnergyJ >= sw.EnergyJ || pumSSD.EnergyJ >= sw.EnergyJ {
		t.Error("hardware variants must save energy over CM-SW")
	}
	if ifp.EnergyJ >= pum.EnergyJ || ifp.EnergyJ >= pumSSD.EnergyJ {
		t.Error("CM-IFP must have the lowest energy")
	}
	perfWin := sw.Seconds / ifp.Seconds
	energyWin := sw.EnergyJ / ifp.EnergyJ
	if energyWin <= perfWin {
		t.Errorf("CM-IFP energy win (%.0f×) should exceed its performance win (%.0f×)", energyWin, perfWin)
	}
	// CM-PuM-SSD is more energy-efficient than CM-PuM (paper: 1.06×)
	// even when slower, thanks to internal-channel transfers.
	if pumSSD.EnergyJ >= pum.EnergyJ {
		t.Errorf("CM-PuM-SSD energy (%.1f J) must undercut CM-PuM (%.1f J)", pumSSD.EnergyJ, pum.EnergyJ)
	}
}

// TestFig3Shape: transfer-latency orderings and trends.
func TestFig3Shape(t *testing.T) {
	m := NewPaperModel()
	var prevDRAMBenefit float64 = -1
	for _, gb := range []int64{8, 16, 32, 64, 128, 256} {
		norm := m.TransferNormalized(gb << 30)
		if norm[TargetCPU] != 100 {
			t.Fatalf("CPU must normalise to 100, got %.1f", norm[TargetCPU])
		}
		if !(norm[TargetController] < norm[TargetDRAM] && norm[TargetDRAM] < norm[TargetCPU]) {
			t.Errorf("%dGB: expected storage < DRAM < CPU, got %.1f / %.1f / 100",
				gb, norm[TargetController], norm[TargetDRAM])
		}
		benefit := 100 - norm[TargetDRAM]
		if prevDRAMBenefit >= 0 && benefit > prevDRAMBenefit+1e-9 {
			t.Errorf("%dGB: DRAM benefit must shrink with database size", gb)
		}
		prevDRAMBenefit = benefit
	}
	// The DRAM benefit must actually shrink across the sweep.
	first := 100 - m.TransferNormalized(8 << 30)[TargetDRAM]
	last := 100 - m.TransferNormalized(256 << 30)[TargetDRAM]
	if last >= first {
		t.Errorf("DRAM benefit: 8GB %.1f%% vs 256GB %.1f%%, must shrink", first, last)
	}
}

func TestEstimateComponentsAddUp(t *testing.T) {
	m := NewPaperModel()
	w := DNAWorkload(32)
	for _, e := range []Estimate{
		m.EstimateCMSW(w), m.EstimateArith(w), m.EstimateBoolean(w),
		m.EstimateCMIFP(w), m.EstimateCMPuM(w), m.EstimateCMPuMSSD(w),
	} {
		sum := e.DataMoveSeconds + e.ComputeSeconds + e.PostSeconds
		if diff := e.Seconds - sum; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: components %.3f != total %.3f", e.System, sum, e.Seconds)
		}
		if e.Seconds <= 0 || e.EnergyJ <= 0 {
			t.Errorf("%s: non-positive estimate %+v", e.System, e)
		}
	}
}
