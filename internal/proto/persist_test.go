package proto

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/segment"
)

// durableTenant is a tenant fixture whose ground truth comes from the
// client-decrypt path (the cryptographic reference the engine
// conformance tests pin to), not just from another engine.
type durableTenant struct {
	*tenant
	clientWant []int // candidates derived via Server.Search + ExtractHits
	batch      []*core.Query
}

func newDurableTenant(t *testing.T, p bfv.Params, name string, spec core.EngineSpec, dbBytes, plantAt int) *durableTenant {
	t.Helper()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("tenant-"+name))
	if err != nil {
		t.Fatal(err)
	}
	tn := &tenant{name: name, spec: spec}
	tn.data = make([]byte, dbBytes)
	rng.NewSourceFromString("data-" + name).Bytes(tn.data)
	tn.query = []byte{0xFE, 0xED, 0xFA, 0xCE}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(tn.data, plantAt+j, mathutil.GetBit(tn.query, j))
	}
	if tn.db, err = client.EncryptDatabase(tn.data, dbBytes*8); err != nil {
		t.Fatal(err)
	}
	if tn.q, err = client.PrepareQuery(tn.query, 32, dbBytes*8); err != nil {
		t.Fatal(err)
	}
	// Cryptographic ground truth, as in TestEngineHitsMatchClientDecrypt:
	// result ciphertexts shipped back, decrypted, compared against t-1.
	sr, err := core.NewServer(p, tn.db).Search(tn.q)
	if err != nil {
		t.Fatal(err)
	}
	hits := client.ExtractHits(tn.q, sr)
	want := core.Candidates(hits, tn.q.DBBitLen, tn.q.YBits, tn.q.AlignBits)
	if len(want) == 0 {
		t.Fatalf("tenant %s: vacuous fixture", name)
	}
	second, err := client.PrepareQuery([]byte{0x0F, 0xF0, 0x55, 0xAA}, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := client.PrepareQuery(tn.query, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	tn.expect = want
	return &durableTenant{tenant: tn, clientWant: want, batch: []*core.Query{tn.q, second, dup}}
}

func assertCandidates(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: candidates %v, want %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: candidates %v, want %v", label, got, want)
		}
	}
}

// TestStoreRestartRecovery is the durability conformance test: upload
// databases with distinct engine specs, search them, reopen a fresh
// store over the same data directory, and require bit-identical search
// and batch-search results on every engine kind — with the
// client-decrypt candidates as the cryptographic ground truth.
func TestStoreRestartRecovery(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	tenants := []*durableTenant{
		newDurableTenant(t, p, "serial-db", core.EngineSpec{Kind: core.EngineSerial}, 192, 200),
		newDurableTenant(t, p, "pool-db", core.EngineSpec{Kind: core.EnginePool, Workers: 2}, 256, 968),
		newDurableTenant(t, p, "sharded-db", core.EngineSpec{Kind: core.EngineSerial, Shards: 2}, 320, 1504),
		newDurableTenant(t, p, "ssd-db", core.EngineSpec{Kind: core.EngineSSD}, 192, 640),
	}

	st1, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	preBatch := make(map[string][][]int)
	for _, tn := range tenants {
		if err := st1.Upload(tn.name, tn.spec, tn.db); err != nil {
			t.Fatalf("upload %s: %v", tn.name, err)
		}
		ir, err := st1.Search(tn.name, tn.q)
		if err != nil {
			t.Fatalf("pre-restart search %s: %v", tn.name, err)
		}
		assertCandidates(t, "pre-restart "+tn.name, ir.Candidates, tn.clientWant)
		irs, err := st1.SearchBatch(tn.name, core.NewBatchQuery(tn.batch...))
		if err != nil {
			t.Fatalf("pre-restart batch %s: %v", tn.name, err)
		}
		for _, bir := range irs {
			preBatch[tn.name] = append(preBatch[tn.name], bir.Candidates)
		}
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store over the same directory must re-register
	// every tenant from its segment, metadata-only.
	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	infos := st2.List()
	if len(infos) != len(tenants) {
		t.Fatalf("recovered %d databases, want %d: %+v", len(infos), len(tenants), infos)
	}
	for _, in := range infos {
		if in.State != StateCold {
			t.Errorf("%s: state %q before first search, want %q", in.Name, in.State, StateCold)
		}
	}
	for _, tn := range tenants {
		var in *DBInfo
		for i := range infos {
			if infos[i].Name == tn.name {
				in = &infos[i]
			}
		}
		if in == nil {
			t.Fatalf("%s missing from recovered listing", tn.name)
		}
		// List on a cold database must serve geometry from the
		// manifest metadata, without loading the arena.
		if in.Chunks != len(tn.db.Chunks) || in.BitLen != tn.db.BitLen {
			t.Errorf("%s: cold listing %d chunks / %d bits, want %d / %d",
				tn.name, in.Chunks, in.BitLen, len(tn.db.Chunks), tn.db.BitLen)
		}
		if in.Engine != tn.spec.String() {
			t.Errorf("%s: cold listing engine %q, want persisted spec %q", tn.name, in.Engine, tn.spec.String())
		}
	}

	for _, tn := range tenants {
		ir, err := st2.Search(tn.name, tn.q)
		if err != nil {
			t.Fatalf("post-restart search %s: %v", tn.name, err)
		}
		assertCandidates(t, "post-restart "+tn.name, ir.Candidates, tn.clientWant)
		irs, err := st2.SearchBatch(tn.name, core.NewBatchQuery(tn.batch...))
		if err != nil {
			t.Fatalf("post-restart batch %s: %v", tn.name, err)
		}
		if len(irs) != len(preBatch[tn.name]) {
			t.Fatalf("post-restart batch %s: %d results, want %d", tn.name, len(irs), len(preBatch[tn.name]))
		}
		for mi, bir := range irs {
			assertCandidates(t, "post-restart batch "+tn.name, bir.Candidates, preBatch[tn.name][mi])
		}
	}
	// After searching, tenants are resident and the listing says so.
	for _, in := range st2.List() {
		if in.State != StateResident {
			t.Errorf("%s: state %q after search, want %q", in.Name, in.State, StateResident)
		}
	}
}

// TestStoreEviction pins the cold-DB eviction policy: under a budget
// that fits only one tenant arena, uploads and searches evict the
// least-recently-used database, evicted tenants transparently reload
// from their segment on the next search with bit-identical results,
// and Drop removes the segment file.
func TestStoreEviction(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	a := newDurableTenant(t, p, "alpha", core.EngineSpec{}, 192, 200)
	b := newDurableTenant(t, p, "beta", core.EngineSpec{Kind: core.EnginePool, Workers: 2}, 192, 968)
	arena := 2 * int64(len(a.db.Chunks)) * int64(p.N) * 8

	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir, MemBudget: arena + arena/2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Upload(a.name, a.spec, a.db); err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(b.name, b.spec, b.db); err != nil {
		t.Fatal(err)
	}
	if got := st.ResidentBytes(); got > arena+arena/2 {
		t.Fatalf("resident %d bytes exceeds budget after uploads", got)
	}
	states := map[string]string{}
	for _, in := range st.List() {
		states[in.Name] = in.State
	}
	if states["alpha"] != StateCold || states["beta"] != StateResident {
		t.Fatalf("after uploads: alpha=%s beta=%s, want alpha cold (LRU-evicted), beta resident", states["alpha"], states["beta"])
	}

	// Searching the evicted tenant transparently reloads it — and
	// pushes beta out in turn. Results stay pinned to the
	// client-decrypt ground truth through evict/reload cycles.
	for i := 0; i < 3; i++ {
		ir, err := st.Search(a.name, a.q)
		if err != nil {
			t.Fatalf("round %d alpha: %v", i, err)
		}
		assertCandidates(t, "evicted-then-reloaded alpha", ir.Candidates, a.clientWant)
		ir, err = st.Search(b.name, b.q)
		if err != nil {
			t.Fatalf("round %d beta: %v", i, err)
		}
		assertCandidates(t, "evicted-then-reloaded beta", ir.Candidates, b.clientWant)
		if got := st.ResidentBytes(); got > arena+arena/2 {
			t.Fatalf("round %d: resident %d bytes exceeds budget", i, got)
		}
	}

	// Batch search also reloads cold tenants.
	irs, err := st.SearchBatch(a.name, core.NewBatchQuery(a.batch...))
	if err != nil {
		t.Fatal(err)
	}
	assertCandidates(t, "batch after eviction", irs[0].Candidates, a.clientWant)

	// Drop deletes the segment: the file is gone and a fresh store
	// over the directory no longer knows the tenant.
	segPath := filepath.Join(dir, segment.FileName(a.name))
	if _, err := os.Stat(segPath); err != nil {
		t.Fatalf("segment missing before drop: %v", err)
	}
	if err := st.Drop(a.name); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("segment survived drop: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if infos := st2.List(); len(infos) != 1 || infos[0].Name != "beta" {
		t.Fatalf("after drop+restart: %+v", infos)
	}
}

// TestStoreConcurrentEvictReload hammers the evict/reload seam: under
// a budget that keeps only one of two tenants resident, concurrent
// searches force constant eviction (munmap) and zero-copy reload, and
// every result must stay correct — the write lock must never unmap an
// arena a search is streaming.
func TestStoreConcurrentEvictReload(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	a := newDurableTenant(t, p, "thrash-a", core.EngineSpec{}, 192, 200)
	b := newDurableTenant(t, p, "thrash-b", core.EngineSpec{Kind: core.EnginePool, Workers: 2}, 192, 968)
	arena := 2 * int64(len(a.db.Chunks)) * int64(p.N) * 8
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir, MemBudget: arena + arena/2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Upload(a.name, a.spec, a.db); err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(b.name, b.spec, b.db); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 10
	errCh := make(chan error, goroutines)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			tn := a
			if g%2 == 1 {
				tn = b
			}
			for i := 0; i < rounds; i++ {
				ir, err := st.Search(tn.name, tn.q)
				if err != nil {
					errCh <- err
					return
				}
				if len(ir.Candidates) != len(tn.clientWant) {
					errCh <- errMismatch(tn.name, ir.Candidates, tn.clientWant)
					return
				}
				for j := range ir.Candidates {
					if ir.Candidates[j] != tn.clientWant[j] {
						errCh <- errMismatch(tn.name, ir.Candidates, tn.clientWant)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestStoreDurableCapacityRefusal pins the refused-upload invariants on
// a durable store: a refusal at MaxStoredDBs must not write a segment
// a restart could resurrect, and must not skew the resident-bytes
// accounting the eviction policy steers by.
func TestStoreDurableCapacityRefusal(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	tn := newDurableTenant(t, p, "cap", core.EngineSpec{}, 64, 40)
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxStoredDBs; i++ {
		if err := st.Upload(fmt.Sprintf("db-%d", i), core.EngineSpec{}, tn.db); err != nil {
			t.Fatal(err)
		}
	}
	before := st.ResidentBytes()
	if err := st.Upload("one-too-many", core.EngineSpec{}, tn.db); err == nil {
		t.Fatal("durable store accepted more than MaxStoredDBs databases")
	}
	if got := st.ResidentBytes(); got != before {
		t.Fatalf("refused upload changed resident accounting: %d -> %d", before, got)
	}
	if _, err := os.Stat(filepath.Join(dir, segment.FileName("one-too-many"))); !os.IsNotExist(err) {
		t.Fatalf("refused upload left a segment behind: %v", err)
	}
	if err := st.Upload("db-0", core.EngineSpec{}, tn.db); err != nil {
		t.Fatalf("replacement at capacity refused: %v", err)
	}
	st.Close()
	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := len(st2.List()); n != MaxStoredDBs {
		t.Fatalf("restart recovered %d databases, want %d", n, MaxStoredDBs)
	}
}

// TestStoreForeignGeometryQuarantine: a segment written under different
// BFV parameters must not brick the store — it is skipped (and
// reported), while healthy tenants recover and serve.
func TestStoreForeignGeometryQuarantine(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	tn := newDurableTenant(t, p, "healthy", core.EngineSpec{}, 192, 200)
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Drop a well-formed segment from a different parameter point
	// (double the ring degree) into the directory.
	foreignN := 2 * p.N
	fdb := core.NewCompactDB(foreignN, 1)
	fdb.BitLen = 16
	fdb.NumSegments = 1
	meta := segment.Meta{Name: "foreign", RingDegree: foreignN, Modulus: p.Q, Chunks: 1, BitLen: 16, NumSegments: 1}
	if err := segment.Write(filepath.Join(dir, segment.FileName("foreign")), meta, fdb); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatalf("one foreign segment bricked the store: %v", err)
	}
	defer st2.Close()
	if infos := st2.List(); len(infos) != 1 || infos[0].Name != "healthy" {
		t.Fatalf("listing with foreign segment present: %+v", infos)
	}
	skipped := st2.SkippedSegments()
	if len(skipped) != 1 || skipped[0].Name != "foreign" {
		t.Fatalf("skipped segments: %+v", skipped)
	}
	ir, err := st2.Search(tn.name, tn.q)
	if err != nil {
		t.Fatal(err)
	}
	assertCandidates(t, "healthy tenant beside foreign segment", ir.Candidates, tn.clientWant)
	// The foreign file is quarantined, not deleted.
	if _, err := os.Stat(filepath.Join(dir, segment.FileName("foreign"))); err != nil {
		t.Fatalf("foreign segment was deleted: %v", err)
	}
}

// TestStoreListCold guards the List regression the eviction work makes
// possible: listing must never dereference an absent arena, and a
// dropped-then-listed store stays consistent.
func TestStoreListCold(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	tn := newDurableTenant(t, p, "coldlist", core.EngineSpec{}, 192, 200)
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Reopened: metadata-only entry. List must work without loading.
	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	infos := st2.List()
	if len(infos) != 1 || infos[0].Chunks != len(tn.db.Chunks) || infos[0].BitLen != tn.db.BitLen || infos[0].State != StateCold {
		t.Fatalf("cold listing: %+v", infos)
	}
	if infos[0].Searches != 0 {
		t.Fatalf("search count %d survived restart; want in-memory stat reset", infos[0].Searches)
	}
}
