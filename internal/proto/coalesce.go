// Server-side adaptive query coalescing. The batch kernel (core's
// searchChunkRangeBatch) makes one pass over the ciphertext arena serve
// a whole batch, but until now only the client could form a BatchQuery.
// The Coalescer closes that gap for concurrent traffic: single MsgQuery
// requests against the same database are held in a short per-database
// batching window — fires at MaxBatch queries or after an adaptive
// timeout, whichever first — merged into one internal core.BatchQuery,
// run as one arena pass, and fanned back to their waiting connections.
// At high QPS every arena pass is shared across the window's arrivals,
// which is the paper's memory-traffic-is-the-bottleneck thesis applied
// to request streams instead of residues.
//
// Around the window sits admission control: per-database pending-query
// caps rejecting excess load with a typed wire error (MsgOverloaded)
// instead of queueing unboundedly, a FIFO ready list that round-robins
// batch execution fairly across databases, and a bounded executor pool
// so a query storm cannot spawn unbounded goroutines.
package proto

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/trace"
)

// unknownTenantLabel is the shared label value for metrics attributed
// to database names the store does not host: client-minted names must
// never become label values (see the cardinality policy in
// internal/metrics), so they all collapse into this one child.
const unknownTenantLabel = "_other"

// ErrOverloaded is the admission-control rejection: the target
// database's coalescing queue is at its depth cap. The wire maps it to
// MsgOverloaded; clients should back off and retry.
var ErrOverloaded = errors.New("proto: server overloaded, retry later")

// errShutdown fails queries stranded in a queue when the coalescer
// closes; it surfaces as MsgOverloaded too (the retry advice holds).
var errShutdown = errors.New("proto: server shutting down")

// CoalesceConfig tunes the server-side batching window and its
// admission control. The zero value disables coalescing (every MsgQuery
// runs as its own search, the pre-coalescing behaviour).
type CoalesceConfig struct {
	// Window is the maximum batching delay T: a pending batch never
	// waits longer than this before executing. The actual wait adapts
	// per database to the observed arrival rate (see adaptWindow) and
	// only reaches Window under traffic dense enough to fill batches.
	// Zero disables coalescing.
	Window time.Duration
	// MaxBatch fires a batch as soon as this many queries are pending
	// (the N in "N queries or T µs"). Defaults to 16.
	MaxBatch int
	// MaxQueue caps pending (not yet executing) queries per database;
	// arrivals beyond it are rejected with ErrOverloaded. Defaults to
	// 16× MaxBatch. May be set below MaxBatch: batches then fill only
	// up to the queue cap and fire by timer.
	MaxQueue int
	// Executors bounds concurrent batch executions across all
	// databases. Defaults to GOMAXPROCS.
	Executors int
}

func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16 * c.MaxBatch
	}
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	return c
}

// coalesceResult is what an executor hands back to a waiting request.
type coalesceResult struct {
	candidates []int
	err        error
}

// pendingQuery is one enqueued single query waiting for its batch. It
// carries the raw wire bytes, not a decoded query: decoding is deferred
// to batch execution, where byte-identical members (a hot query
// replayed by many connections — exactly the traffic that coalesces)
// share one decode.
type pendingQuery struct {
	raw      []byte // encoded query, name already stripped
	enqueued time.Time
	done     chan coalesceResult // buffered(1); exactly one send
	// tr is the request's lifecycle trace (nil when untraced). The
	// executor stamps decode/coalesce-wait/batch-form/arena and the
	// per-member arena attribution into it strictly before sending on
	// done, and the connection handler reads it strictly after receiving
	// — the channel is the synchronisation edge.
	tr *trace.Trace
}

// dbQueue is the per-database batching state. pending accumulates until
// the batch trigger (size or timer) pushes the queue onto the ready
// list; an executor then takes up to MaxBatch entries in one swap.
type dbQueue struct {
	name string

	// Per-tenant serving telemetry handles, resolved once when the queue
	// is created (one labeled-family lookup per active tenant, not per
	// query). depth tracks the live pending count; rejected counts
	// admission rejections; occupancy observes batch sizes.
	depth     *metrics.Gauge
	rejected  *metrics.Counter
	occupancy *metrics.Histogram

	mu      sync.Mutex
	pending []*pendingQuery
	gen     uint64      // batch generation; stale timer fires no-op
	timer   *time.Timer // armed while a batch is accumulating
	dead    bool        // reaped from the queue map; lookups must retry

	// Arrival-rate estimate: EWMA of inter-arrival time, feeding the
	// adaptive window.
	lastArrival time.Time
	ewmaNs      float64
}

// Coalescer merges concurrently arriving single queries into batched
// arena passes. One per Server; nil means coalescing is disabled.
type Coalescer struct {
	store  *Store
	params bfv.Params
	cfg    CoalesceConfig
	met    *serverMetrics

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*dbQueue
	ready  []*dbQueue // FIFO: round-robin fairness across databases
	closed bool
	wg     sync.WaitGroup
}

// NewCoalescer builds a coalescer over a store and starts its executor
// pool. Close must be called to stop the executors.
func NewCoalescer(store *Store, params bfv.Params, cfg CoalesceConfig, met *serverMetrics) *Coalescer {
	co := &Coalescer{
		store:  store,
		params: params,
		cfg:    cfg.withDefaults(),
		met:    met,
		queues: make(map[string]*dbQueue),
	}
	co.cond = sync.NewCond(&co.mu)
	co.wg.Add(co.cfg.Executors)
	for i := 0; i < co.cfg.Executors; i++ {
		go co.runExecutor()
	}
	return co
}

// SearchRaw enqueues one still-encoded query for the named database and
// blocks until its batch has executed, returning the query's own
// candidates. Results are bit-identical to decoding and running
// Store.Search directly (the batch kernels are conformance-pinned to
// the sequential path). Rejects with ErrOverloaded when the database's
// queue is at its depth cap.
func (co *Coalescer) SearchRaw(name string, raw []byte) ([]int, error) {
	return co.SearchRawTraced(name, raw, nil)
}

// SearchRawTraced is SearchRaw carrying the request's lifecycle trace
// (nil disables tracing): admission is stamped here, and the executor
// stamps the window wait, batch formation, the shared decode and the
// arena pass into tr before the result is fanned back.
func (co *Coalescer) SearchRawTraced(name string, raw []byte, tr *trace.Trace) ([]int, error) {
	pq := &pendingQuery{raw: raw, enqueued: time.Now(), done: make(chan coalesceResult, 1), tr: tr}
	err := co.enqueue(name, pq)
	if tr != nil {
		tr.Stamp(trace.StageAdmission, int64(time.Since(pq.enqueued)))
	}
	if err != nil {
		return nil, err
	}
	res := <-pq.done
	return res.candidates, res.err
}

// enqueue appends pq to the database's pending batch, arming the
// adaptive window timer when it opens a new batch and pushing the queue
// ready when it fills one.
func (co *Coalescer) enqueue(name string, pq *pendingQuery) error {
	for {
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			return errShutdown
		}
		q, ok := co.queues[name]
		if !ok {
			// Label-cardinality guard: only names the store actually hosts
			// (bounded by MaxStoredDBs) become label values; queries against
			// arbitrary client-minted names share one "_other" child, so a
			// hostile peer cannot grow the registry without bound.
			label := name
			if !co.store.Has(name) {
				label = unknownTenantLabel
			}
			q = &dbQueue{
				name:      name,
				depth:     co.met.tenantDepth.With(label),
				rejected:  co.met.tenantRejected.With(label),
				occupancy: co.met.tenantOccupancy.With(label),
			}
			co.queues[name] = q
		}
		co.mu.Unlock()

		q.mu.Lock()
		if q.dead {
			// Reaped between lookup and lock: retry against a fresh
			// queue object.
			q.mu.Unlock()
			continue
		}
		if len(q.pending) >= co.cfg.MaxQueue {
			q.mu.Unlock()
			co.met.rejected.Inc()
			q.rejected.Inc()
			return ErrOverloaded
		}
		now := pq.enqueued
		if !q.lastArrival.IsZero() {
			dt := float64(now.Sub(q.lastArrival))
			if q.ewmaNs == 0 {
				q.ewmaNs = dt
			} else {
				q.ewmaNs = 0.8*q.ewmaNs + 0.2*dt
			}
		}
		q.lastArrival = now
		q.pending = append(q.pending, pq)
		n := len(q.pending)
		q.depth.Set(int64(n))
		var window time.Duration
		if n == 1 {
			// First query of a new batch: open the window.
			window = co.adaptWindow(q.ewmaNs)
			gen := q.gen
			q.timer = time.AfterFunc(window, func() { co.timerFire(q, gen) })
		}
		q.mu.Unlock()

		if n == 1 {
			co.met.window.Set(int64(window))
		}
		if n == co.cfg.MaxBatch {
			co.pushReady(q)
		}
		return nil
	}
}

// adaptWindow sizes the batching window for a newly opened batch from
// the observed mean inter-arrival time (ewmaNs):
//
//   - no observations yet: the full configured window (nothing is known
//     about this tenant's rate, so optimise for coalescing);
//   - dense traffic — MaxBatch-1 more arrivals expected within the
//     cap: wait just long enough to fill the batch, no longer;
//   - medium traffic — at least one more arrival expected within the
//     cap: wait for one coalescing partner;
//   - sparse traffic — not even one arrival expected within the cap:
//     waiting would tax every query's latency for no occupancy, so
//     fire (almost) immediately.
//
// The result is that solo clients see near-direct latency while query
// storms fill whole batches — the "T adapting to observed arrival
// rate" half of the N-or-T trigger.
func (co *Coalescer) adaptWindow(ewmaNs float64) time.Duration {
	maxW := co.cfg.Window
	minW := maxW / 64
	if minW < time.Microsecond {
		minW = time.Microsecond
	}
	if ewmaNs <= 0 {
		return maxW
	}
	fill := time.Duration(ewmaNs * float64(co.cfg.MaxBatch-1))
	one := time.Duration(ewmaNs)
	switch {
	case fill <= maxW:
		if fill < minW {
			return minW
		}
		return fill
	case one <= maxW:
		return one
	default:
		return minW
	}
}

// timerFire is the window-timeout trigger. A stale generation means the
// batch it was armed for already executed (size trigger or an earlier
// pop); firing then would only push a spurious ready entry.
func (co *Coalescer) timerFire(q *dbQueue, gen uint64) {
	q.mu.Lock()
	stale := q.gen != gen || len(q.pending) == 0
	q.mu.Unlock()
	if !stale {
		co.pushReady(q)
	}
}

// pushReady appends the queue to the FIFO ready list. Duplicate entries
// are tolerated (an executor popping a drained queue is a no-op), which
// keeps the trigger paths free of cross-lock coordination.
func (co *Coalescer) pushReady(q *dbQueue) {
	co.mu.Lock()
	if !co.closed {
		co.ready = append(co.ready, q)
		co.cond.Signal()
	}
	co.mu.Unlock()
}

// runExecutor is one worker of the bounded executor pool: pop the next
// ready database (FIFO — fair round-robin across tenants), swap out up
// to MaxBatch pending queries, run them as one batched arena pass, and
// fan the per-member results back.
func (co *Coalescer) runExecutor() {
	defer co.wg.Done()
	for {
		co.mu.Lock()
		for len(co.ready) == 0 && !co.closed {
			co.cond.Wait()
		}
		if len(co.ready) == 0 && co.closed {
			co.mu.Unlock()
			return
		}
		q := co.ready[0]
		co.ready = co.ready[1:]
		co.mu.Unlock()

		batch := co.takeBatch(q)
		if len(batch) == 0 {
			co.reapIfEmpty(q)
			continue
		}
		co.executeSafe(q, batch)
		co.reapIfEmpty(q)
	}
}

// takeBatch claims up to MaxBatch pending queries. A remainder beyond
// MaxBatch becomes the next batch: its window timer is re-armed (or the
// queue re-pushed when it already fills a batch), so burst tails are
// never stranded.
func (co *Coalescer) takeBatch(q *dbQueue) []*pendingQuery {
	var repush bool
	q.mu.Lock()
	var batch []*pendingQuery
	if len(q.pending) <= co.cfg.MaxBatch {
		batch = q.pending
		q.pending = nil
	} else {
		batch = q.pending[:co.cfg.MaxBatch:co.cfg.MaxBatch]
		rest := make([]*pendingQuery, len(q.pending)-co.cfg.MaxBatch)
		copy(rest, q.pending[co.cfg.MaxBatch:])
		q.pending = rest
	}
	q.gen++ // any armed timer is now stale
	q.depth.Set(int64(len(q.pending)))
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	if len(q.pending) >= co.cfg.MaxBatch {
		repush = true
	} else if len(q.pending) > 0 {
		window := co.adaptWindow(q.ewmaNs)
		gen := q.gen
		q.timer = time.AfterFunc(window, func() { co.timerFire(q, gen) })
	}
	q.mu.Unlock()
	if repush {
		co.pushReady(q)
	}
	return batch
}

// queryGroup is one set of byte-identical batch members: they decode to
// the same query, run as one evaluation, and share one result.
type queryGroup struct {
	members []*pendingQuery
	q       *core.Query
}

// fan delivers one outcome to every member of the group. The candidate
// slice is shared read-only across members (each send only encodes it).
// The non-blocking send makes fan idempotent per member (done is
// buffered(1)): the panic-recovery sweep in executeSafe can blanket the
// whole batch without double-sending to members already answered.
func (g *queryGroup) fan(res coalesceResult) {
	for _, pq := range g.members {
		select {
		case pq.done <- res:
		default:
		}
	}
}

// executeSafe runs one batch with panic isolation: a panic inside the
// batch kernels or the store poisons only this window — every member
// that has not been answered yet gets a typed server-fault error, the
// executor survives, and the waiting connections are never stranded.
func (co *Coalescer) executeSafe(q *dbQueue, batch []*pendingQuery) {
	defer func() {
		if r := recover(); r == nil {
			return
		} else {
			co.met.panics.Inc()
			co.met.failed.Add(int64(len(batch)))
			res := coalesceResult{err: fmt.Errorf("%w: recovered batch-executor panic: %v", ErrServerFault, r)}
			for _, pq := range batch {
				select {
				case pq.done <- res:
				default: // already answered before the panic
				}
			}
		}
	}()
	co.execute(q, batch)
}

// stampMembers adds ns to stage s on every traced member of a group.
func stampMembers(members []*pendingQuery, s trace.Stage, ns int64) {
	for _, pq := range members {
		if pq.tr != nil {
			pq.tr.Stamp(s, ns)
		}
	}
}

// attributeArena records the arena work a search performed into every
// traced member of a group: a coalesced member's trace carries the full
// stats of the evaluation that produced its answer (shared across the
// group, like the shared decode).
func attributeArena(members []*pendingQuery, stats core.Stats) {
	for _, pq := range members {
		if pq.tr != nil {
			pq.tr.ChunkStreams = stats.ChunkStreams
			pq.tr.HomAdds = int64(stats.HomAdds)
		}
	}
}

// execute runs one coalesced batch through the store's batched search
// and fans results back. Byte-identical members collapse into one group
// first — the window's second big saving besides the shared arena pass:
// a hot query replayed by N connections decodes once, not N times, and
// occupies one batch slot. On a batch-level error it falls back to
// per-group sequential searches so one malformed query cannot poison
// the whole window's innocents (their errors stay their own).
func (co *Coalescer) execute(q *dbQueue, batch []*pendingQuery) {
	name := q.name
	start := time.Now()
	for _, pq := range batch {
		wait := int64(start.Sub(pq.enqueued))
		co.met.queueWait.Observe(wait)
		if pq.tr != nil {
			pq.tr.Stamp(trace.StageCoalesceWait, wait)
			pq.tr.Batch = int32(len(batch))
			if len(batch) > 1 {
				pq.tr.Flags |= trace.FlagCoalesced
			}
		}
	}
	co.met.batches.Inc()
	co.met.occupancy.Observe(int64(len(batch)))
	q.occupancy.Observe(int64(len(batch)))
	if len(batch) > 1 {
		co.met.coalesced.Add(int64(len(batch)))
	}

	// Group byte-identical payloads; deterministic encoders mean byte
	// equality is exact query equality. Map lookups on string(pq.raw)
	// do not copy; only the first member of each group allocates a key.
	var groups []*queryGroup
	byPayload := make(map[string]*queryGroup, len(batch))
	for _, pq := range batch {
		if g, ok := byPayload[string(pq.raw)]; ok {
			g.members = append(g.members, pq)
			co.met.decodesSaved.Inc()
			continue
		}
		g := &queryGroup{members: []*pendingQuery{pq}}
		byPayload[string(pq.raw)] = g
		groups = append(groups, g)
	}
	formed := time.Now()
	stampMembers(batch, trace.StageBatchForm, int64(formed.Sub(start)))

	// Decode once per group. A group that fails to decode fails alone.
	// Each member's trace carries its group's shared decode time — the
	// coalesced counterpart of the direct path's decode stage.
	live := groups[:0]
	decodeStart := formed
	for _, g := range groups {
		q, err := DecodeQuery(g.members[0].raw, co.params)
		decodeEnd := time.Now()
		stampMembers(g.members, trace.StageDecode, int64(decodeEnd.Sub(decodeStart)))
		decodeStart = decodeEnd
		if err != nil {
			co.met.failed.Add(int64(len(g.members)))
			g.fan(coalesceResult{err: fmt.Errorf("decoding query: %w", err)})
			continue
		}
		g.q = q
		live = append(live, g)
	}
	if len(live) == 0 {
		return
	}

	var streamed int64
	if len(live) == 1 {
		// One distinct query (lone arrival, or a fully duplicate window):
		// the batch path gains nothing, run it direct.
		g := live[0]
		arenaStart := time.Now()
		ir, err := co.store.Search(name, g.q)
		arenaNS := int64(time.Since(arenaStart))
		stampMembers(g.members, trace.StageArena, arenaNS)
		if err != nil {
			co.met.failed.Add(int64(len(g.members)))
			g.fan(coalesceResult{err: err})
			return
		}
		streamed = ir.Stats.ChunkStreams
		attributeArena(g.members, ir.Stats)
		candidates := ir.Candidates
		ir.Release()
		g.fan(coalesceResult{candidates: candidates})
	} else {
		queries := make([]*core.Query, len(live))
		for i, g := range live {
			queries[i] = g.q
		}
		bq := core.NewBatchQuery(queries...)
		arenaStart := time.Now()
		irs, err := co.store.SearchBatch(name, bq)
		arenaNS := int64(time.Since(arenaStart))
		if err != nil {
			// Batch-level failure (validation, missing database): isolate
			// it by retrying each group alone, so only the offending
			// members fail.
			co.met.fallbacks.Inc()
			for _, g := range live {
				soloStart := time.Now()
				ir, err := co.store.Search(name, g.q)
				stampMembers(g.members, trace.StageArena, int64(time.Since(soloStart)))
				if err != nil {
					co.met.failed.Add(int64(len(g.members)))
					g.fan(coalesceResult{err: err})
					continue
				}
				co.met.chunkStreams.Add(ir.Stats.ChunkStreams)
				attributeArena(g.members, ir.Stats)
				candidates := ir.Candidates
				ir.Release()
				g.fan(coalesceResult{candidates: candidates})
			}
			return
		}
		for i, g := range live {
			ir := irs[i]
			streamed += ir.Stats.ChunkStreams
			// The member stats are the per-query share the batch kernel
			// attributed; the shared arena-pass wall time is stamped whole
			// (every member rode the same pass).
			stampMembers(g.members, trace.StageArena, arenaNS)
			attributeArena(g.members, ir.Stats)
			candidates := ir.Candidates
			ir.Release()
			g.fan(coalesceResult{candidates: candidates})
		}
	}
	co.met.chunkStreams.Add(streamed)
	// Arena passes saved: each member alone would have streamed every
	// chunk once (the PR-5 single-pass invariant); the window shared
	// those streams across members — between groups via the batch
	// kernel's evaluation classes, within groups outright.
	if solo := int64(len(batch)) * int64(live[0].q.NumChunks); solo > streamed {
		co.met.streamsSaved.Add(solo - streamed)
	}
}

// reapIfEmpty deletes the queue from the map once it has no pending
// work, bounding coalescer memory to the set of actively queried names.
// Lock order is co.mu → q.mu everywhere this pairing is taken; enqueue
// holding q.mu never takes co.mu.
func (co *Coalescer) reapIfEmpty(q *dbQueue) {
	co.mu.Lock()
	q.mu.Lock()
	if len(q.pending) == 0 && !q.dead {
		q.dead = true
		delete(co.queues, q.name)
	}
	q.mu.Unlock()
	co.mu.Unlock()
}

// Close stops the executor pool (draining the ready list first) and
// fails every query still stranded in a queue with a shutdown error.
func (co *Coalescer) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.cond.Broadcast()
	co.mu.Unlock()
	co.wg.Wait()

	co.mu.Lock()
	queues := make([]*dbQueue, 0, len(co.queues))
	for _, q := range co.queues {
		queues = append(queues, q)
	}
	co.queues = make(map[string]*dbQueue)
	co.mu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		pending := q.pending
		q.pending = nil
		q.depth.Set(0)
		q.dead = true
		if q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
		q.mu.Unlock()
		for _, pq := range pending {
			pq.done <- coalesceResult{err: errShutdown}
		}
	}
}

// serverMetrics is the server's serving-metrics catalog: handles cached
// off the registry once, recorded lock-free on the hot paths. See
// DESIGN.md's serving section for the catalog semantics.
type serverMetrics struct {
	reg   *metrics.Registry
	start time.Time

	queries      *metrics.Counter   // single queries accepted (MsgQuery)
	batchMembers *metrics.Counter   // client-batched queries (MsgBatchQuery members)
	uploads      *metrics.Counter   // databases uploaded
	errorsTotal  *metrics.Counter   // requests answered with MsgError
	rejected     *metrics.Counter   // admission-control rejections (MsgOverloaded)
	failed       *metrics.Counter   // coalesced queries that returned an error
	batches      *metrics.Counter   // coalesced batches executed
	coalesced    *metrics.Counter   // queries that shared a batch with ≥1 other
	fallbacks    *metrics.Counter   // batches degraded to per-member retries
	chunkStreams *metrics.Counter   // arena chunk streams actually performed
	streamsSaved *metrics.Counter   // arena chunk streams avoided by coalescing
	decodesSaved *metrics.Counter   // query decodes avoided by payload dedup
	panics       *metrics.Counter   // handler/executor panics recovered
	truncated    *metrics.Counter   // connections torn mid-message
	occupancy    *metrics.Histogram // queries per coalesced batch
	queueWait    *metrics.Histogram // ns from enqueue to batch execution
	window       *metrics.Gauge     // last adaptive batching window, ns

	// Per-tenant serving telemetry (label key "db"; values bounded by the
	// store's MaxStoredDBs cap plus the shared "_other" child) and the
	// errors-by-type split (label key "type"; fixed catalog). Together
	// with tenant_latency_ns bound by the trace recorder these are the
	// per-tenant RED metrics: rate, errors, duration.
	tenantQueries   *metrics.CounterVec   // tenant_queries_total{db}
	tenantErrors    *metrics.CounterVec   // tenant_errors_total{db}
	tenantRejected  *metrics.CounterVec   // tenant_rejected_total{db}
	tenantOccupancy *metrics.HistogramVec // tenant_batch_occupancy{db}
	tenantDepth     *metrics.GaugeVec     // tenant_queue_depth{db}
	errorsByType    *metrics.CounterVec   // errors_by_type_total{type}
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	// Go runtime health gauges ride in the same registry, so every
	// MsgStats reply and /metrics scrape shows goroutines/heap/GC next
	// to the serving counters.
	metrics.RegisterRuntime(reg)
	return &serverMetrics{
		reg:          reg,
		start:        time.Now(),
		queries:      reg.Counter("queries_total"),
		batchMembers: reg.Counter("batch_queries_total"),
		uploads:      reg.Counter("uploads_total"),
		errorsTotal:  reg.Counter("errors_total"),
		rejected:     reg.Counter("queries_rejected_total"),
		failed:       reg.Counter("queries_failed_total"),
		batches:      reg.Counter("batches_total"),
		coalesced:    reg.Counter("coalesced_queries_total"),
		fallbacks:    reg.Counter("batch_fallbacks_total"),
		chunkStreams: reg.Counter("chunk_streams_total"),
		streamsSaved: reg.Counter("chunk_streams_saved_total"),
		decodesSaved: reg.Counter("query_decodes_saved_total"),
		panics:       reg.Counter("panics_recovered_total"),
		truncated:    reg.Counter("conns_truncated_total"),
		occupancy:    reg.Histogram("batch_occupancy"),
		queueWait:    reg.Histogram("queue_wait_ns"),
		window:       reg.Gauge("coalesce_window_ns"),

		tenantQueries:   reg.CounterVec("tenant_queries_total", "db"),
		tenantErrors:    reg.CounterVec("tenant_errors_total", "db"),
		tenantRejected:  reg.CounterVec("tenant_rejected_total", "db"),
		tenantOccupancy: reg.HistogramVec("tenant_batch_occupancy", "db"),
		tenantDepth:     reg.GaugeVec("tenant_queue_depth", "db"),
		errorsByType:    reg.CounterVec("errors_by_type_total", "type"),
	}
}

// snapshot returns the flattened metrics, stamping uptime so clients
// can derive rates (QPS = queries_total / uptime) from one reply.
func (m *serverMetrics) snapshot() []metrics.KV {
	m.reg.Gauge("uptime_ns").Set(int64(time.Since(m.start)))
	return m.reg.Snapshot()
}
