// Package proto implements a length-prefixed binary wire protocol for the
// CIPHERMATCH client-server deployment (§2.2): the client uploads its
// packed, encrypted database once, then each search is a single
// request/response round — the low-communication-complexity property HE
// affords over garbled-circuit or MPC approaches.
//
// Wire format: every message is 1 type byte + 4-byte little-endian payload
// length + payload. Ciphertext coefficients travel as ceil(log2 q / 8)-byte
// little-endian integers, so wire sizes match the paper's footprint
// accounting.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/ring"
)

// Message types. MsgUploadDB and MsgQuery address a named database, so
// one server process serves many tenants; MsgListDBs/MsgDropDB manage
// the namespace.
const (
	MsgUploadDB    byte = 1 // name + engine spec + database -> MsgAck
	MsgQuery       byte = 2 // name + query -> MsgResult
	MsgResult      byte = 3
	MsgError       byte = 4
	MsgAck         byte = 5
	MsgListDBs     byte = 6 // empty -> MsgDBList
	MsgDBList      byte = 7
	MsgDropDB      byte = 8 // name -> MsgAck
	MsgBatchQuery  byte = 9 // name + batch of queries -> MsgBatchResult
	MsgBatchResult byte = 10
	MsgStats       byte = 11 // empty -> MsgStatsResult (serving-metrics snapshot)
	MsgStatsResult byte = 12
	// MsgOverloaded is the typed admission-control rejection: the
	// addressed database's coalescing queue is at its depth cap (or the
	// server is shutting down), so the query was refused *before* any
	// work — retry with backoff. Distinct from MsgError so clients can
	// tell transient overload from a request that will never succeed.
	MsgOverloaded byte = 13
	// MsgServerError reports an internal server fault — a recovered
	// handler panic, or storage corruption detected mid-request. The
	// request did not produce a (possibly wrong) answer and the fault is
	// on the server side, not in the request: clients surface it as
	// ErrServerFault. The connection stays usable.
	MsgServerError byte = 14
	// MsgTraceDump requests completed request traces from the server's
	// flight-recorder rings (max count + slow-only selector) ->
	// MsgTraceDumpResult. Old servers answer with MsgError (unknown
	// message type), which clients surface as "tracing unsupported".
	MsgTraceDump       byte = 15
	MsgTraceDumpResult byte = 16
)

// ErrConnTruncated is the typed decode-path error for a connection or
// payload that ended mid-message: the peer vanished (or a fault dropped
// the connection) partway through a frame, or a frame's payload is
// shorter than its own structure promises. Transient from a client's
// point of view — queries are read-only, so reconnect-and-retry is
// always safe.
var ErrConnTruncated = errors.New("proto: connection truncated mid-message")

// ErrServerFault is the typed client-side form of MsgServerError: the
// server hit an internal fault (recovered panic, storage corruption)
// answering the request. Safe to retry read-only requests.
var ErrServerFault = errors.New("proto: server internal fault")

// errShortPayload is the buffer decoders' truncation error: a payload
// shorter than its declared structure. errors.Is(err, ErrConnTruncated).
var errShortPayload = fmt.Errorf("%w: payload short read", ErrConnTruncated)

// MaxNameLen bounds database names on the wire.
const MaxNameLen = 255

// Bounds on what a remote upload may request: a forged spec must not
// spawn unbounded goroutines or simulated drives server-side, and the
// store must not grow without limit. MaxUploadWorkers bounds the
// *total* worker count (workers × shards, with 0 workers counted as
// GOMAXPROCS); MaxUploadShards bounds per-database engines (each SSD
// shard is a full simulated drive); MaxStoredDBs bounds the namespace.
const (
	MaxUploadWorkers = 1024
	MaxUploadShards  = 64
	MaxStoredDBs     = 64
)

// MaxPayload bounds a single message (1 GiB) to keep a malformed peer from
// forcing huge allocations.
const MaxPayload = 1 << 30

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("proto: payload of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = msgType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message. A clean close between messages
// returns io.EOF untouched (the peer simply hung up); any end-of-stream
// or short read *inside* a frame — partial header, partial payload —
// wraps ErrConnTruncated, so callers can type-switch a torn connection
// without matching on io error identities.
func ReadMessage(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [5]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n > 0 || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: header after %d bytes: %v", ErrConnTruncated, n, err)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("proto: payload of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload after %d of %d bytes: %v", ErrConnTruncated, m, n, err)
	}
	return hdr[0], payload, nil
}

// buffer is a simple append/consume byte cursor.
type buffer struct {
	data []byte
	off  int
}

func (b *buffer) putUint32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.data = append(b.data, tmp[:]...)
}

func (b *buffer) putInt(v int) { b.putUint32(uint32(v)) }

func (b *buffer) putUint64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.data = append(b.data, tmp[:]...)
}

func (b *buffer) uint64() (uint64, error) {
	if b.off+8 > len(b.data) {
		return 0, errShortPayload
	}
	v := binary.LittleEndian.Uint64(b.data[b.off:])
	b.off += 8
	return v, nil
}

func (b *buffer) uint32() (uint32, error) {
	if b.off+4 > len(b.data) {
		return 0, errShortPayload
	}
	v := binary.LittleEndian.Uint32(b.data[b.off:])
	b.off += 4
	return v, nil
}

func (b *buffer) int() (int, error) {
	v, err := b.uint32()
	return int(v), err
}

func (b *buffer) putString(s string) {
	b.putInt(len(s))
	b.data = append(b.data, s...)
}

func (b *buffer) string() (string, error) {
	n, err := b.count(1)
	if err != nil {
		return "", err
	}
	if b.off+n > len(b.data) {
		return "", errShortPayload
	}
	s := string(b.data[b.off : b.off+n])
	b.off += n
	return s, nil
}

// count reads an element count and validates it against the remaining
// payload (each element encodes at least minElemBytes), so forged counts
// cannot force huge allocations. The bound is compared via division:
// n*minElemBytes can overflow int on 32-bit platforms, which would let a
// forged count slip past a multiplication-based check.
func (b *buffer) count(minElemBytes int) (int, error) {
	n, err := b.int()
	if err != nil {
		return 0, err
	}
	remaining := len(b.data) - b.off
	if n < 0 || n > remaining/minElemBytes {
		return 0, fmt.Errorf("proto: count %d exceeds remaining payload %d", n, remaining)
	}
	return n, nil
}

// putPoly appends a polynomial as qBytes-wide little-endian coefficients.
func (b *buffer) putPoly(p ring.Poly, qBytes int) {
	b.putInt(len(p))
	var tmp [8]byte
	for _, c := range p {
		binary.LittleEndian.PutUint64(tmp[:], c)
		b.data = append(b.data, tmp[:qBytes]...)
	}
}

// poly decodes a polynomial and enforces that it has exactly degree
// coefficients: every polynomial on this wire (chunk and pattern
// ciphertext components, match tokens) is a ring element of the
// session's parameter set, and the search kernels size their loops and
// bitset writes from these lengths, so a peer must not be able to
// smuggle in oversized polynomials.
func (b *buffer) poly(qBytes, degree int) (ring.Poly, error) {
	out := make(ring.Poly, degree)
	if err := b.polyInto(out, qBytes); err != nil {
		return nil, err
	}
	return out, nil
}

// polyInto decodes a polynomial into dst, whose length fixes the
// expected coefficient count.
func (b *buffer) polyInto(dst ring.Poly, qBytes int) error {
	n, err := b.count(qBytes)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("proto: polynomial has %d coefficients, ring degree is %d", n, len(dst))
	}
	need := n * qBytes
	if b.off+need > len(b.data) {
		return errShortPayload
	}
	var tmp [8]byte
	for i := 0; i < n; i++ {
		clear(tmp[:])
		copy(tmp[:qBytes], b.data[b.off:b.off+qBytes])
		dst[i] = binary.LittleEndian.Uint64(tmp[:])
		b.off += qBytes
	}
	return nil
}

func (b *buffer) putCiphertext(ct *bfv.Ciphertext, qBytes int) {
	b.putInt(len(ct.C))
	for _, p := range ct.C {
		b.putPoly(p, qBytes)
	}
}

func (b *buffer) ciphertext(qBytes, degree int) (*bfv.Ciphertext, error) {
	n, err := b.int()
	if err != nil {
		return nil, err
	}
	if n < 1 || n > 3 {
		return nil, fmt.Errorf("proto: ciphertext with %d components", n)
	}
	ct := &bfv.Ciphertext{C: make([]ring.Poly, n)}
	for i := range ct.C {
		if ct.C[i], err = b.poly(qBytes, degree); err != nil {
			return nil, err
		}
	}
	return ct, nil
}

// EncodeDB serialises an encrypted database.
func EncodeDB(db *core.EncryptedDB, p bfv.Params) []byte {
	var b buffer
	b.putInt(db.BitLen)
	b.putInt(db.NumSegments)
	b.putInt(len(db.Chunks))
	qb := p.QBytes()
	for _, ct := range db.Chunks {
		b.putCiphertext(ct, qb)
	}
	return b.data
}

// DecodeDB is the inverse of EncodeDB. Chunk coefficients decode
// directly into the contiguous search arena (the chunk count precedes
// the chunks), so an upload never holds loose per-chunk polynomials
// and the arena at the same time — peak memory is one copy of the
// database. Database chunks must be fresh 2-component ciphertexts,
// which is all EncodeDB ever produces.
func DecodeDB(data []byte, p bfv.Params) (*core.EncryptedDB, error) {
	b := buffer{data: data}
	bitLen, err := b.int()
	if err != nil {
		return nil, err
	}
	numSegments, err := b.int()
	if err != nil {
		return nil, err
	}
	qb := p.QBytes()
	// NewCompactDB allocates the full 2·n·N·qb arena up front, so the
	// chunk count must be bounded by what the payload can actually
	// carry: each chunk encodes a component-count word plus two
	// components of a 4-byte length and N·qb coefficient bytes. The old
	// bound of 8 bytes/chunk let a short hostile payload demand a
	// multi-terabyte arena (count×N amplification); found while
	// annotating the decoders for cmvet's wiresize analyzer.
	minChunkBytes := 4 + 2*(4+p.N*qb)
	n, err := b.count(minChunkBytes)
	if err != nil {
		return nil, err
	}
	db := core.NewCompactDB(p.N, n)
	db.BitLen = bitLen
	db.NumSegments = numSegments
	for i := range db.Chunks {
		ncomp, err := b.int()
		if err != nil {
			return nil, err
		}
		if ncomp != 2 {
			return nil, fmt.Errorf("proto: database chunk %d has %d components, want 2", i, ncomp)
		}
		for c := 0; c < 2; c++ {
			if err := b.polyInto(db.Chunks[i].C[c], qb); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// sortedKeys returns a map's integer keys in ascending order, so map
// iteration order never leaks into wire bytes.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// factoredSentinel marks the versioned factored encodings of MsgQuery
// and MsgBatchQuery. It occupies the slot a legacy decoder reads as
// YBits (query) or as the pattern-pool count (batch); both reject it —
// YBits fails validation and the count check refuses ~2^32 — so a
// pre-factoring server errors out cleanly instead of misparsing, while
// legacy encodings (whose first word can never be the sentinel) still
// decode everywhere.
const factoredSentinel = ^uint32(0)

// factoredWireVersion is the current version word of the factored
// encodings; unknown versions are rejected, so the format can evolve.
const factoredWireVersion = 1

// EncodeQuery serialises a query. Map-backed sections are emitted in
// sorted key order, so the same query always encodes to the same bytes
// — the property batch-level deduplication and any caching keyed on
// encodings rely on.
//
// Factored queries use the versioned factored encoding: metadata, the
// DBTok plane and the per-phase RHS polynomials. Pattern ciphertexts
// are NOT shipped — seeded-match index generation runs entirely on
// DBTok/RHS — which is where the ≥2× query-size reduction over the
// legacy expanded-token encoding comes from (legacy ships patterns plus
// residues×chunks token polynomials; factored ships chunks+phases
// polynomials total). Legacy queries keep the original encoding, byte
// for byte.
func EncodeQuery(q *core.Query, p bfv.Params) []byte {
	qb := p.QBytes()
	if q.Factored() {
		var b buffer
		b.putUint32(factoredSentinel)
		b.putInt(factoredWireVersion)
		b.putInt(q.YBits)
		b.putInt(q.AlignBits)
		b.putInt(q.DBBitLen)
		b.putInt(q.NumChunks)
		b.putInt(len(q.Residues))
		for _, r := range q.Residues {
			b.putInt(r)
		}
		b.putInt(len(q.DBTok))
		for _, tok := range q.DBTok {
			b.putPoly(tok, qb)
		}
		b.putInt(len(q.RHS))
		for _, psi := range sortedKeys(q.RHS) {
			b.putInt(psi)
			b.putPoly(q.RHS[psi], qb)
		}
		return b.data
	}
	var b buffer
	b.putInt(q.YBits)
	b.putInt(q.AlignBits)
	b.putInt(q.DBBitLen)
	b.putInt(q.NumChunks)
	b.putInt(len(q.Residues))
	for _, r := range q.Residues {
		b.putInt(r)
	}
	b.putInt(len(q.Patterns))
	for _, psi := range sortedKeys(q.Patterns) {
		b.putInt(psi)
		b.putCiphertext(q.Patterns[psi], qb)
	}
	b.putInt(len(q.Tokens))
	for _, res := range sortedKeys(q.Tokens) {
		toks := q.Tokens[res]
		b.putInt(res)
		b.putInt(len(toks))
		for _, tok := range toks {
			b.putPoly(tok, qb)
		}
	}
	return b.data
}

// decodeQueryHeader reads the metadata fields (after YBits) shared by
// every query encoding — single and batch-member, legacy and factored.
func decodeQueryHeader(b *buffer, q *core.Query) error {
	var err error
	if q.AlignBits, err = b.int(); err != nil {
		return err
	}
	if q.DBBitLen, err = b.int(); err != nil {
		return err
	}
	if q.NumChunks, err = b.int(); err != nil {
		return err
	}
	nres, err := b.count(4)
	if err != nil {
		return err
	}
	q.Residues = make([]int, nres)
	for i := range q.Residues {
		if q.Residues[i], err = b.int(); err != nil {
			return err
		}
	}
	return nil
}

// decodeInlineTokens reads a legacy expanded-token section (residue,
// poly-count, polynomials), shared by the single-query decoder and both
// batch layouts. Returns nil when the section is empty.
func decodeInlineTokens(b *buffer, qb, degree int) (map[int][]ring.Poly, error) {
	ntok, err := b.count(8) // residue word + token-count word
	if err != nil {
		return nil, err
	}
	if ntok == 0 {
		return nil, nil
	}
	tokens := make(map[int][]ring.Poly, ntok)
	for i := 0; i < ntok; i++ {
		res, err := b.int()
		if err != nil {
			return nil, err
		}
		cnt, err := b.count(4)
		if err != nil {
			return nil, err
		}
		toks := make([]ring.Poly, cnt)
		for j := range toks {
			if toks[j], err = b.poly(qb, degree); err != nil {
				return nil, err
			}
		}
		tokens[res] = toks
	}
	return tokens, nil
}

// decodePatternRefs reads a (psi, pool-index) pattern reference section
// against a decoded ciphertext pool — the batch layouts' shared member
// pattern decode, with the pool bound enforced.
func decodePatternRefs(b *buffer, pool []*bfv.Ciphertext, member int) (map[int]*bfv.Ciphertext, error) {
	npat, err := b.count(8) // psi word + pool-index word
	if err != nil {
		return nil, err
	}
	patterns := make(map[int]*bfv.Ciphertext, npat)
	for i := 0; i < npat; i++ {
		psi, err := b.int()
		if err != nil {
			return nil, err
		}
		idx, err := b.int()
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(pool) {
			return nil, fmt.Errorf("proto: batch member %d references pattern pool entry %d of %d", member, idx, len(pool))
		}
		patterns[psi] = pool[idx]
	}
	return patterns, nil
}

// DecodeQuery is the inverse of EncodeQuery: it accepts both the legacy
// expanded-token encoding (old clients keep working unchanged) and the
// versioned factored encoding.
func DecodeQuery(data []byte, p bfv.Params) (*core.Query, error) {
	b := buffer{data: data}
	first, err := b.uint32()
	if err != nil {
		return nil, err
	}
	if first == factoredSentinel {
		return decodeFactoredQuery(&b, p)
	}
	q := &core.Query{Patterns: map[int]*bfv.Ciphertext{}, YBits: int(first)}
	if err := decodeQueryHeader(&b, q); err != nil {
		return nil, err
	}
	qb := p.QBytes()
	npat, err := b.count(8) // psi word + ciphertext header
	if err != nil {
		return nil, err
	}
	for i := 0; i < npat; i++ {
		psi, err := b.int()
		if err != nil {
			return nil, err
		}
		if q.Patterns[psi], err = b.ciphertext(qb, p.N); err != nil {
			return nil, err
		}
	}
	if q.Tokens, err = decodeInlineTokens(&b, qb, p.N); err != nil {
		return nil, err
	}
	return q, nil
}

// decodeFactoredQuery parses the versioned factored encoding after the
// sentinel word. The DBTok plane must cover exactly NumChunks chunks —
// the kernels index it per chunk — and every polynomial is held to the
// ring degree, so a hostile peer cannot smuggle mis-shaped comparands
// into the fused kernel.
func decodeFactoredQuery(b *buffer, p bfv.Params) (*core.Query, error) {
	version, err := b.int()
	if err != nil {
		return nil, err
	}
	if version != factoredWireVersion {
		return nil, fmt.Errorf("proto: unsupported factored query version %d", version)
	}
	q := &core.Query{}
	if q.YBits, err = b.int(); err != nil {
		return nil, err
	}
	if err := decodeQueryHeader(b, q); err != nil {
		return nil, err
	}
	qb := p.QBytes()
	ntok, err := b.count(8) // poly length word + at least one coefficient
	if err != nil {
		return nil, err
	}
	if ntok != q.NumChunks {
		return nil, fmt.Errorf("proto: factored query DBTok plane has %d chunks, header says %d", ntok, q.NumChunks)
	}
	q.DBTok = make([]ring.Poly, ntok)
	for j := range q.DBTok {
		if q.DBTok[j], err = b.poly(qb, p.N); err != nil {
			return nil, err
		}
	}
	nrhs, err := b.count(8) // psi word + poly length word
	if err != nil {
		return nil, err
	}
	q.RHS = make(map[int]ring.Poly, nrhs)
	for i := 0; i < nrhs; i++ {
		psi, err := b.int()
		if err != nil {
			return nil, err
		}
		if q.RHS[psi], err = b.poly(qb, p.N); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// EncodeUploadDB frames a named database upload: the target name, the
// requested engine spec (empty kind = server default), then the
// database itself.
func EncodeUploadDB(name string, spec core.EngineSpec, db *core.EncryptedDB, p bfv.Params) []byte {
	var b buffer
	b.putString(name)
	b.putString(spec.Kind)
	b.putInt(spec.Workers)
	b.putInt(spec.Shards)
	b.data = append(b.data, EncodeDB(db, p)...)
	return b.data
}

// DecodeUploadDB is the inverse of EncodeUploadDB.
func DecodeUploadDB(data []byte, p bfv.Params) (string, core.EngineSpec, *core.EncryptedDB, error) {
	b := buffer{data: data}
	var spec core.EngineSpec
	name, err := b.string()
	if err != nil {
		return "", spec, nil, err
	}
	if spec.Kind, err = b.string(); err != nil {
		return "", spec, nil, err
	}
	if spec.Workers, err = b.int(); err != nil {
		return "", spec, nil, err
	}
	if spec.Shards, err = b.int(); err != nil {
		return "", spec, nil, err
	}
	db, err := DecodeDB(data[b.off:], p)
	return name, spec, db, err
}

// EncodeNamedQuery frames a query addressed to a named database.
func EncodeNamedQuery(name string, q *core.Query, p bfv.Params) []byte {
	var b buffer
	b.putString(name)
	b.data = append(b.data, EncodeQuery(q, p)...)
	return b.data
}

// SplitNamedQuery peels the database name off a MsgQuery payload
// without decoding the query itself. The coalescer routes on the name
// and deduplicates members on the raw query bytes, deferring the
// expensive decode (one polynomial per chunk in the factored form) to
// batch execution, where identical payloads decode once per window.
func SplitNamedQuery(data []byte) (string, []byte, error) {
	b := buffer{data: data}
	name, err := b.string()
	if err != nil {
		return "", nil, err
	}
	return name, data[b.off:], nil
}

// DecodeNamedQuery is the inverse of EncodeNamedQuery.
func DecodeNamedQuery(data []byte, p bfv.Params) (string, *core.Query, error) {
	b := buffer{data: data}
	name, err := b.string()
	if err != nil {
		return "", nil, err
	}
	q, err := DecodeQuery(data[b.off:], p)
	return name, q, err
}

// EncodeName frames a bare database name (MsgDropDB).
func EncodeName(name string) []byte {
	var b buffer
	b.putString(name)
	return b.data
}

// DecodeName is the inverse of EncodeName.
func DecodeName(data []byte) (string, error) {
	b := buffer{data: data}
	return b.string()
}

// Residency states reported in DBInfo.State. A durable store serves
// cold databases transparently (the first search reloads the segment),
// so the listing distinguishes what is costing memory right now.
const (
	StateResident    = "resident"
	StateCold        = "cold"
	StateRetired     = "retired"
	StateQuarantined = "quarantined" // corrupt: fenced off, serves a typed error
)

// DBInfo describes one hosted database (MsgDBList). Chunks and BitLen
// come from registration metadata — persisted in the segment header and
// manifest — so they are valid for cold (evicted or not-yet-loaded)
// databases too.
type DBInfo struct {
	Name     string
	Engine   string // engine description ("pool(8 workers)") or, cold, the spec ("pool:8")
	State    string // StateResident, StateCold or StateRetired
	Chunks   int
	BitLen   int
	Searches int
}

// EncodeDBList serialises the database listing.
func EncodeDBList(infos []DBInfo) []byte {
	var b buffer
	b.putInt(len(infos))
	for _, in := range infos {
		b.putString(in.Name)
		b.putString(in.Engine)
		b.putString(in.State)
		b.putInt(in.Chunks)
		b.putInt(in.BitLen)
		b.putInt(in.Searches)
	}
	return b.data
}

// DecodeDBList is the inverse of EncodeDBList.
func DecodeDBList(data []byte) ([]DBInfo, error) {
	b := buffer{data: data}
	n, err := b.count(24) // six 4-byte words minimum per entry
	if err != nil {
		return nil, err
	}
	infos := make([]DBInfo, n)
	for i := range infos {
		if infos[i].Name, err = b.string(); err != nil {
			return nil, err
		}
		if infos[i].Engine, err = b.string(); err != nil {
			return nil, err
		}
		if infos[i].State, err = b.string(); err != nil {
			return nil, err
		}
		if infos[i].Chunks, err = b.int(); err != nil {
			return nil, err
		}
		if infos[i].BitLen, err = b.int(); err != nil {
			return nil, err
		}
		if infos[i].Searches, err = b.int(); err != nil {
			return nil, err
		}
	}
	return infos, nil
}

// CandidateWireBytes is the wire width of one candidate offset (4-byte
// little-endian). Defined in core so that engines accounting
// host-transfer bytes (the SSD controller) agree with the encoding
// without importing proto.
const CandidateWireBytes = core.CandidateWireBytes

// putCandidates appends a candidate-offset list: a count plus
// CandidateWireBytes-wide offsets. Offsets the encoding cannot
// represent are rejected rather than silently truncated — on databases
// past 2^32 bits a truncated offset would point at the wrong data.
func (b *buffer) putCandidates(candidates []int) error {
	b.putInt(len(candidates))
	for _, c := range candidates {
		if c < 0 || c > math.MaxUint32 {
			return fmt.Errorf("proto: candidate offset %d does not fit the %d-byte wire encoding", c, CandidateWireBytes)
		}
		b.putUint32(uint32(c))
	}
	return nil
}

// candidates is the inverse of putCandidates. Offsets a 32-bit int
// cannot hold are rejected rather than wrapped negative, mirroring the
// encode-side bound.
func (b *buffer) candidates() ([]int, error) {
	n, err := b.count(CandidateWireBytes)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		v, err := b.uint32()
		if err != nil {
			return nil, err
		}
		if int(v) < 0 {
			return nil, fmt.Errorf("proto: candidate offset %d overflows int on this platform", v)
		}
		out[i] = int(v)
	}
	return out, nil
}

// EncodeStats serialises a serving-metrics snapshot (MsgStatsResult): a
// flat list of (name, int64 value) samples, the Registry.Snapshot
// flattening. Names are what keys the catalog; values are 64-bit so
// counters never wrap on the wire.
func EncodeStats(kvs []metrics.KV) []byte {
	var b buffer
	b.putInt(len(kvs))
	for _, kv := range kvs {
		b.putString(kv.Name)
		b.putUint64(uint64(kv.Value))
	}
	return b.data
}

// DecodeStats is the inverse of EncodeStats.
func DecodeStats(data []byte) ([]metrics.KV, error) {
	b := buffer{data: data}
	n, err := b.count(12) // name length word + 8 value bytes
	if err != nil {
		return nil, err
	}
	kvs := make([]metrics.KV, n)
	for i := range kvs {
		if kvs[i].Name, err = b.string(); err != nil {
			return nil, err
		}
		v, err := b.uint64()
		if err != nil {
			return nil, err
		}
		kvs[i].Value = int64(v)
	}
	return kvs, nil
}

// EncodeResult serialises candidate offsets. It fails on offsets above
// math.MaxUint32 instead of corrupting them.
func EncodeResult(candidates []int) ([]byte, error) {
	var b buffer
	if err := b.putCandidates(candidates); err != nil {
		return nil, err
	}
	return b.data, nil
}

// DecodeResult is the inverse of EncodeResult.
func DecodeResult(data []byte) ([]int, error) {
	b := buffer{data: data}
	return b.candidates()
}
