package proto

import (
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// TestDecodeGarbageNeverPanics feeds random byte soup to every decoder: a
// malicious peer must only ever cause an error, never a panic or a huge
// allocation.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	p := bfv.ParamsToy()
	src := rng.NewSourceFromString("garbage")
	for trial := 0; trial < 200; trial++ {
		n := src.Intn(256)
		buf := make([]byte, n)
		src.Bytes(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on %d garbage bytes: %v", n, r)
				}
			}()
			_, _ = DecodeDB(buf, p)
			_, _ = DecodeQuery(buf, p)
			_, _ = DecodeResult(buf)
			_, _, _, _ = DecodeUploadDB(buf, p)
			_, _, _ = DecodeNamedQuery(buf, p)
			_, _, _ = DecodeNamedBatchQuery(buf, p)
			_, _ = DecodeBatchResult(buf)
			_, _ = DecodeDBList(buf)
			_, _ = DecodeName(buf)
		}()
	}
}

func TestPolyLengthLimit(t *testing.T) {
	// A forged polynomial length must be rejected before allocation.
	var b buffer
	b.putInt(1 << 24) // absurd coefficient count
	rb := buffer{data: b.data}
	if _, err := rb.poly(4, 64); err == nil {
		t.Fatal("oversized polynomial length accepted")
	}
	// A wrong-but-plausible length must be rejected too: the kernels
	// size loops and bitset writes from polynomial lengths.
	var b2 buffer
	b2.putPoly(make(ring.Poly, 128), 4)
	rb2 := buffer{data: b2.data}
	if _, err := rb2.poly(4, 64); err == nil {
		t.Fatal("degree-mismatched polynomial accepted")
	}
}
