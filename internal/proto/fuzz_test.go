package proto

import (
	"bytes"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/rng"
)

// The fuzz targets hold the wire layer to two properties a hostile peer
// cannot break: decoding arbitrary bytes never panics (errors only), and
// any payload that decodes successfully re-encodes to a canonical form
// that round-trips — encode(decode(x)) is a fixed point of the codec.
// Seeds are valid encodings plus truncations and bit flips of them, so
// the corpus starts at the interesting boundaries.

// fuzzSeedQuery builds a representative factored query under the toy
// parameters.
func fuzzSeedQuery(tb testing.TB, p bfv.Params) *core.Query {
	tb.Helper()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("fuzz-seed"))
	if err != nil {
		tb.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

// fuzzSeedLegacyQuery builds the same query in the legacy expanded-token
// representation, so the fuzzers cover both wire formats.
func fuzzSeedLegacyQuery(tb testing.TB, p bfv.Params) *core.Query {
	tb.Helper()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("fuzz-seed"))
	if err != nil {
		tb.Fatal(err)
	}
	q, err := client.PrepareLegacyQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

// fuzzSeedDB builds a small encrypted database under the toy parameters.
func fuzzSeedDB(tb testing.TB, p bfv.Params) *core.EncryptedDB {
	tb.Helper()
	client, err := core.NewClient(core.Config{Params: p}, rng.NewSourceFromString("fuzz-seed-db"))
	if err != nil {
		tb.Fatal(err)
	}
	data := make([]byte, 160)
	rng.NewSourceFromString("fuzz-db-data").Bytes(data)
	db, err := client.EncryptDatabase(data, 1280)
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// addWireSeeds registers enc plus truncated and corrupted variants.
func addWireSeeds(f *testing.F, enc []byte) {
	f.Add(enc)
	f.Add([]byte{})
	for _, cut := range []int{1, 4, len(enc) / 2, len(enc) - 1} {
		if cut >= 0 && cut < len(enc) {
			f.Add(enc[:cut])
		}
	}
	if len(enc) > 8 {
		flipped := bytes.Clone(enc)
		flipped[3] ^= 0xFF // corrupt a count word
		f.Add(flipped)
		flipped2 := bytes.Clone(enc)
		flipped2[len(enc)/2] ^= 0x01
		f.Add(flipped2)
	}
}

func FuzzDecodeQuery(f *testing.F) {
	p := bfv.ParamsToy()
	addWireSeeds(f, EncodeQuery(fuzzSeedQuery(f, p), p))
	addWireSeeds(f, EncodeQuery(fuzzSeedLegacyQuery(f, p), p))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuery(data, p)
		if err != nil {
			return
		}
		canonical := EncodeQuery(q, p)
		back, err := DecodeQuery(canonical, p)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if !bytes.Equal(EncodeQuery(back, p), canonical) {
			t.Fatal("encode->decode->encode is not a fixed point")
		}
	})
}

func FuzzDecodeUploadDB(f *testing.F) {
	p := bfv.ParamsToy()
	addWireSeeds(f, EncodeUploadDB("corpus", core.EngineSpec{Kind: core.EnginePool, Workers: 2}, fuzzSeedDB(f, p), p))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, spec, db, err := DecodeUploadDB(data, p)
		if err != nil {
			return
		}
		canonical := EncodeUploadDB(name, spec, db, p)
		name2, spec2, db2, err := DecodeUploadDB(canonical, p)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if name2 != name || spec2 != spec {
			t.Fatalf("metadata drifted: %q/%+v -> %q/%+v", name, spec, name2, spec2)
		}
		if db2.BitLen != db.BitLen || db2.NumSegments != db.NumSegments || len(db2.Chunks) != len(db.Chunks) {
			t.Fatal("database shape drifted through the round trip")
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	enc, err := EncodeResult([]int{0, 16, 1024, 99999})
	if err != nil {
		f.Fatal(err)
	}
	addWireSeeds(f, enc)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeResult(data)
		if err != nil {
			return
		}
		canonical, err := EncodeResult(out)
		if err != nil {
			t.Fatalf("decoded offsets failed to re-encode: %v", err)
		}
		back, err := DecodeResult(canonical)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if len(back) != len(out) {
			t.Fatalf("length drifted: %d -> %d", len(out), len(back))
		}
		for i := range out {
			if back[i] != out[i] {
				t.Fatalf("offset %d drifted: %d -> %d", i, out[i], back[i])
			}
		}
	})
}

func FuzzDecodeBatchQuery(f *testing.F) {
	p := bfv.ParamsToy()
	q := fuzzSeedQuery(f, p)
	lq := fuzzSeedLegacyQuery(f, p)
	bq := &core.BatchQuery{Queries: []*core.Query{q, q}}
	addWireSeeds(f, EncodeNamedBatchQuery("corpus", bq, p))
	// A mixed batch (factored + legacy member) and an all-legacy batch,
	// so both layouts and the member token kinds are in the corpus.
	addWireSeeds(f, EncodeNamedBatchQuery("corpus", &core.BatchQuery{Queries: []*core.Query{q, lq}}, p))
	addWireSeeds(f, EncodeNamedBatchQuery("corpus", &core.BatchQuery{Queries: []*core.Query{lq, lq}}, p))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, got, err := DecodeNamedBatchQuery(data, p)
		if err != nil {
			return
		}
		canonical := EncodeNamedBatchQuery(name, got, p)
		name2, back, err := DecodeNamedBatchQuery(canonical, p)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if name2 != name || len(back.Queries) != len(got.Queries) {
			t.Fatal("batch shape drifted through the round trip")
		}
	})
}
