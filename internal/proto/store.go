package proto

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
)

// Store is the server's multi-tenant database registry: named encrypted
// databases, each with its own execution engine and its own RWMutex, so
// searches on different databases — and concurrent searches on the same
// database — proceed in parallel. The store-level lock only guards the
// name table; it is never held across a search.
type Store struct {
	params      bfv.Params
	defaultSpec core.EngineSpec

	mu  sync.RWMutex
	dbs map[string]*hostedDB
}

// hostedDB is one tenant database. Searches hold mu.RLock; replacement
// and removal take mu.Lock so an engine is only torn down quiescent.
type hostedDB struct {
	name     string
	spec     core.EngineSpec
	mu       sync.RWMutex
	db       *core.EncryptedDB
	engine   core.Engine
	searches atomic.Int64
}

// NewStore creates an empty store. Uploads that do not name an engine
// kind get defaultSpec (zero value = serial).
func NewStore(params bfv.Params, defaultSpec core.EngineSpec) *Store {
	return &Store{params: params, defaultSpec: defaultSpec, dbs: make(map[string]*hostedDB)}
}

// Upload installs (or replaces) the named database, building its engine
// from spec; an empty spec kind selects the store default. Replacement
// waits for in-flight searches on the old engine before closing it.
func (st *Store) Upload(name string, spec core.EngineSpec, edb *core.EncryptedDB) error {
	if name == "" {
		return fmt.Errorf("proto: database name must not be empty")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("proto: database name exceeds %d bytes", MaxNameLen)
	}
	// Bound wire-supplied resources: the CLI path validates specs via
	// engine.Parse, but a remote peer writes the spec fields directly and
	// must not be able to request unbounded goroutines or shards. The
	// worker bound applies to the product workers × shards (a pool per
	// shard), counting the GOMAXPROCS default for unspecified workers.
	if spec.Shards < 0 || spec.Shards > MaxUploadShards {
		return fmt.Errorf("proto: shard count %d out of range [0, %d]", spec.Shards, MaxUploadShards)
	}
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	if spec.Workers < 0 || workers*shards > MaxUploadWorkers {
		return fmt.Errorf("proto: %d workers x %d shards exceeds the server limit of %d total workers",
			workers, shards, MaxUploadWorkers)
	}
	if spec.Kind == "" {
		workers, shards := spec.Workers, spec.Shards
		spec = st.defaultSpec
		if workers > 0 {
			spec.Workers = workers
		}
		if shards > 0 {
			spec.Shards = shards
		}
	}
	eng, err := engine.Build(st.params, edb, spec)
	if err != nil {
		return fmt.Errorf("proto: building %q engine for %q: %w", spec, name, err)
	}
	entry := &hostedDB{name: name, spec: spec, db: edb, engine: eng}
	st.mu.Lock()
	old := st.dbs[name]
	if old == nil && len(st.dbs) >= MaxStoredDBs {
		st.mu.Unlock()
		entry.retire()
		return fmt.Errorf("proto: store holds %d databases (limit %d); drop one first", len(st.dbs), MaxStoredDBs)
	}
	st.dbs[name] = entry
	st.mu.Unlock()
	if old != nil {
		old.retire()
	}
	return nil
}

// retire waits for in-flight searches and closes the engine if it holds
// resources (worker pools).
func (d *hostedDB) retire() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.engine.(io.Closer); ok {
		_ = c.Close()
	}
	d.engine = nil
}

func (st *Store) lookup(name string) (*hostedDB, error) {
	st.mu.RLock()
	d := st.dbs[name]
	st.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("proto: no database named %q", name)
	}
	return d, nil
}

// Search runs one query against the named database under its read lock:
// any number of searches share a database (and the whole store) at once.
func (st *Store) Search(name string, q *core.Query) (*core.IndexResult, error) {
	d, err := st.lookup(name)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.engine == nil {
		return nil, fmt.Errorf("proto: database %q was dropped", name)
	}
	d.searches.Add(1)
	return d.engine.SearchAndIndex(q)
}

// SearchBatch runs a batch of queries against the named database under
// its read lock, through the engine's batched pass where it has one.
// Each member counts as one search in the listing stats.
func (st *Store) SearchBatch(name string, bq *core.BatchQuery) ([]*core.IndexResult, error) {
	d, err := st.lookup(name)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.engine == nil {
		return nil, fmt.Errorf("proto: database %q was dropped", name)
	}
	d.searches.Add(int64(len(bq.Queries)))
	return core.SearchBatch(d.engine, bq)
}

// Drop removes the named database and tears its engine down.
func (st *Store) Drop(name string) error {
	st.mu.Lock()
	d := st.dbs[name]
	delete(st.dbs, name)
	st.mu.Unlock()
	if d == nil {
		return fmt.Errorf("proto: no database named %q", name)
	}
	d.retire()
	return nil
}

// List describes every hosted database, sorted by name.
func (st *Store) List() []DBInfo {
	st.mu.RLock()
	entries := make([]*hostedDB, 0, len(st.dbs))
	for _, d := range st.dbs {
		entries = append(entries, d)
	}
	st.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]DBInfo, 0, len(entries))
	for _, d := range entries {
		d.mu.RLock()
		desc := "retired"
		if d.engine != nil {
			desc = d.engine.Describe()
		}
		infos = append(infos, DBInfo{
			Name:     d.name,
			Engine:   desc,
			Chunks:   len(d.db.Chunks),
			BitLen:   d.db.BitLen,
			Searches: int(d.searches.Load()),
		})
		d.mu.RUnlock()
	}
	return infos
}

// Close retires every database (server shutdown).
func (st *Store) Close() error {
	st.mu.Lock()
	dbs := st.dbs
	st.dbs = make(map[string]*hostedDB)
	st.mu.Unlock()
	for _, d := range dbs {
		d.retire()
	}
	return nil
}
