package proto

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/segment"
)

// ErrCorruptDB marks a database the store quarantined after a plane
// checksum failed — at reload or under the background scrub. It wraps
// ErrServerFault, so the wire layer answers MsgServerError: corruption
// is a server-side fault, never silently-wrong match results.
var ErrCorruptDB = fmt.Errorf("%w: database quarantined after storage corruption", ErrServerFault)

// Store is the server's multi-tenant database registry: named encrypted
// databases, each with its own execution engine and its own RWMutex, so
// searches on different databases — and concurrent searches on the same
// database — proceed in parallel. The store-level lock only guards the
// name table; it is never held across a search.
//
// With a data directory configured, the store is durable: every upload
// is written through to an on-disk segment before it is acknowledged,
// a restart re-registers every segment from the recovery scan (tenants
// reload lazily, with their persisted engine spec, on first search),
// and an optional memory budget evicts the least-recently-searched
// resident databases — a cold tenant costs only its segment file until
// someone searches it again, at which point the arena comes back as a
// zero-copy mmap of the segment (the flash-resident deployment the
// paper argues for, in software).
type Store struct {
	params      bfv.Params
	defaultSpec core.EngineSpec

	dir      *segment.Dir // nil = memory-only store
	budget   int64        // resident-arena byte budget; 0 = unlimited
	resident atomic.Int64 // bytes of arena currently resident
	clock    atomic.Int64 // LRU tick, bumped per search
	skipped  []SkippedSegment

	// uploadMu serialises Upload's persist+register critical section:
	// the segment written to disk and the entry installed in the
	// registry must be the same database even when two clients race on
	// one name. Searches never touch it.
	uploadMu sync.Mutex

	mu  sync.RWMutex
	dbs map[string]*hostedDB

	met       *storeMetrics
	scrubStop chan struct{}
	scrubDone chan struct{}
	closeOnce sync.Once
}

// storeMetrics is the store's durability-and-robustness counter set,
// registered next to the serving metrics so /metrics shows storage
// faults beside how the serving stack absorbed them. Tenant-attributable
// events additionally bump a per-database labeled family (tenant_*), so
// a quarantined or thrashing tenant is identifiable from /metrics alone;
// the flat store_* totals keep their names for existing dashboards and
// the chaos CI grep.
type storeMetrics struct {
	scrubRuns        *metrics.Counter // background/explicit scrub passes
	scrubCorruptions *metrics.Counter // resident arenas failing their recorded CRCs
	quarantines      *metrics.Counter // databases taken out of service as corrupt
	uploadsFailed    *metrics.Counter // uploads refused because the durable write failed
	reloads          *metrics.Counter // cold databases reloaded from their segment
	reloadFailures   *metrics.Counter // reload attempts that failed (DB stays cold)
	evictions        *metrics.Counter // residents evicted by the memory budget

	tenantScrubCorruptions *metrics.CounterVec // tenant_scrub_corruptions_total{db}
	tenantQuarantines      *metrics.CounterVec // tenant_quarantines_total{db}
	tenantReloads          *metrics.CounterVec // tenant_reloads_total{db}
	tenantReloadFailures   *metrics.CounterVec // tenant_reload_failures_total{db}
	tenantEvictions        *metrics.CounterVec // tenant_evictions_total{db}
}

func newStoreMetrics(reg *metrics.Registry) *storeMetrics {
	// Every search this store serves runs on one ring kernel dispatch
	// path; exporting it as a one-hot labeled gauge
	// (kernel_path{path="avx2"} 1) makes cross-host perf deltas
	// attributable from /metrics alone.
	reg.GaugeVec("kernel_path", "path").With(ring.ActiveKernel().String()).Set(1)
	return &storeMetrics{
		scrubRuns:        reg.Counter("store_scrub_runs_total"),
		scrubCorruptions: reg.Counter("store_scrub_corruptions_total"),
		quarantines:      reg.Counter("store_quarantines_total"),
		uploadsFailed:    reg.Counter("store_uploads_failed_total"),
		reloads:          reg.Counter("store_reloads_total"),
		reloadFailures:   reg.Counter("store_reload_failures_total"),
		evictions:        reg.Counter("store_evictions_total"),

		tenantScrubCorruptions: reg.CounterVec("tenant_scrub_corruptions_total", "db"),
		tenantQuarantines:      reg.CounterVec("tenant_quarantines_total", "db"),
		tenantReloads:          reg.CounterVec("tenant_reloads_total", "db"),
		tenantReloadFailures:   reg.CounterVec("tenant_reload_failures_total", "db"),
		tenantEvictions:        reg.CounterVec("tenant_evictions_total", "db"),
	}
}

// reloadFailed records a failed reload attempt for a tenant.
func (m *storeMetrics) reloadFailed(name string) {
	m.reloadFailures.Inc()
	m.tenantReloadFailures.With(name).Inc()
}

// SkippedSegment reports a recovered-but-unusable segment: well-formed
// on disk, but written under different BFV parameters than the store
// runs. It is left in place (never deleted) and not served.
type SkippedSegment struct {
	File string
	Name string
	Err  error
}

// StoreOptions configures durability.
type StoreOptions struct {
	// DataDir is the segment directory. Empty means a memory-only
	// store: nothing persists and nothing can be evicted.
	DataDir string
	// MemBudget caps the total bytes of resident ciphertext arenas;
	// exceeding it evicts least-recently-searched databases down to the
	// budget (the database being searched is never evicted, so one
	// over-budget tenant still works). 0 means unlimited. Requires
	// DataDir: an evicted tenant reloads from its segment.
	MemBudget int64
	// FS is the filesystem the durable store runs on. Nil means the real
	// one (segment.OSFS); tests thread a fault-injecting shim through
	// here to exercise crash, disk-full and corruption handling.
	FS segment.FS
	// ScrubInterval enables the background scrub: every interval, each
	// resident arena is re-hashed against the plane CRCs recorded at
	// upload or reload, and corrupt databases are quarantined. 0
	// disables the tick; ScrubOnce can still be called explicitly.
	ScrubInterval time.Duration
	// Metrics receives the store_* counters. Nil means a private
	// registry (counters still recorded, just not exported anywhere).
	Metrics *metrics.Registry
}

// hostedDB is one tenant database. Searches hold mu.RLock; load,
// eviction and removal take mu.Lock, so an engine is only torn down or
// swapped in quiescent. The metadata fields (spec, chunks, bitLen,
// numSegments) are immutable after registration and valid even while
// the database is cold — List must never need the arena.
type hostedDB struct {
	name        string
	spec        core.EngineSpec
	chunks      int
	bitLen      int
	numSegments int
	persisted   bool

	searches atomic.Int64
	lastUsed atomic.Int64 // store clock at last search; LRU key
	loaded   atomic.Bool  // mirrors engine != nil, for lock-free victim scans

	mu      sync.RWMutex
	db      *core.EncryptedDB
	engine  core.Engine
	seg     *segment.Segment // non-nil while mmap/segment-backed
	dropped bool

	// planeCRC fingerprints the resident arena — recorded from the
	// compacted upload or the segment footer at reload, re-verified by
	// the scrub. crcKnown guards against scrubbing an arena that never
	// had a fingerprint (a non-compacted memory-only upload).
	planeCRC   [2]uint64
	crcKnown   bool
	corrupt    bool  // quarantined: serve a typed error, never the arena
	corruptErr error // what the checksum pass found
}

// NewStore creates an empty memory-only store. Uploads that do not
// name an engine kind get defaultSpec (zero value = serial).
func NewStore(params bfv.Params, defaultSpec core.EngineSpec) *Store {
	st, err := NewStoreWithOptions(params, defaultSpec, StoreOptions{})
	if err != nil {
		panic(err) // no options, no failure paths
	}
	return st
}

// NewStoreWithOptions creates a store, optionally durable. With a data
// directory it runs the recovery scan: every well-formed segment file
// re-registers its database (cold — the arena loads on first search)
// under the engine spec persisted in the segment header. Segments
// written under different BFV parameters are rejected.
func NewStoreWithOptions(params bfv.Params, defaultSpec core.EngineSpec, opts StoreOptions) (*Store, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	st := &Store{params: params, defaultSpec: defaultSpec, budget: opts.MemBudget, dbs: make(map[string]*hostedDB), met: newStoreMetrics(reg)}
	if opts.MemBudget < 0 {
		return nil, fmt.Errorf("proto: negative memory budget %d", opts.MemBudget)
	}
	if opts.ScrubInterval < 0 {
		return nil, fmt.Errorf("proto: negative scrub interval %v", opts.ScrubInterval)
	}
	if opts.ScrubInterval > 0 {
		st.scrubStop = make(chan struct{})
		st.scrubDone = make(chan struct{})
		go st.scrubLoop(opts.ScrubInterval)
	}
	if opts.DataDir == "" {
		if opts.MemBudget > 0 {
			return nil, fmt.Errorf("proto: a memory budget requires a data directory to evict to")
		}
		return st, nil
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = segment.OSFS{}
	}
	dir, err := segment.OpenDirFS(fsys, opts.DataDir)
	if err != nil {
		st.stopScrub()
		return nil, fmt.Errorf("proto: opening data directory: %w", err)
	}
	st.dir = dir
	for _, e := range dir.Entries() {
		// A segment from a different parameter point is quarantined like
		// a damaged file — one foreign segment must not take every
		// healthy tenant offline.
		if err := e.Meta.CheckGeometry(params.N, params.Q); err != nil {
			st.skipped = append(st.skipped, SkippedSegment{File: e.File, Name: e.Meta.Name, Err: err})
			continue
		}
		st.dbs[e.Meta.Name] = &hostedDB{
			name:        e.Meta.Name,
			spec:        e.Meta.Spec,
			chunks:      e.Meta.Chunks,
			bitLen:      e.Meta.BitLen,
			numSegments: e.Meta.NumSegments,
			persisted:   true,
		}
	}
	return st, nil
}

// Dir exposes the segment directory (nil for memory-only stores), for
// diagnostics such as the recovery scan's quarantine list.
func (st *Store) Dir() *segment.Dir { return st.dir }

// SkippedSegments lists recovered segments the store refused to serve
// because their BFV parameters differ from the store's.
func (st *Store) SkippedSegments() []SkippedSegment {
	return append([]SkippedSegment(nil), st.skipped...)
}

// arenaBytes is the resident cost of one database's ciphertext arena.
func (st *Store) arenaBytes(chunks int) int64 {
	return 2 * int64(chunks) * int64(st.params.N) * 8
}

// Upload installs (or replaces) the named database, building its engine
// from spec; an empty spec kind selects the store default. On a durable
// store the segment is written through — and fsynced — before the
// upload is acknowledged, so an acked database survives a crash.
// Replacement waits for in-flight searches on the old engine before
// closing it.
func (st *Store) Upload(name string, spec core.EngineSpec, edb *core.EncryptedDB) error {
	if name == "" {
		return fmt.Errorf("proto: database name must not be empty")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("proto: database name exceeds %d bytes", MaxNameLen)
	}
	// Bound wire-supplied resources: the CLI path validates specs via
	// engine.Parse, but a remote peer writes the spec fields directly and
	// must not be able to request unbounded goroutines or shards. The
	// worker bound applies to the product workers × shards (a pool per
	// shard), counting the GOMAXPROCS default for unspecified workers.
	if spec.Shards < 0 || spec.Shards > MaxUploadShards {
		return fmt.Errorf("proto: shard count %d out of range [0, %d]", spec.Shards, MaxUploadShards)
	}
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	if spec.Workers < 0 || workers*shards > MaxUploadWorkers {
		return fmt.Errorf("proto: %d workers x %d shards exceeds the server limit of %d total workers",
			workers, shards, MaxUploadWorkers)
	}
	if spec.Kind == "" {
		workers, shards := spec.Workers, spec.Shards
		spec = st.defaultSpec
		if workers > 0 {
			spec.Workers = workers
		}
		if shards > 0 {
			spec.Shards = shards
		}
	}
	edb.Compact() // contiguous arena: what the kernels stream and the segment writer bulk-copies
	eng, err := engine.Build(st.params, edb, spec)
	if err != nil {
		return fmt.Errorf("proto: building %q engine for %q: %w", spec, name, err)
	}
	entry := &hostedDB{
		name:        name,
		spec:        spec,
		chunks:      len(edb.Chunks),
		bitLen:      edb.BitLen,
		numSegments: edb.NumSegments,
		db:          edb,
		engine:      eng,
	}
	if arena := edb.Arena(); arena != nil {
		// Fingerprint the arena now, while it is known-good: the scrub
		// and any later reload compare against exactly these CRCs.
		entry.planeCRC = segment.ArenaPlaneCRCs(arena)
		entry.crcKnown = true
	}

	// Serialised persist+register: with concurrent uploads of one name,
	// the segment on disk and the entry in the registry must be the
	// same database, and the capacity check must run *before* the
	// (potentially huge, fsynced) segment write — a refused upload must
	// not leave a segment a crash could resurrect.
	st.uploadMu.Lock()
	defer st.uploadMu.Unlock()
	st.mu.RLock()
	_, replacing := st.dbs[name]
	full := !replacing && len(st.dbs) >= MaxStoredDBs
	n := len(st.dbs)
	st.mu.RUnlock()
	if full {
		st.closeEngine(eng)
		return fmt.Errorf("proto: store holds %d databases (limit %d); drop one first", n, MaxStoredDBs)
	}
	if st.dir != nil {
		meta := segment.Meta{
			Name:        name,
			RingDegree:  st.params.N,
			Modulus:     st.params.Q,
			Chunks:      len(edb.Chunks),
			BitLen:      edb.BitLen,
			NumSegments: edb.NumSegments,
			Spec:        spec,
		}
		if err := st.dir.Save(meta, edb); err != nil {
			// Graceful degradation: the upload is refused cleanly — the
			// new engine is torn down, the registry and the old segment
			// (if any) are untouched, so resident state and disk never
			// skew and existing tenants keep serving. On a full disk the
			// store effectively degrades to read-only.
			st.met.uploadsFailed.Inc()
			st.closeEngine(eng)
			return fmt.Errorf("proto: persisting %q: %w", name, err)
		}
		entry.persisted = true
	}
	// Resident accounting pairs with unloadLocked's decrement: add the
	// arena bytes exactly when loaded flips true.
	entry.loaded.Store(true)
	entry.lastUsed.Store(st.clock.Add(1))
	st.resident.Add(st.arenaBytes(entry.chunks))
	st.mu.Lock()
	old := st.dbs[name]
	st.dbs[name] = entry
	st.mu.Unlock()
	if old != nil {
		st.retire(old)
	}
	st.enforceBudget(entry)
	return nil
}

func (st *Store) closeEngine(eng core.Engine) {
	if c, ok := eng.(io.Closer); ok {
		_ = c.Close()
	}
}

// retire waits for in-flight searches, closes the engine, and releases
// the arena (unmapping it when segment-backed). The entry is dead
// afterwards.
func (st *Store) retire(d *hostedDB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropped = true
	st.unloadLocked(d)
}

// unloadLocked drops the resident state — engine, database view,
// mapping — and the accounting for it. Caller holds d.mu.
func (st *Store) unloadLocked(d *hostedDB) {
	if d.engine != nil {
		st.closeEngine(d.engine)
		d.engine = nil
	}
	d.db = nil
	if d.seg != nil {
		_ = d.seg.Close()
		d.seg = nil
	}
	if d.loaded.Swap(false) {
		st.resident.Add(-st.arenaBytes(d.chunks))
	}
}

// ensureLoaded reloads a cold database from its segment: checksum-
// verified open (zero-copy mmap where the platform allows), arena
// adoption into the chunk-view layout, and an engine rebuilt from the
// persisted spec.
func (st *Store) ensureLoaded(d *hostedDB) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dropped {
		return fmt.Errorf("proto: database %q was dropped", d.name)
	}
	if d.corrupt {
		return fmt.Errorf("proto: database %q: %w (%v)", d.name, ErrCorruptDB, d.corruptErr)
	}
	if d.engine != nil {
		return nil // raced with another reloader: already resident
	}
	if !d.persisted || st.dir == nil {
		return fmt.Errorf("proto: database %q has no engine and no segment to reload from", d.name)
	}
	seg, err := st.dir.Load(d.name, st.params.N, st.params.Q)
	if err != nil {
		st.met.reloadFailed(d.name)
		if isCorruptionErr(err) {
			// The segment itself is damaged: retrying cannot help, so
			// quarantine the file (same path the recovery scan takes)
			// and surface the typed fault. Transient errors fall through
			// below and leave the database cold but retryable.
			st.quarantineLocked(d, err)
			return fmt.Errorf("proto: reloading %q: %w (%v)", d.name, ErrCorruptDB, err)
		}
		return fmt.Errorf("proto: reloading %q: %w", d.name, err)
	}
	// The reload is always followed by a search streaming the arena:
	// start faulting the mapping in while the engine is being built.
	seg.AdviseWillNeed()
	edb, err := seg.DB()
	if err != nil {
		_ = seg.Close()
		st.met.reloadFailed(d.name)
		return fmt.Errorf("proto: adopting %q arena: %w", d.name, err)
	}
	eng, err := engine.Build(st.params, edb, d.spec)
	if err != nil {
		_ = seg.Close()
		st.met.reloadFailed(d.name)
		return fmt.Errorf("proto: rebuilding %q engine for %q: %w", d.spec, d.name, err)
	}
	d.db, d.engine, d.seg = edb, eng, seg
	// The loader just verified the footer CRCs over these exact bytes;
	// adopt them as the fingerprint the scrub re-checks.
	d.planeCRC = seg.PlaneCRCs()
	d.crcKnown = true
	d.loaded.Store(true)
	st.met.reloads.Inc()
	st.met.tenantReloads.With(d.name).Inc()
	st.resident.Add(st.arenaBytes(d.chunks))
	return nil
}

// isCorruptionErr reports whether a reload failure means the segment
// bytes are bad (checksum, truncation, framing) rather than a transient
// I/O condition worth retrying.
func isCorruptionErr(err error) bool {
	return errors.Is(err, segment.ErrChecksum) || errors.Is(err, segment.ErrTruncated) ||
		errors.Is(err, segment.ErrBadMagic) || errors.Is(err, segment.ErrBadVersion)
}

// ScrubOnce re-hashes every resident arena against the plane CRCs
// recorded when it entered memory and quarantines any database whose
// bytes have rotted — the typed-error-instead-of-wrong-answers
// guarantee for in-memory corruption (mapped page cache or heap). It
// returns how many residents were checked and how many failed. Cold
// databases are verified by the segment loader when they come back.
func (st *Store) ScrubOnce() (checked, corrupted int) {
	st.met.scrubRuns.Inc()
	st.mu.RLock()
	dbs := make([]*hostedDB, 0, len(st.dbs))
	for _, d := range st.dbs {
		dbs = append(dbs, d)
	}
	st.mu.RUnlock()
	for _, d := range dbs {
		d.mu.RLock()
		ok := !d.dropped && !d.corrupt && d.crcKnown && d.db != nil && d.db.Arena() != nil
		var got [2]uint64
		if ok {
			// Hashing under RLock: searches proceed, only load/evict wait.
			got = segment.ArenaPlaneCRCs(d.db.Arena())
		}
		want := d.planeCRC
		d.mu.RUnlock()
		if !ok {
			continue
		}
		checked++
		if got == want {
			continue
		}
		corrupted++
		st.met.scrubCorruptions.Inc()
		st.met.tenantScrubCorruptions.With(d.name).Inc()
		st.quarantine(d, fmt.Errorf("scrub: plane CRCs %016x/%016x, recorded %016x/%016x",
			got[0], got[1], want[0], want[1]))
	}
	return checked, corrupted
}

// quarantine takes a corrupt database out of service: resident state is
// released, the entry answers ErrCorruptDB from now on, and the segment
// file (if any) is atomically renamed aside through the same manifest
// path the recovery scan uses for damaged files.
func (st *Store) quarantine(d *hostedDB, cause error) {
	d.mu.Lock()
	st.quarantineLocked(d, cause)
	d.mu.Unlock()
}

// quarantineLocked is quarantine with d.mu already held.
func (st *Store) quarantineLocked(d *hostedDB, cause error) {
	if d.dropped || d.corrupt {
		return
	}
	d.corrupt = true
	d.corruptErr = cause
	st.unloadLocked(d)
	st.met.quarantines.Inc()
	st.met.tenantQuarantines.With(d.name).Inc()
	if st.dir != nil && d.persisted {
		// Best-effort: a failed rename leaves the file in place, but the
		// corrupt flag alone already stops it from being served.
		st.dir.Quarantine(d.name, cause) //nolint:errcheck // entry is already fenced off
	}
}

// scrubLoop is the background scrub tick.
func (st *Store) scrubLoop(interval time.Duration) {
	defer close(st.scrubDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.scrubStop:
			return
		case <-t.C:
			st.ScrubOnce()
		}
	}
}

// stopScrub halts the background scrub, idempotently.
func (st *Store) stopScrub() {
	st.closeOnce.Do(func() {
		if st.scrubStop != nil {
			close(st.scrubStop)
			<-st.scrubDone
		}
	})
}

// enforceBudget evicts least-recently-searched resident databases until
// the resident arena total fits the budget. keep is never evicted (the
// database just used or loaded). Best-effort: concurrent reloads can
// transiently overshoot.
func (st *Store) enforceBudget(keep *hostedDB) {
	if st.budget <= 0 {
		return
	}
	for st.resident.Load() > st.budget {
		v := st.pickVictim(keep)
		if v == nil {
			return // nothing evictable (keep alone over budget)
		}
		v.mu.Lock()
		// Recheck under the lock: the scan ran lock-free.
		if !v.dropped && v.engine != nil && v.persisted {
			st.unloadLocked(v)
			st.met.evictions.Inc()
			st.met.tenantEvictions.With(v.name).Inc()
		}
		v.mu.Unlock()
	}
}

// pickVictim returns the least-recently-searched resident, persisted
// database other than keep, or nil.
func (st *Store) pickVictim(keep *hostedDB) *hostedDB {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var victim *hostedDB
	var oldest int64
	for _, d := range st.dbs {
		if d == keep || !d.persisted || !d.loaded.Load() {
			continue
		}
		if used := d.lastUsed.Load(); victim == nil || used < oldest {
			victim, oldest = d, used
		}
	}
	return victim
}

func (st *Store) lookup(name string) (*hostedDB, error) {
	st.mu.RLock()
	d := st.dbs[name]
	st.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("proto: no database named %q", name)
	}
	return d, nil
}

// withEngine runs fn under the database's read lock with a live
// engine, transparently reloading an evicted database from its segment
// first. Any number of searches share a database (and the whole store)
// at once.
func (st *Store) withEngine(name string, fn func(d *hostedDB, eng core.Engine) error) error {
	d, err := st.lookup(name)
	if err != nil {
		return err
	}
	for {
		d.mu.RLock()
		if d.dropped {
			d.mu.RUnlock()
			return fmt.Errorf("proto: database %q was dropped", name)
		}
		if d.corrupt {
			cause := d.corruptErr
			d.mu.RUnlock()
			return fmt.Errorf("proto: database %q: %w (%v)", name, ErrCorruptDB, cause)
		}
		if eng := d.engine; eng != nil {
			d.lastUsed.Store(st.clock.Add(1))
			// Deferred unlock: fn runs tenant engine code, and a panic
			// there is recovered further up (the handler's and the batch
			// executor's panic isolation) — the read lock must not leak
			// past that recovery or the database wedges.
			return func() error {
				defer d.mu.RUnlock()
				return fn(d, eng)
			}()
		}
		d.mu.RUnlock()
		if err := st.ensureLoaded(d); err != nil {
			return err
		}
		st.enforceBudget(d)
	}
}

// Search runs one query against the named database under its read
// lock, reloading it from disk first if it was evicted.
//
//cm:pooled
func (st *Store) Search(name string, q *core.Query) (*core.IndexResult, error) {
	var ir *core.IndexResult
	err := st.withEngine(name, func(d *hostedDB, eng core.Engine) error {
		d.searches.Add(1)
		var err error
		ir, err = eng.SearchAndIndex(q)
		return err
	})
	return ir, err
}

// SearchBatch runs a batch of queries against the named database under
// its read lock, through the engine's batched pass where it has one.
// Each member counts as one search in the listing stats.
//
//cm:pooled
func (st *Store) SearchBatch(name string, bq *core.BatchQuery) ([]*core.IndexResult, error) {
	var irs []*core.IndexResult
	err := st.withEngine(name, func(d *hostedDB, eng core.Engine) error {
		d.searches.Add(int64(len(bq.Queries)))
		var err error
		irs, err = core.SearchBatch(eng, bq)
		return err
	})
	return irs, err
}

// Drop removes the named database, tears its engine down, and deletes
// its segment file. It serialises with Upload so a drop racing a
// replacement cannot delete the segment the replacement just wrote.
func (st *Store) Drop(name string) error {
	st.uploadMu.Lock()
	defer st.uploadMu.Unlock()
	st.mu.Lock()
	d := st.dbs[name]
	delete(st.dbs, name)
	st.mu.Unlock()
	if d == nil {
		return fmt.Errorf("proto: no database named %q", name)
	}
	st.retire(d)
	if st.dir != nil {
		if err := st.dir.Remove(name); err != nil {
			return fmt.Errorf("proto: dropping %q segment: %w", name, err)
		}
	}
	return nil
}

// List describes every hosted database, sorted by name. It reads only
// Has reports whether the store hosts a database under the name —
// resident, cold, or quarantined. The telemetry layer uses it as its
// label-cardinality guard: only hosted names (bounded by MaxStoredDBs)
// may become metric label values.
func (st *Store) Has(name string) bool {
	st.mu.RLock()
	_, ok := st.dbs[name]
	st.mu.RUnlock()
	return ok
}

// registration metadata (persisted in the segment header and manifest),
// never the arena, so cold databases list correctly without touching
// disk.
func (st *Store) List() []DBInfo {
	st.mu.RLock()
	entries := make([]*hostedDB, 0, len(st.dbs))
	for _, d := range st.dbs {
		entries = append(entries, d)
	}
	st.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]DBInfo, 0, len(entries))
	for _, d := range entries {
		d.mu.RLock()
		state := StateCold
		desc := d.spec.String()
		switch {
		case d.dropped:
			state = StateRetired
		case d.corrupt:
			state = StateQuarantined
		case d.engine != nil:
			state = StateResident
			desc = d.engine.Describe()
		}
		infos = append(infos, DBInfo{
			Name:     d.name,
			Engine:   desc,
			State:    state,
			Chunks:   d.chunks,
			BitLen:   d.bitLen,
			Searches: int(d.searches.Load()),
		})
		d.mu.RUnlock()
	}
	return infos
}

// ResidentBytes reports the bytes of ciphertext arena currently
// resident (heap or mapped), the quantity the memory budget bounds.
func (st *Store) ResidentBytes() int64 { return st.resident.Load() }

// Close retires every database (server shutdown): engines drain,
// mappings unmap. Segments and the manifest are already durable — the
// store reopens from the same directory.
func (st *Store) Close() error {
	st.stopScrub()
	st.mu.Lock()
	dbs := st.dbs
	st.dbs = make(map[string]*hostedDB)
	st.mu.Unlock()
	for _, d := range dbs {
		st.retire(d)
	}
	return nil
}
