package proto

import (
	"encoding/binary"
	"fmt"

	"ciphermatch/internal/trace"
)

// Trace wire extension: a client that wants end-to-end trace
// correlation appends a small suffix to its MsgQuery payload carrying a
// client-generated trace ID. The suffix rides *after* the query bytes,
// parsed from the end of the payload:
//
//	[query payload][ext bytes][extLen u32][version u32][magic 8 bytes]
//
// Trailing placement is what makes the extension interop cleanly in
// both directions with no version negotiation: every query decoder in
// this package reads its structure front-to-back and ignores trailing
// bytes, so an old server decodes an extended payload as if the suffix
// were not there (new-client/old-server), and a new server seeing no
// magic treats the query as unextended and assigns a server-side trace
// ID (old-client/new-server). The 64-bit magic makes an accidental
// match on legacy query bytes a 2^-64 event, the same collision budget
// the coalescer's 64-bit content hash already accepts, and the
// extLen/version bounds checks shrink it further.
//
// The extension must be appended to the *full named payload* (after
// EncodeNamedQuery) and peeled before SplitNamedQuery server-side, so
// the coalescer's byte-identical dedup still sees identical query
// bytes from different traced clients.
const (
	// traceExtMagic is "tracext1" little-endian — the last 8 payload
	// bytes of an extended query.
	traceExtMagic = uint64(0x3174786563617274)
	// traceExtVersion is the current extension version. The ext bytes of
	// every version begin with the 8-byte little-endian trace ID, so
	// newer-versioned extensions still yield their ID here.
	traceExtVersion = 1
	// traceExtTrailer is the fixed trailer width: extLen + version + magic.
	traceExtTrailer = 4 + 4 + 8
	// traceExtIDBytes is the minimum ext-bytes width (the trace ID).
	traceExtIDBytes = 8
)

// AppendTraceExt returns payload with the trace extension appended.
// The input slice may be retained and extended in place when capacity
// allows.
func AppendTraceExt(payload []byte, traceID uint64) []byte {
	var tmp [traceExtIDBytes + traceExtTrailer]byte
	binary.LittleEndian.PutUint64(tmp[0:], traceID)
	binary.LittleEndian.PutUint32(tmp[8:], traceExtIDBytes)
	binary.LittleEndian.PutUint32(tmp[12:], traceExtVersion)
	binary.LittleEndian.PutUint64(tmp[16:], traceExtMagic)
	return append(payload, tmp[:]...)
}

// PeelTraceExt splits a query payload into the bare query bytes and the
// client trace ID. ok reports whether a well-formed extension was
// present; without one the payload is returned unchanged (a legacy
// client, or bytes that merely end near the magic but fail the bounds
// checks). Versions newer than traceExtVersion are accepted — the ID
// prefix of the ext bytes is stable across versions by contract.
func PeelTraceExt(payload []byte) (rest []byte, traceID uint64, ok bool) {
	n := len(payload)
	if n < traceExtIDBytes+traceExtTrailer {
		return payload, 0, false
	}
	if binary.LittleEndian.Uint64(payload[n-8:]) != traceExtMagic {
		return payload, 0, false
	}
	version := binary.LittleEndian.Uint32(payload[n-12 : n-8])
	extLen := binary.LittleEndian.Uint32(payload[n-16 : n-12])
	if version < 1 || extLen < traceExtIDBytes || int(extLen) > n-traceExtTrailer {
		return payload, 0, false
	}
	extStart := n - traceExtTrailer - int(extLen)
	traceID = binary.LittleEndian.Uint64(payload[extStart:])
	return payload[:extStart], traceID, true
}

// EncodeTraceDump frames a MsgTraceDump request: how many traces (0 =
// ring capacity) and whether to read the slow ring instead of the
// recent one.
func EncodeTraceDump(max int, slowOnly bool) []byte {
	var b buffer
	b.putInt(max)
	if slowOnly {
		b.data = append(b.data, 1)
	} else {
		b.data = append(b.data, 0)
	}
	return b.data
}

// DecodeTraceDump is the inverse of EncodeTraceDump.
func DecodeTraceDump(data []byte) (max int, slowOnly bool, err error) {
	b := buffer{data: data}
	if max, err = b.int(); err != nil {
		return 0, false, err
	}
	if b.off >= len(b.data) {
		return 0, false, errShortPayload
	}
	return max, b.data[b.off] != 0, nil
}

// traceMinWireBytes is the minimum wire footprint of one encoded trace,
// used to bound the decoded trace count against the payload length.
// The stage array carries its own count word per trace so the stage
// catalog can grow without a wire version bump: decoders accept any
// count and keep the first NumStages slots.
const traceMinWireBytes = 4 /*name len*/ + 8*5 /*id,seq,start,total + stage count*/

// EncodeTraceDumpResult serialises a MsgTraceDumpResult reply.
func EncodeTraceDumpResult(traces []trace.Trace) []byte {
	var b buffer
	b.putInt(len(traces))
	for i := range traces {
		t := &traces[i]
		b.putUint64(t.ID)
		b.putUint64(t.Seq)
		b.putString(t.Tenant)
		b.putUint64(uint64(t.Start))
		b.putInt(trace.NumStages)
		for _, ns := range t.StageNS {
			b.putUint64(uint64(ns))
		}
		b.putUint64(uint64(t.TotalNS))
		b.putUint64(uint64(t.ChunkStreams))
		b.putUint64(uint64(t.HomAdds))
		b.putUint32(uint32(t.Batch))
		b.putUint32(uint32(t.Flags))
	}
	return b.data
}

// DecodeTraceDumpResult is the inverse of EncodeTraceDumpResult. A
// reply from a server with a larger stage catalog decodes cleanly: the
// stages this build knows land in their slots, the rest are dropped.
func DecodeTraceDumpResult(data []byte) ([]trace.Trace, error) {
	b := buffer{data: data}
	n, err := b.count(traceMinWireBytes)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Trace, n)
	for i := range out {
		t := &out[i]
		if t.ID, err = b.uint64(); err != nil {
			return nil, err
		}
		if t.Seq, err = b.uint64(); err != nil {
			return nil, err
		}
		if t.Tenant, err = b.string(); err != nil {
			return nil, err
		}
		v, err := b.uint64()
		if err != nil {
			return nil, err
		}
		t.Start = int64(v)
		nstages, err := b.count(8)
		if err != nil {
			return nil, err
		}
		for s := 0; s < nstages; s++ {
			ns, err := b.uint64()
			if err != nil {
				return nil, err
			}
			if s < trace.NumStages {
				t.StageNS[s] = int64(ns)
			}
		}
		if v, err = b.uint64(); err != nil {
			return nil, err
		}
		t.TotalNS = int64(v)
		if v, err = b.uint64(); err != nil {
			return nil, err
		}
		t.ChunkStreams = int64(v)
		if v, err = b.uint64(); err != nil {
			return nil, err
		}
		t.HomAdds = int64(v)
		w, err := b.uint32()
		if err != nil {
			return nil, err
		}
		t.Batch = int32(w)
		if w, err = b.uint32(); err != nil {
			return nil, err
		}
		if w > 0xff {
			return nil, fmt.Errorf("proto: trace flags word %#x exceeds a byte", w)
		}
		t.Flags = uint8(w)
	}
	return out, nil
}
