package proto

import (
	"errors"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/fault"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/segment"
)

// chaosFixture is one client with one query and two versions of a
// database — the pattern planted at different offsets, so the matrix
// test can tell which version a recovered store serves. Ground truth
// for both versions comes from the client-decrypt path.
type chaosFixture struct {
	q            *core.Query
	dbA, dbB     *core.EncryptedDB
	wantA, wantB []int
}

func newChaosFixture(t *testing.T, p bfv.Params) *chaosFixture {
	t.Helper()
	const dbBytes = 192
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("chaos-client"))
	if err != nil {
		t.Fatal(err)
	}
	pat := []byte{0xCA, 0xFE, 0xBA, 0xBE}
	q, err := client.PrepareQuery(pat, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed string, plantAt int) (*core.EncryptedDB, []int) {
		data := make([]byte, dbBytes)
		rng.NewSourceFromString(seed).Bytes(data)
		for j := 0; j < 32; j++ {
			mathutil.SetBit(data, plantAt+j, mathutil.GetBit(pat, j))
		}
		db, err := client.EncryptDatabase(data, dbBytes*8)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := core.NewServer(p, db).Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Candidates(client.ExtractHits(q, sr), q.DBBitLen, q.YBits, q.AlignBits)
		if len(want) == 0 {
			t.Fatalf("chaos fixture %s: vacuous ground truth", seed)
		}
		return db, want
	}
	fx := &chaosFixture{q: q}
	fx.dbA, fx.wantA = mk("chaos-v1", 200)
	fx.dbB, fx.wantB = mk("chaos-v2", 968)
	if len(fx.wantA) == len(fx.wantB) && fx.wantA[0] == fx.wantB[0] {
		t.Fatal("chaos fixture: versions indistinguishable")
	}
	return fx
}

// segDurableFrom marks the crash points at or after which the segment
// write itself is already durable (renamed into place): recovery must
// adopt the new version, even though the writer never acknowledged.
var segDurableFrom = map[string]bool{
	segment.CrashWriteDirsync:   true,
	segment.CrashManifestWrite:  true,
	segment.CrashManifestRename: true,
}

// TestCrashPointMatrix simulates the process dying at every named crash
// point of the segment write path — once during a fresh upload, once
// during a replacement — reruns recovery on the surviving files, and
// requires the recovered store to be bit-identical to the client-
// decrypt ground truth: the pre-crash version, the post-crash version,
// or (fresh uploads only) cleanly absent. Never a torn in-between.
func TestCrashPointMatrix(t *testing.T) {
	p := bfv.ParamsToy()
	fx := newChaosFixture(t, p)
	spec := core.EngineSpec{}

	crashUpload := func(t *testing.T, dir, point string, pre *core.EncryptedDB, crashed *core.EncryptedDB) {
		t.Helper()
		inj := fault.New(fault.Config{Seed: "matrix-" + point})
		st, err := NewStoreWithOptions(p, spec, StoreOptions{DataDir: dir, FS: inj.FS(segment.OSFS{})})
		if err != nil {
			t.Fatal(err)
		}
		if pre != nil {
			if err := st.Upload("crashdb", spec, pre); err != nil {
				t.Fatalf("pre-crash upload: %v", err)
			}
		}
		inj.ArmCrash(point)
		if err := st.Upload("crashdb", spec, crashed); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("upload at %s: %v, want ErrCrashed", point, err)
		}
		if !inj.Crashed() {
			t.Fatal("injector not marked crashed")
		}
	}
	recover := func(t *testing.T, dir string) *Store {
		t.Helper()
		st, err := NewStoreWithOptions(p, spec, StoreOptions{DataDir: dir})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	conform := func(t *testing.T, st *Store, want []int) {
		t.Helper()
		ir, err := st.Search("crashdb", fx.q)
		if err != nil {
			t.Fatalf("recovered search: %v", err)
		}
		assertCandidates(t, "recovered search", ir.Candidates, want)
		ir.Release()
		irs, err := st.SearchBatch("crashdb", core.NewBatchQuery(fx.q, fx.q))
		if err != nil {
			t.Fatalf("recovered batch: %v", err)
		}
		for _, ir := range irs {
			assertCandidates(t, "recovered batch", ir.Candidates, want)
			ir.Release()
		}
	}

	for _, point := range segment.CrashPoints() {
		t.Run("fresh/"+point, func(t *testing.T) {
			dir := t.TempDir()
			crashUpload(t, dir, point, nil, fx.dbA)
			st := recover(t, dir)
			if !segDurableFrom[point] {
				if _, err := st.Search("crashdb", fx.q); err == nil {
					t.Fatal("crash before durability resurrected a database")
				}
				return
			}
			conform(t, st, fx.wantA)
		})
		t.Run("replace/"+point, func(t *testing.T) {
			dir := t.TempDir()
			crashUpload(t, dir, point, fx.dbA, fx.dbB)
			want := fx.wantA // crash before the rename: old version intact
			if segDurableFrom[point] {
				want = fx.wantB // renamed: the replacement is what survived
			}
			conform(t, recover(t, dir), want)
		})
	}
}

// TestScrubQuarantinesCorruptResident flips a bit in a resident arena
// and requires the background-scrub path to quarantine the database:
// typed error on search, segment file set aside, counters visible —
// and a re-upload heals the tenant.
func TestScrubQuarantinesCorruptResident(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tn := newDurableTenant(t, p, "scrubbed", core.EngineSpec{}, 192, 200)
	if err := st.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	if checked, corrupted := st.ScrubOnce(); checked != 1 || corrupted != 0 {
		t.Fatalf("clean scrub: checked=%d corrupted=%d, want 1/0", checked, corrupted)
	}

	tn.db.Arena()[3] ^= 1 // in-memory bit rot
	if checked, corrupted := st.ScrubOnce(); checked != 1 || corrupted != 1 {
		t.Fatalf("dirty scrub: checked=%d corrupted=%d, want 1/1", checked, corrupted)
	}
	_, err = st.Search(tn.name, tn.q)
	if !errors.Is(err, ErrCorruptDB) || !errors.Is(err, ErrServerFault) {
		t.Fatalf("search on quarantined db: %v, want ErrCorruptDB (an ErrServerFault)", err)
	}
	segPath := filepath.Join(dir, segment.FileName(tn.name))
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still canonical: %v", err)
	}
	if _, err := os.Stat(segPath + segment.QuarantineSuffix); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if infos := st.List(); len(infos) != 1 || infos[0].State != StateQuarantined {
		t.Fatalf("listing: %+v, want one quarantined entry", infos)
	}
	for name, want := range map[string]int64{"store_scrub_corruptions_total": 1, "store_quarantines_total": 1} {
		if got, _ := metrics.Lookup(reg.Snapshot(), name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}

	tn.db.Arena()[3] ^= 1 // the operator restores a good copy
	if err := st.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatalf("healing re-upload: %v", err)
	}
	ir, err := st.Search(tn.name, tn.q)
	if err != nil {
		t.Fatalf("healed search: %v", err)
	}
	assertCandidates(t, "healed", ir.Candidates, tn.clientWant)
	ir.Release()
}

// TestBackgroundScrubTick verifies the scrub goroutine runs on its own:
// a corrupted resident arena is quarantined without anyone calling
// ScrubOnce.
func TestBackgroundScrubTick(t *testing.T) {
	p := bfv.ParamsToy()
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: t.TempDir(), ScrubInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tn := newDurableTenant(t, p, "ticked", core.EngineSpec{}, 192, 200)
	if err := st.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	tn.db.Arena()[7] ^= 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := st.Search(tn.name, tn.q); errors.Is(err, ErrCorruptDB) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background scrub never quarantined the corrupt arena")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReloadCorruptSegmentQuarantined corrupts a segment on disk while
// the tenant is cold. The reload must reject (checksum), quarantine the
// file, and answer the typed error immediately on later searches — the
// database is fenced off, not wedged in a retry loop.
func TestReloadCorruptSegmentQuarantined(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	tn := newDurableTenant(t, p, "bitrot", core.EngineSpec{}, 192, 200)
	st1, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	segPath := filepath.Join(dir, segment.FileName(tn.name))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF // flip a plane byte
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i := 0; i < 2; i++ { // second search: typed error, no re-probing of a known-bad file
		if _, err := st2.Search(tn.name, tn.q); !errors.Is(err, ErrCorruptDB) {
			t.Fatalf("search %d on corrupt segment: %v, want ErrCorruptDB", i, err)
		}
	}
	if _, err := os.Stat(segPath + segment.QuarantineSuffix); err != nil {
		t.Fatalf("corrupt segment not set aside: %v", err)
	}
}

// TestEvictReloadUnderMmapFailure pins the evict→reload cycle under an
// injected mmap failure: the reload must fall back to the plain-read
// path and serve bit-identical results.
func TestEvictReloadUnderMmapFailure(t *testing.T) {
	p := bfv.ParamsToy()
	inj := fault.New(fault.Config{Seed: "mmapfail", MmapFail: true})
	a := newDurableTenant(t, p, "mm-a", core.EngineSpec{}, 192, 200)
	b := newDurableTenant(t, p, "mm-b", core.EngineSpec{}, 192, 968)
	budget := 2 * int64(len(a.db.Chunks)) * int64(p.N) * 8 // exactly one arena
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{
		DataDir: t.TempDir(), MemBudget: budget, FS: inj.FS(segment.OSFS{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Upload(a.name, a.spec, a.db); err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(b.name, b.spec, b.db); err != nil {
		t.Fatal(err)
	}
	if got := st.ResidentBytes(); got > budget {
		t.Fatalf("budget not enforced: resident %d > %d", got, budget)
	}
	ir, err := st.Search(a.name, a.q) // evicted: reload with mmap failing
	if err != nil {
		t.Fatalf("reload under mmap failure: %v", err)
	}
	assertCandidates(t, "copy-fallback reload", ir.Candidates, a.clientWant)
	ir.Release()
	if inj.Counters()["mmap_fails"] == 0 {
		t.Fatal("reload never attempted (and failed) an mmap")
	}
}

// TestFailedReloadLeavesDBCold hides a cold tenant's segment file, so
// the reload fails with a transient (non-corruption) error: the tenant
// must stay cold and registered — and serve again once the file is
// back. A transient reload failure must not wedge or quarantine.
func TestFailedReloadLeavesDBCold(t *testing.T) {
	p := bfv.ParamsToy()
	dir := t.TempDir()
	a := newDurableTenant(t, p, "cold-a", core.EngineSpec{}, 192, 200)
	b := newDurableTenant(t, p, "cold-b", core.EngineSpec{}, 192, 968)
	budget := 2 * int64(len(a.db.Chunks)) * int64(p.N) * 8
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: dir, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Upload(a.name, a.spec, a.db); err != nil {
		t.Fatal(err)
	}
	if err := st.Upload(b.name, b.spec, b.db); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(dir, segment.FileName(a.name))
	if err := os.Rename(segPath, segPath+".hidden"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Search(a.name, a.q); err == nil {
		t.Fatal("search with missing segment succeeded")
	} else if errors.Is(err, ErrCorruptDB) {
		t.Fatalf("transient reload failure quarantined the db: %v", err)
	}
	for _, info := range st.List() {
		if info.Name == a.name && info.State != StateCold {
			t.Fatalf("failed reload left %q %s, want cold", a.name, info.State)
		}
	}
	if err := os.Rename(segPath+".hidden", segPath); err != nil {
		t.Fatal(err)
	}
	ir, err := st.Search(a.name, a.q)
	if err != nil {
		t.Fatalf("retry after restoring the segment: %v", err)
	}
	assertCandidates(t, "restored reload", ir.Candidates, a.clientWant)
	ir.Release()
}

// gatedFS fails every file write with an injected disk-full while
// armed; everything else (reads, renames, directory ops) works.
type gatedFS struct {
	segment.FS
	fail atomic.Bool
}

func (g *gatedFS) OpenFile(name string, flag int, perm fs.FileMode) (segment.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, g: g}, nil
}

type gatedFile struct {
	segment.File
	g *gatedFS
}

func (f *gatedFile) Write(p []byte) (int, error) {
	if f.g.fail.Load() {
		return 0, fault.ErrNoSpace
	}
	return f.File.Write(p)
}

// TestUploadFailureKeepsServing is the write-path graceful-degradation
// test: when the durable write fails (disk full), the upload is refused
// cleanly — no registry entry, no torn segment, resident and disk never
// skew — and existing tenants keep serving reads. Once space is back,
// uploads work again.
func TestUploadFailureKeepsServing(t *testing.T) {
	p := bfv.ParamsToy()
	gfs := &gatedFS{FS: segment.OSFS{}}
	reg := metrics.NewRegistry()
	st, err := NewStoreWithOptions(p, core.EngineSpec{}, StoreOptions{DataDir: t.TempDir(), FS: gfs, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := newDurableTenant(t, p, "full-a", core.EngineSpec{}, 192, 200)
	b := newDurableTenant(t, p, "full-b", core.EngineSpec{}, 192, 968)
	if err := st.Upload(a.name, a.spec, a.db); err != nil {
		t.Fatal(err)
	}

	gfs.fail.Store(true) // the disk fills up
	if err := st.Upload(b.name, b.spec, b.db); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("upload on full disk: %v, want ErrNoSpace", err)
	}
	if _, err := st.Search(b.name, b.q); err == nil {
		t.Fatal("refused upload left a registry entry")
	}
	ir, err := st.Search(a.name, a.q) // read path unaffected
	if err != nil {
		t.Fatalf("read-only degradation: %v", err)
	}
	assertCandidates(t, "read-only", ir.Candidates, a.clientWant)
	ir.Release()
	if got, _ := metrics.Lookup(reg.Snapshot(), "store_uploads_failed_total"); got != 1 {
		t.Fatalf("store_uploads_failed_total = %d, want 1", got)
	}

	gfs.fail.Store(false) // space freed
	if err := st.Upload(b.name, b.spec, b.db); err != nil {
		t.Fatalf("upload after space freed: %v", err)
	}
	ir, err = st.Search(b.name, b.q)
	if err != nil {
		t.Fatal(err)
	}
	assertCandidates(t, "recovered upload", ir.Candidates, b.clientWant)
	ir.Release()
}

// panicEngine stands in for a hosted engine with a latent bug.
type panicEngine struct{}

func (panicEngine) SearchAndIndex(*core.Query) (*core.IndexResult, error) {
	panic("chaos: injected engine panic")
}
func (panicEngine) Stats() core.Stats { return core.Stats{} }
func (panicEngine) Describe() string  { return "panic" }

// plantPanicDB registers a database whose engine panics on every search.
func plantPanicDB(st *Store, name string) {
	d := &hostedDB{name: name, spec: core.EngineSpec{Kind: core.EngineSerial}, chunks: 1, bitLen: 8, numSegments: 1, engine: panicEngine{}}
	d.loaded.Store(true)
	st.mu.Lock()
	st.dbs[name] = d
	st.mu.Unlock()
}

func startChaosServer(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// TestPanicIsolation drives a panicking engine through both serving
// paths — the direct per-connection handler and the coalesced batch
// executor — and requires a typed MsgServerError reply, a recovered
// counter, and an untouched process: the same connection then serves a
// healthy database.
func TestPanicIsolation(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newDurableTenant(t, p, "healthy", core.EngineSpec{}, 192, 200)
	for _, tc := range []struct {
		name     string
		coalesce CoalesceConfig
	}{
		{"direct", CoalesceConfig{}},
		{"coalesced", CoalesceConfig{Window: 2 * time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, tc.coalesce)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			if err := srv.Store().Upload(tn.name, tn.spec, tn.db); err != nil {
				t.Fatal(err)
			}
			plantPanicDB(srv.Store(), "boom")
			addr := startChaosServer(t, srv)
			conn, err := Dial(addr, p)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			if _, err := conn.Search("boom", tn.q); !errors.Is(err, ErrServerFault) {
				t.Fatalf("panicking search: %v, want ErrServerFault", err)
			}
			got, err := conn.Search(tn.name, tn.q) // same conn still serves
			if err != nil {
				t.Fatalf("healthy search after panic: %v", err)
			}
			assertCandidates(t, "post-panic", got, tn.clientWant)
			if n, _ := metrics.Lookup(srv.Metrics().Snapshot(), "panics_recovered_total"); n == 0 {
				t.Fatal("panic not counted as recovered")
			}
		})
	}
}

// TestShutdownDrainsInFlight parks queries in an open coalescing window
// and shuts the server down: every parked query must still get its
// (correct) reply before connections close, and new connections must be
// refused afterwards.
func TestShutdownDrainsInFlight(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newDurableTenant(t, p, "drained", core.EngineSpec{}, 192, 200)
	srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{Window: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Store().Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	addr := startChaosServer(t, srv)

	const clients = 4
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		conn, err := Dial(addr, p)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := conn.Search(tn.name, tn.q)
			if err == nil && !equalInts(got, tn.clientWant) {
				err = errors.New("drained reply not bit-identical")
			}
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond) // queries are parked in the window
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("in-flight query dropped by shutdown: %v", err)
		}
	}
	// The listener is still accepting, but the server refuses the
	// connection: the first request errors instead of hanging.
	conn, err := Dial(addr, p)
	if err == nil {
		if _, err := conn.Search(tn.name, tn.q); err == nil {
			t.Fatal("post-shutdown request served")
		}
		conn.Close()
	}
}

// TestConnFaultsRetried serves through a fault-injecting listener that
// periodically tears connections mid-message. With retry armed, every
// search must still return the exact ground truth — faults surface as
// retries and reconnects, never as wrong results or client errors.
func TestConnFaultsRetried(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newDurableTenant(t, p, "retried", core.EngineSpec{}, 192, 200)
	srv := NewServer(p)
	defer srv.Close()
	if err := srv.Store().Upload(tn.name, tn.spec, tn.db); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Config{Seed: "connchaos", DropEvery: 23})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(inj.Listener(l)) //nolint:errcheck // returns when the listener closes

	conn, err := Dial(l.Addr().String(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetRetry(RetryPolicy{Max: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: "retry"})
	for i := 0; i < 25; i++ {
		got, err := conn.Search(tn.name, tn.q)
		if err != nil {
			t.Fatalf("search %d under connection faults: %v", i, err)
		}
		assertCandidates(t, "under faults", got, tn.clientWant)
	}
	if inj.Counters()["conn_drops"] == 0 {
		t.Fatal("no connection faults were injected — the test proved nothing")
	}
	if rs := conn.RetryStats(); rs.Retries == 0 {
		t.Fatalf("faults injected but no retries recorded: %+v", rs)
	}
}

// TestSlowLorisReadTimeout sends a partial header and stalls. The
// server's read deadline must reclaim the connection instead of leaking
// a handler goroutine forever.
func TestSlowLorisReadTimeout(t *testing.T) {
	p := bfv.ParamsToy()
	srv := NewServer(p)
	defer srv.Close()
	srv.SetTimeouts(50*time.Millisecond, 50*time.Millisecond)
	addr := startChaosServer(t, srv)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{MsgQuery, 0x01}); err != nil { // 2 of 5 header bytes, then silence
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test guard
	t0 := time.Now()
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-written header")
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("slow-loris connection reclaimed only after %v", d)
	}
	if n, _ := metrics.Lookup(srv.Metrics().Snapshot(), "conns_truncated_total"); n == 0 {
		t.Fatal("truncated connection not counted")
	}
}
