package proto

import (
	"bytes"
	"net"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgQuery, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgQuery || string(payload) != "hello" {
		t.Fatalf("roundtrip: type=%d payload=%q", msgType, payload)
	}
}

func TestMessageLimits(t *testing.T) {
	var buf bytes.Buffer
	// A forged oversized header must be rejected without allocation.
	buf.Write([]byte{MsgQuery, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDBRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p}, rng.NewSourceFromString("proto-db"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 160)
	rng.NewSourceFromString("payload").Bytes(data)
	db, err := client.EncryptDatabase(data, 1280)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDB(EncodeDB(db, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if back.BitLen != db.BitLen || back.NumSegments != db.NumSegments || len(back.Chunks) != len(db.Chunks) {
		t.Fatal("metadata lost")
	}
	r := p.Ring()
	for i := range db.Chunks {
		for c := range db.Chunks[i].C {
			if !r.Equal(back.Chunks[i].C[c], db.Chunks[i].C[c]) {
				t.Fatalf("chunk %d comp %d corrupted", i, c)
			}
		}
	}
}

func TestQueryRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("proto-q"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeQuery(EncodeQuery(q, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if back.YBits != q.YBits || back.AlignBits != q.AlignBits ||
		back.DBBitLen != q.DBBitLen || back.NumChunks != q.NumChunks {
		t.Fatal("query metadata lost")
	}
	if len(back.Residues) != len(q.Residues) || len(back.Patterns) != len(q.Patterns) ||
		len(back.Tokens) != len(q.Tokens) {
		t.Fatal("query structure lost")
	}
	r := p.Ring()
	for psi, ct := range q.Patterns {
		for c := range ct.C {
			if !r.Equal(back.Patterns[psi].C[c], ct.C[c]) {
				t.Fatalf("pattern %d corrupted", psi)
			}
		}
	}
	for res, toks := range q.Tokens {
		for j := range toks {
			if !r.Equal(back.Tokens[res][j], toks[j]) {
				t.Fatalf("token %d/%d corrupted", res, j)
			}
		}
	}
}

func TestResultRoundtrip(t *testing.T) {
	in := []int{0, 16, 1024, 99999}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatal("length lost")
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("values lost")
		}
	}
	empty, err := DecodeResult(EncodeResult(nil))
	if err != nil || len(empty) != 0 {
		t.Fatal("empty result roundtrip failed")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := bfv.ParamsToy()
	client, _ := core.NewClient(core.Config{Params: p}, rng.NewSourceFromString("trunc"))
	data := make([]byte, 16)
	db, _ := client.EncryptDatabase(data, 128)
	enc := EncodeDB(db, p)
	for _, cut := range []int{1, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeDB(enc[:cut], p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestEndToEndOverTCP runs the full two-round protocol over a real socket:
// upload encrypted database, search, receive indices.
func TestEndToEndOverTCP(t *testing.T) {
	p := bfv.ParamsToy()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("tcp"))
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 192)
	rng.NewSourceFromString("tcp-data").Bytes(data)
	query := []byte{0xFE, 0xED, 0xFA, 0xCE}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 200+j, mathutil.GetBit(query, j))
	}

	db, err := client.EncryptDatabase(data, 1536)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(p)
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes

	conn, err := Dial(l.Addr().String(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.UploadDB("corpus", core.EngineSpec{}, db); err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(query, 32, 1536)
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Search("corpus", q)
	if err != nil {
		t.Fatal(err)
	}

	// Must equal the local search result.
	local := core.NewServer(p, db)
	ir, err := local.SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ir.Candidates) {
		t.Fatalf("remote %v != local %v", got, ir.Candidates)
	}
	for i := range got {
		if got[i] != ir.Candidates[i] {
			t.Fatalf("remote %v != local %v", got, ir.Candidates)
		}
	}
	found := false
	for _, c := range got {
		if c == 200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted occurrence at 200 missing from %v", got)
	}

	// Searching without tokens must be rejected client-side.
	q.Tokens = nil
	if _, err := conn.Search("corpus", q); err == nil {
		t.Fatal("tokenless remote search accepted")
	}
}
