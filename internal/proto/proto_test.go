package proto

import (
	"bytes"
	"math"
	"net"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgQuery, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgQuery || string(payload) != "hello" {
		t.Fatalf("roundtrip: type=%d payload=%q", msgType, payload)
	}
}

func TestMessageLimits(t *testing.T) {
	var buf bytes.Buffer
	// A forged oversized header must be rejected without allocation.
	buf.Write([]byte{MsgQuery, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDBRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p}, rng.NewSourceFromString("proto-db"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 160)
	rng.NewSourceFromString("payload").Bytes(data)
	db, err := client.EncryptDatabase(data, 1280)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDB(EncodeDB(db, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if back.BitLen != db.BitLen || back.NumSegments != db.NumSegments || len(back.Chunks) != len(db.Chunks) {
		t.Fatal("metadata lost")
	}
	r := p.Ring()
	for i := range db.Chunks {
		for c := range db.Chunks[i].C {
			if !r.Equal(back.Chunks[i].C[c], db.Chunks[i].C[c]) {
				t.Fatalf("chunk %d comp %d corrupted", i, c)
			}
		}
	}
}

func TestQueryRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("proto-q"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Factored() {
		t.Fatal("PrepareQuery did not produce a factored query")
	}
	back, err := DecodeQuery(EncodeQuery(q, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if back.YBits != q.YBits || back.AlignBits != q.AlignBits ||
		back.DBBitLen != q.DBBitLen || back.NumChunks != q.NumChunks {
		t.Fatal("query metadata lost")
	}
	if len(back.Residues) != len(q.Residues) || len(back.DBTok) != len(q.DBTok) ||
		len(back.RHS) != len(q.RHS) {
		t.Fatal("query structure lost")
	}
	if len(back.Patterns) != 0 {
		t.Fatal("factored encoding shipped pattern ciphertexts")
	}
	r := p.Ring()
	for j := range q.DBTok {
		if !r.Equal(back.DBTok[j], q.DBTok[j]) {
			t.Fatalf("DBTok %d corrupted", j)
		}
	}
	for psi, rhs := range q.RHS {
		if !r.Equal(back.RHS[psi], rhs) {
			t.Fatalf("RHS %d corrupted", psi)
		}
	}
}

// TestLegacyQueryRoundtrip pins the pre-factoring encoding: legacy
// expanded-token queries still encode and decode byte-for-byte as
// before, so old clients keep working.
func TestLegacyQueryRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("proto-q"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareLegacyQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeQuery(EncodeQuery(q, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if back.YBits != q.YBits || back.AlignBits != q.AlignBits ||
		back.DBBitLen != q.DBBitLen || back.NumChunks != q.NumChunks {
		t.Fatal("query metadata lost")
	}
	if len(back.Residues) != len(q.Residues) || len(back.Patterns) != len(q.Patterns) ||
		len(back.Tokens) != len(q.Tokens) || back.Factored() {
		t.Fatal("query structure lost")
	}
	r := p.Ring()
	for psi, ct := range q.Patterns {
		for c := range ct.C {
			if !r.Equal(back.Patterns[psi].C[c], ct.C[c]) {
				t.Fatalf("pattern %d corrupted", psi)
			}
		}
	}
	for res, toks := range q.Tokens {
		for j := range toks {
			if !r.Equal(back.Tokens[res][j], toks[j]) {
				t.Fatalf("token %d/%d corrupted", res, j)
			}
		}
	}
}

func TestResultRoundtrip(t *testing.T) {
	in := []int{0, 16, 1024, 99999, math.MaxUint32}
	enc, err := EncodeResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatal("length lost")
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("values lost")
		}
	}
	encEmpty, err := EncodeResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := DecodeResult(encEmpty)
	if err != nil || len(empty) != 0 {
		t.Fatal("empty result roundtrip failed")
	}
}

// TestEncodeResultRejectsOverflow: offsets past the 4-byte wire encoding
// must fail loudly instead of truncating to the wrong position.
func TestEncodeResultRejectsOverflow(t *testing.T) {
	for _, bad := range [][]int{{math.MaxUint32 + 1}, {-1}, {0, 1 << 40}} {
		if _, err := EncodeResult(bad); err == nil {
			t.Fatalf("EncodeResult(%v) accepted an unrepresentable offset", bad)
		}
	}
	if _, err := EncodeBatchResult([][]int{{0}, {math.MaxUint32 + 1}}); err == nil {
		t.Fatal("EncodeBatchResult accepted an unrepresentable offset")
	}
}

// TestEncodeQueryDeterministic: the same query must encode to the same
// bytes run to run (maps are emitted sorted), including across a
// decode/re-encode cycle — batch dedup and caching key on encodings.
func TestEncodeQueryDeterministic(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch, AlignBits: 1}, rng.NewSourceFromString("det"))
	if err != nil {
		t.Fatal(err)
	}
	// AlignBits 1 yields many residues, patterns and token rows — plenty
	// of map entries whose iteration order could leak.
	q, err := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 1280)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeQuery(q, p)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(EncodeQuery(q, p), enc) {
			t.Fatal("EncodeQuery is not byte-stable across runs")
		}
	}
	back, err := DecodeQuery(enc, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeQuery(back, p), enc) {
		t.Fatal("decode/re-encode changed the byte encoding")
	}
}

// TestBatchQueryRoundtrip: members survive the pooled batch encoding,
// and members sharing pattern content come back sharing pool pointers.
func TestBatchQueryRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("proto-batch"))
	if err != nil {
		t.Fatal(err)
	}
	q1, err := client.PrepareQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := client.PrepareQuery([]byte{0x01, 0x02, 0x03, 0x04}, 32, 1280)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := client.PrepareQuery([]byte{0xAB, 0xCD, 0xEF}, 24, 1280) // same content as q1
	if err != nil {
		t.Fatal(err)
	}
	bq := &core.BatchQuery{Queries: []*core.Query{q1, q2, q3}}
	enc := EncodeNamedBatchQuery("corpus", bq, p)

	// The pool must collapse q3's patterns into q1's: the batch encoding
	// must be well under the cost of shipping all three members whole.
	single := len(EncodeNamedQuery("corpus", q1, p)) + len(EncodeNamedQuery("corpus", q2, p)) + len(EncodeNamedQuery("corpus", q3, p))
	if len(enc) >= single {
		t.Fatalf("batch encoding (%d bytes) saved nothing over %d separate bytes", len(enc), single)
	}

	name, back, err := DecodeNamedBatchQuery(enc, p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "corpus" || len(back.Queries) != 3 {
		t.Fatalf("name %q, %d members", name, len(back.Queries))
	}
	r := p.Ring()
	for mi, q := range bq.Queries {
		got := back.Queries[mi]
		if got.YBits != q.YBits || got.AlignBits != q.AlignBits || got.DBBitLen != q.DBBitLen || got.NumChunks != q.NumChunks {
			t.Fatalf("member %d metadata lost", mi)
		}
		if len(got.DBTok) != len(q.DBTok) || len(got.RHS) != len(q.RHS) {
			t.Fatalf("member %d structure lost", mi)
		}
		for j := range q.DBTok {
			if !r.Equal(got.DBTok[j], q.DBTok[j]) {
				t.Fatalf("member %d DBTok %d corrupted", mi, j)
			}
		}
		for psi, rhs := range q.RHS {
			if !r.Equal(got.RHS[psi], rhs) {
				t.Fatalf("member %d RHS %d corrupted", mi, psi)
			}
		}
	}
	// Every member comes from the same client against the same database,
	// so the deduplicated wire encoding must hand all three the SAME
	// DBTok plane object — one plane on the wire, one chunk stream in
	// the batch kernel.
	for mi := 1; mi < 3; mi++ {
		if &back.Queries[mi].DBTok[0][0] != &back.Queries[0].DBTok[0][0] {
			t.Fatalf("member %d DBTok plane not pool-shared", mi)
		}
	}
	// Duplicate members additionally share their RHS comparands.
	for psi, rhs := range back.Queries[0].RHS {
		if &back.Queries[2].RHS[psi][0] != &rhs[0] {
			t.Fatalf("RHS %d not pool-shared between duplicate members", psi)
		}
	}

	// Batch results round-trip per member.
	resEnc, err := EncodeBatchResult([][]int{{8, 1024}, nil, {0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeBatchResult(resEnc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || len(res[0]) != 2 || res[0][1] != 1024 || len(res[1]) != 0 || res[2][0] != 0 {
		t.Fatalf("batch result round-trip lost data: %v", res)
	}
}

// TestFactoredWireRejectsHostileInput covers the structural checks of
// the versioned factored encodings: unknown versions, DBTok planes that
// disagree with the header chunk count, out-of-range pool references
// and unknown member token kinds must all fail loudly — the fused
// kernels size loops and bitset writes from these fields.
func TestFactoredWireRejectsHostileInput(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("hostile"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0xAB, 0xCD}, 16, 1280)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeQuery(q, p)

	// Future version word (offset 4, right after the sentinel).
	bad := bytes.Clone(enc)
	bad[4] = 99
	if _, err := DecodeQuery(bad, p); err == nil {
		t.Fatal("unknown factored version accepted")
	}

	// DBTok plane shorter than the header's NumChunks: shrink the
	// chunk count field instead of re-deriving offsets.
	mismatched := q.DBTok
	q.DBTok = q.DBTok[:1]
	short := EncodeQuery(q, p)
	q.DBTok = mismatched
	if _, err := DecodeQuery(short, p); err == nil {
		t.Fatal("DBTok plane / NumChunks mismatch accepted")
	}

	// Truncations anywhere in the factored encoding must error.
	for _, cut := range []int{1, 4, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeQuery(enc[:cut], p); err == nil {
			t.Fatalf("factored truncation at %d accepted", cut)
		}
	}

	// Batch: member referencing a DBTok plane / poly pool entry out of
	// range must be rejected. Corrupt the plane-pool reference by
	// encoding a batch and flipping the member's plane index (the last
	// u32 sequence is small; easier to build hostile bytes directly).
	bq := &core.BatchQuery{Queries: []*core.Query{q}}
	benc := EncodeNamedBatchQuery("h", bq, p)
	if _, _, err := DecodeNamedBatchQuery(benc, p); err != nil {
		t.Fatalf("honest batch rejected: %v", err)
	}
	for _, cut := range []int{1, 6, 10, len(benc) / 2, len(benc) - 1} {
		if _, _, err := DecodeNamedBatchQuery(benc[:cut], p); err == nil {
			t.Fatalf("batch truncation at %d accepted", cut)
		}
	}
	// Corrupt every single byte position and require: decode either
	// errors, or the re-encoded canonical form decodes again — no
	// panics, no unchecked pool references, no version skew.
	for i := 0; i < len(benc); i++ {
		mut := bytes.Clone(benc)
		mut[i] ^= 0xFF
		name, got, err := DecodeNamedBatchQuery(mut, p)
		if err != nil {
			continue
		}
		if _, _, err := DecodeNamedBatchQuery(EncodeNamedBatchQuery(name, got, p), p); err != nil {
			t.Fatalf("byte %d: mutated batch decoded but canonical re-encode failed: %v", i, err)
		}
	}
}

// TestLegacyWireSearchesIdentically is the old-client compatibility
// proof at the wire level: a legacy-encoded query, decoded by the new
// server, must search bit-identically to the factored query for the
// same pattern.
func TestLegacyWireSearchesIdentically(t *testing.T) {
	p := bfv.ParamsToy()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("legacy-wire"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 192)
	rng.NewSourceFromString("legacy-wire-data").Bytes(data)
	pattern := []byte{0xFE, 0xED, 0xFA, 0xCE}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 200+j, mathutil.GetBit(pattern, j))
	}
	db, err := client.EncryptDatabase(data, 1536)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := client.PrepareQuery(pattern, 32, 1536)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := client.PrepareLegacyQuery(pattern, 32, 1536)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy wire bytes decode to a legacy (unfactored) query…
	decoded, err := DecodeQuery(EncodeQuery(lq, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Factored() {
		t.Fatal("legacy encoding decoded as factored")
	}
	// …and the factored encoding is at least 2× smaller on the wire.
	if lb, fb := len(EncodeQuery(lq, p)), len(EncodeQuery(fq, p)); fb*2 > lb {
		t.Fatalf("factored encoding %d bytes, legacy %d — want ≥2× shrink", fb, lb)
	}
	srv := core.NewServer(p, db)
	want, err := srv.SearchAndIndex(fq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.SearchAndIndex(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Candidates) == 0 || !intsEqualProto(got.Candidates, want.Candidates) {
		t.Fatalf("legacy wire query candidates %v != factored %v", got.Candidates, want.Candidates)
	}
	for res, wbm := range want.Hits {
		if gbm := got.Hits[res]; gbm == nil || !gbm.Equal(wbm) {
			t.Fatalf("residue %d: legacy wire bitmap differs from factored", res)
		}
	}
}

func intsEqualProto(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := bfv.ParamsToy()
	client, _ := core.NewClient(core.Config{Params: p}, rng.NewSourceFromString("trunc"))
	data := make([]byte, 16)
	db, _ := client.EncryptDatabase(data, 128)
	enc := EncodeDB(db, p)
	for _, cut := range []int{1, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeDB(enc[:cut], p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestEndToEndOverTCP runs the full two-round protocol over a real socket:
// upload encrypted database, search, receive indices.
func TestEndToEndOverTCP(t *testing.T) {
	p := bfv.ParamsToy()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("tcp"))
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 192)
	rng.NewSourceFromString("tcp-data").Bytes(data)
	query := []byte{0xFE, 0xED, 0xFA, 0xCE}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 200+j, mathutil.GetBit(query, j))
	}

	db, err := client.EncryptDatabase(data, 1536)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServer(p)
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes

	conn, err := Dial(l.Addr().String(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.UploadDB("corpus", core.EngineSpec{}, db); err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(query, 32, 1536)
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Search("corpus", q)
	if err != nil {
		t.Fatal(err)
	}

	// Must equal the local search result.
	local := core.NewServer(p, db)
	ir, err := local.SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ir.Candidates) {
		t.Fatalf("remote %v != local %v", got, ir.Candidates)
	}
	for i := range got {
		if got[i] != ir.Candidates[i] {
			t.Fatalf("remote %v != local %v", got, ir.Candidates)
		}
	}
	found := false
	for _, c := range got {
		if c == 200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted occurrence at 200 missing from %v", got)
	}

	// Searching without tokens (either representation) must be rejected
	// client-side.
	q.Tokens, q.DBTok, q.RHS = nil, nil, nil
	if _, err := conn.Search("corpus", q); err == nil {
		t.Fatal("tokenless remote search accepted")
	}
}

// TestBatchSearchOverTCP runs a batched multi-query search over a real
// socket and checks every member against its local sequential result.
func TestBatchSearchOverTCP(t *testing.T) {
	p := bfv.ParamsToy()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("tcp-batch"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 192)
	rng.NewSourceFromString("tcp-batch-data").Bytes(data)
	patterns := [][]byte{
		{0xFE, 0xED, 0xFA, 0xCE},
		{0x10, 0x20, 0x30, 0x40},
		{0xFE, 0xED, 0xFA, 0xCE}, // duplicate: exercises the wire pattern pool
	}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 200+j, mathutil.GetBit(patterns[0], j))
		mathutil.SetBit(data, 512+j, mathutil.GetBit(patterns[1], j))
	}
	db, err := client.EncryptDatabase(data, 1536)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := NewServerWithSpec(p, core.EngineSpec{Kind: core.EnginePool, Workers: 2})
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes
	defer srv.Store().Close()

	conn, err := Dial(l.Addr().String(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.UploadDB("corpus", core.EngineSpec{}, db); err != nil {
		t.Fatal(err)
	}
	queries := make([]*core.Query, len(patterns))
	for i, pat := range patterns {
		if queries[i], err = client.PrepareQuery(pat, 32, 1536); err != nil {
			t.Fatal(err)
		}
	}
	results, err := conn.SearchBatch("corpus", queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	local := core.NewServer(p, db)
	for i, q := range queries {
		ir, err := local.SearchAndIndex(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(results[i]) != len(ir.Candidates) {
			t.Fatalf("member %d: remote %v != local %v", i, results[i], ir.Candidates)
		}
		for j := range results[i] {
			if results[i][j] != ir.Candidates[j] {
				t.Fatalf("member %d: remote %v != local %v", i, results[i], ir.Candidates)
			}
		}
	}
	// The batch must have counted every member in the listing stats.
	infos, err := conn.ListDBs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Searches != len(queries) {
		t.Fatalf("listing %+v: want %d searches", infos, len(queries))
	}

	// A tokenless member must be rejected client-side.
	queries[1].Tokens, queries[1].DBTok, queries[1].RHS = nil, nil, nil
	if _, err := conn.SearchBatch("corpus", queries); err == nil {
		t.Fatal("tokenless batch member accepted")
	}
}
