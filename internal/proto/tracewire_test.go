package proto

import (
	"bytes"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/trace"
)

func TestTraceExtRoundTrip(t *testing.T) {
	payload := []byte("some query bytes")
	ext := AppendTraceExt(bytes.Clone(payload), 0xDEADBEEFCAFE0123)
	rest, id, ok := PeelTraceExt(ext)
	if !ok {
		t.Fatal("extension not detected")
	}
	if id != 0xDEADBEEFCAFE0123 {
		t.Fatalf("trace ID = %#x", id)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("peeled payload drifted: %q", rest)
	}
}

func TestTraceExtAbsent(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("short"),
		[]byte("a perfectly ordinary query payload with no trailer"),
		bytes.Repeat([]byte{0}, 64),
	} {
		rest, id, ok := PeelTraceExt(payload)
		if ok || id != 0 {
			t.Fatalf("false positive on %q", payload)
		}
		if !bytes.Equal(rest, payload) {
			t.Fatal("unextended payload must come back unchanged")
		}
	}
	// Magic present but bounds invalid: extLen larger than the payload.
	ext := AppendTraceExt([]byte("q"), 7)
	ext[len(ext)-16] = 0xFF // corrupt extLen low byte upward
	if _, _, ok := PeelTraceExt(ext); ok {
		t.Fatal("oversized extLen must be rejected")
	}
	// Corrupted magic: treated as no extension.
	ext2 := AppendTraceExt([]byte("q"), 7)
	ext2[len(ext2)-1] ^= 0x01
	if rest, _, ok := PeelTraceExt(ext2); ok || !bytes.Equal(rest, ext2) {
		t.Fatal("corrupt magic must read as unextended")
	}
	// Version 0 is invalid.
	ext3 := AppendTraceExt([]byte("q"), 7)
	ext3[len(ext3)-12] = 0
	if _, _, ok := PeelTraceExt(ext3); ok {
		t.Fatal("version 0 must be rejected")
	}
}

// TestTraceExtInterop pins the two compatibility directions of the
// extension on a real named-query payload.
func TestTraceExtInterop(t *testing.T) {
	p := bfv.ParamsToy()
	q := fuzzSeedQuery(t, p)
	plain := EncodeNamedQuery("tenant", q, p)

	// New client -> old server: an old server has no PeelTraceExt and
	// decodes the extended payload directly; trailing bytes must be
	// invisible to it.
	extended := AppendTraceExt(bytes.Clone(plain), 42)
	name, got, err := DecodeNamedQuery(extended, p)
	if err != nil {
		t.Fatalf("old-server decode of extended payload: %v", err)
	}
	if name != "tenant" {
		t.Fatalf("name = %q", name)
	}
	if !bytes.Equal(EncodeQuery(got, p), EncodeQuery(q, p)) {
		t.Fatal("query drifted through the extension")
	}
	// The split path (coalesced serving) must also be unaffected after
	// the peel: identical query bytes regardless of tracing.
	rest, id, ok := PeelTraceExt(extended)
	if !ok || id != 42 {
		t.Fatalf("peel failed: ok=%v id=%d", ok, id)
	}
	splitName, raw, err := SplitNamedQuery(rest)
	if err != nil {
		t.Fatal(err)
	}
	_, rawPlain, _ := SplitNamedQuery(plain)
	if splitName != "tenant" || !bytes.Equal(raw, rawPlain) {
		t.Fatal("peeled split differs from untraced split — coalescer dedup would break")
	}

	// Old client -> new server: no extension, payload passes through
	// untouched and the server assigns its own ID.
	rest2, _, ok2 := PeelTraceExt(plain)
	if ok2 || !bytes.Equal(rest2, plain) {
		t.Fatal("plain payload must survive the peel unchanged")
	}
	// A future extension version still yields the leading trace ID.
	future := AppendTraceExt(bytes.Clone(plain), 99)
	future[len(future)-12] = 7
	if _, id, ok := PeelTraceExt(future); !ok || id != 99 {
		t.Fatalf("future version peel: ok=%v id=%d", ok, id)
	}
}

func TestTraceDumpRequestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		max  int
		slow bool
	}{{0, false}, {10, true}, {1 << 20, false}} {
		max, slow, err := DecodeTraceDump(EncodeTraceDump(tc.max, tc.slow))
		if err != nil {
			t.Fatal(err)
		}
		if max != tc.max || slow != tc.slow {
			t.Fatalf("round trip drifted: %+v -> (%d, %v)", tc, max, slow)
		}
	}
	if _, _, err := DecodeTraceDump([]byte{1, 2}); err == nil {
		t.Fatal("truncated request must error")
	}
}

func TestTraceDumpResultRoundTrip(t *testing.T) {
	in := []trace.Trace{
		{
			ID: 7, Seq: 1, Tenant: "db-a", Start: 1700000000000000000,
			TotalNS: 2_500_000, ChunkStreams: 4, HomAdds: 512, Batch: 3,
			Flags: trace.FlagCoalesced | trace.FlagClientID,
		},
		{ID: 8, Seq: 2, Tenant: "db-b", Flags: trace.FlagError | trace.FlagRejected},
	}
	in[0].Stamp(trace.StageCoalesceWait, 400_000)
	in[0].Stamp(trace.StageArena, 2_000_000)
	out, err := DecodeTraceDumpResult(EncodeTraceDumpResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("trace %d drifted:\n in=%+v\nout=%+v", i, in[i], out[i])
		}
	}
	if got, err := DecodeTraceDumpResult(EncodeTraceDumpResult(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty dump: %v %v", got, err)
	}
}

func FuzzPeelTraceExt(f *testing.F) {
	p := bfv.ParamsToy()
	plain := EncodeNamedQuery("corpus", fuzzSeedQuery(f, p), p)
	addWireSeeds(f, AppendTraceExt(bytes.Clone(plain), 0x0102030405060708))
	addWireSeeds(f, plain)
	f.Fuzz(func(t *testing.T, data []byte) {
		rest, id, ok := PeelTraceExt(data)
		if !ok {
			if !bytes.Equal(rest, data) {
				t.Fatal("no-extension peel must return the payload unchanged")
			}
			return
		}
		// Append/peel must be a fixed point on whatever survived.
		r2, id2, ok2 := PeelTraceExt(AppendTraceExt(bytes.Clone(rest), id))
		if !ok2 || id2 != id || !bytes.Equal(r2, rest) {
			t.Fatal("append->peel is not a fixed point")
		}
	})
}

func FuzzDecodeTraceDumpResult(f *testing.F) {
	seed := []trace.Trace{{ID: 1, Seq: 2, Tenant: "db", TotalNS: 1000, Batch: 1}}
	seed[0].Stamp(trace.StageArena, 900)
	addWireSeeds(f, EncodeTraceDumpResult(seed))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeTraceDumpResult(data)
		if err != nil {
			return
		}
		canonical := EncodeTraceDumpResult(out)
		back, err := DecodeTraceDumpResult(canonical)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if !bytes.Equal(EncodeTraceDumpResult(back), canonical) {
			t.Fatal("encode->decode->encode is not a fixed point")
		}
	})
}
