package proto

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/rng"
)

// coalesceFixture is one tenant with several prepared queries (factored
// and legacy, two distinct patterns) and their serial-engine ground
// truth, for checking that the coalescing path is bit-identical to
// direct search.
type coalesceFixture struct {
	name    string
	db      *core.EncryptedDB
	queries []*core.Query // index-aligned with expect
	expect  [][]int
	labels  []string
}

func newCoalesceFixture(t *testing.T, p bfv.Params, name string) *coalesceFixture {
	t.Helper()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("coalesce-"+name))
	if err != nil {
		t.Fatal(err)
	}
	const dbBytes = 192
	data := make([]byte, dbBytes)
	rng.NewSourceFromString("coalesce-data-" + name).Bytes(data)
	patA := []byte{0xFE, 0xED, 0xFA, 0xCE}
	patB := []byte{0x0D, 0xEF, 0xEC, 0x7A}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 160+j, mathutil.GetBit(patA, j))
		mathutil.SetBit(data, 768+j, mathutil.GetBit(patB, j))
	}
	fx := &coalesceFixture{name: name}
	if fx.db, err = client.EncryptDatabase(data, dbBytes*8); err != nil {
		t.Fatal(err)
	}
	eng := core.NewSerialEngine(p, fx.db)
	add := func(label string, q *core.Query) {
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			t.Fatalf("%s ground truth: %v", label, err)
		}
		if len(ir.Candidates) == 0 {
			t.Fatalf("%s: vacuous fixture", label)
		}
		fx.queries = append(fx.queries, q)
		fx.expect = append(fx.expect, ir.Candidates)
		fx.labels = append(fx.labels, label)
	}
	qa, err := client.PrepareQuery(patA, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	add("factored-A", qa)
	qb, err := client.PrepareQuery(patB, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	add("factored-B", qb)
	la, err := client.PrepareLegacyQuery(patA, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	add("legacy-A", la)
	lb, err := client.PrepareLegacyQuery(patB, 32, dbBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	add("legacy-B", lb)
	return fx
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func statValue(t *testing.T, kvs []metrics.KV, name string) int64 {
	t.Helper()
	v, ok := metrics.Lookup(kvs, name)
	if !ok {
		t.Fatalf("stats snapshot missing %q", name)
	}
	return v
}

// TestCoalesceBitIdentical is the coalescing-correctness headline:
// concurrent single queries routed through the server-side batcher —
// mixed factored and legacy members, two databases, every query shape
// repeated by several simulated users — must return exactly the direct
// Store.Search candidates, and the run must actually coalesce (fewer
// batches than queries, arena passes saved).
func TestCoalesceBitIdentical(t *testing.T) {
	p := bfv.ParamsToy()
	fixtures := []*coalesceFixture{
		newCoalesceFixture(t, p, "alpha"),
		newCoalesceFixture(t, p, "beta"),
	}
	srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{
		Window:   500 * time.Millisecond,
		MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startServer(t, srv)

	up, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	for _, fx := range fixtures {
		if err := up.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
			t.Fatalf("upload %s: %v", fx.name, err)
		}
	}

	// 2 databases × 4 query shapes × 3 users, all released together so
	// they land inside one batching window per database.
	const users = 3
	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, len(fixtures)*4*users)
	for _, fx := range fixtures {
		for qi := range fx.queries {
			for u := 0; u < users; u++ {
				wg.Add(1)
				go func(fx *coalesceFixture, qi int) {
					defer wg.Done()
					conn, err := Dial(addr, p)
					if err != nil {
						errCh <- err
						return
					}
					defer conn.Close()
					<-start
					got, err := conn.Search(fx.name, fx.queries[qi])
					if err != nil {
						errCh <- fmt.Errorf("%s/%s: %v", fx.name, fx.labels[qi], err)
						return
					}
					if !equalInts(got, fx.expect[qi]) {
						errCh <- fmt.Errorf("%s/%s: coalesced candidates %v != direct %v",
							fx.name, fx.labels[qi], got, fx.expect[qi])
					}
				}(fx, qi)
			}
		}
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	stats, err := up.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	queries := statValue(t, stats, "queries_total")
	batches := statValue(t, stats, "batches_total")
	wantQueries := int64(len(fixtures) * 4 * users)
	if queries != wantQueries {
		t.Fatalf("queries_total = %d, want %d", queries, wantQueries)
	}
	if batches >= queries {
		t.Fatalf("no coalescing: %d batches for %d queries", batches, queries)
	}
	if got := statValue(t, stats, "coalesced_queries_total"); got == 0 {
		t.Fatal("coalesced_queries_total = 0")
	}
	if got := statValue(t, stats, "batch_occupancy_sum"); got != queries {
		t.Fatalf("batch occupancy sum %d != queries %d", got, queries)
	}
	// Same-client queries share DBTok planes, so coalesced batches must
	// stream strictly fewer chunks than one-pass-per-query would.
	numChunks := int64(len(fixtures[0].db.Chunks))
	if streams := statValue(t, stats, "chunk_streams_total"); streams >= queries*numChunks {
		t.Fatalf("chunk_streams_total = %d, not below the unbatched baseline %d",
			streams, queries*numChunks)
	}
	if saved := statValue(t, stats, "chunk_streams_saved_total"); saved == 0 {
		t.Fatal("chunk_streams_saved_total = 0")
	}
	if got := statValue(t, stats, "queries_failed_total"); got != 0 {
		t.Fatalf("queries_failed_total = %d", got)
	}
}

// TestCoalesceWindowTimeoutRaces hammers the timer path: a short window
// with sequential (self-clocked) clients means most batches fire by
// timeout racing fresh arrivals, repeatedly, while other goroutines keep
// the size trigger busy too. Every reply must stay bit-identical.
// Run with -race, this is the window-race half of the coalescing
// correctness satellite.
func TestCoalesceWindowTimeoutRaces(t *testing.T) {
	p := bfv.ParamsToy()
	fx := newCoalesceFixture(t, p, "races")
	srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{
		Window:   200 * time.Microsecond,
		MaxBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startServer(t, srv)
	up, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if err := up.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
		t.Fatal(err)
	}

	const clients = 6
	const iters = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := Dial(addr, p)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			for k := 0; k < iters; k++ {
				qi := (c + k) % len(fx.queries)
				got, err := conn.Search(fx.name, fx.queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("client %d iter %d: %v", c, k, err)
					return
				}
				if !equalInts(got, fx.expect[qi]) {
					errCh <- fmt.Errorf("client %d iter %d (%s): wrong candidates", c, k, fx.labels[qi])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	stats, err := up.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if got := statValue(t, stats, "queries_total"); got != clients*iters {
		t.Fatalf("queries_total = %d, want %d", got, clients*iters)
	}
}

// TestCoalesceAdmissionControl pins the backpressure contract: with a
// tiny per-database queue cap and a long window, a burst beyond the cap
// is rejected with the typed ErrOverloaded (MsgOverloaded on the wire)
// while the admitted queries still complete with correct results.
func TestCoalesceAdmissionControl(t *testing.T) {
	p := bfv.ParamsToy()
	fx := newCoalesceFixture(t, p, "burst")
	srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{
		Window:   300 * time.Millisecond,
		MaxBatch: 64, // never size-triggers: the queue drains only at window expiry
		MaxQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startServer(t, srv)
	up, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if err := up.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
		t.Fatal(err)
	}

	const burst = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted, rejected int
	errCh := make(chan error, burst)
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Dial(addr, p)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			<-start
			got, err := conn.Search(fx.name, fx.queries[0])
			switch {
			case err == nil:
				if !equalInts(got, fx.expect[0]) {
					errCh <- fmt.Errorf("admitted query returned wrong candidates")
					return
				}
				mu.Lock()
				accepted++
				mu.Unlock()
			case errors.Is(err, ErrOverloaded):
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				errCh <- fmt.Errorf("expected ErrOverloaded or success, got: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if accepted == 0 {
		t.Fatal("no queries admitted")
	}
	if rejected == 0 {
		t.Fatalf("queue cap 2 with a %d-query burst produced no rejections (accepted %d)", burst, accepted)
	}
	stats, err := up.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if got := statValue(t, stats, "queries_rejected_total"); got != int64(rejected) {
		t.Fatalf("queries_rejected_total = %d, clients saw %d", got, rejected)
	}
}

// TestCoalesceBatchErrorIsolation: a query prepared for the wrong
// database geometry sharing a window with healthy queries must fail
// alone — the batch-level validation error degrades to per-member
// searches instead of poisoning the whole window.
func TestCoalesceBatchErrorIsolation(t *testing.T) {
	p := bfv.ParamsToy()
	fx := newCoalesceFixture(t, p, "good")
	// A legacy query claiming the wrong chunk count survives the wire
	// (only factored queries cross-check NumChunks at decode) and fails
	// engine validation inside the batch.
	bad := *fx.queries[2] // legacy-A
	bad.NumChunks++
	srv, err := NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{
		Window:   300 * time.Millisecond,
		MaxBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startServer(t, srv)
	up, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if err := up.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]error, 3)
	candidates := make([][]int, 3)
	queries := []*core.Query{fx.queries[0], &bad, fx.queries[1]}
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Dial(addr, p)
			if err != nil {
				results[i] = err
				return
			}
			defer conn.Close()
			<-start
			candidates[i], results[i] = conn.Search(fx.name, queries[i])
		}(i)
	}
	close(start)
	wg.Wait()
	if results[1] == nil {
		t.Error("mis-shaped query succeeded")
	}
	if results[0] != nil || !equalInts(candidates[0], fx.expect[0]) {
		t.Errorf("healthy member 0 poisoned: err=%v", results[0])
	}
	if results[2] != nil || !equalInts(candidates[2], fx.expect[1]) {
		t.Errorf("healthy member 2 poisoned: err=%v", results[2])
	}
}

// TestAdaptWindow pins the adaptive-window policy against its contract:
// unknown rate waits the full window, dense traffic waits roughly the
// batch fill time, medium traffic waits one inter-arrival, sparse
// traffic fires (almost) immediately.
func TestAdaptWindow(t *testing.T) {
	co := &Coalescer{cfg: CoalesceConfig{Window: 1 * time.Millisecond, MaxBatch: 16}.withDefaults()}
	maxW := co.cfg.Window
	if got := co.adaptWindow(0); got != maxW {
		t.Fatalf("unknown rate: window %v, want full %v", got, maxW)
	}
	// Dense: 10µs inter-arrival × 15 remaining slots = 150µs < 1ms cap.
	if got := co.adaptWindow(float64(10 * time.Microsecond)); got != 150*time.Microsecond {
		t.Fatalf("dense: window %v, want 150µs", got)
	}
	// Medium: 200µs inter-arrival — filling 16 would take 3ms (> cap),
	// but one partner is worth waiting 200µs for.
	if got := co.adaptWindow(float64(200 * time.Microsecond)); got != 200*time.Microsecond {
		t.Fatalf("medium: window %v, want 200µs", got)
	}
	// Sparse: 10ms inter-arrival — no partner within the cap.
	got := co.adaptWindow(float64(10 * time.Millisecond))
	if got >= maxW/8 {
		t.Fatalf("sparse: window %v, want near-immediate (< %v)", got, maxW/8)
	}
	if got <= 0 {
		t.Fatalf("sparse: window %v must stay positive", got)
	}
}

// TestStatsRoundtrip covers the MsgStats wire encoding.
func TestStatsRoundtrip(t *testing.T) {
	in := []metrics.KV{{Name: "a_total", Value: 1}, {Name: "b_ns", Value: -7}, {Name: "c", Value: 1 << 60}}
	out, err := DecodeStats(EncodeStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeStats([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("forged count accepted")
	}
}
