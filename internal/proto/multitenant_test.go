package proto

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
)

// tenant is one client with its own keys, database and query.
type tenant struct {
	name   string
	spec   core.EngineSpec
	data   []byte
	query  []byte
	db     *core.EncryptedDB
	q      *core.Query
	expect []int // local serial-engine result
}

func newTenant(t *testing.T, p bfv.Params, name string, spec core.EngineSpec, dbBytes, plantAt int) *tenant {
	t.Helper()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("tenant-"+name))
	if err != nil {
		t.Fatal(err)
	}
	tn := &tenant{name: name, spec: spec}
	tn.data = make([]byte, dbBytes)
	rng.NewSourceFromString("data-" + name).Bytes(tn.data)
	tn.query = []byte{0xFE, 0xED, 0xFA, 0xCE}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(tn.data, plantAt+j, mathutil.GetBit(tn.query, j))
	}
	if tn.db, err = client.EncryptDatabase(tn.data, dbBytes*8); err != nil {
		t.Fatal(err)
	}
	if tn.q, err = client.PrepareQuery(tn.query, 32, dbBytes*8); err != nil {
		t.Fatal(err)
	}
	ir, err := core.NewSerialEngine(p, tn.db).SearchAndIndex(tn.q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Candidates) == 0 {
		t.Fatalf("tenant %s: vacuous fixture", name)
	}
	tn.expect = ir.Candidates
	return tn
}

func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes
	return l.Addr().String()
}

// TestMultiTenantConcurrentSearches is the headline store test: two
// named databases with different engines, hammered by concurrent
// clients — including concurrent searches on the same database — must
// each return exactly their tenant's local result.
func TestMultiTenantConcurrentSearches(t *testing.T) {
	p := bfv.ParamsToy()
	tenants := []*tenant{
		newTenant(t, p, "genomes", core.EngineSpec{Kind: core.EnginePool, Workers: 2}, 192, 200),
		newTenant(t, p, "mail", core.EngineSpec{}, 256, 968), // server default engine
	}
	srv := NewServer(p)
	addr := startServer(t, srv)

	up, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	for _, tn := range tenants {
		if err := up.UploadDB(tn.name, tn.spec, tn.db); err != nil {
			t.Fatalf("upload %s: %v", tn.name, err)
		}
	}

	const clientsPerTenant = 4
	const searchesPerClient = 3
	var wg sync.WaitGroup
	errCh := make(chan error, len(tenants)*clientsPerTenant)
	for _, tn := range tenants {
		for i := 0; i < clientsPerTenant; i++ {
			wg.Add(1)
			go func(tn *tenant) {
				defer wg.Done()
				conn, err := Dial(addr, p)
				if err != nil {
					errCh <- err
					return
				}
				defer conn.Close()
				for k := 0; k < searchesPerClient; k++ {
					got, err := conn.Search(tn.name, tn.q)
					if err != nil {
						errCh <- err
						return
					}
					if len(got) != len(tn.expect) {
						errCh <- errMismatch(tn.name, got, tn.expect)
						return
					}
					for j := range got {
						if got[j] != tn.expect[j] {
							errCh <- errMismatch(tn.name, got, tn.expect)
							return
						}
					}
				}
			}(tn)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	infos, err := up.ListDBs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "genomes" || infos[1].Name != "mail" {
		t.Fatalf("listing %+v", infos)
	}
	if !strings.Contains(infos[0].Engine, "pool") {
		t.Errorf("genomes engine = %q, want a pool", infos[0].Engine)
	}
	if infos[1].Engine != core.EngineSerial {
		t.Errorf("mail engine = %q, want server default (serial)", infos[1].Engine)
	}
	wantSearches := clientsPerTenant * searchesPerClient
	for _, in := range infos {
		if in.Searches != wantSearches {
			t.Errorf("%s: %d searches recorded, want %d", in.Name, in.Searches, wantSearches)
		}
	}
}

type mismatchError struct {
	name      string
	got, want []int
}

func errMismatch(name string, got, want []int) error {
	return &mismatchError{name: name, got: got, want: want}
}

func (e *mismatchError) Error() string {
	return "tenant " + e.name + ": remote result differs from local"
}

// TestStoreLifecycle exercises upload/replace/list/drop and the error
// paths through a live connection, which must survive application
// errors.
func TestStoreLifecycle(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newTenant(t, p, "docs", core.EngineSpec{}, 192, 80)
	srv := NewServerWithSpec(p, core.EngineSpec{Kind: core.EnginePool, Workers: 2})
	addr := startServer(t, srv)
	conn, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Errors must not kill the connection.
	if _, err := conn.Search("docs", tn.q); err == nil {
		t.Fatal("search before upload succeeded")
	}
	if err := conn.UploadDB("", core.EngineSpec{}, tn.db); err == nil {
		t.Fatal("empty database name accepted")
	}
	if err := conn.UploadDB("docs", core.EngineSpec{Kind: "warp"}, tn.db); err == nil {
		t.Fatal("unknown engine kind accepted")
	}
	if err := conn.UploadDB("docs", core.EngineSpec{Kind: core.EnginePool, Workers: 1 << 30}, tn.db); err == nil {
		t.Fatal("absurd wire-supplied worker count accepted")
	}
	if err := conn.UploadDB("docs", core.EngineSpec{Kind: core.EngineSerial, Shards: 1 << 30}, tn.db); err == nil {
		t.Fatal("absurd wire-supplied shard count accepted")
	}
	// Individually-legal workers and shards whose product is absurd.
	if err := conn.UploadDB("docs", core.EngineSpec{Kind: core.EnginePool, Workers: 32, Shards: 64}, tn.db); err == nil {
		t.Fatal("workers x shards product over the limit accepted")
	}

	if err := conn.UploadDB("docs", core.EngineSpec{}, tn.db); err != nil {
		t.Fatal(err)
	}
	infos, err := conn.ListDBs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !strings.Contains(infos[0].Engine, "pool(2 workers)") {
		t.Fatalf("default engine spec not applied: %+v", infos)
	}
	if got, err := conn.Search("docs", tn.q); err != nil || len(got) == 0 {
		t.Fatalf("search: %v (%v)", got, err)
	}

	// Replacing a database swaps its engine atomically.
	if err := conn.UploadDB("docs", core.EngineSpec{Kind: core.EngineSerial, Shards: 2}, tn.db); err != nil {
		t.Fatal(err)
	}
	infos, _ = conn.ListDBs()
	if len(infos) != 1 || !strings.Contains(infos[0].Engine, "sharded") {
		t.Fatalf("replacement engine not applied: %+v", infos)
	}

	if err := conn.DropDB("docs"); err != nil {
		t.Fatal(err)
	}
	if err := conn.DropDB("docs"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if _, err := conn.Search("docs", tn.q); err == nil {
		t.Fatal("search after drop succeeded")
	}
	if infos, err = conn.ListDBs(); err != nil || len(infos) != 0 {
		t.Fatalf("listing after drop: %+v (%v)", infos, err)
	}
}

// TestStoreCapacity checks the namespace bound: at MaxStoredDBs, new
// names are refused while replacement and drop-then-upload still work.
func TestStoreCapacity(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newTenant(t, p, "cap", core.EngineSpec{}, 64, 40)
	st := NewStore(p, core.EngineSpec{})
	for i := 0; i < MaxStoredDBs; i++ {
		if err := st.Upload(fmt.Sprintf("db-%d", i), core.EngineSpec{}, tn.db); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Upload("one-too-many", core.EngineSpec{}, tn.db); err == nil {
		t.Fatal("store accepted more than MaxStoredDBs databases")
	}
	if err := st.Upload("db-0", core.EngineSpec{}, tn.db); err != nil {
		t.Fatalf("replacement at capacity refused: %v", err)
	}
	if err := st.Drop("db-1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Upload("one-too-many", core.EngineSpec{}, tn.db); err != nil {
		t.Fatalf("upload after drop refused: %v", err)
	}
}

// TestUploadEnvelopeRoundtrip covers the named-upload and named-query
// wire envelopes.
func TestUploadEnvelopeRoundtrip(t *testing.T) {
	p := bfv.ParamsToy()
	tn := newTenant(t, p, "env", core.EngineSpec{}, 64, 40)
	spec := core.EngineSpec{Kind: core.EnginePool, Workers: 4, Shards: 2}
	name, gotSpec, db, err := DecodeUploadDB(EncodeUploadDB("alpha", spec, tn.db, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "alpha" || gotSpec != spec || len(db.Chunks) != len(tn.db.Chunks) {
		t.Fatalf("upload envelope lost data: %q %+v", name, gotSpec)
	}
	qname, q, err := DecodeNamedQuery(EncodeNamedQuery("beta", tn.q, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if qname != "beta" || q.YBits != tn.q.YBits || len(q.DBTok) != len(tn.q.DBTok) || len(q.RHS) != len(tn.q.RHS) {
		t.Fatal("query envelope lost data")
	}
	infos := []DBInfo{{Name: "a", Engine: "serial", Chunks: 3, BitLen: 3072, Searches: 7}}
	back, err := DecodeDBList(EncodeDBList(infos))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != infos[0] {
		t.Fatalf("listing roundtrip: %+v", back)
	}
}
