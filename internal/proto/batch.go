// Batch wire messages: MsgBatchQuery carries N independent queries
// against one named database in a single request, and MsgBatchResult
// returns the per-member candidate lists. Pattern ciphertexts — by far
// the heaviest part of a query — are deduplicated into a shared pool on
// the wire: each distinct ciphertext travels once and members reference
// it by pool index. Dedup keys are encoded bytes, which is sound because
// the encoders are deterministic (maps are emitted in sorted key order).
// Decoding shares pool entries by pointer, so the server-side batch
// kernels get their pointer-identity sum reuse for free.

package proto

import (
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/ring"
)

// EncodeNamedBatchQuery frames a batch of queries addressed to a named
// database: name, shared pattern pool, then per-member metadata with
// pool references and match tokens.
func EncodeNamedBatchQuery(name string, bq *core.BatchQuery, p bfv.Params) []byte {
	var b buffer
	b.putString(name)
	qb := p.QBytes()

	// Build the pattern pool in first-appearance order (members in input
	// order, phases sorted), so the batch encoding is as deterministic as
	// the single-query one.
	poolIndex := make(map[string]int)
	var pool []string // encoded ciphertexts
	memberRefs := make([]map[int]int, len(bq.Queries))
	for mi, q := range bq.Queries {
		memberRefs[mi] = make(map[int]int, len(q.Patterns))
		for _, psi := range sortedKeys(q.Patterns) {
			var cb buffer
			cb.putCiphertext(q.Patterns[psi], qb)
			key := string(cb.data)
			idx, ok := poolIndex[key]
			if !ok {
				idx = len(pool)
				poolIndex[key] = idx
				pool = append(pool, key)
			}
			memberRefs[mi][psi] = idx
		}
	}
	b.putInt(len(pool))
	for _, enc := range pool {
		b.data = append(b.data, enc...)
	}

	b.putInt(len(bq.Queries))
	for mi, q := range bq.Queries {
		b.putInt(q.YBits)
		b.putInt(q.AlignBits)
		b.putInt(q.DBBitLen)
		b.putInt(q.NumChunks)
		b.putInt(len(q.Residues))
		for _, r := range q.Residues {
			b.putInt(r)
		}
		b.putInt(len(q.Patterns))
		for _, psi := range sortedKeys(q.Patterns) {
			b.putInt(psi)
			b.putInt(memberRefs[mi][psi])
		}
		b.putInt(len(q.Tokens))
		for _, res := range sortedKeys(q.Tokens) {
			toks := q.Tokens[res]
			b.putInt(res)
			b.putInt(len(toks))
			for _, tok := range toks {
				b.putPoly(tok, qb)
			}
		}
	}
	return b.data
}

// DecodeNamedBatchQuery is the inverse of EncodeNamedBatchQuery. Members
// referencing the same pool entry share one *bfv.Ciphertext.
func DecodeNamedBatchQuery(data []byte, p bfv.Params) (string, *core.BatchQuery, error) {
	b := buffer{data: data}
	name, err := b.string()
	if err != nil {
		return "", nil, err
	}
	qb := p.QBytes()
	npool, err := b.count(8) // a ciphertext encodes at least two length words
	if err != nil {
		return "", nil, err
	}
	pool := make([]*bfv.Ciphertext, npool)
	for i := range pool {
		if pool[i], err = b.ciphertext(qb, p.N); err != nil {
			return "", nil, err
		}
	}
	nmem, err := b.count(28) // seven 4-byte words minimum per member
	if err != nil {
		return "", nil, err
	}
	queries := make([]*core.Query, nmem)
	for mi := range queries {
		q := &core.Query{Patterns: map[int]*bfv.Ciphertext{}}
		if q.YBits, err = b.int(); err != nil {
			return "", nil, err
		}
		if q.AlignBits, err = b.int(); err != nil {
			return "", nil, err
		}
		if q.DBBitLen, err = b.int(); err != nil {
			return "", nil, err
		}
		if q.NumChunks, err = b.int(); err != nil {
			return "", nil, err
		}
		nres, err := b.count(4)
		if err != nil {
			return "", nil, err
		}
		q.Residues = make([]int, nres)
		for i := range q.Residues {
			if q.Residues[i], err = b.int(); err != nil {
				return "", nil, err
			}
		}
		npat, err := b.count(8) // psi word + pool-index word
		if err != nil {
			return "", nil, err
		}
		for i := 0; i < npat; i++ {
			psi, err := b.int()
			if err != nil {
				return "", nil, err
			}
			idx, err := b.int()
			if err != nil {
				return "", nil, err
			}
			if idx < 0 || idx >= len(pool) {
				return "", nil, fmt.Errorf("proto: batch member %d references pattern pool entry %d of %d", mi, idx, len(pool))
			}
			q.Patterns[psi] = pool[idx]
		}
		ntok, err := b.count(8) // residue word + token-count word
		if err != nil {
			return "", nil, err
		}
		if ntok > 0 {
			q.Tokens = make(map[int][]ring.Poly, ntok)
		}
		for i := 0; i < ntok; i++ {
			res, err := b.int()
			if err != nil {
				return "", nil, err
			}
			cnt, err := b.count(4)
			if err != nil {
				return "", nil, err
			}
			toks := make([]ring.Poly, cnt)
			for j := range toks {
				if toks[j], err = b.poly(qb, p.N); err != nil {
					return "", nil, err
				}
			}
			q.Tokens[res] = toks
		}
		queries[mi] = q
	}
	bq := &core.BatchQuery{Queries: queries}
	// Patterns are already pointer-shared through the wire pool, but
	// tokens decode per member; canonicalise them so the batch kernel's
	// (pattern, token) class dedup works on wire-decoded batches too.
	bq.DedupTokens()
	return name, bq, nil
}

// EncodeBatchResult serialises per-member candidate offsets, in member
// order. Like EncodeResult, it rejects offsets the 4-byte encoding
// cannot represent.
func EncodeBatchResult(results [][]int) ([]byte, error) {
	var b buffer
	b.putInt(len(results))
	for mi, candidates := range results {
		if err := b.putCandidates(candidates); err != nil {
			return nil, fmt.Errorf("proto: batch member %d: %w", mi, err)
		}
	}
	return b.data, nil
}

// DecodeBatchResult is the inverse of EncodeBatchResult.
func DecodeBatchResult(data []byte) ([][]int, error) {
	b := buffer{data: data}
	n, err := b.count(4) // one count word minimum per member
	if err != nil {
		return nil, err
	}
	out := make([][]int, n)
	for i := range out {
		if out[i], err = b.candidates(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
