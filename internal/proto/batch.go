// Batch wire messages: MsgBatchQuery carries N independent queries
// against one named database in a single request, and MsgBatchResult
// returns the per-member candidate lists. Heavy payload travels through
// shared pools on the wire: pattern ciphertexts (legacy members) and
// token polynomials / DBTok planes (factored members) are deduplicated
// by content — each distinct object travels once and members reference
// it by pool index. Dedup keys are encoded bytes, which is sound
// because the encoders are deterministic (maps are emitted in sorted
// key order). Decoding shares pool entries by pointer, so the
// server-side batch kernels get their pointer-identity reuse for free:
// members prepared by the same client against the same database share
// one DBTok plane on the wire AND one chunk stream in the kernel.

package proto

import (
	"fmt"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/ring"
)

// EncodeNamedBatchQuery frames a batch of queries addressed to a named
// database. Batches whose members are all legacy-encoded keep the
// original (pre-factoring) layout byte for byte; a batch with any
// factored member uses the versioned factored layout, whose poly pool
// dedups DBTok planes and RHS polynomials across members.
func EncodeNamedBatchQuery(name string, bq *core.BatchQuery, p bfv.Params) []byte {
	for _, q := range bq.Queries {
		if q.Factored() {
			return encodeFactoredBatch(name, bq, p)
		}
	}
	return encodeLegacyBatch(name, bq, p)
}

// encodeLegacyBatch is the pre-factoring layout: name, pattern pool,
// then per-member metadata with pool references and inline match
// tokens.
func encodeLegacyBatch(name string, bq *core.BatchQuery, p bfv.Params) []byte {
	var b buffer
	b.putString(name)
	qb := p.QBytes()

	// Build the pattern pool in first-appearance order (members in input
	// order, phases sorted), so the batch encoding is as deterministic as
	// the single-query one.
	poolIndex := make(map[string]int)
	var pool []string // encoded ciphertexts
	memberRefs := make([]map[int]int, len(bq.Queries))
	for mi, q := range bq.Queries {
		memberRefs[mi] = make(map[int]int, len(q.Patterns))
		for _, psi := range sortedKeys(q.Patterns) {
			var cb buffer
			cb.putCiphertext(q.Patterns[psi], qb)
			key := string(cb.data)
			idx, ok := poolIndex[key]
			if !ok {
				idx = len(pool)
				poolIndex[key] = idx
				pool = append(pool, key)
			}
			memberRefs[mi][psi] = idx
		}
	}
	b.putInt(len(pool))
	for _, enc := range pool {
		b.data = append(b.data, enc...)
	}

	b.putInt(len(bq.Queries))
	for mi, q := range bq.Queries {
		b.putInt(q.YBits)
		b.putInt(q.AlignBits)
		b.putInt(q.DBBitLen)
		b.putInt(q.NumChunks)
		b.putInt(len(q.Residues))
		for _, r := range q.Residues {
			b.putInt(r)
		}
		b.putInt(len(q.Patterns))
		for _, psi := range sortedKeys(q.Patterns) {
			b.putInt(psi)
			b.putInt(memberRefs[mi][psi])
		}
		b.putInt(len(q.Tokens))
		for _, res := range sortedKeys(q.Tokens) {
			toks := q.Tokens[res]
			b.putInt(res)
			b.putInt(len(toks))
			for _, tok := range toks {
				b.putPoly(tok, qb)
			}
		}
	}
	return b.data
}

// Member token kinds of the factored batch layout.
const (
	batchTokNone     = 0 // no match tokens (client-decrypt member)
	batchTokLegacy   = 1 // inline expanded Tokens
	batchTokFactored = 2 // DBTok plane index + RHS poly-pool references
)

// encodeFactoredBatch is the versioned layout: name, sentinel, version,
// pattern-ciphertext pool, polynomial pool, DBTok plane pool (index
// lists into the polynomial pool), then members. Factored members
// reference their DBTok plane by pool index — a batch of queries from
// one client against one database ships the plane exactly once.
func encodeFactoredBatch(name string, bq *core.BatchQuery, p bfv.Params) []byte {
	var b buffer
	b.putString(name)
	b.putUint32(factoredSentinel)
	b.putInt(factoredWireVersion)
	qb := p.QBytes()

	// Pattern-ciphertext pool (legacy members of a mixed batch).
	ctIndex := make(map[string]int)
	var ctPool []string
	patternRef := func(ct *bfv.Ciphertext) int {
		var cb buffer
		cb.putCiphertext(ct, qb)
		key := string(cb.data)
		idx, ok := ctIndex[key]
		if !ok {
			idx = len(ctPool)
			ctIndex[key] = idx
			ctPool = append(ctPool, key)
		}
		return idx
	}
	// Polynomial pool (DBTok plane members and RHS comparands).
	polyIndex := make(map[string]int)
	var polyPool []string
	polyRef := func(poly ring.Poly) int {
		var pb buffer
		pb.putPoly(poly, qb)
		key := string(pb.data)
		idx, ok := polyIndex[key]
		if !ok {
			idx = len(polyPool)
			polyIndex[key] = idx
			polyPool = append(polyPool, key)
		}
		return idx
	}
	// DBTok plane pool: a plane is its chunk-ordered poly-index list.
	planeIndex := make(map[string]int)
	var planePool [][]int
	planeRef := func(plane []ring.Poly) int {
		refs := make([]int, len(plane))
		var kb buffer
		for i, poly := range plane {
			refs[i] = polyRef(poly)
			kb.putInt(refs[i])
		}
		key := string(kb.data)
		idx, ok := planeIndex[key]
		if !ok {
			idx = len(planePool)
			planeIndex[key] = idx
			planePool = append(planePool, refs)
		}
		return idx
	}

	// First pass populates the pools in first-appearance order so the
	// encoding is deterministic; member sections are built alongside.
	var members buffer
	for _, q := range bq.Queries {
		members.putInt(q.YBits)
		members.putInt(q.AlignBits)
		members.putInt(q.DBBitLen)
		members.putInt(q.NumChunks)
		members.putInt(len(q.Residues))
		for _, r := range q.Residues {
			members.putInt(r)
		}
		switch {
		case q.Factored():
			// Factored members ship no patterns (the fused kernels run
			// on DBTok/RHS alone), mirroring the single-query encoding.
			members.putInt(0)
			members.putInt(batchTokFactored)
			members.putInt(planeRef(q.DBTok))
			members.putInt(len(q.RHS))
			for _, psi := range sortedKeys(q.RHS) {
				members.putInt(psi)
				members.putInt(polyRef(q.RHS[psi]))
			}
		default:
			members.putInt(len(q.Patterns))
			for _, psi := range sortedKeys(q.Patterns) {
				members.putInt(psi)
				members.putInt(patternRef(q.Patterns[psi]))
			}
			if q.Tokens == nil {
				members.putInt(batchTokNone)
				break
			}
			members.putInt(batchTokLegacy)
			members.putInt(len(q.Tokens))
			for _, res := range sortedKeys(q.Tokens) {
				toks := q.Tokens[res]
				members.putInt(res)
				members.putInt(len(toks))
				for _, tok := range toks {
					members.putPoly(tok, qb)
				}
			}
		}
	}

	b.putInt(len(ctPool))
	for _, enc := range ctPool {
		b.data = append(b.data, enc...)
	}
	b.putInt(len(polyPool))
	for _, enc := range polyPool {
		b.data = append(b.data, enc...)
	}
	b.putInt(len(planePool))
	for _, refs := range planePool {
		b.putInt(len(refs))
		for _, ref := range refs {
			b.putInt(ref)
		}
	}
	b.putInt(len(bq.Queries))
	b.data = append(b.data, members.data...)
	return b.data
}

// DecodeNamedBatchQuery is the inverse of EncodeNamedBatchQuery: it
// accepts both layouts. Members referencing the same pool entry share
// one object — pattern ciphertexts, RHS polynomials and whole DBTok
// planes come back pointer-shared, which is exactly the identity the
// batch kernels key their per-chunk evaluation reuse on.
func DecodeNamedBatchQuery(data []byte, p bfv.Params) (string, *core.BatchQuery, error) {
	b := buffer{data: data}
	name, err := b.string()
	if err != nil {
		return "", nil, err
	}
	mark := b.off
	first, err := b.uint32()
	if err != nil {
		return "", nil, err
	}
	if first == factoredSentinel {
		bq, err := decodeFactoredBatch(&b, p)
		return name, bq, err
	}
	b.off = mark
	bq, err := decodeLegacyBatch(&b, p)
	return name, bq, err
}

func decodeLegacyBatch(b *buffer, p bfv.Params) (*core.BatchQuery, error) {
	qb := p.QBytes()
	npool, err := b.count(8) // a ciphertext encodes at least two length words
	if err != nil {
		return nil, err
	}
	pool := make([]*bfv.Ciphertext, npool)
	for i := range pool {
		if pool[i], err = b.ciphertext(qb, p.N); err != nil {
			return nil, err
		}
	}
	nmem, err := b.count(28) // seven 4-byte words minimum per member
	if err != nil {
		return nil, err
	}
	queries := make([]*core.Query, nmem)
	for mi := range queries {
		q := &core.Query{}
		if q.YBits, err = b.int(); err != nil {
			return nil, err
		}
		if err := decodeQueryHeader(b, q); err != nil {
			return nil, err
		}
		if q.Patterns, err = decodePatternRefs(b, pool, mi); err != nil {
			return nil, err
		}
		if q.Tokens, err = decodeInlineTokens(b, qb, p.N); err != nil {
			return nil, err
		}
		queries[mi] = q
	}
	bq := &core.BatchQuery{Queries: queries}
	// Patterns are already pointer-shared through the wire pool, but
	// tokens decode per member; canonicalise them so the batch kernel's
	// evaluation-class dedup works on wire-decoded batches too.
	bq.DedupTokens()
	return bq, nil
}

// decodeFactoredBatch parses the versioned layout after the sentinel.
func decodeFactoredBatch(b *buffer, p bfv.Params) (*core.BatchQuery, error) {
	version, err := b.int()
	if err != nil {
		return nil, err
	}
	if version != factoredWireVersion {
		return nil, fmt.Errorf("proto: unsupported factored batch version %d", version)
	}
	qb := p.QBytes()
	nct, err := b.count(8)
	if err != nil {
		return nil, err
	}
	ctPool := make([]*bfv.Ciphertext, nct)
	for i := range ctPool {
		if ctPool[i], err = b.ciphertext(qb, p.N); err != nil {
			return nil, err
		}
	}
	npoly, err := b.count(8)
	if err != nil {
		return nil, err
	}
	polyPool := make([]ring.Poly, npoly)
	for i := range polyPool {
		if polyPool[i], err = b.poly(qb, p.N); err != nil {
			return nil, err
		}
	}
	nplane, err := b.count(4)
	if err != nil {
		return nil, err
	}
	planePool := make([][]ring.Poly, nplane)
	for i := range planePool {
		cnt, err := b.count(4)
		if err != nil {
			return nil, err
		}
		plane := make([]ring.Poly, cnt)
		for j := range plane {
			idx, err := b.int()
			if err != nil {
				return nil, err
			}
			if idx < 0 || idx >= len(polyPool) {
				return nil, fmt.Errorf("proto: batch plane %d references poly pool entry %d of %d", i, idx, len(polyPool))
			}
			plane[j] = polyPool[idx]
		}
		planePool[i] = plane
	}
	nmem, err := b.count(28) // seven 4-byte words minimum per member
	if err != nil {
		return nil, err
	}
	queries := make([]*core.Query, nmem)
	for mi := range queries {
		q := &core.Query{}
		if q.YBits, err = b.int(); err != nil {
			return nil, err
		}
		if err := decodeQueryHeader(b, q); err != nil {
			return nil, err
		}
		if q.Patterns, err = decodePatternRefs(b, ctPool, mi); err != nil {
			return nil, err
		}
		kind, err := b.int()
		if err != nil {
			return nil, err
		}
		switch kind {
		case batchTokNone:
		case batchTokLegacy:
			if q.Tokens, err = decodeInlineTokens(b, qb, p.N); err != nil {
				return nil, err
			}
		case batchTokFactored:
			planeIdx, err := b.int()
			if err != nil {
				return nil, err
			}
			if planeIdx < 0 || planeIdx >= len(planePool) {
				return nil, fmt.Errorf("proto: batch member %d references DBTok plane %d of %d", mi, planeIdx, len(planePool))
			}
			plane := planePool[planeIdx]
			if len(plane) != q.NumChunks {
				return nil, fmt.Errorf("proto: batch member %d DBTok plane has %d chunks, header says %d", mi, len(plane), q.NumChunks)
			}
			q.DBTok = plane
			nrhs, err := b.count(8) // psi word + pool-index word
			if err != nil {
				return nil, err
			}
			q.RHS = make(map[int]ring.Poly, nrhs)
			for i := 0; i < nrhs; i++ {
				psi, err := b.int()
				if err != nil {
					return nil, err
				}
				idx, err := b.int()
				if err != nil {
					return nil, err
				}
				if idx < 0 || idx >= len(polyPool) {
					return nil, fmt.Errorf("proto: batch member %d references poly pool entry %d of %d", mi, idx, len(polyPool))
				}
				q.RHS[psi] = polyPool[idx]
			}
		default:
			return nil, fmt.Errorf("proto: batch member %d has unknown token kind %d", mi, kind)
		}
		queries[mi] = q
	}
	bq := &core.BatchQuery{Queries: queries}
	// Factored pools share by pointer already; legacy members of a
	// mixed batch still need their inline tokens canonicalised.
	bq.DedupTokens()
	return bq, nil
}

// EncodeBatchResult serialises per-member candidate offsets, in member
// order. Like EncodeResult, it rejects offsets the 4-byte encoding
// cannot represent.
func EncodeBatchResult(results [][]int) ([]byte, error) {
	var b buffer
	b.putInt(len(results))
	for mi, candidates := range results {
		if err := b.putCandidates(candidates); err != nil {
			return nil, fmt.Errorf("proto: batch member %d: %w", mi, err)
		}
	}
	return b.data, nil
}

// DecodeBatchResult is the inverse of EncodeBatchResult.
func DecodeBatchResult(data []byte) ([][]int, error) {
	b := buffer{data: data}
	n, err := b.count(4) // one count word minimum per member
	if err != nil {
		return nil, err
	}
	out := make([][]int, n)
	for i := range out {
		if out[i], err = b.candidates(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
