package proto

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
)

// Server is the network-facing CIPHERMATCH service: a multi-tenant
// store of named encrypted databases, each behind its own execution
// engine (serial, pool, sharded, or the in-flash simulator). It never
// holds key material; in ModeSeededMatch it only learns the hit
// patterns it returns. Connections are served concurrently and searches
// only take per-database read locks, so tenants never serialise on each
// other.
type Server struct {
	params bfv.Params
	store  *Store
	met    *serverMetrics
	co     *Coalescer // nil = coalescing disabled (every query runs direct)
}

// NewServer creates a server whose databases default to the serial
// engine.
func NewServer(params bfv.Params) *Server {
	return NewServerWithSpec(params, core.EngineSpec{})
}

// NewServerWithSpec creates a server with a default engine spec applied
// to uploads that do not request a specific engine.
func NewServerWithSpec(params bfv.Params, defaultSpec core.EngineSpec) *Server {
	return &Server{params: params, store: NewStore(params, defaultSpec), met: newServerMetrics()}
}

// NewServerWithOptions creates a server over a durable store: uploads
// write through to segment files under opts.DataDir, a restart recovers
// every tenant from the directory, and opts.MemBudget bounds resident
// arenas via LRU eviction.
func NewServerWithOptions(params bfv.Params, defaultSpec core.EngineSpec, opts StoreOptions) (*Server, error) {
	return NewServerWithServing(params, defaultSpec, opts, CoalesceConfig{})
}

// NewServerWithServing creates a server with both store durability and
// the serving layer configured: a non-zero coalesce.Window enables
// server-side adaptive query coalescing — concurrently arriving single
// queries against one database merge into shared batched arena passes —
// with its admission control (per-database queue caps, bounded
// executors, MsgOverloaded backpressure).
func NewServerWithServing(params bfv.Params, defaultSpec core.EngineSpec, opts StoreOptions, coalesce CoalesceConfig) (*Server, error) {
	store, err := NewStoreWithOptions(params, defaultSpec, opts)
	if err != nil {
		return nil, err
	}
	s := &Server{params: params, store: store, met: newServerMetrics()}
	if coalesce.Window > 0 {
		s.co = NewCoalescer(store, params, coalesce, s.met)
	}
	return s, nil
}

// Store exposes the database registry (for embedding the server
// in-process).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the serving-metrics registry (for the /metrics HTTP
// endpoint and tests).
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// Close stops the coalescer (failing stranded queries) and retires the
// store. Call on shutdown after the listener has closed.
func (s *Server) Close() error {
	if s.co != nil {
		s.co.Close()
	}
	return s.store.Close()
}

// Serve accepts connections until the listener closes. Each connection
// may carry any number of requests.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handleConn(conn)
	}
}

// handleConn answers requests until the peer disconnects. Application
// errors (unknown database, malformed query) are reported as MsgError
// and the connection stays usable — one tenant's bad request must not
// tear down a session.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		msgType, payload, err := ReadMessage(conn)
		if err != nil {
			return // EOF or broken peer; nothing to answer
		}
		reply, body, err := s.handleMessage(msgType, payload)
		if err != nil {
			// Admission-control rejections travel typed so clients can
			// distinguish transient overload (retry with backoff) from a
			// request that will never succeed.
			if errors.Is(err, ErrOverloaded) || errors.Is(err, errShutdown) {
				reply, body = MsgOverloaded, []byte(err.Error())
			} else {
				s.met.errorsTotal.Inc()
				reply, body = MsgError, []byte(err.Error())
			}
		}
		if err := WriteMessage(conn, reply, body); err != nil {
			return
		}
	}
}

func (s *Server) handleMessage(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case MsgUploadDB:
		name, spec, db, err := DecodeUploadDB(payload, s.params)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding database: %w", err)
		}
		if err := s.store.Upload(name, spec, db); err != nil {
			return 0, nil, err
		}
		s.met.uploads.Inc()
		return MsgAck, nil, nil
	case MsgQuery:
		s.met.queries.Inc()
		candidates, err := s.searchOne(payload)
		if err != nil {
			if errors.Is(err, ErrOverloaded) || errors.Is(err, errShutdown) {
				return 0, nil, err
			}
			return 0, nil, fmt.Errorf("search: %w", err)
		}
		body, err := EncodeResult(candidates)
		if err != nil {
			return 0, nil, fmt.Errorf("encoding result: %w", err)
		}
		return MsgResult, body, nil
	case MsgBatchQuery:
		name, bq, err := DecodeNamedBatchQuery(payload, s.params)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding batch query: %w", err)
		}
		s.met.batchMembers.Add(int64(len(bq.Queries)))
		irs, err := s.store.SearchBatch(name, bq)
		if err != nil {
			return 0, nil, fmt.Errorf("batch search: %w", err)
		}
		results := make([][]int, len(irs))
		var streamed int64
		for i, ir := range irs {
			results[i] = ir.Candidates
			streamed += ir.Stats.ChunkStreams
			ir.Release() // candidates only; recycle the hit bitmaps
		}
		s.met.chunkStreams.Add(streamed)
		body, err := EncodeBatchResult(results)
		if err != nil {
			return 0, nil, fmt.Errorf("encoding batch result: %w", err)
		}
		return MsgBatchResult, body, nil
	case MsgStats:
		return MsgStatsResult, EncodeStats(s.met.snapshot()), nil
	case MsgListDBs:
		return MsgDBList, EncodeDBList(s.store.List()), nil
	case MsgDropDB:
		name, err := DecodeName(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding name: %w", err)
		}
		if err := s.store.Drop(name); err != nil {
			return 0, nil, err
		}
		return MsgAck, nil, nil
	default:
		return 0, nil, fmt.Errorf("unexpected message type %d", msgType)
	}
}

// searchOne routes a single MsgQuery payload through the coalescer when
// configured, and directly through the store otherwise. The two paths
// return bit-identical candidates; the coalesced one defers the query
// decode into the batching window (identical payloads decode once) and
// shares arena passes with concurrent arrivals.
func (s *Server) searchOne(payload []byte) ([]int, error) {
	if s.co != nil {
		name, raw, err := SplitNamedQuery(payload)
		if err != nil {
			return nil, fmt.Errorf("decoding query: %w", err)
		}
		return s.co.SearchRaw(name, raw)
	}
	name, q, err := DecodeNamedQuery(payload, s.params)
	if err != nil {
		return nil, fmt.Errorf("decoding query: %w", err)
	}
	ir, err := s.store.Search(name, q)
	if err != nil {
		return nil, err
	}
	s.met.chunkStreams.Add(ir.Stats.ChunkStreams)
	candidates := ir.Candidates
	// Only candidates cross the wire; recycle the hit bitmaps so the
	// request loop's bitset storage is reused across searches.
	ir.Release()
	return candidates, nil
}

// Conn is the client side of the protocol. A Conn serialises its own
// request/response pairs; open one Conn per goroutine for parallel
// searches.
type Conn struct {
	params bfv.Params
	mu     sync.Mutex
	conn   net.Conn
}

// Dial connects to a CIPHERMATCH server.
func Dial(addr string, params bfv.Params) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{params: params, conn: c}, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip writes one request and reads its reply.
func (c *Conn) roundTrip(msgType byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.conn, msgType, payload); err != nil {
		return 0, nil, err
	}
	return ReadMessage(c.conn)
}

// UploadDB ships an encrypted database to the server under the given
// name. An empty spec kind lets the server pick its default engine.
func (c *Conn) UploadDB(name string, spec core.EngineSpec, db *core.EncryptedDB) error {
	reply, body, err := c.roundTrip(MsgUploadDB, EncodeUploadDB(name, spec, db, c.params))
	if err != nil {
		return err
	}
	return expectAck(reply, body)
}

// Search runs one remote search against the named database and returns
// the candidate offsets. The query must carry match tokens
// (core.ModeSeededMatch): the server generates the index and only the
// index travels back.
func (c *Conn) Search(name string, q *core.Query) ([]int, error) {
	payload, err := c.PrepareSearch(name, q)
	if err != nil {
		return nil, err
	}
	return c.SearchPrepared(payload)
}

// PrepareSearch pre-encodes one named-query request. Encoding a large
// query is not cheap (the factored wire form carries one polynomial per
// chunk); a client that resends the same query — a load generator, a
// poller — pays it once here and replays the payload with
// SearchPrepared instead of re-encoding per send.
func (c *Conn) PrepareSearch(name string, q *core.Query) ([]byte, error) {
	if !q.HasTokens() {
		return nil, fmt.Errorf("proto: remote search requires match tokens (core.ModeSeededMatch)")
	}
	return EncodeNamedQuery(name, q, c.params), nil
}

// SearchPrepared sends a request payload built by PrepareSearch (on
// this or any Conn to the same server — payloads are connection-
// independent) and decodes the reply like Search.
func (c *Conn) SearchPrepared(payload []byte) ([]int, error) {
	reply, body, err := c.roundTrip(MsgQuery, payload)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgResult:
		return DecodeResult(body)
	case MsgOverloaded:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrOverloaded)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// ServerStats fetches the server's serving-metrics snapshot: flat
// name/value samples (counters, gauges, histogram summaries) — QPS
// inputs, batch occupancy, queue latency, coalesce rate, arena passes
// saved. See DESIGN.md for the catalog.
func (c *Conn) ServerStats() ([]metrics.KV, error) {
	reply, body, err := c.roundTrip(MsgStats, nil)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgStatsResult:
		return DecodeStats(body)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// SearchBatch runs N independent searches against the named database in
// a single round trip and returns per-query candidate offsets in input
// order. The server amortises one pass over the database chunks across
// the whole batch (where its engine supports batching), and pattern
// ciphertexts shared between queries travel and evaluate once — batch a
// burst of concurrent queries against a hot database instead of looping
// over Search. Every query must carry match tokens
// (core.ModeSeededMatch).
func (c *Conn) SearchBatch(name string, queries []*core.Query) ([][]int, error) {
	for i, q := range queries {
		if !q.HasTokens() {
			return nil, fmt.Errorf("proto: batch member %d: remote search requires match tokens (core.ModeSeededMatch)", i)
		}
	}
	// No client-side pointer dedup needed: the wire encoder pools
	// patterns by content.
	bq := &core.BatchQuery{Queries: queries}
	reply, body, err := c.roundTrip(MsgBatchQuery, EncodeNamedBatchQuery(name, bq, c.params))
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgBatchResult:
		results, err := DecodeBatchResult(body)
		if err != nil {
			return nil, err
		}
		if len(results) != len(queries) {
			return nil, fmt.Errorf("proto: server returned %d results for %d queries", len(results), len(queries))
		}
		return results, nil
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// ListDBs returns the server's database listing.
func (c *Conn) ListDBs() ([]DBInfo, error) {
	reply, body, err := c.roundTrip(MsgListDBs, nil)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgDBList:
		return DecodeDBList(body)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// DropDB removes the named database from the server.
func (c *Conn) DropDB(name string) error {
	reply, body, err := c.roundTrip(MsgDropDB, EncodeName(name))
	if err != nil {
		return err
	}
	return expectAck(reply, body)
}

func expectAck(reply byte, body []byte) error {
	switch reply {
	case MsgAck:
		return nil
	case MsgError:
		return fmt.Errorf("proto: server error: %s", body)
	default:
		return fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}
