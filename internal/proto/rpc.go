package proto

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/trace"
)

// Server is the network-facing CIPHERMATCH service: a multi-tenant
// store of named encrypted databases, each behind its own execution
// engine (serial, pool, sharded, or the in-flash simulator). It never
// holds key material; in ModeSeededMatch it only learns the hit
// patterns it returns. Connections are served concurrently and searches
// only take per-database read locks, so tenants never serialise on each
// other.
type Server struct {
	params bfv.Params
	store  *Store
	met    *serverMetrics
	co     *Coalescer      // nil = coalescing disabled (every query runs direct)
	rec    *trace.Recorder // request-lifecycle flight recorder, never nil

	// Per-connection I/O deadlines; zero disables. The read deadline
	// bounds how long an idle or slow-loris peer may hold a connection
	// between requests; the write deadline bounds a peer that stops
	// draining replies. Neither interrupts request execution.
	readTimeout  time.Duration
	writeTimeout time.Duration

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup // one count per in-flight connection
	down   atomic.Bool
}

// NewServer creates a server whose databases default to the serial
// engine.
func NewServer(params bfv.Params) *Server {
	return NewServerWithSpec(params, core.EngineSpec{})
}

// NewServerWithSpec creates a server with a default engine spec applied
// to uploads that do not request a specific engine.
func NewServerWithSpec(params bfv.Params, defaultSpec core.EngineSpec) *Server {
	met := newServerMetrics()
	return &Server{params: params, store: NewStore(params, defaultSpec), met: met,
		rec: newBoundRecorder(met, 0, 0), conns: make(map[net.Conn]struct{})}
}

// DefaultTraceBuf is the default capacity of each trace ring (recent
// and slow).
const DefaultTraceBuf = 4096

// newBoundRecorder builds the server's trace recorder (capacity <= 0
// selects DefaultTraceBuf) bound into the serving-metrics registry.
func newBoundRecorder(met *serverMetrics, capacity int, slow time.Duration) *trace.Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceBuf
	}
	rec := trace.NewRecorder(capacity, slow)
	rec.BindMetrics(met.reg)
	return rec
}

// NewServerWithOptions creates a server over a durable store: uploads
// write through to segment files under opts.DataDir, a restart recovers
// every tenant from the directory, and opts.MemBudget bounds resident
// arenas via LRU eviction.
func NewServerWithOptions(params bfv.Params, defaultSpec core.EngineSpec, opts StoreOptions) (*Server, error) {
	return NewServerWithServing(params, defaultSpec, opts, CoalesceConfig{})
}

// NewServerWithServing creates a server with both store durability and
// the serving layer configured: a non-zero coalesce.Window enables
// server-side adaptive query coalescing — concurrently arriving single
// queries against one database merge into shared batched arena passes —
// with its admission control (per-database queue caps, bounded
// executors, MsgOverloaded backpressure).
func NewServerWithServing(params bfv.Params, defaultSpec core.EngineSpec, opts StoreOptions, coalesce CoalesceConfig) (*Server, error) {
	met := newServerMetrics()
	if opts.Metrics == nil {
		opts.Metrics = met.reg // store_* counters land in /metrics too
	}
	store, err := NewStoreWithOptions(params, defaultSpec, opts)
	if err != nil {
		return nil, err
	}
	s := &Server{params: params, store: store, met: met,
		rec: newBoundRecorder(met, 0, 0), conns: make(map[net.Conn]struct{})}
	if coalesce.Window > 0 {
		s.co = NewCoalescer(store, params, coalesce, s.met)
	}
	return s, nil
}

// SetTracing resizes the trace rings and slow-query threshold (zero
// keeps either default). Call before Serve; traces recorded by the old
// recorder are discarded.
func (s *Server) SetTracing(capacity int, slowThreshold time.Duration) {
	s.rec = newBoundRecorder(s.met, capacity, slowThreshold)
}

// Traces exposes the server's trace recorder (for the /traces HTTP
// endpoints and tests).
func (s *Server) Traces() *trace.Recorder { return s.rec }

// SetTimeouts configures the per-connection read and write deadlines
// applied around each request (zero disables either). Call before
// Serve.
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.readTimeout, s.writeTimeout = read, write
}

// Store exposes the database registry (for embedding the server
// in-process).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the serving-metrics registry (for the /metrics HTTP
// endpoint and tests).
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// Close stops the coalescer (failing stranded queries) and retires the
// store. Call on shutdown after the listener has closed; prefer
// Shutdown, which drains in-flight requests first.
func (s *Server) Close() error {
	if s.co != nil {
		s.co.Close()
	}
	return s.store.Close()
}

// Shutdown drains and stops the server: no new connections are
// admitted, idle connections are unblocked, every request already read
// off a connection — including queries parked in coalescing windows —
// runs to completion and has its reply written, and only then are the
// coalescer and store closed. Close the listener first so Serve stops
// accepting. No accepted query is silently dropped.
func (s *Server) Shutdown() error {
	if !s.down.CompareAndSwap(false, true) {
		return nil
	}
	// Expire reads on every connection: handlers blocked waiting for the
	// *next* request fail out of ReadMessage immediately, while handlers
	// mid-request are untouched (the deadline only gates reads) and
	// still write their reply.
	s.connMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best-effort unblock
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return s.Close()
}

// Serve accepts connections until the listener closes. Each connection
// may carry any number of requests.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		go s.handleConn(conn)
	}
}

// track registers a connection for shutdown draining; false once the
// server is shutting down (the connection must be refused).
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.down.Load() {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.wg.Done()
}

// timedReader wraps a connection for the read-stage measurement: it
// records the wall-clock instant the first byte of the current frame
// arrived, so the read stage covers frame transfer time, not the idle
// wait between a client's requests.
type timedReader struct {
	r     io.Reader
	first time.Time // zero until the first byte since reset
}

func (t *timedReader) reset() { t.first = time.Time{} }

func (t *timedReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 && t.first.IsZero() {
		t.first = time.Now()
	}
	return n, err
}

// tenantHandles are the per-tenant serving-metric handles a connection
// caches (keyed by label value, so a hostile client cycling names
// cannot grow the cache past the hosted set plus "_other"), keeping
// labeled-family lookups off the per-request path.
type tenantHandles struct {
	queries *metrics.Counter
	errors  *metrics.Counter
	latency *metrics.Histogram
}

func (s *Server) tenantHandlesFor(cache map[string]tenantHandles, name string) tenantHandles {
	label := name
	if !s.store.Has(name) {
		label = unknownTenantLabel
	}
	if h, ok := cache[label]; ok {
		return h
	}
	h := tenantHandles{
		queries: s.met.tenantQueries.With(label),
		errors:  s.met.tenantErrors.With(label),
		latency: s.rec.TenantHistogram(label),
	}
	cache[label] = h
	return h
}

// handleConn answers requests until the peer disconnects. Application
// errors (unknown database, malformed query) are reported as MsgError
// and the connection stays usable — one tenant's bad request must not
// tear down a session. A handler panic is confined to the request that
// caused it and answered with MsgServerError; the process, the other
// connections, and even this connection keep serving.
//
// Every MsgQuery gets a lifecycle trace: the Trace value is owned by
// this handler and reused across requests (zero allocations per
// record), stamped here for the read/encode-adjacent/write boundaries
// and inside searchOne/the coalescer for the pipeline stages, then
// sealed into the recorder's rings after the reply hits the socket.
func (s *Server) handleConn(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	tr := &timedReader{r: conn}
	var t trace.Trace
	tenants := make(map[string]tenantHandles)
	for {
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout)) //nolint:errcheck // fails only with the conn
		}
		tr.reset()
		msgType, payload, err := ReadMessage(tr)
		if err != nil {
			if errors.Is(err, ErrConnTruncated) {
				s.met.truncated.Inc()
			}
			return // EOF, deadline, or broken peer; nothing to answer
		}
		traced := msgType == MsgQuery
		var qt *trace.Trace
		if traced {
			t.Reset()
			t.Start = tr.first.UnixNano()
			t.Stamp(trace.StageRead, int64(time.Since(tr.first)))
			qt = &t
		}
		reply, body := s.answer(msgType, payload, qt)
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)) //nolint:errcheck // fails only with the conn
		}
		writeStart := time.Now()
		werr := WriteMessage(conn, reply, body)
		if traced {
			end := time.Now()
			t.Stamp(trace.StageWrite, int64(end.Sub(writeStart)))
			t.TotalNS = int64(end.Sub(tr.first))
			var h tenantHandles
			if t.Tenant != "" {
				h = s.tenantHandlesFor(tenants, t.Tenant)
				h.queries.Inc()
			}
			switch reply {
			case MsgOverloaded:
				t.Flags |= trace.FlagError | trace.FlagRejected
			case MsgError, MsgServerError:
				t.Flags |= trace.FlagError
			}
			if t.Flags&trace.FlagError != 0 && h.errors != nil {
				h.errors.Inc()
			}
			s.rec.Finish(&t, h.latency)
		}
		if werr != nil {
			return
		}
	}
}

// answer runs one request through handleMessage with panic isolation
// and maps errors to their typed wire replies. t is the request's
// lifecycle trace (non-nil only for MsgQuery).
func (s *Server) answer(msgType byte, payload []byte, t *trace.Trace) (reply byte, body []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.met.panics.Inc()
			s.met.errorsTotal.Inc()
			s.met.errorsByType.With("panic").Inc()
			reply, body = MsgServerError, []byte(fmt.Sprintf("recovered panic: %v", r))
		}
	}()
	reply, body, err := s.handleMessage(msgType, payload, t)
	if err != nil {
		switch {
		// Admission-control rejections travel typed so clients can
		// distinguish transient overload (retry with backoff) from a
		// request that will never succeed.
		case errors.Is(err, ErrOverloaded) || errors.Is(err, errShutdown):
			s.met.errorsByType.With("overloaded").Inc()
			reply, body = MsgOverloaded, []byte(err.Error())
		// Server-side faults (quarantined storage, recovered executor
		// panics) travel typed too: the request was fine, the server
		// was not — retryable for read-only requests.
		case errors.Is(err, ErrServerFault):
			s.met.errorsTotal.Inc()
			s.met.errorsByType.With("server_fault").Inc()
			reply, body = MsgServerError, []byte(err.Error())
		default:
			s.met.errorsTotal.Inc()
			s.met.errorsByType.With("error").Inc()
			reply, body = MsgError, []byte(err.Error())
		}
	}
	return reply, body
}

func (s *Server) handleMessage(msgType byte, payload []byte, t *trace.Trace) (byte, []byte, error) {
	switch msgType {
	case MsgUploadDB:
		name, spec, db, err := DecodeUploadDB(payload, s.params)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding database: %w", err)
		}
		if err := s.store.Upload(name, spec, db); err != nil {
			return 0, nil, err
		}
		s.met.uploads.Inc()
		return MsgAck, nil, nil
	case MsgQuery:
		s.met.queries.Inc()
		// Peel the trace extension before any decoding so the coalescer's
		// byte-identical dedup sees the same query bytes from traced and
		// untraced clients alike.
		payload, clientID, hasID := PeelTraceExt(payload)
		if hasID {
			t.ID = clientID
			t.Flags |= trace.FlagClientID
		} else {
			t.ID = s.rec.NextID()
		}
		candidates, err := s.searchOne(payload, t)
		if err != nil {
			if errors.Is(err, ErrOverloaded) || errors.Is(err, errShutdown) {
				return 0, nil, err
			}
			return 0, nil, fmt.Errorf("search: %w", err)
		}
		encodeStart := time.Now()
		body, err := EncodeResult(candidates)
		if err != nil {
			return 0, nil, fmt.Errorf("encoding result: %w", err)
		}
		t.Stamp(trace.StageEncode, int64(time.Since(encodeStart)))
		return MsgResult, body, nil
	case MsgTraceDump:
		max, slowOnly, err := DecodeTraceDump(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding trace dump request: %w", err)
		}
		traces := s.rec.Recent(max)
		if slowOnly {
			traces = s.rec.Slow(max)
		}
		return MsgTraceDumpResult, EncodeTraceDumpResult(traces), nil
	case MsgBatchQuery:
		name, bq, err := DecodeNamedBatchQuery(payload, s.params)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding batch query: %w", err)
		}
		s.met.batchMembers.Add(int64(len(bq.Queries)))
		irs, err := s.store.SearchBatch(name, bq)
		if err != nil {
			return 0, nil, fmt.Errorf("batch search: %w", err)
		}
		results := make([][]int, len(irs))
		var streamed int64
		for i, ir := range irs {
			results[i] = ir.Candidates
			streamed += ir.Stats.ChunkStreams
			ir.Release() // candidates only; recycle the hit bitmaps
		}
		s.met.chunkStreams.Add(streamed)
		body, err := EncodeBatchResult(results)
		if err != nil {
			return 0, nil, fmt.Errorf("encoding batch result: %w", err)
		}
		return MsgBatchResult, body, nil
	case MsgStats:
		return MsgStatsResult, EncodeStats(s.met.snapshot()), nil
	case MsgListDBs:
		return MsgDBList, EncodeDBList(s.store.List()), nil
	case MsgDropDB:
		name, err := DecodeName(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("decoding name: %w", err)
		}
		if err := s.store.Drop(name); err != nil {
			return 0, nil, err
		}
		return MsgAck, nil, nil
	default:
		return 0, nil, fmt.Errorf("unexpected message type %d", msgType)
	}
}

// searchOne routes a single MsgQuery payload through the coalescer when
// configured, and directly through the store otherwise. The two paths
// return bit-identical candidates; the coalesced one defers the query
// decode into the batching window (identical payloads decode once) and
// shares arena passes with concurrent arrivals. Stage stamps land on t
// either here (direct path) or inside the coalescer's executor.
func (s *Server) searchOne(payload []byte, t *trace.Trace) ([]int, error) {
	if s.co != nil {
		splitStart := time.Now()
		name, raw, err := SplitNamedQuery(payload)
		if err != nil {
			return nil, fmt.Errorf("decoding query: %w", err)
		}
		t.Tenant = name
		t.Stamp(trace.StageDecode, int64(time.Since(splitStart)))
		return s.co.SearchRawTraced(name, raw, t)
	}
	decodeStart := time.Now()
	name, q, err := DecodeNamedQuery(payload, s.params)
	if err != nil {
		return nil, fmt.Errorf("decoding query: %w", err)
	}
	t.Tenant = name
	arenaStart := time.Now()
	t.Stamp(trace.StageDecode, int64(arenaStart.Sub(decodeStart)))
	ir, err := s.store.Search(name, q)
	if err != nil {
		return nil, err
	}
	t.Stamp(trace.StageArena, int64(time.Since(arenaStart)))
	t.ChunkStreams = ir.Stats.ChunkStreams
	t.HomAdds = int64(ir.Stats.HomAdds)
	t.Batch = 1
	s.met.chunkStreams.Add(ir.Stats.ChunkStreams)
	candidates := ir.Candidates
	// Only candidates cross the wire; recycle the hit bitmaps so the
	// request loop's bitset storage is reused across searches.
	ir.Release()
	return candidates, nil
}

// RetryPolicy configures client-side retries of read-only requests.
// Queries never mutate server state, so replaying one after an
// ambiguous failure (timeout, dropped connection) is always safe —
// the worst case is the server computing an answer nobody reads.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables.
	Max int
	// BaseDelay is the first backoff step (default 5ms); each retry
	// doubles it up to MaxDelay (default 250ms), with ±50% seeded
	// jitter so synchronized clients do not re-stampede in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Timeout is the per-attempt I/O deadline covering one write+read
	// round trip; 0 leaves the connection's default (no deadline).
	Timeout time.Duration
	// Seed derives the jitter stream; any string, "" included.
	Seed string
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// RetryStats counts a connection's recovery activity.
type RetryStats struct {
	Retries    int64 // replays after MsgOverloaded, timeouts, transport faults
	Reconnects int64 // re-dials after a poisoned connection
}

// Conn is the client side of the protocol. A Conn serialises its own
// request/response pairs; open one Conn per goroutine for parallel
// searches.
type Conn struct {
	params bfv.Params
	addr   string // "" when wrapped around an existing net.Conn
	mu     sync.Mutex
	conn   net.Conn

	retry      RetryPolicy
	jitter     *rng.Source // guarded by mu
	retries    atomic.Int64
	reconnects atomic.Int64

	// Client-side trace correlation: when traceBase is non-zero every
	// query carries the trailing trace extension with ID traceBase+seq,
	// so server-side traces can be joined back to this client's requests.
	traceBase uint64
	traceSeq  atomic.Uint64
}

// EnableTracing turns on end-to-end trace correlation for this
// connection's queries: each Search/SearchPrepared request carries a
// client-generated trace ID (base + per-request sequence) in the
// trailing wire extension. Old servers ignore the extension; new
// servers adopt the ID, visible later in TraceDump and /traces. Pick a
// base that distinguishes this client (e.g. a hash of its name); zero
// disables.
func (c *Conn) EnableTracing(base uint64) {
	c.traceBase = base
}

// NextTraceID returns the trace ID the next traced query will carry.
func (c *Conn) NextTraceID() uint64 {
	return c.traceBase + c.traceSeq.Load() + 1
}

// TraceDump fetches up to max request traces from the server's flight
// recorder (0 = ring capacity), newest first; slowOnly reads the
// slow-query ring instead of the recent one. Servers predating the
// trace protocol answer MsgError, surfaced here as an error.
func (c *Conn) TraceDump(max int, slowOnly bool) ([]trace.Trace, error) {
	reply, body, err := c.retryRoundTrip(MsgTraceDump, EncodeTraceDump(max, slowOnly))
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgTraceDumpResult:
		return DecodeTraceDumpResult(body)
	case MsgServerError:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// Dial connects to a CIPHERMATCH server.
func Dial(addr string, params bfv.Params) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{params: params, addr: addr, conn: c}, nil
}

// NewConn wraps an established connection (a test pipe, a tunnel).
// Without a dial address, retries can still replay after MsgOverloaded
// but cannot reconnect after transport faults.
func NewConn(conn net.Conn, params bfv.Params) *Conn {
	return &Conn{params: params, conn: conn}
}

// SetRetry enables retry-with-backoff on this connection's read-only
// requests (Search, SearchPrepared, SearchBatch, ListDBs, ServerStats):
// MsgOverloaded replies, per-attempt deadline expiry and transient
// transport errors (truncated or reset connections) are retried up to
// policy.Max times with exponential backoff and seeded jitter,
// re-dialing when the transport is poisoned. Mutating requests
// (UploadDB, DropDB) are never retried.
func (c *Conn) SetRetry(policy RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = policy.withDefaults()
	c.jitter = rng.NewSourceFromString("proto-retry/" + policy.Seed)
}

// RetryStats reports how many retries and reconnects this connection
// has performed.
func (c *Conn) RetryStats() RetryStats {
	return RetryStats{Retries: c.retries.Load(), Reconnects: c.reconnects.Load()}
}

// Close closes the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip writes one request and reads its reply, applying the
// per-attempt deadline when a retry policy sets one.
func (c *Conn) roundTrip(msgType byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retry.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.retry.Timeout)) //nolint:errcheck // fails only with the conn
		defer c.conn.SetDeadline(time.Time{})               //nolint:errcheck // fails only with the conn
	}
	if err := WriteMessage(c.conn, msgType, payload); err != nil {
		return 0, nil, err
	}
	return ReadMessage(c.conn)
}

// transientErr reports whether a round-trip error is worth a retry on a
// fresh connection: the request may never have reached the server, or
// the reply was lost — either way a read-only request can replay.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrConnTruncated) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error // deadline expiry and transport-level op errors
	return errors.As(err, &ne)
}

// reconnect replaces a poisoned connection (mid-message failure leaves
// the request/reply stream desynchronized) with a fresh dial.
func (c *Conn) reconnect() error {
	if c.addr == "" {
		return fmt.Errorf("proto: cannot reconnect a wrapped connection")
	}
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.conn.Close() //nolint:errcheck // replacing a poisoned connection
	c.conn = nc
	c.mu.Unlock()
	c.reconnects.Add(1)
	return nil
}

// backoff returns the jittered exponential delay before retry attempt
// (0-based).
func (c *Conn) backoff(attempt int) time.Duration {
	d := c.retry.BaseDelay
	if attempt > 0 && attempt < 32 && bits.LeadingZeros64(uint64(d))+attempt < 64 {
		d <<= attempt
	}
	if d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	c.mu.Lock()
	f := 0.5 + c.jitter.Float64() // ±50% jitter
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// retryRoundTrip is roundTrip with the connection's retry policy:
// MsgOverloaded replies and transient transport errors back off and
// replay; anything else — including MsgError and MsgServerError, which
// prove the server handled the request — returns to the caller. Only
// read-only requests may use it.
func (c *Conn) retryRoundTrip(msgType byte, payload []byte) (byte, []byte, error) {
	for attempt := 0; ; attempt++ {
		reply, body, err := c.roundTrip(msgType, payload)
		retryable := (err == nil && reply == MsgOverloaded) || transientErr(err)
		if !retryable || attempt >= c.retry.Max {
			return reply, body, err
		}
		if err != nil {
			// The stream may hold half a message: only a fresh
			// connection can carry the replay.
			if rerr := c.reconnect(); rerr != nil {
				return reply, body, err
			}
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(attempt))
	}
}

// UploadDB ships an encrypted database to the server under the given
// name. An empty spec kind lets the server pick its default engine.
func (c *Conn) UploadDB(name string, spec core.EngineSpec, db *core.EncryptedDB) error {
	reply, body, err := c.roundTrip(MsgUploadDB, EncodeUploadDB(name, spec, db, c.params))
	if err != nil {
		return err
	}
	return expectAck(reply, body)
}

// Search runs one remote search against the named database and returns
// the candidate offsets. The query must carry match tokens
// (core.ModeSeededMatch): the server generates the index and only the
// index travels back.
func (c *Conn) Search(name string, q *core.Query) ([]int, error) {
	payload, err := c.PrepareSearch(name, q)
	if err != nil {
		return nil, err
	}
	return c.SearchPrepared(payload)
}

// PrepareSearch pre-encodes one named-query request. Encoding a large
// query is not cheap (the factored wire form carries one polynomial per
// chunk); a client that resends the same query — a load generator, a
// poller — pays it once here and replays the payload with
// SearchPrepared instead of re-encoding per send.
func (c *Conn) PrepareSearch(name string, q *core.Query) ([]byte, error) {
	if !q.HasTokens() {
		return nil, fmt.Errorf("proto: remote search requires match tokens (core.ModeSeededMatch)")
	}
	return EncodeNamedQuery(name, q, c.params), nil
}

// SearchPrepared sends a request payload built by PrepareSearch (on
// this or any Conn to the same server — payloads are connection-
// independent) and decodes the reply like Search. With tracing enabled
// the payload is cloned before the extension is appended, so prepared
// payloads shared across connections are never mutated.
func (c *Conn) SearchPrepared(payload []byte) ([]int, error) {
	if c.traceBase != 0 {
		id := c.traceBase + c.traceSeq.Add(1)
		payload = AppendTraceExt(append([]byte(nil), payload...), id)
	}
	reply, body, err := c.retryRoundTrip(MsgQuery, payload)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgResult:
		return DecodeResult(body)
	case MsgOverloaded:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrOverloaded)
	case MsgServerError:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// ServerStats fetches the server's serving-metrics snapshot: flat
// name/value samples (counters, gauges, histogram summaries) — QPS
// inputs, batch occupancy, queue latency, coalesce rate, arena passes
// saved. See DESIGN.md for the catalog.
func (c *Conn) ServerStats() ([]metrics.KV, error) {
	reply, body, err := c.retryRoundTrip(MsgStats, nil)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgStatsResult:
		return DecodeStats(body)
	case MsgServerError:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// SearchBatch runs N independent searches against the named database in
// a single round trip and returns per-query candidate offsets in input
// order. The server amortises one pass over the database chunks across
// the whole batch (where its engine supports batching), and pattern
// ciphertexts shared between queries travel and evaluate once — batch a
// burst of concurrent queries against a hot database instead of looping
// over Search. Every query must carry match tokens
// (core.ModeSeededMatch).
func (c *Conn) SearchBatch(name string, queries []*core.Query) ([][]int, error) {
	for i, q := range queries {
		if !q.HasTokens() {
			return nil, fmt.Errorf("proto: batch member %d: remote search requires match tokens (core.ModeSeededMatch)", i)
		}
	}
	// No client-side pointer dedup needed: the wire encoder pools
	// patterns by content.
	bq := &core.BatchQuery{Queries: queries}
	reply, body, err := c.retryRoundTrip(MsgBatchQuery, EncodeNamedBatchQuery(name, bq, c.params))
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgBatchResult:
		results, err := DecodeBatchResult(body)
		if err != nil {
			return nil, err
		}
		if len(results) != len(queries) {
			return nil, fmt.Errorf("proto: server returned %d results for %d queries", len(results), len(queries))
		}
		return results, nil
	case MsgOverloaded:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrOverloaded)
	case MsgServerError:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// ListDBs returns the server's database listing.
func (c *Conn) ListDBs() ([]DBInfo, error) {
	reply, body, err := c.retryRoundTrip(MsgListDBs, nil)
	if err != nil {
		return nil, err
	}
	switch reply {
	case MsgDBList:
		return DecodeDBList(body)
	case MsgServerError:
		return nil, fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", body)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}

// DropDB removes the named database from the server.
func (c *Conn) DropDB(name string) error {
	reply, body, err := c.roundTrip(MsgDropDB, EncodeName(name))
	if err != nil {
		return err
	}
	return expectAck(reply, body)
}

func expectAck(reply byte, body []byte) error {
	switch reply {
	case MsgAck:
		return nil
	case MsgOverloaded:
		return fmt.Errorf("proto: %s: %w", body, ErrOverloaded)
	case MsgServerError:
		return fmt.Errorf("proto: %s: %w", body, ErrServerFault)
	case MsgError:
		return fmt.Errorf("proto: server error: %s", body)
	default:
		return fmt.Errorf("proto: unexpected reply type %d", reply)
	}
}
