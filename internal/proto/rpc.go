package proto

import (
	"fmt"
	"net"
	"sync"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
)

// Server is the network-facing CIPHERMATCH server: it stores one encrypted
// database per process and answers CM searches. It never holds key
// material; in ModeSeededMatch it only learns the hit pattern it returns.
type Server struct {
	params bfv.Params

	mu   sync.Mutex
	core *core.Server
}

// NewServer creates a server for the given parameters.
func NewServer(params bfv.Params) *Server {
	return &Server{params: params}
}

// Serve accepts connections until the listener closes. Each connection may
// carry any number of requests.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		msgType, payload, err := ReadMessage(conn)
		if err != nil {
			return // EOF or broken peer; nothing to answer
		}
		if err := s.handleMessage(conn, msgType, payload); err != nil {
			_ = WriteMessage(conn, MsgError, []byte(err.Error()))
			return
		}
	}
}

func (s *Server) handleMessage(conn net.Conn, msgType byte, payload []byte) error {
	switch msgType {
	case MsgUploadDB:
		db, err := DecodeDB(payload, s.params)
		if err != nil {
			return fmt.Errorf("decoding database: %w", err)
		}
		s.mu.Lock()
		s.core = core.NewServer(s.params, db)
		s.mu.Unlock()
		return WriteMessage(conn, MsgAck, nil)
	case MsgQuery:
		q, err := DecodeQuery(payload, s.params)
		if err != nil {
			return fmt.Errorf("decoding query: %w", err)
		}
		s.mu.Lock()
		srv := s.core
		s.mu.Unlock()
		if srv == nil {
			return fmt.Errorf("no database uploaded")
		}
		ir, err := srv.SearchAndIndex(q)
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		return WriteMessage(conn, MsgResult, EncodeResult(ir.Candidates))
	default:
		return fmt.Errorf("unexpected message type %d", msgType)
	}
}

// Conn is the client side of the protocol.
type Conn struct {
	params bfv.Params
	conn   net.Conn
}

// Dial connects to a CIPHERMATCH server.
func Dial(addr string, params bfv.Params) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{params: params, conn: c}, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// UploadDB ships the encrypted database to the server.
func (c *Conn) UploadDB(db *core.EncryptedDB) error {
	if err := WriteMessage(c.conn, MsgUploadDB, EncodeDB(db, c.params)); err != nil {
		return err
	}
	return c.expectAck()
}

// Search runs one remote search and returns the candidate offsets. The
// query must carry match tokens (core.ModeSeededMatch): the server
// generates the index and only the index travels back.
func (c *Conn) Search(q *core.Query) ([]int, error) {
	if q.Tokens == nil {
		return nil, fmt.Errorf("proto: remote search requires match tokens (core.ModeSeededMatch)")
	}
	if err := WriteMessage(c.conn, MsgQuery, EncodeQuery(q, c.params)); err != nil {
		return nil, err
	}
	msgType, payload, err := ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case MsgResult:
		return DecodeResult(payload)
	case MsgError:
		return nil, fmt.Errorf("proto: server error: %s", payload)
	default:
		return nil, fmt.Errorf("proto: unexpected reply type %d", msgType)
	}
}

func (c *Conn) expectAck() error {
	msgType, payload, err := ReadMessage(c.conn)
	if err != nil {
		return err
	}
	switch msgType {
	case MsgAck:
		return nil
	case MsgError:
		return fmt.Errorf("proto: server error: %s", payload)
	default:
		return fmt.Errorf("proto: unexpected reply type %d", msgType)
	}
}
