package proto

import (
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/trace"
)

// TestTracingEndToEnd drives traced queries through a real socket on
// both serving paths (direct and coalesced) and checks the full
// observability loop: client trace IDs survive the wire, server-side
// stage stamps land, the flight recorder serves them back over
// MsgTraceDump, per-tenant labeled metrics accumulate, and traced
// results stay bit-identical to untraced ones.
func TestTracingEndToEnd(t *testing.T) {
	p := bfv.ParamsToy()
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{{"direct", false}, {"coalesced", true}} {
		t.Run(mode.name, func(t *testing.T) {
			fx := newCoalesceFixture(t, p, "trace-"+mode.name)
			var srv *Server
			if mode.coalesce {
				var err error
				srv, err = NewServerWithServing(p, core.EngineSpec{}, StoreOptions{}, CoalesceConfig{
					Window:   2 * time.Millisecond,
					MaxBatch: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				srv = NewServerWithSpec(p, core.EngineSpec{})
			}
			defer srv.Close()
			// A 1ns slow threshold routes every request into the slow ring
			// too, so both dump flavours can be asserted non-empty.
			srv.SetTracing(64, time.Nanosecond)
			addr := startServer(t, srv)

			traced, err := Dial(addr, p)
			if err != nil {
				t.Fatal(err)
			}
			defer traced.Close()
			const base = uint64(0xAB) << 56
			traced.EnableTracing(base)
			if err := traced.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
				t.Fatal(err)
			}

			plain, err := Dial(addr, p)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()

			for qi, q := range fx.queries {
				got, err := traced.Search(fx.name, q)
				if err != nil {
					t.Fatalf("%s traced: %v", fx.labels[qi], err)
				}
				if !equalInts(got, fx.expect[qi]) {
					t.Fatalf("%s traced candidates %v != direct %v", fx.labels[qi], got, fx.expect[qi])
				}
				// The trace extension must be invisible to results: an
				// untraced client asking the same question gets identical
				// bytes back.
				got2, err := plain.Search(fx.name, q)
				if err != nil {
					t.Fatalf("%s untraced: %v", fx.labels[qi], err)
				}
				if !equalInts(got2, fx.expect[qi]) {
					t.Fatalf("%s untraced candidates %v != direct %v", fx.labels[qi], got2, fx.expect[qi])
				}
			}

			dump, err := traced.TraceDump(0, false)
			if err != nil {
				t.Fatal(err)
			}
			var clientTraced, serverAssigned int
			for _, tr := range dump {
				if tr.Tenant != fx.name {
					t.Fatalf("trace tenant = %q, want %q", tr.Tenant, fx.name)
				}
				if tr.TotalNS <= 0 || tr.StageNS[trace.StageArena] <= 0 {
					t.Fatalf("trace missing stage time: %+v", tr)
				}
				if tr.StageNS[trace.StageDecode] <= 0 {
					t.Fatalf("decode stage not stamped: %+v", tr)
				}
				if tr.ChunkStreams <= 0 || tr.Batch < 1 {
					t.Fatalf("arena attribution missing: %+v", tr)
				}
				// Serial queries each form their own window, so FlagCoalesced
				// (= actually shared a batch) stays clear; the coalescer path
				// shows itself through the coalesce_wait stage instead.
				if mode.coalesce && tr.StageNS[trace.StageCoalesceWait] <= 0 {
					t.Fatalf("coalesced-path trace missing coalesce_wait: %+v", tr)
				}
				if tr.Flags&trace.FlagClientID != 0 {
					clientTraced++
					if tr.ID <= base || tr.ID > base+uint64(len(fx.queries)) {
						t.Fatalf("client trace ID %#x outside minted range", tr.ID)
					}
				} else {
					serverAssigned++
					if tr.ID == 0 {
						t.Fatal("server-assigned trace ID is zero")
					}
				}
			}
			if clientTraced != len(fx.queries) || serverAssigned != len(fx.queries) {
				t.Fatalf("dump split = %d client / %d server, want %d / %d",
					clientTraced, serverAssigned, len(fx.queries), len(fx.queries))
			}

			slow, err := traced.TraceDump(0, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(slow) != len(dump) {
				t.Fatalf("1ns threshold should route all %d traces to the slow ring, got %d",
					len(dump), len(slow))
			}

			// Per-tenant serving telemetry and stage histograms.
			kvs := srv.Metrics().Snapshot()
			wantQ := int64(2 * len(fx.queries))
			if v := statValue(t, kvs, `tenant_queries_total{db="`+fx.name+`"}`); v != wantQ {
				t.Fatalf("tenant_queries_total = %d, want %d", v, wantQ)
			}
			if v := statValue(t, kvs, `stage_latency_ns_count{stage="arena"}`); v != wantQ {
				t.Fatalf("arena stage samples = %d, want %d", v, wantQ)
			}
			if v := statValue(t, kvs, `tenant_latency_ns_count{db="`+fx.name+`"}`); v != wantQ {
				t.Fatalf("tenant latency samples = %d, want %d", v, wantQ)
			}

			// Unknown tenants collapse into the "_other" label (bounded
			// cardinality) and their traces carry the error flag.
			if _, err := traced.Search("no-such-db", fx.queries[0]); err == nil {
				t.Fatal("search against a missing database must fail")
			}
			kvs = srv.Metrics().Snapshot()
			if v := statValue(t, kvs, `tenant_queries_total{db="_other"}`); v != 1 {
				t.Fatalf(`tenant_queries_total{db="_other"} = %d, want 1`, v)
			}
			if v := statValue(t, kvs, `tenant_errors_total{db="_other"}`); v != 1 {
				t.Fatalf(`tenant_errors_total{db="_other"} = %d, want 1`, v)
			}
			dump, err = traced.TraceDump(1, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(dump) != 1 || dump[0].Flags&trace.FlagError == 0 {
				t.Fatalf("newest trace should carry FlagError: %+v", dump)
			}
		})
	}
}

// TestTraceDumpLimitsAndStats checks the dump request's max parameter
// and that the flat MsgStats snapshot carries the labeled trace
// families without disturbing the pre-existing flat names.
func TestTraceDumpLimitsAndStats(t *testing.T) {
	p := bfv.ParamsToy()
	fx := newCoalesceFixture(t, p, "trace-limits")
	srv := NewServerWithSpec(p, core.EngineSpec{})
	defer srv.Close()
	addr := startServer(t, srv)
	conn, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.UploadDB(fx.name, core.EngineSpec{}, fx.db); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := conn.Search(fx.name, fx.queries[0]); err != nil {
			t.Fatal(err)
		}
	}
	dump, err := conn.TraceDump(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != 2 {
		t.Fatalf("TraceDump(2) returned %d traces", len(dump))
	}
	if dump[0].Seq <= dump[1].Seq {
		t.Fatalf("dump must be newest first: seqs %d, %d", dump[0].Seq, dump[1].Seq)
	}
	kvs, err := conn.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if v := statValue(t, kvs, "queries_total"); v != 3 {
		t.Fatalf("queries_total = %d, want 3", v)
	}
	if v := statValue(t, kvs, "request_latency_ns_count"); v != 3 {
		t.Fatalf("request_latency_ns_count = %d, want 3", v)
	}
	if _, ok := metrics.Lookup(kvs, `stage_latency_ns_count{stage="write"}`); !ok {
		t.Fatal("labeled stage families missing from the flat stats snapshot")
	}
}
