package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/segment"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("seed=s1,crash=segment.write.plane0,writeerr=7,shortwrite=5,syncerr=3,mmapfail,bitflip=9,drop=11,stall=13,stalldur=20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: "s1", CrashPoint: segment.CrashWritePlane0,
		WriteErrEvery: 7, ShortWriteEvery: 5, SyncErrEvery: 3,
		MmapFail: true, BitFlipEvery: 9,
		DropEvery: 11, StallEvery: 13, Stall: 20 * time.Millisecond,
	}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	if c, err := ParseConfig("  "); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=-1", "frobnicate=1", "stalldur=0s", "mmapfail=no"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

// TestTriggerDeterminism: same seed, same config, same op sequence ⇒
// identical fault pattern.
func TestTriggerDeterminism(t *testing.T) {
	pattern := func() []int {
		inj := New(Config{Seed: "det", DropEvery: 5})
		var fired []int
		for i := 0; i < 40; i++ {
			if inj.drop.hit() {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := pattern(), pattern()
	if len(a) != 8 {
		t.Fatalf("period 5 over 40 ops fired %d times, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic pattern: %v vs %v", a, b)
		}
	}
}

// testDB builds a small encrypted database + meta for segment writes.
func testDB(t *testing.T) (segment.Meta, *core.EncryptedDB) {
	t.Helper()
	p := bfv.ParamsToy()
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("fault-db"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	rng.NewSourceFromString("fault-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		t.Fatal(err)
	}
	db.Compact()
	meta := segment.Meta{
		Name: "fault-tenant", RingDegree: p.N, Modulus: p.Q,
		Chunks: len(db.Chunks), BitLen: db.BitLen, NumSegments: db.NumSegments,
	}
	return meta, db
}

func TestFSCrashPointKillsFS(t *testing.T) {
	meta, db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, segment.FileName(meta.Name))

	inj := New(Config{Seed: "crash", CrashPoint: segment.CrashWritePlane0})
	fsys := inj.FS(segment.OSFS{})
	err := segment.WriteFS(fsys, path, meta, db)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteFS: %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// The torn tmp file survives (a dead FS cannot clean it up)...
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("torn tmp file missing: %v", err)
	}
	// ...no final segment exists...
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final segment should not exist: %v", err)
	}
	// ...and every further op on the dead FS fails.
	if _, err := fsys.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadDir: %v", err)
	}
	// A fresh FS (the restarted process) prunes the tmp and boots clean.
	d, err := segment.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.Entries()); n != 0 {
		t.Fatalf("recovered %d entries from torn write, want 0", n)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not pruned: %v", err)
	}
}

func TestFSDiskFull(t *testing.T) {
	meta, db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, segment.FileName(meta.Name))

	inj := New(Config{Seed: "enospc", WriteErrEvery: 1})
	err := segment.WriteFS(inj.FS(segment.OSFS{}), path, meta, db)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("WriteFS: %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write must not leave a segment: %v", err)
	}
	if inj.Counters()["write_errors"] == 0 {
		t.Fatal("write_errors counter not incremented")
	}
}

func TestFSShortWriteLeavesTornPrefix(t *testing.T) {
	meta, db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, segment.FileName(meta.Name))

	// Let the header through, then tear a plane write.
	inj := New(Config{Seed: "short", ShortWriteEvery: 2})
	err := segment.WriteFS(inj.FS(segment.OSFS{}), path, meta, db)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("WriteFS: %v, want ErrNoSpace", err)
	}
	// Recovery on the real FS sees no segment (tmp was cleaned up by the
	// still-alive writer) — the store stays consistent.
	d, err := segment.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.Entries()); n != 0 {
		t.Fatalf("recovered %d entries, want 0", n)
	}
}

func TestFSSyncError(t *testing.T) {
	meta, db := testDB(t)
	path := filepath.Join(t.TempDir(), segment.FileName(meta.Name))
	inj := New(Config{Seed: "sync", SyncErrEvery: 1})
	if err := segment.WriteFS(inj.FS(segment.OSFS{}), path, meta, db); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("WriteFS: %v, want ErrSyncFailed", err)
	}
}

func TestFSMmapFailFallsBackToCopy(t *testing.T) {
	meta, db := testDB(t)
	path := filepath.Join(t.TempDir(), segment.FileName(meta.Name))
	if err := segment.Write(path, meta, db); err != nil {
		t.Fatal(err)
	}
	inj := New(Config{Seed: "mmap", MmapFail: true})
	seg, err := segment.OpenFS(inj.FS(segment.OSFS{}), path, meta.RingDegree, meta.Modulus)
	if err != nil {
		t.Fatalf("OpenFS under mmap failure: %v", err)
	}
	defer seg.Close()
	if seg.Mapped() {
		t.Fatal("segment mapped despite injected mmap failure")
	}
	want, err := segment.Open(path, meta.RingDegree, meta.Modulus)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	wa, ga := want.Arena(), seg.Arena()
	if len(wa) != len(ga) {
		t.Fatalf("arena length %d vs %d", len(ga), len(wa))
	}
	for i := range wa {
		if wa[i] != ga[i] {
			t.Fatalf("arena word %d differs: copy-load not bit-identical", i)
		}
	}
	if inj.Counters()["mmap_fails"] == 0 {
		t.Fatal("mmap_fails counter not incremented")
	}
}

func TestFSBitFlipCaughtByChecksum(t *testing.T) {
	meta, db := testDB(t)
	path := filepath.Join(t.TempDir(), segment.FileName(meta.Name))
	if err := segment.Write(path, meta, db); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in every read: whichever read path touches the planes,
	// the CRC verification must reject rather than serve corrupt data.
	inj := New(Config{Seed: "flip", BitFlipEvery: 1})
	seg, err := segment.OpenFS(inj.FS(segment.OSFS{}), path, meta.RingDegree, meta.Modulus)
	if err == nil {
		seg.Close()
		t.Fatal("OpenFS adopted bit-flipped planes")
	}
	if inj.Counters()["bit_flips"] == 0 {
		t.Fatal("bit_flips counter not incremented")
	}
}

func TestBindRegistry(t *testing.T) {
	inj := New(Config{Seed: "bind", WriteErrEvery: 1})
	inj.nWriteErr.inc() // pre-bind fault
	reg := metrics.NewRegistry()
	inj.Bind(reg)
	inj.nWriteErr.inc() // post-bind fault
	if got, ok := metrics.Lookup(reg.Snapshot(), "fault_write_errors_total"); !ok || got != 2 {
		t.Fatalf("fault_write_errors_total = %d (ok=%v), want 2", got, ok)
	}
}

func TestConnDropTearsMessage(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := New(Config{Seed: "drop", DropEvery: 1})
	faulty := inj.Conn(client)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	msg := []byte(strings.Repeat("x", 32))
	n, err := faulty.Write(msg)
	if err == nil {
		t.Fatal("dropped write reported success")
	}
	if n >= len(msg) {
		t.Fatalf("dropped write wrote %d of %d bytes, want a strict prefix", n, len(msg))
	}
	select {
	case b := <-got:
		if len(b) >= len(msg) {
			t.Fatalf("peer received %d bytes, want a torn prefix", len(b))
		}
	case <-time.After(time.Second):
		t.Fatal("peer read did not complete")
	}
	if inj.Counters()["conn_drops"] == 0 {
		t.Fatal("conn_drops counter not incremented")
	}
}

func TestConnStall(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	inj := New(Config{Seed: "stall", StallEvery: 1, Stall: 30 * time.Millisecond})
	faulty := inj.Conn(client)

	go server.Write([]byte("pong")) //nolint:errcheck // test peer
	buf := make([]byte, 4)
	t0 := time.Now()
	if _, err := faulty.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("stalled read returned in %v, want ≥30ms", d)
	}
	if inj.Counters()["conn_stalls"] == 0 {
		t.Fatal("conn_stalls counter not incremented")
	}
}
