package fault

import (
	"errors"
	"fmt"
	"io/fs"

	"ciphermatch/internal/segment"
)

// Typed injected-fault errors. Hardened code must treat them like their
// real counterparts (ENOSPC, EIO, a dead process); tests assert they
// surface as the storage layer's typed errors, never as wrong answers.
var (
	// ErrNoSpace is the injected disk-full write failure.
	ErrNoSpace = errors.New("fault: injected disk full")
	// ErrSyncFailed is the injected fsync failure.
	ErrSyncFailed = errors.New("fault: injected fsync failure")
	// ErrCrashed means the simulated process died at a crash point:
	// every later operation on the same FS fails, so nothing "after the
	// crash" can reach disk. Build a fresh FS to model the restart.
	ErrCrashed = errors.New("fault: simulated crash")
)

// FS wraps a segment.FS with the injector's filesystem faults. All FS
// values derived from one Injector share its counters and crash state.
type FS struct {
	inner segment.FS
	inj   *Injector
}

var _ segment.FS = (*FS)(nil)

// FS wraps inner (usually segment.OSFS{}) with the injector's faults.
func (inj *Injector) FS(inner segment.FS) *FS {
	return &FS{inner: inner, inj: inj}
}

func (inj *Injector) dead() error {
	if inj.crashed.Load() {
		return ErrCrashed
	}
	return nil
}

// OpenFile opens through the inner FS, wrapping the file with write,
// sync and read faults.
func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (segment.File, error) {
	if err := f.inj.dead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{inner: inner, inj: f.inj}, nil
}

// Rename delegates unless crashed.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.inj.dead(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove delegates unless crashed — so a simulated crash preserves the
// torn temporary file a real crash would leave behind.
func (f *FS) Remove(name string) error {
	if err := f.inj.dead(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir delegates unless crashed.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.inj.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// MkdirAll delegates unless crashed.
func (f *FS) MkdirAll(name string, perm fs.FileMode) error {
	if err := f.inj.dead(); err != nil {
		return err
	}
	return f.inner.MkdirAll(name, perm)
}

// SyncDir delegates unless crashed.
func (f *FS) SyncDir(name string) error {
	if err := f.inj.dead(); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// Mmap fails when configured to (MmapFail, or bit flips are armed —
// flips are injected in ReadAt, so loads must take the plain-read
// path for them to be reachable); otherwise it maps through the inner
// FS on the unwrapped file.
func (f *FS) Mmap(file_ segment.File, size int64) ([]byte, error) {
	if err := f.inj.dead(); err != nil {
		return nil, err
	}
	if f.inj.cfg.MmapFail {
		f.inj.nMmapFail.inc()
		return nil, fmt.Errorf("fault: injected mmap failure: %w", errors.ErrUnsupported)
	}
	if f.inj.cfg.BitFlipEvery > 0 {
		return nil, fmt.Errorf("fault: mmap disabled while bit flips armed: %w", errors.ErrUnsupported)
	}
	if w, ok := file_.(*file); ok {
		return f.inner.Mmap(w.inner, size)
	}
	return f.inner.Mmap(file_, size)
}

// Munmap delegates; releasing host resources works even "after death".
func (f *FS) Munmap(b []byte) error { return f.inner.Munmap(b) }

// Crash fires the configured crash point: the step fails and the FS is
// dead from here on. Other points delegate (normally a no-op).
func (f *FS) Crash(point string) error {
	if err := f.inj.dead(); err != nil {
		return err
	}
	if armed := f.inj.crashPoint.Load(); armed != nil && point != "" && point == *armed {
		f.inj.crashed.Store(true)
		f.inj.nCrash.inc()
		return fmt.Errorf("%w at %s", ErrCrashed, point)
	}
	return f.inner.Crash(point)
}

// file wraps a segment.File with write/sync/read faults.
type file struct {
	inner segment.File
	inj   *Injector
}

// Write injects disk-full and short-write failures; a short write
// persists a prefix through the inner file first, leaving the torn
// state a real ENOSPC mid-write leaves.
func (w *file) Write(p []byte) (int, error) {
	if err := w.inj.dead(); err != nil {
		return 0, err
	}
	if w.inj.writeErr.hit() {
		w.inj.nWriteErr.inc()
		return 0, ErrNoSpace
	}
	if w.inj.shortWrite.hit() && len(p) > 1 {
		w.inj.nShortWrite.inc()
		n, err := w.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w after %d of %d bytes", ErrNoSpace, n, len(p))
	}
	return w.inner.Write(p)
}

// ReadAt injects bit flips: every Nth read corrupts one seed-chosen bit
// of the returned buffer — the storage layer's CRCs must catch it.
func (w *file) ReadAt(p []byte, off int64) (int, error) {
	if err := w.inj.dead(); err != nil {
		return 0, err
	}
	n, err := w.inner.ReadAt(p, off)
	if n > 0 && w.inj.bitFlip.hit() {
		k := w.inj.nBitFlip.inc()
		pos := (uint64(k) * w.inj.flipMix) % uint64(n*8)
		p[pos/8] ^= 1 << (pos % 8)
	}
	return n, err
}

// Sync injects fsync failures.
func (w *file) Sync() error {
	if err := w.inj.dead(); err != nil {
		return err
	}
	if w.inj.syncErr.hit() {
		w.inj.nSyncErr.inc()
		return ErrSyncFailed
	}
	return w.inner.Sync()
}

// Stat delegates unless crashed.
func (w *file) Stat() (fs.FileInfo, error) {
	if err := w.inj.dead(); err != nil {
		return nil, err
	}
	return w.inner.Stat()
}

// Close always releases the host file descriptor — a crash kills the
// simulated disk, not the test process's resources.
func (w *file) Close() error {
	err := w.inner.Close()
	if derr := w.inj.dead(); derr != nil {
		return derr
	}
	return err
}
