package fault

import (
	"fmt"
	"net"
	"time"
)

// Listener wraps l so every accepted connection carries the injector's
// connection faults (mid-message drops, stalled reads/writes). Wrap the
// server's listener to chaos-test the serving stack end to end.
func (inj *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// Conn wraps one connection with the injector's connection faults.
// Wrapping a client-side conn simulates a flaky client (slow-loris when
// stalls exceed the server's read deadline); wrapping server-side
// simulates a flaky network under every client at once.
func (inj *Injector) Conn(c net.Conn) net.Conn {
	return &conn{Conn: c, inj: inj}
}

type conn struct {
	net.Conn
	inj *Injector
}

// Read stalls or drops per the injector before delegating. A drop
// closes the connection, so the peer's in-flight message is torn.
func (c *conn) Read(p []byte) (int, error) {
	if c.inj.stall.hit() {
		c.inj.nStall.inc()
		time.Sleep(c.inj.cfg.Stall)
	}
	if c.inj.drop.hit() {
		c.inj.nDrop.inc()
		c.Conn.Close()
		return 0, fmt.Errorf("fault: injected connection drop: %w", net.ErrClosed)
	}
	return c.Conn.Read(p)
}

// Write stalls or drops per the injector; a drop writes half the buffer
// first and then closes, so the peer reads a truncated message — the
// torn state a real mid-message connection loss leaves.
func (c *conn) Write(p []byte) (int, error) {
	if c.inj.stall.hit() {
		c.inj.nStall.inc()
		time.Sleep(c.inj.cfg.Stall)
	}
	if c.inj.drop.hit() {
		c.inj.nDrop.inc()
		n := 0
		if len(p) > 1 {
			n, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Conn.Close()
		return n, fmt.Errorf("fault: injected connection drop: %w", net.ErrClosed)
	}
	return c.Conn.Write(p)
}
