// Package fault is the deterministic, seedable fault-injection layer of
// the CIPHERMATCH runtime: a filesystem shim (implementing segment.FS)
// that injects short writes, disk-full, fsync failures, mmap failure,
// read-time bit flips and simulated crashes at named crash points, plus
// net.Listener/net.Conn wrappers that drop connections mid-message or
// stall reads and writes. The serving and storage hardening in
// internal/proto is tested under exactly these faults.
//
// Injection is deterministic, not probabilistic: each fault class keeps
// an operation counter and fires on every Nth operation, with the phase
// (which of the N residues fires) derived from the seed. The same seed
// and the same workload always inject the same faults — a failing chaos
// run replays exactly.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ciphermatch/internal/metrics"
	"ciphermatch/internal/rng"
)

// Config selects which faults an Injector fires and how often. A zero
// Config injects nothing. "Every" fields are operation periods: 0
// disables the class, 1 fires on every operation, N on every Nth (at a
// seed-derived phase).
type Config struct {
	// Seed derives the per-class firing phases and bit-flip positions.
	// Empty is a valid (fixed) seed.
	Seed string

	// CrashPoint, when set to one of segment.CrashPoints(), simulates
	// the process dying at that named step of the segment write path:
	// the step fails and every subsequent filesystem operation returns
	// ErrCrashed, so nothing written "after the crash" can leak to disk.
	CrashPoint string

	WriteErrEvery   int  // file writes fail with ErrNoSpace
	ShortWriteEvery int  // file writes persist a prefix, then fail
	SyncErrEvery    int  // fsyncs fail with ErrSyncFailed
	MmapFail        bool // all mmap attempts fail (forces plain-read loads)
	BitFlipEvery    int  // file reads flip one bit in the returned buffer

	DropEvery  int           // connection ops drop the connection mid-message
	StallEvery int           // connection ops stall for Stall first
	Stall      time.Duration // stall length; default 50ms
}

func (c Config) withDefaults() Config {
	if c.Stall <= 0 {
		c.Stall = 50 * time.Millisecond
	}
	return c
}

// ParseConfig parses a comma-separated k=v fault spec — the cmserver
// -fault flag syntax. Keys: seed=<s>, crash=<point>, writeerr=<N>,
// shortwrite=<N>, syncerr=<N>, mmapfail, bitflip=<N>, drop=<N>,
// stall=<N>, stalldur=<duration>. Example:
//
//	-fault 'seed=chaos1,drop=97,stall=53,stalldur=20ms'
func ParseConfig(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(field), "=")
		intVal := func() (int, error) {
			if !hasVal {
				return 0, fmt.Errorf("fault: %q needs =N", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("fault: bad period %q=%q", key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed = val
		case "crash":
			cfg.CrashPoint = val
		case "writeerr":
			cfg.WriteErrEvery, err = intVal()
		case "shortwrite":
			cfg.ShortWriteEvery, err = intVal()
		case "syncerr":
			cfg.SyncErrEvery, err = intVal()
		case "mmapfail":
			if hasVal && val != "true" {
				return Config{}, fmt.Errorf("fault: mmapfail takes no value")
			}
			cfg.MmapFail = true
		case "bitflip":
			cfg.BitFlipEvery, err = intVal()
		case "drop":
			cfg.DropEvery, err = intVal()
		case "stall":
			cfg.StallEvery, err = intVal()
		case "stalldur":
			if cfg.Stall, err = time.ParseDuration(val); err == nil && cfg.Stall <= 0 {
				err = fmt.Errorf("fault: stalldur must be positive")
			}
		case "":
			// tolerate trailing comma
		default:
			return Config{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// stat is one fault class's injection count, mirrored into a metrics
// counter once Bind attaches a registry.
type stat struct {
	local atomic.Int64
	met   atomic.Pointer[metrics.Counter]
}

func (s *stat) inc() int64 {
	n := s.local.Add(1)
	if c := s.met.Load(); c != nil {
		c.Inc()
	}
	return n
}

// trigger fires deterministically on every period-th operation, at a
// seed-derived phase.
type trigger struct {
	n      atomic.Uint64
	period uint64
	phase  uint64
}

func (t *trigger) init(src *rng.Source, name string, every int) {
	t.period = uint64(every)
	if every > 0 {
		t.phase = src.Fork("fault/"+name).Uint64() % t.period
	}
}

func (t *trigger) hit() bool {
	if t.period == 0 {
		return false
	}
	return t.n.Add(1)%t.period == t.phase
}

// Injector owns the deterministic fault state shared by every FS and
// connection wrapper derived from it. Safe for concurrent use.
type Injector struct {
	cfg        Config
	crashed    atomic.Bool
	crashPoint atomic.Pointer[string]
	flipMix    uint64 // seed-derived multiplier selecting bit-flip positions

	writeErr, shortWrite, syncErr, bitFlip, drop, stall trigger

	nWriteErr, nShortWrite, nSyncErr, nMmapFail, nBitFlip, nDrop, nStall, nCrash stat
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	src := rng.NewSourceFromString("fault/" + cfg.Seed)
	inj := &Injector{
		cfg:     cfg,
		flipMix: src.Fork("fault/flipmix").Uint64() | 1, // odd: full-period mixer
	}
	inj.writeErr.init(src, "writeerr", cfg.WriteErrEvery)
	inj.shortWrite.init(src, "shortwrite", cfg.ShortWriteEvery)
	inj.syncErr.init(src, "syncerr", cfg.SyncErrEvery)
	inj.bitFlip.init(src, "bitflip", cfg.BitFlipEvery)
	inj.drop.init(src, "drop", cfg.DropEvery)
	inj.stall.init(src, "stall", cfg.StallEvery)
	if cfg.CrashPoint != "" {
		inj.ArmCrash(cfg.CrashPoint)
	}
	return inj
}

// ArmCrash sets (or replaces) the armed crash point at runtime. The
// crash-point matrix boots a store over an unarmed FS, arms the point
// under test, and then drives the write that dies there — without this,
// bootstrap writes (the manifest) would trip manifest crash points
// before the scenario starts.
func (inj *Injector) ArmCrash(point string) { inj.crashPoint.Store(&point) }

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Crashed reports whether the simulated crash has fired: the "process"
// is dead and every filesystem operation fails until a fresh FS (a new
// process) is built over the surviving files.
func (inj *Injector) Crashed() bool { return inj.crashed.Load() }

// Bind mirrors injection counts into reg as fault_*_total counters, so
// a fault-wrapped server exposes what was injected next to how the
// serving stack absorbed it.
func (inj *Injector) Bind(reg *metrics.Registry) {
	for name, s := range inj.stats() {
		c := reg.Counter("fault_" + name + "_total")
		c.Add(s.local.Load())
		s.met.Store(c)
	}
}

func (inj *Injector) stats() map[string]*stat {
	return map[string]*stat{
		"write_errors": &inj.nWriteErr,
		"short_writes": &inj.nShortWrite,
		"sync_errors":  &inj.nSyncErr,
		"mmap_fails":   &inj.nMmapFail,
		"bit_flips":    &inj.nBitFlip,
		"conn_drops":   &inj.nDrop,
		"conn_stalls":  &inj.nStall,
		"crashes":      &inj.nCrash,
	}
}

// Counters snapshots how many faults of each class have been injected —
// the report a chaos run prints so "nothing failed" is distinguishable
// from "nothing was injected".
func (inj *Injector) Counters() map[string]int64 {
	out := make(map[string]int64, 8)
	for name, s := range inj.stats() {
		out[name] = s.local.Load()
	}
	return out
}

// Total returns the total number of injected faults across all classes.
func (inj *Injector) Total() int64 {
	var n int64
	for _, s := range inj.stats() {
		n += s.local.Load()
	}
	return n
}
