// Package engine builds core.Engine instances from declarative specs,
// covering every substrate: the CPU engines from internal/core and the
// in-flash engine from internal/ssd (which core cannot construct itself
// because ssd depends on core). The proto server, the ciphermatch
// facade and the CLIs all resolve engine selection here, so a workload
// can be moved between substrates — like the paper moves its search
// between CPU, PuM and flash — by changing one flag.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/ssd"
)

// Build constructs the engine selected by spec over db, using the
// default (Table 3) drive configuration for SSD engines.
func Build(params bfv.Params, db *core.EncryptedDB, spec core.EngineSpec) (core.Engine, error) {
	return BuildWith(params, db, spec, ssd.DefaultConfig(), ssd.SoftwareTransposition)
}

// BuildWith is Build with an explicit drive configuration for the SSD
// kind. With Shards > 1, each chunk-range shard gets its own engine of
// the selected kind — for "ssd", one simulated drive per shard.
func BuildWith(params bfv.Params, db *core.EncryptedDB, spec core.EngineSpec, driveCfg ssd.Config, kind ssd.TranspositionKind) (core.Engine, error) {
	if spec.Kind != core.EngineSSD {
		return core.NewEngine(params, db, spec)
	}
	factory := func(_ int, sub *core.EncryptedDB) (core.Engine, error) {
		return ssd.NewEngineForDB(driveCfg, params, kind, sub)
	}
	if spec.Shards > 1 {
		return core.NewShardedEngine(params, db, spec.Shards, factory)
	}
	return factory(0, db)
}

// Kinds lists the engine kinds Build accepts, for CLI usage strings.
func Kinds() []string {
	return []string{core.EngineSerial, core.EnginePool, core.EngineSSD}
}

// Parse reads a spec of the form "kind[:workers][/shards=N]", e.g.
// "serial", "pool:8", "ssd/shards=4". The empty string is the serial
// engine. This is the inverse of core.EngineSpec.String.
func Parse(s string) (core.EngineSpec, error) {
	var spec core.EngineSpec
	rest := strings.TrimSpace(s)
	if rest == "" {
		return spec, nil
	}
	if base, shards, ok := strings.Cut(rest, "/"); ok {
		val, found := strings.CutPrefix(shards, "shards=")
		if !found {
			return spec, fmt.Errorf("engine: bad spec %q: expected /shards=N", s)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("engine: bad shard count %q", val)
		}
		spec.Shards = n
		rest = base
	}
	if kind, workers, ok := strings.Cut(rest, ":"); ok {
		n, err := strconv.Atoi(workers)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("engine: bad worker count %q", workers)
		}
		spec.Workers = n
		rest = kind
	}
	switch rest {
	case core.EngineSerial, core.EnginePool, core.EngineSSD:
		spec.Kind = rest
	default:
		return spec, fmt.Errorf("engine: unknown kind %q (have %s)", rest, strings.Join(Kinds(), ", "))
	}
	if spec.Workers > 0 && spec.Kind != core.EnginePool {
		return spec, fmt.Errorf("engine: workers only apply to the pool engine")
	}
	return spec, nil
}
