package engine

import (
	"fmt"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/ssd"
)

// conformanceVector is one end-to-end scenario shared by every engine;
// the set mirrors internal/core/match_test.go (single chunk, chunk
// boundary spans, bit alignment, segment alignment).
type conformanceVector struct {
	name      string
	dbBytes   int
	dbBits    int
	query     []byte
	queryBits int
	align     int
	plants    []int
}

var conformanceVectors = []conformanceVector{
	{"single-chunk", 64, 512, []byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, 8, []int{0, 128, 264}},
	{"chunk-boundary", 288, 2304, []byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC}, 48, 8, []int{1000, 2048}},
	{"bit-aligned", 40, 320, []byte{0xF0, 0x0D, 0xFA, 0xCE}, 32, 1, []int{13}},
	{"segment-aligned", 128, 1024, []byte{0xCA, 0xFE, 0xBA, 0xBE}, 32, 16, []int{64, 512}},
}

// conformanceSpecs lists every engine configuration under test: the
// three substrates of the paper (CPU serial, CPU parallel, in-flash)
// plus their chunk-range sharded compositions.
var conformanceSpecs = []core.EngineSpec{
	{Kind: core.EngineSerial},
	{Kind: core.EnginePool, Workers: 1},
	{Kind: core.EnginePool, Workers: 4},
	{Kind: core.EngineSerial, Shards: 2},
	{Kind: core.EnginePool, Workers: 2, Shards: 3},
	{Kind: core.EngineSSD},
	{Kind: core.EngineSSD, Shards: 2},
}

// TestEngineConformance proves the tentpole property: every engine
// returns byte-identical hit bitmaps and candidates (and the same
// homomorphic-addition count) on the shared vectors, with the plain
// reference as ground truth.
func TestEngineConformance(t *testing.T) {
	for _, v := range conformanceVectors {
		t.Run(v.name, func(t *testing.T) {
			cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: v.align, Mode: core.ModeSeededMatch}
			client, err := core.NewClient(cfg, rng.NewSourceFromString("conf-"+v.name))
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, v.dbBytes)
			rng.NewSourceFromString("conf-data-" + v.name).Bytes(data)
			for _, o := range v.plants {
				for j := 0; j < v.queryBits; j++ {
					mathutil.SetBit(data, o+j, mathutil.GetBit(v.query, j))
				}
			}
			edb, err := client.EncryptDatabase(data, v.dbBits)
			if err != nil {
				t.Fatal(err)
			}
			q, err := client.PrepareQuery(v.query, v.queryBits, v.dbBits)
			if err != nil {
				t.Fatal(err)
			}
			want := core.ExpectedCandidates(data, v.dbBits, v.query, v.queryBits, v.align)

			var ref *core.IndexResult
			for _, spec := range conformanceSpecs {
				eng, err := BuildWith(cfg.Params, edb, spec, ssd.TestConfig(), ssd.SoftwareTransposition)
				if err != nil {
					t.Fatalf("%s: %v", spec, err)
				}
				label := fmt.Sprintf("%s (%s)", spec, eng.Describe())
				ir, err := eng.SearchAndIndex(q)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if ref == nil {
					ref = ir // serial is first: the reference result
					if !intsEqual(ir.Candidates, want) {
						t.Fatalf("%s: candidates %v != plain reference %v", label, ir.Candidates, want)
					}
					for _, o := range v.plants {
						if !containsInt(ir.Candidates, o) {
							t.Fatalf("%s: planted occurrence %d missing from %v", label, o, ir.Candidates)
						}
					}
					continue
				}
				if !intsEqual(ir.Candidates, ref.Candidates) {
					t.Fatalf("%s: candidates %v != serial %v", label, ir.Candidates, ref.Candidates)
				}
				if ir.Stats.HomAdds != ref.Stats.HomAdds {
					t.Fatalf("%s: HomAdds %d != serial %d", label, ir.Stats.HomAdds, ref.Stats.HomAdds)
				}
				if ir.Stats.CoeffCompares <= 0 {
					t.Fatalf("%s: no coefficient comparisons recorded", label)
				}
				for res, bm := range ref.Hits {
					got := ir.Hits[res]
					if got.Len() != bm.Len() {
						t.Fatalf("%s: residue %d bitmap length %d != %d", label, res, got.Len(), bm.Len())
					}
					for w := 0; w < bm.Len(); w++ {
						if bm.Get(w) != got.Get(w) {
							t.Fatalf("%s: residue %d window %d differs from serial", label, res, w)
						}
					}
				}
				if closer, ok := eng.(interface{ Close() error }); ok {
					if err := closer.Close(); err != nil {
						t.Fatalf("%s: close: %v", label, err)
					}
				}
			}
		})
	}
}

// TestEngineBatchConformance proves the batch pipeline's correctness
// contract on every engine configuration: SearchAndIndexBatch (or the
// sequential fallback SearchBatch dispatches to) returns bitmaps and
// candidates identical to per-member SearchAndIndex calls on the same
// engine. The batch mixes member lengths and includes a duplicate of
// member 0 prepared separately, so pattern dedup across members is
// exercised, and the serial engine must demonstrably save homomorphic
// additions from it.
func TestEngineBatchConformance(t *testing.T) {
	v := conformanceVectors[1] // chunk-boundary: multi-chunk database
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: v.align, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("batch-conf"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, v.dbBytes)
	rng.NewSourceFromString("batch-conf-data").Bytes(data)
	for _, o := range v.plants {
		for j := 0; j < v.queryBits; j++ {
			mathutil.SetBit(data, o+j, mathutil.GetBit(v.query, j))
		}
	}
	edb, err := client.EncryptDatabase(data, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	prepare := func(pat []byte, bits int) *core.Query {
		q, err := client.PrepareQuery(pat, bits, v.dbBits)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	members := []*core.Query{
		prepare(v.query, v.queryBits),
		prepare([]byte{0x0F, 0xF0, 0x55, 0xAA}, 32),
		prepare(v.query, v.queryBits), // duplicate content, separate ciphertexts
	}
	bq := core.NewBatchQuery(members...)

	for _, spec := range conformanceSpecs {
		eng, err := BuildWith(cfg.Params, edb, spec, ssd.TestConfig(), ssd.SoftwareTransposition)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		label := fmt.Sprintf("%s (%s)", spec, eng.Describe())
		irs, err := core.SearchBatch(eng, bq)
		if err != nil {
			t.Fatalf("%s: batch: %v", label, err)
		}
		if len(irs) != len(members) {
			t.Fatalf("%s: %d results for %d members", label, len(irs), len(members))
		}
		var batchAdds, seqAdds int
		for mi, q := range members {
			want, err := eng.SearchAndIndex(q)
			if err != nil {
				t.Fatalf("%s: member %d: %v", label, mi, err)
			}
			got := irs[mi]
			if !intsEqual(got.Candidates, want.Candidates) {
				t.Fatalf("%s: member %d: batch candidates %v != sequential %v", label, mi, got.Candidates, want.Candidates)
			}
			for res, bm := range want.Hits {
				gbm := got.Hits[res]
				if gbm.Len() != bm.Len() {
					t.Fatalf("%s: member %d residue %d: bitmap length %d != %d", label, mi, res, gbm.Len(), bm.Len())
				}
				for w := 0; w < bm.Len(); w++ {
					if bm.Get(w) != gbm.Get(w) {
						t.Fatalf("%s: member %d residue %d window %d: batch differs from sequential", label, mi, res, w)
					}
				}
			}
			batchAdds += got.Stats.HomAdds
			seqAdds += want.Stats.HomAdds
		}
		// Member 2 duplicates member 0, so batched CPU engines must do
		// strictly less homomorphic work than the sequential runs.
		if _, native := eng.(core.BatchSearcher); native && spec.Kind != core.EngineSSD && batchAdds >= seqAdds {
			t.Fatalf("%s: batch did %d HomAdds, sequential %d — pattern dedup saved nothing", label, batchAdds, seqAdds)
		}
		if closer, ok := eng.(interface{ Close() error }); ok {
			if err := closer.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
		}
	}
}

// TestEngineHitsMatchClientDecrypt proves the two index-generation
// modes agree bit for bit with the fused kernels in place: every
// engine's seeded-match bitmaps (ring.AddCmpBits against match tokens)
// must equal the client-decrypt bitmaps (Server.Search result
// ciphertexts decrypted and compared against t-1 by ExtractHits). This
// pins the fused kernel to the cryptographic ground truth, not just to
// the other engines.
func TestEngineHitsMatchClientDecrypt(t *testing.T) {
	v := conformanceVectors[1] // chunk-boundary: multi-chunk database
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: v.align, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("decrypt-conf"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, v.dbBytes)
	rng.NewSourceFromString("decrypt-conf-data").Bytes(data)
	for _, o := range v.plants {
		for j := 0; j < v.queryBits; j++ {
			mathutil.SetBit(data, o+j, mathutil.GetBit(v.query, j))
		}
	}
	edb, err := client.EncryptDatabase(data, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(v.query, v.queryBits, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	// Client-decrypt ground truth: homomorphic sums shipped back and
	// decrypted, windows compared against the match value t-1.
	server := core.NewServer(cfg.Params, edb)
	sr, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want := client.ExtractHits(q, sr)

	for _, spec := range conformanceSpecs {
		eng, err := BuildWith(cfg.Params, edb, spec, ssd.TestConfig(), ssd.SoftwareTransposition)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		label := fmt.Sprintf("%s (%s)", spec, eng.Describe())
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(ir.Hits) != len(want) {
			t.Fatalf("%s: %d bitmaps, client decrypt has %d", label, len(ir.Hits), len(want))
		}
		for res, wbm := range want {
			gbm := ir.Hits[res]
			if gbm == nil || !gbm.Equal(wbm) {
				t.Fatalf("%s: residue %d bitmap differs from client-decrypt ExtractHits", label, res)
			}
		}
		if closer, ok := eng.(interface{ Close() error }); ok {
			if err := closer.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
		}
	}
}

// TestEngineFactoredLegacyConformance is the representation-conformance
// test: on every engine kind (all three substrates plus sharded
// compositions), the factored query and the legacy expanded-token query
// for the same pattern must return bit-identical IndexResults — single
// searches and batches mixing both representations — and both must
// match the client-decrypt cryptographic ground truth.
func TestEngineFactoredLegacyConformance(t *testing.T) {
	v := conformanceVectors[1] // chunk-boundary: multi-chunk database
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: v.align, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("fact-conf"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, v.dbBytes)
	rng.NewSourceFromString("fact-conf-data").Bytes(data)
	for _, o := range v.plants {
		for j := 0; j < v.queryBits; j++ {
			mathutil.SetBit(data, o+j, mathutil.GetBit(v.query, j))
		}
	}
	edb, err := client.EncryptDatabase(data, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := client.PrepareQuery(v.query, v.queryBits, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := client.PrepareLegacyQuery(v.query, v.queryBits, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	if !fq.Factored() || lq.Factored() {
		t.Fatal("representations mis-built")
	}
	other, err := client.PrepareQuery([]byte{0x0F, 0xF0, 0x55, 0xAA}, 32, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}

	// Client-decrypt cryptographic ground truth for the shared pattern.
	sr, err := core.NewServer(cfg.Params, edb).Search(fq)
	if err != nil {
		t.Fatal(err)
	}
	truth := client.ExtractHits(fq, sr)

	sameHits := func(label string, got, want core.HitBitmaps) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d bitmaps != %d", label, len(got), len(want))
		}
		for res, wbm := range want {
			if gbm := got[res]; gbm == nil || !gbm.Equal(wbm) {
				t.Fatalf("%s: residue %d bitmap differs", label, res)
			}
		}
	}

	for _, spec := range conformanceSpecs {
		eng, err := BuildWith(cfg.Params, edb, spec, ssd.TestConfig(), ssd.SoftwareTransposition)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		label := fmt.Sprintf("%s (%s)", spec, eng.Describe())
		fir, err := eng.SearchAndIndex(fq)
		if err != nil {
			t.Fatalf("%s factored: %v", label, err)
		}
		lir, err := eng.SearchAndIndex(lq)
		if err != nil {
			t.Fatalf("%s legacy: %v", label, err)
		}
		if len(fir.Candidates) == 0 {
			t.Fatalf("%s: fixture found nothing", label)
		}
		if !intsEqual(fir.Candidates, lir.Candidates) {
			t.Fatalf("%s: factored candidates %v != legacy %v", label, fir.Candidates, lir.Candidates)
		}
		if fir.Stats.HomAdds != lir.Stats.HomAdds {
			t.Fatalf("%s: factored HomAdds %d != legacy %d (legacy must be re-factored, not run per residue)",
				label, fir.Stats.HomAdds, lir.Stats.HomAdds)
		}
		sameHits(label+" factored-vs-legacy", fir.Hits, lir.Hits)
		sameHits(label+" factored-vs-decrypt", fir.Hits, truth)

		// Mixed batch: factored, legacy (same pattern), and a different
		// factored member — batch results must equal per-member runs.
		bq := core.NewBatchQuery(fq, lq, other)
		irs, err := core.SearchBatch(eng, bq)
		if err != nil {
			t.Fatalf("%s batch: %v", label, err)
		}
		for mi, q := range []*core.Query{fq, lq, other} {
			want, err := eng.SearchAndIndex(q)
			if err != nil {
				t.Fatalf("%s member %d: %v", label, mi, err)
			}
			if !intsEqual(irs[mi].Candidates, want.Candidates) {
				t.Fatalf("%s member %d: batch candidates %v != sequential %v",
					label, mi, irs[mi].Candidates, want.Candidates)
			}
			sameHits(fmt.Sprintf("%s batch member %d", label, mi), irs[mi].Hits, want.Hits)
		}
		if closer, ok := eng.(interface{ Close() error }); ok {
			if err := closer.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
		}
	}
}

// TestEngineStatsAccumulate checks the cumulative Stats contract across
// repeated searches for each substrate.
func TestEngineStatsAccumulate(t *testing.T) {
	v := conformanceVectors[1]
	cfg := core.Config{Params: bfv.ParamsToy(), AlignBits: v.align, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("stats"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, v.dbBytes)
	edb, err := client.EncryptDatabase(data, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery(v.query, v.queryBits, v.dbBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []core.EngineSpec{
		{Kind: core.EngineSerial},
		{Kind: core.EnginePool, Workers: 2},
		{Kind: core.EngineSSD},
	} {
		eng, err := BuildWith(cfg.Params, edb, spec, ssd.TestConfig(), ssd.SoftwareTransposition)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.SearchAndIndex(q); err != nil {
			t.Fatal(err)
		}
		if got, want := eng.Stats().HomAdds, 2*ir.Stats.HomAdds; got != want {
			t.Errorf("%s: cumulative HomAdds = %d, want %d", eng.Describe(), got, want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want core.EngineSpec
		ok   bool
	}{
		{"", core.EngineSpec{}, true},
		{"serial", core.EngineSpec{Kind: "serial"}, true},
		{"pool", core.EngineSpec{Kind: "pool"}, true},
		{"pool:8", core.EngineSpec{Kind: "pool", Workers: 8}, true},
		{"ssd", core.EngineSpec{Kind: "ssd"}, true},
		{"ssd/shards=4", core.EngineSpec{Kind: "ssd", Shards: 4}, true},
		{"pool:2/shards=3", core.EngineSpec{Kind: "pool", Workers: 2, Shards: 3}, true},
		{"warp", core.EngineSpec{}, false},
		{"serial:4", core.EngineSpec{}, false},
		{"pool:x", core.EngineSpec{}, false},
		{"pool/shards=0", core.EngineSpec{}, false},
		{"pool/shard=2", core.EngineSpec{}, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// Round trip through the spec's String form.
	for _, s := range []string{"serial", "pool:8", "ssd/shards=4", "pool:2/shards=3"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if spec.String() != s {
			t.Errorf("round trip %q -> %q", s, spec.String())
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
