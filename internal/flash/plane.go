package flash

import (
	"fmt"

	"ciphermatch/internal/mathutil"
)

// Plane models one NAND plane: the cell array (sparse pages), the sensing
// latch and three data latches of its peripheral circuitry, and the
// modifications of [141] enabling bi-directional latch transfer (Fig. 4).
// All bitwise operations act on the full page width at once — this is the
// bit-level parallelism the paper exploits.
type Plane struct {
	geom   Geometry
	timing Timing
	energy Energy

	// Latches, each one page wide.
	S []uint64
	D [3][]uint64

	blocks   map[int]*block
	stats    Stats
	errModel ErrorModel
}

type block struct {
	mode  BlockMode
	wear  int              // erase count
	pages map[int][]uint64 // wordline -> page (SLC: one page per WL)
}

// NewPlane creates a plane with the given configuration.
func NewPlane(geom Geometry, timing Timing, energy Energy) *Plane {
	p := &Plane{geom: geom, timing: timing, energy: energy, blocks: make(map[int]*block)}
	p.S = make([]uint64, geom.PageWords())
	for i := range p.D {
		p.D[i] = make([]uint64, geom.PageWords())
	}
	return p
}

// Stats returns the accumulated operation statistics.
func (p *Plane) Stats() Stats { return p.stats }

// ResetStats clears the accumulated statistics.
func (p *Plane) ResetStats() { p.stats = Stats{} }

// Geometry returns the plane's geometry.
func (p *Plane) Geometry() Geometry { return p.geom }

func (p *Plane) pageKB() float64 { return float64(p.geom.PageBytes) / 1024 }

func (p *Plane) getBlock(b int) (*block, error) {
	if b < 0 || b >= p.geom.BlocksPerPlane {
		return nil, fmt.Errorf("flash: block %d out of range [0, %d)", b, p.geom.BlocksPerPlane)
	}
	blk, ok := p.blocks[b]
	if !ok {
		blk = &block{mode: ModeTLC, pages: make(map[int][]uint64)}
		p.blocks[b] = blk
	}
	return blk, nil
}

func (p *Plane) checkWL(wl int) error {
	if wl < 0 || wl >= p.geom.WLsPerBlock() {
		return fmt.Errorf("flash: wordline %d out of range [0, %d)", wl, p.geom.WLsPerBlock())
	}
	return nil
}

// SetBlockMode configures a block's cell mode. The CIPHERMATCH region uses
// ModeSLCESP; computation ops are rejected on TLC blocks.
func (p *Plane) SetBlockMode(b int, mode BlockMode) error {
	blk, err := p.getBlock(b)
	if err != nil {
		return err
	}
	blk.mode = mode
	return nil
}

// BlockWear returns the erase count of a block.
func (p *Plane) BlockWear(b int) int {
	if blk, ok := p.blocks[b]; ok {
		return blk.wear
	}
	return 0
}

// BlockMode returns the cell mode of a block (ModeTLC for untouched
// blocks).
func (p *Plane) BlockMode(b int) BlockMode {
	if blk, ok := p.blocks[b]; ok {
		return blk.mode
	}
	return ModeTLC
}

// EraseBlock erases a block (all pages read as zero afterwards) and
// increments its wear counter.
func (p *Plane) EraseBlock(b int) error {
	blk, err := p.getBlock(b)
	if err != nil {
		return err
	}
	blk.pages = make(map[int][]uint64)
	blk.wear++
	p.stats.Erases++
	return nil
}

// ProgramPage writes data (one full page) to (block, wl) and counts the
// program operation. data is copied.
func (p *Plane) ProgramPage(b, wl int, data []uint64) error {
	blk, err := p.getBlock(b)
	if err != nil {
		return err
	}
	if err := p.checkWL(wl); err != nil {
		return err
	}
	if len(data) != p.geom.PageWords() {
		return fmt.Errorf("flash: page data must be %d words, got %d", p.geom.PageWords(), len(data))
	}
	page := make([]uint64, len(data))
	copy(page, data)
	blk.pages[wl] = page
	p.stats.Programs++
	return nil
}

// ReadPage performs a flash read: the cells of (block, wl) are sensed into
// the S-latch. Unwritten pages read as zero. Reads are permitted in any
// block mode; the bit-serial µ-program additionally requires SLC+ESP
// (§4.3.1 Reliability) and enforces that in BitSerialAddPlanes.
func (p *Plane) ReadPage(b, wl int) error {
	blk, err := p.getBlock(b)
	if err != nil {
		return err
	}
	if err := p.checkWL(wl); err != nil {
		return err
	}
	page, ok := blk.pages[wl]
	if ok {
		copy(p.S, page)
	} else {
		clear(p.S)
	}
	p.injectReadErrors(blk.mode)
	p.stats.Reads++
	p.stats.Time += p.timing.ReadSLC
	p.stats.Energy += p.energy.ReadSLCPerChannel
	return nil
}

// TransferS2D copies the S-latch into D-latch d (reset-and-set sequence of
// Fig. 4, steps 2-3).
func (p *Plane) TransferS2D(d int) {
	copy(p.D[d], p.S)
	p.stats.LatchTransfers++
	p.stats.Time += p.timing.LatchTransfer
	p.stats.Energy += p.energy.LatchPerKB * p.pageKB()
}

// TransferD2S copies D-latch d into the S-latch (the bi-directional path
// added by the M7/M8 transistors of [141]).
func (p *Plane) TransferD2S(d int) {
	copy(p.S, p.D[d])
	p.stats.LatchTransfers++
	p.stats.Time += p.timing.LatchTransfer
	p.stats.Energy += p.energy.LatchPerKB * p.pageKB()
}

// ResetD clears D-latch d (used to zero the carry latch before a
// bit-serial addition).
func (p *Plane) ResetD(d int) {
	clear(p.D[d])
	p.stats.LatchTransfers++
	p.stats.Time += p.timing.LatchTransfer
	p.stats.Energy += p.energy.LatchPerKB * p.pageKB()
}

// AndSD performs the bitwise AND of the S-latch and D-latch d, leaving the
// result in the S-latch (§4.3.1, operation 2).
func (p *Plane) AndSD(d int) {
	for i := range p.S {
		p.S[i] &= p.D[d][i]
	}
	p.stats.AndOrOps++
	p.stats.Time += p.timing.AndOr
	p.stats.Energy += p.energy.AndOrPerKB * p.pageKB()
}

// OrSD performs the bitwise OR of the S-latch and D-latch d, leaving the
// result in D-latch d (§4.3.1, operation 3).
func (p *Plane) OrSD(d int) {
	for i := range p.D[d] {
		p.D[d][i] |= p.S[i]
	}
	p.stats.AndOrOps++
	p.stats.Time += p.timing.AndOr
	p.stats.Energy += p.energy.AndOrPerKB * p.pageKB()
}

// XorDD performs the bitwise XOR of D-latches dst and src using the
// existing randomiser XOR circuit, leaving the result in dst (§4.3.1,
// operation 4).
func (p *Plane) XorDD(dst, src int) {
	for i := range p.D[dst] {
		p.D[dst][i] ^= p.D[src][i]
	}
	p.stats.XorOps++
	p.stats.Time += p.timing.Xor
	p.stats.Energy += p.energy.XorPerKB * p.pageKB()
}

// LoadS transfers one page of operand data from the controller into the
// S-latch: a DMA over the flash channel plus a latch write (counted in the
// AND/OR class, completing the 4·TAND/OR of Eq. 10).
func (p *Plane) LoadS(data []uint64) error {
	if len(data) != p.geom.PageWords() {
		return fmt.Errorf("flash: operand page must be %d words, got %d", p.geom.PageWords(), len(data))
	}
	copy(p.S, data)
	p.stats.LatchWrites++
	p.stats.Time += p.timing.DMA + p.timing.AndOr
	p.stats.Energy += p.energy.DMAPerChannel + p.energy.AndOrPerKB*p.pageKB()
	return nil
}

// ReadLatchD transfers D-latch d out to the controller (DMA).
func (p *Plane) ReadLatchD(d int) []uint64 {
	out := make([]uint64, len(p.D[d]))
	copy(out, p.D[d])
	p.stats.LatchReads++
	p.stats.Time += p.timing.DMA
	p.stats.Energy += p.energy.DMAPerChannel
	return out
}

// WriteVertical stores coeffs in vertical layout: bit i of coefficient j is
// programmed at wordline wlBase+i, bitline j. This is the layout the
// bit-serial adder requires (§4.3.1 Data Layout); the transposition itself
// is the SSD controller's job (internal/ssd), so WriteVertical only counts
// the 32 page programs.
func (p *Plane) WriteVertical(b, wlBase int, coeffs []uint32) error {
	if len(coeffs) > p.geom.PageBits() {
		return fmt.Errorf("flash: %d coefficients exceed %d bitlines", len(coeffs), p.geom.PageBits())
	}
	planes := make([][]uint64, 32)
	for i := range planes {
		planes[i] = make([]uint64, p.geom.PageWords())
	}
	mathutil.TransposeToBitPlanes(coeffs, planes)
	for i := 0; i < 32; i++ {
		if err := p.ProgramPage(b, wlBase+i, planes[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadVertical reads numCoeffs coefficients stored in vertical layout at
// (block, wlBase..wlBase+31). It performs 32 flash reads.
func (p *Plane) ReadVertical(b, wlBase, numCoeffs int) ([]uint32, error) {
	planes := make([][]uint64, 32)
	for i := 0; i < 32; i++ {
		if err := p.ReadPage(b, wlBase+i); err != nil {
			return nil, err
		}
		row := make([]uint64, len(p.S))
		copy(row, p.S)
		planes[i] = row
	}
	coeffs := make([]uint32, numCoeffs)
	mathutil.TransposeFromBitPlanes(planes, coeffs)
	return coeffs, nil
}
