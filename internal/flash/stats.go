package flash

import "time"

// Stats accumulates operation counts, latency and energy for a plane (or,
// summed, for larger units). The timing model is serial within a plane:
// latch operations cannot overlap on the same peripheral circuitry.
type Stats struct {
	Reads          int
	Programs       int
	Erases         int
	LatchTransfers int
	AndOrOps       int
	XorOps         int
	LatchWrites    int // operand loads from the controller into S
	LatchReads     int // result reads from D-latches to the controller
	BitSerialAdds  int // completed bit-serial additions (per bit step)

	Time   time.Duration
	Energy float64 // joules
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Programs += other.Programs
	s.Erases += other.Erases
	s.LatchTransfers += other.LatchTransfers
	s.AndOrOps += other.AndOrOps
	s.XorOps += other.XorOps
	s.LatchWrites += other.LatchWrites
	s.LatchReads += other.LatchReads
	s.BitSerialAdds += other.BitSerialAdds
	s.Time += other.Time
	s.Energy += other.Energy
}
