package flash

import (
	"fmt"

	"ciphermatch/internal/mathutil"
)

// This file implements the bit-serial addition µ-program of Fig. 5: adding
// a streamed operand B (arriving page-by-page from the SSD controller) to
// an operand A stored vertically in the flash array, across every bitline
// of the plane in parallel. The carry lives in D-latch 2 between bit
// steps; dropping the final carry-out makes the addition mod 2^32 — which
// is exactly the coefficient ring Z_q with the paper's q = 2^32, so
// homomorphic addition needs no extra reduction step.
//
// Step mapping (latch state uses B=operand bit, A=stored bit, C=carry):
//
//	 1. LoadS(B_i)        S=B          (DMA + latch write)
//	 2. TransferS2D(1)    D1=B
//	 3. AndSD(2)          S=B·C        (C is in D2 from the previous bit)
//	 4. XorDD(1,2)        D1=B⊕C
//	 5. TransferS2D(0)    D0=B·C
//	 6. ReadPage(A_i)     S=A          (flash read)
//	 7. TransferS2D(2)    D2=A
//	 8. AndSD(1)          S=A·(B⊕C)
//	 9. XorDD(1,2)        D1=A⊕B⊕C     = sum bit
//	10. TransferS2D(2)    D2=A·(B⊕C)
//	11. TransferD2S(0)    S=B·C
//	12. OrSD(2)           D2=A·(B⊕C)+B·C = carry out
//	13. ReadLatchD(1)     sum bit out  (DMA)
//
// Totals per bit: 1 read, 2 XOR, 5 latch transfers, 2 AND + 1 OR + 1 latch
// write (the 4 AND/OR-class ops of Eq. 10), and 2 DMA transfers (Eq. 9).

// OperandBits is the coefficient width of the bit-serial adder: 32 bits,
// matching the paper's q = 2^32 ciphertext coefficients.
const OperandBits = 32

// BitSerialAddPlanes adds the 32 operand bit-planes bPlanes to the value
// stored vertically at (block, wlBase..wlBase+31), returning the 32 sum
// bit-planes. Every bitline computes one independent 32-bit addition; the
// final carry-out is discarded (mod-2^32 semantics).
func (p *Plane) BitSerialAddPlanes(b, wlBase int, bPlanes [][]uint64) ([][]uint64, error) {
	if len(bPlanes) != OperandBits {
		return nil, fmt.Errorf("flash: operand must have %d bit-planes, got %d", OperandBits, len(bPlanes))
	}
	if mode := p.BlockMode(b); mode != ModeSLCESP {
		return nil, fmt.Errorf("flash: bit-serial addition on %s block %d (CIPHERMATCH region must be SLC+ESP, §4.3.1)", mode, b)
	}
	sums := make([][]uint64, OperandBits)
	p.ResetD(2) // carry-in = 0
	for i := 0; i < OperandBits; i++ {
		if err := p.LoadS(bPlanes[i]); err != nil { // 1
			return nil, err
		}
		p.TransferS2D(1)                                // 2
		p.AndSD(2)                                      // 3
		p.XorDD(1, 2)                                   // 4
		p.TransferS2D(0)                                // 5
		if err := p.ReadPage(b, wlBase+i); err != nil { // 6
			return nil, err
		}
		p.TransferS2D(2)          // 7
		p.AndSD(1)                // 8
		p.XorDD(1, 2)             // 9
		p.TransferS2D(2)          // 10
		p.TransferD2S(0)          // 11
		p.OrSD(2)                 // 12
		sums[i] = p.ReadLatchD(1) // 13
		p.stats.BitSerialAdds++
	}
	return sums, nil
}

// BitSerialAdd is the convenience form over horizontal coefficients: it
// transposes the operand, runs the µ-program, and transposes the sums
// back. In the full system the transpositions are performed by the SSD
// controller's data transposition unit (internal/ssd); use this form for
// tests and self-contained examples.
func (p *Plane) BitSerialAdd(b, wlBase int, operand []uint32) ([]uint32, error) {
	if len(operand) > p.geom.PageBits() {
		return nil, fmt.Errorf("flash: %d operand coefficients exceed %d bitlines", len(operand), p.geom.PageBits())
	}
	bPlanes := make([][]uint64, OperandBits)
	for i := range bPlanes {
		bPlanes[i] = make([]uint64, p.geom.PageWords())
	}
	mathutil.TransposeToBitPlanes(operand, bPlanes)
	sumPlanes, err := p.BitSerialAddPlanes(b, wlBase, bPlanes)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(operand))
	mathutil.TransposeFromBitPlanes(sumPlanes, out)
	return out, nil
}
