package flash

import (
	"testing"
	"testing/quick"
	"time"

	"ciphermatch/internal/rng"
)

// smallGeometry keeps test planes cheap: 512-byte pages (4096 bitlines).
func smallGeometry() Geometry {
	g := DefaultGeometry()
	g.PageBytes = 512
	g.BlocksPerPlane = 8
	return g
}

func newTestPlane() *Plane {
	return NewPlane(smallGeometry(), DefaultTiming(), DefaultEnergy())
}

func cmBlock(t *testing.T, p *Plane, b int) {
	t.Helper()
	if err := p.SetBlockMode(b, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.WLsPerBlock() != 192 {
		t.Errorf("WLsPerBlock = %d, want 192 (4x48)", g.WLsPerBlock())
	}
	if g.PageBits() != 32768 {
		t.Errorf("PageBits = %d, want 32768", g.PageBits())
	}
	if g.TotalPlanes() != 128 {
		t.Errorf("TotalPlanes = %d, want 128 (8ch x 8die x 2)", g.TotalPlanes())
	}
}

func TestTimingMatchesPaperEquations(t *testing.T) {
	tm := DefaultTiming()
	// Eq. 10: Tbop_add = 22.5us + 2*30ns + 5*20ns + 4*20ns = 22.74us.
	if got := tm.BopAdd(); got != 22740*time.Nanosecond {
		t.Errorf("BopAdd = %v, want 22.74us", got)
	}
	// Eq. 9: Tbit_add = Tbop_add + 2*3.3us = 29.34us (paper rounds to 29.38).
	if got := tm.BitAdd(); got != 29340*time.Nanosecond {
		t.Errorf("BitAdd = %v, want 29.34us", got)
	}
	delta := PaperTBitAdd - tm.BitAdd()
	if delta < 0 {
		delta = -delta
	}
	if delta > 50*time.Nanosecond {
		t.Errorf("BitAdd differs from paper value by %v", delta)
	}
}

func TestEnergyEquations(t *testing.T) {
	e := DefaultEnergy()
	// Ebop_add for a 4 KiB page: 20.5uJ + (2*20+5*10+4*10)*4 nJ = 21.02uJ.
	got := e.BopAdd(4096)
	want := 21.02e-6
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("BopAdd energy = %v, want %v", got, want)
	}
	full := e.BitAdd(4096)
	if full <= got {
		t.Error("BitAdd energy must exceed BopAdd energy")
	}
}

func TestProgramReadRoundtrip(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 0)
	data := make([]uint64, p.Geometry().PageWords())
	for i := range data {
		data[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	if err := p.ProgramPage(0, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(0, 5); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if p.S[i] != data[i] {
			t.Fatalf("word %d: %#x != %#x", i, p.S[i], data[i])
		}
	}
	// Unwritten pages read as zero.
	if err := p.ReadPage(0, 6); err != nil {
		t.Fatal(err)
	}
	for i := range p.S {
		if p.S[i] != 0 {
			t.Fatal("unwritten page read non-zero")
		}
	}
}

func TestTLCBlockRejectsBitSerialAdd(t *testing.T) {
	p := newTestPlane()
	// Block defaults to TLC: normal reads are fine, computation is not.
	if err := p.ReadPage(1, 0); err != nil {
		t.Fatalf("conventional read on TLC block must succeed: %v", err)
	}
	if _, err := p.BitSerialAdd(1, 0, []uint32{1}); err == nil {
		t.Fatal("bit-serial addition on TLC block must fail")
	}
}

func TestBoundsChecking(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 0)
	if err := p.ProgramPage(0, p.Geometry().WLsPerBlock(), make([]uint64, p.Geometry().PageWords())); err == nil {
		t.Error("accepted out-of-range wordline")
	}
	if err := p.ProgramPage(p.Geometry().BlocksPerPlane, 0, make([]uint64, p.Geometry().PageWords())); err == nil {
		t.Error("accepted out-of-range block")
	}
	if err := p.ProgramPage(0, 0, make([]uint64, 3)); err == nil {
		t.Error("accepted short page")
	}
	if err := p.LoadS(make([]uint64, 1)); err == nil {
		t.Error("accepted short operand page")
	}
}

func TestLatchOps(t *testing.T) {
	p := newTestPlane()
	words := p.Geometry().PageWords()
	a := make([]uint64, words)
	b := make([]uint64, words)
	src := rng.NewSourceFromString("latch")
	for i := 0; i < words; i++ {
		a[i] = src.Uint64()
		b[i] = src.Uint64()
	}

	// AND: S &= D.
	copy(p.S, a)
	copy(p.D[0], b)
	p.AndSD(0)
	for i := range p.S {
		if p.S[i] != a[i]&b[i] {
			t.Fatal("AndSD wrong")
		}
	}

	// OR: D |= S.
	copy(p.S, a)
	copy(p.D[1], b)
	p.OrSD(1)
	for i := range p.D[1] {
		if p.D[1][i] != a[i]|b[i] {
			t.Fatal("OrSD wrong")
		}
	}

	// XOR: D1 ^= D2.
	copy(p.D[1], a)
	copy(p.D[2], b)
	p.XorDD(1, 2)
	for i := range p.D[1] {
		if p.D[1][i] != a[i]^b[i] {
			t.Fatal("XorDD wrong")
		}
	}

	// Transfers both directions.
	copy(p.S, a)
	p.TransferS2D(2)
	for i := range p.D[2] {
		if p.D[2][i] != a[i] {
			t.Fatal("TransferS2D wrong")
		}
	}
	copy(p.D[0], b)
	p.TransferD2S(0)
	for i := range p.S {
		if p.S[i] != b[i] {
			t.Fatal("TransferD2S wrong")
		}
	}
	p.ResetD(0)
	for i := range p.D[0] {
		if p.D[0][i] != 0 {
			t.Fatal("ResetD wrong")
		}
	}
}

func TestVerticalRoundtrip(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 2)
	src := rng.NewSourceFromString("vertical")
	coeffs := make([]uint32, 100)
	for i := range coeffs {
		coeffs[i] = uint32(src.Uint64())
	}
	if err := p.WriteVertical(2, 0, coeffs); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadVertical(2, 0, len(coeffs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if got[i] != coeffs[i] {
			t.Fatalf("coeff %d: %#x != %#x", i, got[i], coeffs[i])
		}
	}
}

func TestBitSerialAddMatchesUint32Add(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 1)
	src := rng.NewSourceFromString("bitserial")
	n := 200
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = uint32(src.Uint64())
		b[i] = uint32(src.Uint64())
	}
	if err := p.WriteVertical(1, 32, a); err != nil {
		t.Fatal(err)
	}
	got, err := p.BitSerialAdd(1, 32, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if want := a[i] + b[i]; got[i] != want { // wrapping = mod 2^32 = mod q
			t.Fatalf("lane %d: %d + %d = %d, got %d", i, a[i], b[i], want, got[i])
		}
	}
}

func TestBitSerialAddCarryChains(t *testing.T) {
	// Worst-case carry propagation: 0xFFFFFFFF + 1 wraps to 0.
	p := newTestPlane()
	cmBlock(t, p, 1)
	a := []uint32{0xFFFFFFFF, 0xFFFFFFFF, 0x7FFFFFFF, 0, 0xAAAAAAAA}
	b := []uint32{1, 0xFFFFFFFF, 1, 0, 0x55555555}
	if err := p.WriteVertical(1, 0, a); err != nil {
		t.Fatal(err)
	}
	got, err := p.BitSerialAdd(1, 0, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 0xFFFFFFFE, 0x80000000, 0, 0xFFFFFFFF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestBitSerialAddProperty(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 3)
	f := func(a, b []uint32) bool {
		if len(a) == 0 {
			return true
		}
		if len(b) < len(a) {
			tmp := make([]uint32, len(a))
			copy(tmp, b)
			b = tmp
		}
		b = b[:len(a)]
		if len(a) > p.Geometry().PageBits() {
			a = a[:p.Geometry().PageBits()]
			b = b[:p.Geometry().PageBits()]
		}
		if err := p.WriteVertical(3, 64, a); err != nil {
			return false
		}
		got, err := p.BitSerialAdd(3, 64, b)
		if err != nil {
			return false
		}
		for i := range a {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBitSerialAddDoesNotWear(t *testing.T) {
	// §4.3.1 Reliability: bit-serial addition uses only latch operations
	// and reads — no program/erase cycles, so no wear.
	p := newTestPlane()
	cmBlock(t, p, 1)
	a := []uint32{1, 2, 3}
	if err := p.WriteVertical(1, 0, a); err != nil {
		t.Fatal(err)
	}
	progBefore := p.Stats().Programs
	wearBefore := p.BlockWear(1)
	if _, err := p.BitSerialAdd(1, 0, []uint32{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Programs != progBefore || p.BlockWear(1) != wearBefore {
		t.Fatal("bit-serial addition must not program or erase flash cells")
	}
}

func TestBitSerialAddOpCountsMatchEq10(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 1)
	if err := p.WriteVertical(1, 0, []uint32{7}); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if _, err := p.BitSerialAdd(1, 0, []uint32{9}); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Reads != 32 {
		t.Errorf("Reads = %d, want 32", s.Reads)
	}
	if s.XorOps != 64 {
		t.Errorf("XorOps = %d, want 64 (2 per bit)", s.XorOps)
	}
	// 5 transfers per bit plus the initial carry reset.
	if s.LatchTransfers != 32*5+1 {
		t.Errorf("LatchTransfers = %d, want %d", s.LatchTransfers, 32*5+1)
	}
	// 3 AND/OR ops per bit (2 AND + 1 OR); the 4th of Eq. 10 is the latch
	// write, counted separately.
	if s.AndOrOps != 96 || s.LatchWrites != 32 {
		t.Errorf("AndOrOps = %d, LatchWrites = %d", s.AndOrOps, s.LatchWrites)
	}
	if s.LatchReads != 32 {
		t.Errorf("LatchReads = %d, want 32", s.LatchReads)
	}
	// Total time: 32 × Tbit_add + initial reset.
	want := 32*DefaultTiming().BitAdd() + DefaultTiming().LatchTransfer
	if s.Time != want {
		t.Errorf("Time = %v, want %v", s.Time, want)
	}
}

func TestEraseAndWear(t *testing.T) {
	p := newTestPlane()
	cmBlock(t, p, 4)
	data := make([]uint64, p.Geometry().PageWords())
	data[0] = 42
	if err := p.ProgramPage(4, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := p.EraseBlock(4); err != nil {
		t.Fatal(err)
	}
	if p.BlockWear(4) != 1 {
		t.Errorf("wear = %d, want 1", p.BlockWear(4))
	}
	if err := p.ReadPage(4, 0); err != nil {
		t.Fatal(err)
	}
	if p.S[0] != 0 {
		t.Error("erased page must read zero")
	}
}
