// Package flash is a functional and timing/energy simulator of 3D NAND
// flash with the CIPHERMATCH in-flash processing extensions (§4.3.1):
// the bi-directional sensing-latch/data-latch transfer of [141], bulk
// bitwise AND/OR/XOR on the latch circuitry (ParaBit [62] / Flash-Cosmos
// [60] style), enhanced SLC programming for reliable computation, and the
// 13-step bit-serial addition µ-program of Fig. 5.
//
// The simulator is bit-exact: latch operations manipulate real page
// buffers, so a homomorphic addition executed in flash produces the same
// bytes as the software evaluator (tested in internal/ssd). Every
// operation also accrues latency and energy according to the constants of
// Table 3, which the performance model consumes.
package flash

import "time"

// Geometry describes the NAND organisation of Table 3: a 2 TB, 48-WL-layer
// 3D TLC SSD.
type Geometry struct {
	Channels       int // flash channels
	DiesPerChan    int // dies per channel
	PlanesPerDie   int
	BlocksPerPlane int
	SubBlocks      int // sub-blocks per block
	WLLayers       int // wordline layers per sub-block
	PageBytes      int // page size (one wordline in SLC mode)
}

// DefaultGeometry returns the Table 3 configuration: 8 channels, 8
// dies/channel, 2 planes/die, 2048 blocks/plane, 4×48 wordlines/block,
// 4 KiB pages.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:       8,
		DiesPerChan:    8,
		PlanesPerDie:   2,
		BlocksPerPlane: 2048,
		SubBlocks:      4,
		WLLayers:       48,
		PageBytes:      4096,
	}
}

// WLsPerBlock returns the wordlines per block (sub-blocks × layers).
func (g Geometry) WLsPerBlock() int { return g.SubBlocks * g.WLLayers }

// PageBits returns the number of bitlines covered by one page.
func (g Geometry) PageBits() int { return g.PageBytes * 8 }

// PageWords returns the page size in 64-bit words.
func (g Geometry) PageWords() int { return g.PageBytes / 8 }

// TotalPlanes returns the number of planes across the whole SSD — the unit
// of array-level parallelism for in-flash processing.
func (g Geometry) TotalPlanes() int {
	return g.Channels * g.DiesPerChan * g.PlanesPerDie
}

// Timing holds the per-operation latencies of Table 3.
type Timing struct {
	ReadSLC       time.Duration // Tread, SLC-mode page read
	AndOr         time.Duration // TAND/OR, latch AND/OR (and latch write)
	LatchTransfer time.Duration // Tlatchtransfer, S<->D transfer
	Xor           time.Duration // TXOR, D-latch XOR
	DMA           time.Duration // TDMA, controller<->latch page transfer
}

// DefaultTiming returns the Table 3 latencies.
func DefaultTiming() Timing {
	return Timing{
		ReadSLC:       22500 * time.Nanosecond,
		AndOr:         20 * time.Nanosecond,
		LatchTransfer: 20 * time.Nanosecond,
		Xor:           30 * time.Nanosecond,
		DMA:           3300 * time.Nanosecond,
	}
}

// BopAdd returns the latency of the in-flash portion of one bit of
// bit-serial addition (Eq. 10):
//
//	Tbop_add = Tread + 2·TXOR + 5·Tlatch + 4·TAND/OR
//
// The four AND/OR-class operations are the two ANDs and one OR of the
// µ-program plus the latch write that loads the streamed operand bit into
// the sensing latch (see bitserial.go for the step mapping).
func (t Timing) BopAdd() time.Duration {
	return t.ReadSLC + 2*t.Xor + 5*t.LatchTransfer + 4*t.AndOr
}

// BitAdd returns the full latency of one bit of bit-serial addition
// including the two DMA transfers (Eq. 9): Tbit_add = Tbop_add + 2·TDMA.
// With the Table 3 constants this evaluates to 29.34 µs; the paper reports
// 29.38 µs (the 0.04 µs delta comes from rounding TDMA in the paper's
// table).
func (t Timing) BitAdd() time.Duration {
	return t.BopAdd() + 2*t.DMA
}

// PaperTBitAdd is the value Table 3 reports for Tbit_add.
const PaperTBitAdd = 29380 * time.Nanosecond

// Energy holds the per-operation energies of Table 3. Units: joules,
// normalised per operation or per KiB as the table specifies.
type Energy struct {
	ReadSLCPerChannel float64 // Eread, J per page read per channel
	AndOrPerKB        float64 // EAND/OR, J per KiB
	LatchPerKB        float64 // Elatchtransfer, J per KiB
	XorPerKB          float64 // EXOR, J per KiB
	DMAPerChannel     float64 // EDMA, J per page DMA per channel
	IndexGenPerPage   float64 // Eindex_gen, J per page in the controller
	PaperEBitAdd      float64 // Ebit_add as reported (J per channel)
}

// DefaultEnergy returns the Table 3 energies.
func DefaultEnergy() Energy {
	const (
		uJ = 1e-6
		nJ = 1e-9
	)
	return Energy{
		ReadSLCPerChannel: 20.5 * uJ,
		AndOrPerKB:        10 * nJ,
		LatchPerKB:        10 * nJ,
		XorPerKB:          20 * nJ,
		DMAPerChannel:     7.656 * uJ,
		IndexGenPerPage:   0.18 * uJ,
		PaperEBitAdd:      32.22 * uJ,
	}
}

// BopAdd returns the in-flash energy of one bit of bit-serial addition for
// a page of pageBytes (the energy analogue of Eq. 10).
func (e Energy) BopAdd(pageBytes int) float64 {
	kb := float64(pageBytes) / 1024
	return e.ReadSLCPerChannel + 2*e.XorPerKB*kb + 5*e.LatchPerKB*kb + 4*e.AndOrPerKB*kb
}

// BitAdd returns the full energy of one bit of bit-serial addition
// including DMA and index generation (Eq. 11).
func (e Energy) BitAdd(pageBytes int) float64 {
	return e.BopAdd(pageBytes) + 2*e.DMAPerChannel + e.IndexGenPerPage
}

// BlockMode is the cell mode of a block: the CIPHERMATCH region runs in
// SLC mode with enhanced SLC programming (ESP) for reliable computation;
// the conventional region runs in TLC mode (§4.3.2).
type BlockMode int

const (
	// ModeTLC is the conventional-region mode (3 bits/cell). In-flash
	// computation is not permitted on TLC blocks.
	ModeTLC BlockMode = iota
	// ModeSLCESP is the CIPHERMATCH-region mode: single-level cells
	// programmed with the enhanced-SLC scheme of Flash-Cosmos [60].
	ModeSLCESP
)

func (m BlockMode) String() string {
	switch m {
	case ModeTLC:
		return "TLC"
	case ModeSLCESP:
		return "SLC+ESP"
	default:
		return "unknown"
	}
}
