package flash

import "ciphermatch/internal/rng"

// This file models the reliability mechanism of §4.3.1: in-flash
// computation consumes raw sensed values, so ordinary read-error rates
// corrupt results (ECC sits behind the controller and cannot help inside
// the latch circuitry). Flash-Cosmos's Enhanced SLC Programming (ESP)
// maximises the threshold-voltage margin between the two states, making
// raw reads reliable enough to compute on — which is why the CIPHERMATCH
// region must run in ModeSLCESP.
//
// The simulator exposes the effect through an injectable raw-bit-error
// model: reads of ESP-programmed blocks sense cleanly, reads of plain
// blocks flip bits at the configured raw bit error rate.

// ErrorModel configures raw read-error injection for a plane.
type ErrorModel struct {
	// RawBitErrorRate is the per-bit flip probability of a raw
	// (non-ECC-corrected) SLC read without ESP programming.
	RawBitErrorRate float64
	// Src drives the injected flips; nil disables injection entirely.
	Src *rng.Source
}

// SetErrorModel installs an error model on the plane. The zero model (or a
// nil source) disables injection, which is the default.
func (p *Plane) SetErrorModel(m ErrorModel) { p.errModel = m }

// injectReadErrors flips bits of the freshly sensed S-latch according to
// the error model. ESP-programmed blocks (ModeSLCESP) are exempt: the
// enlarged voltage margin suppresses raw read errors (§4.3.1 Reliability).
func (p *Plane) injectReadErrors(mode BlockMode) {
	m := p.errModel
	if m.Src == nil || m.RawBitErrorRate <= 0 || mode == ModeSLCESP {
		return
	}
	// Sample the number of flipped bits per word from the per-bit rate.
	for w := range p.S {
		for bit := 0; bit < 64; bit++ {
			if m.Src.Float64() < m.RawBitErrorRate {
				p.S[w] ^= 1 << uint(bit)
			}
		}
	}
}
