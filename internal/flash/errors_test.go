package flash

import (
	"testing"

	"ciphermatch/internal/rng"
)

// TestESPSuppressesReadErrors reproduces the §4.3.1 reliability argument:
// with a realistic raw bit error rate injected, computation on plain
// blocks corrupts sums, while ESP-programmed blocks compute exactly.
func TestESPSuppressesReadErrors(t *testing.T) {
	g := smallGeometry()

	// ESP block: exact results despite the error model.
	espPlane := NewPlane(g, DefaultTiming(), DefaultEnergy())
	espPlane.SetErrorModel(ErrorModel{RawBitErrorRate: 1e-2, Src: rng.NewSourceFromString("esp-err")})
	if err := espPlane.SetBlockMode(0, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	src := rng.NewSourceFromString("esp-data")
	n := 500
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = uint32(src.Uint64())
		b[i] = uint32(src.Uint64())
	}
	if err := espPlane.WriteVertical(0, 0, a); err != nil {
		t.Fatal(err)
	}
	got, err := espPlane.BitSerialAdd(0, 0, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("ESP lane %d corrupted: got %#x want %#x", i, got[i], a[i]+b[i])
		}
	}

	// Plain reads under the same error model must show corruption.
	raw := NewPlane(g, DefaultTiming(), DefaultEnergy())
	raw.SetErrorModel(ErrorModel{RawBitErrorRate: 1e-2, Src: rng.NewSourceFromString("raw-err")})
	page := make([]uint64, g.PageWords())
	for i := range page {
		page[i] = src.Uint64()
	}
	if err := raw.ProgramPage(1, 0, page); err != nil { // block 1 stays TLC
		t.Fatal(err)
	}
	if err := raw.ReadPage(1, 0); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := range page {
		if raw.S[i] != page[i] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("error model injected no flips on a non-ESP read")
	}
}

func TestErrorModelDisabledByDefault(t *testing.T) {
	p := newTestPlane()
	data := make([]uint64, p.Geometry().PageWords())
	data[0] = 0xDEADBEEF
	if err := p.ProgramPage(1, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(1, 0); err != nil {
		t.Fatal(err)
	}
	if p.S[0] != 0xDEADBEEF {
		t.Fatal("default plane must read exactly")
	}
}
