package segment

import "unsafe"

// u64Bytes reinterprets a coefficient slice as its in-memory bytes.
// Only meaningful on little-endian hosts (the file's byte order); the
// callers gate on nativeLittleEndian.
func u64Bytes(words []uint64) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), len(words)*8)
}

// bytesU64 reinterprets an 8-byte-aligned byte slice as coefficients.
// The segment layout guarantees alignment: mappings are page-aligned
// and the planes start at an 8-byte multiple.
func bytesU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil // cannot alias unaligned memory; caller copies instead
	}
	return unsafe.Slice((*uint64)(p), len(b)/8)
}
