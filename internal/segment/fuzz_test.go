package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
)

// FuzzDecodeSegment is the persistence-layer sibling of the proto wire
// fuzzers: arbitrary file bytes must never panic the loader — only
// error — and anything that does load must satisfy the meta invariants
// the store relies on. Seeds are a valid segment plus truncations and
// bit flips at the structurally interesting offsets.
func FuzzDecodeSegment(f *testing.F) {
	p := bfv.ParamsToy()
	dir, err := os.MkdirTemp("", "segfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	writeFixture(f, dir, "fuzz", 160, core.EngineSpec{Kind: core.EnginePool, Workers: 2})
	enc, err := os.ReadFile(filepath.Join(dir, FileName("fuzz")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	for _, cut := range []int{8, headerLen - 1, headerLen + 3, len(enc) / 2, len(enc) - footerLen, len(enc) - 1} {
		if cut >= 0 && cut < len(enc) {
			f.Add(enc[:cut])
		}
	}
	for _, off := range []int{0, 9, 17, 33, 57, headerLen, len(enc) / 2, len(enc) - 20, len(enc) - 4} {
		flipped := bytes.Clone(enc)
		flipped[off] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, p.N, p.Q)
		if err != nil {
			if s != nil {
				t.Fatal("Open returned both a segment and an error")
			}
			return
		}
		defer s.Close()
		m := s.Meta()
		if m.RingDegree != p.N || m.Modulus != p.Q {
			t.Fatalf("loaded segment violates geometry: %+v", m)
		}
		if m.Chunks < 1 || len(s.Arena()) != 2*m.Chunks*m.RingDegree {
			t.Fatalf("arena size %d inconsistent with %d chunks", len(s.Arena()), m.Chunks)
		}
		if len(m.Name) > MaxNameLen {
			t.Fatalf("loaded name of %d bytes", len(m.Name))
		}
		if _, err := s.DB(); err != nil {
			t.Fatalf("adopting a validated segment failed: %v", err)
		}
		// ReadMeta must agree with the full loader on anything Open
		// accepts.
		rm, err := ReadMeta(path)
		if err != nil || rm != m {
			t.Fatalf("ReadMeta disagrees with Open: %+v vs %+v (%v)", rm, m, err)
		}
	})
}
