package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ciphermatch/internal/core"
)

// ManifestName is the JSON index written beside the segment files.
const ManifestName = "MANIFEST.json"

const segSuffix = ".seg"

// QuarantineSuffix marks a segment file set aside by the runtime
// scrubber after a checksum failure: the file keeps its bytes for
// operator inspection but no longer matches the *.seg scan pattern, so
// subsequent recovery scans skip it.
const QuarantineSuffix = ".quarantined"

// FileName maps a database name to its segment file name. Names are
// arbitrary bytes up to MaxNameLen, so the file name is a digest, not
// an escape of the name; the name itself is stored inside the segment
// header and the manifest.
func FileName(name string) string {
	sum := sha256.Sum256([]byte(name))
	return hex.EncodeToString(sum[:16]) + segSuffix
}

// Entry is one registered segment.
type Entry struct {
	Meta Meta
	File string // file name within the directory
}

// Damaged reports a segment file the recovery scan could not validate.
type Damaged struct {
	File string
	Err  error
}

// Dir manages a data directory of segment files plus its manifest. The
// directory scan is authoritative — every well-formed *.seg file is a
// tenant, whatever the manifest says — so a crash between a segment
// rename and the manifest write loses nothing: the next OpenDir adopts
// the orphan from its self-describing header and rewrites the manifest.
type Dir struct {
	root string
	fsys FS

	mu      sync.Mutex
	entries map[string]*Entry // by database name
	damaged []Damaged
}

// manifest is the on-disk JSON shape.
type manifest struct {
	Version  int             `json:"version"`
	Segments []manifestEntry `json:"segments"`
}

type manifestEntry struct {
	Name        string `json:"name"`
	File        string `json:"file"`
	RingDegree  int    `json:"ring_degree"`
	Modulus     uint64 `json:"modulus"`
	Chunks      int    `json:"chunks"`
	BitLen      int    `json:"bit_len"`
	NumSegments int    `json:"num_segments"`
	EngineKind  string `json:"engine_kind,omitempty"`
	Workers     int    `json:"engine_workers,omitempty"`
	Shards      int    `json:"engine_shards,omitempty"`
}

// OpenDir opens (creating if needed) a data directory: it scans every
// segment file, validates headers, reconciles the manifest, and removes
// stale temporary files from interrupted writes. Files that fail
// validation are quarantined in Damaged(), not deleted — the store
// boots without them and an operator can inspect or restore.
func OpenDir(root string) (*Dir, error) {
	return OpenDirFS(OSFS{}, root)
}

// OpenDirFS is OpenDir over an explicit filesystem; every subsequent
// Save/Load/Remove on the returned Dir goes through fsys too.
func OpenDirFS(fsys FS, root string) (*Dir, error) {
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{root: root, fsys: fsys, entries: make(map[string]*Entry)}
	names, err := fsys.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, de := range names {
		fn := de.Name()
		if strings.HasSuffix(fn, ".tmp") {
			fsys.Remove(filepath.Join(root, fn)) //nolint:errcheck // stale partial write
			continue
		}
		if !strings.HasSuffix(fn, segSuffix) || de.IsDir() {
			continue
		}
		meta, err := ReadMetaFS(fsys, filepath.Join(root, fn))
		if err != nil {
			d.damaged = append(d.damaged, Damaged{File: fn, Err: err})
			continue
		}
		// Prefer the canonical file for a name if two files claim it
		// (possible only after manual copying into the directory).
		if old, ok := d.entries[meta.Name]; ok && old.File == FileName(meta.Name) {
			d.damaged = append(d.damaged, Damaged{File: fn, Err: fmt.Errorf("segment: duplicate of %q", meta.Name)})
			continue
		}
		d.entries[meta.Name] = &Entry{Meta: meta, File: fn}
	}
	if err := d.writeManifest(); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// FS returns the filesystem the directory operates through.
func (d *Dir) FS() FS { return d.fsys }

// Entries lists registered segments sorted by database name.
func (d *Dir) Entries() []Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.Name < out[j].Meta.Name })
	return out
}

// Damaged lists segment files the recovery scan quarantined.
func (d *Dir) Damaged() []Damaged {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Damaged(nil), d.damaged...)
}

// Save writes db as meta.Name's segment (crash-atomically, replacing
// any previous version) and updates the manifest.
func (d *Dir) Save(meta Meta, db *core.EncryptedDB) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn := FileName(meta.Name)
	if err := WriteFS(d.fsys, filepath.Join(d.root, fn), meta, db); err != nil {
		return err
	}
	d.entries[meta.Name] = &Entry{Meta: meta, File: fn}
	return d.writeManifest()
}

// Load opens the named segment, verifying checksums and geometry.
func (d *Dir) Load(name string, ringDegree int, modulus uint64) (*Segment, error) {
	d.mu.Lock()
	e, ok := d.entries[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("segment: no segment for database %q", name)
	}
	return OpenFS(d.fsys, filepath.Join(d.root, e.File), ringDegree, modulus)
}

// Remove deletes the named segment file and its manifest entry.
func (d *Dir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok {
		return nil
	}
	if err := d.fsys.Remove(filepath.Join(d.root, e.File)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(d.entries, name)
	d.fsys.SyncDir(d.root) //nolint:errcheck // advisory durability barrier
	return d.writeManifest()
}

// Quarantine sets the named segment's file aside (renamed with
// QuarantineSuffix so the recovery scan skips it, bytes preserved for
// inspection), drops its manifest entry and records it as damaged with
// reason. Called by the runtime scrubber when a resident or reloaded
// segment fails its checksums — the same end state startup recovery
// gives a file that never validated.
func (d *Dir) Quarantine(name string, reason error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok {
		return nil
	}
	src := filepath.Join(d.root, e.File)
	if err := d.fsys.Rename(src, src+QuarantineSuffix); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(d.entries, name)
	d.damaged = append(d.damaged, Damaged{File: e.File, Err: reason})
	d.fsys.SyncDir(d.root) //nolint:errcheck // advisory durability barrier
	return d.writeManifest()
}

// writeManifest rewrites the manifest atomically; d.mu held. The
// manifest is a cache of the self-describing segment headers, so its
// two crash points (before the tmp write, before the rename) lose
// nothing: the next OpenDir scan rebuilds it.
func (d *Dir) writeManifest() error {
	m := manifest{Version: 1}
	for _, name := range sortedNames(d.entries) {
		e := d.entries[name]
		m.Segments = append(m.Segments, manifestEntry{
			Name:        e.Meta.Name,
			File:        e.File,
			RingDegree:  e.Meta.RingDegree,
			Modulus:     e.Meta.Modulus,
			Chunks:      e.Meta.Chunks,
			BitLen:      e.Meta.BitLen,
			NumSegments: e.Meta.NumSegments,
			EngineKind:  e.Meta.Spec.Kind,
			Workers:     e.Meta.Spec.Workers,
			Shards:      e.Meta.Spec.Shards,
		})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	if err := d.fsys.Crash(CrashManifestWrite); err != nil {
		return err
	}
	path := filepath.Join(d.root, ManifestName)
	tmp := path + ".tmp"
	if err := writeFileFS(d.fsys, tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := d.fsys.Crash(CrashManifestRename); err != nil {
		return err
	}
	if err := d.fsys.Rename(tmp, path); err != nil {
		d.fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return err
	}
	d.fsys.SyncDir(d.root) //nolint:errcheck // advisory durability barrier
	return nil
}

// writeFileFS is os.WriteFile through an FS.
func writeFileFS(fsys FS, name string, data []byte) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedNames(m map[string]*Entry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
