package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ciphermatch/internal/core"
)

// ManifestName is the JSON index written beside the segment files.
const ManifestName = "MANIFEST.json"

const segSuffix = ".seg"

// FileName maps a database name to its segment file name. Names are
// arbitrary bytes up to MaxNameLen, so the file name is a digest, not
// an escape of the name; the name itself is stored inside the segment
// header and the manifest.
func FileName(name string) string {
	sum := sha256.Sum256([]byte(name))
	return hex.EncodeToString(sum[:16]) + segSuffix
}

// Entry is one registered segment.
type Entry struct {
	Meta Meta
	File string // file name within the directory
}

// Damaged reports a segment file the recovery scan could not validate.
type Damaged struct {
	File string
	Err  error
}

// Dir manages a data directory of segment files plus its manifest. The
// directory scan is authoritative — every well-formed *.seg file is a
// tenant, whatever the manifest says — so a crash between a segment
// rename and the manifest write loses nothing: the next OpenDir adopts
// the orphan from its self-describing header and rewrites the manifest.
type Dir struct {
	root string

	mu      sync.Mutex
	entries map[string]*Entry // by database name
	damaged []Damaged
}

// manifest is the on-disk JSON shape.
type manifest struct {
	Version  int             `json:"version"`
	Segments []manifestEntry `json:"segments"`
}

type manifestEntry struct {
	Name        string `json:"name"`
	File        string `json:"file"`
	RingDegree  int    `json:"ring_degree"`
	Modulus     uint64 `json:"modulus"`
	Chunks      int    `json:"chunks"`
	BitLen      int    `json:"bit_len"`
	NumSegments int    `json:"num_segments"`
	EngineKind  string `json:"engine_kind,omitempty"`
	Workers     int    `json:"engine_workers,omitempty"`
	Shards      int    `json:"engine_shards,omitempty"`
}

// OpenDir opens (creating if needed) a data directory: it scans every
// segment file, validates headers, reconciles the manifest, and removes
// stale temporary files from interrupted writes. Files that fail
// validation are quarantined in Damaged(), not deleted — the store
// boots without them and an operator can inspect or restore.
func OpenDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{root: root, entries: make(map[string]*Entry)}
	names, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, de := range names {
		fn := de.Name()
		if strings.HasSuffix(fn, ".tmp") {
			os.Remove(filepath.Join(root, fn)) //nolint:errcheck // stale partial write
			continue
		}
		if !strings.HasSuffix(fn, segSuffix) || de.IsDir() {
			continue
		}
		meta, err := ReadMeta(filepath.Join(root, fn))
		if err != nil {
			d.damaged = append(d.damaged, Damaged{File: fn, Err: err})
			continue
		}
		// Prefer the canonical file for a name if two files claim it
		// (possible only after manual copying into the directory).
		if old, ok := d.entries[meta.Name]; ok && old.File == FileName(meta.Name) {
			d.damaged = append(d.damaged, Damaged{File: fn, Err: fmt.Errorf("segment: duplicate of %q", meta.Name)})
			continue
		}
		d.entries[meta.Name] = &Entry{Meta: meta, File: fn}
	}
	if err := d.writeManifest(); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// Entries lists registered segments sorted by database name.
func (d *Dir) Entries() []Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.Name < out[j].Meta.Name })
	return out
}

// Damaged lists segment files the recovery scan quarantined.
func (d *Dir) Damaged() []Damaged {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Damaged(nil), d.damaged...)
}

// Save writes db as meta.Name's segment (crash-atomically, replacing
// any previous version) and updates the manifest.
func (d *Dir) Save(meta Meta, db *core.EncryptedDB) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn := FileName(meta.Name)
	if err := Write(filepath.Join(d.root, fn), meta, db); err != nil {
		return err
	}
	d.entries[meta.Name] = &Entry{Meta: meta, File: fn}
	return d.writeManifest()
}

// Load opens the named segment, verifying checksums and geometry.
func (d *Dir) Load(name string, ringDegree int, modulus uint64) (*Segment, error) {
	d.mu.Lock()
	e, ok := d.entries[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("segment: no segment for database %q", name)
	}
	return Open(filepath.Join(d.root, e.File), ringDegree, modulus)
}

// Remove deletes the named segment file and its manifest entry.
func (d *Dir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok {
		return nil
	}
	if err := os.Remove(filepath.Join(d.root, e.File)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(d.entries, name)
	syncDir(d.root)
	return d.writeManifest()
}

// writeManifest rewrites the manifest atomically; d.mu held.
func (d *Dir) writeManifest() error {
	m := manifest{Version: 1}
	for _, name := range sortedNames(d.entries) {
		e := d.entries[name]
		m.Segments = append(m.Segments, manifestEntry{
			Name:        e.Meta.Name,
			File:        e.File,
			RingDegree:  e.Meta.RingDegree,
			Modulus:     e.Meta.Modulus,
			Chunks:      e.Meta.Chunks,
			BitLen:      e.Meta.BitLen,
			NumSegments: e.Meta.NumSegments,
			EngineKind:  e.Meta.Spec.Kind,
			Workers:     e.Meta.Spec.Workers,
			Shards:      e.Meta.Spec.Shards,
		})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(d.root, ManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return err
	}
	syncDir(d.root)
	return nil
}

func sortedNames(m map[string]*Entry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
