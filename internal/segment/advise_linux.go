//go:build linux || darwin

package segment

import "syscall"

// adviseSupported reports whether madvise hints reach the kernel.
const adviseSupported = true

// adviseSequential tells the kernel the mapping will be read
// front-to-back, so readahead can run maximally aggressive — exactly
// the access pattern of the segment open's CRC verification pass and of
// the fused search kernel streaming the C0 plane.
func adviseSequential(b []byte) {
	_ = syscall.Madvise(b, syscall.MADV_SEQUENTIAL) //nolint:errcheck // advisory only
}

// adviseWillNeed asks the kernel to start faulting the mapping in ahead
// of the first search over a cold-loaded segment, overlapping flash
// reads with engine construction instead of paying them one page fault
// at a time inside the kernel's hot loop.
func adviseWillNeed(b []byte) {
	_ = syscall.Madvise(b, syscall.MADV_WILLNEED) //nolint:errcheck // advisory only
}
