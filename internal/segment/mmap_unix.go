//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path; the fallback loader
// copies the planes into a heap arena instead.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so the mapping is
// the kernel page cache over the segment file itself: pages fault in
// from flash as the search kernel streams the plane.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
