package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"

	"ciphermatch/internal/core"
)

// Write persists db as a segment file at path, crash-atomically: the
// bytes are streamed to a temporary file in the same directory, fsynced,
// and renamed over path, then the directory is fsynced, so a crash at
// any point leaves either the old file or the new one — never a torn
// segment. The database chunks must be uniform 2-component ciphertexts
// of the meta's ring degree (everything the wire decoder and the client
// ever produce).
func Write(path string, meta Meta, db *core.EncryptedDB) error {
	return WriteFS(OSFS{}, path, meta, db)
}

// WriteFS is Write over an explicit filesystem. Every step of the
// tmp+fsync+rename+dirsync sequence announces a named crash point
// first, so a fault-injecting FS can simulate the process dying at any
// of them; the crash-point matrix test requires recovery to be correct
// after every one.
func WriteFS(fsys FS, path string, meta Meta, db *core.EncryptedDB) error {
	if err := checkWritable(meta, db); err != nil {
		return err
	}
	if err := fsys.Crash(CrashWriteTmpCreate); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// Best-effort cleanup on any failure below; harmless after rename.
	defer fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
	if err := writeTo(fsys, f, meta, db); err != nil {
		f.Close()
		return err
	}
	if err := fsys.Crash(CrashWriteSync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := fsys.Crash(CrashWriteClose); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Crash(CrashWriteRename); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	// A crash here loses only the directory sync: the rename is done, so
	// recovery adopts the (unacknowledged but complete) segment.
	if err := fsys.Crash(CrashWriteDirsync); err != nil {
		return err
	}
	fsys.SyncDir(filepath.Dir(path)) //nolint:errcheck // advisory durability barrier
	return nil
}

// checkWritable validates that db matches meta chunk for chunk.
func checkWritable(meta Meta, db *core.EncryptedDB) error {
	if len(meta.Name) > MaxNameLen {
		return fmt.Errorf("segment: name of %d bytes exceeds %d", len(meta.Name), MaxNameLen)
	}
	if len(meta.Spec.Kind) > maxKindLen {
		return fmt.Errorf("segment: engine kind %q exceeds %d bytes", meta.Spec.Kind, maxKindLen)
	}
	if meta.Chunks != len(db.Chunks) {
		return fmt.Errorf("segment: meta declares %d chunks, database has %d", meta.Chunks, len(db.Chunks))
	}
	if meta.Chunks < 1 || meta.Chunks > maxChunks || meta.RingDegree < 1 || meta.RingDegree > maxRingDegree {
		return fmt.Errorf("segment: geometry %d chunks x degree %d out of range", meta.Chunks, meta.RingDegree)
	}
	for j, ct := range db.Chunks {
		if ct == nil || len(ct.C) != 2 || len(ct.C[0]) != meta.RingDegree || len(ct.C[1]) != meta.RingDegree {
			return fmt.Errorf("segment: chunk %d is not a 2-component degree-%d ciphertext", j, meta.RingDegree)
		}
	}
	return nil
}

// crashFlush flushes the buffered writer, then announces a crash point:
// a simulated crash must leave exactly the bytes written so far on disk
// (the torn state the recovery scan will face), so the buffer cannot be
// allowed to hide them.
func crashFlush(fsys FS, w *bufio.Writer, point string) error {
	if err := w.Flush(); err != nil {
		return err
	}
	return fsys.Crash(point)
}

// writeTo streams header, name, planes and footer.
func writeTo(fsys FS, f File, meta Meta, db *core.EncryptedDB) error {
	w := bufio.NewWriterSize(f, 1<<20)
	head := encodeHeader(meta)
	if _, err := w.Write(head); err != nil {
		return err
	}
	headCRC := crc64.Checksum(head, crcTable)
	if err := crashFlush(fsys, w, CrashWriteHeader); err != nil {
		return err
	}

	var planeCRC [2]uint64
	planePoints := [2]string{CrashWritePlane0, CrashWritePlane1}
	if arena := db.Arena(); arena != nil && nativeLittleEndian {
		// Compacted database on a little-endian host: the arena already
		// is the file's plane bytes — two bulk writes, no re-encoding.
		words := len(arena) / 2
		for p := 0; p < 2; p++ {
			plane := u64Bytes(arena[p*words : (p+1)*words])
			planeCRC[p] = crc64.Checksum(plane, crcTable)
			if _, err := w.Write(plane); err != nil {
				return err
			}
			if err := crashFlush(fsys, w, planePoints[p]); err != nil {
				return err
			}
		}
	} else {
		var tmp [8]byte
		for p := 0; p < 2; p++ {
			crc := crc64.New(crcTable)
			for _, ct := range db.Chunks {
				for _, c := range ct.C[p] {
					binary.LittleEndian.PutUint64(tmp[:], c)
					crc.Write(tmp[:])
					if _, err := w.Write(tmp[:]); err != nil {
						return err
					}
				}
			}
			planeCRC[p] = crc.Sum64()
			if err := crashFlush(fsys, w, planePoints[p]); err != nil {
				return err
			}
		}
	}

	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[0:], planeCRC[0])
	binary.LittleEndian.PutUint64(foot[8:], planeCRC[1])
	binary.LittleEndian.PutUint64(foot[16:], headCRC)
	copy(foot[24:], endMagic)
	if _, err := w.Write(foot[:]); err != nil {
		return err
	}
	return crashFlush(fsys, w, CrashWriteFooter)
}
