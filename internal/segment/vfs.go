package segment

import (
	"errors"
	"io"
	"io/fs"
	"os"
)

// FS abstracts every file-system operation the segment writer, loader
// and directory manager perform, so a fault injector (internal/fault)
// can interpose short writes, ENOSPC, fsync failures, mmap failure,
// read-time bit flips and simulated crashes under the real code paths.
// Production code uses OSFS; nothing in this package ever touches the
// os package directly except through it.
//
// Crash is the named crash-point hook: the writer calls it at every
// step of the tmp+fsync+rename+dirsync path (see CrashPoints), and an
// injector armed for that point returns a non-nil error — emulating the
// process dying there, with everything already flushed as the torn
// on-disk state recovery will see. OSFS.Crash always returns nil.
type FS interface {
	// OpenFile opens a file like os.OpenFile (os.O_RDONLY for loads).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(name string, perm fs.FileMode) error
	// SyncDir fsyncs a directory so a just-renamed entry is durable.
	// Best effort: some platforms cannot open or sync directories.
	SyncDir(name string) error
	// Mmap maps size bytes of f read-only, or reports that mapping is
	// unavailable (the loader then falls back to the plain-read path).
	Mmap(f File, size int64) ([]byte, error)
	// Munmap releases a mapping returned by Mmap.
	Munmap(b []byte) error
	// Crash is the named crash-point hook; non-nil aborts the step.
	Crash(point string) error
}

// File is the per-file surface the segment code needs.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Stat() (fs.FileInfo, error)
	Sync() error
}

// Named crash points of the segment write path, in execution order.
// Each marks "the process dies here": everything before the point is on
// disk, nothing after it is. The crash-point matrix test simulates every
// one and requires recovery to serve bit-identical search results.
const (
	CrashWriteTmpCreate = "segment.write.tmp-create" // before the tmp file exists
	CrashWriteHeader    = "segment.write.header"     // header+name written, no planes
	CrashWritePlane0    = "segment.write.plane0"     // C0 plane written, C1 missing
	CrashWritePlane1    = "segment.write.plane1"     // both planes written, no footer
	CrashWriteFooter    = "segment.write.footer"     // complete bytes, not fsynced
	CrashWriteSync      = "segment.write.sync"       // before fsync
	CrashWriteClose     = "segment.write.close"      // fsynced, before close
	CrashWriteRename    = "segment.write.rename"     // before the rename: tmp only
	CrashWriteDirsync   = "segment.write.dirsync"    // renamed, directory not fsynced
	CrashManifestWrite  = "segment.manifest.write"   // before the manifest tmp write
	CrashManifestRename = "segment.manifest.rename"  // manifest tmp written, not renamed
)

// CrashPoints lists every named crash point in execution order — what
// the crash-point matrix test iterates.
func CrashPoints() []string {
	return []string{
		CrashWriteTmpCreate,
		CrashWriteHeader,
		CrashWritePlane0,
		CrashWritePlane1,
		CrashWriteFooter,
		CrashWriteSync,
		CrashWriteClose,
		CrashWriteRename,
		CrashWriteDirsync,
		CrashManifestWrite,
		CrashManifestRename,
	}
}

// OSFS is the real filesystem: os calls, platform mmap, no faults.
type OSFS struct{}

// OpenFile opens a real file.
func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames a real file.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a real file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir lists a real directory.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll creates a real directory tree.
func (OSFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

// SyncDir fsyncs a real directory; best effort.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return nil // advisory durability barrier
	}
	d.Sync() //nolint:errcheck // advisory durability barrier
	d.Close()
	return nil
}

// Mmap maps the file where the platform supports it; the loader treats
// any error as "copy instead".
func (OSFS) Mmap(f File, size int64) ([]byte, error) {
	osf, ok := f.(*os.File)
	if !ok || !mmapSupported {
		return nil, errors.ErrUnsupported
	}
	return mmapFile(osf, size)
}

// Munmap releases a platform mapping.
func (OSFS) Munmap(b []byte) error { return munmapFile(b) }

// Crash never fires on the real filesystem.
func (OSFS) Crash(string) error { return nil }
