//go:build !unix

package segment

import (
	"errors"
	"os"
)

// mmapSupported: no memory mapping on this platform; Open falls back
// to copying the planes into a heap arena.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(b []byte) error { return nil }
