package segment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/rng"
)

// fixtureDB builds a compacted toy-parameter encrypted database of
// dbBytes bytes.
func fixtureDB(tb testing.TB, seed string, dbBytes int) (bfv.Params, *core.EncryptedDB) {
	tb.Helper()
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, Mode: core.ModeSeededMatch}, rng.NewSourceFromString(seed))
	if err != nil {
		tb.Fatal(err)
	}
	data := make([]byte, dbBytes)
	rng.NewSourceFromString(seed + "-data").Bytes(data)
	db, err := client.EncryptDatabase(data, dbBytes*8)
	if err != nil {
		tb.Fatal(err)
	}
	return p, db
}

func fixtureMeta(name string, p bfv.Params, db *core.EncryptedDB, spec core.EngineSpec) Meta {
	return Meta{
		Name:        name,
		RingDegree:  p.N,
		Modulus:     p.Q,
		Chunks:      len(db.Chunks),
		BitLen:      db.BitLen,
		NumSegments: db.NumSegments,
		Spec:        spec,
	}
}

func writeFixture(tb testing.TB, dir, name string, dbBytes int, spec core.EngineSpec) (string, bfv.Params, *core.EncryptedDB) {
	tb.Helper()
	p, db := fixtureDB(tb, "seg-"+name, dbBytes)
	path := filepath.Join(dir, FileName(name))
	if err := Write(path, fixtureMeta(name, p, db, spec), db); err != nil {
		tb.Fatal(err)
	}
	return path, p, db
}

func TestSegmentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	spec := core.EngineSpec{Kind: core.EnginePool, Workers: 3, Shards: 2}
	path, p, db := writeFixture(t, dir, "tenant/α", 160, spec)

	s, err := Open(path, p.N, p.Q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Meta()
	if m.Name != "tenant/α" || m.RingDegree != p.N || m.Modulus != p.Q ||
		m.Chunks != len(db.Chunks) || m.BitLen != db.BitLen || m.NumSegments != db.NumSegments || m.Spec != spec {
		t.Fatalf("meta did not round-trip: %+v", m)
	}
	got, err := s.DB()
	if err != nil {
		t.Fatal(err)
	}
	if got.BitLen != db.BitLen || got.NumSegments != db.NumSegments || len(got.Chunks) != len(db.Chunks) {
		t.Fatalf("adopted database shape differs: %d chunks, BitLen %d", len(got.Chunks), got.BitLen)
	}
	for j, ct := range db.Chunks {
		for c := 0; c < 2; c++ {
			for i, v := range ct.C[c] {
				if got.Chunks[j].C[c][i] != v {
					t.Fatalf("chunk %d component %d coefficient %d: %d != %d", j, c, i, got.Chunks[j].C[c][i], v)
				}
			}
		}
	}
	if !got.Compacted() {
		t.Fatal("adopted database is not arena-backed")
	}
}

// TestSegmentSearchOverMapping proves an engine can run directly over
// the loaded arena: search results over the segment-backed database
// match the original heap database.
func TestSegmentSearchOverMapping(t *testing.T) {
	p := bfv.ParamsToy()
	client, err := core.NewClient(core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}, rng.NewSourceFromString("map-search"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 192)
	rng.NewSourceFromString("map-search-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{data[10], data[11], data[12], data[13]}, 32, len(data)*8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewSerialEngine(p, db).SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), FileName("map-search"))
	if err := Write(path, fixtureMeta("map-search", p, db, core.EngineSpec{}), db); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, p.N, p.Q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mdb, err := s.DB()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.NewSerialEngine(p, mdb).SearchAndIndex(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("segment-backed search found %v, heap %v", got.Candidates, want.Candidates)
	}
	for i := range got.Candidates {
		if got.Candidates[i] != want.Candidates[i] {
			t.Fatalf("segment-backed search found %v, heap %v", got.Candidates, want.Candidates)
		}
	}
}

// TestSegmentCorruption holds the loader to the distinct-error
// contract: every damage class maps to its own sentinel.
func TestSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	path, p, _ := writeFixture(t, dir, "corrupt", 160, core.EngineSpec{})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(t *testing.T, mutate func([]byte) []byte) error {
		t.Helper()
		mutated := mutate(append([]byte(nil), orig...))
		mp := filepath.Join(dir, "mutated.seg")
		if err := os.WriteFile(mp, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(mp, p.N, p.Q)
		if s != nil {
			s.Close()
		}
		return err
	}

	cases := []struct {
		name   string
		want   error
		mutate func([]byte) []byte
	}{
		{"wrong-magic", ErrBadMagic, func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"wrong-version", ErrBadVersion, func(b []byte) []byte { b[8] = 99; return b }},
		{"truncated-header", ErrTruncated, func(b []byte) []byte { return b[:60] }},
		{"truncated-plane", ErrTruncated, func(b []byte) []byte { return b[:len(b)-footerLen-17] }},
		{"trailing-garbage", ErrCorrupt, func(b []byte) []byte { return append(b, 0xAA) }},
		{"plane-bit-flip", ErrChecksum, func(b []byte) []byte { b[headerLen+pad8(len("corrupt"))+5] ^= 0x10; return b }},
		{"header-bit-flip", ErrChecksum, func(b []byte) []byte { b[44] ^= 0x01; return b }}, // reserved byte: only the CRC sees it
		{"footer-magic", ErrCorrupt, func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"absurd-chunk-count", ErrCorrupt, func(b []byte) []byte { b[36] = 0xFF; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := reopen(t, tc.mutate)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("degree-mismatch", func(t *testing.T) {
		if _, err := Open(path, 2*p.N, p.Q); !errors.Is(err, ErrGeometry) {
			t.Fatalf("got %v, want ErrGeometry", err)
		}
		if _, err := Open(path, p.N, p.Q+1); !errors.Is(err, ErrGeometry) {
			t.Fatalf("got %v, want ErrGeometry", err)
		}
	})
	t.Run("intact-still-opens", func(t *testing.T) {
		s, err := Open(path, p.N, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	})
}

// TestOpenAllocsConstant pins the zero-copy claim: loading a segment
// costs the same number of heap allocations whatever the chunk count.
func TestOpenAllocsConstant(t *testing.T) {
	dir := t.TempDir()
	pathSmall, p, _ := writeFixture(t, dir, "small", 160, core.EngineSpec{})    // 2 chunks at toy params
	pathLarge, _, dbL := writeFixture(t, dir, "large", 2048, core.EngineSpec{}) // 16 chunks
	if len(dbL.Chunks) < 16 {
		t.Fatalf("large fixture has only %d chunks", len(dbL.Chunks))
	}
	measure := func(path string) float64 {
		return testing.AllocsPerRun(20, func() {
			s, err := Open(path, p.N, p.Q)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.DB(); err != nil {
				t.Fatal(err)
			}
			s.Close()
		})
	}
	small, large := measure(pathSmall), measure(pathLarge)
	if small != large {
		t.Fatalf("allocations scale with chunk count: %v (2 chunks) vs %v (16 chunks)", small, large)
	}
	if small > 32 {
		t.Fatalf("segment load costs %v allocations, want a small constant", small)
	}
}

func TestDirRecovery(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	p, db1 := fixtureDB(t, "dir-a", 160)
	_, db2 := fixtureDB(t, "dir-b", 320)
	specB := core.EngineSpec{Kind: core.EnginePool, Workers: 2}
	if err := d.Save(fixtureMeta("alpha", p, db1, core.EngineSpec{}), db1); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(fixtureMeta("beta", p, db2, specB), db2); err != nil {
		t.Fatal(err)
	}
	// Leftover temp file and one damaged segment must not block reopen.
	if err := os.WriteFile(filepath.Join(root, "stale.seg.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "junk.seg"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Delete the manifest: the scan must rebuild everything from the
	// self-describing segment headers (crash before manifest write).
	if err := os.Remove(filepath.Join(root, ManifestName)); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	entries := d2.Entries()
	if len(entries) != 2 || entries[0].Meta.Name != "alpha" || entries[1].Meta.Name != "beta" {
		t.Fatalf("recovered entries: %+v", entries)
	}
	if entries[1].Meta.Spec != specB {
		t.Fatalf("beta engine spec not recovered: %+v", entries[1].Meta.Spec)
	}
	if entries[1].Meta.Chunks != len(db2.Chunks) || entries[1].Meta.BitLen != db2.BitLen {
		t.Fatalf("beta geometry not recovered: %+v", entries[1].Meta)
	}
	if dmg := d2.Damaged(); len(dmg) != 1 || dmg[0].File != "junk.seg" {
		t.Fatalf("damaged list: %+v", dmg)
	}
	if _, err := os.Stat(filepath.Join(root, "stale.seg.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived recovery")
	}
	if _, err := os.Stat(filepath.Join(root, ManifestName)); err != nil {
		t.Fatal("manifest not rewritten after recovery scan")
	}

	s, err := d2.Load("beta", p.N, p.Q)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := d2.Remove("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Load("beta", p.N, p.Q); err == nil {
		t.Fatal("load after remove succeeded")
	}
	d3, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if entries := d3.Entries(); len(entries) != 1 || entries[0].Meta.Name != "alpha" {
		t.Fatalf("entries after remove+reopen: %+v", entries)
	}
}

// TestWriteReplaceAtomic checks that re-saving a name atomically
// replaces its segment and leaves no temp residue.
func TestWriteReplaceAtomic(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	p, db1 := fixtureDB(t, "replace-1", 160)
	_, db2 := fixtureDB(t, "replace-2", 320)
	if err := d.Save(fixtureMeta("tenant", p, db1, core.EngineSpec{}), db1); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(fixtureMeta("tenant", p, db2, core.EngineSpec{}), db2); err != nil {
		t.Fatal(err)
	}
	s, err := d.Load("tenant", p.N, p.Q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Meta().Chunks != len(db2.Chunks) {
		t.Fatalf("replacement not visible: %d chunks, want %d", s.Meta().Chunks, len(db2.Chunks))
	}
	files, err := filepath.Glob(filepath.Join(root, "*.tmp"))
	if err != nil || len(files) != 0 {
		t.Fatalf("temp residue after save: %v (%v)", files, err)
	}
}
