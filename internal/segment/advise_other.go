//go:build !linux && !darwin

package segment

// adviseSupported reports whether madvise hints reach the kernel; on
// platforms without a usable Madvise in syscall the hints are no-ops.
const adviseSupported = false

func adviseSequential(b []byte) {}

func adviseWillNeed(b []byte) {}
