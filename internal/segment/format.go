// Package segment implements the durable on-disk form of an encrypted
// database: one segment file per tenant under a data directory, written
// crash-atomically and loaded zero-copy via mmap, so the ciphertext
// arena the fused search kernel streams is the page-cache/flash-backed
// mapping itself. This is the software analogue of CIPHERMATCH's
// in-flash read path (§5, §6.2): the encrypted database lives in flash
// and the search walks it where it lies, instead of the server hauling
// every tenant into heap-resident DRAM.
//
// File layout (version 1, all integers little-endian):
//
//	offset  size  field
//	     0     8  magic "CMSEGARN"
//	     8     4  version (1)
//	    12     4  header length (128)
//	    16     8  ring degree n
//	    24     8  ciphertext modulus q
//	    32     8  chunk count
//	    40     8  database bit length
//	    48     8  segment (16-bit coefficient) count
//	    56     4  name length (<= 255)
//	    60     4  engine workers
//	    64     4  engine shards
//	    68    16  engine kind, NUL-padded
//	    84    44  reserved (zero)
//	   128     -  database name, zero-padded to an 8-byte multiple
//	     -     -  C0 plane: chunk coefficients c(0), 8 bytes each
//	     -     -  C1 plane: chunk coefficients c(1), 8 bytes each
//	     -    32  footer: C0 CRC, C1 CRC, header+name CRC, "CMSEGEND"
//
// The planes are laid out exactly as core.EncryptedDB.Compact lays out
// its arena — all first components, then all second components — and
// every plane starts 8-byte aligned, so on little-endian platforms the
// mapped byte range reinterprets directly as the []uint64 arena that
// core.AdoptArena plugs into the chunk-view layout. Checksums are
// CRC-64/ECMA, one per plane plus one over the header and name.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"ciphermatch/internal/core"
)

// Distinct load-failure classes, so callers (and tests) can tell a
// foreign file from a damaged one from a mismatched one. Every error
// returned by Open/ReadMeta wraps exactly one of these.
var (
	// ErrBadMagic: the file does not start with the segment magic — not
	// a segment file at all.
	ErrBadMagic = errors.New("segment: bad magic")
	// ErrBadVersion: a segment file from an unknown format version.
	ErrBadVersion = errors.New("segment: unsupported format version")
	// ErrTruncated: the file is shorter than its header promises.
	ErrTruncated = errors.New("segment: truncated file")
	// ErrChecksum: a stored CRC does not match the bytes on disk
	// (bit rot, torn write).
	ErrChecksum = errors.New("segment: checksum mismatch")
	// ErrGeometry: the segment's ring degree or modulus differs from
	// the parameters the caller expects.
	ErrGeometry = errors.New("segment: ring geometry mismatch")
	// ErrCorrupt: structurally malformed header or footer (impossible
	// counts, oversize fields, trailing garbage).
	ErrCorrupt = errors.New("segment: malformed file")
)

const (
	magic    = "CMSEGARN"
	endMagic = "CMSEGEND"
	// Version is the current segment format version.
	Version = 1

	headerLen = 128
	footerLen = 32

	// MaxNameLen bounds the stored database name; it mirrors the wire
	// protocol's name bound (proto.MaxNameLen).
	MaxNameLen = 255

	maxKindLen = 16
	// Sanity bounds on header-declared geometry, so a hostile header
	// cannot drive the size arithmetic into overflow.
	maxRingDegree = 1 << 26
	maxChunks     = 1 << 28
)

// crcTable is the CRC-64/ECMA table shared by writer and loader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// nativeLittleEndian reports whether the host lays uint64s out in the
// file's byte order; only then can a mapped plane be reinterpreted as
// the coefficient arena without copying.
var nativeLittleEndian = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// Meta is the identity and geometry of one segment: everything the
// store needs to re-register a tenant after a restart without touching
// the coefficient planes.
type Meta struct {
	// Name is the tenant database name the segment was saved under.
	Name string
	// RingDegree and Modulus pin the BFV parameter point the
	// ciphertexts were produced under.
	RingDegree int
	Modulus    uint64
	// Chunks, BitLen and NumSegments mirror core.EncryptedDB.
	Chunks      int
	BitLen      int
	NumSegments int
	// Spec is the engine the tenant uploaded with; recovery rebuilds
	// the same engine kind over the reloaded arena.
	Spec core.EngineSpec
}

// arenaWords returns the coefficient count of both planes together.
func (m Meta) arenaWords() int { return 2 * m.Chunks * m.RingDegree }

// planeBytes returns the byte size of one plane.
func (m Meta) planeBytes() int64 { return int64(m.Chunks) * int64(m.RingDegree) * 8 }

// CheckGeometry verifies the segment was written under the expected
// ring degree and modulus.
func (m Meta) CheckGeometry(ringDegree int, modulus uint64) error {
	if m.RingDegree != ringDegree || m.Modulus != modulus {
		return fmt.Errorf("%w: segment has n=%d q=%d, store runs n=%d q=%d",
			ErrGeometry, m.RingDegree, m.Modulus, ringDegree, modulus)
	}
	return nil
}

// pad8 rounds n up to a multiple of 8, keeping the planes 8-byte
// aligned behind the variable-length name.
func pad8(n int) int { return (n + 7) &^ 7 }

// encodeHeader renders the header plus the padded name section.
func encodeHeader(m Meta) []byte {
	buf := make([]byte, headerLen+pad8(len(m.Name)))
	copy(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[8:], Version)
	binary.LittleEndian.PutUint32(buf[12:], headerLen)
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.RingDegree))
	binary.LittleEndian.PutUint64(buf[24:], m.Modulus)
	binary.LittleEndian.PutUint64(buf[32:], uint64(m.Chunks))
	binary.LittleEndian.PutUint64(buf[40:], uint64(m.BitLen))
	binary.LittleEndian.PutUint64(buf[48:], uint64(m.NumSegments))
	binary.LittleEndian.PutUint32(buf[56:], uint32(len(m.Name)))
	binary.LittleEndian.PutUint32(buf[60:], uint32(m.Spec.Workers))
	binary.LittleEndian.PutUint32(buf[64:], uint32(m.Spec.Shards))
	copy(buf[68:68+maxKindLen], m.Spec.Kind)
	copy(buf[headerLen:], m.Name)
	return buf
}

// decodeHeader parses and bounds-checks a header block (at least
// headerLen bytes). It returns the meta with an empty Name — the name
// sits behind the fixed block — plus the declared name length.
func decodeHeader(buf []byte) (Meta, int, error) {
	var m Meta
	if len(buf) < headerLen {
		return m, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(buf))
	}
	if string(buf[:8]) != magic {
		return m, 0, fmt.Errorf("%w: % x", ErrBadMagic, buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != Version {
		return m, 0, fmt.Errorf("%w: version %d, this build reads %d", ErrBadVersion, v, Version)
	}
	if hl := binary.LittleEndian.Uint32(buf[12:]); hl != headerLen {
		return m, 0, fmt.Errorf("%w: header length %d", ErrCorrupt, hl)
	}
	n := binary.LittleEndian.Uint64(buf[16:])
	chunks := binary.LittleEndian.Uint64(buf[32:])
	if n < 1 || n > maxRingDegree || n&(n-1) != 0 {
		return m, 0, fmt.Errorf("%w: ring degree %d", ErrCorrupt, n)
	}
	if chunks < 1 || chunks > maxChunks {
		return m, 0, fmt.Errorf("%w: chunk count %d", ErrCorrupt, chunks)
	}
	bitLen := binary.LittleEndian.Uint64(buf[40:])
	numSegs := binary.LittleEndian.Uint64(buf[48:])
	if bitLen > 1<<50 || numSegs > 1<<50 {
		return m, 0, fmt.Errorf("%w: bit length %d / segment count %d", ErrCorrupt, bitLen, numSegs)
	}
	nameLen := binary.LittleEndian.Uint32(buf[56:])
	if nameLen > MaxNameLen {
		return m, 0, fmt.Errorf("%w: name length %d exceeds %d", ErrCorrupt, nameLen, MaxNameLen)
	}
	kind := buf[68 : 68+maxKindLen]
	kindEnd := 0
	for kindEnd < maxKindLen && kind[kindEnd] != 0 {
		kindEnd++
	}
	for _, b := range kind[kindEnd:] {
		if b != 0 {
			return m, 0, fmt.Errorf("%w: engine kind not NUL-padded", ErrCorrupt)
		}
	}
	m.RingDegree = int(n)
	m.Modulus = binary.LittleEndian.Uint64(buf[24:])
	m.Chunks = int(chunks)
	m.BitLen = int(bitLen)
	m.NumSegments = int(numSegs)
	m.Spec = core.EngineSpec{
		Kind:    string(kind[:kindEnd]),
		Workers: int(binary.LittleEndian.Uint32(buf[60:])),
		Shards:  int(binary.LittleEndian.Uint32(buf[64:])),
	}
	return m, int(nameLen), nil
}

// ArenaPlaneCRCs computes the CRC-64/ECMA of each coefficient plane of
// a compact plane-major arena, exactly as Write stores them in the
// segment footer. The store checksums resident arenas with it at upload
// time, so the background scrub can compare memory against the same
// fingerprint a durable segment carries.
func ArenaPlaneCRCs(arena []uint64) [2]uint64 {
	var crcs [2]uint64
	words := len(arena) / 2
	for p := 0; p < 2; p++ {
		plane := arena[p*words : (p+1)*words]
		if nativeLittleEndian {
			crcs[p] = crc64.Checksum(u64Bytes(plane), crcTable)
			continue
		}
		h := crc64.New(crcTable)
		var buf [8]byte
		for _, w := range plane {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:]) //nolint:errcheck // hash.Hash never errors
		}
		crcs[p] = h.Sum64()
	}
	return crcs
}
