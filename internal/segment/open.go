package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"ciphermatch/internal/core"
)

// Segment is a loaded segment file: its metadata plus the coefficient
// arena. On little-endian unix hosts the arena is a read-only view of
// the mmap'd file — zero-copy, page-cache backed — and Close unmaps it;
// elsewhere it is a heap copy. Either way loading costs O(1) heap
// allocations independent of the chunk count.
//
// The arena (and any EncryptedDB adopted over it) must not be used
// after Close: a mapped arena's pages vanish with the mapping.
type Segment struct {
	meta     Meta
	arena    []uint64
	mapping  []byte // non-nil while mmap-backed
	fsys     FS     // filesystem that produced the mapping
	planeCRC [2]uint64
}

// Meta returns the segment's identity and geometry.
func (s *Segment) Meta() Meta { return s.meta }

// Arena returns the coefficient planes in core.EncryptedDB.Compact
// layout (C0 plane then C1 plane). Read-only.
func (s *Segment) Arena() []uint64 { return s.arena }

// PlaneCRCs returns the CRC-64/ECMA of each coefficient plane as stored
// in the file footer (verified against the bytes at load time). The
// store records them so the background scrubber can re-verify resident
// arenas against the durable checksums.
func (s *Segment) PlaneCRCs() [2]uint64 { return s.planeCRC }

// Mapped reports whether the arena is a zero-copy file mapping.
func (s *Segment) Mapped() bool { return s.mapping != nil }

// Advised reports whether madvise hints reach the kernel for this
// segment (a mapped arena on a platform with madvise).
func (s *Segment) Advised() bool { return s.mapping != nil && adviseSupported }

// AdviseWillNeed hints the kernel to fault the mapping in ahead of
// imminent sequential reads. The durable store calls it when a cold
// segment is loaded for a search, so flash reads overlap engine
// construction instead of serialising behind the kernel's page faults.
// No-op for copied (non-mapped) arenas.
func (s *Segment) AdviseWillNeed() {
	if s.mapping != nil {
		adviseWillNeed(s.mapping)
	}
}

// DB adopts the arena into an EncryptedDB: chunk views over the mapped
// (or copied) planes, ready for any engine. The database is read-only
// and dies with the segment's Close.
func (s *Segment) DB() (*core.EncryptedDB, error) {
	db, err := core.AdoptArena(s.meta.RingDegree, s.meta.Chunks, s.arena)
	if err != nil {
		return nil, err
	}
	db.BitLen = s.meta.BitLen
	db.NumSegments = s.meta.NumSegments
	return db, nil
}

// Close releases the mapping (or drops the heap arena). Idempotent.
func (s *Segment) Close() error {
	m, fsys := s.mapping, s.fsys
	s.mapping, s.arena, s.fsys = nil, nil, nil
	if m != nil {
		if fsys == nil {
			fsys = OSFS{}
		}
		return fsys.Munmap(m)
	}
	return nil
}

// Open loads the segment at path, verifying structure and checksums,
// and rejects files whose ring geometry differs from (ringDegree,
// modulus). The error wraps one of ErrBadMagic, ErrBadVersion,
// ErrTruncated, ErrChecksum, ErrGeometry or ErrCorrupt.
func Open(path string, ringDegree int, modulus uint64) (*Segment, error) {
	return OpenFS(OSFS{}, path, ringDegree, modulus)
}

// OpenFS is Open over an explicit filesystem. If fsys cannot map the
// file (platform without mmap, or an injected mmap failure) the loader
// falls back to the plain-read copying path — same verification, one
// heap arena instead of a zero-copy view.
func OpenFS(fsys FS, path string, ringDegree int, modulus uint64) (*Segment, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, planeOff, size, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if err := meta.CheckGeometry(ringDegree, modulus); err != nil {
		return nil, err
	}

	if nativeLittleEndian {
		if m, err := fsys.Mmap(f, size); err == nil {
			// The CRC pass below and the search kernels both stream the
			// planes front-to-back: tell the kernel so readahead runs
			// at full depth from the first fault.
			adviseSequential(m)
			foot, err := verifyMapped(m, planeOff, meta)
			if err != nil {
				fsys.Munmap(m) //nolint:errcheck // reporting the verify failure
				return nil, err
			}
			if arena := bytesU64(m[planeOff : int64(planeOff)+2*meta.planeBytes()]); arena != nil {
				return &Segment{meta: meta, arena: arena, mapping: m, fsys: fsys, planeCRC: foot.planeCRC}, nil
			}
			fsys.Munmap(m) //nolint:errcheck // falling back to the copying loader
		}
		// Mapping failed (exotic filesystem, size limits, injected
		// fault): copy instead.
	}
	return openCopy(f, meta, planeOff)
}

// ReadMeta reads and validates a segment's header, name and header
// checksum without touching the coefficient planes — the cheap probe
// the recovery scan runs per file at startup.
func ReadMeta(path string) (Meta, error) {
	return ReadMetaFS(OSFS{}, path)
}

// ReadMetaFS is ReadMeta over an explicit filesystem.
func ReadMetaFS(fsys FS, path string) (Meta, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	meta, _, _, err := readHeader(f)
	return meta, err
}

// readHeader validates sizes, parses the header and name, and checks
// the header CRC stored in the footer. It returns the plane offset and
// total file size.
func readHeader(f File) (Meta, int, int64, error) {
	st, err := f.Stat()
	if err != nil {
		return Meta{}, 0, 0, err
	}
	size := st.Size()
	if size < headerLen+footerLen {
		return Meta{}, 0, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, size)
	}
	var head [headerLen]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return Meta{}, 0, 0, err
	}
	meta, nameLen, err := decodeHeader(head[:])
	if err != nil {
		return Meta{}, 0, 0, err
	}
	planeOff := headerLen + pad8(nameLen)
	want := int64(planeOff) + 2*meta.planeBytes() + footerLen
	if size < want {
		return Meta{}, 0, 0, fmt.Errorf("%w: %d bytes, header promises %d", ErrTruncated, size, want)
	}
	if size > want {
		return Meta{}, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, size-want)
	}

	nameBuf := make([]byte, pad8(nameLen))
	if _, err := f.ReadAt(nameBuf, headerLen); err != nil {
		return Meta{}, 0, 0, err
	}
	for _, b := range nameBuf[nameLen:] {
		if b != 0 {
			return Meta{}, 0, 0, fmt.Errorf("%w: name padding not zero", ErrCorrupt)
		}
	}
	meta.Name = string(nameBuf[:nameLen])

	foot, err := readFooter(f, size)
	if err != nil {
		return Meta{}, 0, 0, err
	}
	crc := crc64.Checksum(head[:], crcTable)
	crc = crc64.Update(crc, crcTable, nameBuf)
	if crc != foot.headCRC {
		return Meta{}, 0, 0, fmt.Errorf("%w: header CRC %016x, stored %016x", ErrChecksum, crc, foot.headCRC)
	}
	return meta, planeOff, size, nil
}

// footer is the decoded trailing block.
type footer struct {
	planeCRC [2]uint64
	headCRC  uint64
}

func readFooter(f File, size int64) (footer, error) {
	var buf [footerLen]byte
	if _, err := f.ReadAt(buf[:], size-footerLen); err != nil {
		return footer{}, err
	}
	return decodeFooter(buf[:])
}

func decodeFooter(buf []byte) (footer, error) {
	if string(buf[24:32]) != endMagic {
		return footer{}, fmt.Errorf("%w: bad end magic", ErrCorrupt)
	}
	return footer{
		planeCRC: [2]uint64{binary.LittleEndian.Uint64(buf[0:]), binary.LittleEndian.Uint64(buf[8:])},
		headCRC:  binary.LittleEndian.Uint64(buf[16:]),
	}, nil
}

// verifyMapped checks both plane CRCs against the mapped bytes. This is
// the cold-load cost: one sequential fault-in pass over the file.
func verifyMapped(m []byte, planeOff int, meta Meta) (footer, error) {
	foot, err := decodeFooter(m[len(m)-footerLen:])
	if err != nil {
		return footer{}, err
	}
	pb := meta.planeBytes()
	for p := 0; p < 2; p++ {
		lo := int64(planeOff) + int64(p)*pb
		if crc := crc64.Checksum(m[lo:lo+pb], crcTable); crc != foot.planeCRC[p] {
			return footer{}, fmt.Errorf("%w: C%d plane CRC %016x, stored %016x", ErrChecksum, p, crc, foot.planeCRC[p])
		}
	}
	return foot, nil
}

// openCopy is the plain-read fallback (no mmap, or a big-endian host):
// the planes are read — and byte-order corrected where needed — into a
// heap arena. Still O(1) allocations: one arena plus fixed scratch.
// Read-time bit flips injected by a fault FS surface here as ErrChecksum
// (the CRC pass covers exactly the bytes adopted into the arena).
func openCopy(f File, meta Meta, planeOff int) (*Segment, error) {
	foot, err := readFooter(f, int64(planeOff)+2*meta.planeBytes()+footerLen)
	if err != nil {
		return nil, err
	}
	arena := make([]uint64, meta.arenaWords())
	words := len(arena) / 2
	var scratch [512 * 8]byte
	for p := 0; p < 2; p++ {
		crc := crc64.New(crcTable)
		plane := arena[p*words : (p+1)*words]
		r := io.NewSectionReader(f, int64(planeOff)+int64(p)*meta.planeBytes(), meta.planeBytes())
		for len(plane) > 0 {
			chunk := len(scratch) / 8
			if chunk > len(plane) {
				chunk = len(plane)
			}
			buf := scratch[:chunk*8]
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			crc.Write(buf)
			for i := 0; i < chunk; i++ {
				plane[i] = binary.LittleEndian.Uint64(buf[i*8:])
			}
			plane = plane[chunk:]
		}
		if crc.Sum64() != foot.planeCRC[p] {
			return nil, fmt.Errorf("%w: C%d plane CRC %016x, stored %016x", ErrChecksum, p, crc.Sum64(), foot.planeCRC[p])
		}
	}
	return &Segment{meta: meta, arena: arena, planeCRC: foot.planeCRC}, nil
}
