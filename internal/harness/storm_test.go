package harness

import (
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/proto"
)

// TestRunStormSmoke drives the shared storm driver against an
// in-process coalescing server on toy parameters: every reply must
// verify against ground truth, the server-side delta must account for
// every client query, and the closed loop must actually coalesce.
func TestRunStormSmoke(t *testing.T) {
	p := bfv.ParamsToy()
	db, tgt, err := NewStormTenant(p, "smoke", "storm-test", 192)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := stormServer(p, db, tgt.DB, proto.CoalesceConfig{
		Window:   5 * time.Millisecond,
		MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rep, err := RunStorm(StormConfig{
		Addr:     addr,
		Params:   p,
		Targets:  []StormTarget{*tgt},
		Conns:    4,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("storm completed no queries")
	}
	if rep.Errors != 0 || rep.WrongResults != 0 || rep.Rejected != 0 {
		t.Fatalf("storm not clean: errors=%d wrong=%d rejected=%d", rep.Errors, rep.WrongResults, rep.Rejected)
	}
	if rep.ServerQueries != rep.Queries {
		t.Fatalf("server counted %d queries, clients sent %d", rep.ServerQueries, rep.Queries)
	}
	if rep.CoalescedQueries == 0 || rep.BatchOccupancyMean <= 1 {
		t.Fatalf("closed loop did not coalesce: coalesced=%d occupancy=%.2f",
			rep.CoalescedQueries, rep.BatchOccupancyMean)
	}
	if rep.ChunkStreamsPerQuery >= float64(rep.UnbatchedChunkStreamsPerQuery) {
		t.Fatalf("chunk streams/query %.2f not below unbatched %d",
			rep.ChunkStreamsPerQuery, rep.UnbatchedChunkStreamsPerQuery)
	}
	if rep.LatMaxMs <= 0 || rep.QPS <= 0 {
		t.Fatalf("degenerate latency/throughput: max=%.3fms qps=%.1f", rep.LatMaxMs, rep.QPS)
	}

	// Stage-latency attribution: the storm must come back with trace
	// samples covering the pipeline stages, all client-correlated
	// (every storm connection mints trace IDs), and the per-tenant
	// breakdown must account for the tenant's queries.
	if rep.TraceSamples == 0 || rep.TraceCorrelated != rep.TraceSamples {
		t.Fatalf("trace samples = %d, correlated = %d", rep.TraceSamples, rep.TraceCorrelated)
	}
	stages := map[string]bool{}
	for _, st := range rep.Stages {
		if st.Count <= 0 || st.MeanMs < 0 {
			t.Fatalf("degenerate stage stats: %+v", st)
		}
		stages[st.Stage] = true
	}
	for _, want := range []string{"read", "decode", "coalesce_wait", "arena", "encode", "write"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from storm breakdown %v", want, rep.Stages)
		}
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].DB != tgt.DB {
		t.Fatalf("tenant breakdown = %+v", rep.Tenants)
	}
	if got := rep.Tenants[0].Queries; got != rep.Queries {
		t.Fatalf("tenant_queries_total delta %d != client queries %d", got, rep.Queries)
	}
	if rep.Tenants[0].TraceSamples == 0 || rep.Tenants[0].P95Ms <= 0 {
		t.Fatalf("tenant latency sample missing: %+v", rep.Tenants[0])
	}
}
