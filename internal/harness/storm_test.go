package harness

import (
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/proto"
)

// TestRunStormSmoke drives the shared storm driver against an
// in-process coalescing server on toy parameters: every reply must
// verify against ground truth, the server-side delta must account for
// every client query, and the closed loop must actually coalesce.
func TestRunStormSmoke(t *testing.T) {
	p := bfv.ParamsToy()
	db, tgt, err := NewStormTenant(p, "smoke", "storm-test", 192)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := stormServer(p, db, tgt.DB, proto.CoalesceConfig{
		Window:   5 * time.Millisecond,
		MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rep, err := RunStorm(StormConfig{
		Addr:     addr,
		Params:   p,
		Targets:  []StormTarget{*tgt},
		Conns:    4,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("storm completed no queries")
	}
	if rep.Errors != 0 || rep.WrongResults != 0 || rep.Rejected != 0 {
		t.Fatalf("storm not clean: errors=%d wrong=%d rejected=%d", rep.Errors, rep.WrongResults, rep.Rejected)
	}
	if rep.ServerQueries != rep.Queries {
		t.Fatalf("server counted %d queries, clients sent %d", rep.ServerQueries, rep.Queries)
	}
	if rep.CoalescedQueries == 0 || rep.BatchOccupancyMean <= 1 {
		t.Fatalf("closed loop did not coalesce: coalesced=%d occupancy=%.2f",
			rep.CoalescedQueries, rep.BatchOccupancyMean)
	}
	if rep.ChunkStreamsPerQuery >= float64(rep.UnbatchedChunkStreamsPerQuery) {
		t.Fatalf("chunk streams/query %.2f not below unbatched %d",
			rep.ChunkStreamsPerQuery, rep.UnbatchedChunkStreamsPerQuery)
	}
	if rep.LatMaxMs <= 0 || rep.QPS <= 0 {
		t.Fatalf("degenerate latency/throughput: max=%.3fms qps=%.1f", rep.LatMaxMs, rep.QPS)
	}
}
