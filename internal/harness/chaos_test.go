package harness

import (
	"net"
	"testing"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/fault"
	"ciphermatch/internal/proto"
)

// TestFaultStormSmoke is the fault-injected storm: a closed-loop load
// run through a listener that periodically stalls and tears connections
// mid-message, against a durable store with the background scrub on.
// The acceptance bar is the robustness contract end to end — zero
// incorrect results, every injected fault absorbed as a typed error or
// a successful retry, the process never hangs or dies.
func TestFaultStormSmoke(t *testing.T) {
	p := bfv.ParamsToy()
	db, tgt, err := NewStormTenant(p, "storm-db", "chaos", 192)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := proto.NewServerWithServing(p, core.EngineSpec{},
		proto.StoreOptions{DataDir: t.TempDir(), ScrubInterval: 50 * time.Millisecond},
		proto.CoalesceConfig{Window: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown() //nolint:errcheck // test teardown
	srv.SetTimeouts(2*time.Second, 2*time.Second)
	if err := srv.Store().Upload(tgt.DB, core.EngineSpec{}, db); err != nil {
		t.Fatal(err)
	}

	inj := fault.New(fault.Config{Seed: "storm-smoke", DropEvery: 211, StallEvery: 97, Stall: time.Millisecond})
	inj.Bind(srv.Metrics())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(inj.Listener(l)) //nolint:errcheck // returns when the listener closes

	rep, err := RunStorm(StormConfig{
		Addr:     l.Addr().String(),
		Params:   p,
		Targets:  []StormTarget{*tgt},
		Conns:    4,
		Duration: 800 * time.Millisecond,
		Retry: proto.RetryPolicy{
			Max: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond,
			Timeout: 2 * time.Second, Seed: "smoke",
		},
	})
	if err != nil {
		t.Fatalf("storm under faults: %v", err)
	}
	if rep.WrongResults != 0 {
		t.Fatalf("%d wrong results under faults — correctness broken", rep.WrongResults)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d untyped client errors under faults, want 0 (typed or retried)", rep.Errors)
	}
	if rep.Queries == 0 {
		t.Fatal("storm issued no queries")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected — the smoke proved nothing")
	}
	if rep.Retries == 0 {
		t.Fatalf("faults injected (%v) but no client retries recorded", inj.Counters())
	}
	t.Logf("storm: %d queries, %d retries, %d reconnects, faults %v", rep.Queries, rep.Retries, rep.Reconnects, inj.Counters())
}
