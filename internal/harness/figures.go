package harness

import (
	"fmt"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/perfmodel"
	"ciphermatch/internal/rng"
)

func init() {
	register(Experiment{ID: "fig2", Title: "Boolean vs arithmetic: footprint, execution time, latency breakdown", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "Normalized transfer latency to CPU / DRAM / SSD controller", Run: runFig3})
	register(Experiment{ID: "fig7", Title: "CM-SW speedup vs query size (128GB encrypted DB, 1 query)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "CM-SW energy vs query size", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "CM-SW speedup vs encrypted DB size (16-bit query, 1000 queries)", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Hardware speedup over CM-SW vs query size", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Hardware energy vs query size", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Hardware speedup over CM-SW vs encrypted DB size", Run: runFig12})
}

// paper-reported series, used for side-by-side comparison columns.
var (
	paperFig7ArithSpeedup = map[int]string{16: "20.7x", 32: "30.7x", 64: "44.1x", 128: "54.7x", 256: "62.2x"}
	paperFig10IFP         = map[int]string{16: "216.0x", 32: "168.9x", 64: "122.7x", 128: "100.2x", 256: "76.6x"}
	paperFig11IFP         = map[int]string{16: "454.5x", 32: "370.3x", 64: "294.1x", 128: "227.2x", 256: "156.2x"}
	paperFig9Speedup      = map[int64]string{8: "62.2x", 16: "62.2x", 32: "72.1x", 64: "72.1x", 128: "68.1x"}
	paperFig12IFP         = map[int64]string{8: "250.1x", 16: "250.1x", 32: "250.1x", 64: "295.1x", 128: "295.1x"}
)

// runFig2 regenerates the three panels of Fig. 2. Panel (b) is measured
// functionally on this machine with this repository's matchers at micro
// scale (the paper likewise uses a tiny database "to understand the
// execution time ... without causing data movement").
func runFig2(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   "Boolean [17] vs arithmetic [27] (panels a, b, c)",
		Headers: []string{"Panel", "Point", "Boolean", "Arithmetic", "Note"},
	}

	// Panel (a): encrypted footprint vs database size.
	for _, plainBytes := range []int64{32, 256, 1024, 4096} {
		w := perfmodel.Workload{PlainBits: plainBytes * 8, QueryBits: 16}
		t.Rows = append(t.Rows, []string{
			"a", fmt.Sprintf("DB %s", bytesHuman(plainBytes)),
			bytesHuman(m.BooleanEncryptedBytes(w)),
			bytesHuman(m.ArithEncryptedBytes(w)),
			fmt.Sprintf("CIPHERMATCH: %s", bytesHuman(m.CMEncryptedBytes(w))),
		})
	}

	// Panel (b): measured execution time of the functional matchers on a
	// 16-byte database.
	for _, y := range []int{16, 24} {
		boolSec, arithSec, err := measureFig2b(y)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"b", fmt.Sprintf("query %db (measured, 16B DB)", y),
			fmt.Sprintf("%.3fs", boolSec),
			fmt.Sprintf("%.3fs", arithSec),
			fmt.Sprintf("boolean/arith = %.0fx", boolSec/arithSec),
		})
	}

	// Panel (c): latency breakdown of the arithmetic approach.
	frac := m.ArithMulFraction(perfmodel.Workload{PlainBits: 1 << 20, QueryBits: 16})
	t.Rows = append(t.Rows, []string{
		"c", "Hom-Mul share of latency", "-", fmt.Sprintf("%.1f%%", 100*frac), "paper: 98.2%",
	})
	meas, err := perfmodel.MeasureOps(bfv.ParamsToyMul(), 3)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"c", "measured Mul/Add ratio (this repo, toy params)", "-",
		fmt.Sprintf("%.0fx", float64(meas.TMul)/float64(meas.TAdd)),
		"schoolbook Mul inflates the ratio vs SEAL's NTT (DESIGN.md)",
	})
	t.Notes = append(t.Notes,
		"panel (b) absolute times are this repository's Go matchers, not TFHE-rs/SEAL; the ordering and gap are the reproduced quantities")
	return t, nil
}

// measureFig2b times the functional Boolean and Yasuda matchers searching a
// y-bit query in a 16-byte database (byte alignment).
func measureFig2b(y int) (boolSec, arithSec float64, err error) {
	src := rng.NewSourceFromString(fmt.Sprintf("fig2b-%d", y))
	db := make([]byte, 16)
	src.Bytes(db)
	query := make([]byte, y/8)
	src.Bytes(query)

	bm, err := core.NewBooleanMatcher(bfv.ParamsBoolean(), src.Fork("bool"))
	if err != nil {
		return 0, 0, err
	}
	dbCT, err := bm.EncryptBits(db, len(db)*8, src.Fork("bool-db"))
	if err != nil {
		return 0, 0, err
	}
	qCT, err := bm.EncryptBits(query, y, src.Fork("bool-q"))
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if _, _, err := bm.Search(dbCT, qCT, 8); err != nil {
		return 0, 0, err
	}
	boolSec = time.Since(start).Seconds()

	// The NTT-enabled parameter set keeps the arithmetic baseline in the
	// same algorithmic regime as SEAL (the paper's substrate).
	ym, err := core.NewYasudaMatcher(bfv.ParamsNTTArith(), 256, src.Fork("yasuda"))
	if err != nil {
		return 0, 0, err
	}
	ydb, err := ym.EncryptDatabase(db, len(db)*8, src.Fork("yasuda-db"))
	if err != nil {
		return 0, 0, err
	}
	yq, err := ym.PrepareQuery(query, y, src.Fork("yasuda-q"))
	if err != nil {
		return 0, 0, err
	}
	start = time.Now()
	if _, _, err := ym.Search(ydb, yq); err != nil {
		return 0, 0, err
	}
	arithSec = time.Since(start).Seconds()
	return boolSec, arithSec, nil
}

func runFig3(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Transfer latency normalized to CPU (=100)",
		Headers: []string{"Encrypted DB", "CPU", "Main memory", "Storage", "Paper notes"},
	}
	notes := map[int64]string{
		8:   "paper: DRAM ~75, storage <20",
		256: "paper: DRAM 94, storage 6",
	}
	for _, gb := range []int64{8, 16, 32, 64, 128, 256} {
		norm := m.TransferNormalized(gb << 30)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dGB", gb),
			f1(norm[perfmodel.TargetCPU]),
			f1(norm[perfmodel.TargetDRAM]),
			f1(norm[perfmodel.TargetController]),
			notes[gb],
		})
	}
	t.Notes = append(t.Notes,
		"orderings and trends (storage < DRAM < CPU; DRAM benefit shrinking with size) are the reproduced quantities; see EXPERIMENTS.md for the path model")
	return t, nil
}

func runFig7(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "CM-SW speedup (128GB encrypted DB, 1 query)",
		Headers: []string{"Query bits", "over Arithmetic", "16-shift semantics", "paper", "over Boolean", "paper range"},
	}
	paperSem := *m
	paperSem.Cal.PaperShiftSemantics = true
	for _, y := range []int{16, 32, 64, 128, 256} {
		w := perfmodel.DNAWorkload(y)
		cm := m.EstimateCMSW(w)
		cm16 := paperSem.EstimateCMSW(w)
		ar := m.EstimateArith(w)
		bo := m.EstimateBoolean(w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", y),
			speedup(ar, cm), speedup(ar, cm16), paperFig7ArithSpeedup[y],
			fmt.Sprintf("%.1ex", bo.Seconds/cm.Seconds), "2.0e5-6.2e5x",
		})
	}
	t.Notes = append(t.Notes,
		"'over Arithmetic' uses the corrected V(y)=y shift count; '16-shift semantics' caps shifts at 16 as the paper's query preparation does (EXPERIMENTS.md, shift-count discrepancy)")
	return t, nil
}

func runFig8(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "CM-SW energy reduction (128GB encrypted DB, 1 query)",
		Headers: []string{"Query bits", "vs Arithmetic", "paper", "vs Boolean"},
	}
	paper := map[int]string{16: "17.6x", 32: "28.0x", 64: "40.1x", 128: "51.3x", 256: "60.1x"}
	for _, y := range []int{16, 32, 64, 128, 256} {
		w := perfmodel.DNAWorkload(y)
		cm := m.EstimateCMSW(w)
		ar := m.EstimateArith(w)
		bo := m.EstimateBoolean(w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", y),
			energyRatio(ar, cm), paper[y],
			fmt.Sprintf("%.1ex", bo.EnergyJ/cm.EnergyJ),
		})
	}
	return t, nil
}

func runFig9(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "CM-SW speedup vs encrypted DB size (16-bit query, 1000 queries)",
		Headers: []string{"Encrypted DB", "over Arithmetic", "paper", "CM-SW seconds"},
	}
	for _, gb := range []int64{8, 16, 32, 64, 128} {
		// Encrypted size = 4x plaintext under CIPHERMATCH packing.
		w := perfmodel.DBSearchWorkload((gb << 30) / 4)
		cm := m.EstimateCMSW(w)
		ar := m.EstimateArith(w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dGB", gb),
			speedup(ar, cm), paperFig9Speedup[gb],
			f1(cm.Seconds),
		})
	}
	t.Notes = append(t.Notes, "paper observation: CM-SW performance drops ~1.16x once the DB exceeds the 32GB DRAM")
	return t, nil
}

func hardwareRow(m *perfmodel.Model, w perfmodel.Workload) (sw, pum, pumSSD, ifp perfmodel.Estimate) {
	return m.EstimateCMSW(w), m.EstimateCMPuM(w), m.EstimateCMPuMSSD(w), m.EstimateCMIFP(w)
}

func runFig10(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Hardware speedup over CM-SW (128GB encrypted DB, 1 query)",
		Headers: []string{"Query bits", "CM-PuM", "CM-PuM-SSD", "CM-IFP", "paper CM-IFP"},
	}
	for _, y := range []int{16, 32, 64, 128, 256} {
		sw, pum, pumSSD, ifp := hardwareRow(m, perfmodel.DNAWorkload(y))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", y),
			speedup(sw, pum), speedup(sw, pumSSD), speedup(sw, ifp), paperFig10IFP[y],
		})
	}
	t.Notes = append(t.Notes,
		"reproduced shape: CM-IFP best at small queries; CM-PuM overtakes CM-IFP at 256 bits (paper: 1.21x)")
	return t, nil
}

func runFig11(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Hardware energy reduction vs CM-SW (128GB encrypted DB, 1 query)",
		Headers: []string{"Query bits", "CM-PuM", "CM-PuM-SSD", "CM-IFP", "paper CM-IFP"},
	}
	for _, y := range []int{16, 32, 64, 128, 256} {
		sw, pum, pumSSD, ifp := hardwareRow(m, perfmodel.DNAWorkload(y))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", y),
			energyRatio(sw, pum), energyRatio(sw, pumSSD), energyRatio(sw, ifp), paperFig11IFP[y],
		})
	}
	return t, nil
}

func runFig12(m *perfmodel.Model) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Hardware speedup over CM-SW vs encrypted DB size (16-bit query, 1000 queries)",
		Headers: []string{"Encrypted DB", "CM-PuM", "CM-PuM-SSD", "CM-IFP", "paper CM-IFP"},
	}
	for _, gb := range []int64{8, 16, 32, 64, 128} {
		w := perfmodel.DBSearchWorkload((gb << 30) / 4)
		sw, pum, pumSSD, ifp := hardwareRow(m, w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dGB", gb),
			speedup(sw, pum), speedup(sw, pumSSD), speedup(sw, ifp), paperFig12IFP[gb],
		})
	}
	t.Notes = append(t.Notes,
		"reproduced crossover: CM-PuM leads while the DB fits the 32GB DRAM, CM-IFP leads beyond it",
		"divergence: the paper reports CM-PuM-SSD 1.75x ahead of CM-PuM beyond 32GB; our model narrows the gap to ~1.1x the other way (EXPERIMENTS.md)")
	return t, nil
}
