package harness

import (
	"testing"

	"ciphermatch/internal/core"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/proto"
	"ciphermatch/internal/trace"
)

// TraceOverheadResult quantifies what request-lifecycle tracing costs
// relative to the work it measures: the full per-request record path
// (reset, every stage stamp, slow-ring double put, histogram
// aggregation) against one serial hot-path search on the standard
// engine-benchmark fixture. Tracing is always on in the server, so this
// ratio is the tax every query pays — the observability budget is that
// it stays under 2%.
type TraceOverheadResult struct {
	SearchNsPerOp float64 `json:"search_ns_per_op"`
	TraceNsPerOp  float64 `json:"trace_ns_per_op"`
	TraceAllocs   int64   `json:"trace_allocs_per_op"`
	OverheadPct   float64 `json:"overhead_pct"`
}

// RunTraceOverheadBench measures the serial search and the per-request
// trace record path with testing.Benchmark and returns their ratio.
// The search side uses the large fixture: tracing cost is a constant
// per request, so the honest denominator is a serving-scale search
// (64-chunk arena), not the 2-chunk cache toy — against the small
// fixture the vectorized kernels alone would "blow" the budget by
// making the denominator faster.
func RunTraceOverheadBench() (*TraceOverheadResult, error) {
	cfg, db, q, err := NewEngineBenchLargeFixture()
	if err != nil {
		return nil, err
	}
	eng := core.NewSerialEngine(cfg.Params, db)
	search := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ir, err := eng.SearchAndIndex(q)
			if err != nil {
				b.Fatal(err)
			}
			ir.Release()
		}
	})

	// The record path exactly as a served request exercises it under
	// the server's default configuration: a reused Trace value, one
	// stamp per stage, and a Finish into the recent ring plus every
	// histogram. (A slow query additionally pays one ring put — but a
	// request crossing the 50ms threshold is 4 orders of magnitude
	// past caring about ~100ns.)
	rec := trace.NewRecorder(proto.DefaultTraceBuf, trace.DefaultSlowThreshold)
	reg := metrics.NewRegistry()
	rec.BindMetrics(reg)
	th := rec.TenantHistogram("bench")
	var tr trace.Trace
	record := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Reset()
			tr.ID = uint64(i)
			tr.Tenant = "bench"
			tr.Stamp(trace.StageRead, 1_200)
			tr.Stamp(trace.StageDecode, 15_000)
			tr.Stamp(trace.StageArena, 2_000_000)
			tr.Stamp(trace.StageEncode, 900)
			tr.Stamp(trace.StageWrite, 2_500)
			tr.ChunkStreams, tr.HomAdds, tr.Batch = 8, 8, 1
			tr.TotalNS = tr.StagesTotal()
			rec.Finish(&tr, th)
		}
	})

	res := &TraceOverheadResult{
		SearchNsPerOp: float64(search.T.Nanoseconds()) / float64(search.N),
		TraceNsPerOp:  float64(record.T.Nanoseconds()) / float64(record.N),
		TraceAllocs:   record.AllocsPerOp(),
	}
	if res.SearchNsPerOp > 0 {
		res.OverheadPct = 100 * res.TraceNsPerOp / res.SearchNsPerOp
	}
	return res, nil
}
