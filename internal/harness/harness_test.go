package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ciphermatch/internal/perfmodel"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig10", "fig11", "fig12", "fig2", "fig3", "fig7", "fig8", "fig9", "overhead", "table1", "table2", "table3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, ok := ByID("fig7"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID returned a ghost")
	}
}

func TestExperimentsRunAndRender(t *testing.T) {
	m := perfmodel.NewPaperModel()
	for _, e := range All() {
		if testing.Short() && e.ID == "fig2" {
			continue // fig2 measures the functional matchers (~seconds)
		}
		tbl, err := e.Run(m)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Headers) {
				t.Fatalf("%s: row width %d != headers %d", e.ID, len(row), len(tbl.Headers))
			}
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if !strings.Contains(buf.String(), tbl.Title) {
			t.Fatalf("%s render missing title", e.ID)
		}
		buf.Reset()
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Fatalf("%s csv: %v", e.ID, err)
		}
	}
}

func TestFig7TableContainsPaperColumn(t *testing.T) {
	m := perfmodel.NewPaperModel()
	tbl, err := mustRun(t, m, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "16" && row[3] == "20.7x" {
			found = true
		}
	}
	if !found {
		t.Fatal("fig7 table must carry the paper's 20.7x anchor for comparison")
	}
	// The 16-shift-semantics column must reproduce the paper's increasing
	// trend with query size.
	var first, last float64
	fmt.Sscanf(tbl.Rows[0][2], "%f", &first)
	fmt.Sscanf(tbl.Rows[len(tbl.Rows)-1][2], "%f", &last)
	if last <= first {
		t.Fatalf("16-shift semantics speedup must grow with query size: %.1f -> %.1f", first, last)
	}
}

func mustRun(t *testing.T, m *perfmodel.Model, id string) (*Table, error) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	return e.Run(m)
}
