package harness

import "testing"

// TestTraceOverheadBudget is the observability tax gate: the full
// per-request trace record path must cost under 2% of one serial
// hot-path search and allocate nothing. The measured ratio lands in
// BENCH_results.json via cmbench -json; this test keeps it honest.
func TestTraceOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	res, err := RunTraceOverheadBench()
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchNsPerOp <= 0 || res.TraceNsPerOp <= 0 {
		t.Fatalf("degenerate measurement: %+v", res)
	}
	if res.TraceAllocs != 0 {
		t.Fatalf("trace record path allocates %d/op, want 0", res.TraceAllocs)
	}
	if res.OverheadPct >= 2 {
		t.Fatalf("tracing overhead %.3f%% exceeds the 2%% budget (trace %.0fns vs search %.0fns)",
			res.OverheadPct, res.TraceNsPerOp, res.SearchNsPerOp)
	}
	t.Logf("tracing tax: %.0fns record vs %.0fns search = %.4f%%",
		res.TraceNsPerOp, res.SearchNsPerOp, res.OverheadPct)
}
