package harness

import (
	"strings"
	"testing"

	"ciphermatch/internal/ring"
)

// TestRunKernelBenchShape gates the kernel microbenchmark's contract:
// one row per (kernel, available path, q-class), every row zero-alloc
// with a positive coefficients/sec figure, and the active dispatch path
// restored afterwards. Run with -short in CI's unit lane; the numbers
// themselves are CI's bench-smoke job.
func TestRunKernelBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	before := ring.ActiveKernel()
	results, err := RunKernelBench()
	if err != nil {
		t.Fatal(err)
	}
	if after := ring.ActiveKernel(); after != before {
		t.Fatalf("RunKernelBench left kernel path %s, want %s restored", after, before)
	}
	wantRows := 2 * 2 * len(ring.AvailableKernels())
	if len(results) != wantRows {
		t.Fatalf("got %d rows, want %d (2 kernels x 2 q-classes x %d paths)",
			len(results), wantRows, len(ring.AvailableKernels()))
	}
	seen := make(map[string]bool, len(results))
	for _, k := range results {
		if seen[k.key()] {
			t.Fatalf("duplicate row %s", k.key())
		}
		seen[k.key()] = true
		if k.CoeffsPerSec <= 0 || k.ArenaGBPerSec <= 0 || k.NsPerOp <= 0 {
			t.Fatalf("degenerate row %+v", k)
		}
		if k.AllocsPerOp != 0 {
			t.Fatalf("%s allocates %d/op, want 0", k.key(), k.AllocsPerOp)
		}
	}
	best, generic := bestSubcmpPow2(results)
	if best == nil || generic == nil {
		t.Fatal("missing subcmp pow2 rows")
	}
	var sb strings.Builder
	WriteKernelBenchTable(&sb, results)
	for _, want := range []string{"subcmp", "addcmp", "pow2", "generic", "coeffs/s"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("kernel table missing %q:\n%s", want, sb.String())
		}
	}
	t.Logf("subcmp pow2 best path %s: %.2fx vs generic",
		best.Path, best.CoeffsPerSec/generic.CoeffsPerSec)
}
