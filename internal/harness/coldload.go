package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/segment"
)

// ColdLoadResult measures the durable store's cold path for one engine
// kind on the standard engine-benchmark workload: the time from an
// evicted (on-disk-only) database to a searchable engine — segment
// open with checksum verification, zero-copy arena adoption, engine
// build — against the warm per-search time over the same
// segment-backed arena.
type ColdLoadResult struct {
	Engine            string  `json:"engine"`
	SegmentBytes      int64   `json:"segment_bytes"`
	ColdLoadNsPerOp   float64 `json:"cold_load_ns_per_op"`
	WarmSearchNsPerOp float64 `json:"warm_search_ns_per_op"`
	Mapped            bool    `json:"mmap"`
	// Advised reports whether madvise hints (MADV_SEQUENTIAL at open,
	// WILLNEED before the first search) reached the kernel for the
	// mapped arena, so cold-load numbers are comparable across
	// platforms with and without the hints.
	Advised bool `json:"madvise"`
}

// RunColdLoadBench writes the standard fixture database to a segment
// file once, then measures, per engine spec, the cold load (open +
// adopt + engine build, the work a search on an evicted tenant pays
// first) and the warm search over the loaded mapping.
func RunColdLoadBench(specs []string) ([]ColdLoadResult, error) {
	cfg, db, q, err := NewEngineBenchFixture()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "cm-coldload")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	p := cfg.Params
	path := filepath.Join(dir, segment.FileName("bench"))
	meta := segment.Meta{
		Name:        "bench",
		RingDegree:  p.N,
		Modulus:     p.Q,
		Chunks:      len(db.Chunks),
		BitLen:      db.BitLen,
		NumSegments: db.NumSegments,
	}
	if err := segment.Write(path, meta, db); err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	var out []ColdLoadResult
	for _, specStr := range specs {
		spec, err := engine.Parse(specStr)
		if err != nil {
			return nil, err
		}
		coldOnce := func() (*segment.Segment, core.Engine, error) {
			seg, err := segment.Open(path, p.N, p.Q)
			if err != nil {
				return nil, nil, err
			}
			// Mirror the durable store's load path: the cold load is
			// always followed by a search streaming the arena.
			seg.AdviseWillNeed()
			sdb, err := seg.DB()
			if err != nil {
				seg.Close()
				return nil, nil, err
			}
			eng, err := engine.Build(p, sdb, spec)
			if err != nil {
				seg.Close()
				return nil, nil, err
			}
			return seg, eng, nil
		}

		// Warm: one resident load, searches over the mapped arena.
		seg, eng, err := coldOnce()
		if err != nil {
			return nil, fmt.Errorf("harness: cold load %s: %w", specStr, err)
		}
		res := ColdLoadResult{Engine: specStr, SegmentBytes: st.Size(), Mapped: seg.Mapped(), Advised: seg.Advised()}
		warm := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ir, err := eng.SearchAndIndex(q)
				if err != nil {
					b.Fatal(err)
				}
				ir.Release()
			}
		})
		res.WarmSearchNsPerOp = float64(warm.T.Nanoseconds()) / float64(warm.N)
		closeEngine(eng)
		seg.Close()

		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seg, eng, err := coldOnce()
				if err != nil {
					b.Fatal(err)
				}
				closeEngine(eng)
				seg.Close()
			}
		})
		res.ColdLoadNsPerOp = float64(cold.T.Nanoseconds()) / float64(cold.N)
		out = append(out, res)
	}
	return out, nil
}

func closeEngine(eng core.Engine) {
	if c, ok := eng.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}
