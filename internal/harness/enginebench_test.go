package harness

import "testing"

// TestFactoredQueryShrinksStandardFixture pins the acceptance bar of
// the factored-token representation on the standard engine-bench
// fixture (4 KiB database, 32-bit query, align 8): the factored query
// ships at least 2× fewer bytes than the legacy expanded-token
// representation the previous PRs measured.
func TestFactoredQueryShrinksStandardFixture(t *testing.T) {
	cfg, _, q, err := NewEngineBenchFixture()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Factored() {
		t.Fatal("standard fixture query is not factored")
	}
	lq, err := NewEngineBenchLegacyQuery()
	if err != nil {
		t.Fatal(err)
	}
	fb, lb := q.SizeBytes(cfg.Params), lq.SizeBytes(cfg.Params)
	if fb <= 0 || lb <= 0 {
		t.Fatalf("degenerate sizes: factored %d, legacy %d", fb, lb)
	}
	if 2*fb > lb {
		t.Fatalf("factored query = %d bytes, legacy = %d — want ≥2× reduction (got %.2fx)",
			fb, lb, float64(lb)/float64(fb))
	}
	t.Logf("query bytes: factored %d, legacy %d (%.2fx smaller)", fb, lb, float64(lb)/float64(fb))
}
