package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// EngineBenchResult is one engine's measurement on the standard
// engine-benchmark workload (4 KiB database, 32-bit query, byte
// alignment, seeded-match mode — the same fixture as BenchmarkEngine),
// in the machine-readable form cmbench -json persists so the kernel's
// performance trajectory is comparable across PRs.
type EngineBenchResult struct {
	Engine        string  `json:"engine"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	HomAddsPerOp  int     `json:"hom_adds_per_op"`
	HomAddsPerSec float64 `json:"hom_adds_per_sec"`
	// ChunkStreamsPerOp is how many chunk C0 polynomials one search
	// streams from the ciphertext arena — numChunks for the fused
	// single-pass kernels, residues× that for a per-residue schedule.
	ChunkStreamsPerOp int64 `json:"chunk_streams_per_op,omitempty"`
}

// EngineBenchReport is the top-level BENCH_results.json document.
type EngineBenchReport struct {
	GoOS     string              `json:"goos"`
	GoArch   string              `json:"goarch"`
	Workload string              `json:"workload"`
	Engines  []EngineBenchResult `json:"engines"`
	// KernelPath is the ring dispatch path the engine rows ran on, and
	// AVX2 whether the machine offered the assembly path at all —
	// without these two a cross-machine comparison of the numbers above
	// is meaningless.
	KernelPath string `json:"kernel_path,omitempty"`
	AVX2       bool   `json:"avx2,omitempty"`
	// WorkloadLarge/EnginesLarge is the same engine sweep on the large
	// fixture (128 KiB database, 64 chunks, ≥1 MiB arena), where the
	// kernel runs from memory instead of cache and parallel engines
	// amortise their fan-out overhead — the pool-vs-serial crossover
	// point lives between the two fixtures.
	WorkloadLarge string              `json:"workload_large,omitempty"`
	EnginesLarge  []EngineBenchResult `json:"engines_large,omitempty"`
	// Kernels is the per-dispatch-path microbenchmark of the fused ring
	// kernels themselves (see RunKernelBench).
	Kernels []KernelBenchResult `json:"kernels,omitempty"`
	// QueryBytes is the wire footprint of the fixture's seeded-match
	// query (factored representation), and LegacyQueryBytes what the
	// same query costs in the legacy expanded-token representation —
	// the PR-over-PR trace of the communication-volume claim.
	QueryBytes       int64 `json:"query_bytes,omitempty"`
	LegacyQueryBytes int64 `json:"legacy_query_bytes,omitempty"`
	// ColdLoads measures the durable segment store: per engine, the
	// cold evicted-to-searchable load latency vs the warm search.
	ColdLoads []ColdLoadResult `json:"cold_loads,omitempty"`
	// Storm is the serving-path scenario: the fixture under concurrent
	// same-database clients, coalescing off vs on (see RunStormBench).
	Storm *StormBenchResult `json:"storm,omitempty"`
	// TraceOverhead is the request-lifecycle tracing tax relative to a
	// serial hot-path search (see RunTraceOverheadBench); the budget is
	// under 2%.
	TraceOverhead *TraceOverheadResult `json:"trace_overhead,omitempty"`
}

// DefaultEngineBenchSpecs mirrors the BenchmarkEngine sub-benchmarks.
func DefaultEngineBenchSpecs() []string {
	return []string{"serial", "pool", "ssd", "pool/shards=2"}
}

// EngineBenchWorkload describes the standard fixture in the report.
const EngineBenchWorkload = "4KiB db, 32-bit query, align 8, seeded-match"

// EngineBenchWorkloadLarge describes the large fixture: 128 KiB of
// database is 64 chunks at the paper's n=1024, i.e. a 1 MiB ciphertext
// arena (two coefficient planes × 64 chunks × 1024 × 8 B), large
// enough that one search streams from memory rather than L2.
const EngineBenchWorkloadLarge = "128KiB db, 32-bit query, align 8, seeded-match"

// NewEngineBenchFixture builds the one standard engine-benchmark
// workload — a 4 KiB database and a 32-bit byte-aligned seeded-match
// query — shared by the in-tree BenchmarkEngine sub-benchmarks and
// cmbench -json, so the two stay measurements of the same thing.
func NewEngineBenchFixture() (core.Config, *core.EncryptedDB, *core.Query, error) {
	return newEngineBenchFixtureSized(4096)
}

// NewEngineBenchLargeFixture builds the large engine-benchmark
// workload: the same query over a 128 KiB database — 64 chunks, a
// 1 MiB ciphertext arena — so engine comparisons also cover the
// memory-resident regime where parallel fan-out pays for itself.
func NewEngineBenchLargeFixture() (core.Config, *core.EncryptedDB, *core.Query, error) {
	return newEngineBenchFixtureSized(128 << 10)
}

func newEngineBenchFixtureSized(dbBytes int) (core.Config, *core.EncryptedDB, *core.Query, error) {
	cfg := core.Config{Params: bfv.ParamsPaper(), AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("engine-bench"))
	if err != nil {
		return cfg, nil, nil, err
	}
	data := make([]byte, dbBytes)
	rng.NewSourceFromString("engine-bench-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		return cfg, nil, nil, err
	}
	q, err := client.PrepareQuery([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, len(data)*8)
	if err != nil {
		return cfg, nil, nil, err
	}
	return cfg, db, q, nil
}

// NewEngineBenchLegacyQuery builds the standard fixture's query in the
// legacy expanded-token representation (same client seed, same pattern),
// for wire-size comparisons and legacy-path benchmarks.
func NewEngineBenchLegacyQuery() (*core.Query, error) {
	cfg := core.Config{Params: bfv.ParamsPaper(), AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("engine-bench"))
	if err != nil {
		return nil, err
	}
	return client.PrepareLegacyQuery([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, 4096*8)
}

// RunEngineBench measures SearchAndIndex throughput for every engine
// spec on the standard workload, via testing.Benchmark, and returns one
// result per spec.
func RunEngineBench(specs []string) (*EngineBenchReport, error) {
	cfg, db, q, err := NewEngineBenchFixture()
	if err != nil {
		return nil, err
	}
	report := &EngineBenchReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Workload:   EngineBenchWorkload,
		QueryBytes: q.SizeBytes(cfg.Params),
		KernelPath: ring.ActiveKernel().String(),
		AVX2:       ring.AVX2Supported(),
	}
	lq, err := NewEngineBenchLegacyQuery()
	if err != nil {
		// The legacy size is part of the tracked trajectory; a silent 0
		// would hide a broken fixture.
		return nil, fmt.Errorf("harness: legacy fixture query: %w", err)
	}
	report.LegacyQueryBytes = lq.SizeBytes(cfg.Params)
	report.Engines, err = runEngineSpecs(cfg, db, q, specs)
	if err != nil {
		return nil, err
	}
	lcfg, ldb, lq2, err := NewEngineBenchLargeFixture()
	if err != nil {
		return nil, fmt.Errorf("harness: large fixture: %w", err)
	}
	report.WorkloadLarge = EngineBenchWorkloadLarge
	report.EnginesLarge, err = runEngineSpecs(lcfg, ldb, lq2, specs)
	if err != nil {
		return nil, err
	}
	return report, nil
}

// runEngineSpecs measures SearchAndIndex for every engine spec over one
// fixture, via testing.Benchmark.
func runEngineSpecs(cfg core.Config, db *core.EncryptedDB, q *core.Query, specs []string) ([]EngineBenchResult, error) {
	var results []EngineBenchResult
	for _, specStr := range specs {
		spec, err := engine.Parse(specStr)
		if err != nil {
			return nil, err
		}
		eng, err := engine.Build(cfg.Params, db, spec)
		if err != nil {
			return nil, err
		}
		// One warmup search yields the per-op operation counts.
		warm, err := eng.SearchAndIndex(q)
		if err != nil {
			return nil, fmt.Errorf("harness: %s warmup: %w", specStr, err)
		}
		// Stats survives Release (plain value field); the bitsets go
		// back to the pool before the timed loop churns it.
		warm.Release()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ir, err := eng.SearchAndIndex(q)
				if err != nil {
					b.Fatal(err)
				}
				ir.Release()
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		out := EngineBenchResult{
			Engine:            specStr,
			NsPerOp:           nsPerOp,
			AllocsPerOp:       res.AllocsPerOp(),
			BytesPerOp:        res.AllocedBytesPerOp(),
			HomAddsPerOp:      warm.Stats.HomAdds,
			ChunkStreamsPerOp: warm.Stats.ChunkStreams,
		}
		if nsPerOp > 0 {
			out.HomAddsPerSec = float64(warm.Stats.HomAdds) / (nsPerOp / 1e9)
		}
		results = append(results, out)
		if closer, ok := eng.(interface{ Close() error }); ok {
			_ = closer.Close()
		}
	}
	return results, nil
}

// WriteJSON renders the report as indented JSON.
func (r *EngineBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadEngineBenchReport loads a BENCH_results.json document (e.g. the
// committed baseline of the previous PR).
func ReadEngineBenchReport(path string) (*EngineBenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r EngineBenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	return &r, nil
}

// WriteDelta prints a per-engine old-vs-new comparison table against a
// baseline report, so PR-over-PR kernel regressions (and wins) are
// visible in CI logs instead of buried in two JSON artifacts. Engines
// present on only one side are listed without a delta.
func (r *EngineBenchReport) WriteDelta(w io.Writer, old *EngineBenchReport) {
	fmt.Fprintf(w, "engine-bench delta vs baseline (%s):\n", old.Workload)
	if r.KernelPath != "" || old.KernelPath != "" {
		oldPath := old.KernelPath
		if oldPath == "" {
			oldPath = "(unrecorded)"
		}
		fmt.Fprintf(w, "  kernel path: old %s, new %s (avx2 available: %v)\n",
			oldPath, r.KernelPath, r.AVX2)
	}
	writeEngineDelta(w, r.Engines, old.Engines)
	if len(r.EnginesLarge) > 0 {
		fmt.Fprintf(w, "  large fixture (%s):\n", r.WorkloadLarge)
		writeEngineDelta(w, r.EnginesLarge, old.EnginesLarge)
	}
	writeKernelDelta(w, r.Kernels, old.Kernels)
	if old.QueryBytes > 0 || r.QueryBytes > 0 {
		fmt.Fprintf(w, "  query bytes: old %d, new %d", old.QueryBytes, r.QueryBytes)
		if r.LegacyQueryBytes > 0 {
			fmt.Fprintf(w, " (legacy representation: %d)", r.LegacyQueryBytes)
		}
		fmt.Fprintln(w)
	}
	if s := r.Storm; s != nil {
		fmt.Fprintf(w, "  storm (%d conns): %.0f qps unbatched -> %.0f qps coalesced (%+.1f%%), occupancy %.2f, %.1f streams/query (solo %d)",
			s.Conns, s.BaselineQPS, s.QPS, s.SpeedupPct, s.BatchOccupancyMean,
			s.ChunkStreamsPerQuery, s.UnbatchedChunkStreamsPerQuery)
		if old.Storm != nil {
			fmt.Fprintf(w, "; baseline run: %.0f qps coalesced, occupancy %.2f",
				old.Storm.QPS, old.Storm.BatchOccupancyMean)
		}
		fmt.Fprintln(w)
	}
}

// writeEngineDelta prints one fixture's per-engine old-vs-new rows.
func writeEngineDelta(w io.Writer, news, olds []EngineBenchResult) {
	byEngine := make(map[string]EngineBenchResult, len(olds))
	for _, e := range olds {
		byEngine[e.Engine] = e
	}
	fmt.Fprintf(w, "  %-16s %14s %14s %9s %10s %10s\n",
		"engine", "old ns/op", "new ns/op", "Δ ns/op", "old allocs", "new allocs")
	for _, e := range news {
		o, ok := byEngine[e.Engine]
		if !ok {
			fmt.Fprintf(w, "  %-16s %14s %14.0f %9s %10s %10d  (new measurement)\n",
				e.Engine, "-", e.NsPerOp, "-", "-", e.AllocsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(e.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		fmt.Fprintf(w, "  %-16s %14.0f %14.0f %9s %10d %10d\n",
			e.Engine, o.NsPerOp, e.NsPerOp, delta, o.AllocsPerOp, e.AllocsPerOp)
		delete(byEngine, e.Engine)
	}
	for name := range byEngine {
		fmt.Fprintf(w, "  %-16s (engine dropped from benchmark set)\n", name)
	}
}
