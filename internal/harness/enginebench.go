package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/engine"
	"ciphermatch/internal/rng"
)

// EngineBenchResult is one engine's measurement on the standard
// engine-benchmark workload (4 KiB database, 32-bit query, byte
// alignment, seeded-match mode — the same fixture as BenchmarkEngine),
// in the machine-readable form cmbench -json persists so the kernel's
// performance trajectory is comparable across PRs.
type EngineBenchResult struct {
	Engine        string  `json:"engine"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	HomAddsPerOp  int     `json:"hom_adds_per_op"`
	HomAddsPerSec float64 `json:"hom_adds_per_sec"`
}

// EngineBenchReport is the top-level BENCH_results.json document.
type EngineBenchReport struct {
	GoOS     string              `json:"goos"`
	GoArch   string              `json:"goarch"`
	Workload string              `json:"workload"`
	Engines  []EngineBenchResult `json:"engines"`
	// ColdLoads measures the durable segment store: per engine, the
	// cold evicted-to-searchable load latency vs the warm search.
	ColdLoads []ColdLoadResult `json:"cold_loads,omitempty"`
}

// DefaultEngineBenchSpecs mirrors the BenchmarkEngine sub-benchmarks.
func DefaultEngineBenchSpecs() []string {
	return []string{"serial", "pool", "ssd", "pool/shards=2"}
}

// EngineBenchWorkload describes the standard fixture in the report.
const EngineBenchWorkload = "4KiB db, 32-bit query, align 8, seeded-match"

// NewEngineBenchFixture builds the one standard engine-benchmark
// workload — a 4 KiB database and a 32-bit byte-aligned seeded-match
// query — shared by the in-tree BenchmarkEngine sub-benchmarks and
// cmbench -json, so the two stay measurements of the same thing.
func NewEngineBenchFixture() (core.Config, *core.EncryptedDB, *core.Query, error) {
	cfg := core.Config{Params: bfv.ParamsPaper(), AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("engine-bench"))
	if err != nil {
		return cfg, nil, nil, err
	}
	data := make([]byte, 4096)
	rng.NewSourceFromString("engine-bench-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		return cfg, nil, nil, err
	}
	q, err := client.PrepareQuery([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, len(data)*8)
	if err != nil {
		return cfg, nil, nil, err
	}
	return cfg, db, q, nil
}

// RunEngineBench measures SearchAndIndex throughput for every engine
// spec on the standard workload, via testing.Benchmark, and returns one
// result per spec.
func RunEngineBench(specs []string) (*EngineBenchReport, error) {
	cfg, db, q, err := NewEngineBenchFixture()
	if err != nil {
		return nil, err
	}
	report := &EngineBenchReport{
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		Workload: EngineBenchWorkload,
	}
	for _, specStr := range specs {
		spec, err := engine.Parse(specStr)
		if err != nil {
			return nil, err
		}
		eng, err := engine.Build(cfg.Params, db, spec)
		if err != nil {
			return nil, err
		}
		// One warmup search yields the per-op operation counts.
		warm, err := eng.SearchAndIndex(q)
		if err != nil {
			return nil, fmt.Errorf("harness: %s warmup: %w", specStr, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ir, err := eng.SearchAndIndex(q)
				if err != nil {
					b.Fatal(err)
				}
				ir.Release()
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		out := EngineBenchResult{
			Engine:       specStr,
			NsPerOp:      nsPerOp,
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
			HomAddsPerOp: warm.Stats.HomAdds,
		}
		if nsPerOp > 0 {
			out.HomAddsPerSec = float64(warm.Stats.HomAdds) / (nsPerOp / 1e9)
		}
		report.Engines = append(report.Engines, out)
		if closer, ok := eng.(interface{ Close() error }); ok {
			_ = closer.Close()
		}
	}
	return report, nil
}

// WriteJSON renders the report as indented JSON.
func (r *EngineBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
